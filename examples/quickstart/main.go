// Quickstart: run one Agave workload and one SPEC baseline, and print the
// contrast the paper is built around — the Android stack spreads references
// over dozens of regions and processes, the C benchmark over a handful.
package main

import (
	"flag"
	"fmt"
	"log"

	"agave/internal/core"
	"agave/internal/sim"
	"agave/internal/stats"
)

func main() {
	durationMS := flag.Int64("duration", 600, "measured simulated milliseconds")
	flag.Parse()
	if *durationMS <= 0 {
		log.Fatalf("-duration must be a positive number of milliseconds (got %d)", *durationMS)
	}
	cfg := core.DefaultConfig()
	cfg.Duration = sim.Ticks(*durationMS) * sim.Millisecond // default keeps the demo snappy

	for _, name := range []string{"frozenbubble.main", "401.bzip2"} {
		res, err := core.Run(name, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s ==\n", name)
		fmt.Printf("  %d memory references | %d processes | %d threads | %d code regions | %d data regions\n",
			res.Stats.Total(), res.Processes, res.Threads, res.CodeRegions, res.DataRegions)

		fmt.Println("  top instruction regions:")
		for _, row := range stats.NewBreakdown(res.Stats.ByRegion(stats.IFetch)).TopN(4) {
			fmt.Printf("    %-28s %5.1f%%\n", row.Name, row.Share*100)
		}
		fmt.Println("  top processes:")
		for _, row := range stats.NewBreakdown(res.Stats.ByProcess()).TopN(4) {
			fmt.Printf("    %-28s %5.1f%%\n", row.Name, row.Share*100)
		}
		fmt.Println()
	}
}
