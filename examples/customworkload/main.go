// Custom workload: the suite is a framework, not a fixed list. This example
// boots the simulated stack and runs a hand-written application against the
// public framework API: its own Dalvik bytecode (assembled from source), an
// AsyncTask pool, Skia drawing, and SurfaceFlinger composition — then prints
// where its references landed.
package main

import (
	"flag"
	"fmt"
	"log"

	"agave/internal/android"
	"agave/internal/dalvik"
	"agave/internal/kernel"
	"agave/internal/sim"
	"agave/internal/stats"
)

// The app's Java side: a hash-like mixing loop, written in the dex assembly
// dialect and verified before it runs.
const appSource = `
.method mix 1
    const v1, 0x1337
    const v2, 0
loop:
    if_ge v2, v0, done
    xor v1, v1, v2
    const v3, 5
    shl v4, v1, v3
    const v3, 11
    shr v5, v1, v3
    add v1, v4, v5
    addi v2, v2, 1
    goto loop
done:
    return v1
.end
`

func main() {
	durationMS := flag.Int64("duration", 1000, "simulated milliseconds to run")
	flag.Parse()
	if *durationMS <= 0 {
		log.Fatalf("-duration must be a positive number of milliseconds (got %d)", *durationMS)
	}
	k := kernel.New(kernel.Config{Quantum: sim.Millisecond, Seed: 7})
	defer k.Shutdown()
	sys := android.Boot(k)

	app := sys.NewApp(android.AppConfig{
		Process:      "benchmark",
		Label:        "example.custom",
		Fullscreen:   true,
		Foreground:   true,
		AsyncWorkers: 2,
	})

	file, err := dalvik.Assemble("example.custom.extra", appSource)
	if err != nil {
		log.Fatal(err)
	}

	app.Start(func(ex *kernel.Exec, a *android.App) {
		a.EnsureSurface(ex)
		extra := a.VM.LoadDex(ex, file)
		a.FrameLoop(ex, 20, func(ex *kernel.Exec, n uint64) {
			// Java logic: run our own bytecode on the interpreter.
			v := a.VM.Exec(ex, extra, "mix", int64(200+n%100))
			_ = v
			// Background lookup on the AsyncTask pool.
			if n%5 == 0 {
				a.Tasks.Submit(ex, func(ex *kernel.Exec) {
					a.VM.InterpBulk(ex, extra, 40_000, false)
				})
			}
			// Draw and post.
			a.Canvas.FillRect(ex, 800, 442)
			a.Canvas.Text(ex, 120)
		})
	})

	k.Run(sim.Ticks(*durationMS) * sim.Millisecond)

	fmt.Println("custom workload ran; reference profile:")
	fmt.Println("  instruction regions:")
	for _, row := range stats.NewBreakdown(k.Stats.ByRegion(stats.IFetch)).TopN(6) {
		fmt.Printf("    %-28s %5.1f%%\n", row.Name, row.Share*100)
	}
	fmt.Println("  threads:")
	for _, row := range stats.NewBreakdown(k.Stats.ByThread()).TopN(6) {
		fmt.Printf("    %-28s %5.1f%%\n", row.Name, row.Share*100)
	}
	fmt.Printf("  processes spawned: %d, threads: %d\n", k.ProcessCount(), k.ThreadCount())
}
