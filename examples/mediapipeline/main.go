// Media pipeline: reproduce the paper's most striking per-application
// observation — during gallery.mp4.view, the *mediaserver* process (not the
// application) performs 81 % of instruction references and 77 % of data
// references, because Stagefright decodes in the service process while the
// app idles on playback controls.
//
// The example contrasts three playback paths:
//
//	gallery.mp4.view  — decode in mediaserver (service-side)
//	vlc.mp4.view      — decode in the app (in-process native engine)
//	music.mp3.view.bkg— audio-only background service
package main

import (
	"flag"
	"fmt"
	"log"

	"agave/internal/core"
	"agave/internal/sim"
	"agave/internal/stats"
)

func main() {
	durationMS := flag.Int64("duration", 800, "measured simulated milliseconds per run")
	flag.Parse()
	if *durationMS <= 0 {
		log.Fatalf("-duration must be a positive number of milliseconds (got %d)", *durationMS)
	}
	cfg := core.DefaultConfig()
	cfg.Duration = sim.Ticks(*durationMS) * sim.Millisecond

	fmt.Printf("%-22s %14s %14s %14s\n", "workload", "benchmark", "mediaserver", "system_server")
	for _, name := range []string{"gallery.mp4.view", "vlc.mp4.view", "music.mp3.view.bkg"} {
		res, err := core.Run(name, cfg)
		if err != nil {
			log.Fatal(err)
		}
		bi := stats.NewBreakdown(res.Stats.ByProcess(stats.IFetch))
		fmt.Printf("%-22s %13.1f%% %13.1f%% %13.1f%%\n", name,
			bi.Share("benchmark")*100,
			bi.Share("mediaserver")*100,
			bi.Share("system_server")*100)
	}
	fmt.Println("\n(instruction references by process; compare gallery's mediaserver")
	fmt.Println(" column with the paper's 81 % — and note how VLC flips the split)")
}
