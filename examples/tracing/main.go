// Tracing: attach the sampled reference trace to a running machine and
// watch the attributed stream behind the paper's counters — who touched
// what, when. Useful for debugging workload models or feeding downstream
// consumers (e.g. a cache simulator) the same attributed events.
package main

import (
	"flag"
	"fmt"
	"log"

	"agave/internal/android"
	"agave/internal/apps"
	"agave/internal/kernel"
	"agave/internal/sim"
	"agave/internal/trace"
)

func main() {
	durationMS := flag.Int64("duration", 500, "simulated milliseconds to run")
	flag.Parse()
	if *durationMS <= 0 {
		log.Fatalf("-duration must be a positive number of milliseconds (got %d)", *durationMS)
	}
	k := kernel.New(kernel.Config{Quantum: sim.Millisecond, Seed: 3})
	defer k.Shutdown()

	// Keep every 64th accounting event, up to 4096 records.
	ring := trace.NewRing(4096, 64)
	trace.Attach(ring, k)

	sys := android.Boot(k)
	w, err := apps.ByName("countdown.main")
	if err != nil {
		panic(err)
	}
	apps.Launch(sys, w)
	k.Run(sim.Ticks(*durationMS) * sim.Millisecond)

	fmt.Printf("captured %d records (%d dropped by sampling)\n", ring.Len(), ring.Dropped)

	fmt.Println("\nlast few SurfaceFlinger events:")
	sf := ring.Filter(func(r trace.Record) bool { return r.Thread == "SurfaceFlinger" })
	for i := max(0, len(sf)-5); i < len(sf); i++ {
		fmt.Println(" ", sf[i])
	}

	fmt.Println("\nsampled per-region totals (top of the fold):")
	tot := ring.Totals()
	for _, region := range []string{"mspace", "fb0 (frame buffer)", "gralloc-buffer", "OS kernel"} {
		fmt.Printf("  %-22s %d\n", region, tot[region])
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
