// Scenario: run a scripted multi-app session — the suite's answer to the
// single-app-in-the-foreground blind spot. The commute session launches
// music, then navigation, and flips between them; while the map owns the
// screen the music app's main thread is parked in its looper, yet the MP3
// keeps decoding inside mediaserver. The per-process attribution below
// makes that split visible: the paused app nearly vanishes, the service
// process does not.
package main

import (
	"flag"
	"fmt"
	"log"

	"agave/internal/scenario"
	"agave/internal/sim"
	"agave/internal/stats"
)

func main() {
	durationMS := flag.Uint64("duration", 1000, "measured simulated milliseconds")
	flag.Parse()

	sc, err := scenario.ByName("commute")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scenario %s: %s\n", sc.Name, sc.Description)
	fmt.Println("timeline (thousandths of the measured interval):")
	for _, ev := range sc.Timeline {
		fmt.Printf("  %s\n", ev)
	}

	res, err := scenario.Run(sc, scenario.Config{
		Seed:     1,
		Duration: sim.Ticks(*durationMS) * sim.Millisecond,
		Warmup:   300 * sim.Millisecond,
		Quantum:  sim.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%d events over %d ms: %d memory references, %d processes (%d live at end), %d threads\n",
		res.Events, *durationMS, res.Stats.Total(), res.Processes, res.LiveProcesses, res.Threads)
	fmt.Println("\nper-process attribution (top of the fold):")
	for _, row := range stats.NewBreakdown(res.Stats.ByProcess()).TopN(8) {
		fmt.Printf("  %-22s %6.2f%%\n", row.Name, row.Share*100)
	}
}
