// Scenario: run scripted multi-app sessions — the suite's answer to the
// single-app-in-the-foreground blind spot. Two kinds of session contrast the
// two ways an app can leave the screen:
//
// The commute session launches music, then navigation, and flips between
// them; while the map owns the screen the music app's main thread is parked
// in its looper, yet the MP3 keeps decoding inside mediaserver. The
// per-process attribution makes that split visible: the paused app nearly
// vanishes, the service process does not.
//
// The memory-storm and cached-app-eviction sessions script no kill at all:
// they starve the machine with Pressure events. Backgrounded apps first
// shrink their dalvik heaps when the ActivityManager broadcasts
// onTrimMemory, and once free pages fall below the minfree ladder the
// lowmemorykiller evicts processes by oom_adj score — cached apps first, the
// foreground app never. Kill timing there is a consequence of load, not an
// input.
package main

import (
	"flag"
	"fmt"
	"log"

	"agave/internal/scenario"
	"agave/internal/sim"
	"agave/internal/stats"
)

func main() {
	durationMS := flag.Int64("duration", 1000, "measured simulated milliseconds")
	flag.Parse()
	if *durationMS <= 0 {
		log.Fatalf("-duration must be a positive number of milliseconds (got %d)", *durationMS)
	}

	for _, name := range []string{"commute", "memory-storm", "cached-app-eviction"} {
		sc, err := scenario.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("scenario %s: %s\n", sc.Name, sc.Description)
		fmt.Println("timeline (thousandths of the measured interval):")
		for _, ev := range sc.Timeline {
			fmt.Printf("  %s\n", ev)
		}

		res, err := scenario.Run(sc, scenario.Config{
			Seed:     1,
			Duration: sim.Ticks(*durationMS) * sim.Millisecond,
			Warmup:   300 * sim.Millisecond,
			Quantum:  sim.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("\n%d events over %d ms: %d memory references, %d processes (%d live at end), %d threads\n",
			res.Events, *durationMS, res.Stats.Total(), res.Processes, res.LiveProcesses, res.Threads)
		if res.LMKKills > 0 || res.Trims > 0 {
			fmt.Printf("memory pressure: %d onTrimMemory callbacks, %d lowmemorykiller kills %v\n",
				res.Trims, res.LMKKills, res.LMKVictims)
		}
		fmt.Println("\nper-process attribution (top of the fold):")
		for _, row := range stats.NewBreakdown(res.Stats.ByProcess()).TopN(8) {
			fmt.Printf("  %-22s %6.2f%%\n", row.Name, row.Share*100)
		}
		fmt.Println()
	}
}
