// Suite: execute a run matrix — benchmarks × seeds × ablations — on the
// parallel suite engine, stream results in deterministic plan order as they
// complete, and fold the repeated seeds into mean/min/max summaries.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"agave/internal/core"
	"agave/internal/report"
	"agave/internal/sim"
	"agave/internal/suite"
)

func main() {
	durationMS := flag.Int64("duration", 300, "measured simulated milliseconds per run")
	flag.Parse()
	if *durationMS <= 0 {
		log.Fatalf("-duration must be a positive number of milliseconds (got %d)", *durationMS)
	}
	cfg := core.DefaultConfig()
	cfg.Duration = sim.Ticks(*durationMS) * sim.Millisecond // default keeps the demo snappy
	cfg.Warmup = 200 * sim.Millisecond

	// 3 benchmarks × 2 seeds × 2 ablations = 12 runs.
	plan := suite.Plan{
		Benchmarks: []string{"frozenbubble.main", "gallery.mp4.view", "401.bzip2"},
		Seeds:      []uint64{1, 2},
		Ablations: []suite.Ablation{
			suite.Baseline,
			{Name: "nojit", DisableJIT: true},
		},
	}

	// The engine shards runs across one worker per core; the ordered
	// collector still emits them in plan order, so this stream — and every
	// result below — is bit-identical to a serial run.
	eng := core.NewEngine(cfg, 0)
	eng.OnResult = func(o suite.RunOutput[*core.Result]) {
		fmt.Printf("done %-40s %8.1f ms wall, %6.0f Mticks/s\n",
			o.Spec, float64(o.Wall.Microseconds())/1000, o.TicksPerSecond()/1e6)
	}
	outputs, err := eng.Execute(plan.Specs())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	report.WriteMatrix(os.Stdout, outputs)

	fmt.Println()
	report.WriteSummaries(os.Stdout, outputs)
}
