// Scenariofile: declarative scenario authoring end to end. The suite's
// bundled sessions are Go code, but a session is really just data — a name,
// an app roster, and a timeline — so it can live in a JSON document instead.
// This example runs the whole loop:
//
//  1. Decode night-shift.json (embedded next to this file): a hand-authored
//     session the library does not ship — bedtime reading over background
//     radio, with taps and swipes delivered through the InputDispatcher to
//     whichever app holds the focus (the stale ones drop and are counted),
//     and a late pressure wave that squeezes the cached dictionary.
//  2. Run it exactly as a bundled scenario runs, and show the per-process
//     attribution and pressure outcome.
//  3. Generate a session procedurally from a (seed, apps, events, pressure)
//     tuple, run it at 10 concurrently-live apps, and re-encode it to
//     canonical JSON — the document you would commit once a generated
//     session turns out to be an interesting regression case.
package main

import (
	_ "embed"
	"flag"
	"fmt"
	"log"

	"agave/internal/scenario"
	"agave/internal/sim"
	"agave/internal/stats"
)

//go:embed night-shift.json
var nightShift []byte

func main() {
	durationMS := flag.Int64("duration", 1000, "measured simulated milliseconds")
	flag.Parse()
	if *durationMS <= 0 {
		log.Fatalf("-duration must be a positive number of milliseconds (got %d)", *durationMS)
	}
	cfg := scenario.Config{
		Seed:     1,
		Duration: sim.Ticks(*durationMS) * sim.Millisecond,
		Warmup:   300 * sim.Millisecond,
		Quantum:  sim.Millisecond,
	}

	// 1. A hand-authored scenario document, decoded by the strict codec.
	authored, err := scenario.Decode(nightShift)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decoded %q: %s\n", authored.Name, authored.Description)
	for _, ev := range authored.Timeline {
		fmt.Printf("  %s\n", ev)
	}

	// 2. Run it like any bundled session.
	run := func(sc *scenario.Scenario) {
		res, err := scenario.Run(sc, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%d events over %d ms: %d references, %d processes (%d live at end), peak %d live apps\n",
			res.Events, *durationMS, res.Stats.Total(), res.Processes, res.LiveProcesses, res.MaxLive)
		if res.LMKKills > 0 || res.Trims > 0 {
			fmt.Printf("memory pressure: %d trims, %d lowmemorykiller kills %v\n",
				res.Trims, res.LMKKills, res.LMKVictims)
		}
		if res.InputEvents > 0 {
			fmt.Printf("input: %d samples injected, %d dispatched, %d dropped\n",
				res.InputEvents, res.InputDispatched, res.InputDropped)
			for _, st := range res.InputApps {
				if st.Dispatched == 0 {
					fmt.Printf("  %-10s 0 dispatched, %d dropped (unfocused, paused, or dead)\n",
						st.App, st.Dropped)
					continue
				}
				fmt.Printf("  %-10s %d dispatched, %d dropped, dispatch latency mean %.1f us (max %.1f)\n",
					st.App, st.Dispatched, st.Dropped,
					float64(st.LatencySum)/float64(st.Dispatched)/float64(sim.Microsecond),
					float64(st.LatencyMax)/float64(sim.Microsecond))
			}
		}
		fmt.Println("per-process attribution (top of the fold):")
		for _, row := range stats.NewBreakdown(res.Stats.ByProcess()).TopN(6) {
			fmt.Printf("  %-22s %6.2f%%\n", row.Name, row.Share*100)
		}
	}
	run(authored)

	// 3. A generated session: diversity as a sweep axis. Ten apps live at
	// once, default density, a mild pressure knob, and a burst of generated
	// input gestures chasing the focus around.
	gen := scenario.Generate(scenario.GenConfig{Seed: 7, Apps: 10, Pressure: 1, Inputs: 16})
	fmt.Printf("\ngenerated %q (%s): %d apps, %d events\n",
		gen.Name, gen.Source, len(gen.Apps), len(gen.Timeline))
	run(gen)

	// Re-encode the generated session: byte-stable canonical JSON, ready to
	// commit as a regression scenario.
	doc, err := scenario.Encode(gen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncanonical encoding: %d bytes (decode→encode is the identity)\n", len(doc))
}
