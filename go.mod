module agave

go 1.23
