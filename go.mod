module agave

go 1.24
