// Package agave is a full-system reproduction of "Agave: A Benchmark Suite
// for Exploring the Complexities of the Android Software Stack" (Brown et
// al., ISPASS 2016).
//
// The paper's measurement platform (Android 2.3.7 + Linux 2.6.35 inside a
// modified gem5) is rebuilt here as a deterministic behavioural simulator:
// every instruction fetch and data reference issued by the simulated stack
// is attributed to a (process, thread, VMA region) triple, and the paper's
// four figures and Table I are folds over the resulting counters.
//
// Entry points: the public API lives in internal/core (suite registry and
// runner) and internal/report (figure/table generation); the cmd/agave CLI
// and examples/ show typical use. See docs/ARCHITECTURE.md for the system
// inventory and layer map.
//
// Suite sweeps — the cross product of benchmarks × seeds × ablations — run
// on the parallel execution engine in internal/suite: runs are sharded
// across a bounded worker pool (each run boots its own simulated machine),
// collected in deterministic plan order, and folded into mean/min/max
// summaries across seeds. Results are bit-identical to a serial run of the
// same plan; `agave suite -parallel N` and core.RunSuiteParallel expose the
// engine, and core.RunSuite delegates to it with one worker.
package agave
