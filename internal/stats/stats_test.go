package stats

import (
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestAddAndTotals(t *testing.T) {
	c := NewCollector()
	p := c.Proc("benchmark")
	th := c.Thread("main")
	r := c.Region("libdvm.so")
	c.Add(p, th, r, IFetch, 100)
	c.Add(p, th, r, DataRead, 30)
	c.Add(p, th, r, DataWrite, 20)
	if got := c.Total(); got != 150 {
		t.Fatalf("Total = %d, want 150", got)
	}
	if got := c.Total(IFetch); got != 100 {
		t.Fatalf("Total(IFetch) = %d, want 100", got)
	}
	if got := c.Total(DataKinds...); got != 50 {
		t.Fatalf("Total(data) = %d, want 50", got)
	}
}

func TestAddZeroIsNoop(t *testing.T) {
	c := NewCollector()
	c.Add(c.Proc("p"), c.Thread("t"), c.Region("r"), IFetch, 0)
	if c.Total() != 0 || c.RegionCount() != 0 {
		t.Fatal("zero add left residue")
	}
}

func TestInterningStable(t *testing.T) {
	c := NewCollector()
	a := c.Region("dalvik-heap")
	b := c.Region("dalvik-heap")
	if a != b {
		t.Fatal("same name interned to different IDs")
	}
	if c.RegionName(a) != "dalvik-heap" {
		t.Fatalf("round trip gave %q", c.RegionName(a))
	}
}

func TestFolds(t *testing.T) {
	c := NewCollector()
	p1, p2 := c.Proc("benchmark"), c.Proc("system_server")
	t1, t2 := c.Thread("main"), c.Thread("SurfaceFlinger")
	r1, r2 := c.Region("libdvm.so"), c.Region("fb0 (frame buffer)")
	c.Add(p1, t1, r1, IFetch, 70)
	c.Add(p2, t2, r2, DataWrite, 30)

	byR := c.ByRegion()
	if byR["libdvm.so"] != 70 || byR["fb0 (frame buffer)"] != 30 {
		t.Fatalf("ByRegion = %v", byR)
	}
	byP := c.ByProcess(IFetch)
	if byP["benchmark"] != 70 || byP["system_server"] != 0 {
		t.Fatalf("ByProcess(IFetch) = %v", byP)
	}
	byT := c.ByThread(DataWrite)
	if byT["SurfaceFlinger"] != 30 {
		t.Fatalf("ByThread = %v", byT)
	}
}

func TestRegionAndProcessCounts(t *testing.T) {
	c := NewCollector()
	p := c.Proc("p")
	th := c.Thread("t")
	c.Add(p, th, c.Region("a"), IFetch, 1)
	c.Add(p, th, c.Region("b"), DataRead, 1)
	c.Add(p, th, c.Region("c"), DataWrite, 1)
	if got := c.RegionCount(IFetch); got != 1 {
		t.Fatalf("RegionCount(IFetch) = %d, want 1", got)
	}
	if got := c.RegionCount(DataKinds...); got != 2 {
		t.Fatalf("RegionCount(data) = %d, want 2", got)
	}
	if got := c.RegionCount(); got != 3 {
		t.Fatalf("RegionCount() = %d, want 3", got)
	}
	if got := c.ProcessCount(); got != 1 {
		t.Fatalf("ProcessCount = %d, want 1", got)
	}
}

func TestMergePreservesTotals(t *testing.T) {
	a := NewCollector()
	a.Add(a.Proc("x"), a.Thread("m"), a.Region("r1"), IFetch, 10)
	b := NewCollector()
	// Different interning order on purpose.
	b.Region("zzz")
	b.Add(b.Proc("x"), b.Thread("m"), b.Region("r1"), IFetch, 5)
	b.Add(b.Proc("y"), b.Thread("m"), b.Region("r2"), DataRead, 7)
	a.Merge(b)
	if got := a.Total(); got != 22 {
		t.Fatalf("merged total = %d, want 22", got)
	}
	if got := a.ByRegion(IFetch)["r1"]; got != 15 {
		t.Fatalf("merged r1 = %d, want 15", got)
	}
	if got := a.ByProcess()["y"]; got != 7 {
		t.Fatalf("merged y = %d, want 7", got)
	}
}

func TestReset(t *testing.T) {
	c := NewCollector()
	r := c.Region("r")
	c.Add(c.Proc("p"), c.Thread("t"), r, IFetch, 5)
	c.Reset()
	if c.Total() != 0 {
		t.Fatal("Reset left counts")
	}
	if c.Region("r") != r {
		t.Fatal("Reset dropped interned names")
	}
}

func TestBreakdownSortingAndShares(t *testing.T) {
	b := NewBreakdown(map[string]uint64{"a": 10, "b": 30, "c": 60})
	if b.Total != 100 {
		t.Fatalf("Total = %d", b.Total)
	}
	if b.Rows[0].Name != "c" || b.Rows[1].Name != "b" || b.Rows[2].Name != "a" {
		t.Fatalf("order %v", b.Rows)
	}
	if b.Share("c") != 0.6 || b.Share("missing") != 0 {
		t.Fatalf("shares wrong: %v", b.Rows)
	}
	if b.Count("b") != 30 {
		t.Fatal("Count wrong")
	}
}

func TestBreakdownTieBreakByName(t *testing.T) {
	b := NewBreakdown(map[string]uint64{"zeta": 5, "alpha": 5})
	if b.Rows[0].Name != "alpha" {
		t.Fatalf("tie not broken by name: %v", b.Rows)
	}
}

func TestBreakdownFold(t *testing.T) {
	b := NewBreakdown(map[string]uint64{
		"mspace": 50, "libdvm.so": 30, "tiny1": 5, "tiny2": 5, "tiny3": 10,
	})
	f := b.Fold([]string{"mspace", "libdvm.so", "absent"})
	if len(f.Rows) != 4 {
		t.Fatalf("folded rows = %d, want 4", len(f.Rows))
	}
	if f.Rows[0].Name != "mspace" || f.Rows[0].Count != 50 {
		t.Fatalf("row0 = %+v", f.Rows[0])
	}
	if f.Rows[2].Name != "absent" || f.Rows[2].Count != 0 {
		t.Fatalf("absent legend entry mishandled: %+v", f.Rows[2])
	}
	last := f.Rows[3]
	if !strings.HasPrefix(last.Name, "other (") || last.Count != 20 {
		t.Fatalf("other row = %+v", last)
	}
	if !strings.Contains(last.Name, "3 items") {
		t.Fatalf("other row should count 3 items: %q", last.Name)
	}
	// Folding preserves the total.
	var sum uint64
	for _, r := range f.Rows {
		sum += r.Count
	}
	if sum != b.Total {
		t.Fatalf("fold changed total: %d != %d", sum, b.Total)
	}
}

func TestBreakdownTopN(t *testing.T) {
	b := NewBreakdown(map[string]uint64{"a": 1, "b": 2, "c": 3})
	if got := len(b.TopN(2)); got != 2 {
		t.Fatalf("TopN(2) len = %d", got)
	}
	if got := len(b.TopN(99)); got != 3 {
		t.Fatalf("TopN(99) len = %d", got)
	}
}

// Property: for any set of adds, Total equals the sum over every fold.
func TestFoldSumsMatchTotalProperty(t *testing.T) {
	f := func(counts []uint16) bool {
		c := NewCollector()
		procs := []string{"p1", "p2", "p3"}
		regions := []string{"r1", "r2", "r3", "r4"}
		var want uint64
		for i, n := range counts {
			p := c.Proc(procs[i%len(procs)])
			th := c.Thread("t")
			r := c.Region(regions[i%len(regions)])
			c.Add(p, th, r, Kind(i%3), uint64(n))
			want += uint64(n)
		}
		var byR, byP uint64
		for _, v := range c.ByRegion() {
			byR += v
		}
		for _, v := range c.ByProcess() {
			byP += v
		}
		return byR == want && byP == want && c.Total() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestKindString(t *testing.T) {
	if IFetch.String() != "ifetch" || DataRead.String() != "dread" || DataWrite.String() != "dwrite" {
		t.Fatal("kind names wrong")
	}
	if !strings.Contains(Kind(9).String(), "9") {
		t.Fatal("unknown kind should print its number")
	}
}

func TestEntriesCanonicalAndInterningInvariant(t *testing.T) {
	// Two collectors fed the same counts in different orders (so their
	// interned ID spaces differ) must produce identical canonical entries
	// and fingerprints.
	type add struct {
		proc, thread, region string
		kind                 Kind
		n                    uint64
	}
	adds := []add{
		{"system_server", "Binder", "libdvm.so", IFetch, 40},
		{"benchmark", "main", "mspace", IFetch, 100},
		{"benchmark", "GC", "dalvik-heap", DataWrite, 7},
		{"mediaserver", "AudioTrackThread", "heap", DataRead, 12},
	}
	feed := func(c *Collector, order []int) {
		for _, i := range order {
			a := adds[i]
			c.Add(c.Proc(a.proc), c.Thread(a.thread), c.Region(a.region), a.kind, a.n)
		}
	}
	a, b := NewCollector(), NewCollector()
	feed(a, []int{0, 1, 2, 3})
	feed(b, []int{3, 2, 1, 0})
	ea, eb := a.Entries(), b.Entries()
	if !reflect.DeepEqual(ea, eb) {
		t.Fatalf("entries depend on interning order:\n%v\n%v", ea, eb)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("fingerprints depend on interning order")
	}
	// Canonical order: proc, thread, region, kind ascending.
	if !sort.SliceIsSorted(ea, func(i, j int) bool {
		x, y := ea[i], ea[j]
		if x.Proc != y.Proc {
			return x.Proc < y.Proc
		}
		if x.Thread != y.Thread {
			return x.Thread < y.Thread
		}
		if x.Region != y.Region {
			return x.Region < y.Region
		}
		return x.Kind < y.Kind
	}) {
		t.Fatalf("entries not canonically sorted: %v", ea)
	}
	// A count change must change the fingerprint.
	before := a.Fingerprint()
	a.Add(a.Proc("benchmark"), a.Thread("main"), a.Region("mspace"), IFetch, 1)
	if a.Fingerprint() == before {
		t.Fatal("fingerprint blind to count changes")
	}
}

func TestFingerprintEmptyAndZeroSuppressed(t *testing.T) {
	a, b := NewCollector(), NewCollector()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("empty collectors disagree")
	}
	// Interned-but-unused names must not affect entries or fingerprints.
	b.Proc("ghost")
	b.Thread("ghost")
	b.Region("ghost")
	if len(b.Entries()) != 0 || a.Fingerprint() != b.Fingerprint() {
		t.Fatal("interned-but-unused names leak into the canonical form")
	}
}

func TestAggMeanMinMax(t *testing.T) {
	var a Agg
	if a.Mean() != 0 || a.Min() != 0 || a.Max() != 0 || a.N != 0 {
		t.Fatal("zero Agg not empty")
	}
	for _, v := range []float64{4, -2, 10, 0} {
		a.Observe(v)
	}
	if a.N != 4 || a.Mean() != 3 || a.Min() != -2 || a.Max() != 10 {
		t.Fatalf("agg = %+v mean %.1f min %.1f max %.1f", a, a.Mean(), a.Min(), a.Max())
	}
	// Single negative sample: min == max == mean.
	var one Agg
	one.Observe(-5)
	if one.Min() != -5 || one.Max() != -5 || one.Mean() != -5 {
		t.Fatalf("single-sample agg wrong: %+v", one)
	}
}

func TestNameLookupsDoNotAllocate(t *testing.T) {
	c := NewCollector()
	p := c.Proc("system_server")
	th := c.Thread("Binder Thread")
	r := c.Region("libdvm.so")
	var sink string
	allocs := testing.AllocsPerRun(100, func() {
		sink = c.ProcName(p)
		sink = c.ThreadName(th)
		sink = c.RegionName(r)
		// Out-of-range ids take the preformatted fallback, not Sprintf.
		sink = c.ProcName(ProcID(9999))
		sink = c.ThreadName(ThreadID(-1))
	})
	_ = sink
	if allocs != 0 {
		t.Fatalf("name lookups allocated %.1f per run, want 0", allocs)
	}
	if got := c.ProcName(ProcID(9999)); got != unknownName {
		t.Fatalf("out-of-range lookup = %q, want %q", got, unknownName)
	}
}

func TestAggMerge(t *testing.T) {
	// Merging per-shard partials in order reproduces the serial fold bit for
	// bit: same N, same Sum (not just approximately), same extrema.
	samples := []float64{0.1, 0.2, 0.3, 4, -2, 1e-9, 7.5, 0.7}
	var serial Agg
	for _, v := range samples {
		serial.Observe(v)
	}
	var left, right Agg
	for _, v := range samples[:3] {
		left.Observe(v)
	}
	for _, v := range samples[3:] {
		right.Observe(v)
	}
	merged := left
	merged.Merge(right)
	if merged != serial {
		t.Fatalf("merged = %+v, serial = %+v", merged, serial)
	}
	// Merging into or from an empty aggregate is the identity.
	var empty Agg
	got := serial
	got.Merge(empty)
	if got != serial {
		t.Fatalf("merge with empty changed agg: %+v", got)
	}
	got = empty
	got.Merge(serial)
	if got != serial {
		t.Fatalf("merge into empty = %+v, want %+v", got, serial)
	}
}
