// Package stats implements the reference-accounting engine of the Agave
// reproduction. It plays the role of the gem5/kernel modifications described
// in the paper: every instruction fetch and data reference in the simulation
// is attributed to a (process, thread, virtual-memory region) triple, and the
// figures and tables of the evaluation are folds over the resulting counter
// matrix.
//
// Names are interned to small integer IDs so the hot accounting path is a
// single map update. Thread names are registered by *group* name (for
// example, all "AsyncTask #N" pool workers account as "AsyncTask"), matching
// how the paper's Table I ranks threads.
package stats

import (
	"fmt"
	"sort"
)

// Kind labels a memory access class.
type Kind uint8

// Access classes. The paper's figures use instruction reads (Fig 1, Fig 3),
// data references = reads+writes (Fig 2, Fig 4), and total memory references
// = everything (Table I).
const (
	IFetch Kind = iota
	DataRead
	DataWrite
	numKinds
)

// String returns the conventional name of the access class.
func (k Kind) String() string {
	switch k {
	case IFetch:
		return "ifetch"
	case DataRead:
		return "dread"
	case DataWrite:
		return "dwrite"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// DataKinds selects data reads and writes (the paper's "data references").
var DataKinds = []Kind{DataRead, DataWrite}

// AllKinds selects every access class (the paper's "memory references").
var AllKinds = []Kind{IFetch, DataRead, DataWrite}

// InstrKinds selects instruction reads only.
var InstrKinds = []Kind{IFetch}

// KindSet is a precomputed access-class selector. The variadic query methods
// build one per call; callers folding counters repeatedly (mid-run metric
// reads, report assembly) should construct the set once with MakeKindSet —
// or use the hoisted AllSet/DataSet/InstrSet — and call the *Set/*Into
// variants, which allocate nothing beyond what the caller passes in.
type KindSet [numKinds]bool

// MakeKindSet builds the selector for the given classes; with no arguments
// it selects every class.
func MakeKindSet(kinds ...Kind) KindSet {
	var sel KindSet
	if len(kinds) == 0 {
		for i := range sel {
			sel[i] = true
		}
		return sel
	}
	for _, k := range kinds {
		sel[k] = true
	}
	return sel
}

// Hoisted selectors for the three folds the paper's figures use.
var (
	AllSet   = MakeKindSet(AllKinds...)
	DataSet  = MakeKindSet(DataKinds...)
	InstrSet = MakeKindSet(InstrKinds...)
)

// ProcID identifies an interned process name.
type ProcID int32

// ThreadID identifies an interned thread group name.
type ThreadID int32

// RegionID identifies an interned VMA region name.
type RegionID int32

// interner maps names to dense int32 IDs, preserving registration order.
type interner struct {
	ids   map[string]int32
	names []string
}

func newInterner() *interner {
	return &interner{ids: make(map[string]int32)}
}

func (in *interner) get(name string) int32 {
	if id, ok := in.ids[name]; ok {
		return id
	}
	id := int32(len(in.names))
	in.ids[name] = id
	in.names = append(in.names, name)
	return id
}

// unknownName is the out-of-range fallback of interner.name. It is a
// preformatted constant so the lookup path never allocates: name resolution
// runs inside every counter fold, and formatting an error string there would
// put fmt.Sprintf on the hot path for what is always a caller bug.
const unknownName = "<unknown id>"

func (in *interner) name(id int32) string {
	if id < 0 || int(id) >= len(in.names) {
		return unknownName
	}
	return in.names[id]
}

// Collector accumulates attributed reference counts. The zero value is not
// usable; call NewCollector.
type Collector struct {
	procs   *interner
	threads *interner
	regions *interner
	counts  map[ckey]uint64

	// Tap, when non-nil, observes every Add after interning. It is the
	// hook the sampled reference trace (internal/trace) attaches to;
	// leave nil for zero overhead.
	Tap func(p ProcID, t ThreadID, r RegionID, k Kind, n uint64)
}

type ckey struct {
	proc   ProcID
	thread ThreadID
	region RegionID
	kind   Kind
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{
		procs:   newInterner(),
		threads: newInterner(),
		regions: newInterner(),
		counts:  make(map[ckey]uint64),
	}
}

// Proc interns a process name.
func (c *Collector) Proc(name string) ProcID { return ProcID(c.procs.get(name)) }

// Thread interns a thread group name.
func (c *Collector) Thread(name string) ThreadID { return ThreadID(c.threads.get(name)) }

// Region interns a VMA region name.
func (c *Collector) Region(name string) RegionID { return RegionID(c.regions.get(name)) }

// ProcName resolves a process ID back to its name.
func (c *Collector) ProcName(id ProcID) string { return c.procs.name(int32(id)) }

// ThreadName resolves a thread ID back to its group name.
func (c *Collector) ThreadName(id ThreadID) string { return c.threads.name(int32(id)) }

// RegionName resolves a region ID back to its name.
func (c *Collector) RegionName(id RegionID) string { return c.regions.name(int32(id)) }

// Add records n accesses of class k issued by (proc p, thread t) against
// region r.
func (c *Collector) Add(p ProcID, t ThreadID, r RegionID, k Kind, n uint64) {
	if n == 0 {
		return
	}
	c.counts[ckey{p, t, r, k}] += n
	if c.Tap != nil {
		c.Tap(p, t, r, k, n)
	}
}

// Total reports the number of accesses across the given classes (all classes
// when none are given).
func (c *Collector) Total(kinds ...Kind) uint64 { return c.TotalSet(MakeKindSet(kinds...)) }

// TotalSet is Total with a caller-built selector: the allocation-free form
// for repeated mid-run reads.
func (c *Collector) TotalSet(sel KindSet) uint64 {
	var sum uint64
	for k, v := range c.counts {
		if sel[k.kind] {
			sum += v
		}
	}
	return sum
}

// reuse clears and returns dst, allocating a fresh map only when dst is nil —
// the shared reuse contract of the *Into fold variants.
func reuse(dst map[string]uint64) map[string]uint64 {
	if dst == nil {
		return make(map[string]uint64)
	}
	clear(dst)
	return dst
}

// ByRegion folds counts of the given classes by region name.
func (c *Collector) ByRegion(kinds ...Kind) map[string]uint64 {
	return c.ByRegionInto(nil, MakeKindSet(kinds...))
}

// ByRegionInto is ByRegion with a caller-built selector and an optional
// destination map: a non-nil dst is cleared and reused, so a caller polling
// the fold mid-run allocates nothing after the first read.
func (c *Collector) ByRegionInto(dst map[string]uint64, sel KindSet) map[string]uint64 {
	dst = reuse(dst)
	for k, v := range c.counts {
		if sel[k.kind] {
			dst[c.RegionName(k.region)] += v
		}
	}
	return dst
}

// ByProcess folds counts of the given classes by process name.
func (c *Collector) ByProcess(kinds ...Kind) map[string]uint64 {
	return c.ByProcessInto(nil, MakeKindSet(kinds...))
}

// ByProcessInto is ByProcess with a caller-built selector and an optional
// reusable destination map (see ByRegionInto).
func (c *Collector) ByProcessInto(dst map[string]uint64, sel KindSet) map[string]uint64 {
	dst = reuse(dst)
	for k, v := range c.counts {
		if sel[k.kind] {
			dst[c.ProcName(k.proc)] += v
		}
	}
	return dst
}

// ByRegionForProcess folds counts of the given classes by region name,
// restricted to the named process.
func (c *Collector) ByRegionForProcess(proc string, kinds ...Kind) map[string]uint64 {
	return c.ByRegionForProcessInto(nil, proc, MakeKindSet(kinds...))
}

// ByRegionForProcessInto is ByRegionForProcess with a caller-built selector
// and an optional reusable destination map (see ByRegionInto).
func (c *Collector) ByRegionForProcessInto(dst map[string]uint64, proc string, sel KindSet) map[string]uint64 {
	dst = reuse(dst)
	pid, ok := c.procs.ids[proc]
	if !ok {
		return dst
	}
	for k, v := range c.counts {
		if k.proc == ProcID(pid) && sel[k.kind] {
			dst[c.RegionName(k.region)] += v
		}
	}
	return dst
}

// ByThread folds counts of the given classes by thread group name.
func (c *Collector) ByThread(kinds ...Kind) map[string]uint64 {
	return c.ByThreadInto(nil, MakeKindSet(kinds...))
}

// ByThreadInto is ByThread with a caller-built selector and an optional
// reusable destination map (see ByRegionInto).
func (c *Collector) ByThreadInto(dst map[string]uint64, sel KindSet) map[string]uint64 {
	dst = reuse(dst)
	for k, v := range c.counts {
		if sel[k.kind] {
			dst[c.ThreadName(k.thread)] += v
		}
	}
	return dst
}

// RegionCount reports how many distinct regions received at least one access
// of the given classes. This backs the paper's "code regions"/"data regions"
// per-application scalar metrics.
func (c *Collector) RegionCount(kinds ...Kind) int {
	return c.RegionCountSet(MakeKindSet(kinds...))
}

// RegionCountSet is RegionCount with a caller-built selector. The seen table
// is a dense bool slice over the region ID space rather than a map: region
// IDs are small and dense by construction, so the scalar census costs one
// slice allocation instead of a map insert per distinct region.
func (c *Collector) RegionCountSet(sel KindSet) int {
	seen := make([]bool, len(c.regions.names))
	n := 0
	for k, v := range c.counts {
		if v > 0 && sel[k.kind] && !seen[k.region] {
			seen[k.region] = true
			n++
		}
	}
	return n
}

// ProcessCount reports how many distinct processes issued at least one access.
func (c *Collector) ProcessCount() int {
	seen := make(map[ProcID]bool)
	for k, v := range c.counts {
		if v > 0 {
			seen[k.proc] = true
		}
	}
	return len(seen)
}

// Cells reports the number of distinct counter cells currently held — the
// presizing hint for a collector about to receive this one's counts.
func (c *Collector) Cells() int { return len(c.counts) }

// Presize grows the (empty or warmed) counter table to hold at least cells
// entries, so the inserts that follow never rehash. Report assembly uses it
// to size suite-wide merge targets from their inputs' Cells before Merge.
func (c *Collector) Presize(cells int) {
	if cells <= len(c.counts) {
		return
	}
	counts := make(map[ckey]uint64, cells)
	for k, v := range c.counts {
		counts[k] = v
	}
	c.counts = counts
}

// Merge adds every count in other into c. Names are re-interned, so the two
// collectors need not share ID spaces.
func (c *Collector) Merge(other *Collector) {
	for k, v := range other.counts {
		nk := ckey{
			proc:   c.Proc(other.ProcName(k.proc)),
			thread: c.Thread(other.ThreadName(k.thread)),
			region: c.Region(other.RegionName(k.region)),
			kind:   k.kind,
		}
		c.counts[nk] += v
	}
}

// Reset clears all counts but keeps interned names — and, because clear
// preserves the map's buckets, the counter table stays preallocated at its
// high-water size. A warmed collector's next measurement interval therefore
// inserts into a table that already fits the cells the warmup populated,
// which is exactly the engine's reset-after-boot pattern.
func (c *Collector) Reset() { clear(c.counts) }

// Entry is one cell of the counter matrix in name (not ID) space.
type Entry struct {
	Proc   string
	Thread string
	Region string
	Kind   Kind
	Count  uint64
}

// Entries returns every non-zero cell of the counter matrix in canonical
// order (proc, thread, region, kind ascending by name). Two collectors with
// equal Entries hold bit-identical statistics even if their interned ID
// spaces differ — this is the comparison the suite determinism tests and the
// JSON export are built on.
func (c *Collector) Entries() []Entry {
	out := make([]Entry, 0, len(c.counts))
	for k, v := range c.counts {
		if v == 0 {
			continue
		}
		out = append(out, Entry{
			Proc:   c.ProcName(k.proc),
			Thread: c.ThreadName(k.thread),
			Region: c.RegionName(k.region),
			Kind:   k.kind,
			Count:  v,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Proc != b.Proc {
			return a.Proc < b.Proc
		}
		if a.Thread != b.Thread {
			return a.Thread < b.Thread
		}
		if a.Region != b.Region {
			return a.Region < b.Region
		}
		return a.Kind < b.Kind
	})
	return out
}

// Fingerprint folds the canonical entry list into one FNV-1a hash: equal
// fingerprints mean bit-identical attributed counters. It is independent of
// interning order, so serial and parallel runs of the same seed compare
// equal.
func (c *Collector) Fingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h = (h ^ uint64(s[i])) * prime64
		}
		h = (h ^ 0xff) * prime64 // field separator
	}
	mixU64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			h = (h ^ (v & 0xff)) * prime64
			v >>= 8
		}
	}
	for _, e := range c.Entries() {
		mix(e.Proc)
		mix(e.Thread)
		mix(e.Region)
		mixU64(uint64(e.Kind))
		mixU64(e.Count)
	}
	return h
}

// Agg accumulates the mean/min/max of a sample stream; the zero value is an
// empty aggregate. It backs the suite engine's repeated-seed summaries.
type Agg struct {
	N    int
	Sum  float64
	MinV float64
	MaxV float64
}

// Observe folds one sample into the aggregate.
func (a *Agg) Observe(v float64) {
	if a.N == 0 || v < a.MinV {
		a.MinV = v
	}
	if a.N == 0 || v > a.MaxV {
		a.MaxV = v
	}
	a.N++
	a.Sum += v
}

// Merge folds the aggregate other into a, as if a had observed every sample
// other summarizes (after its own). It is the distributed counterpart of
// Observe: the fleet executor builds per-shard partial aggregates worker-side
// and merges them coordinator-side in shard order, so the float fold tree —
// and therefore every rounding step — is identical between a serial run and
// any worker count.
func (a *Agg) Merge(other Agg) {
	if other.N == 0 {
		return
	}
	if a.N == 0 || other.MinV < a.MinV {
		a.MinV = other.MinV
	}
	if a.N == 0 || other.MaxV > a.MaxV {
		a.MaxV = other.MaxV
	}
	a.N += other.N
	a.Sum += other.Sum
}

// Mean reports the sample mean (zero when empty).
func (a Agg) Mean() float64 {
	if a.N == 0 {
		return 0
	}
	return a.Sum / float64(a.N)
}

// Min reports the smallest sample (zero when empty).
func (a Agg) Min() float64 { return a.MinV }

// Max reports the largest sample (zero when empty).
func (a Agg) Max() float64 { return a.MaxV }

// Row is one entry of a Breakdown: a named count with its share of the total.
type Row struct {
	Name  string
	Count uint64
	Share float64 // fraction of the breakdown total, in [0,1]
}

// Breakdown is a sorted percentage decomposition of a counter fold.
type Breakdown struct {
	Rows  []Row
	Total uint64
}

// NewBreakdown sorts the fold m by descending count (name ascending on ties)
// and computes shares.
func NewBreakdown(m map[string]uint64) Breakdown {
	b := Breakdown{Rows: make([]Row, 0, len(m))}
	for name, n := range m {
		b.Total += n
		b.Rows = append(b.Rows, Row{Name: name, Count: n})
	}
	sort.Slice(b.Rows, func(i, j int) bool {
		if b.Rows[i].Count != b.Rows[j].Count {
			return b.Rows[i].Count > b.Rows[j].Count
		}
		return b.Rows[i].Name < b.Rows[j].Name
	})
	if b.Total > 0 {
		for i := range b.Rows {
			b.Rows[i].Share = float64(b.Rows[i].Count) / float64(b.Total)
		}
	}
	return b
}

// Share reports the share of the named row, zero when absent.
func (b Breakdown) Share(name string) float64 {
	for _, r := range b.Rows {
		if r.Name == name {
			return r.Share
		}
	}
	return 0
}

// Count reports the count of the named row, zero when absent.
func (b Breakdown) Count(name string) uint64 {
	for _, r := range b.Rows {
		if r.Name == name {
			return r.Count
		}
	}
	return 0
}

// Fold collapses the breakdown onto the given legend: rows whose name is in
// legend keep their identity, every other row is folded into a final
// "other (N items)" row, mirroring the paper's figure legends. Legend entries
// with zero counts are retained with zero share so series stay aligned across
// benchmarks.
func (b Breakdown) Fold(legend []string) Breakdown {
	inLegend := make(map[string]bool, len(legend))
	for _, name := range legend {
		inLegend[name] = true
	}
	counts := make(map[string]uint64, len(legend)+1)
	var other uint64
	otherItems := 0
	for _, r := range b.Rows {
		if inLegend[r.Name] {
			counts[r.Name] += r.Count
		} else {
			other += r.Count
			otherItems++
		}
	}
	out := Breakdown{Total: b.Total}
	for _, name := range legend {
		n := counts[name]
		row := Row{Name: name, Count: n}
		if b.Total > 0 {
			row.Share = float64(n) / float64(b.Total)
		}
		out.Rows = append(out.Rows, row)
	}
	otherRow := Row{Name: fmt.Sprintf("other (%d items)", otherItems), Count: other}
	if b.Total > 0 {
		otherRow.Share = float64(other) / float64(b.Total)
	}
	out.Rows = append(out.Rows, otherRow)
	return out
}

// TopN returns the first n rows (all rows when n exceeds the length).
func (b Breakdown) TopN(n int) []Row {
	if n > len(b.Rows) {
		n = len(b.Rows)
	}
	return b.Rows[:n]
}
