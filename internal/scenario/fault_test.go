package scenario

import (
	"reflect"
	"strings"
	"testing"
)

// TestChaosLibraryScenariosInjectDetectRecover pins the acceptance bar on
// the two bundled chaos sessions: both must inject and detect faults, both
// must complete recoveries (a restarted service or mediaserver), and both
// must replay bit-identically.
func TestChaosLibraryScenariosInjectDetectRecover(t *testing.T) {
	for _, name := range []string{"binder-storm", "mediaserver-meltdown"} {
		sc, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		r, err := Run(sc, quickCfg())
		if err != nil {
			t.Fatal(err)
		}
		if r.Events != len(sc.Timeline) {
			t.Errorf("%s: applied %d events, want %d", name, r.Events, len(sc.Timeline))
		}
		if r.FaultsInjected == 0 {
			t.Errorf("%s: no faults injected", name)
		}
		if r.FaultsDetected == 0 {
			t.Errorf("%s: no fault detected", name)
		}
		if r.FaultsRecovered == 0 {
			t.Errorf("%s: no recovery completed", name)
		}
		r2, err := Run(sc, quickCfg())
		if err != nil {
			t.Fatal(err)
		}
		if r.Stats.Fingerprint() != r2.Stats.Fingerprint() {
			t.Errorf("%s: chaos session is not seed-deterministic", name)
		}
		if r.FaultsInjected != r2.FaultsInjected || r.FaultsDetected != r2.FaultsDetected ||
			r.FaultsRecovered != r2.FaultsRecovered || r.ANRs != r2.ANRs {
			t.Errorf("%s: dependability counters diverged between runs: %d/%d/%d/%d vs %d/%d/%d/%d",
				name, r.FaultsInjected, r.FaultsDetected, r.FaultsRecovered, r.ANRs,
				r2.FaultsInjected, r2.FaultsDetected, r2.FaultsRecovered, r2.ANRs)
		}
	}
}

// TestCrashServiceRestartsAndLaterEventsLand: a crashService mid-session
// must leave the app targetable — the script's later switchto and tap aim at
// the restarted incarnation, and the session ends with the recovery counted.
func TestCrashServiceRestartsAndLaterEventsLand(t *testing.T) {
	sc := &Scenario{
		Name: "crash-restart",
		Apps: []App{
			{Name: "game", Workload: "frozenbubble.main"},
			{Name: "dict", Workload: "aard.main"},
		},
		Timeline: []Event{
			{At: 0, Kind: Launch, App: "game"},
			{At: 100, Kind: Launch, App: "dict"},
			{At: 300, Kind: CrashService, App: "game"}, // crashes behind dict
			{At: 500, Kind: SwitchTo, App: "game"},     // targets the restart
			{At: 650, Kind: Tap, App: "game"},
			{At: 800, Kind: CrashService, App: "game"}, // crashes while foreground
			{At: 950, Kind: Tap, App: "game"},
		},
	}
	if err := sc.Validate(); err != nil {
		t.Fatalf("crashService must keep its target script-live: %v", err)
	}
	r, err := Run(sc, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if r.Events != len(sc.Timeline) {
		t.Fatalf("applied %d events, want %d", r.Events, len(sc.Timeline))
	}
	if r.FaultsInjected != 2 || r.FaultsDetected != 2 {
		t.Fatalf("injected/detected = %d/%d, want 2/2", r.FaultsInjected, r.FaultsDetected)
	}
	if r.FaultsRecovered != 2 {
		t.Fatalf("recovered = %d, want 2 (one relaunch per crash)", r.FaultsRecovered)
	}
	if r.InputDispatched == 0 {
		t.Fatal("no tap reached the restarted foreground app")
	}
}

// TestValidatorRejectsFaultsAtNonLiveTargets: the script must aim targeted
// faults at apps it has live, with the field-indexed error the codec
// convention promises; killMediaserver needs no target and crashService does
// not remove its target from the live set.
func TestValidatorRejectsFaultsAtNonLiveTargets(t *testing.T) {
	apps := []App{
		{Name: "game", Workload: "frozenbubble.main"},
		{Name: "dict", Workload: "aard.main"},
	}
	for _, tc := range []struct {
		name     string
		timeline []Event
		wantErr  string
	}{
		{
			name: "fault-before-launch",
			timeline: []Event{
				{At: 0, Kind: Launch, App: "game"},
				{At: 100, Kind: FaultBinder, App: "dict"},
			},
			wantErr: `timeline[1]: event "at=100 faultBinder dict" injects a fault into an app that is not running`,
		},
		{
			name: "corrupt-after-kill",
			timeline: []Event{
				{At: 0, Kind: Launch, App: "game"},
				{At: 200, Kind: Kill, App: "game"},
				{At: 400, Kind: CorruptParcel, App: "game"},
			},
			wantErr: "timeline[2]",
		},
		{
			name: "crash-never-launched",
			timeline: []Event{
				{At: 0, Kind: Launch, App: "game"},
				{At: 300, Kind: CrashService, App: "dict"},
			},
			wantErr: "injects a fault into an app that is not running",
		},
		{
			name: "mediaserver-kill-with-target",
			timeline: []Event{
				{At: 0, Kind: Launch, App: "game"},
				{At: 300, Kind: KillMediaserver, App: "game"},
			},
			wantErr: "killMediaserver event names app",
		},
		{
			name: "fault-after-crash-is-legal",
			timeline: []Event{
				{At: 0, Kind: Launch, App: "game"},
				{At: 300, Kind: CrashService, App: "game"},
				{At: 600, Kind: FaultBinder, App: "game"},
				{At: 800, Kind: KillMediaserver},
			},
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sc := &Scenario{Name: tc.name, Apps: apps, Timeline: tc.timeline}
			err := sc.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("valid chaos timeline rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("invalid timeline accepted")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

// TestGeneratorFaultsKnob: the Faults knob weaves fault events into a valid
// timeline (targeted faults only at script-live apps), the knob value lands
// in the scenario name, generation stays a pure function, and the session
// runs with every event applied.
func TestGeneratorFaultsKnob(t *testing.T) {
	cfg := GenConfig{Seed: 9, Apps: 4, Events: 16, Faults: 8}
	s := Generate(cfg)
	if err := s.Validate(); err != nil {
		t.Fatalf("generated chaos session invalid: %v", err)
	}
	if s.Name != "gen-s9-a4-e16-p0-i0-f8" {
		t.Fatalf("name = %q", s.Name)
	}
	var faults int
	for _, ev := range s.Timeline {
		switch ev.Kind {
		case FaultBinder, CrashService, KillMediaserver, CorruptParcel:
			faults++
		}
	}
	if faults != 8 {
		t.Fatalf("generated %d fault events, want 8", faults)
	}
	if !reflect.DeepEqual(s, Generate(cfg)) {
		t.Fatal("fault-bearing generation is not deterministic")
	}
	// The liveness guarantee must hold across seeds, not just one draw.
	for seed := uint64(1); seed <= 10; seed++ {
		g := Generate(GenConfig{Seed: seed, Apps: 3, Events: 12, Faults: 6})
		if err := g.Validate(); err != nil {
			t.Fatalf("seed %d: generated chaos session invalid: %v", seed, err)
		}
	}
	r, err := Run(s, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if r.Events != len(s.Timeline) {
		t.Fatalf("applied %d events, want %d", r.Events, len(s.Timeline))
	}
	if r.FaultsInjected == 0 {
		t.Fatal("generated chaos session injected nothing")
	}
}
