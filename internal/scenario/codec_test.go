package scenario

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestEncodeDecodeRoundTripsEveryBundledScenario is the codec's core
// contract: for every bundled scenario, decode(encode(s)) reproduces the
// scenario exactly (modulo Source, which is provenance, not content) and the
// re-encoded bytes are identical — the canonical form is a fixed point.
func TestEncodeDecodeRoundTripsEveryBundledScenario(t *testing.T) {
	for _, s := range Library() {
		doc, err := Encode(s)
		if err != nil {
			t.Fatalf("%s: encode: %v", s.Name, err)
		}
		got, err := Decode(doc)
		if err != nil {
			t.Fatalf("%s: decode of own encoding: %v", s.Name, err)
		}
		want := *s
		want.Source = got.Source // provenance is not part of the document
		if !reflect.DeepEqual(got, &want) {
			t.Errorf("%s: decode(encode(s)) != s:\ngot  %+v\nwant %+v", s.Name, got, &want)
		}
		doc2, err := Encode(got)
		if err != nil {
			t.Fatalf("%s: re-encode: %v", s.Name, err)
		}
		if !bytes.Equal(doc, doc2) {
			t.Errorf("%s: canonical encoding is not a fixed point:\n%s\nvs\n%s", s.Name, doc, doc2)
		}
	}
}

// TestDecodeAcceptsHandWrittenDocument checks a document written the way a
// user would write it — optional fields omitted, no particular formatting.
func TestDecodeAcceptsHandWrittenDocument(t *testing.T) {
	doc := `{
		"name": "night-shift",
		"apps": [
			{"name": "reader", "workload": "coolreader.epub.view"},
			{"name": "radio", "workload": "music.mp3.view.bkg"}
		],
		"timeline": [
			{"at": 0, "kind": "launch", "app": "radio"},
			{"at": 100, "kind": "launch", "app": "reader"},
			{"at": 600, "kind": "idle"},
			{"at": 800, "kind": "pressure", "pages": 20000},
			{"at": 950, "kind": "kill", "app": "reader"}
		]
	}`
	s, err := Decode([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "night-shift" || len(s.Apps) != 2 || len(s.Timeline) != 5 {
		t.Fatalf("decoded shape wrong: %+v", s)
	}
	if s.Timeline[3].Kind != Pressure || s.Timeline[3].Pages != 20000 {
		t.Fatalf("pressure event decoded wrong: %+v", s.Timeline[3])
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("decoded scenario does not validate: %v", err)
	}
}

// TestDecodeRejectsIllFormedDocuments is the parser's negative-path table:
// each malformed document must be rejected with the specific, greppable
// error text the CLI surfaces. The same cases are driven through `agave
// scenario -file` in cmd/agave's tests.
func TestDecodeRejectsIllFormedDocuments(t *testing.T) {
	valid := func(mutate func(s string) string) string {
		base := `{
  "name": "t",
  "apps": [
    {"name": "a", "workload": "countdown.main"},
    {"name": "b", "workload": "jetboy.main"}
  ],
  "timeline": [
    {"at": 0, "kind": "launch", "app": "a"},
    {"at": 500, "kind": "launch", "app": "b"}
  ]
}`
		if mutate != nil {
			return mutate(base)
		}
		return base
	}
	cases := []struct {
		name    string
		doc     string
		wantErr string
	}{
		{
			"unknown event kind",
			valid(func(s string) string {
				return strings.Replace(s, `"kind": "launch", "app": "b"`, `"kind": "teleport", "app": "b"`, 1)
			}),
			`timeline[1]: unknown event kind "teleport" (valid kinds: launch, switchto, background, kill, idle, pressure, tap, key, swipe, faultBinder, crashService, killMediaserver, corruptParcel)`,
		},
		{
			"event on undeclared app",
			valid(func(s string) string {
				return strings.Replace(s, `"kind": "launch", "app": "b"`, `"kind": "launch", "app": "ghost"`, 1)
			}),
			`targets undeclared app`,
		},
		{
			"at above 1000",
			valid(func(s string) string { return strings.Replace(s, `"at": 500`, `"at": 1500`, 1) }),
			`outside [0,1000]`,
		},
		{
			"at negative",
			valid(func(s string) string { return strings.Replace(s, `"at": 0`, `"at": -3`, 1) }),
			`outside [0,1000]`,
		},
		{
			"duplicate app names",
			valid(func(s string) string {
				return strings.Replace(s, `{"name": "b", "workload": "jetboy.main"}`, `{"name": "a", "workload": "jetboy.main"}`, 1)
			}),
			`duplicate app "a"`,
		},
		{
			"empty timeline",
			`{"name": "t", "apps": [{"name": "a", "workload": "countdown.main"}], "timeline": []}`,
			`empty timeline`,
		},
		{
			"unknown top-level field",
			valid(func(s string) string { return strings.Replace(s, `"name": "t",`, `"name": "t", "duration": 99,`, 1) }),
			`unknown field "duration"`,
		},
		{
			"unknown event field",
			valid(func(s string) string { return strings.Replace(s, `"at": 0,`, `"at": 0, "delay": 3,`, 1) }),
			`unknown field "delay"`,
		},
		{
			"type mismatch carries line and field",
			"{\n  \"name\": \"t\",\n  \"apps\": [{\"name\": \"a\", \"workload\": \"countdown.main\"}],\n  \"timeline\": [{\"at\": \"zero\", \"kind\": \"launch\", \"app\": \"a\"}]\n}",
			`line 4`,
		},
		{
			"syntax error carries line",
			"{\n  \"name\": \"t\",,\n}",
			`line 2`,
		},
		{
			"trailing data",
			valid(nil) + "{}",
			`trailing data`,
		},
		{
			"unknown workload",
			valid(func(s string) string { return strings.Replace(s, "jetboy.main", "no.such.workload", 1) }),
			`unknown workload "no.such.workload"`,
		},
		{
			"empty document",
			`{}`,
			`empty name`,
		},
		{
			"null at",
			valid(func(s string) string { return strings.Replace(s, `"at": 500`, `"at": null`, 1) }),
			`timeline[1]: missing or null "at" field`,
		},
		{
			"missing at",
			valid(func(s string) string { return strings.Replace(s, `{"at": 500, `, `{`, 1) }),
			`timeline[1]: missing or null "at" field`,
		},
		{
			"null kind",
			valid(func(s string) string {
				return strings.Replace(s, `"kind": "launch", "app": "b"`, `"kind": null, "app": "b"`, 1)
			}),
			`timeline[1]: missing or null "kind" field`,
		},
		{
			"missing kind",
			valid(func(s string) string { return strings.Replace(s, `"kind": "launch", "app": "b"`, `"app": "b"`, 1) }),
			`timeline[1]: missing or null "kind" field`,
		},
	}
	for _, tc := range cases {
		_, err := Decode([]byte(tc.doc))
		if err == nil {
			t.Errorf("%s: decoded without error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not contain %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestDecodeNeverReturnsInvalidScenario: anything Decode accepts must pass
// Validate — the engine's precondition is established at the parse boundary.
func TestDecodeNeverReturnsInvalidScenario(t *testing.T) {
	for _, s := range Library() {
		doc, err := Encode(s)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decode(doc)
		if err != nil {
			t.Fatal(err)
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("%s: Decode returned an invalid scenario: %v", s.Name, err)
		}
	}
}

// TestEncodeRefusesInvalidScenario: the exporter cannot produce a document
// the importer would reject.
func TestEncodeRefusesInvalidScenario(t *testing.T) {
	if _, err := Encode(&Scenario{Name: "broken"}); err == nil {
		t.Fatal("Encode accepted a scenario with no apps")
	}
}

// TestFromFileSetsProvenanceAndWrapsErrors pins the file loader: Source
// records "file:<basename>", and errors carry the path.
func TestFromFileSetsProvenanceAndWrapsErrors(t *testing.T) {
	dir := t.TempDir()
	doc, err := Encode(Library()[0])
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "session.json")
	if err := os.WriteFile(path, doc, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := FromFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Source != "file:session.json" {
		t.Fatalf("Source = %q, want file:session.json", s.Source)
	}
	if _, err := FromFile(filepath.Join(dir, "absent.json")); err == nil {
		t.Fatal("missing file loaded")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"name": }`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := FromFile(bad); err == nil || !strings.Contains(err.Error(), "bad.json") {
		t.Fatalf("decode error does not carry the path: %v", err)
	}
}

// TestLoadDirSortsAndRejectsDuplicates: directory loading is deterministic
// (filename order) and scenario names must be unique across the directory.
func TestLoadDirSortsAndRejectsDuplicates(t *testing.T) {
	dir := t.TempDir()
	lib := Library()
	// Write out of name order to prove the sort is by filename.
	for i, name := range []string{"b.json", "a.json"} {
		doc, err := Encode(lib[i])
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, name), doc, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != lib[1].Name || got[1].Name != lib[0].Name {
		t.Fatalf("LoadDir order wrong: %v", []string{got[0].Name, got[1].Name})
	}
	// A third file reusing an existing scenario name is rejected.
	doc, err := Encode(lib[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "c.json"), doc, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDir(dir); err == nil || !strings.Contains(err.Error(), "duplicate scenario name") {
		t.Fatalf("duplicate scenario name accepted: %v", err)
	}
	if _, err := LoadDir(t.TempDir()); err == nil {
		t.Fatal("empty directory accepted")
	}
}

// TestParseKindInvertsString: every Kind's wire spelling parses back to
// itself, and garbage is rejected.
func TestParseKindInvertsString(t *testing.T) {
	for k := Launch; k <= Pressure; k++ {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("Launch"); err == nil {
		t.Error("ParseKind is case-insensitive; the wire format is lowercase only")
	}
}
