// Declarative scenario files: a strict JSON codec for the Scenario type, so
// sessions can be authored, versioned, and exchanged without writing Go. The
// wire format mirrors the in-memory representation field for field —
// name/description, an app roster, and an ordered timeline of
// at/kind/app/pages events — and the codec guarantees a round trip: for any
// scenario the decoder accepts, decode→encode→decode is the identity and the
// encoded bytes are canonical (stable field order, two-space indent, one
// document per file).
//
// Decoding is deliberately strict. Unknown fields, trailing data, and type
// mismatches are all errors — syntax and type errors carry line:column
// positions, unknown-field and trailing-data errors name the offending
// field or token; unknown event kinds are reported with the offending
// timeline index; and every structurally-sound document still has to pass
// Scenario.Validate, so a *Scenario returned by Decode is always runnable.
// Loose inputs that would silently drop a field are exactly how a benchmark
// suite grows unreproducible results, so there is no lenient mode.

package scenario

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// scenarioDoc is the JSON wire shape of a Scenario. Source is deliberately
// absent: provenance describes where a document came from, not what the
// session is, so it never round-trips through the file.
type scenarioDoc struct {
	Name        string     `json:"name"`
	Description string     `json:"description,omitempty"`
	Apps        []appDoc   `json:"apps"`
	Timeline    []eventDoc `json:"timeline"`
}

type appDoc struct {
	Name     string `json:"name"`
	Workload string `json:"workload"`
}

// eventDoc's At and Kind are pointers so a missing or null field is
// distinguishable from a zero value: an event that omits "at" must be an
// error, not an event silently scheduled at t=0.
type eventDoc struct {
	At   *Fraction `json:"at"`
	Kind *string   `json:"kind"`
	App  string    `json:"app,omitempty"`
	// Pages is an integer field, so "pages": 1.5 is a type error at the
	// field, not a silent truncation. A null or missing value is zero,
	// which Validate rejects on pressure events (the only kind that may
	// carry pages).
	Pages int64 `json:"pages,omitempty"`
}

// kindNames maps the wire spelling of every event kind, in declaration
// order; it is the inverse of Kind.String.
var kindNames = []string{
	"launch", "switchto", "background", "kill", "idle", "pressure",
	"tap", "key", "swipe",
	"faultBinder", "crashService", "killMediaserver", "corruptParcel",
}

// KindNames returns the wire spelling of every event kind ParseKind
// accepts, in declaration order, as a fresh copy. cmd/docscheck uses it to
// hold docs/SCENARIOS.md to the full kind set.
func KindNames() []string {
	return append([]string(nil), kindNames...)
}

// ParseKind resolves the wire spelling of an event kind ("launch",
// "switchto", "background", "kill", "idle", "pressure", "tap", "key",
// "swipe", "faultBinder", "crashService", "killMediaserver",
// "corruptParcel").
func ParseKind(s string) (Kind, error) {
	for i, n := range kindNames {
		if s == n {
			return Kind(i), nil
		}
	}
	return 0, fmt.Errorf("unknown event kind %q (valid kinds: %s)",
		s, strings.Join(kindNames, ", "))
}

// lineCol resolves a byte offset within data to a 1-based line:column pair,
// so JSON-level errors point at the offending spot of the file.
func lineCol(data []byte, offset int64) (line, col int) {
	if offset > int64(len(data)) {
		offset = int64(len(data))
	}
	line, col = 1, 1
	for _, b := range data[:offset] {
		if b == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return line, col
}

// Decode parses one JSON scenario document. It is strict: unknown fields,
// trailing data, and type mismatches are errors (syntax and type errors
// report line:column positions; unknown-field and trailing-data errors name
// the field or token), unknown event kinds are reported with their timeline
// index, events must carry non-null "at" and "kind" fields, and the decoded
// scenario must pass Validate. The returned scenario is therefore always
// runnable, and Encode(Decode(data)) re-encodes it canonically. One
// encoding/json behavior is inherited: a duplicate key within one object
// resolves last-value-wins rather than erroring (null values, by contrast,
// are caught — on required fields directly, elsewhere by Validate rejecting
// the zero value).
func Decode(data []byte) (*Scenario, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var doc scenarioDoc
	if err := dec.Decode(&doc); err != nil {
		return nil, jsonError(data, err)
	}
	switch tok, err := dec.Token(); {
	case errors.Is(err, io.EOF):
		// Clean end of document.
	case err != nil:
		// Malformed trailing bytes: surface the real syntax error (with
		// its line:col) rather than a nil token.
		return nil, fmt.Errorf("%v (trailing data after the scenario document)", jsonError(data, err))
	default:
		return nil, fmt.Errorf("scenario document: trailing data after the closing brace (token %v)", tok)
	}
	s := &Scenario{
		Name:        doc.Name,
		Description: doc.Description,
	}
	for _, a := range doc.Apps {
		s.Apps = append(s.Apps, App(a))
	}
	for i, e := range doc.Timeline {
		if e.At == nil {
			return nil, fmt.Errorf("timeline[%d]: missing or null \"at\" field", i)
		}
		if e.Kind == nil {
			return nil, fmt.Errorf("timeline[%d]: missing or null \"kind\" field", i)
		}
		kind, err := ParseKind(*e.Kind)
		if err != nil {
			return nil, fmt.Errorf("timeline[%d]: %v", i, err)
		}
		s.Timeline = append(s.Timeline, Event{At: *e.At, Kind: kind, App: e.App, Pages: e.Pages})
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// jsonError rewrites encoding/json's offset-carrying errors into line:column
// positions within the document.
func jsonError(data []byte, err error) error {
	var syn *json.SyntaxError
	if errors.As(err, &syn) {
		line, col := lineCol(data, syn.Offset)
		return fmt.Errorf("scenario document: line %d:%d: %v", line, col, syn)
	}
	var typ *json.UnmarshalTypeError
	if errors.As(err, &typ) {
		line, col := lineCol(data, typ.Offset)
		field := typ.Field
		if field == "" {
			field = "document"
		}
		return fmt.Errorf("scenario document: line %d:%d: field %q: cannot decode %s as %s",
			line, col, field, typ.Value, typ.Type)
	}
	return fmt.Errorf("scenario document: %v", err)
}

// Encode renders the scenario as its canonical JSON document: stable field
// order, two-space indent, no HTML escaping, a trailing newline, and
// zero-valued optional fields (app on idle/pressure events, pages elsewhere)
// omitted. Two scenarios are equal exactly when their canonical encodings
// are byte-equal, which is the comparison the conformance harness and the
// fuzz round-trip lean on. The scenario must be valid: Encode refuses to
// produce a document Decode would reject.
func Encode(s *Scenario) ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	doc := scenarioDoc{
		Name:        s.Name,
		Description: s.Description,
	}
	for _, a := range s.Apps {
		doc.Apps = append(doc.Apps, appDoc(a))
	}
	for _, e := range s.Timeline {
		at, kind := e.At, e.Kind.String()
		doc.Timeline = append(doc.Timeline, eventDoc{
			At:    &at,
			Kind:  &kind,
			App:   e.App,
			Pages: e.Pages,
		})
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return nil, fmt.Errorf("scenario %s: encode: %v", s.Name, err)
	}
	return buf.Bytes(), nil
}

// FromFile loads and decodes one scenario file. Errors carry the path; the
// returned scenario's Source records the provenance ("file:<basename>") that
// scenario reports surface alongside the run.
func FromFile(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %v", err)
	}
	s, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("scenario: %s: %v", path, err)
	}
	s.Source = "file:" + filepath.Base(path)
	return s, nil
}

// LoadDir loads every *.json scenario in dir, sorted by filename so the
// resulting plan axis is deterministic. Scenario names must be unique across
// the directory — two files defining the same name would alias in reports
// and summaries.
func LoadDir(dir string) ([]*Scenario, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("scenario: %v", err)
	}
	var matches []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".json" {
			matches = append(matches, filepath.Join(dir, e.Name()))
		}
	}
	if len(matches) == 0 {
		return nil, fmt.Errorf("scenario: no *.json scenario files in %s", dir)
	}
	sort.Strings(matches)
	var out []*Scenario
	byName := make(map[string]string, len(matches))
	for _, path := range matches {
		s, err := FromFile(path)
		if err != nil {
			return nil, err
		}
		if prev, ok := byName[s.Name]; ok {
			return nil, fmt.Errorf("scenario: %s: duplicate scenario name %q (already defined by %s)",
				path, s.Name, prev)
		}
		byName[s.Name] = path
		out = append(out, s)
	}
	return out, nil
}
