package scenario

import "fmt"

// Library returns the bundled scenarios in canonical order. Each is built
// fresh so callers may not mutate shared state, mirroring apps.All.
func Library() []*Scenario {
	return []*Scenario{
		commute(),
		socialBurst(),
		backgroundSync(),
		mediaMarathon(),
		installStorm(),
		appChurn(),
		memoryStorm(),
		cachedAppEviction(),
		thumbScroll(),
		arcadeRally(),
		binderStorm(),
		mediaserverMeltdown(),
	}
}

// Names lists the bundled scenario identifiers in order.
func Names() []string {
	lib := Library()
	out := make([]string, len(lib))
	for i, s := range lib {
		out[i] = s.Name
	}
	return out
}

// ByName finds a bundled scenario.
func ByName(name string) (*Scenario, error) {
	for _, s := range Library() {
		if s.Name == name {
			return s, nil
		}
	}
	return nil, fmt.Errorf("scenario: unknown scenario %q", name)
}

// commute — the classic phone-in-the-car session: music starts, navigation
// takes the screen, and the user flips between them. While the map is
// foreground the music app's UI is parked in its looper, but its decode
// keeps running inside mediaserver — the paper's service-side attribution
// made visible across a lifecycle boundary.
func commute() *Scenario {
	return &Scenario{
		Name:        "commute",
		Description: "music + navigation switching; backgrounded audio keeps decoding in mediaserver",
		Apps: []App{
			{Name: "music", Workload: "music.mp3.view"},
			{Name: "maps", Workload: "osmand.nav.view"},
		},
		Timeline: []Event{
			{At: 0, Kind: Launch, App: "music"},
			{At: 150, Kind: Launch, App: "maps"},
			{At: 400, Kind: SwitchTo, App: "music"},
			{At: 550, Kind: SwitchTo, App: "maps"},
			{At: 800, Kind: SwitchTo, App: "music"},
			{At: 920, Kind: Background, App: "music"},
		},
	}
}

// socialBurst — rapid app hopping across four resident apps: the
// notification-chasing usage pattern. Four apps stay live concurrently;
// every hop drives a pause/resume pair through the loopers and reshuffles
// which surface SurfaceFlinger composes.
func socialBurst() *Scenario {
	return &Scenario{
		Name:        "social-burst",
		Description: "rapid hops across four live apps; every hop is a looper pause/resume pair",
		Apps: []App{
			{Name: "dict", Workload: "aard.main"},
			{Name: "reader", Workload: "coolreader.epub.view"},
			{Name: "timer", Workload: "countdown.main"},
			{Name: "game", Workload: "frozenbubble.main"},
		},
		Timeline: []Event{
			{At: 0, Kind: Launch, App: "dict"},
			{At: 80, Kind: Launch, App: "reader"},
			{At: 160, Kind: Launch, App: "timer"},
			{At: 240, Kind: Launch, App: "game"},
			{At: 330, Kind: SwitchTo, App: "dict"},
			{At: 420, Kind: SwitchTo, App: "reader"},
			{At: 510, Kind: SwitchTo, App: "game"},
			{At: 600, Kind: SwitchTo, App: "timer"},
			{At: 690, Kind: SwitchTo, App: "dict"},
			{At: 780, Kind: SwitchTo, App: "game"},
			{At: 900, Kind: SwitchTo, App: "reader"},
		},
	}
}

// backgroundSync — a foreground game over a background install/indexing
// service: the pm.apk.view.bkg service keeps forking id.defcontainer and
// dexopt underneath the game's frame loop, contending for the same
// scheduler quanta.
func backgroundSync() *Scenario {
	return &Scenario{
		Name:        "background-sync",
		Description: "foreground game while a background service keeps installing (dexopt churn)",
		Apps: []App{
			{Name: "sync", Workload: "pm.apk.view.bkg"},
			{Name: "game", Workload: "doom.main"},
		},
		Timeline: []Event{
			{At: 0, Kind: Launch, App: "sync"},
			{At: 100, Kind: Launch, App: "game"},
			{At: 600, Kind: Background, App: "game"},
			{At: 620, Kind: Idle},
			{At: 750, Kind: SwitchTo, App: "game"},
		},
	}
}

// mediaMarathon — service-side vs in-process decode across a process
// death: gallery decodes in mediaserver until it is killed mid-playback
// (its sessions stop via the death-notification path), then VLC decodes
// the same class of content inside its own process.
func mediaMarathon() *Scenario {
	return &Scenario{
		Name:        "media-marathon",
		Description: "mediaserver-side playback killed mid-clip, then in-process playback; background music throughout",
		Apps: []App{
			{Name: "gallery", Workload: "gallery.mp4.view"},
			{Name: "radio", Workload: "music.mp3.view.bkg"},
			{Name: "vlc", Workload: "vlc.mp4.view"},
		},
		Timeline: []Event{
			{At: 0, Kind: Launch, App: "gallery"},
			{At: 150, Kind: Launch, App: "radio"},
			{At: 500, Kind: Kill, App: "gallery"},
			{At: 560, Kind: Launch, App: "vlc"},
		},
	}
}

// installStorm — an install session racing a game: the foreground flips
// between pm.apk.view's install pipeline (package service, id.defcontainer,
// dexopt) and a Java game, so install back-pressure lands on a loaded
// scheduler.
func installStorm() *Scenario {
	return &Scenario{
		Name:        "install-storm",
		Description: "installs racing a Java game for the foreground and the scheduler",
		Apps: []App{
			{Name: "installer", Workload: "pm.apk.view"},
			{Name: "game", Workload: "frozenbubble.main"},
		},
		Timeline: []Event{
			{At: 0, Kind: Launch, App: "installer"},
			{At: 120, Kind: Launch, App: "game"},
			{At: 480, Kind: SwitchTo, App: "installer"},
			{At: 700, Kind: SwitchTo, App: "game"},
		},
	}
}

// memoryStorm — emergent kills under pressure: the timeline scripts no Kill
// at all. Four apps go live, two age into the cached LRU, then escalating
// Pressure events starve the machine. The first wave lands between the trim
// waterline and the kill rungs, so backgrounded apps shrink their dalvik
// heaps and buy the session time; the following waves push free pages below
// the minfree ladder and the lowmemorykiller walks it — cached apps first,
// then home/perceptible processes — while the foreground game survives the
// whole storm. Which processes die, and when, is decided by the kernel, not
// this script.
func memoryStorm() *Scenario {
	return &Scenario{
		Name:        "memory-storm",
		Description: "no scripted kills: escalating pressure trims then evicts apps via the lowmemorykiller",
		Apps: []App{
			{Name: "dict", Workload: "aard.main"},
			{Name: "timer", Workload: "countdown.main"},
			{Name: "radio", Workload: "music.mp3.view.bkg"},
			{Name: "game", Workload: "frozenbubble.main"},
		},
		Timeline: []Event{
			{At: 0, Kind: Launch, App: "dict"},
			{At: 80, Kind: Launch, App: "timer"},
			{At: 160, Kind: Launch, App: "radio"},
			{At: 240, Kind: Launch, App: "game"},
			{At: 320, Kind: Pressure, Pages: 60_000},
			{At: 500, Kind: Pressure, Pages: 45_000},
			{At: 700, Kind: Pressure, Pages: 40_000},
			{At: 850, Kind: Pressure, Pages: 30_000},
			{At: 930, Kind: Idle},
		},
	}
}

// cachedAppEviction — the cooperative-then-coercive pressure ladder in
// isolation: moderate pressure crosses only the trim waterline (cached apps
// give back their heap tails and the machine recovers), then a deeper wave
// crosses the cached minfree rung and exactly the LRU-oldest cached app is
// evicted — chosen by oom_adj recency, not by size — while the recently-used
// one survives.
func cachedAppEviction() *Scenario {
	return &Scenario{
		Name:        "cached-app-eviction",
		Description: "trim rescue, then the LRU-oldest cached app is evicted by oom_adj",
		Apps: []App{
			{Name: "notes", Workload: "countdown.main"},
			{Name: "reader", Workload: "coolreader.epub.view"},
			{Name: "game", Workload: "jetboy.main"},
		},
		Timeline: []Event{
			{At: 0, Kind: Launch, App: "notes"},
			{At: 70, Kind: Launch, App: "reader"},
			{At: 140, Kind: Launch, App: "game"},
			{At: 300, Kind: Pressure, Pages: 95_000},
			{At: 550, Kind: Pressure, Pages: 30_000},
			{At: 800, Kind: Idle},
		},
	}
}

// thumbScroll — gesture-driven reading: swipes and taps pour into whichever
// app holds the focus while the user hops between a document reader and a
// dictionary. Every delivered gesture runs real handler work (page scroll
// bytecode with allocation churn, invalidated regions recomposed by
// SurfaceFlinger), so both apps carry dispatch-latency statistics in the
// golden report, and the stale taps — aimed at an app the focus already
// left — are dropped by the InputDispatcher and counted, never delivered
// to a paused activity.
func thumbScroll() *Scenario {
	return &Scenario{
		Name:        "thumb-scroll",
		Description: "swipe-driven reading across two apps; stale gestures at the backgrounded one drop",
		Apps: []App{
			{Name: "dict", Workload: "aard.main"},
			{Name: "reader", Workload: "odr.txt.view"},
		},
		Timeline: []Event{
			{At: 0, Kind: Launch, App: "dict"},
			{At: 80, Kind: Launch, App: "reader"},
			{At: 130, Kind: Swipe, App: "reader"},
			{At: 200, Kind: Swipe, App: "reader"},
			{At: 270, Kind: Tap, App: "reader"},
			{At: 340, Kind: Swipe, App: "reader"},
			{At: 410, Kind: Tap, App: "dict"}, // dict is backgrounded: dropped
			{At: 480, Kind: SwitchTo, App: "dict"},
			{At: 540, Kind: Swipe, App: "dict"},
			{At: 600, Kind: Key, App: "dict"},
			{At: 660, Kind: Tap, App: "reader"}, // reader backgrounded now: dropped
			{At: 720, Kind: SwitchTo, App: "reader"},
			{At: 790, Kind: Swipe, App: "reader"},
			{At: 860, Kind: Key, App: "reader"},
			{At: 930, Kind: Swipe, App: "reader"},
		},
	}
}

// arcadeRally — a tap/key barrage into a Java game, with the two hostile
// edges of input delivery scripted on purpose: a gesture racing the target's
// kill (injected the same instant the process dies — dropped, never a
// panic), and a gesture at the final measured tick (injected, then the
// machine stops: counted as dropped in flight).
func arcadeRally() *Scenario {
	return &Scenario{
		Name:        "arcade-rally",
		Description: "tap/key barrage into a game; mid-kill and end-of-interval gestures drop",
		Apps: []App{
			{Name: "timer", Workload: "countdown.main"},
			{Name: "game", Workload: "frozenbubble.main"},
		},
		Timeline: []Event{
			{At: 0, Kind: Launch, App: "timer"},
			{At: 80, Kind: Launch, App: "game"},
			{At: 150, Kind: Tap, App: "game"},
			{At: 220, Kind: Tap, App: "game"},
			{At: 290, Kind: Key, App: "game"},
			{At: 360, Kind: Tap, App: "game"},
			{At: 420, Kind: Tap, App: "timer"}, // backgrounded: dropped
			{At: 500, Kind: Kill, App: "game"},
			{At: 500, Kind: Tap, App: "game"}, // races the kill: dropped
			{At: 560, Kind: Key, App: "game"}, // dead: dropped
			{At: 620, Kind: Launch, App: "game"},
			{At: 700, Kind: Tap, App: "game"},
			{At: 780, Kind: Swipe, App: "game"},
			{At: 880, Kind: Tap, App: "game"},
			{At: 1000, Kind: Key, App: "game"}, // final measured tick
		},
	}
}

// binderStorm — the fault-injection plane end to end: one-shot binder
// failures and corrupt parcels drive three live apps down their error
// paths (every injection is detected, none is fatal), then a native crash
// takes the foreground game out mid-gesture-stream and the
// ActivityManager's service restart brings it straight back — later
// gestures land on the restarted incarnation. The scripted kill at the
// end contrasts an orderly teardown with the crash before it.
func binderStorm() *Scenario {
	return &Scenario{
		Name:        "binder-storm",
		Description: "binder faults and corrupt parcels across three apps; a crashed game restarts and keeps playing",
		Apps: []App{
			{Name: "dict", Workload: "aard.main"},
			{Name: "timer", Workload: "countdown.main"},
			{Name: "game", Workload: "frozenbubble.main"},
		},
		Timeline: []Event{
			{At: 0, Kind: Launch, App: "dict"},
			{At: 70, Kind: Launch, App: "timer"},
			{At: 140, Kind: Launch, App: "game"},
			{At: 210, Kind: Tap, App: "game"},
			{At: 260, Kind: FaultBinder, App: "dict"},
			{At: 330, Kind: CorruptParcel, App: "timer"},
			{At: 390, Kind: Tap, App: "game"},
			{At: 450, Kind: FaultBinder, App: "game"},
			{At: 520, Kind: CrashService, App: "game"}, // crash + AM restart
			{At: 600, Kind: Tap, App: "game"},          // restarted incarnation
			{At: 660, Kind: CorruptParcel, App: "dict"},
			{At: 730, Kind: Swipe, App: "game"},
			{At: 800, Kind: FaultBinder, App: "timer"},
			{At: 880, Kind: Kill, App: "timer"}, // orderly teardown, for contrast
			{At: 940, Kind: Tap, App: "game"},
		},
	}
}

// mediaserverMeltdown — mediaserver dies twice mid-playback: each kill
// aborts queued transactions with DEAD_REPLY, the init-style restart
// adopts the live player sessions under their old ids, and both apps'
// decode streams resume on the replacement server. Seek gestures bracket
// each kill so scrubs land before, during (tolerated: the player keeps
// its handle), and after the restart window.
func mediaserverMeltdown() *Scenario {
	return &Scenario{
		Name:        "mediaserver-meltdown",
		Description: "mediaserver killed twice mid-playback; sessions adopted across restarts, seeks survive",
		Apps: []App{
			{Name: "music", Workload: "music.mp3.view"},
			{Name: "gallery", Workload: "gallery.mp4.view"},
		},
		Timeline: []Event{
			{At: 0, Kind: Launch, App: "music"},
			{At: 90, Kind: Launch, App: "gallery"},
			{At: 180, Kind: Tap, App: "gallery"}, // scrub via mediaserver
			{At: 280, Kind: KillMediaserver},
			{At: 340, Kind: Tap, App: "gallery"}, // scrub on the restarted server
			{At: 430, Kind: SwitchTo, App: "music"},
			{At: 520, Kind: Swipe, App: "music"}, // seekbar drag
			{At: 620, Kind: KillMediaserver},
			{At: 700, Kind: Tap, App: "music"},
			{At: 800, Kind: SwitchTo, App: "gallery"},
			{At: 900, Kind: Tap, App: "gallery"},
		},
	}
}

// appChurn — lifecycle stress: apps are launched, killed, and relaunched
// under the same name, exercising process teardown, binder endpoint
// re-registration, and zygote's fork path repeatedly within one session.
func appChurn() *Scenario {
	return &Scenario{
		Name:        "app-churn",
		Description: "launch/kill/relaunch cycles; teardown and zygote fork under churn",
		Apps: []App{
			{Name: "note", Workload: "countdown.main"},
			{Name: "game", Workload: "jetboy.main"},
		},
		Timeline: []Event{
			{At: 0, Kind: Launch, App: "note"},
			{At: 140, Kind: Launch, App: "game"},
			{At: 300, Kind: Kill, App: "note"},
			{At: 400, Kind: Launch, App: "note"},
			{At: 560, Kind: Kill, App: "game"},
			{At: 660, Kind: Launch, App: "game"},
			{At: 820, Kind: SwitchTo, App: "note"},
			{At: 930, Kind: SwitchTo, App: "game"},
		},
	}
}
