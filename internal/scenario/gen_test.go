package scenario

import (
	"bytes"
	"testing"
)

// TestGenerateValidAcross100Seeds is the generator-validity bar: 100 seeds
// crossed with varied knob settings must all produce scenarios that pass
// Validate and whose peak concurrently-live census equals the requested
// scale — including the 10-plus-live-apps sessions the ROADMAP's scale item
// calls for.
func TestGenerateValidAcross100Seeds(t *testing.T) {
	knobs := []GenConfig{
		{Apps: 2, Events: 8},
		{Apps: 5, Events: 30, Pressure: 1},
		{Apps: 10},                          // the default density at the 10-app scale
		{Apps: 12, Events: 80, Pressure: 3}, // beyond the bar, pressure-heavy
	}
	for seed := uint64(0); seed < 100; seed++ {
		for _, k := range knobs {
			k.Seed = seed
			s := Generate(k)
			if err := s.Validate(); err != nil {
				t.Fatalf("seed %d knobs %+v: %v", seed, k, err)
			}
			if got := s.MaxLiveApps(); got != k.Apps {
				t.Fatalf("seed %d knobs %+v: MaxLiveApps = %d, want %d", seed, k, got, k.Apps)
			}
			wantEvents := k.Events
			if wantEvents == 0 {
				wantEvents = 4 * k.Apps // the documented default density
			}
			if len(s.Timeline) != wantEvents {
				t.Fatalf("seed %d knobs %+v: %d events, want %d", seed, k, len(s.Timeline), wantEvents)
			}
		}
	}
}

// TestGenerateIsDeterministic: the generator is a pure function of its
// config — equal configs must produce byte-identical canonical encodings,
// and different seeds must actually diversify the session.
func TestGenerateIsDeterministic(t *testing.T) {
	cfg := GenConfig{Seed: 42, Apps: 6, Events: 24, Pressure: 2}
	a, err := Encode(Generate(cfg))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Encode(Generate(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("equal configs generated different scenarios")
	}
	cfg.Seed = 43
	c, err := Encode(Generate(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, c) {
		t.Fatal("different seeds generated identical scenarios")
	}
}

// TestGenerateDefaultsAndName: zero knobs resolve to the documented
// defaults, the name encodes the full effective tuple, and Source records
// generator provenance.
func TestGenerateDefaultsAndName(t *testing.T) {
	s := Generate(GenConfig{Seed: 7})
	if len(s.Apps) != DefaultGenApps {
		t.Fatalf("default app count = %d, want %d", len(s.Apps), DefaultGenApps)
	}
	if s.Name != "gen-s7-a10-e40-p0-i0-f0" {
		t.Fatalf("generated name = %q", s.Name)
	}
	if s.Source == "" {
		t.Fatal("generated scenario carries no provenance")
	}
	// The events floor: a budget below apps+2 is raised so every app still
	// launches and at least one churn event remains.
	tight := Generate(GenConfig{Seed: 1, Apps: 8, Events: 3})
	if len(tight.Timeline) != 10 {
		t.Fatalf("events floor: %d events, want 10 (apps+2)", len(tight.Timeline))
	}
	if tight.MaxLiveApps() != 8 {
		t.Fatalf("events floor broke the scale guarantee: MaxLiveApps = %d", tight.MaxLiveApps())
	}
}

// TestGeneratePressureKnobEmitsPressure: with the knob up, the timeline
// carries Pressure events; with it at zero, it never does.
func TestGeneratePressureKnobEmitsPressure(t *testing.T) {
	// The knob is probabilistic per event, so scan a few seeds: every
	// pressured session across them must come from the knob, and at least
	// one must actually contain a Pressure event.
	sawPressure := false
	for seed := uint64(0); seed < 5; seed++ {
		withKnob := Generate(GenConfig{Seed: seed, Apps: 4, Events: 40, Pressure: 2})
		without := Generate(GenConfig{Seed: seed, Apps: 4, Events: 40})
		for _, ev := range without.Timeline {
			if ev.Kind == Pressure {
				t.Fatalf("seed %d: pressure 0 emitted a Pressure event", seed)
			}
		}
		for _, ev := range withKnob.Timeline {
			if ev.Kind == Pressure {
				sawPressure = true
				if ev.Pages == 0 {
					t.Fatalf("seed %d: Pressure event with zero pages", seed)
				}
			}
		}
	}
	if !sawPressure {
		t.Fatal("pressure knob 2 emitted no Pressure event across 5 seeds")
	}
}

// TestGeneratedScenarioRoundTripsThroughCodec: generator output is ordinary
// scenario data — exportable and re-importable like any authored document.
func TestGeneratedScenarioRoundTripsThroughCodec(t *testing.T) {
	s := Generate(GenConfig{Seed: 9, Apps: 10, Events: 50, Pressure: 1})
	doc, err := Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(doc)
	if err != nil {
		t.Fatal(err)
	}
	doc2, err := Encode(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(doc, doc2) {
		t.Fatal("generated scenario does not round-trip through the codec")
	}
}
