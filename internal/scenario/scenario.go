// Package scenario is the scripted multi-app session engine of the Agave
// reproduction. The paper's central argument is that Android's behavior
// emerges from interaction across the stack — yet classic benchmark runs
// boot one app and hold it foreground for the whole measured interval. A
// Scenario instead scripts a deterministic timeline of lifecycle events
// (Launch, SwitchTo, Background, Kill, Idle), memory pressure, input
// gestures (Tap, Key, Swipe — delivered through system_server's
// InputDispatcher to the focused app's looper), and injected faults
// (FaultBinder, CrashService, KillMediaserver, CorruptParcel — driven
// through the framework's injection plane, with ActivityManager-style
// recovery and an ANR watchdog measuring the fallout) over several named
// apps drawn from the existing workload suite: apps launch mid-measurement,
// pause and resume through their main-thread loopers, die under
// ActivityManager teardown, run concurrently under the ordinary scheduler
// quantum, and do input-driven work that moves the measured CPU and memory
// profile.
// Every reference is attributed per (process, thread, region) exactly as in
// single-app runs — each app is its own process — so stats.Fingerprint
// remains the determinism and comparison primitive.
//
// Event times are expressed as thousandths of the measured interval, so a
// scenario's shape is duration-invariant: a 150 ms regression run and a
// 10 s measurement run execute the same session, scaled.
package scenario

import (
	"fmt"
	"sort"

	"agave/internal/apps"
	"agave/internal/sim"
)

// Kind is a lifecycle event type.
type Kind uint8

// Timeline event kinds.
const (
	// Launch forks the app from zygote and starts its workload; the
	// launched app takes the foreground (unless its workload is a
	// background service), pausing whichever app held it.
	Launch Kind = iota
	// SwitchTo brings an already-running app to the foreground, pausing
	// the current foreground app.
	SwitchTo
	// Background pauses the app without bringing another forward.
	Background
	// Kill tears the app's process down (ActivityManager process death):
	// threads terminate, media sessions stop, the binder endpoint is
	// unregistered. The app may be launched again later in the timeline.
	Kill
	// Idle marks a deliberate gap in the session; the system runs
	// undisturbed. It names no app.
	Idle
	// Pressure inflates (Pages > 0) or deflates (Pages < 0) the machine's
	// external memory demand — the rest of the device wanting RAM. It
	// names no app: which processes die as a consequence is the
	// lowmemorykiller's decision, not the script's.
	Pressure
	// Tap injects a touch tap (a down/up pair) aimed at the named app.
	// Input events travel through system_server's InputDispatcher to the
	// focused app's looper; a tap aimed at an app that is dead, paused,
	// or simply not foreground is dropped and counted, never an error —
	// so unlike the lifecycle kinds, input events may legally target an
	// app at any point of the timeline.
	Tap
	// Key injects a single key press aimed at the named app, under the
	// same focus-or-drop delivery rule as Tap.
	Key
	// Swipe injects a multi-sample touch gesture (down, moves, up) aimed
	// at the named app, under the same focus-or-drop delivery rule.
	Swipe
	// FaultBinder arms a one-shot binder transaction failure on the named
	// app's service endpoint and drives a framework callback into it, so
	// the transaction returns an error to the sender instead of reaching
	// the app. The target must be live when the event fires; a target that
	// died at run time (say, under the lowmemorykiller) drops the fault.
	FaultBinder
	// CrashService kills the named app's process the way a native crash
	// does — no orderly destroy transaction — and lets the
	// ActivityManager's system-restart recovery relaunch it. The app stays
	// "live" from the script's point of view: later events may target it.
	CrashService
	// KillMediaserver kills the mediaserver process outright and restarts
	// it, init-style. In-flight player sessions are torn down with the old
	// process and relaunched on the replacement under their old handles.
	// It names no app.
	KillMediaserver
	// CorruptParcel sends the named app's service endpoint a deliberately
	// malformed parcel, forcing the receiver through its error path. Like
	// FaultBinder it needs a live target at fire time.
	CorruptParcel
)

// String names the event kind as scripts spell it.
func (k Kind) String() string {
	switch k {
	case Launch:
		return "launch"
	case SwitchTo:
		return "switchto"
	case Background:
		return "background"
	case Kill:
		return "kill"
	case Idle:
		return "idle"
	case Pressure:
		return "pressure"
	case Tap:
		return "tap"
	case Key:
		return "key"
	case Swipe:
		return "swipe"
	case FaultBinder:
		return "faultBinder"
	case CrashService:
		return "crashService"
	case KillMediaserver:
		return "killMediaserver"
	case CorruptParcel:
		return "corruptParcel"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Fraction is a position within the measured interval, in thousandths:
// 0 is measurement start, 1000 the end.
type Fraction int

// Event is one step of a scenario timeline.
type Event struct {
	// At places the event within the measured interval.
	At Fraction
	// Kind is the lifecycle transition to drive.
	Kind Kind
	// App names the target (a Scenario.Apps entry); empty for Idle and
	// Pressure.
	App string
	// Pages is the memory-demand delta of a Pressure event, in physical
	// pages (negative deflates); zero for every other kind.
	Pages int64
}

// String renders the event as "at=250 switchto maps".
func (e Event) String() string {
	if e.Kind == Pressure {
		return fmt.Sprintf("at=%d pressure %+dpg", e.At, e.Pages)
	}
	if e.App == "" {
		return fmt.Sprintf("at=%d %s", e.At, e.Kind)
	}
	return fmt.Sprintf("at=%d %s %s", e.At, e.Kind, e.App)
}

// App declares one application of a scenario: a short session-unique name
// (which becomes the process name in every report, as "benchmark" is for
// single-app runs) bound to an Agave workload.
type App struct {
	Name     string
	Workload string
}

// Scenario is a scripted multi-app session.
type Scenario struct {
	// Name identifies the scenario in plans, reports, and the CLI.
	Name string
	// Description is the one-line synopsis `agave scenario -list` prints.
	Description string
	// Apps declares the session's applications in launch-plan order.
	Apps []App
	// Timeline is the event script, ordered by At.
	Timeline []Event
	// Source records where the scenario came from: empty for the bundled
	// library, "file:<name>" for scenario documents loaded from disk,
	// "gen(...)" for generator output. Provenance describes the document's
	// origin, not the session, so it is never part of the JSON encoding —
	// a file-loaded copy of a bundled scenario replays bit-identically.
	Source string
}

// reservedNames are process names the booted system already owns; scenario
// apps may not take them (their binder endpoints would collide).
var reservedNames = map[string]bool{
	"launcher":  true,
	"systemui":  true,
	"benchmark": true,
}

// MaxLiveApps reports the largest number of scenario apps simultaneously
// alive (launched and not yet killed) at any point of the timeline.
func (s *Scenario) MaxLiveApps() int {
	live := make(map[string]bool)
	max := 0
	for _, ev := range s.Timeline {
		switch ev.Kind {
		case Launch:
			live[ev.App] = true
		case Kill:
			delete(live, ev.App)
		}
		if len(live) > max {
			max = len(live)
		}
	}
	return max
}

// livenessRule classifies how Validate holds an event kind against the
// script's live-app state. The rules used to live in an ad-hoc switch that
// exempted only the input kinds; the table generalizes the exemption so
// every kind declares its contract in one place and a new kind cannot
// silently fall through to a runtime panic.
type livenessRule uint8

const (
	// needsDead: the target must not be running (Launch).
	needsDead livenessRule = iota
	// needsLive: the target must be running at this point of the timeline.
	needsLive
	// killsTarget: needsLive, and the event removes the target from the
	// live set.
	killsTarget
	// needsLiveService: needsLive for a fault-injection kind. The script
	// must aim faults at services that exist — only runtime deaths (a
	// lowmemorykiller kill the script didn't write) downgrade a fault to a
	// silent drop. Violations report the timeline index, following the
	// codec's field-indexed error convention.
	needsLiveService
	// exemptTarget: any declared target is legal at any point — the event
	// resolves liveness at run time (input kinds drop at dead targets).
	exemptTarget
	// noTarget: the event names no app (Idle, Pressure, KillMediaserver).
	noTarget
)

// liveness is the per-kind validation contract. Every kind ParseKind
// accepts appears here; Validate rejects kinds it does not know.
var liveness = map[Kind]livenessRule{
	Launch:          needsDead,
	SwitchTo:        needsLive,
	Background:      needsLive,
	Kill:            killsTarget,
	Idle:            noTarget,
	Pressure:        noTarget,
	Tap:             exemptTarget,
	Key:             exemptTarget,
	Swipe:           exemptTarget,
	FaultBinder:     needsLiveService,
	CrashService:    needsLiveService,
	KillMediaserver: noTarget,
	CorruptParcel:   needsLiveService,
}

// Validate checks the scenario is well-formed and that its timeline is a
// legal lifecycle history per the liveness table: events in order, every
// event targeting a declared app, launches only of dead apps,
// switches/backgrounds/kills/faults only of live ones (CrashService leaves
// its target live — the ActivityManager restarts it in place). The engine
// runs only validated scenarios, so mid-run failures cannot occur.
func (s *Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: empty name")
	}
	if len(s.Apps) == 0 {
		return fmt.Errorf("scenario %s: no apps declared", s.Name)
	}
	declared := make(map[string]bool, len(s.Apps))
	for _, a := range s.Apps {
		if a.Name == "" {
			return fmt.Errorf("scenario %s: app with empty name", s.Name)
		}
		if reservedNames[a.Name] {
			return fmt.Errorf("scenario %s: app name %q is reserved by the booted system", s.Name, a.Name)
		}
		if declared[a.Name] {
			return fmt.Errorf("scenario %s: duplicate app %q", s.Name, a.Name)
		}
		if _, err := apps.ByName(a.Workload); err != nil {
			return fmt.Errorf("scenario %s: app %q: %v", s.Name, a.Name, err)
		}
		declared[a.Name] = true
	}
	if len(s.Timeline) == 0 {
		return fmt.Errorf("scenario %s: empty timeline", s.Name)
	}
	if !sort.SliceIsSorted(s.Timeline, func(i, j int) bool {
		return s.Timeline[i].At < s.Timeline[j].At
	}) {
		return fmt.Errorf("scenario %s: timeline not ordered by At", s.Name)
	}
	live := make(map[string]bool)
	for i, ev := range s.Timeline {
		if ev.At < 0 || ev.At > 1000 {
			return fmt.Errorf("scenario %s: event %q outside [0,1000]", s.Name, ev)
		}
		if ev.Kind != Pressure && ev.Pages != 0 {
			return fmt.Errorf("scenario %s: event %q carries a page delta", s.Name, ev)
		}
		rule, known := liveness[ev.Kind]
		if !known {
			return fmt.Errorf("scenario %s: event %q has unknown kind", s.Name, ev)
		}
		if rule == noTarget {
			if ev.App != "" {
				return fmt.Errorf("scenario %s: %s event names app %q", s.Name, ev.Kind, ev.App)
			}
			if ev.Kind == Pressure && ev.Pages == 0 {
				return fmt.Errorf("scenario %s: pressure event with zero page delta", s.Name)
			}
			continue
		}
		if !declared[ev.App] {
			return fmt.Errorf("scenario %s: event %q targets undeclared app", s.Name, ev)
		}
		switch rule {
		case exemptTarget:
			// Input events are exempt from the liveness rules: a tap at
			// a dead or backgrounded app is a legal script — the
			// dispatcher drops it at run time and the report counts it.
		case needsDead:
			if live[ev.App] {
				return fmt.Errorf("scenario %s: event %q launches an app that is already running", s.Name, ev)
			}
			live[ev.App] = true
		case needsLive:
			if !live[ev.App] {
				return fmt.Errorf("scenario %s: event %q targets an app that is not running", s.Name, ev)
			}
		case killsTarget:
			if !live[ev.App] {
				return fmt.Errorf("scenario %s: event %q kills an app that is not running", s.Name, ev)
			}
			delete(live, ev.App)
		case needsLiveService:
			if !live[ev.App] {
				return fmt.Errorf("scenario %s: timeline[%d]: event %q injects a fault into an app that is not running", s.Name, i, ev)
			}
		}
	}
	return nil
}

// at resolves the event's position to an absolute simulated time within a
// measured interval beginning at start and lasting duration. The interval is
// half-open — the machine stops the instant the clock reaches
// start+duration — so At=1000 is clamped to the final measured tick; without
// the clamp an end-of-interval event would land one tick past the last
// measured one and its effects would fall outside the measurement. Events
// close to the end may still land beyond the scheduling horizon (a quantum
// can overshoot the deadline); the engine keeps stepping the machine until
// the script has fully executed, so they are applied, never dropped.
func (e Event) at(start, duration sim.Ticks) sim.Ticks {
	t := start + duration*sim.Ticks(e.At)/1000
	if end := start + duration; t >= end {
		t = end - 1
	}
	return t
}
