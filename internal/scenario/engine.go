package scenario

import (
	"fmt"

	"agave/internal/android"
	"agave/internal/apps"
	"agave/internal/kernel"
	"agave/internal/sim"
	"agave/internal/stats"
)

// Config controls one scenario run. It deliberately mirrors core.Config:
// scenarios are measured exactly like single-app runs — boot, warm up,
// reset counters, measure — with the timeline scripted across the measured
// interval.
type Config struct {
	// Seed drives every stochastic decision; equal seeds give
	// bit-identical results.
	Seed uint64
	// Duration is the measured simulated interval; the timeline's
	// Fractions are positions within it.
	Duration sim.Ticks
	// Warmup runs the booted (but app-less) stack before measurement:
	// scenario measurements include app launches by design, so only the
	// system boot transient is excluded.
	Warmup sim.Ticks
	// Quantum is the scheduler time slice all live apps share.
	Quantum sim.Ticks
	// DisableJIT turns the trace JIT off in every scenario app.
	DisableJIT bool
	// DirtyRectComposition switches SurfaceFlinger to composing only
	// posted surfaces.
	DirtyRectComposition bool
	// MemPages is the machine's physical page budget (0 = the default
	// 1 GB device, kernel.DefaultMemPages). Scenario machines always run
	// the memory-pressure model: backgrounded apps can die because the
	// system is out of memory, not only because the timeline says so.
	MemPages uint64
	// MinFreePages is the lowmemorykiller's cached-app kill waterline in
	// pages; the visible and foreground rungs are derived from it
	// (0 = the default 32 MB). The CLI's -minfree knob lands here.
	MinFreePages uint64
}

// Result is the outcome of one scenario run: the same attributed counter
// matrix and census scalars a single-app run yields, plus session-level
// counts.
type Result struct {
	Scenario string
	// Source is the scenario's provenance (empty = bundled library; see
	// Scenario.Source), copied through so reports can label where each
	// session definition came from.
	Source string
	// Apps is the session's app roster (name → workload), copied from the
	// scenario so downstream consumers can resolve per-app attribution
	// without re-looking the scenario up in any registry.
	Apps  []App
	Stats *stats.Collector

	Processes int
	Threads   int
	// LiveProcesses counts processes still alive at the end — the
	// difference to Processes is the teardown the session performed.
	LiveProcesses int
	CodeRegions   int
	DataRegions   int

	// Events is the number of timeline events applied.
	Events int
	// MaxLive is the peak number of simultaneously-live scenario apps.
	MaxLive int

	// LMKKills counts processes the lowmemorykiller killed; LMKVictims
	// names them in kill order. Both are zero/empty when the session
	// never came under enough pressure.
	LMKKills   int
	LMKVictims []string
	// Trims counts onTrimMemory callbacks the ActivityManager delivered.
	Trims int

	// InputEvents counts the synthetic input samples the timeline
	// injected (a Tap is a down/up pair, a Swipe a five-sample gesture,
	// a Key one press); InputDispatched counts the samples an app's main
	// thread actually handled, and InputDropped the rest — refused by
	// the InputDispatcher (target dead, paused, or unfocused), consumed
	// unhandled by a paused activity, or still in flight when the
	// measurement ended. InputEvents == InputDispatched + InputDropped.
	InputEvents     int
	InputDispatched int
	InputDropped    int
	// InputApps is the per-target input outcome, sorted by app name;
	// empty when the timeline injected no input.
	InputApps []InputAppStats

	// The dependability section. FaultsInjected counts fault events that
	// actually fired (a fault at a runtime-dead target drops and counts
	// nothing); FaultsDetected counts injected failures some framework or
	// app code observed and survived via its error path; FaultsRecovered
	// counts completed recovery actions — crashed services relaunched,
	// mediaserver restarts, and player sessions re-established across
	// them. ANRs counts Application Not Responding episodes the watchdog
	// flagged (per-app counts ride on InputApps).
	FaultsInjected  int
	FaultsDetected  int
	FaultsRecovered int
	ANRs            int

	Duration sim.Ticks
}

// InputAppStats is one scenario app's input outcome: delivery counts plus
// end-to-end dispatch-latency aggregates (injection on the driver thread to
// handler start on the app's main thread, in ticks) over the dispatched
// events. It is the framework dispatcher's per-target record, carried into
// the result verbatim.
type InputAppStats = android.InputAppStats

// driver is the running session state: the scenario's apps by name and the
// current foreground app. It lives on the ScenarioDriver thread — the
// simulated counterpart of the `am` tooling scripted sessions use on real
// devices — so every transition is charged inside system_server at a
// deterministic simulated time.
type driver struct {
	sys        *android.System
	cfg        Config
	byName     map[string]*apps.Workload
	live       map[string]*android.App
	foreground string
	// scriptDone flips once every timeline event has been applied; the
	// engine steps the machine until it is set.
	scriptDone bool
}

// Run executes one scripted session: boot, warm up, then drive the timeline
// across the measured interval while every live app runs its workload.
func Run(s *Scenario, cfg Config) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("scenario %s: non-positive duration", s.Name)
	}
	d := &driver{
		cfg:    cfg,
		byName: make(map[string]*apps.Workload, len(s.Apps)),
		live:   make(map[string]*android.App, len(s.Apps)),
	}
	for _, a := range s.Apps {
		w, err := apps.ByName(a.Workload)
		if err != nil {
			return nil, err // unreachable after Validate
		}
		d.byName[a.Name] = w
	}

	memPages := cfg.MemPages
	if memPages == 0 {
		memPages = kernel.DefaultMemPages
	}
	k := kernel.New(kernel.Config{
		Quantum:  cfg.Quantum,
		Seed:     cfg.Seed,
		MemPages: memPages,
		MinFree:  kernel.DefaultMinFree(cfg.MinFreePages),
	})
	defer k.Shutdown()
	sys := android.Boot(k)
	sys.Compositor.DirtyRectOnly = cfg.DirtyRectComposition
	d.sys = sys

	// Warmup covers the system boot transient only: no scenario app exists
	// yet, because launches are part of the measured session.
	k.Run(cfg.Warmup)
	k.Stats.Reset()

	// The driver thread scripts the session from inside the simulation:
	// it sleeps to each event's deadline and applies the transition, so
	// event timing, cost, and attribution (to system_server, like the real
	// ActivityManager's) are deterministic parts of the measurement.
	start := k.Clock.Now()
	k.SpawnThread(sys.SystemServer, "ScenarioDriver", "ScenarioDriver", func(ex *kernel.Exec) {
		ex.PushCode(sys.SystemServer.Layout.Text)
		for _, ev := range s.Timeline {
			ex.SleepUntil(ev.at(start, cfg.Duration))
			d.apply(ex, ev)
		}
		d.scriptDone = true
		// Script exhausted: park until the run ends.
		ex.Wait(k.NewWaitQueue("scenario.done"))
	})
	k.Run(cfg.Warmup + cfg.Duration)
	// A scheduler quantum can overshoot the deadline past the timers of
	// events scripted at the very end of the interval (At near 1000).
	// Step the machine forward until the whole script has executed, so
	// every validated event is applied — Result.Events is a promise.
	for !d.scriptDone {
		k.Run(k.Clock.Now() + 1)
	}

	res := &Result{
		Scenario:      s.Name,
		Source:        s.Source,
		Apps:          append([]App(nil), s.Apps...),
		Stats:         k.Stats,
		Processes:     k.ProcessCount(),
		Threads:       k.ThreadCount(),
		LiveProcesses: k.LiveProcessCount(),
		CodeRegions:   k.Stats.RegionCount(stats.IFetch),
		DataRegions:   k.Stats.RegionCount(stats.DataKinds...),
		Events:        len(s.Timeline),
		MaxLive:       s.MaxLiveApps(),
		LMKKills:      k.LMKKills(),
		LMKVictims:    append([]string(nil), k.LMKVictims()...),
		Trims:         sys.Trims(),
		Duration:      cfg.Duration,
	}
	res.InputApps = sys.InputStats()
	for _, st := range res.InputApps {
		res.InputEvents += st.Injected
		res.InputDispatched += st.Dispatched
		res.InputDropped += st.Dropped
	}
	res.FaultsInjected, res.FaultsDetected, res.FaultsRecovered, res.ANRs = sys.Inject.Counts()
	return res, nil
}

// apply performs one validated timeline event on the driver thread.
func (d *driver) apply(ex *kernel.Exec, ev Event) {
	sys := d.sys
	switch ev.Kind {
	case Launch:
		w := d.byName[ev.App]
		a := apps.LaunchAs(sys, w, ev.App, d.cfg.DisableJIT)
		d.live[ev.App] = a
		if !w.Background {
			// The launched activity takes the foreground; whoever held
			// it is paused, exactly as a real launch backgrounds the
			// previous task.
			d.pauseForeground(ex, ev.App)
			d.foreground = ev.App
		}
	case SwitchTo:
		if d.foreground == ev.App {
			return
		}
		d.pauseForeground(ex, ev.App)
		sys.ResumeApp(ex, d.live[ev.App])
		d.foreground = ev.App
	case Background:
		sys.PauseApp(ex, d.live[ev.App])
		if d.foreground == ev.App {
			d.foreground = ""
		}
	case Kill:
		sys.KillApp(ex, d.live[ev.App])
		delete(d.live, ev.App)
		if d.foreground == ev.App {
			d.foreground = ""
		}
	case Tap:
		sys.InjectTap(ex, ev.App)
	case Key:
		sys.InjectKey(ex, ev.App)
	case Swipe:
		sys.InjectSwipe(ex, ev.App)
	case Idle:
		// A deliberate gap: the system runs undisturbed.
	case Pressure:
		// External memory demand: the allocation syscall cost charges to
		// the driver; whether anything dies is the lowmemorykiller's call.
		ex.Syscall(800, 200)
		sys.K.Balloon(ev.Pages)
	case FaultBinder:
		// A target that died at run time (the lowmemorykiller got it) drops
		// the fault without effect — the runtime counterpart of the
		// validator's liveness rule.
		sys.InjectBinderFault(ex, ev.App)
	case CorruptParcel:
		sys.InjectCorruptParcel(ex, ev.App)
	case CrashService:
		d.crashService(ex, ev)
	case KillMediaserver:
		sys.CrashMediaserver(ex)
	}
}

// crashService kills the target as a native crash would and performs the
// ActivityManager's system-restart recovery: the process comes straight
// back under the same name. The script considers the app continuously live
// — later events target the restarted incarnation. A runtime-dead target
// drops the fault.
func (d *driver) crashService(ex *kernel.Exec, ev Event) {
	sys := d.sys
	a, ok := d.live[ev.App]
	if !ok || a.Dead {
		return
	}
	wasFg := d.foreground == ev.App
	prevFg := d.foreground
	sys.CrashApp(ex, a)
	delete(d.live, ev.App)
	if wasFg {
		d.foreground = ""
	}
	w := d.byName[ev.App]
	restarted := apps.LaunchAs(sys, w, ev.App, d.cfg.DisableJIT)
	d.live[ev.App] = restarted
	sys.Inject.NoteRecovered()
	if w.Background {
		return
	}
	if wasFg {
		// The crashed activity held the screen; its restart takes it back.
		d.foreground = ev.App
		return
	}
	// It was behind another app: the restart happens in the background and
	// the previous foreground app keeps (formally, retakes) its slot.
	sys.PauseApp(ex, restarted)
	if prevFg != "" {
		if p, ok := d.live[prevFg]; ok && !p.Dead {
			sys.ResumeApp(ex, p)
		}
	}
}

// pauseForeground pauses the current foreground app, if any, unless it is
// the app about to take over.
func (d *driver) pauseForeground(ex *kernel.Exec, next string) {
	if d.foreground == "" || d.foreground == next {
		return
	}
	if a, ok := d.live[d.foreground]; ok {
		d.sys.PauseApp(ex, a)
	}
	d.foreground = ""
}
