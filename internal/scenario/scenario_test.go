package scenario

import (
	"reflect"
	"testing"

	"agave/internal/android"
	"agave/internal/apps"
	"agave/internal/kernel"
	"agave/internal/sim"
)

func quickCfg() Config {
	return Config{
		Seed:     1,
		Duration: 150 * sim.Millisecond,
		Warmup:   80 * sim.Millisecond,
		Quantum:  sim.Millisecond,
	}
}

func TestLibraryValidatesAndCoversTheBar(t *testing.T) {
	lib := Library()
	if len(lib) < 5 {
		t.Fatalf("library has %d scenarios, want >= 5", len(lib))
	}
	maxLive := 0
	seen := make(map[string]bool)
	for _, s := range lib {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
		if s.Description == "" {
			t.Errorf("%s: empty description", s.Name)
		}
		if seen[s.Name] {
			t.Errorf("duplicate scenario name %q", s.Name)
		}
		seen[s.Name] = true
		if ml := s.MaxLiveApps(); ml > maxLive {
			maxLive = ml
		}
	}
	if maxLive < 3 {
		t.Fatalf("no scenario reaches 3 concurrently-live apps (max %d)", maxLive)
	}
}

func TestValidateRejectsIllFormedTimelines(t *testing.T) {
	base := func() *Scenario {
		return &Scenario{
			Name: "t",
			Apps: []App{{Name: "a", Workload: "countdown.main"}},
			Timeline: []Event{
				{At: 0, Kind: Launch, App: "a"},
			},
		}
	}
	cases := []struct {
		name   string
		mutate func(*Scenario)
	}{
		{"unknown workload", func(s *Scenario) { s.Apps[0].Workload = "no.such" }},
		{"reserved app name", func(s *Scenario) {
			s.Apps[0].Name = "launcher"
			s.Timeline[0].App = "launcher"
		}},
		{"duplicate app", func(s *Scenario) { s.Apps = append(s.Apps, s.Apps[0]) }},
		{"empty timeline", func(s *Scenario) { s.Timeline = nil }},
		{"unordered timeline", func(s *Scenario) {
			s.Timeline = append(s.Timeline, Event{At: 500, Kind: Background, App: "a"},
				Event{At: 100, Kind: SwitchTo, App: "a"})
		}},
		{"double launch", func(s *Scenario) {
			s.Timeline = append(s.Timeline, Event{At: 100, Kind: Launch, App: "a"})
		}},
		{"switch to dead app", func(s *Scenario) {
			s.Timeline = append(s.Timeline, Event{At: 100, Kind: Kill, App: "a"},
				Event{At: 200, Kind: SwitchTo, App: "a"})
		}},
		{"kill before launch", func(s *Scenario) {
			s.Timeline = []Event{{At: 0, Kind: Kill, App: "a"}}
		}},
		{"undeclared target", func(s *Scenario) {
			s.Timeline = append(s.Timeline, Event{At: 100, Kind: SwitchTo, App: "ghost"})
		}},
		{"idle with app", func(s *Scenario) {
			s.Timeline = append(s.Timeline, Event{At: 100, Kind: Idle, App: "a"})
		}},
		{"fraction out of range", func(s *Scenario) {
			s.Timeline = append(s.Timeline, Event{At: 1500, Kind: Background, App: "a"})
		}},
		{"pressure with app", func(s *Scenario) {
			s.Timeline = append(s.Timeline, Event{At: 100, Kind: Pressure, App: "a", Pages: 100})
		}},
		{"pressure without pages", func(s *Scenario) {
			s.Timeline = append(s.Timeline, Event{At: 100, Kind: Pressure})
		}},
		{"page delta on non-pressure event", func(s *Scenario) {
			s.Timeline = append(s.Timeline, Event{At: 100, Kind: Background, App: "a", Pages: 100})
		}},
	}
	for _, c := range cases {
		s := base()
		c.mutate(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: validated", c.name)
		}
	}
}

// TestRunIsSeedDeterministic is the core guarantee: a scenario is a
// measurement, so two runs with equal seeds must produce bit-identical
// attributed counters even across launches, switches, and kills.
func TestRunIsSeedDeterministic(t *testing.T) {
	sc, err := ByName("commute")
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(sc, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sc, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats.Fingerprint() != b.Stats.Fingerprint() {
		t.Fatal("same seed, diverging fingerprints")
	}
	if !reflect.DeepEqual(a.Stats.Entries(), b.Stats.Entries()) {
		t.Fatal("same seed, diverging counter matrices")
	}
	// A different session length is a genuinely different measurement.
	longer := quickCfg()
	longer.Duration += 50 * sim.Millisecond
	c, err := Run(sc, longer)
	if err != nil {
		t.Fatal(err)
	}
	if c.Stats.Fingerprint() == a.Stats.Fingerprint() {
		t.Fatal("longer run produced an identical fingerprint")
	}
}

// TestEventAtClampsToMeasuredInterval pins the boundary fix: the measured
// interval is half-open, so At=1000 resolves to the final measured tick
// (start+duration-1), never to start+duration — one tick past the last
// measured one, where the event's effects would fall outside the
// measurement.
func TestEventAtClampsToMeasuredInterval(t *testing.T) {
	const start, duration = 1000, 500
	for _, tc := range []struct {
		at   Fraction
		want sim.Ticks
	}{
		{0, start},
		{500, start + 250},
		{999, start + duration*999/1000},
		{1000, start + duration - 1},
	} {
		if got := (Event{At: tc.at}).at(start, duration); got != tc.want {
			t.Errorf("At=%d resolves to %d, want %d", tc.at, got, tc.want)
		}
	}
	// Degenerate one-tick interval: everything lands on the only tick.
	if got := (Event{At: 1000}).at(7, 1); got != 7 {
		t.Errorf("At=1000 of a 1-tick interval resolves to %d, want 7", got)
	}
}

// TestEndOfIntervalEventFires guards the half-open-interval edge: the
// kernel stops the instant the deadline is reached, so an event scripted at
// At=1000 must land on the interval's last tick, not one past it.
func TestEndOfIntervalEventFires(t *testing.T) {
	sc := &Scenario{
		Name:        "edge",
		Description: "kill on the final tick",
		Apps:        []App{{Name: "note", Workload: "countdown.main"}},
		Timeline: []Event{
			{At: 0, Kind: Launch, App: "note"},
			{At: 1000, Kind: Kill, App: "note"},
		},
	}
	res, err := Run(sc, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.LiveProcesses >= res.Processes {
		t.Fatalf("At=1000 kill did not execute: live %d, total %d",
			res.LiveProcesses, res.Processes)
	}
}

// TestPerAppAttribution pins the tentpole property: with four apps live at
// once, every app is its own process in the counter matrix, and all of them
// issue references.
func TestPerAppAttribution(t *testing.T) {
	sc, err := ByName("social-burst")
	if err != nil {
		t.Fatal(err)
	}
	if sc.MaxLiveApps() < 3 {
		t.Fatalf("social-burst holds %d live apps, want >= 3", sc.MaxLiveApps())
	}
	res, err := Run(sc, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	byProc := res.Stats.ByProcess()
	for _, app := range sc.Apps {
		if byProc[app.Name] == 0 {
			t.Errorf("app %q attributed no references", app.Name)
		}
	}
	// The resident stack is present too, exactly as in single-app runs
	// (zygote itself is silent post-warmup, there as here: it parks in its
	// fork-request loop before measurement starts).
	for _, p := range []string{"system_server", "mediaserver", "swapper"} {
		if byProc[p] == 0 {
			t.Errorf("resident process %q attributed no references", p)
		}
	}
	if res.MaxLive < 3 {
		t.Errorf("result MaxLive = %d, want >= 3", res.MaxLive)
	}
}

// TestKillTearsProcessesDown runs the kill-heavy scenarios and checks the
// census: killed incarnations stay in the process count (as all spawned
// processes do) while the live count drops below it.
func TestKillTearsProcessesDown(t *testing.T) {
	for _, name := range []string{"media-marathon", "app-churn"} {
		sc, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(sc, quickCfg())
		if err != nil {
			t.Fatal(err)
		}
		if res.LiveProcesses >= res.Processes {
			t.Errorf("%s: live processes %d not below total %d after kills",
				name, res.LiveProcesses, res.Processes)
		}
		if res.Events != len(sc.Timeline) {
			t.Errorf("%s: applied %d events, want %d", name, res.Events, len(sc.Timeline))
		}
	}
}

// TestMemoryStormEmergentKills is the tentpole acceptance bar: the
// memory-storm timeline scripts no Kill event at all, yet under its Pressure
// events the lowmemorykiller must evict processes — cached apps before the
// perceptible/visible band, and never the foreground app. Kill timing and
// victim identity are decided by the kernel, not the script.
func TestMemoryStormEmergentKills(t *testing.T) {
	sc, err := ByName("memory-storm")
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range sc.Timeline {
		if ev.Kind == Kill {
			t.Fatalf("memory-storm scripts a kill: %s", ev)
		}
	}
	res, err := Run(sc, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.LMKKills < 1 {
		t.Fatal("memory-storm produced no lowmemorykiller kill")
	}
	if res.LMKKills != len(res.LMKVictims) {
		t.Fatalf("kill count %d != victims %v", res.LMKKills, res.LMKVictims)
	}
	pos := make(map[string]int)
	for i, v := range res.LMKVictims {
		if v == "game" {
			t.Fatalf("foreground app killed: victims %v", res.LMKVictims)
		}
		pos[v] = i
	}
	// The cached apps (dict was backgrounded first, then timer) must go
	// before anything in the visible/perceptible band.
	cached := []string{"dict", "timer"}
	for _, c := range cached {
		ci, ok := pos[c]
		if !ok {
			continue
		}
		for _, v := range []string{"radio", "ndroid.systemui"} {
			if vi, ok := pos[v]; ok && vi < ci {
				t.Fatalf("victim order violates oom_adj: %q before cached %q in %v",
					v, c, res.LMKVictims)
			}
		}
	}
	if _, ok := pos["dict"]; !ok {
		t.Fatalf("LRU-oldest cached app survived the storm: victims %v", res.LMKVictims)
	}
	if res.Trims == 0 {
		t.Fatal("storm delivered no onTrimMemory callbacks")
	}
	// Emergent deaths show up in the census like scripted ones.
	if res.LiveProcesses >= res.Processes {
		t.Fatalf("census does not reflect LMK deaths: live %d of %d",
			res.LiveProcesses, res.Processes)
	}
}

// TestCachedAppEvictionPolicy pins the cooperative-then-coercive ladder:
// moderate pressure only trims (apps shrink their dalvik heaps), and the
// deep wave evicts exactly the LRU-oldest cached app — chosen by oom_adj
// recency, not by size — while the recently-used cached app and the
// foreground survive.
func TestCachedAppEvictionPolicy(t *testing.T) {
	sc, err := ByName("cached-app-eviction")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(sc, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Trims == 0 {
		t.Fatal("moderate pressure delivered no onTrimMemory callbacks")
	}
	if res.LMKKills < 1 {
		t.Fatal("deep pressure killed nothing")
	}
	if res.LMKVictims[0] != "notes" {
		t.Fatalf("first victim = %q, want the LRU-oldest cached app %q (victims %v)",
			res.LMKVictims[0], "notes", res.LMKVictims)
	}
	for _, v := range res.LMKVictims {
		if v == "reader" || v == "game" {
			t.Fatalf("recently-used or foreground app evicted: %v", res.LMKVictims)
		}
	}
}

// TestScenarioRunsStayKillFreeWithoutPressure guards the bundled library's
// backward compatibility: the pressure model is always on for scenarios, but
// with the default budget no non-Pressure scenario comes close to the
// minfree ladder.
func TestScenarioRunsStayKillFreeWithoutPressure(t *testing.T) {
	for _, name := range []string{"commute", "social-burst", "app-churn"} {
		sc, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(sc, quickCfg())
		if err != nil {
			t.Fatal(err)
		}
		if res.LMKKills != 0 || res.Trims != 0 {
			t.Errorf("%s: unexpected pressure activity: %d kills %v, %d trims",
				name, res.LMKKills, res.LMKVictims, res.Trims)
		}
	}
}

// TestMinFreeKnobTightensTheKiller pins the -minfree plumbing: raising the
// waterline makes a previously-safe session come under pressure.
func TestMinFreeKnobTightensTheKiller(t *testing.T) {
	sc, err := ByName("social-burst")
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickCfg()
	cfg.MinFreePages = 120_000 // absurdly high waterline: everything is pressure
	res, err := Run(sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.LMKKills == 0 && res.Trims == 0 {
		t.Fatal("raised minfree waterline produced no pressure response")
	}
}

// TestPauseParksForegroundApp drives the looper lifecycle directly: after
// PauseApp the app's main thread must park (Paused) and its surface leave
// composition; after ResumeApp it must come back.
func TestPauseParksForegroundApp(t *testing.T) {
	k := kernel.New(kernel.Config{Quantum: sim.Millisecond, Seed: 1})
	defer k.Shutdown()
	sys := android.Boot(k)
	w, err := apps.ByName("frozenbubble.main")
	if err != nil {
		t.Fatal(err)
	}
	a := apps.LaunchAs(sys, w, "game", false)
	k.Run(80 * sim.Millisecond)
	if a.Paused() {
		t.Fatal("app paused before any pause request")
	}
	// Drive the transition from a driver thread, as the engine does.
	k.SpawnThread(sys.SystemServer, "driver", "driver", func(ex *kernel.Exec) {
		ex.PushCode(sys.SystemServer.Layout.Text)
		sys.PauseApp(ex, a)
		ex.SleepFor(60 * sim.Millisecond)
		sys.ResumeApp(ex, a)
		ex.SleepFor(40 * sim.Millisecond)
		sys.KillApp(ex, a)
	})
	k.Run(120 * sim.Millisecond)
	if !a.Paused() {
		t.Fatal("app not parked after PauseApp")
	}
	if a.Surface == nil || a.Surface.Visible {
		t.Fatal("paused app's surface still visible")
	}
	k.Run(180 * sim.Millisecond)
	if a.Paused() {
		t.Fatal("app still parked after ResumeApp")
	}
	if !a.Surface.Visible {
		t.Fatal("resumed app's surface not visible")
	}
	k.Run(260 * sim.Millisecond)
	if !a.Dead || a.Proc.LiveThreads() != 0 {
		t.Fatalf("killed app alive: dead=%v liveThreads=%d", a.Dead, a.Proc.LiveThreads())
	}
}

// TestRepeatedRunsWithWarmPoolsAreByteIdentical pins the pooling work: the
// engine's free lists (looper messages, input events, binder transactions,
// recycled cpu contexts) and the package-level caches they feed (stock dex
// images, decoded programs) must never leak state between runs. The first
// run of each scenario is the cold-cache reference; the two that follow
// execute with every process-wide cache warm and must reproduce the report
// byte for byte. Both a chaos scenario (fault injection, crash/restart) and
// an input-heavy scenario (the dispatcher's pooled event path) are covered.
func TestRepeatedRunsWithWarmPoolsAreByteIdentical(t *testing.T) {
	for _, name := range []string{"binder-storm", "thumb-scroll"} {
		sc, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		cold, err := Run(sc, quickCfg())
		if err != nil {
			t.Fatalf("%s: cold run: %v", name, err)
		}
		for i := 0; i < 2; i++ {
			warm, err := Run(sc, quickCfg())
			if err != nil {
				t.Fatalf("%s: warm run %d: %v", name, i, err)
			}
			if warm.Stats.Fingerprint() != cold.Stats.Fingerprint() {
				t.Fatalf("%s: warm run %d fingerprint diverged", name, i)
			}
			if !reflect.DeepEqual(warm.Stats.Entries(), cold.Stats.Entries()) {
				t.Fatalf("%s: warm run %d counter matrix diverged", name, i)
			}
			// Every non-counter report input must match too: census
			// scalars, input outcomes, fault bookkeeping.
			wc, cc := *warm, *cold
			wc.Stats, cc.Stats = nil, nil
			if !reflect.DeepEqual(wc, cc) {
				t.Fatalf("%s: warm run %d result fields diverged:\nwarm: %+v\ncold: %+v", name, i, wc, cc)
			}
		}
	}
}
