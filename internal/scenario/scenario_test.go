package scenario

import (
	"reflect"
	"testing"

	"agave/internal/android"
	"agave/internal/apps"
	"agave/internal/kernel"
	"agave/internal/sim"
)

func quickCfg() Config {
	return Config{
		Seed:     1,
		Duration: 150 * sim.Millisecond,
		Warmup:   80 * sim.Millisecond,
		Quantum:  sim.Millisecond,
	}
}

func TestLibraryValidatesAndCoversTheBar(t *testing.T) {
	lib := Library()
	if len(lib) < 5 {
		t.Fatalf("library has %d scenarios, want >= 5", len(lib))
	}
	maxLive := 0
	seen := make(map[string]bool)
	for _, s := range lib {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
		if s.Description == "" {
			t.Errorf("%s: empty description", s.Name)
		}
		if seen[s.Name] {
			t.Errorf("duplicate scenario name %q", s.Name)
		}
		seen[s.Name] = true
		if ml := s.MaxLiveApps(); ml > maxLive {
			maxLive = ml
		}
	}
	if maxLive < 3 {
		t.Fatalf("no scenario reaches 3 concurrently-live apps (max %d)", maxLive)
	}
}

func TestValidateRejectsIllFormedTimelines(t *testing.T) {
	base := func() *Scenario {
		return &Scenario{
			Name: "t",
			Apps: []App{{Name: "a", Workload: "countdown.main"}},
			Timeline: []Event{
				{At: 0, Kind: Launch, App: "a"},
			},
		}
	}
	cases := []struct {
		name   string
		mutate func(*Scenario)
	}{
		{"unknown workload", func(s *Scenario) { s.Apps[0].Workload = "no.such" }},
		{"reserved app name", func(s *Scenario) {
			s.Apps[0].Name = "launcher"
			s.Timeline[0].App = "launcher"
		}},
		{"duplicate app", func(s *Scenario) { s.Apps = append(s.Apps, s.Apps[0]) }},
		{"empty timeline", func(s *Scenario) { s.Timeline = nil }},
		{"unordered timeline", func(s *Scenario) {
			s.Timeline = append(s.Timeline, Event{At: 500, Kind: Background, App: "a"},
				Event{At: 100, Kind: SwitchTo, App: "a"})
		}},
		{"double launch", func(s *Scenario) {
			s.Timeline = append(s.Timeline, Event{At: 100, Kind: Launch, App: "a"})
		}},
		{"switch to dead app", func(s *Scenario) {
			s.Timeline = append(s.Timeline, Event{At: 100, Kind: Kill, App: "a"},
				Event{At: 200, Kind: SwitchTo, App: "a"})
		}},
		{"kill before launch", func(s *Scenario) {
			s.Timeline = []Event{{At: 0, Kind: Kill, App: "a"}}
		}},
		{"undeclared target", func(s *Scenario) {
			s.Timeline = append(s.Timeline, Event{At: 100, Kind: SwitchTo, App: "ghost"})
		}},
		{"idle with app", func(s *Scenario) {
			s.Timeline = append(s.Timeline, Event{At: 100, Kind: Idle, App: "a"})
		}},
		{"fraction out of range", func(s *Scenario) {
			s.Timeline = append(s.Timeline, Event{At: 1500, Kind: Background, App: "a"})
		}},
	}
	for _, c := range cases {
		s := base()
		c.mutate(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: validated", c.name)
		}
	}
}

// TestRunIsSeedDeterministic is the core guarantee: a scenario is a
// measurement, so two runs with equal seeds must produce bit-identical
// attributed counters even across launches, switches, and kills.
func TestRunIsSeedDeterministic(t *testing.T) {
	sc, err := ByName("commute")
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(sc, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sc, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats.Fingerprint() != b.Stats.Fingerprint() {
		t.Fatal("same seed, diverging fingerprints")
	}
	if !reflect.DeepEqual(a.Stats.Entries(), b.Stats.Entries()) {
		t.Fatal("same seed, diverging counter matrices")
	}
	// A different session length is a genuinely different measurement.
	longer := quickCfg()
	longer.Duration += 50 * sim.Millisecond
	c, err := Run(sc, longer)
	if err != nil {
		t.Fatal(err)
	}
	if c.Stats.Fingerprint() == a.Stats.Fingerprint() {
		t.Fatal("longer run produced an identical fingerprint")
	}
}

// TestEndOfIntervalEventFires guards the half-open-interval edge: the
// kernel stops the instant the deadline is reached, so an event scripted at
// At=1000 must land on the interval's last tick, not one past it.
func TestEndOfIntervalEventFires(t *testing.T) {
	sc := &Scenario{
		Name:        "edge",
		Description: "kill on the final tick",
		Apps:        []App{{Name: "note", Workload: "countdown.main"}},
		Timeline: []Event{
			{At: 0, Kind: Launch, App: "note"},
			{At: 1000, Kind: Kill, App: "note"},
		},
	}
	res, err := Run(sc, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.LiveProcesses >= res.Processes {
		t.Fatalf("At=1000 kill did not execute: live %d, total %d",
			res.LiveProcesses, res.Processes)
	}
}

// TestPerAppAttribution pins the tentpole property: with four apps live at
// once, every app is its own process in the counter matrix, and all of them
// issue references.
func TestPerAppAttribution(t *testing.T) {
	sc, err := ByName("social-burst")
	if err != nil {
		t.Fatal(err)
	}
	if sc.MaxLiveApps() < 3 {
		t.Fatalf("social-burst holds %d live apps, want >= 3", sc.MaxLiveApps())
	}
	res, err := Run(sc, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	byProc := res.Stats.ByProcess()
	for _, app := range sc.Apps {
		if byProc[app.Name] == 0 {
			t.Errorf("app %q attributed no references", app.Name)
		}
	}
	// The resident stack is present too, exactly as in single-app runs
	// (zygote itself is silent post-warmup, there as here: it parks in its
	// fork-request loop before measurement starts).
	for _, p := range []string{"system_server", "mediaserver", "swapper"} {
		if byProc[p] == 0 {
			t.Errorf("resident process %q attributed no references", p)
		}
	}
	if res.MaxLive < 3 {
		t.Errorf("result MaxLive = %d, want >= 3", res.MaxLive)
	}
}

// TestKillTearsProcessesDown runs the kill-heavy scenarios and checks the
// census: killed incarnations stay in the process count (as all spawned
// processes do) while the live count drops below it.
func TestKillTearsProcessesDown(t *testing.T) {
	for _, name := range []string{"media-marathon", "app-churn"} {
		sc, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(sc, quickCfg())
		if err != nil {
			t.Fatal(err)
		}
		if res.LiveProcesses >= res.Processes {
			t.Errorf("%s: live processes %d not below total %d after kills",
				name, res.LiveProcesses, res.Processes)
		}
		if res.Events != len(sc.Timeline) {
			t.Errorf("%s: applied %d events, want %d", name, res.Events, len(sc.Timeline))
		}
	}
}

// TestPauseParksForegroundApp drives the looper lifecycle directly: after
// PauseApp the app's main thread must park (Paused) and its surface leave
// composition; after ResumeApp it must come back.
func TestPauseParksForegroundApp(t *testing.T) {
	k := kernel.New(kernel.Config{Quantum: sim.Millisecond, Seed: 1})
	defer k.Shutdown()
	sys := android.Boot(k)
	w, err := apps.ByName("frozenbubble.main")
	if err != nil {
		t.Fatal(err)
	}
	a := apps.LaunchAs(sys, w, "game", false)
	k.Run(80 * sim.Millisecond)
	if a.Paused() {
		t.Fatal("app paused before any pause request")
	}
	// Drive the transition from a driver thread, as the engine does.
	k.SpawnThread(sys.SystemServer, "driver", "driver", func(ex *kernel.Exec) {
		ex.PushCode(sys.SystemServer.Layout.Text)
		sys.PauseApp(ex, a)
		ex.SleepFor(60 * sim.Millisecond)
		sys.ResumeApp(ex, a)
		ex.SleepFor(40 * sim.Millisecond)
		sys.KillApp(ex, a)
	})
	k.Run(120 * sim.Millisecond)
	if !a.Paused() {
		t.Fatal("app not parked after PauseApp")
	}
	if a.Surface == nil || a.Surface.Visible {
		t.Fatal("paused app's surface still visible")
	}
	k.Run(180 * sim.Millisecond)
	if a.Paused() {
		t.Fatal("app still parked after ResumeApp")
	}
	if !a.Surface.Visible {
		t.Fatal("resumed app's surface not visible")
	}
	k.Run(260 * sim.Millisecond)
	if !a.Dead || a.Proc.LiveThreads() != 0 {
		t.Fatalf("killed app alive: dead=%v liveThreads=%d", a.Dead, a.Proc.LiveThreads())
	}
}
