package scenario

import (
	"bytes"
	"testing"
)

// FuzzDecodeScenario fuzzes the JSON scenario codec. The corpus is seeded
// with the canonical encodings of every bundled scenario (the same documents
// committed under testdata/scenarios) plus a few deliberately-hostile
// shapes. The invariants:
//
//  1. Decode never panics, whatever the bytes.
//  2. Anything Decode accepts passes Scenario.Validate — the parse boundary
//     establishes the engine's precondition.
//  3. Accepted input round-trips: decode→encode→decode reproduces the exact
//     canonical bytes, so the canonical form is a fixed point and no field
//     is silently dropped or coerced.
func FuzzDecodeScenario(f *testing.F) {
	for _, s := range Library() {
		doc, err := Encode(s)
		if err != nil {
			f.Fatalf("%s: seed corpus encode: %v", s.Name, err)
		}
		f.Add(doc)
	}
	for _, g := range []GenConfig{{Seed: 1, Apps: 10}, {Seed: 2, Apps: 3, Events: 9, Pressure: 2}} {
		doc, err := Encode(Generate(g))
		if err != nil {
			f.Fatalf("generator seed corpus: %v", err)
		}
		f.Add(doc)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"name":"x","apps":[{"name":"a","workload":"countdown.main"}],"timeline":[{"at":1e3,"kind":"launch","app":"a"}]}`))
	f.Add([]byte(`{"name":"x","apps":null,"timeline":null}`))
	f.Add([]byte("[]"))
	f.Add([]byte("{\"name\":\"\x00\",\"apps\":[{\"name\":\"a\",\"workload\":\"countdown.main\"}],\"timeline\":[{\"at\":0,\"kind\":\"launch\",\"app\":\"a\"}]}"))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			return // rejected input: the only requirement is no panic
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("Decode accepted an invalid scenario: %v\ninput: %q", err, data)
		}
		doc, err := Encode(s)
		if err != nil {
			t.Fatalf("accepted scenario does not re-encode: %v", err)
		}
		s2, err := Decode(doc)
		if err != nil {
			t.Fatalf("canonical encoding does not re-decode: %v\nencoding: %s", err, doc)
		}
		doc2, err := Encode(s2)
		if err != nil {
			t.Fatalf("re-decoded scenario does not encode: %v", err)
		}
		if !bytes.Equal(doc, doc2) {
			t.Fatalf("round trip is not a fixed point:\nfirst:  %s\nsecond: %s", doc, doc2)
		}
	})
}
