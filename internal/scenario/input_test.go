package scenario

import (
	"reflect"
	"testing"
)

// inputTotalsConsistent asserts the input-accounting invariant on a result:
// every injected sample is either dispatched or dropped, at the session
// level and per app, and latency aggregates are coherent.
func inputTotalsConsistent(t *testing.T, r *Result) {
	t.Helper()
	if r.InputEvents != r.InputDispatched+r.InputDropped {
		t.Fatalf("input totals inconsistent: %d events != %d dispatched + %d dropped",
			r.InputEvents, r.InputDispatched, r.InputDropped)
	}
	var inj, disp, drop int
	for _, a := range r.InputApps {
		if a.Injected != a.Dispatched+a.Dropped {
			t.Fatalf("%s: per-app totals inconsistent: %d != %d + %d",
				a.App, a.Injected, a.Dispatched, a.Dropped)
		}
		if a.Dispatched > 0 {
			if a.LatencyMin > a.LatencyMax {
				t.Fatalf("%s: latency min %d > max %d", a.App, a.LatencyMin, a.LatencyMax)
			}
			if a.LatencySum < a.LatencyMax {
				t.Fatalf("%s: latency sum %d < max %d", a.App, a.LatencySum, a.LatencyMax)
			}
		} else if a.LatencyMin != 0 || a.LatencyMax != 0 || a.LatencySum != 0 {
			t.Fatalf("%s: latency stats without dispatched events", a.App)
		}
		inj += a.Injected
		disp += a.Dispatched
		drop += a.Dropped
	}
	if inj != r.InputEvents || disp != r.InputDispatched || drop != r.InputDropped {
		t.Fatalf("per-app sums (%d/%d/%d) diverge from session totals (%d/%d/%d)",
			inj, disp, drop, r.InputEvents, r.InputDispatched, r.InputDropped)
	}
}

// TestInputLibraryScenariosDispatchAndDrop pins the acceptance bar on the two
// bundled input-heavy sessions: both must dispatch real events (with latency
// statistics) and drop the deliberately-stale ones, under the consistent
// accounting invariant.
func TestInputLibraryScenariosDispatchAndDrop(t *testing.T) {
	for _, name := range []string{"thumb-scroll", "arcade-rally"} {
		sc, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		r, err := Run(sc, quickCfg())
		if err != nil {
			t.Fatal(err)
		}
		inputTotalsConsistent(t, r)
		if r.InputEvents == 0 {
			t.Fatalf("%s: no input injected", name)
		}
		if r.InputDispatched == 0 {
			t.Fatalf("%s: nothing dispatched", name)
		}
		if r.InputDropped == 0 {
			t.Fatalf("%s: scripted stale gestures were not dropped", name)
		}
		var sawLatency bool
		for _, a := range r.InputApps {
			if a.Dispatched > 0 && a.LatencySum > 0 {
				sawLatency = true
			}
		}
		if !sawLatency {
			t.Fatalf("%s: no dispatch-latency statistics recorded", name)
		}
	}
}

// TestInputToUnfocusedAppDropsDeterministically: gestures aimed at an app
// that lost the foreground are dropped by the InputDispatcher — and two runs
// of the session agree on every counter and on the full counter matrix.
func TestInputToUnfocusedAppDropsDeterministically(t *testing.T) {
	sc := &Scenario{
		Name: "stale-taps",
		Apps: []App{
			{Name: "note", Workload: "countdown.main"},
			{Name: "game", Workload: "frozenbubble.main"},
		},
		Timeline: []Event{
			{At: 0, Kind: Launch, App: "note"},
			{At: 100, Kind: Launch, App: "game"}, // note loses the focus
			{At: 300, Kind: Tap, App: "note"},
			{At: 450, Kind: Tap, App: "note"},
			{At: 600, Kind: Key, App: "note"},
		},
	}
	a, err := Run(sc, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sc, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	inputTotalsConsistent(t, a)
	if a.InputEvents != 5 || a.InputDropped != 5 || a.InputDispatched != 0 {
		t.Fatalf("unfocused gestures not all dropped: %d/%d/%d",
			a.InputEvents, a.InputDispatched, a.InputDropped)
	}
	if a.InputDropped != b.InputDropped || a.InputDispatched != b.InputDispatched {
		t.Fatalf("drop accounting nondeterministic: %d/%d vs %d/%d",
			a.InputDispatched, a.InputDropped, b.InputDispatched, b.InputDropped)
	}
	if a.Stats.Fingerprint() != b.Stats.Fingerprint() {
		t.Fatal("input-bearing session is not seed-deterministic")
	}
	if !reflect.DeepEqual(a.InputApps, b.InputApps) {
		t.Fatalf("per-app input stats diverged:\n%v\n%v", a.InputApps, b.InputApps)
	}
}

// TestInputMidKillAndFinalTickNeverPanic covers the two hostile edges: a
// gesture racing its target's kill (applied the same timeline instant) and a
// gesture at At=1000, the final measured tick. Both must be dropped and
// counted — never a panic, never an unaccounted event.
func TestInputMidKillAndFinalTickNeverPanic(t *testing.T) {
	sc := &Scenario{
		Name: "kill-race",
		Apps: []App{{Name: "game", Workload: "frozenbubble.main"}},
		Timeline: []Event{
			{At: 0, Kind: Launch, App: "game"},
			{At: 200, Kind: Tap, App: "game"},
			{At: 500, Kind: Kill, App: "game"},
			{At: 500, Kind: Tap, App: "game"},    // races the kill
			{At: 600, Kind: Key, App: "game"},    // dead target
			{At: 1000, Kind: Swipe, App: "game"}, // final measured tick
		},
	}
	if err := sc.Validate(); err != nil {
		t.Fatalf("input events at dead apps must validate: %v", err)
	}
	r, err := Run(sc, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	inputTotalsConsistent(t, r)
	if r.Events != len(sc.Timeline) {
		t.Fatalf("applied %d events, want %d", r.Events, len(sc.Timeline))
	}
	// tap(2) + tap(2) + key(1) + swipe(5) = 10 samples; everything from
	// the kill onward (8 samples) must be dropped.
	if r.InputEvents != 10 {
		t.Fatalf("injected %d samples, want 10", r.InputEvents)
	}
	if r.InputDropped < 8 {
		t.Fatalf("only %d samples dropped, want >= 8 (kill race, dead target, final tick)",
			r.InputDropped)
	}
	r2, err := Run(sc, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if r.InputDropped != r2.InputDropped || r.Stats.Fingerprint() != r2.Stats.Fingerprint() {
		t.Fatal("kill-race session is not deterministic")
	}
}

// TestDispatchedInputChangesMeasuredBehavior: the point of driving input
// through the stack is that delivered gestures do real work. The same
// session with taps must attribute strictly more references to the target
// app than the tap-free control.
func TestDispatchedInputChangesMeasuredBehavior(t *testing.T) {
	base := &Scenario{
		Name: "control",
		Apps: []App{{Name: "game", Workload: "frozenbubble.main"}},
		Timeline: []Event{
			{At: 0, Kind: Launch, App: "game"},
			{At: 500, Kind: Idle},
		},
	}
	tapped := &Scenario{
		Name: "tapped",
		Apps: []App{{Name: "game", Workload: "frozenbubble.main"}},
		Timeline: []Event{
			{At: 0, Kind: Launch, App: "game"},
			{At: 250, Kind: Tap, App: "game"},
			{At: 350, Kind: Tap, App: "game"},
			{At: 450, Kind: Swipe, App: "game"},
			{At: 500, Kind: Idle},
		},
	}
	rb, err := Run(base, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	rt, err := Run(tapped, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if rt.InputDispatched == 0 {
		t.Fatalf("no tap reached the foreground game (dropped %d)", rt.InputDropped)
	}
	refs := func(r *Result) uint64 {
		var n uint64
		for name, c := range r.Stats.ByProcess() {
			if name == "game" {
				n += c
			}
		}
		return n
	}
	if refs(rt) <= refs(rb) {
		t.Fatalf("dispatched input did not move the app's profile: %d refs with taps, %d without",
			refs(rt), refs(rb))
	}
}

// TestGeneratorInputsKnob: the Inputs knob weaves tap/key/swipe events into
// a valid timeline, the knob value lands in the scenario name, and the
// session runs with consistent input accounting.
func TestGeneratorInputsKnob(t *testing.T) {
	cfg := GenConfig{Seed: 5, Apps: 3, Events: 12, Inputs: 10}
	s := Generate(cfg)
	if err := s.Validate(); err != nil {
		t.Fatalf("generated input session invalid: %v", err)
	}
	if s.Name != "gen-s5-a3-e12-p0-i10-f0" {
		t.Fatalf("name = %q", s.Name)
	}
	var gestures int
	for _, ev := range s.Timeline {
		switch ev.Kind {
		case Tap, Key, Swipe:
			gestures++
		}
	}
	if gestures != 10 {
		t.Fatalf("generated %d input gestures, want 10", gestures)
	}
	// Same config, same bytes: the generator stays a pure function.
	if !reflect.DeepEqual(s, Generate(cfg)) {
		t.Fatal("input-bearing generation is not deterministic")
	}
	r, err := Run(s, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	inputTotalsConsistent(t, r)
	if r.InputEvents == 0 {
		t.Fatal("generated gestures injected nothing")
	}
}
