// Seeded procedural scenario generation: the suite's answer to "as many
// scenarios as you can imagine". The bundled library is ten hand-written
// sessions; Generate turns scenario diversity into a sweep axis instead — a
// (seed, app count, event density, pressure, inputs, faults) tuple deterministically
// expands into a valid multi-app session, so a plan can cross N generated
// sessions with seeds and ablations exactly as it crosses bundled ones, and
// any interesting point of the space can be pinned down, exported to JSON
// with Encode, and committed as a regression scenario.

package scenario

import (
	"fmt"
	"sort"

	"agave/internal/apps"
	"agave/internal/sim"
)

// GenConfig parameterizes one generated scenario. The zero value of each
// knob selects a sensible default, so GenConfig{Seed: 7} alone is a valid
// request.
type GenConfig struct {
	// Seed drives every generation decision; equal configs generate
	// byte-identical scenarios (the generator is a pure function).
	Seed uint64
	// Apps is the session's app count. Every app is launched before the
	// first kill, so this is also the peak concurrently-live census —
	// MaxLiveApps of the generated scenario is exactly Apps. <= 0 selects
	// the 10-app default, the "scale the session dimension" bar.
	Apps int
	// Events is the timeline length (event density). Values below Apps+2
	// are raised to Apps+2: the timeline must at least launch every app
	// and still have room to exercise a lifecycle transition. <= 0 selects
	// four events per app.
	Events int
	// Pressure scales the external memory demand woven into the timeline:
	// 0 generates no Pressure events, 1 stays in onTrimMemory territory on
	// the default machine, higher values push free pages toward the
	// lowmemorykiller's minfree ladder. Negative values are treated as 0.
	Pressure int
	// Inputs is the number of input-gesture events (tap/key/swipe) woven
	// into the timeline on top of the Events lifecycle budget, each aimed
	// at a random roster app. Gestures aimed at whoever happens to be
	// focused are dispatched; the rest are dropped and counted — both
	// outcomes are part of the session's measured profile. <= 0 generates
	// no input events.
	Inputs int
	// Faults is the number of fault-injection events (faultBinder,
	// crashService, corruptParcel, killMediaserver) woven into the
	// timeline on top of the Events budget. Targeted faults aim at apps
	// the lifecycle script has live at that instant, so the generated
	// scenario always validates; a fault drawn where nothing is live
	// becomes a mediaserver kill. <= 0 generates no fault events.
	Faults int
}

// DefaultGenApps is the default generated-session scale: 10 concurrently
// live apps.
const DefaultGenApps = 10

// normalize resolves the config's defaults and floors.
func (cfg GenConfig) normalize() GenConfig {
	if cfg.Apps <= 0 {
		cfg.Apps = DefaultGenApps
	}
	if cfg.Events <= 0 {
		cfg.Events = 4 * cfg.Apps
	}
	if cfg.Events < cfg.Apps+2 {
		cfg.Events = cfg.Apps + 2
	}
	if cfg.Pressure < 0 {
		cfg.Pressure = 0
	}
	if cfg.Inputs < 0 {
		cfg.Inputs = 0
	}
	if cfg.Faults < 0 {
		cfg.Faults = 0
	}
	return cfg
}

// Name is the generated scenario's identifier: the full knob tuple, so a
// name alone reproduces the session ("gen-s7-a10-e40-p2-i12-f3").
func (cfg GenConfig) Name() string {
	cfg = cfg.normalize()
	return fmt.Sprintf("gen-s%d-a%d-e%d-p%d-i%d-f%d",
		cfg.Seed, cfg.Apps, cfg.Events, cfg.Pressure, cfg.Inputs, cfg.Faults)
}

// Generate deterministically expands the config into a valid scenario:
// every app (workload drawn from the Agave suite) is launched in the
// timeline's opening phase, then the remaining event budget is spent on
// legal lifecycle churn — switches, backgrounds, kill/relaunch cycles,
// idle gaps, and (when Pressure > 0) external memory demand — plus the
// requested input gestures and injected faults. The result
// always passes Validate, and its MaxLiveApps equals the requested app
// count; generation cannot fail.
func Generate(cfg GenConfig) *Scenario {
	cfg = cfg.normalize()
	rng := sim.NewRNG(cfg.Seed)
	workloads := apps.Names()

	s := &Scenario{
		Name: cfg.Name(),
		Description: fmt.Sprintf("generated session: %d apps, %d events, pressure %d, %d inputs, %d faults, seed %d",
			cfg.Apps, cfg.Events, cfg.Pressure, cfg.Inputs, cfg.Faults, cfg.Seed),
		Source: fmt.Sprintf("gen(seed=%d apps=%d events=%d pressure=%d inputs=%d faults=%d)",
			cfg.Seed, cfg.Apps, cfg.Events, cfg.Pressure, cfg.Inputs, cfg.Faults),
	}
	for i := 0; i < cfg.Apps; i++ {
		s.Apps = append(s.Apps, App{
			Name:     fmt.Sprintf("app%02d", i),
			Workload: workloads[rng.Intn(len(workloads))],
		})
	}

	// Event times: a sorted draw over the whole interval reads more like a
	// real session than an even grid. Equal adjacent times are legal (the
	// timeline only has to be nondecreasing).
	times := make([]Fraction, cfg.Events)
	for i := range times {
		times[i] = Fraction(rng.Intn(1001))
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })

	// Opening phase: launch everything. All apps are live before the first
	// churn event, which is what pins MaxLiveApps to the requested scale.
	live := make([]string, 0, cfg.Apps)
	dead := make([]string, 0, cfg.Apps)
	for i, a := range s.Apps {
		s.Timeline = append(s.Timeline, Event{At: times[i], Kind: Launch, App: a.Name})
		live = append(live, a.Name)
	}

	// pick removes and returns a random element of *from.
	pick := func(from *[]string) string {
		i := rng.Intn(len(*from))
		name := (*from)[i]
		*from = append((*from)[:i], (*from)[i+1:]...)
		return name
	}

	// Churn phase: spend the remaining budget on legal transitions. Weights
	// favor foreground hops — the notification-chasing pattern the paper's
	// multi-app argument rests on — with kills rare enough that most of the
	// roster stays live.
	for i := cfg.Apps; i < cfg.Events; i++ {
		at := times[i]
		roll := rng.Intn(100)
		switch {
		case cfg.Pressure > 0 && roll < 15:
			// External demand scaled by the pressure knob; occasional
			// deflation so long sessions breathe.
			pages := int64(rng.Range(8_000, 20_000) * cfg.Pressure)
			if rng.Bool(0.2) {
				pages = -pages / 2
			}
			s.Timeline = append(s.Timeline, Event{At: at, Kind: Pressure, Pages: pages})
		case roll < 25:
			s.Timeline = append(s.Timeline, Event{At: at, Kind: Idle})
		case roll < 40 && len(dead) > 0:
			// Relaunch a killed app: zygote fork and binder re-registration
			// under churn. Live count returns toward the peak, never past it.
			name := pick(&dead)
			s.Timeline = append(s.Timeline, Event{At: at, Kind: Launch, App: name})
			live = append(live, name)
		case roll < 50 && len(live) > 1:
			// Kill one live app; keep at least one alive so the session
			// never degenerates into pure idle.
			name := pick(&live)
			s.Timeline = append(s.Timeline, Event{At: at, Kind: Kill, App: name})
			dead = append(dead, name)
		case roll < 70 && len(live) > 0:
			s.Timeline = append(s.Timeline, Event{At: at, Kind: Background, App: live[rng.Intn(len(live))]})
		case len(live) > 0:
			s.Timeline = append(s.Timeline, Event{At: at, Kind: SwitchTo, App: live[rng.Intn(len(live))]})
		default:
			s.Timeline = append(s.Timeline, Event{At: at, Kind: Idle})
		}
	}

	// Input phase: weave cfg.Inputs gestures over the whole interval. Most
	// aim at whoever the script has in the foreground at that moment (the
	// user touches the screen they are looking at), the rest at a random
	// roster app — stale taps chasing backgrounded apps are part of any
	// real session, and the dispatcher's drop accounting is itself a
	// measured outcome. The stable merge keeps the lifecycle script's
	// relative order at equal times.
	if cfg.Inputs > 0 {
		background := make(map[string]bool, len(s.Apps))
		for _, a := range s.Apps {
			if w, err := apps.ByName(a.Workload); err == nil {
				background[a.Name] = w.Background
			}
		}
		// focusTrace replays the lifecycle script's foreground handoffs:
		// launches and switches of UI workloads take the focus, killing or
		// backgrounding the holder clears it.
		type focusAt struct {
			at  Fraction
			app string
		}
		var focusTrace []focusAt
		holder := ""
		for _, ev := range s.Timeline {
			switch ev.Kind {
			case Launch, SwitchTo:
				if !background[ev.App] {
					holder = ev.App
					focusTrace = append(focusTrace, focusAt{ev.At, holder})
				} else if ev.Kind == SwitchTo && holder != "" {
					// The engine pauses the current foreground app on any
					// switch, but a background workload never takes the
					// focus slot — nobody holds it afterwards.
					holder = ""
					focusTrace = append(focusTrace, focusAt{ev.At, ""})
				}
			case Kill, Background:
				if ev.App == holder {
					holder = ""
					focusTrace = append(focusTrace, focusAt{ev.At, ""})
				}
			}
		}
		focusedAt := func(at Fraction) string {
			f := ""
			for _, fc := range focusTrace {
				if fc.at > at {
					break
				}
				f = fc.app
			}
			return f
		}
		for i := 0; i < cfg.Inputs; i++ {
			at := Fraction(rng.Intn(1001))
			target := s.Apps[rng.Intn(len(s.Apps))].Name
			if f := focusedAt(at); f != "" && !rng.Bool(0.3) {
				target = f
			}
			kind := Tap
			switch roll := rng.Intn(100); {
			case roll < 55:
				kind = Tap
			case roll < 80:
				kind = Key
			default:
				kind = Swipe
			}
			s.Timeline = append(s.Timeline, Event{At: at, Kind: kind, App: target})
		}
		sort.SliceStable(s.Timeline, func(i, j int) bool {
			return s.Timeline[i].At < s.Timeline[j].At
		})
	}

	// Fault phase: weave cfg.Faults injection events over the interval.
	// Targeted faults must aim at an app the lifecycle script has live at
	// that instant (the validator's rule), so targets are drawn from the
	// script's live spans; a draw landing where nothing is live falls back
	// to killMediaserver, which names no app and is always legal. The
	// stable merge places a fault after every lifecycle event at the same
	// time, so spans use a half-open [launch, kill) interval: a fault at
	// its target's launch instant lands after the launch (legal), one at
	// the kill instant would land after the kill (excluded).
	if cfg.Faults > 0 {
		type span struct {
			app      string
			from, to Fraction
		}
		var spans []span
		launchedAt := make(map[string]Fraction, len(s.Apps))
		for _, ev := range s.Timeline {
			switch ev.Kind {
			case Launch:
				launchedAt[ev.App] = ev.At
			case Kill:
				spans = append(spans, span{ev.App, launchedAt[ev.App], ev.At})
				delete(launchedAt, ev.App)
			}
		}
		// Apps still live at the end stay targetable through At=1000;
		// close their spans in roster order for determinism.
		for _, a := range s.Apps {
			if from, ok := launchedAt[a.Name]; ok {
				spans = append(spans, span{a.Name, from, 1001})
			}
		}
		for i := 0; i < cfg.Faults; i++ {
			at := Fraction(rng.Intn(1001))
			var candidates []string
			for _, sp := range spans {
				if sp.from <= at && at < sp.to {
					candidates = append(candidates, sp.app)
				}
			}
			kind, target := KillMediaserver, ""
			if roll := rng.Intn(100); roll >= 15 && len(candidates) > 0 {
				target = candidates[rng.Intn(len(candidates))]
				switch {
				case roll < 50:
					kind = FaultBinder
				case roll < 80:
					kind = CorruptParcel
				default:
					kind = CrashService
				}
			}
			s.Timeline = append(s.Timeline, Event{At: at, Kind: kind, App: target})
		}
		sort.SliceStable(s.Timeline, func(i, j int) bool {
			return s.Timeline[i].At < s.Timeline[j].At
		})
	}
	return s
}
