// Package media models the Gingerbread media stack: the mediaserver process
// hosting Stagefright decoders and AudioFlinger, Binder-exposed player
// sessions, and AudioTrack delivery threads. In the paper this stack is what
// makes mediaserver the dominant process for gallery.mp4.view (81 % of
// instruction references) and puts AudioTrackThread among the busiest
// threads suite-wide (Table I, 5.9 %).
package media

import (
	"fmt"

	"agave/internal/binder"
	"agave/internal/gfx"
	"agave/internal/kernel"
	"agave/internal/loader"
	"agave/internal/mem"
	"agave/internal/sim"
)

// Binder operation codes for the "media.player" service.
const (
	opOpenMP3 int32 = iota + 1
	opOpenMP4
	opStart
	opStop
	opSeek
)

// Audio timing.
const (
	mp3FrameSamples = 1152
	sampleRateHz    = 44100
	mp3FramePeriod  = sim.Ticks(uint64(mp3FrameSamples) * uint64(sim.Second) / sampleRateHz)
	mixPeriod       = 20 * sim.Millisecond
	trackBufSize    = 256 << 10
	bitstreamSize   = 512 << 10
	hwBufSize       = 64 << 10
)

// Video timing: a 30 fps full-screen clip.
const (
	videoFPS         = 30
	videoFramePeriod = sim.Second / videoFPS
)

// streamIDBase offsets StreamTrack session ids so they never collide with
// player session ids; sessions at or above it die with the server process
// rather than being adopted across a restart.
const streamIDBase = 1000

// Server is the mediaserver process model.
type Server struct {
	Proc *kernel.Process

	stagefright *mem.VMA
	libaudio    *mem.VMA
	libmedia    *mem.VMA
	hwBuf       *mem.VMA // audio DMA buffer (/dev/eac on the goldfish board)

	driver   *binder.Driver
	comp     *gfx.Compositor
	sessions []*session
	mixKick  *kernel.WaitQueue

	// nextID and nextStreamID allocate session ids monotonically, so ids
	// stay unique even after AdoptSessions rebuilds a sparse table (a
	// length-based id would collide with an adopted session).
	nextID       int32
	nextStreamID int32

	// FramesDecoded counts video frames decoded (for tests).
	FramesDecoded uint64
	// MP3FramesDecoded counts audio frames decoded.
	MP3FramesDecoded uint64
	// Mixes counts mixer passes that had at least one active track.
	Mixes uint64
	// Seeks counts seek transactions served (for tests).
	Seeks uint64
}

type session struct {
	id     int32
	kind   int32 // opOpenMP3 / opOpenMP4
	owner  *kernel.Process
	active bool

	bitstream *mem.VMA // compressed input, refilled from storage
	track     *mem.VMA // ashmem PCM track buffer shared with AudioFlinger
	refFrames *mem.VMA // video reference frames (anonymous)
	surface   *gfx.Surface

	start *kernel.WaitQueue
}

// NewServer boots the media stack inside proc ("mediaserver"), registers the
// "media.player" Binder service, and starts the AudioFlinger mixer thread.
func NewServer(proc *kernel.Process, lm *loader.LinkMap, driver *binder.Driver, comp *gfx.Compositor) *Server {
	k := proc.Kernel()
	s := &Server{
		Proc:        proc,
		stagefright: lm.VMA("libstagefright.so"),
		libaudio:    lm.VMA("libaudioflinger.so"),
		libmedia:    lm.VMA("libmedia.so"),
		driver:      driver,
		comp:        comp,
		mixKick:     k.NewWaitQueue("audioflinger.mix"),
	}
	s.hwBuf = proc.AS.MapAnywhere(mem.MmapBase, hwBufSize, "/dev/eac",
		mem.PermRead|mem.PermWrite, mem.ClassDevice)
	driver.Register(proc, "media.player", 2, s.handle)
	k.SpawnThread(proc, "AudioOut_1", "AudioOut", s.mixerLoop)
	return s
}

// handle serves media.player transactions on mediaserver binder threads.
func (s *Server) handle(ex *kernel.Exec, txn *binder.Transaction) {
	txn.Reply = binder.NewParcel()
	switch txn.Code {
	case opOpenMP3, opOpenMP4:
		sess := s.newSession(ex, txn.Code, txn.Sender().Proc)
		txn.Reply.WriteInt32(sess.id)
	case opStart:
		id, _ := txn.Data.ReadInt32()
		if sess := s.find(id); sess != nil {
			sess.active = true
			sess.start.WakeAll()
			txn.Reply.WriteInt32(0)
		} else {
			txn.Reply.WriteInt32(-1)
		}
	case opStop:
		id, _ := txn.Data.ReadInt32()
		if sess := s.find(id); sess != nil {
			sess.active = false
			txn.Reply.WriteInt32(0)
		} else {
			txn.Reply.WriteInt32(-1)
		}
	case opSeek:
		id, _ := txn.Data.ReadInt32()
		if sess := s.find(id); sess != nil {
			s.seekSession(ex, sess)
			txn.Reply.WriteInt32(0)
		} else {
			txn.Reply.WriteInt32(-1)
		}
	default:
		txn.Reply.WriteInt32(-22)
	}
}

func (s *Server) find(id int32) *session {
	for _, sess := range s.sessions {
		if sess.id == id {
			return sess
		}
	}
	return nil
}

func (s *Server) newSession(ex *kernel.Exec, kind int32, owner *kernel.Process) *session {
	s.nextID++
	return s.addSession(s.nextID, kind, owner)
}

// addSession builds a session under an explicit id: buffers mapped in the
// mediaserver process, decode and delivery threads spawned parked on the
// start queue. newSession allocates fresh ids; AdoptSessions re-creates
// sessions under their old ids after a mediaserver restart.
func (s *Server) addSession(id int32, kind int32, owner *kernel.Process) *session {
	k := s.Proc.Kernel()
	sess := &session{
		id:    id,
		kind:  kind,
		owner: owner,
		start: k.NewWaitQueue("media.start"),
	}
	sess.bitstream = s.Proc.Layout.MapAnon(s.Proc.AS, bitstreamSize)
	sess.track = s.Proc.AS.MapAnywhere(mem.MmapBase, trackBufSize,
		"ashmem/audio-track", mem.PermRead|mem.PermWrite, mem.ClassShared)
	sess.track.Shared = true
	s.sessions = append(s.sessions, sess)
	switch kind {
	case opOpenMP3:
		k.SpawnThread(s.Proc, "TimedEventQueue", "TimedEventQueue", func(ex *kernel.Exec) {
			s.mp3DecodeLoop(ex, sess)
		})
		k.SpawnThread(s.Proc, "AudioTrackThread", "AudioTrackThread", func(ex *kernel.Exec) {
			s.audioTrackLoop(ex, sess)
		})
	case opOpenMP4:
		sess.refFrames = s.Proc.Layout.MapAnon(s.Proc.AS, 4<<20)
		k.SpawnThread(s.Proc, "TimedEventQueue", "TimedEventQueue", func(ex *kernel.Exec) {
			s.videoDecodeLoop(ex, sess)
		})
		// MP4 clips carry an audio track too.
		k.SpawnThread(s.Proc, "AudioTrackThread", "AudioTrackThread", func(ex *kernel.Exec) {
			s.audioTrackLoop(ex, sess)
		})
	}
	return sess
}

// seekSession charges a Stagefright seek on the mediaserver binder thread:
// walk the container's sample/index tables to the target, then resync the
// bitstream from storage at the new offset. The decode loops keep running —
// a seek repositions the stream, it does not pause it.
func (s *Server) seekSession(ex *kernel.Exec, sess *session) {
	// Index walk: sample-table binary search in the demuxer.
	ex.Do(kernel.Work{Fetch: 8, Reads: 1, Data: sess.bitstream}, 4000)
	ex.StackWork(6_000)
	// Refill from the seek target (video streams pull a bigger burst to
	// reach the next sync frame).
	refill := uint64(64 << 10)
	if sess.kind == opOpenMP4 {
		refill = 192 << 10
	}
	ex.BlockRead(sess.bitstream, refill)
	s.Seeks++
}

// AttachSurface binds a video session to its output surface (the client
// passes the surface it obtained from SurfaceFlinger).
func (s *Server) AttachSurface(id int32, surf *gfx.Surface) {
	if sess := s.find(id); sess != nil {
		sess.surface = surf
	}
}

// mp3DecodeLoop is a Stagefright audio decoder: refill the bitstream from
// storage, then per 26 ms frame run the synthesis filterbank and emit PCM
// into the shared track buffer.
func (s *Server) mp3DecodeLoop(ex *kernel.Exec, sess *session) {
	ex.PushCode(s.stagefright)
	framesSinceRefill := 0
	for {
		for !sess.active {
			ex.Wait(sess.start)
		}
		if framesSinceRefill == 0 {
			// ~128 kbit/s: refill ~64 KiB every ~150 frames.
			ex.BlockRead(sess.bitstream, 64<<10)
		}
		framesSinceRefill = (framesSinceRefill + 1) % 150
		s.decodeMP3Frame(ex, sess)
		s.MP3FramesDecoded++
		ex.SleepFor(mp3FramePeriod)
	}
}

// decodeMP3Frame charges one frame of Huffman decode + IMDCT + synthesis
// (~500 instructions per output sample, the going rate for fixed-point MP3
// on ARMv7 without NEON).
func (s *Server) decodeMP3Frame(ex *kernel.Exec, sess *session) {
	// Bitstream parse: ~800 words of compressed input.
	ex.Do(kernel.Work{Fetch: 14, Reads: 1, Data: sess.bitstream}, 800)
	// Filterbank/IMDCT DSP on stack temporaries.
	ex.StackWork(300_000)
	// PCM out: 1152 samples × 2 ch × 2 B = one write per output word.
	ex.Do(kernel.Work{Fetch: 2, Writes: 1, Data: sess.track}, mp3FrameSamples*2)
	// Exercise the real byte path for a slice of the frame.
	b := sess.track.Slice(0, 256)
	for i := range b {
		b[i] = byte(i) ^ b[i]
	}
}

// videoDecodeLoop is a Stagefright AVC-class video decoder: per frame,
// entropy decode from the bitstream, motion compensation reading reference
// frames, and reconstruction written into the video gralloc surface.
func (s *Server) videoDecodeLoop(ex *kernel.Exec, sess *session) {
	ex.PushCode(s.stagefright)
	frames := 0
	for {
		for !sess.active {
			ex.Wait(sess.start)
		}
		if frames%30 == 0 {
			// ~2 Mbit/s stream: refill ~256 KiB per second of video.
			ex.BlockRead(sess.bitstream, 256<<10)
		}
		frames++
		s.decodeVideoFrame(ex, sess)
		s.FramesDecoded++
		if sess.surface != nil && s.comp != nil {
			sess.surface.Post(ex, s.comp)
		}
		ex.SleepFor(videoFramePeriod)
	}
}

func (s *Server) decodeVideoFrame(ex *kernel.Exec, sess *session) {
	w, h := gfx.ScreenW, gfx.ScreenH
	if sess.surface != nil {
		w, h = sess.surface.W, sess.surface.H
	}
	px := uint64(w) * uint64(h)
	// Entropy decode: ~1/16 of the pixels in compressed words.
	ex.Do(kernel.Work{Fetch: 16, Reads: 1, Data: sess.bitstream}, px/16)
	// Motion compensation: read reference frames (interpolation taps).
	ex.Do(kernel.Work{Fetch: 5, Reads: 2, Data: sess.refFrames}, px)
	// IDCT + reconstruction into the output surface.
	out := sess.refFrames
	if sess.surface != nil {
		out = sess.surface.Buf
	}
	ex.Do(kernel.Work{Fetch: 4, Writes: 1, Data: out}, px)
	// In-loop deblocking over reconstructed rows.
	ex.Do(kernel.Work{Fetch: 3, Reads: 1, Writes: 1, Data: out}, px/2)
	// Save reconstruction as the next reference.
	ex.Do(kernel.Work{Fetch: 1, Writes: 1, Data: sess.refFrames}, px/2)
}

// audioTrackLoop is the AudioTrack delivery thread: every mixer period it
// pulls PCM from the track buffer, applies volume/resampling, and hands the
// buffer to AudioFlinger (wakes the mixer).
func (s *Server) audioTrackLoop(ex *kernel.Exec, sess *session) {
	ex.PushCode(s.libmedia)
	words := uint64(sampleRateHz) * 2 * 2 / 4 * uint64(mixPeriod) / uint64(sim.Second)
	for {
		for !sess.active {
			ex.Wait(sess.start)
		}
		// Pull, then the resampler/volume chain (cubic interpolation
		// 44.1→48 kHz plus 16→32-bit staging: ~25 ops per sample).
		ex.Do(kernel.Work{Fetch: 4, Reads: 1, Data: sess.track}, words)
		ex.Do(kernel.Work{Fetch: 22, Reads: 1, Data: sess.track}, words*3)
		ex.Do(kernel.Work{Fetch: 6, Writes: 1, Data: sess.track}, words)
		ex.StackWork(10_000)
		s.mixKick.WakeOne()
		ex.SleepFor(mixPeriod)
	}
}

// mixerLoop is AudioFlinger's output thread: mix all active tracks into the
// hardware buffer.
func (s *Server) mixerLoop(ex *kernel.Exec) {
	ex.PushCode(s.libaudio)
	words := uint64(sampleRateHz) * 2 * 2 / 4 * uint64(mixPeriod) / uint64(sim.Second)
	for {
		active := 0
		for _, sess := range s.sessions {
			if sess.active {
				active++
				ex.Do(kernel.Work{Fetch: 2, Reads: 1, Data: sess.track}, words)
			}
		}
		if active > 0 {
			ex.Do(kernel.Work{Fetch: 1, Writes: 1, Data: s.hwBuf}, words)
			ex.Syscall(400, 80) // write to the audio device
			s.Mixes++
			ex.SleepFor(mixPeriod)
			continue
		}
		ex.Wait(s.mixKick)
	}
}

// Player is the client-side handle on a media session.
type Player struct {
	srv *Server
	id  int32
}

// Open creates a player session of the given kind ("mp3" or "mp4") via a
// Binder call from the client thread.
func Open(ex *kernel.Exec, d *binder.Driver, kind string) (*Player, error) {
	op := opOpenMP3
	if kind == "mp4" {
		op = opOpenMP4
	} else if kind != "mp3" {
		return nil, fmt.Errorf("media: unknown kind %q", kind)
	}
	svc, ok := d.Lookup("media.player")
	if !ok {
		return nil, fmt.Errorf("media: media.player not registered")
	}
	srv, ok := serverOf(svc)
	if !ok {
		return nil, fmt.Errorf("media: media.player is not a media server")
	}
	data := binder.NewParcel()
	data.WriteString("/sdcard/clip." + kind)
	reply, err := d.Call(ex, "media.player", op, data)
	if err != nil {
		return nil, err
	}
	id, err := reply.ReadInt32()
	if err != nil {
		return nil, err
	}
	return &Player{srv: srv, id: id}, nil
}

func serverOf(svc *binder.Service) (*Server, bool) {
	s, ok := svc.Owner.(*Server)
	return s, ok
}

// RegisterLookup records the service→server mapping on the service itself;
// NewServer callers do not need this unless they use Open (the high-level
// client API). The mapping lives on the per-machine service — not in a
// package-global table — so concurrent suite runs share no state and a
// finished machine is garbage-collectable.
func RegisterLookup(d *binder.Driver, s *Server) {
	if svc, ok := d.Lookup("media.player"); ok {
		svc.Owner = s
	}
}

// AttachSurface routes the client's surface to the server session.
func (p *Player) AttachSurface(surf *gfx.Surface) { p.srv.AttachSurface(p.id, surf) }

// Start begins playback (Binder call).
func (p *Player) Start(ex *kernel.Exec, d *binder.Driver) error {
	data := binder.NewParcel()
	data.WriteInt32(p.id)
	reply, err := d.Call(ex, "media.player", opStart, data)
	if err != nil {
		return err
	}
	if rc, _ := reply.ReadInt32(); rc != 0 {
		return fmt.Errorf("media: start failed (%d)", rc)
	}
	return nil
}

// Stop halts playback (Binder call).
func (p *Player) Stop(ex *kernel.Exec, d *binder.Driver) error {
	data := binder.NewParcel()
	data.WriteInt32(p.id)
	reply, err := d.Call(ex, "media.player", opStop, data)
	if err != nil {
		return err
	}
	if rc, _ := reply.ReadInt32(); rc != 0 {
		return fmt.Errorf("media: stop failed (%d)", rc)
	}
	return nil
}

// Seek repositions playback (Binder call): the mediaserver side walks the
// demux index and resyncs the bitstream from storage. This is the media
// half of an input-driven scrub — the UI's seekbar drag lands here.
func (p *Player) Seek(ex *kernel.Exec, d *binder.Driver) error {
	data := binder.NewParcel()
	data.WriteInt32(p.id)
	reply, err := d.Call(ex, "media.player", opSeek, data)
	if err != nil {
		return err
	}
	if rc, _ := reply.ReadInt32(); rc != 0 {
		return fmt.Errorf("media: seek failed (%d)", rc)
	}
	return nil
}

// StopOwned halts every session whose client is owner — the death
// notification path: when a client process dies, MediaPlayerService reaps
// its players so decoders and the mixer stop burning cycles on a stream
// nobody is listening to. Decode and delivery threads park on the session's
// start queue; a relaunched client opens fresh sessions. It reports how many
// sessions were stopped.
func (s *Server) StopOwned(owner *kernel.Process) int {
	n := 0
	for _, sess := range s.sessions {
		if sess.owner == owner && sess.active {
			sess.active = false
			n++
		}
	}
	return n
}

// AdoptSessions rebuilds the replacement server's session table after a
// mediaserver crash: every player session of the dead server is re-created
// under its old id — same kind, owner, surface, and play state, with fresh
// decoder threads and buffers in the new process — so client-held session
// handles keep working across the restart. Client-side stream tracks are
// not adopted: their mixer feed died with the old process, the way
// SoundPool effects cut out on a real device. Cumulative decode counters
// carry over so a run's totals span the crash. It reports how many
// in-flight (active) sessions were relaunched.
func (s *Server) AdoptSessions(old *Server) int {
	s.FramesDecoded = old.FramesDecoded
	s.MP3FramesDecoded = old.MP3FramesDecoded
	s.Mixes = old.Mixes
	s.Seeks = old.Seeks
	s.nextID = old.nextID
	s.nextStreamID = old.nextStreamID
	n := 0
	for _, sess := range old.sessions {
		if sess.id > streamIDBase {
			continue
		}
		ns := s.addSession(sess.id, sess.kind, sess.owner)
		ns.surface = sess.surface
		if sess.active {
			// The freshly spawned decode threads have not checked the
			// start gate yet; setting active before they first run is
			// enough for them to proceed.
			ns.active = true
			n++
		}
	}
	return n
}

// StreamTrack spawns a client-side "AudioTrackThread" in owner that
// continuously writes generated PCM into a private track shared with
// AudioFlinger — the SoundPool/AudioTrack path games use for sound effects.
func (s *Server) StreamTrack(owner *kernel.Process) {
	k := owner.Kernel()
	s.nextStreamID++
	sess := &session{
		id:     streamIDBase + s.nextStreamID,
		kind:   opOpenMP3,
		owner:  owner,
		active: true,
		start:  k.NewWaitQueue("media.stream"),
	}
	sess.track = s.Proc.AS.MapAnywhere(mem.MmapBase, trackBufSize,
		"ashmem/audio-track", mem.PermRead|mem.PermWrite, mem.ClassShared)
	sess.track.Shared = true
	clientTrack := owner.AS.MapShared(mem.MmapBase, sess.track, mem.PermRead|mem.PermWrite)
	s.sessions = append(s.sessions, sess)
	words := uint64(sampleRateHz) * 2 * 2 / 4 * uint64(mixPeriod) / uint64(sim.Second)
	k.SpawnThread(owner, "AudioTrackThread", "AudioTrackThread", func(ex *kernel.Exec) {
		lib := owner.AS.FindByName("libmedia.so")
		if lib == nil {
			lib = owner.Layout.Kernel
		}
		ex.PushCode(lib)
		for {
			// Generate/mix one period of PCM (SoundPool decode +
			// per-effect gain), then push into the shared track.
			ex.StackWork(12_000)
			ex.Do(kernel.Work{Fetch: 16, Reads: 1, Data: clientTrack}, words*2)
			ex.Do(kernel.Work{Fetch: 4, Writes: 1, Data: clientTrack}, words)
			s.mixKick.WakeOne()
			ex.SleepFor(mixPeriod)
		}
	})
}
