package media

import (
	"testing"

	"agave/internal/binder"
	"agave/internal/gfx"
	"agave/internal/kernel"
	"agave/internal/loader"
	"agave/internal/sim"
	"agave/internal/stats"
)

func setup(t *testing.T) (*kernel.Kernel, *binder.Driver, *Server, *kernel.Process) {
	t.Helper()
	k := kernel.New(kernel.Config{Quantum: 100 * sim.Microsecond, Seed: 21})
	t.Cleanup(k.Shutdown)
	d := binder.NewDriver(k)
	ss := k.NewProcess("system_server", 1<<20, 1<<20)
	ssLM := loader.Load(ss.AS, ss.Layout, []string{"libskia.so", "libsurfaceflinger.so"})
	comp := gfx.NewCompositor(ss, ssLM)
	ms := k.NewProcess("mediaserver", 1<<20, 1<<20)
	msLM := loader.Load(ms.AS, ms.Layout, loader.MediaServerSet())
	srv := NewServer(ms, msLM, d, comp)
	RegisterLookup(d, srv)
	client := k.NewProcess("benchmark", 1<<20, 1<<20)
	return k, d, srv, client
}

func TestOpenStartStopMP3(t *testing.T) {
	k, d, srv, client := setup(t)
	k.SpawnThread(client, "main", "main", func(ex *kernel.Exec) {
		ex.PushCode(client.Layout.Text)
		p, err := Open(ex, d, "mp3")
		if err != nil {
			t.Error(err)
			return
		}
		if err := p.Start(ex, d); err != nil {
			t.Error(err)
		}
		ex.SleepFor(200 * sim.Millisecond)
		if err := p.Stop(ex, d); err != nil {
			t.Error(err)
		}
	})
	k.Run(500 * sim.Millisecond)
	if srv.MP3FramesDecoded == 0 {
		t.Fatal("no MP3 frames decoded")
	}
	if srv.Mixes == 0 {
		t.Fatal("mixer never ran")
	}
	// Decode stops after Stop: frame count must plateau.
	n := srv.MP3FramesDecoded
	k.Run(700 * sim.Millisecond)
	if srv.MP3FramesDecoded > n+2 {
		t.Fatalf("decode continued after Stop: %d -> %d", n, srv.MP3FramesDecoded)
	}
}

func TestMP3AttributionRegions(t *testing.T) {
	k, d, _, client := setup(t)
	k.SpawnThread(client, "main", "main", func(ex *kernel.Exec) {
		ex.PushCode(client.Layout.Text)
		p, _ := Open(ex, d, "mp3")
		_ = p.Start(ex, d)
		ex.SleepFor(300 * sim.Millisecond)
	})
	k.Run(400 * sim.Millisecond)
	ifetch := k.Stats.ByRegion(stats.IFetch)
	if ifetch["libstagefright.so"] == 0 {
		t.Fatal("decoder fetched nothing from libstagefright.so")
	}
	data := k.Stats.ByRegion(stats.DataKinds...)
	if data["ashmem/audio-track"] == 0 {
		t.Fatal("no PCM traffic in the shared track buffer")
	}
	if data["/dev/eac"] == 0 {
		t.Fatal("mixer never wrote the audio device buffer")
	}
	byThread := k.Stats.ByThread()
	for _, name := range []string{"TimedEventQueue", "AudioTrackThread", "AudioOut"} {
		if byThread[name] == 0 {
			t.Errorf("thread group %q earned no references", name)
		}
	}
}

func TestMP4DecodesIntoSurface(t *testing.T) {
	k, d, srv, client := setup(t)
	k.SpawnThread(client, "main", "main", func(ex *kernel.Exec) {
		ex.PushCode(client.Layout.Text)
		p, err := Open(ex, d, "mp4")
		if err != nil {
			t.Error(err)
			return
		}
		_ = p.Start(ex, d)
		ex.SleepFor(300 * sim.Millisecond)
	})
	k.Run(400 * sim.Millisecond)
	if srv.FramesDecoded == 0 {
		t.Fatal("no video frames decoded")
	}
	// mediaserver must dominate this machine's references (the paper's
	// gallery.mp4.view observation).
	bp := stats.NewBreakdown(k.Stats.ByProcess())
	if bp.Rows[0].Name != "mediaserver" {
		t.Fatalf("top process = %s, want mediaserver", bp.Rows[0].Name)
	}
}

func TestOpenUnknownKind(t *testing.T) {
	k, d, _, client := setup(t)
	ran := false
	k.SpawnThread(client, "main", "main", func(ex *kernel.Exec) {
		ex.PushCode(client.Layout.Text)
		if _, err := Open(ex, d, "ogg"); err == nil {
			t.Error("Open accepted unknown kind")
		}
		ran = true
	})
	k.Run(10 * sim.Millisecond)
	if !ran {
		t.Fatal("client never ran")
	}
}

func TestStopUnknownSession(t *testing.T) {
	k, d, srv, client := setup(t)
	ran := false
	k.SpawnThread(client, "main", "main", func(ex *kernel.Exec) {
		ex.PushCode(client.Layout.Text)
		p := &Player{srv: srv, id: 999}
		if err := p.Stop(ex, d); err == nil {
			t.Error("Stop of unknown session succeeded")
		}
		ran = true
	})
	k.Run(10 * sim.Millisecond)
	if !ran {
		t.Fatal("client never ran")
	}
}

func TestStreamTrackRunsInClient(t *testing.T) {
	k, _, srv, client := setup(t)
	srv.StreamTrack(client)
	k.Run(200 * sim.Millisecond)
	byThread := k.Stats.ByThread()
	if byThread["AudioTrackThread"] == 0 {
		t.Fatal("client AudioTrackThread earned nothing")
	}
	byProc := k.Stats.ByProcess()
	if byProc["benchmark"] == 0 {
		t.Fatal("stream work not attributed to the client process")
	}
}

func TestDiskRefillsDriveAta(t *testing.T) {
	k, d, _, client := setup(t)
	k.SpawnThread(client, "main", "main", func(ex *kernel.Exec) {
		ex.PushCode(client.Layout.Text)
		p, _ := Open(ex, d, "mp3")
		_ = p.Start(ex, d)
		ex.SleepFor(200 * sim.Millisecond)
	})
	k.Run(300 * sim.Millisecond)
	if k.Disk.BytesRead == 0 {
		t.Fatal("decoder never read from storage")
	}
	if k.Stats.ByProcess()["ata_sff/0"] == 0 {
		t.Fatal("ata_sff/0 earned no references")
	}
}
