package core

import (
	"testing"

	"agave/internal/mem"
	"agave/internal/sim"
	"agave/internal/stats"
)

// quickCfg is a shortened config for unit tests.
func quickCfg() Config {
	cfg := DefaultConfig()
	cfg.Duration = 400 * sim.Millisecond
	cfg.Warmup = 200 * sim.Millisecond
	return cfg
}

func TestSuiteNames(t *testing.T) {
	names := SuiteNames()
	if len(names) != 25 {
		t.Fatalf("suite has %d benchmarks, want 19+6", len(names))
	}
	if !IsSPEC("401.bzip2") || IsSPEC("aard.main") {
		t.Fatal("IsSPEC misclassifies")
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("nope", quickCfg()); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestRunAgaveCollectsEverything(t *testing.T) {
	r, err := Run("frozenbubble.main", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if r.IsSPEC {
		t.Fatal("agave run marked SPEC")
	}
	if r.Stats.Total() == 0 {
		t.Fatal("no references collected")
	}
	if r.Processes < 18 || r.Threads < 32 {
		t.Fatalf("census too small: %d procs %d threads", r.Processes, r.Threads)
	}
	if r.CodeRegions < 42 || r.CodeRegions > 60 {
		t.Fatalf("code regions = %d, paper band 42-55", r.CodeRegions)
	}
	if r.DataRegions < 32 || r.DataRegions > 110 {
		t.Fatalf("data regions = %d, paper band 32-104", r.DataRegions)
	}
}

func TestRunSPECCollects(t *testing.T) {
	r, err := Run("462.libquantum", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !r.IsSPEC {
		t.Fatal("SPEC run not marked")
	}
	if r.Checksum == 0 {
		t.Fatal("SPEC checksum zero")
	}
	if r.CodeRegions > 4 {
		t.Fatalf("SPEC code regions = %d, want tiny", r.CodeRegions)
	}
}

func TestWarmupExcludedFromMeasurement(t *testing.T) {
	// With a long warmup and tiny duration, boot transients (zygote
	// preload, launcher first draw) must not appear: totals should be
	// roughly proportional to duration.
	cfg := quickCfg()
	cfg.Duration = 100 * sim.Millisecond
	r1, err := Run("countdown.main", cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Duration = 300 * sim.Millisecond
	r3, err := Run("countdown.main", cfg)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(r3.Stats.Total()) / float64(r1.Stats.Total())
	if ratio < 1.5 || ratio > 6 {
		t.Fatalf("3x duration changed totals by %.2fx — warmup leaking?", ratio)
	}
}

func TestDeterministicRuns(t *testing.T) {
	a, err := Run("jetboy.main", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("jetboy.main", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats.Total() != b.Stats.Total() {
		t.Fatalf("same-seed runs diverged: %d vs %d", a.Stats.Total(), b.Stats.Total())
	}
	cfg := quickCfg()
	cfg.Seed = 99
	c, err := Run("jetboy.main", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Stats.Total() == a.Stats.Total() {
		t.Log("different seeds gave identical totals (possible but unlikely)")
	}
}

func TestDisableJIT(t *testing.T) {
	cfg := quickCfg()
	cfg.DisableJIT = true
	r, err := Run("frozenbubble.main", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Stats.ByRegionForProcess("benchmark", stats.IFetch)[mem.RegionJITCache]; got != 0 {
		t.Fatalf("JIT disabled but app fetched %d from the code cache", got)
	}
}

func TestRunSuiteSubset(t *testing.T) {
	rs, err := RunSuite(quickCfg(), "countdown.main", "999.specrand")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 || rs[0].Benchmark != "countdown.main" || !rs[1].IsSPEC {
		t.Fatalf("subset results wrong: %+v", rs)
	}
}

// --- calibration: the paper's headline shapes must hold ---

func TestShapeAndroidVsSPECInstructionRegions(t *testing.T) {
	and, err := Run("frozenbubble.main", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	spec, err := Run("401.bzip2", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Android: mspace + libdvm.so carry the majority of instruction
	// reads (Fig 1); the app binary is negligible.
	bi := stats.NewBreakdown(and.Stats.ByRegion(stats.IFetch))
	if bi.Share(mem.RegionMspace)+bi.Share(mem.RegionLibDVM) < 0.5 {
		t.Fatalf("mspace+libdvm = %.1f%%, want majority",
			100*(bi.Share(mem.RegionMspace)+bi.Share(mem.RegionLibDVM)))
	}
	if bi.Share(mem.RegionAppBinary) > 0.05 {
		t.Fatalf("android app binary = %.1f%% of ifetch, want tiny", 100*bi.Share(mem.RegionAppBinary))
	}
	// SPEC: the app binary carries nearly everything.
	si := stats.NewBreakdown(spec.Stats.ByRegion(stats.IFetch))
	if si.Share(mem.RegionAppBinary) < 0.9 {
		t.Fatalf("SPEC app binary = %.1f%%, want > 90%%", 100*si.Share(mem.RegionAppBinary))
	}
	// Region-count contrast: Android uses an order of magnitude more.
	if and.CodeRegions < spec.CodeRegions*8 {
		t.Fatalf("code region contrast too weak: android %d vs spec %d",
			and.CodeRegions, spec.CodeRegions)
	}
}

func TestShapeDataRegions(t *testing.T) {
	and, err := Run("frozenbubble.main", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	bd := stats.NewBreakdown(and.Stats.ByRegion(stats.DataKinds...))
	// Gralloc, fb0, dalvik-heap, anonymous all visible (Fig 2).
	for _, region := range []string{
		mem.RegionGralloc, mem.RegionFramebuffer, mem.RegionDalvikHeap, mem.RegionAnonymous,
	} {
		if bd.Share(region) < 0.01 {
			t.Errorf("data region %q = %.2f%%, want >= 1%%", region, 100*bd.Share(region))
		}
	}
}

func TestShapeGalleryMediaserver(t *testing.T) {
	r, err := Run("gallery.mp4.view", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	bi := stats.NewBreakdown(r.Stats.ByProcess(stats.IFetch))
	bd := stats.NewBreakdown(r.Stats.ByProcess(stats.DataKinds...))
	// Paper: mediaserver = 81% instruction, 77% data references.
	if got := bi.Share("mediaserver"); got < 0.6 || got > 0.97 {
		t.Fatalf("gallery mediaserver instr share = %.1f%%, paper 81%%", got*100)
	}
	if got := bd.Share("mediaserver"); got < 0.6 || got > 0.97 {
		t.Fatalf("gallery mediaserver data share = %.1f%%, paper 77%%", got*100)
	}
}

func TestShapeSurfaceFlingerTopThread(t *testing.T) {
	r, err := Run("aard.main", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	bt := stats.NewBreakdown(r.Stats.ByThread())
	if bt.Rows[0].Name != "SurfaceFlinger" {
		t.Fatalf("top thread = %s, want SurfaceFlinger (paper Table I)", bt.Rows[0].Name)
	}
}

func TestShapeDexoptOnlyInPM(t *testing.T) {
	pm, err := Run("pm.apk.view", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	other, err := Run("countdown.main", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if pm.Stats.ByProcess()["dexopt"] == 0 {
		t.Fatal("pm.apk.view: dexopt earned nothing")
	}
	if other.Stats.ByProcess()["dexopt"] != 0 {
		t.Fatal("countdown.main: dexopt active outside install workloads")
	}
}
