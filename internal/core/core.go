// Package core is the public face of the reproduction: the unified Agave +
// SPEC benchmark registry, run configuration, and the runner that boots the
// simulated Android stack, executes a workload, and collects the attributed
// reference statistics the paper's figures are built from.
//
// Typical use:
//
//	res, err := core.Run("gallery.mp4.view", core.DefaultConfig())
//	fig3 := stats.NewBreakdown(res.Stats.ByProcess(stats.IFetch))
package core

import (
	"errors"
	"fmt"

	"agave/internal/android"
	"agave/internal/apps"
	"agave/internal/kernel"
	"agave/internal/scenario"
	"agave/internal/sim"
	"agave/internal/spec"
	"agave/internal/stats"
	"agave/internal/suite"
)

// Config controls a benchmark run.
type Config struct {
	// Seed drives every stochastic decision; equal seeds give
	// bit-identical results.
	Seed uint64
	// Duration is the measured simulated interval (after warmup).
	Duration sim.Ticks
	// Warmup runs the stack before measurement begins (Android runs
	// only): boot transients are excluded, as the paper measures steady
	// application execution.
	Warmup sim.Ticks
	// Quantum is the scheduler time slice.
	Quantum sim.Ticks
	// DisableJIT turns the trace JIT off in the benchmark app
	// (ablation A1).
	DisableJIT bool
	// DirtyRectComposition switches SurfaceFlinger to composing only
	// posted surfaces (ablation A3).
	DirtyRectComposition bool
	// MinFreePages tunes the lowmemorykiller's cached-app kill waterline
	// for scenario runs, in physical pages (0 = the 32 MB default). The
	// memory-pressure model applies to multi-app scenarios only;
	// single-app benchmark runs measure an unconstrained machine.
	MinFreePages uint64
}

// DefaultConfig is the configuration the paper-artifact numbers are
// regenerated with (see docs/ARCHITECTURE.md): one simulated second of
// steady state after 300 ms of warmup.
func DefaultConfig() Config {
	return Config{
		Seed:     1,
		Duration: 1 * sim.Second,
		Warmup:   300 * sim.Millisecond,
		Quantum:  1 * sim.Millisecond,
	}
}

// Result is the outcome of one benchmark run: the full attributed counter
// matrix plus the scalar census metrics reported in the paper's Section III.
type Result struct {
	Benchmark string
	IsSPEC    bool
	Stats     *stats.Collector

	// Processes and Threads are the whole-system census at the end of
	// the run (the paper: 20–34 processes, 32–147 threads per Agave app).
	Processes int
	Threads   int
	// LiveProcesses counts processes still alive at the end of the run;
	// it drops below Processes when the run tears processes down (dexopt
	// exits, scenario kills).
	LiveProcesses int
	// CodeRegions and DataRegions count distinct regions that received
	// instruction and data references (the paper: 42–55 and 32–104 per
	// app).
	CodeRegions int
	DataRegions int

	Duration sim.Ticks
	Checksum uint64 // SPEC only: the kernel's fold-proof accumulator

	// Session carries the session-level result when the run was a
	// multi-app scenario (nil for benchmark runs): the app roster, event
	// count, and peak live-app census of the run that actually executed.
	Session *scenario.Result
}

// AgaveNames lists the 19 Agave workloads in paper order.
func AgaveNames() []string { return apps.Names() }

// SPECNames lists the six SPEC CPU2006 baselines in paper order.
func SPECNames() []string { return spec.Names() }

// ScenarioNames lists the bundled multi-app scenarios in canonical order.
func ScenarioNames() []string { return scenario.Names() }

// SuiteNames lists every benchmark: 19 Agave then 6 SPEC.
func SuiteNames() []string { return append(AgaveNames(), SPECNames()...) }

// IsSPEC reports whether name is one of the SPEC baselines.
func IsSPEC(name string) bool {
	for _, n := range spec.Names() {
		if n == name {
			return true
		}
	}
	return false
}

// Run executes one benchmark by name.
func Run(name string, cfg Config) (*Result, error) {
	if IsSPEC(name) {
		return RunSPEC(name, cfg)
	}
	return RunAgave(name, cfg)
}

// RunAgave boots the full Android stack, launches the workload, lets the
// system warm up, then measures cfg.Duration of steady-state execution.
func RunAgave(name string, cfg Config) (*Result, error) {
	w, err := apps.ByName(name)
	if err != nil {
		return nil, err
	}
	k := kernel.New(kernel.Config{Quantum: cfg.Quantum, Seed: cfg.Seed})
	defer k.Shutdown()
	sys := android.Boot(k)
	sys.Compositor.DirtyRectOnly = cfg.DirtyRectComposition
	app := apps.Launch(sys, w)
	if cfg.DisableJIT {
		app.VM.JITEnabled = false
	}
	// Warmup: boot, app launch, first frames.
	k.Run(cfg.Warmup)
	// Measure: reset counters, run the steady state.
	k.Stats.Reset()
	k.Run(cfg.Warmup + cfg.Duration)
	return collect(name, false, k, cfg, 0), nil
}

// RunSPEC runs one SPEC baseline on the bare kernel (no Android stack), as
// the paper's comparison points do. The input-read phase is part of the
// profile — it is what makes ata_sff/0 visible in the SPEC bars.
func RunSPEC(name string, cfg Config) (*Result, error) {
	b, err := spec.ByName(name)
	if err != nil {
		return nil, err
	}
	k := kernel.New(kernel.Config{Quantum: cfg.Quantum, Seed: cfg.Seed})
	defer k.Shutdown()
	env := spec.Launch(k, b)
	k.Run(cfg.Duration)
	return collect(name, true, k, cfg, env.Checksum), nil
}

// RunScenario executes one bundled multi-app scenario by name: the scripted
// session engine boots the stack, warms it up, then drives the scenario's
// lifecycle timeline across cfg.Duration while attributing every reference
// per process, exactly as single-app runs do. The result's Benchmark field
// carries the scenario name.
func RunScenario(name string, cfg Config) (*Result, error) {
	sc, err := scenario.ByName(name)
	if err != nil {
		return nil, err
	}
	return RunScenarioDef(sc, cfg)
}

// RunScenarioDef executes a scenario definition directly — the entry point
// for sessions that are not in the bundled registry: documents decoded from
// scenario files and generator output. The definition is validated by the
// engine before anything boots, so an ill-formed ad-hoc scenario fails
// cleanly.
func RunScenarioDef(sc *scenario.Scenario, cfg Config) (*Result, error) {
	r, err := scenario.Run(sc, scenario.Config{
		Seed:                 cfg.Seed,
		Duration:             cfg.Duration,
		Warmup:               cfg.Warmup,
		Quantum:              cfg.Quantum,
		DisableJIT:           cfg.DisableJIT,
		DirtyRectComposition: cfg.DirtyRectComposition,
		MinFreePages:         cfg.MinFreePages,
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		Benchmark:     r.Scenario,
		Stats:         r.Stats,
		Processes:     r.Processes,
		Threads:       r.Threads,
		LiveProcesses: r.LiveProcesses,
		CodeRegions:   r.CodeRegions,
		DataRegions:   r.DataRegions,
		Duration:      r.Duration,
		Session:       r,
	}, nil
}

func collect(name string, isSpec bool, k *kernel.Kernel, cfg Config, checksum uint64) *Result {
	return &Result{
		Benchmark:     name,
		IsSPEC:        isSpec,
		Stats:         k.Stats,
		Processes:     k.ProcessCount(),
		Threads:       k.ThreadCount(),
		LiveProcesses: k.LiveProcessCount(),
		CodeRegions:   k.Stats.RegionCount(stats.IFetch),
		DataRegions:   k.Stats.RegionCount(stats.DataKinds...),
		Duration:      cfg.Duration,
		Checksum:      checksum,
	}
}

// forSpec derives the run configuration of one plan spec: the spec's seed
// replaces the base seed, and ablation overrides are ORed on top of the base
// flags.
func (cfg Config) forSpec(s suite.RunSpec) Config {
	out := cfg
	out.Seed = s.Seed
	out.DisableJIT = cfg.DisableJIT || s.Ablation.DisableJIT
	out.DirtyRectComposition = cfg.DirtyRectComposition || s.Ablation.DirtyRectComposition
	return out
}

// RunOne executes one plan spec on a fresh simulated machine: the spec's
// seed and ablation are applied on top of base exactly as the suite engine's
// workers do, so a spec run through RunOne — in this process or a fleet
// worker subprocess — yields the bit-identical result a serial plan sweep
// would have produced at the same plan position.
func RunOne(base Config, s suite.RunSpec) (*Result, sim.Ticks, error) {
	cfg := base.forSpec(s)
	var r *Result
	var err error
	if s.Scenario && s.Def != nil {
		r, err = RunScenarioDef(s.Def, cfg)
	} else if s.Scenario {
		r, err = RunScenario(s.Benchmark, cfg)
	} else {
		r, err = Run(s.Benchmark, cfg)
	}
	if err != nil {
		return nil, 0, err
	}
	// Only SPEC runs skip warmup accounting (they boot no Android stack);
	// Agave and scenario runs include it.
	ticks := cfg.Duration
	if !r.IsSPEC {
		ticks += cfg.Warmup
	}
	return r, ticks, nil
}

// NewEngine builds a suite engine that executes core benchmarks and
// scenarios: each run boots a fresh simulated machine configured from base
// plus the spec's seed and ablation. parallel bounds the worker pool (<= 0
// means GOMAXPROCS).
func NewEngine(base Config, parallel int) suite.Engine[*Result] {
	return suite.Engine[*Result]{
		Parallel: parallel,
		Run: func(s suite.RunSpec) (*Result, sim.Ticks, error) {
			return RunOne(base, s)
		},
	}
}

// RunPlan executes a full run matrix through the suite engine and returns
// the outputs in plan order.
func RunPlan(base Config, p suite.Plan, parallel int) ([]suite.RunOutput[*Result], error) {
	return NewEngine(base, parallel).Execute(p.Specs())
}

// SuiteMetrics extracts the scalar metrics the suite summaries aggregate
// across seeds: total references, census counts, and (SPEC only) the
// fold-proof checksum.
func SuiteMetrics(r *Result) map[string]float64 {
	m := map[string]float64{
		"total_refs":   float64(r.Stats.Total()),
		"processes":    float64(r.Processes),
		"threads":      float64(r.Threads),
		"code_regions": float64(r.CodeRegions),
		"data_regions": float64(r.DataRegions),
	}
	if r.IsSPEC {
		m["checksum"] = float64(r.Checksum)
	}
	if r.Session != nil {
		m["lmk_kills"] = float64(r.Session.LMKKills)
		m["trims"] = float64(r.Session.Trims)
		m["input_events"] = float64(r.Session.InputEvents)
		m["input_dispatched"] = float64(r.Session.InputDispatched)
		m["input_dropped"] = float64(r.Session.InputDropped)
		m["faults_injected"] = float64(r.Session.FaultsInjected)
		m["faults_detected"] = float64(r.Session.FaultsDetected)
		m["faults_recovered"] = float64(r.Session.FaultsRecovered)
		m["anrs"] = float64(r.Session.ANRs)
	}
	return m
}

// RunSuite runs the named benchmarks (all of them when names is empty) and
// returns results in order. Each run uses a fresh simulated machine. It
// delegates to the suite engine with one worker, so behavior is exactly the
// historical serial loop; use RunSuiteParallel to fan out.
func RunSuite(cfg Config, names ...string) ([]*Result, error) {
	return RunSuiteParallel(cfg, 1, names...)
}

// RunSuiteParallel runs the named benchmarks (all of them when names is
// empty) across up to parallel workers and returns results in name order —
// bit-identical to the serial run, since every run is share-nothing and
// seeded. parallel <= 0 uses GOMAXPROCS.
func RunSuiteParallel(cfg Config, parallel int, names ...string) ([]*Result, error) {
	if len(names) == 0 {
		names = SuiteNames()
	}
	plan := suite.Plan{Benchmarks: names, Seeds: []uint64{cfg.Seed}}
	outputs, err := RunPlan(cfg, plan, parallel)
	if err != nil {
		var re *suite.RunError
		if errors.As(err, &re) {
			return nil, fmt.Errorf("core: running %s: %w", re.Spec.Benchmark, re.Err)
		}
		return nil, err
	}
	out := make([]*Result, len(outputs))
	for i, o := range outputs {
		out[i] = o.Result
	}
	return out, nil
}
