// Package cpu implements the execution engine of the reproduction: an
// atomic, in-order CPU model in the spirit of gem5's AtomicSimpleCPU as used
// by the paper ("we run gem5's atomic CPU model without caches to quickly
// generate these statistics"). Every operation retires in one tick; there is
// no cache or memory timing.
//
// Simulated threads are Go goroutines coupled to the scheduler by strict
// channel handoff: exactly one simulated thread runs at any moment, and a
// thread runs only while holding a quantum grant. This makes whole-system
// runs bit-deterministic while letting workload models be written as plain
// straight-line Go code instead of resumable state machines.
package cpu

import (
	"fmt"

	"agave/internal/sim"
)

// Model describes the CPU configuration. The reproduction always uses the
// atomic model; the struct exists so benches and docs can name it.
type Model struct {
	Name       string
	ClockHz    uint64
	InstPerTik uint64
}

// Atomic is the paper's configuration: 1 GHz atomic CPU, no caches.
var Atomic = Model{Name: "atomic", ClockHz: 1e9, InstPerTik: 1}

// Reason says why a thread yielded back to the scheduler.
type Reason uint8

// Yield reasons.
const (
	// YieldQuantum: the granted quantum was exhausted; the thread is still
	// runnable.
	YieldQuantum Reason = iota
	// YieldBlocked: the thread blocked on a kernel object (futex, binder
	// reply, message queue, IO) and must be woken explicitly.
	YieldBlocked
	// YieldSleep: the thread sleeps until Yield.WakeAt.
	YieldSleep
	// YieldExit: the thread body returned (or was killed); it will never
	// run again.
	YieldExit
)

// String names the reason.
func (r Reason) String() string {
	switch r {
	case YieldQuantum:
		return "quantum"
	case YieldBlocked:
		return "blocked"
	case YieldSleep:
		return "sleep"
	case YieldExit:
		return "exit"
	}
	return fmt.Sprintf("Reason(%d)", uint8(r))
}

// Yield is the report a thread hands the scheduler when it stops running.
type Yield struct {
	Used   sim.Ticks // ticks consumed since the grant
	Reason Reason
	WakeAt sim.Ticks // valid for YieldSleep
}

type grant struct {
	quantum sim.Ticks
	kill    bool
}

// killed is the panic sentinel used to unwind a killed thread body.
type killed struct{}

// Context is one simulated thread's execution context.
type Context struct {
	grantCh chan grant
	yieldCh chan Yield

	// thread-side state (touched only while holding the grant)
	quantum sim.Ticks
	used    sim.Ticks

	// scheduler-side state
	exited  bool
	started bool
}

// NewContext returns a context ready for Start.
func NewContext() *Context {
	return &Context{
		grantCh: make(chan grant),
		yieldCh: make(chan Yield),
	}
}

// Start launches body(arg) as the thread's code. The body does not run until
// the scheduler grants a quantum with Run. When body returns (or the thread
// is killed) the context reports YieldExit.
//
// The explicit arg exists so hot spawn paths can pass a package-level
// function plus a pointer argument instead of allocating a capturing closure
// per thread; callers that don't care pass nil and ignore it.
func (c *Context) Start(body func(arg any), arg any) {
	if c.started {
		panic("cpu: context started twice")
	}
	c.started = true
	go func() {
		g := <-c.grantCh
		if g.kill {
			c.yieldCh <- Yield{Reason: YieldExit}
			return
		}
		c.quantum = g.quantum
		c.used = 0
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(killed); !ok {
					panic(r)
				}
			}
			c.yieldCh <- Yield{Used: c.used, Reason: YieldExit}
		}()
		body(arg)
	}()
}

// Run grants the thread a quantum and blocks until it yields. It must only
// be called by the scheduler, for a started, non-exited context.
func (c *Context) Run(quantum sim.Ticks) Yield {
	if c.exited {
		panic("cpu: Run on exited context")
	}
	c.grantCh <- grant{quantum: quantum}
	y := <-c.yieldCh
	if y.Reason == YieldExit {
		c.exited = true
	}
	return y
}

// Kill unwinds the thread body and retires the context. Safe to call on a
// blocked or sleeping thread; a no-op on an exited one.
func (c *Context) Kill() {
	if c.exited || !c.started {
		c.exited = true
		return
	}
	c.grantCh <- grant{kill: true}
	<-c.yieldCh
	c.exited = true
}

// Exited reports whether the thread will never run again.
func (c *Context) Exited() bool { return c.exited }

// Recycle returns an exited context to like-new state so it can serve a new
// thread: the old goroutine has exited and both handoff channels are empty,
// so Start may be called again. Panics on a live context — recycling one
// would hand its channels to two goroutines at once.
func (c *Context) Recycle() {
	if c.started && !c.exited {
		panic("cpu: recycle of live context")
	}
	c.started = false
	c.exited = false
	c.quantum = 0
	c.used = 0
}

// --- thread-side API (call only from inside the body) ---

// Charge consumes n ticks of the current quantum. If the quantum is
// exhausted, the thread yields and resumes transparently on its next grant.
// Large charges are allowed to overrun the quantum (atomic ops are not
// preemptable mid-instruction); bulk helpers chunk their charges.
func (c *Context) Charge(n sim.Ticks) {
	c.used += n
	if c.used >= c.quantum {
		c.yieldWait(Yield{Used: c.used, Reason: YieldQuantum})
	}
}

// Used reports ticks consumed under the current grant.
func (c *Context) Used() sim.Ticks { return c.used }

// YieldNow ends the quantum early without consuming extra ticks; the thread
// stays runnable (sched_yield).
func (c *Context) YieldNow() {
	c.yieldWait(Yield{Used: c.used, Reason: YieldQuantum})
}

// Block yields with YieldBlocked and returns once the scheduler wakes the
// thread with a fresh grant.
func (c *Context) Block() {
	c.yieldWait(Yield{Used: c.used, Reason: YieldBlocked})
}

// Sleep yields until the simulated clock reaches wakeAt.
func (c *Context) Sleep(wakeAt sim.Ticks) {
	c.yieldWait(Yield{Used: c.used, Reason: YieldSleep, WakeAt: wakeAt})
}

func (c *Context) yieldWait(y Yield) {
	c.yieldCh <- y
	g := <-c.grantCh
	if g.kill {
		panic(killed{})
	}
	c.quantum = g.quantum
	c.used = 0
}
