package cpu

import (
	"testing"

	"agave/internal/sim"
)

func TestQuantumExpiry(t *testing.T) {
	c := NewContext()
	c.Start(func(any) {
		for i := 0; i < 10; i++ {
			c.Charge(10)
		}
	}, nil)
	y := c.Run(25)
	if y.Reason != YieldQuantum {
		t.Fatalf("reason = %v, want quantum", y.Reason)
	}
	if y.Used != 30 { // 10+10+10 crosses the 25-tick quantum at 30
		t.Fatalf("used = %d, want 30", y.Used)
	}
	y = c.Run(25)
	if y.Reason != YieldQuantum || y.Used != 30 {
		t.Fatalf("second slice = %+v", y)
	}
	y = c.Run(1000)
	if y.Reason != YieldExit {
		t.Fatalf("final reason = %v, want exit", y.Reason)
	}
	if y.Used != 40 {
		t.Fatalf("final used = %d, want 40", y.Used)
	}
	if !c.Exited() {
		t.Fatal("context not marked exited")
	}
}

func TestExitWithoutCharge(t *testing.T) {
	c := NewContext()
	c.Start(func(any) {}, nil)
	y := c.Run(100)
	if y.Reason != YieldExit || y.Used != 0 {
		t.Fatalf("yield = %+v", y)
	}
}

func TestBlockAndResume(t *testing.T) {
	c := NewContext()
	phase := 0
	c.Start(func(any) {
		c.Charge(5)
		phase = 1
		c.Block()
		phase = 2
		c.Charge(5)
	}, nil)
	y := c.Run(100)
	if y.Reason != YieldBlocked || y.Used != 5 || phase != 1 {
		t.Fatalf("block yield = %+v phase=%d", y, phase)
	}
	y = c.Run(100)
	if y.Reason != YieldExit || phase != 2 {
		t.Fatalf("resume yield = %+v phase=%d", y, phase)
	}
	if y.Used != 5 {
		t.Fatalf("used after resume = %d, want 5 (fresh count)", y.Used)
	}
}

func TestSleepCarriesWakeTime(t *testing.T) {
	c := NewContext()
	c.Start(func(any) {
		c.Sleep(12345)
	}, nil)
	y := c.Run(100)
	if y.Reason != YieldSleep || y.WakeAt != 12345 {
		t.Fatalf("yield = %+v", y)
	}
	c.Kill()
}

func TestYieldNow(t *testing.T) {
	c := NewContext()
	c.Start(func(any) {
		c.Charge(3)
		c.YieldNow()
		c.Charge(4)
	}, nil)
	y := c.Run(1000)
	if y.Reason != YieldQuantum || y.Used != 3 {
		t.Fatalf("yield = %+v", y)
	}
	y = c.Run(1000)
	if y.Reason != YieldExit || y.Used != 4 {
		t.Fatalf("yield = %+v", y)
	}
}

func TestKillBlockedThread(t *testing.T) {
	c := NewContext()
	cleanedUp := false
	c.Start(func(any) {
		defer func() { cleanedUp = true }()
		c.Charge(1)
		c.Block()
		t.Error("killed thread resumed body")
	}, nil)
	y := c.Run(100)
	if y.Reason != YieldBlocked {
		t.Fatalf("yield = %+v", y)
	}
	c.Kill()
	if !c.Exited() {
		t.Fatal("killed context not exited")
	}
	if !cleanedUp {
		t.Fatal("deferred cleanup did not run on kill")
	}
}

func TestKillNeverGrantedThread(t *testing.T) {
	c := NewContext()
	c.Start(func(any) {
		t.Error("never-granted thread ran")
	}, nil)
	c.Kill()
	if !c.Exited() {
		t.Fatal("not exited")
	}
}

func TestKillExitedIsNoop(t *testing.T) {
	c := NewContext()
	c.Start(func(any) {}, nil)
	c.Run(10)
	c.Kill()
	c.Kill()
}

func TestDoubleStartPanics(t *testing.T) {
	c := NewContext()
	c.Start(func(any) {}, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("double Start did not panic")
		}
		c.Run(10) // drain the first body
	}()
	c.Start(func(any) {}, nil)
}

func TestChargeOverrunAllowed(t *testing.T) {
	c := NewContext()
	c.Start(func(any) {
		c.Charge(1000) // single huge op: atomic, not preemptable
	}, nil)
	y := c.Run(10)
	if y.Reason != YieldQuantum || y.Used != 1000 {
		t.Fatalf("yield = %+v", y)
	}
	c.Run(10)
}

func TestDeterministicInterleaving(t *testing.T) {
	run := func() []sim.Ticks {
		var used []sim.Ticks
		a, b := NewContext(), NewContext()
		a.Start(func(any) {
			for i := 0; i < 5; i++ {
				a.Charge(7)
			}
		}, nil)
		b.Start(func(any) {
			for i := 0; i < 5; i++ {
				b.Charge(11)
			}
		}, nil)
		for !a.Exited() || !b.Exited() {
			if !a.Exited() {
				used = append(used, a.Run(10).Used)
			}
			if !b.Exited() {
				used = append(used, b.Run(10).Used)
			}
		}
		return used
	}
	r1, r2 := run(), run()
	if len(r1) != len(r2) {
		t.Fatalf("lengths differ: %v vs %v", r1, r2)
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("run diverged at %d: %v vs %v", i, r1, r2)
		}
	}
}

func TestAtomicModelConstants(t *testing.T) {
	if Atomic.InstPerTik != 1 || Atomic.ClockHz != 1e9 {
		t.Fatalf("atomic model misconfigured: %+v", Atomic)
	}
}

func TestReasonString(t *testing.T) {
	for r, want := range map[Reason]string{
		YieldQuantum: "quantum", YieldBlocked: "blocked",
		YieldSleep: "sleep", YieldExit: "exit",
	} {
		if r.String() != want {
			t.Fatalf("Reason(%d).String() = %q, want %q", r, r.String(), want)
		}
	}
}
