// Package binder models Android's Binder IPC as the paper's workloads use
// it: parcels marshalled into per-process /dev/binder transaction buffers, a
// driver that routes transactions to registered services, and per-process
// "Binder Thread #N" pools that execute incoming calls. Binder is what makes
// Android reference profiles multi-process — every framework interaction
// crosses at least one process boundary.
package binder

import (
	"encoding/binary"
	"fmt"
)

// Parcel is a Binder payload: a flat, little-endian marshalled buffer, built
// and consumed for real so transaction sizes (and hence reference counts)
// follow the actual data.
type Parcel struct {
	buf []byte
	off int
	// inline backs buf for the common case: framework transactions are a
	// few dozen bytes (an interface token, a label, a verb), so marshalling
	// one costs no append growth. Larger payloads spill to the heap.
	inline [64]byte
}

// NewParcel returns an empty parcel.
func NewParcel() *Parcel {
	p := &Parcel{}
	p.buf = p.inline[:0]
	return p
}

// Len reports the marshalled byte size.
func (p *Parcel) Len() int { return len(p.buf) }

// Words reports the 4-byte word count (the unit the copy cost model uses).
func (p *Parcel) Words() uint64 { return uint64((len(p.buf) + 3) / 4) }

// WriteInt32 appends a 32-bit value.
func (p *Parcel) WriteInt32(v int32) {
	p.buf = binary.LittleEndian.AppendUint32(p.buf, uint32(v))
}

// WriteInt64 appends a 64-bit value.
func (p *Parcel) WriteInt64(v int64) {
	p.buf = binary.LittleEndian.AppendUint64(p.buf, uint64(v))
}

// WriteString appends a length-prefixed string.
func (p *Parcel) WriteString(s string) {
	p.WriteInt32(int32(len(s)))
	p.buf = append(p.buf, s...)
	for len(p.buf)%4 != 0 {
		p.buf = append(p.buf, 0)
	}
}

// WriteBlob appends a length-prefixed opaque byte blob.
func (p *Parcel) WriteBlob(b []byte) {
	p.WriteInt32(int32(len(b)))
	p.buf = append(p.buf, b...)
	for len(p.buf)%4 != 0 {
		p.buf = append(p.buf, 0)
	}
}

// ReadInt32 consumes a 32-bit value.
func (p *Parcel) ReadInt32() (int32, error) {
	if p.off+4 > len(p.buf) {
		return 0, fmt.Errorf("binder: parcel underrun at %d", p.off)
	}
	v := binary.LittleEndian.Uint32(p.buf[p.off:])
	p.off += 4
	return int32(v), nil
}

// ReadInt64 consumes a 64-bit value.
func (p *Parcel) ReadInt64() (int64, error) {
	if p.off+8 > len(p.buf) {
		return 0, fmt.Errorf("binder: parcel underrun at %d", p.off)
	}
	v := binary.LittleEndian.Uint64(p.buf[p.off:])
	p.off += 8
	return int64(v), nil
}

// ReadString consumes a length-prefixed string.
func (p *Parcel) ReadString() (string, error) {
	n, err := p.ReadInt32()
	if err != nil {
		return "", err
	}
	if n < 0 || p.off+int(n) > len(p.buf) {
		return "", fmt.Errorf("binder: bad string length %d", n)
	}
	s := string(p.buf[p.off : p.off+int(n)])
	p.off += int(n)
	for p.off%4 != 0 && p.off < len(p.buf) {
		p.off++
	}
	return s, nil
}

// ReadBlob consumes a length-prefixed blob.
func (p *Parcel) ReadBlob() ([]byte, error) {
	n, err := p.ReadInt32()
	if err != nil {
		return nil, err
	}
	if n < 0 || p.off+int(n) > len(p.buf) {
		return nil, fmt.Errorf("binder: bad blob length %d", n)
	}
	b := p.buf[p.off : p.off+int(n)]
	p.off += int(n)
	for p.off%4 != 0 && p.off < len(p.buf) {
		p.off++
	}
	return b, nil
}

// Rewind resets the read cursor.
func (p *Parcel) Rewind() { p.off = 0 }
