package binder

import (
	"testing"
	"testing/quick"

	"agave/internal/kernel"
	"agave/internal/sim"
	"agave/internal/stats"
)

func TestParcelRoundtrip(t *testing.T) {
	p := NewParcel()
	p.WriteInt32(-42)
	p.WriteString("android.app.IActivityManager")
	p.WriteInt64(1 << 40)
	p.WriteBlob([]byte{1, 2, 3})
	p.Rewind()
	if v, err := p.ReadInt32(); err != nil || v != -42 {
		t.Fatalf("ReadInt32 = %d, %v", v, err)
	}
	if s, err := p.ReadString(); err != nil || s != "android.app.IActivityManager" {
		t.Fatalf("ReadString = %q, %v", s, err)
	}
	if v, err := p.ReadInt64(); err != nil || v != 1<<40 {
		t.Fatalf("ReadInt64 = %d, %v", v, err)
	}
	if b, err := p.ReadBlob(); err != nil || len(b) != 3 || b[2] != 3 {
		t.Fatalf("ReadBlob = %v, %v", b, err)
	}
}

func TestParcelUnderrun(t *testing.T) {
	p := NewParcel()
	p.WriteInt32(1)
	p.Rewind()
	if _, err := p.ReadInt64(); err == nil {
		t.Fatal("underrun read succeeded")
	}
}

func TestParcelAlignment(t *testing.T) {
	p := NewParcel()
	p.WriteString("abc") // 3 bytes, padded to 4
	p.WriteInt32(7)
	p.Rewind()
	if s, _ := p.ReadString(); s != "abc" {
		t.Fatalf("string = %q", s)
	}
	if v, err := p.ReadInt32(); err != nil || v != 7 {
		t.Fatalf("post-pad int = %d, %v", v, err)
	}
	if p.Len()%4 != 0 {
		t.Fatalf("parcel length %d not word aligned", p.Len())
	}
}

func TestParcelRoundtripProperty(t *testing.T) {
	f := func(a int32, s string, b int64) bool {
		p := NewParcel()
		p.WriteInt32(a)
		p.WriteString(s)
		p.WriteInt64(b)
		p.Rewind()
		ga, e1 := p.ReadInt32()
		gs, e2 := p.ReadString()
		gb, e3 := p.ReadInt64()
		return e1 == nil && e2 == nil && e3 == nil && ga == a && gs == s && gb == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func setup(t *testing.T) (*kernel.Kernel, *Driver, *kernel.Process, *kernel.Process) {
	t.Helper()
	k := kernel.New(kernel.Config{Quantum: 50 * sim.Microsecond, Seed: 5})
	t.Cleanup(k.Shutdown)
	server := k.NewProcess("system_server", 1<<20, 1<<20)
	client := k.NewProcess("benchmark", 1<<20, 1<<20)
	return k, NewDriver(k), server, client
}

func TestCallRoundtrip(t *testing.T) {
	k, d, server, client := setup(t)
	d.Register(server, "echo", 2, func(ex *kernel.Exec, txn *Transaction) {
		v, _ := txn.Data.ReadInt32()
		txn.Reply = NewParcel()
		txn.Reply.WriteInt32(v * 2)
	})
	var got int32
	k.SpawnThread(client, "main", "main", func(ex *kernel.Exec) {
		ex.PushCode(client.Layout.Text)
		data := NewParcel()
		data.WriteInt32(21)
		reply, err := d.Call(ex, "echo", 1, data)
		if err != nil {
			t.Error(err)
			return
		}
		got, _ = reply.ReadInt32()
	})
	k.Run(10 * sim.Millisecond)
	if got != 42 {
		t.Fatalf("echo reply = %d, want 42", got)
	}
}

func TestCallUnknownService(t *testing.T) {
	k, d, _, client := setup(t)
	called := false
	k.SpawnThread(client, "main", "main", func(ex *kernel.Exec) {
		ex.PushCode(client.Layout.Text)
		if _, err := d.Call(ex, "ghost", 1, nil); err == nil {
			t.Error("call to unknown service succeeded")
		}
		called = true
	})
	k.Run(5 * sim.Millisecond)
	if !called {
		t.Fatal("client never ran")
	}
}

func TestBinderThreadsServeConcurrently(t *testing.T) {
	k, d, server, client := setup(t)
	svc := d.Register(server, "work", 2, func(ex *kernel.Exec, txn *Transaction) {
		ex.SleepFor(2 * sim.Millisecond)
		txn.Reply = NewParcel()
		txn.Reply.WriteInt32(0)
	})
	done := 0
	for i := 0; i < 2; i++ {
		k.SpawnThread(client, "caller", "caller", func(ex *kernel.Exec) {
			ex.PushCode(client.Layout.Text)
			if _, err := d.Call(ex, "work", 1, nil); err != nil {
				t.Error(err)
			}
			done++
		})
	}
	k.Run(20 * sim.Millisecond)
	if done != 2 {
		t.Fatalf("completed %d/2 calls", done)
	}
	if svc.Calls != 2 {
		t.Fatalf("service served %d calls", svc.Calls)
	}
}

func TestTransactionBuffersAttributed(t *testing.T) {
	k, d, server, client := setup(t)
	d.Register(server, "echo", 1, func(ex *kernel.Exec, txn *Transaction) {
		txn.Reply = NewParcel()
		txn.Reply.WriteBlob(make([]byte, 4096))
	})
	k.SpawnThread(client, "main", "main", func(ex *kernel.Exec) {
		ex.PushCode(client.Layout.Text)
		data := NewParcel()
		data.WriteBlob(make([]byte, 8192))
		if _, err := d.Call(ex, "echo", 1, data); err != nil {
			t.Error(err)
		}
	})
	k.Run(10 * sim.Millisecond)
	if got := k.Stats.ByRegion()[("/dev/binder")]; got == 0 {
		t.Fatal("no references attributed to /dev/binder transaction buffers")
	}
	if got := k.Stats.ByThread()["Binder Thread"]; got == 0 {
		t.Fatal("binder pool threads earned no references")
	}
}

func TestDuplicateServicePanics(t *testing.T) {
	_, d, server, _ := setup(t)
	d.Register(server, "dup", 1, func(ex *kernel.Exec, txn *Transaction) {})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	d.Register(server, "dup", 1, func(ex *kernel.Exec, txn *Transaction) {})
}

func TestLookup(t *testing.T) {
	_, d, server, _ := setup(t)
	want := d.Register(server, "svc", 1, func(ex *kernel.Exec, txn *Transaction) {})
	got, ok := d.Lookup("svc")
	if !ok || got != want {
		t.Fatal("Lookup failed")
	}
	if _, ok := d.Lookup("none"); ok {
		t.Fatal("Lookup of missing service succeeded")
	}
}

var _ = stats.IFetch // keep stats imported for region asserts above
