package binder

import (
	"fmt"

	"agave/internal/kernel"
	"agave/internal/mem"
)

// Cost model for one transaction leg (ioctl entry, thread wakeup, buffer
// management), in kernel instructions / kernel data refs.
const (
	ioctlFetch = 900
	ioctlData  = 160
)

// binderMapSize is the per-process /dev/binder transaction buffer mapping.
const binderMapSize = 1 << 20

// Transaction is one in-flight call.
type Transaction struct {
	Code  int32
	Data  *Parcel
	Reply *Parcel

	sender *kernel.Thread
	done   bool
	wq     *kernel.WaitQueue
}

// Handler runs on a service's binder thread to serve a transaction. It
// should read txn.Data and populate txn.Reply.
type Handler func(ex *kernel.Exec, txn *Transaction)

// Service is a registered Binder endpoint.
type Service struct {
	Name    string
	Proc    *kernel.Process
	Handler Handler

	// Owner carries the server object behind the service, for packages
	// that need to map a looked-up service back to its implementation
	// (binder itself never touches it). Keeping the back-pointer on the
	// per-machine service — rather than in a process-global side table —
	// is what lets the suite engine run machines concurrently without
	// shared state.
	Owner any

	queue *kernel.MsgQueue
	// Calls counts served transactions, for tests.
	Calls uint64
}

// Driver is the /dev/binder device: the context manager's service registry
// plus per-process transaction buffer mappings.
type Driver struct {
	k        *kernel.Kernel
	services map[string]*Service
	maps     map[*kernel.Process]*mem.VMA
}

// NewDriver creates the device. A real system has exactly one; tests may
// make more.
func NewDriver(k *kernel.Kernel) *Driver {
	return &Driver{
		k:        k,
		services: make(map[string]*Service),
		maps:     make(map[*kernel.Process]*mem.VMA),
	}
}

// bufferFor lazily maps the process's /dev/binder transaction buffer. The
// region name contributes to the paper's "other" data-region census.
func (d *Driver) bufferFor(p *kernel.Process) *mem.VMA {
	if v, ok := d.maps[p]; ok {
		return v
	}
	v := p.AS.MapAnywhere(mem.MmapBase, binderMapSize, "/dev/binder",
		mem.PermRead, mem.ClassDevice)
	d.maps[p] = v
	return v
}

// Register installs a service hosted by proc with nThreads binder pool
// threads and returns it. Thread names follow Android's "Binder Thread #N"
// convention; they all account to the "Binder Thread" group.
func (d *Driver) Register(proc *kernel.Process, name string, nThreads int, h Handler) *Service {
	if _, dup := d.services[name]; dup {
		panic(fmt.Sprintf("binder: duplicate service %q", name))
	}
	s := &Service{
		Name:    name,
		Proc:    proc,
		Handler: h,
		queue:   d.k.NewMsgQueue("binder." + name),
	}
	d.services[name] = s
	d.bufferFor(proc)
	for i := 0; i < nThreads; i++ {
		tname := fmt.Sprintf("Binder Thread #%d", i+1)
		d.k.SpawnThread(proc, tname, "Binder Thread", func(ex *kernel.Exec) {
			d.serveLoop(ex, s)
		})
	}
	return s
}

// Lookup finds a registered service.
func (d *Driver) Lookup(name string) (*Service, bool) {
	s, ok := d.services[name]
	return s, ok
}

// Unregister removes a service from the context manager, as happens when its
// hosting process dies. Killing the service's binder pool threads is the
// caller's job (they belong to the dead process); once the name is free a
// relaunched process may Register it again. Unregistering an unknown name is
// a no-op.
func (d *Driver) Unregister(name string) {
	delete(d.services, name)
}

// Sender reports the thread that issued the transaction — the moral
// equivalent of binder_transaction_data's sender_pid: services use it to
// attribute sessions to their client process (and to tear them down when
// that process dies).
func (t *Transaction) Sender() *kernel.Thread { return t.sender }

func (d *Driver) serveLoop(ex *kernel.Exec, s *Service) {
	buf := d.bufferFor(s.Proc)
	for {
		txn := ex.Recv(s.queue).(*Transaction)
		// Kernel copies the parcel into this process's binder buffer;
		// the service thread then reads it out.
		ex.Syscall(ioctlFetch/2, ioctlData/2)
		ex.InCode(kernelText(s.Proc), func() {
			ex.Do(kernel.Work{Fetch: 2, Writes: 1, Data: buf}, txn.Data.Words())
		})
		ex.Read(buf, txn.Data.Words())
		s.Handler(ex, txn)
		// Reply copy back through the kernel.
		reply := txn.Reply
		if reply == nil {
			reply = NewParcel()
			txn.Reply = reply
		}
		ex.Syscall(ioctlFetch/2, ioctlData/2)
		txn.done = true
		txn.wq.WakeAll()
		s.Calls++
	}
}

// Call performs a synchronous transaction from the calling thread to the
// named service, blocking until the reply arrives. It returns the reply
// parcel (never nil).
func (d *Driver) Call(ex *kernel.Exec, service string, code int32, data *Parcel) (*Parcel, error) {
	s, ok := d.services[service]
	if !ok {
		return nil, fmt.Errorf("binder: no service %q", service)
	}
	if data == nil {
		data = NewParcel()
	}
	buf := d.bufferFor(ex.P)
	// Client-side ioctl: marshal the parcel out of this process.
	ex.Syscall(ioctlFetch, ioctlData)
	ex.Read(buf, data.Words())
	txn := &Transaction{
		Code:   code,
		Data:   data,
		sender: ex.T,
		wq:     d.k.NewWaitQueue("binder.reply"),
	}
	ex.Send(s.queue, txn)
	for !txn.done {
		ex.WaitFree(txn.wq)
	}
	// Reply lands in the client's binder buffer and is read out.
	ex.Syscall(ioctlFetch/3, ioctlData/3)
	ex.Write(buf, txn.Reply.Words())
	ex.Read(buf, txn.Reply.Words())
	txn.Reply.Rewind()
	return txn.Reply, nil
}

// kernelText resolves the kernel region of p (every process maps one).
func kernelText(p *kernel.Process) *mem.VMA {
	v := p.AS.FindByName(mem.RegionKernel)
	if v == nil {
		panic("binder: process has no kernel region")
	}
	return v
}
