package binder

import (
	"fmt"

	"agave/internal/kernel"
	"agave/internal/mem"
)

// Cost model for one transaction leg (ioctl entry, thread wakeup, buffer
// management), in kernel instructions / kernel data refs.
const (
	ioctlFetch = 900
	ioctlData  = 160
)

// binderMapSize is the per-process /dev/binder transaction buffer mapping.
const binderMapSize = 1 << 20

// Transaction is one in-flight call.
type Transaction struct {
	Code  int32
	Data  *Parcel
	Reply *Parcel

	sender  *kernel.Thread
	done    bool
	aborted bool
	// oneway marks a TF_ONE_WAY transaction: no client waits on wq, so the
	// serving thread owns the struct once done and recycles it.
	oneway bool
	// wq is the reply wait queue, embedded by value: a fresh queue per call
	// was one of the hottest allocation sites in a scenario run. Recycled
	// transactions re-init it, keeping the waiter backing array.
	wq kernel.WaitQueue
}

// Handler runs on a service's binder thread to serve a transaction. It
// should read txn.Data and populate txn.Reply.
type Handler func(ex *kernel.Exec, txn *Transaction)

// Service is a registered Binder endpoint.
type Service struct {
	Name    string
	Proc    *kernel.Process
	Handler Handler

	// Owner carries the server object behind the service, for packages
	// that need to map a looked-up service back to its implementation
	// (binder itself never touches it). Keeping the back-pointer on the
	// per-machine service — rather than in a process-global side table —
	// is what lets the suite engine run machines concurrently without
	// shared state.
	Owner any

	queue *kernel.MsgQueue
	// Calls counts served transactions, for tests.
	Calls uint64
}

// FaultHook is consulted by Call and CallOneway after the service lookup
// but before the transaction is queued; a non-nil error aborts the
// transaction with that error, after the client-side ioctl cost has been
// charged (the attempt enters the kernel before the driver rejects it).
// It is the attachment point of the scenario fault-injection plane — nil,
// the default, means transactions never fail by injection.
type FaultHook func(service string) error

// Driver is the /dev/binder device: the context manager's service registry
// plus per-process transaction buffer mappings.
type Driver struct {
	k         *kernel.Kernel
	services  map[string]*Service
	maps      map[*kernel.Process]*mem.VMA
	faultHook FaultHook

	// txnFree recycles Transaction structs. Call returns its own once the
	// reply is extracted; serveLoop returns oneway transactions nobody
	// waits on. The reply parcel escapes to the caller, so it is never
	// recycled — only the transaction shell and its embedded wait queue.
	txnFree []*Transaction
}

// getTxn hands out a recycled (or fresh) transaction with every field reset;
// the embedded reply queue keeps its waiter backing array across reuses.
func (d *Driver) getTxn(code int32, data *Parcel, sender *kernel.Thread, oneway bool) *Transaction {
	var txn *Transaction
	if n := len(d.txnFree); n > 0 {
		txn = d.txnFree[n-1]
		d.txnFree[n-1] = nil
		d.txnFree = d.txnFree[:n-1]
		txn.Reply = nil
		txn.done = false
		txn.aborted = false
	} else {
		txn = &Transaction{}
	}
	txn.Code = code
	txn.Data = data
	txn.sender = sender
	txn.oneway = oneway
	d.k.InitWaitQueue(&txn.wq, "binder.reply")
	return txn
}

func (d *Driver) putTxn(txn *Transaction) {
	txn.Data = nil
	txn.Reply = nil
	txn.sender = nil
	d.txnFree = append(d.txnFree, txn)
}

// SetFaultHook installs (or, with nil, removes) the driver's fault hook.
func (d *Driver) SetFaultHook(h FaultHook) { d.faultHook = h }

// NewDriver creates the device. A real system has exactly one; tests may
// make more.
func NewDriver(k *kernel.Kernel) *Driver {
	return &Driver{
		k:        k,
		services: make(map[string]*Service),
		maps:     make(map[*kernel.Process]*mem.VMA),
	}
}

// bufferFor lazily maps the process's /dev/binder transaction buffer. The
// region name contributes to the paper's "other" data-region census.
func (d *Driver) bufferFor(p *kernel.Process) *mem.VMA {
	if v, ok := d.maps[p]; ok {
		return v
	}
	v := p.AS.MapAnywhere(mem.MmapBase, binderMapSize, "/dev/binder",
		mem.PermRead, mem.ClassDevice)
	d.maps[p] = v
	return v
}

// Register installs a service hosted by proc with nThreads binder pool
// threads and returns it. Thread names follow Android's "Binder Thread #N"
// convention; they all account to the "Binder Thread" group.
func (d *Driver) Register(proc *kernel.Process, name string, nThreads int, h Handler) *Service {
	if _, dup := d.services[name]; dup {
		panic(fmt.Sprintf("binder: duplicate service %q", name))
	}
	s := &Service{
		Name:    name,
		Proc:    proc,
		Handler: h,
		queue:   d.k.NewMsgQueue("binder." + name),
	}
	d.services[name] = s
	d.bufferFor(proc)
	for i := 0; i < nThreads; i++ {
		d.k.SpawnThread(proc, poolThreadName(i), "Binder Thread", func(ex *kernel.Exec) {
			d.serveLoop(ex, s)
		})
	}
	return s
}

// binderThreadNames covers the pool sizes every service actually uses, so
// registering a service formats no thread names; Sprintf only runs for
// an out-of-range (test-sized) pool.
var binderThreadNames = [...]string{
	"Binder Thread #1", "Binder Thread #2", "Binder Thread #3",
	"Binder Thread #4", "Binder Thread #5", "Binder Thread #6",
	"Binder Thread #7", "Binder Thread #8",
}

func poolThreadName(i int) string {
	if i < len(binderThreadNames) {
		return binderThreadNames[i]
	}
	return fmt.Sprintf("Binder Thread #%d", i+1)
}

// Lookup finds a registered service.
func (d *Driver) Lookup(name string) (*Service, bool) {
	s, ok := d.services[name]
	return s, ok
}

// Unregister removes a service from the context manager, as happens when its
// hosting process dies. Killing the service's binder pool threads is the
// caller's job (they belong to the dead process); once the name is free a
// relaunched process may Register it again. Unregistering an unknown name is
// a no-op.
func (d *Driver) Unregister(name string) {
	delete(d.services, name)
}

// Sender reports the thread that issued the transaction — the moral
// equivalent of binder_transaction_data's sender_pid: services use it to
// attribute sessions to their client process (and to tear them down when
// that process dies).
func (t *Transaction) Sender() *kernel.Thread { return t.sender }

func (d *Driver) serveLoop(ex *kernel.Exec, s *Service) {
	buf := d.bufferFor(s.Proc)
	for {
		txn := ex.Recv(s.queue).(*Transaction)
		// Kernel copies the parcel into this process's binder buffer;
		// the service thread then reads it out.
		ex.Syscall(ioctlFetch/2, ioctlData/2)
		ex.InCode(kernelText(s.Proc), func() {
			ex.Do(kernel.Work{Fetch: 2, Writes: 1, Data: buf}, txn.Data.Words())
		})
		ex.Read(buf, txn.Data.Words())
		s.Handler(ex, txn)
		// Reply copy back through the kernel.
		reply := txn.Reply
		if reply == nil {
			reply = NewParcel()
			txn.Reply = reply
		}
		ex.Syscall(ioctlFetch/2, ioctlData/2)
		txn.done = true
		txn.wq.WakeAll()
		s.Calls++
		if txn.oneway {
			// No client will ever read this transaction; recycle it here.
			d.putTxn(txn)
		}
	}
}

// Call performs a synchronous transaction from the calling thread to the
// named service, blocking until the reply arrives. It returns the reply
// parcel (never nil).
func (d *Driver) Call(ex *kernel.Exec, service string, code int32, data *Parcel) (*Parcel, error) {
	s, ok := d.services[service]
	if !ok {
		return nil, fmt.Errorf("binder: no service %q", service)
	}
	if data == nil {
		data = NewParcel()
	}
	buf := d.bufferFor(ex.P)
	// Client-side ioctl: marshal the parcel out of this process.
	ex.Syscall(ioctlFetch, ioctlData)
	ex.Read(buf, data.Words())
	if d.faultHook != nil {
		if ferr := d.faultHook(service); ferr != nil {
			return nil, ferr
		}
	}
	txn := d.getTxn(code, data, ex.T, false)
	ex.Send(s.queue, txn)
	for !txn.done {
		ex.WaitFree(&txn.wq)
	}
	if txn.aborted {
		// DEAD_REPLY: the service died with this transaction still queued.
		ex.Syscall(ioctlFetch/3, ioctlData/3)
		d.putTxn(txn)
		return nil, fmt.Errorf("binder: transaction to %q aborted: service died", service)
	}
	// Reply lands in the client's binder buffer and is read out.
	ex.Syscall(ioctlFetch/3, ioctlData/3)
	ex.Write(buf, txn.Reply.Words())
	ex.Read(buf, txn.Reply.Words())
	reply := txn.Reply
	reply.Rewind()
	// The reply escapes to the caller; the transaction shell does not.
	d.putTxn(txn)
	return reply, nil
}

// CallOneway performs an asynchronous (TF_ONE_WAY) transaction: the parcel
// is marshaled and queued to the service, and the caller continues without
// waiting for a reply. The framework's fault-injection pings use it so a
// transaction aimed at a crashing service can never wedge the sender; the
// fault hook applies exactly as in Call.
func (d *Driver) CallOneway(ex *kernel.Exec, service string, code int32, data *Parcel) error {
	s, ok := d.services[service]
	if !ok {
		return fmt.Errorf("binder: no service %q", service)
	}
	if data == nil {
		data = NewParcel()
	}
	buf := d.bufferFor(ex.P)
	ex.Syscall(ioctlFetch, ioctlData)
	ex.Read(buf, data.Words())
	if d.faultHook != nil {
		if ferr := d.faultHook(service); ferr != nil {
			return ferr
		}
	}
	txn := d.getTxn(code, data, ex.T, true)
	ex.Send(s.queue, txn)
	return nil
}

// AbortPending completes every queued-but-unserved transaction of a dead
// service with an error, waking the senders — binder's DEAD_REPLY path.
// Callers kill the service's process (and its binder pool) first;
// AbortPending then releases any client that had already queued a
// transaction, while later calls fail at lookup once the name is
// unregistered. It reports how many transactions were aborted.
func (d *Driver) AbortPending(s *Service) int {
	n := 0
	for {
		raw, ok := s.queue.TryRecv()
		if !ok {
			break
		}
		txn := raw.(*Transaction)
		txn.aborted = true
		txn.done = true
		txn.wq.WakeAll()
		if txn.oneway {
			d.putTxn(txn)
		}
		n++
	}
	return n
}

// kernelText resolves the kernel region of p (every process maps one).
func kernelText(p *kernel.Process) *mem.VMA {
	v := p.AS.FindByName(mem.RegionKernel)
	if v == nil {
		panic("binder: process has no kernel region")
	}
	return v
}
