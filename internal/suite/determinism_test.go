// Determinism regression harness: the same plan executed serially and on an
// 8-worker pool must produce bit-identical ordered results — per-benchmark
// attributed counters, census counts, and SPEC checksums. This is the
// guarantee that makes parallel sweeps trustworthy measurement rather than
// just fast measurement.
package suite_test

import (
	"reflect"
	"testing"

	"agave/internal/core"
	"agave/internal/sim"
	"agave/internal/suite"
)

// determinismPlan crosses 3 Agave workloads + 2 SPEC baselines + 4 multi-app
// scenarios with 2 seeds and the full ablation sweep: 9 × 2 × 3 = 54 runs,
// above the 25-run bar the engine must hold the guarantee at. The scenario
// axis is deliberately the hostile set: concurrent live apps (social-burst)
// and kill/relaunch churn (app-churn) are where scheduling nondeterminism
// would surface first, and the two pressure scenarios (memory-storm,
// cached-app-eviction) add emergent lowmemorykiller kills and onTrimMemory
// traffic — system-initiated events that must still replay bit-identically.
func determinismPlan() suite.Plan {
	return suite.Plan{
		Benchmarks: []string{
			"frozenbubble.main", // Java game (JIT-sensitive)
			"gallery.mp4.view",  // media stack, mediaserver-dominant
			"pm.apk.view",       // install workload, dexopt
			"401.bzip2",         // SPEC baseline
			"462.libquantum",    // SPEC baseline
		},
		Scenarios: []string{
			"social-burst",        // 4 concurrently-live apps
			"app-churn",           // kill/relaunch lifecycle stress
			"memory-storm",        // emergent lowmemorykiller kills
			"cached-app-eviction", // trim rescue + LRU eviction
		},
		Seeds:     []uint64{1, 7},
		Ablations: suite.DefaultAblations,
	}
}

func quickCfg() core.Config {
	cfg := core.DefaultConfig()
	cfg.Duration = 150 * sim.Millisecond
	cfg.Warmup = 100 * sim.Millisecond
	return cfg
}

func TestParallelSweepBitIdenticalToSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("42-run sweep")
	}
	plan := determinismPlan()
	if plan.Size() < 25 {
		t.Fatalf("plan has %d runs, determinism bar is >= 25", plan.Size())
	}
	cfg := quickCfg()
	serial, err := core.RunPlan(cfg, plan, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := core.RunPlan(cfg, plan, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != plan.Size() || len(parallel) != plan.Size() {
		t.Fatalf("run counts: serial %d, parallel %d, want %d", len(serial), len(parallel), plan.Size())
	}
	for i := range serial {
		s, p := serial[i], parallel[i]
		name := s.Spec.String()
		if p.Spec != s.Spec {
			t.Fatalf("run %d: spec order diverged: serial %s, parallel %s", i, s.Spec, p.Spec)
		}
		sr, pr := s.Result, p.Result
		if sr.Benchmark != pr.Benchmark || sr.IsSPEC != pr.IsSPEC {
			t.Fatalf("%s: identity diverged", name)
		}
		if sr.Processes != pr.Processes || sr.Threads != pr.Threads ||
			sr.CodeRegions != pr.CodeRegions || sr.DataRegions != pr.DataRegions {
			t.Errorf("%s: census diverged: serial %d/%d/%d/%d, parallel %d/%d/%d/%d",
				name, sr.Processes, sr.Threads, sr.CodeRegions, sr.DataRegions,
				pr.Processes, pr.Threads, pr.CodeRegions, pr.DataRegions)
		}
		if sr.Checksum != pr.Checksum {
			t.Errorf("%s: SPEC checksum diverged: %#x vs %#x", name, sr.Checksum, pr.Checksum)
		}
		if sf, pf := sr.Stats.Fingerprint(), pr.Stats.Fingerprint(); sf != pf {
			t.Errorf("%s: counter fingerprint diverged: %#x vs %#x", name, sf, pf)
		}
		// Fingerprints hash the canonical entry list; compare the lists
		// directly too so a hash collision can never mask a divergence.
		if !reflect.DeepEqual(sr.Stats.Entries(), pr.Stats.Entries()) {
			t.Errorf("%s: attributed counter matrices diverged", name)
		}
	}
}

// TestRunSuiteParallelMatchesRunSuite pins the public-API contract: the
// parallel entry point returns the same results slice as the historical
// serial one.
func TestRunSuiteParallelMatchesRunSuite(t *testing.T) {
	names := []string{"countdown.main", "aard.main", "429.mcf"}
	cfg := quickCfg()
	serial, err := core.RunSuite(cfg, names...)
	if err != nil {
		t.Fatal(err)
	}
	par, err := core.RunSuiteParallel(cfg, 4, names...)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(par) {
		t.Fatalf("lengths diverged: %d vs %d", len(serial), len(par))
	}
	for i := range serial {
		if serial[i].Benchmark != par[i].Benchmark {
			t.Fatalf("order diverged at %d: %s vs %s", i, serial[i].Benchmark, par[i].Benchmark)
		}
		if serial[i].Stats.Fingerprint() != par[i].Stats.Fingerprint() {
			t.Fatalf("%s: stats diverged between RunSuite and RunSuiteParallel", serial[i].Benchmark)
		}
	}
}

// TestAblationSpecsChangeBehavior guards against the matrix silently running
// the baseline config for every cell: the nojit ablation must actually
// change the counter matrix of a JIT-heavy workload.
func TestAblationSpecsChangeBehavior(t *testing.T) {
	plan := suite.Plan{
		Benchmarks: []string{"frozenbubble.main"},
		Seeds:      []uint64{1},
		Ablations:  []suite.Ablation{suite.Baseline, {Name: "nojit", DisableJIT: true}},
	}
	outs, err := core.RunPlan(quickCfg(), plan, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 2 {
		t.Fatalf("got %d outputs, want 2", len(outs))
	}
	if outs[0].Result.Stats.Fingerprint() == outs[1].Result.Stats.Fingerprint() {
		t.Fatal("nojit ablation produced bit-identical stats to baseline")
	}
}

func TestRunPlanUnknownBenchmark(t *testing.T) {
	plan := suite.Plan{Benchmarks: []string{"frozenbubble.main", "no.such.bench"}}
	_, err := core.RunPlan(quickCfg(), plan, 4)
	if err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestRunPlanUnknownScenario(t *testing.T) {
	plan := suite.Plan{Scenarios: []string{"no-such-session"}}
	_, err := core.RunPlan(quickCfg(), plan, 4)
	if err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

// TestScenarioSpecsExpandAfterBenchmarks pins the plan order contract:
// benchmarks first, then scenarios, each crossed with every seed and
// ablation, with the scenario bit set and the "scenario:" display prefix.
func TestScenarioSpecsExpandAfterBenchmarks(t *testing.T) {
	plan := suite.Plan{
		Benchmarks: []string{"countdown.main"},
		Scenarios:  []string{"commute"},
		Seeds:      []uint64{1, 2},
	}
	specs := plan.Specs()
	if len(specs) != 4 || plan.Size() != 4 {
		t.Fatalf("expanded %d specs (Size %d), want 4", len(specs), plan.Size())
	}
	for i, want := range []struct {
		name     string
		scenario bool
	}{
		{"countdown.main", false}, {"countdown.main", false},
		{"commute", true}, {"commute", true},
	} {
		if specs[i].Benchmark != want.name || specs[i].Scenario != want.scenario {
			t.Fatalf("spec %d = %+v, want %s scenario=%v", i, specs[i], want.name, want.scenario)
		}
	}
	if got := specs[3].UnitName(); got != "scenario:commute" {
		t.Fatalf("UnitName = %q", got)
	}
}
