// Determinism regression harness: the same plan executed serially and on an
// 8-worker pool must produce bit-identical ordered results — per-benchmark
// attributed counters, census counts, and SPEC checksums. This is the
// guarantee that makes parallel sweeps trustworthy measurement rather than
// just fast measurement.
package suite_test

import (
	"path/filepath"
	"reflect"
	"testing"

	"agave/internal/core"
	"agave/internal/scenario"
	"agave/internal/sim"
	"agave/internal/suite"
)

// determinismPlan crosses 3 Agave workloads + 2 SPEC baselines + 7 multi-app
// scenarios with 2 seeds and the full ablation sweep: 12 × 2 × 3 = 72 runs,
// above the 25-run bar the engine must hold the guarantee at. The scenario
// axis is deliberately the hostile set: concurrent live apps (social-burst)
// and kill/relaunch churn (app-churn) are where scheduling nondeterminism
// would surface first, the two pressure scenarios (memory-storm,
// cached-app-eviction) add emergent lowmemorykiller kills and onTrimMemory
// traffic, arcade-rally pushes input events through the InputDispatcher
// with gestures racing process kills — system-initiated events and
// drop accounting that must still replay bit-identically — and the two
// chaos scenarios (binder-storm, mediaserver-meltdown) drive the fault
// injection plane: armed binder failures, service crash/restart cycles, and
// mediaserver kills with session adoption, all of which must land at the
// same simulated instants under any worker count.
func determinismPlan() suite.Plan {
	return suite.Plan{
		Benchmarks: []string{
			"frozenbubble.main", // Java game (JIT-sensitive)
			"gallery.mp4.view",  // media stack, mediaserver-dominant
			"pm.apk.view",       // install workload, dexopt
			"401.bzip2",         // SPEC baseline
			"462.libquantum",    // SPEC baseline
		},
		Scenarios: []string{
			"social-burst",         // 4 concurrently-live apps
			"app-churn",            // kill/relaunch lifecycle stress
			"memory-storm",         // emergent lowmemorykiller kills
			"cached-app-eviction",  // trim rescue + LRU eviction
			"arcade-rally",         // InputDispatcher traffic + mid-kill drops
			"binder-storm",         // binder faults + corrupt parcels + crash/restart
			"mediaserver-meltdown", // mediaserver kills + session adoption
		},
		Seeds:     []uint64{1, 7},
		Ablations: suite.DefaultAblations,
	}
}

func quickCfg() core.Config {
	cfg := core.DefaultConfig()
	cfg.Duration = 150 * sim.Millisecond
	cfg.Warmup = 100 * sim.Millisecond
	return cfg
}

func TestParallelSweepBitIdenticalToSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("72-run sweep")
	}
	plan := determinismPlan()
	if plan.Size() < 25 {
		t.Fatalf("plan has %d runs, determinism bar is >= 25", plan.Size())
	}
	cfg := quickCfg()
	serial, err := core.RunPlan(cfg, plan, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := core.RunPlan(cfg, plan, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != plan.Size() || len(parallel) != plan.Size() {
		t.Fatalf("run counts: serial %d, parallel %d, want %d", len(serial), len(parallel), plan.Size())
	}
	for i := range serial {
		s, p := serial[i], parallel[i]
		name := s.Spec.String()
		if p.Spec != s.Spec {
			t.Fatalf("run %d: spec order diverged: serial %s, parallel %s", i, s.Spec, p.Spec)
		}
		sr, pr := s.Result, p.Result
		if sr.Benchmark != pr.Benchmark || sr.IsSPEC != pr.IsSPEC {
			t.Fatalf("%s: identity diverged", name)
		}
		if sr.Processes != pr.Processes || sr.Threads != pr.Threads ||
			sr.CodeRegions != pr.CodeRegions || sr.DataRegions != pr.DataRegions {
			t.Errorf("%s: census diverged: serial %d/%d/%d/%d, parallel %d/%d/%d/%d",
				name, sr.Processes, sr.Threads, sr.CodeRegions, sr.DataRegions,
				pr.Processes, pr.Threads, pr.CodeRegions, pr.DataRegions)
		}
		if sr.Checksum != pr.Checksum {
			t.Errorf("%s: SPEC checksum diverged: %#x vs %#x", name, sr.Checksum, pr.Checksum)
		}
		if sf, pf := sr.Stats.Fingerprint(), pr.Stats.Fingerprint(); sf != pf {
			t.Errorf("%s: counter fingerprint diverged: %#x vs %#x", name, sf, pf)
		}
		// Fingerprints hash the canonical entry list; compare the lists
		// directly too so a hash collision can never mask a divergence.
		if !reflect.DeepEqual(sr.Stats.Entries(), pr.Stats.Entries()) {
			t.Errorf("%s: attributed counter matrices diverged", name)
		}
	}
}

// TestAdHocScenarioSweepBitIdenticalToSerial extends the determinism
// guarantee to the two scenario sources that bypass the bundled registry:
// documents decoded from committed scenario files and generator output
// (including a 10-app session, the scale bar, a pressure-knob session with
// emergent lowmemorykiller activity, and a fault-knob session driving the
// injection plane). Same plan, same seeds: the 8-worker sweep must be
// bit-identical to the serial one, counter matrix and census included,
// exactly as for bundled units.
func TestAdHocScenarioSweepBitIdenticalToSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run ad-hoc scenario sweep")
	}
	fromFile, err := scenario.FromFile(filepath.Join("..", "..", "testdata", "scenarios", "social-burst.json"))
	if err != nil {
		t.Fatal(err)
	}
	plan := suite.Plan{
		ScenarioSet: []*scenario.Scenario{
			fromFile,
			scenario.Generate(scenario.GenConfig{Seed: 3, Apps: 10}),
			scenario.Generate(scenario.GenConfig{Seed: 4, Apps: 5, Events: 30, Pressure: 2}),
			scenario.Generate(scenario.GenConfig{Seed: 5, Apps: 4, Events: 16, Inputs: 24}),
			scenario.Generate(scenario.GenConfig{Seed: 6, Apps: 4, Events: 16, Faults: 10}),
		},
		Seeds: []uint64{1, 7},
	}
	cfg := quickCfg()
	serial, err := core.RunPlan(cfg, plan, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := core.RunPlan(cfg, plan, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != plan.Size() || len(parallel) != plan.Size() {
		t.Fatalf("run counts: serial %d, parallel %d, want %d", len(serial), len(parallel), plan.Size())
	}
	for i := range serial {
		s, p := serial[i], parallel[i]
		if p.Spec != s.Spec {
			t.Fatalf("run %d: spec order diverged: serial %s, parallel %s", i, s.Spec, p.Spec)
		}
		name := s.Spec.String()
		sr, pr := s.Result, p.Result
		if sr.Session == nil || pr.Session == nil {
			t.Fatalf("%s: ad-hoc scenario run carries no session result", name)
		}
		if sr.Session.Source == "" {
			t.Errorf("%s: ad-hoc scenario run carries no provenance", name)
		}
		if sf, pf := sr.Stats.Fingerprint(), pr.Stats.Fingerprint(); sf != pf {
			t.Errorf("%s: counter fingerprint diverged: %#x vs %#x", name, sf, pf)
		}
		if !reflect.DeepEqual(sr.Stats.Entries(), pr.Stats.Entries()) {
			t.Errorf("%s: attributed counter matrices diverged", name)
		}
		if sr.Processes != pr.Processes || sr.Threads != pr.Threads ||
			sr.LiveProcesses != pr.LiveProcesses {
			t.Errorf("%s: census diverged", name)
		}
		if !reflect.DeepEqual(sr.Session.LMKVictims, pr.Session.LMKVictims) ||
			sr.Session.Trims != pr.Session.Trims {
			t.Errorf("%s: pressure outcome diverged: %v/%d vs %v/%d", name,
				sr.Session.LMKVictims, sr.Session.Trims, pr.Session.LMKVictims, pr.Session.Trims)
		}
		if sr.Session.InputDispatched != pr.Session.InputDispatched ||
			sr.Session.InputDropped != pr.Session.InputDropped ||
			!reflect.DeepEqual(sr.Session.InputApps, pr.Session.InputApps) {
			t.Errorf("%s: input outcome diverged: %d/%d vs %d/%d", name,
				sr.Session.InputDispatched, sr.Session.InputDropped,
				pr.Session.InputDispatched, pr.Session.InputDropped)
		}
		if sr.Session.FaultsInjected != pr.Session.FaultsInjected ||
			sr.Session.FaultsDetected != pr.Session.FaultsDetected ||
			sr.Session.FaultsRecovered != pr.Session.FaultsRecovered ||
			sr.Session.ANRs != pr.Session.ANRs {
			t.Errorf("%s: dependability outcome diverged: %d/%d/%d/%d vs %d/%d/%d/%d", name,
				sr.Session.FaultsInjected, sr.Session.FaultsDetected,
				sr.Session.FaultsRecovered, sr.Session.ANRs,
				pr.Session.FaultsInjected, pr.Session.FaultsDetected,
				pr.Session.FaultsRecovered, pr.Session.ANRs)
		}
	}
	// The 10-app generated session must actually hit the requested scale at
	// runtime, not only statically: peak live census is part of the result.
	for _, o := range serial {
		if o.Spec.Def != nil && o.Spec.Benchmark == "gen-s3-a10-e40-p0-i0-f0" && o.Result.Session.MaxLive != 10 {
			t.Errorf("10-app generated session peaked at %d live apps", o.Result.Session.MaxLive)
		}
	}
}

// TestScenarioSetSpecsExpandAfterNamedScenarios pins the extended plan
// order: benchmarks, then named scenarios, then the ad-hoc scenario set,
// with Def carried on set specs only.
func TestScenarioSetSpecsExpandAfterNamedScenarios(t *testing.T) {
	gen := scenario.Generate(scenario.GenConfig{Seed: 2, Apps: 2, Events: 6})
	plan := suite.Plan{
		Benchmarks:  []string{"countdown.main"},
		Scenarios:   []string{"commute"},
		ScenarioSet: []*scenario.Scenario{gen},
		Seeds:       []uint64{1},
	}
	specs := plan.Specs()
	if len(specs) != 3 || plan.Size() != 3 {
		t.Fatalf("expanded %d specs (Size %d), want 3", len(specs), plan.Size())
	}
	if specs[0].Scenario || specs[0].Def != nil {
		t.Fatalf("benchmark spec malformed: %+v", specs[0])
	}
	if !specs[1].Scenario || specs[1].Def != nil || specs[1].Benchmark != "commute" {
		t.Fatalf("named scenario spec malformed: %+v", specs[1])
	}
	if !specs[2].Scenario || specs[2].Def != gen || specs[2].Benchmark != gen.Name {
		t.Fatalf("scenario-set spec malformed: %+v", specs[2])
	}
	if got := specs[2].UnitName(); got != "scenario:"+gen.Name {
		t.Fatalf("UnitName = %q", got)
	}
}

// TestRunSuiteParallelMatchesRunSuite pins the public-API contract: the
// parallel entry point returns the same results slice as the historical
// serial one.
func TestRunSuiteParallelMatchesRunSuite(t *testing.T) {
	names := []string{"countdown.main", "aard.main", "429.mcf"}
	cfg := quickCfg()
	serial, err := core.RunSuite(cfg, names...)
	if err != nil {
		t.Fatal(err)
	}
	par, err := core.RunSuiteParallel(cfg, 4, names...)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(par) {
		t.Fatalf("lengths diverged: %d vs %d", len(serial), len(par))
	}
	for i := range serial {
		if serial[i].Benchmark != par[i].Benchmark {
			t.Fatalf("order diverged at %d: %s vs %s", i, serial[i].Benchmark, par[i].Benchmark)
		}
		if serial[i].Stats.Fingerprint() != par[i].Stats.Fingerprint() {
			t.Fatalf("%s: stats diverged between RunSuite and RunSuiteParallel", serial[i].Benchmark)
		}
	}
}

// TestAblationSpecsChangeBehavior guards against the matrix silently running
// the baseline config for every cell: the nojit ablation must actually
// change the counter matrix of a JIT-heavy workload.
func TestAblationSpecsChangeBehavior(t *testing.T) {
	plan := suite.Plan{
		Benchmarks: []string{"frozenbubble.main"},
		Seeds:      []uint64{1},
		Ablations:  []suite.Ablation{suite.Baseline, {Name: "nojit", DisableJIT: true}},
	}
	outs, err := core.RunPlan(quickCfg(), plan, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 2 {
		t.Fatalf("got %d outputs, want 2", len(outs))
	}
	if outs[0].Result.Stats.Fingerprint() == outs[1].Result.Stats.Fingerprint() {
		t.Fatal("nojit ablation produced bit-identical stats to baseline")
	}
}

func TestRunPlanUnknownBenchmark(t *testing.T) {
	plan := suite.Plan{Benchmarks: []string{"frozenbubble.main", "no.such.bench"}}
	_, err := core.RunPlan(quickCfg(), plan, 4)
	if err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestRunPlanUnknownScenario(t *testing.T) {
	plan := suite.Plan{Scenarios: []string{"no-such-session"}}
	_, err := core.RunPlan(quickCfg(), plan, 4)
	if err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

// TestScenarioSpecsExpandAfterBenchmarks pins the plan order contract:
// benchmarks first, then scenarios, each crossed with every seed and
// ablation, with the scenario bit set and the "scenario:" display prefix.
func TestScenarioSpecsExpandAfterBenchmarks(t *testing.T) {
	plan := suite.Plan{
		Benchmarks: []string{"countdown.main"},
		Scenarios:  []string{"commute"},
		Seeds:      []uint64{1, 2},
	}
	specs := plan.Specs()
	if len(specs) != 4 || plan.Size() != 4 {
		t.Fatalf("expanded %d specs (Size %d), want 4", len(specs), plan.Size())
	}
	for i, want := range []struct {
		name     string
		scenario bool
	}{
		{"countdown.main", false}, {"countdown.main", false},
		{"commute", true}, {"commute", true},
	} {
		if specs[i].Benchmark != want.name || specs[i].Scenario != want.scenario {
			t.Fatalf("spec %d = %+v, want %s scenario=%v", i, specs[i], want.name, want.scenario)
		}
	}
	if got := specs[3].UnitName(); got != "scenario:commute" {
		t.Fatalf("UnitName = %q", got)
	}
}
