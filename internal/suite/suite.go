// Package suite is the parallel suite-execution engine of the Agave
// reproduction. It shards benchmark runs across a bounded pool of worker
// goroutines — each run boots its own simulated machine, so runs are
// share-nothing — while preserving the determinism guarantee of serial
// execution: results are collected and emitted in plan order, bit-identical
// to a one-worker run, regardless of completion order.
//
// A sweep is expressed as a Plan: the cross product of benchmark names ×
// seeds × ablation configurations, expanded into an ordered []RunSpec. The
// generic Engine executes specs through a caller-supplied run function (the
// core package adapts core.Run; this package deliberately does not import
// core so core.RunSuite can delegate here without an import cycle) and
// reports per-run wall clock plus simulated-tick throughput. Summarize folds
// repeated-seed runs into mean/min/max aggregates via internal/stats.
package suite

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"agave/internal/scenario"
	"agave/internal/sim"
	"agave/internal/stats"
)

// Ablation is one configuration axis of a plan: a named set of overrides
// applied on top of the base run configuration. The zero value (empty name,
// no overrides) is the baseline.
type Ablation struct {
	// Name labels the ablation in reports ("base" when empty).
	Name string
	// DisableJIT turns the trace JIT off (paper ablation A1).
	DisableJIT bool
	// DirtyRectComposition switches SurfaceFlinger to composing only
	// posted surfaces (paper ablation A3).
	DirtyRectComposition bool
}

// Baseline is the no-override ablation every plan starts from.
var Baseline = Ablation{Name: "base"}

// DefaultAblations is the paper's ablation sweep: baseline, JIT off, and
// dirty-rect composition.
var DefaultAblations = []Ablation{
	Baseline,
	{Name: "nojit", DisableJIT: true},
	{Name: "dirtyrect", DirtyRectComposition: true},
}

// Label reports the ablation's display name.
func (a Ablation) Label() string {
	if a.Name == "" {
		return "base"
	}
	return a.Name
}

// Plan is a run matrix: every benchmark and every scenario is run once per
// (seed, ablation) pair. Scenarios are a first-class axis alongside
// benchmarks — a scripted multi-app session shards across the worker pool
// exactly like a single-app run, under the same bit-identity guarantee.
// Empty Seeds defaults to {1}; empty Ablations defaults to {Baseline}.
type Plan struct {
	Benchmarks []string
	// Scenarios names bundled library scenarios.
	Scenarios []string
	// ScenarioSet holds ad-hoc scenario definitions — loaded from files or
	// produced by the generator — that run as plan cells exactly like the
	// named bundled ones: crossed with every seed and ablation, under the
	// same ordered-collection determinism guarantee.
	ScenarioSet []*scenario.Scenario
	Seeds       []uint64
	Ablations   []Ablation
}

// Size reports how many runs the plan expands to.
func (p Plan) Size() int {
	units := len(p.Benchmarks) + len(p.Scenarios) + len(p.ScenarioSet)
	return units * max(len(p.Seeds), 1) * max(len(p.Ablations), 1)
}

// ScenarioNames flattens the plan's whole scenario axis — named bundled
// scenarios, then the ad-hoc set — in the same order Specs expands it.
// Report writers use this so the JSON plan header can never desynchronize
// from the run rows.
func (p Plan) ScenarioNames() []string {
	if len(p.Scenarios) == 0 && len(p.ScenarioSet) == 0 {
		return nil
	}
	names := make([]string, 0, len(p.Scenarios)+len(p.ScenarioSet))
	names = append(names, p.Scenarios...)
	for _, sc := range p.ScenarioSet {
		names = append(names, sc.Name)
	}
	return names
}

// Specs expands the plan into the deterministic run order: benchmarks
// first, then named scenarios, then the ad-hoc scenario set — each
// unit-major, then seed, then ablation. This order — not completion order —
// is the order results are collected and emitted in.
func (p Plan) Specs() []RunSpec {
	seeds := p.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{1}
	}
	ablations := p.Ablations
	if len(ablations) == 0 {
		ablations = []Ablation{Baseline}
	}
	specs := make([]RunSpec, 0, p.Size())
	add := func(name string, isScenario bool, def *scenario.Scenario) {
		for _, s := range seeds {
			for _, a := range ablations {
				specs = append(specs, RunSpec{
					Index:     len(specs),
					Benchmark: name,
					Scenario:  isScenario,
					Def:       def,
					Seed:      s,
					Ablation:  a,
				})
			}
		}
	}
	for _, b := range p.Benchmarks {
		add(b, false, nil)
	}
	for _, s := range p.Scenarios {
		add(s, true, nil)
	}
	for _, sc := range p.ScenarioSet {
		add(sc.Name, true, sc)
	}
	return specs
}

// NumShards reports how many fixed-size shards a plan of total specs slices
// into: ceil(total/size). Shard geometry is a pure function of the plan and
// the shard size — never of worker count — so the fleet executor's shard
// numbering is deterministic: shard i always covers the same plan positions
// no matter how many processes execute the sweep.
func NumShards(total, size int) int {
	if total <= 0 || size <= 0 {
		return 0
	}
	return (total + size - 1) / size
}

// ShardRange reports the half-open plan-order spec range [lo, hi) of the
// given shard: every shard covers size consecutive specs except the last,
// which covers the remainder. Panics on an out-of-range shard — the fleet
// wire protocol validates shard ids before slicing.
func ShardRange(total, size, shard int) (lo, hi int) {
	if shard < 0 || shard >= NumShards(total, size) {
		panic(fmt.Sprintf("suite: shard %d out of range (total %d, size %d)", shard, total, size))
	}
	lo = shard * size
	hi = lo + size
	if hi > total {
		hi = total
	}
	return lo, hi
}

// RunSpec identifies one run of a plan.
type RunSpec struct {
	Index int // position in plan order
	// Benchmark names the unit under run: a benchmark, or — when Scenario
	// is set — a scripted multi-app scenario.
	Benchmark string
	Scenario  bool
	// Def carries the scenario definition when the unit is an ad-hoc
	// scenario (file-loaded or generated); nil means Benchmark names a
	// bundled library scenario (or a plain benchmark).
	Def      *scenario.Scenario
	Seed     uint64
	Ablation Ablation
}

// UnitName is the spec's display name: the benchmark name, or the scenario
// name carrying a "scenario:" prefix so the two axes can never alias in
// reports and summaries.
func (s RunSpec) UnitName() string {
	if s.Scenario {
		return "scenario:" + s.Benchmark
	}
	return s.Benchmark
}

// String renders the spec as "benchmark/seed=N/ablation".
func (s RunSpec) String() string {
	return fmt.Sprintf("%s/seed=%d/%s", s.UnitName(), s.Seed, s.Ablation.Label())
}

// RunOutput is one completed run: the caller's result payload plus the
// engine's own measurements.
type RunOutput[R any] struct {
	Spec   RunSpec
	Result R
	Err    error
	// Wall is the real time the run took on its worker.
	Wall time.Duration
	// Ticks is the simulated time the run covered (as reported by the run
	// function); Ticks/Wall is the simulation throughput.
	Ticks sim.Ticks
}

// TicksPerSecond reports simulation throughput: simulated ticks per real
// second.
func (o RunOutput[R]) TicksPerSecond() float64 {
	if o.Wall <= 0 {
		return 0
	}
	return float64(o.Ticks) / o.Wall.Seconds()
}

// RunError is the first failure (in plan order) of an Execute call.
type RunError struct {
	Spec RunSpec
	Err  error
}

func (e *RunError) Error() string { return fmt.Sprintf("%s: %v", e.Spec, e.Err) }

// Unwrap exposes the underlying run error.
func (e *RunError) Unwrap() error { return e.Err }

// Engine executes run specs across a bounded worker pool. Each worker calls
// Run, which must boot a fresh simulated machine per call (runs share
// nothing); Run returns the result payload and how many simulated ticks the
// run covered.
type Engine[R any] struct {
	// Parallel bounds the worker pool; <= 0 means GOMAXPROCS. The
	// simulator is CPU-bound, so more workers than cores only adds
	// scheduler thrash — prefer the default.
	Parallel int
	// Run executes one spec. It must be safe for concurrent calls.
	Run func(RunSpec) (R, sim.Ticks, error)
	// OnResult, when non-nil, observes completed runs strictly in plan
	// order (the ordered collector buffers out-of-order completions). It
	// is called from Execute's goroutine pool; calls never overlap.
	OnResult func(RunOutput[R])
}

// Execute runs every spec and returns outputs in plan order. Workers pull
// specs in plan order, so with Parallel=1 execution is exactly the serial
// loop. If any run fails, dispatch of not-yet-started specs stops and the
// first error in plan order is returned as a *RunError alongside the outputs
// gathered so far (failed or skipped entries keep their Err / zero Result).
func (e Engine[R]) Execute(specs []RunSpec) ([]RunOutput[R], error) {
	workers := e.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(specs) {
		workers = len(specs)
	}
	outputs := make([]RunOutput[R], len(specs))
	for i, s := range specs {
		outputs[i].Spec = s
	}
	if len(specs) == 0 {
		return outputs, nil
	}

	var (
		mu     sync.Mutex
		next   int  // next spec index to dispatch
		failed bool // stop dispatching new specs after any error
		wg     sync.WaitGroup
	)
	collector := newOrderedCollector(e.OnResult, outputs)
	runOne := func(i int) bool {
		start := time.Now() //agave:allow walltime Wall is operator-facing elapsed time, reported alongside the deterministic tick count, never fed back into the simulation
		res, ticks, err := e.Run(specs[i])
		out := RunOutput[R]{
			Spec:   specs[i],
			Result: res,
			Err:    err,
			Wall:   time.Since(start), //agave:allow walltime same display-only measurement as the paired time.Now above
			Ticks:  ticks,
		}
		mu.Lock()
		outputs[i] = out
		if err != nil {
			failed = true
		}
		mu.Unlock()
		collector.done(i)
		return err == nil
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if failed || next >= len(specs) {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()
				if !runOne(i) {
					return
				}
			}
		}()
	}
	wg.Wait()

	// Workers dispatch in plan order, so every spec preceding a failed one
	// was dispatched and has completed: the first Err in output order is
	// the same error a serial run would have stopped at.
	for i := range outputs {
		if outputs[i].Err != nil {
			return outputs, &RunError{Spec: outputs[i].Spec, Err: outputs[i].Err}
		}
	}
	return outputs, nil
}

// orderedCollector re-serializes out-of-order completions: done(i) marks spec
// i complete, and the emit callback fires for each spec exactly once, in
// index order, as soon as all of its predecessors have completed.
type orderedCollector[R any] struct {
	mu      sync.Mutex
	emit    func(RunOutput[R])
	outputs []RunOutput[R]
	ready   map[int]bool
	next    int
}

func newOrderedCollector[R any](emit func(RunOutput[R]), outputs []RunOutput[R]) *orderedCollector[R] {
	return &orderedCollector[R]{emit: emit, outputs: outputs, ready: make(map[int]bool)}
}

func (c *orderedCollector[R]) done(i int) {
	if c.emit == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ready[i] = true
	for c.ready[c.next] {
		delete(c.ready, c.next)
		c.emit(c.outputs[c.next])
		c.next++
	}
}

// Summary aggregates the repeated-seed runs of one (benchmark, ablation)
// cell: every metric is folded into a mean/min/max stats.Agg across seeds.
type Summary struct {
	Benchmark string
	Ablation  string
	Seeds     []uint64
	// Wall aggregates per-run wall-clock milliseconds.
	Wall stats.Agg
	// Throughput aggregates simulated ticks per real second.
	Throughput stats.Agg
	// Metrics aggregates the caller-extracted per-run metrics.
	Metrics map[string]stats.Agg
}

// MetricNames reports the summary's metric keys in sorted order.
func (s Summary) MetricNames() []string {
	names := make([]string, 0, len(s.Metrics))
	for n := range s.Metrics {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Summarize groups outputs by (benchmark, ablation) — in first-appearance
// (plan) order — and folds each group's per-seed runs into mean/min/max
// aggregates. The metrics function extracts the scalar metrics of one result;
// failed runs are skipped.
func Summarize[R any](outputs []RunOutput[R], metrics func(R) map[string]float64) []Summary {
	type cell struct{ bench, abl string }
	index := make(map[cell]int)
	var summaries []Summary
	for _, o := range outputs {
		if o.Err != nil {
			continue
		}
		c := cell{o.Spec.UnitName(), o.Spec.Ablation.Label()}
		i, ok := index[c]
		if !ok {
			i = len(summaries)
			index[c] = i
			summaries = append(summaries, Summary{
				Benchmark: c.bench,
				Ablation:  c.abl,
				Metrics:   make(map[string]stats.Agg),
			})
		}
		s := &summaries[i]
		s.Seeds = append(s.Seeds, o.Spec.Seed)
		s.Wall.Observe(float64(o.Wall) / float64(time.Millisecond))
		s.Throughput.Observe(o.TicksPerSecond())
		for name, v := range metrics(o.Result) {
			agg := s.Metrics[name]
			agg.Observe(v)
			s.Metrics[name] = agg
		}
	}
	return summaries
}
