package suite

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"agave/internal/sim"
)

func TestPlanSpecsOrderAndDefaults(t *testing.T) {
	p := Plan{
		Benchmarks: []string{"a", "b"},
		Seeds:      []uint64{1, 2},
		Ablations:  []Ablation{Baseline, {Name: "nojit", DisableJIT: true}},
	}
	specs := p.Specs()
	if len(specs) != p.Size() || len(specs) != 8 {
		t.Fatalf("plan expanded to %d specs, want 8", len(specs))
	}
	// Benchmark-major, then seed, then ablation; indexes sequential.
	want := []string{
		"a/seed=1/base", "a/seed=1/nojit", "a/seed=2/base", "a/seed=2/nojit",
		"b/seed=1/base", "b/seed=1/nojit", "b/seed=2/base", "b/seed=2/nojit",
	}
	for i, s := range specs {
		if s.Index != i {
			t.Fatalf("spec %d has index %d", i, s.Index)
		}
		if s.String() != want[i] {
			t.Fatalf("spec %d = %s, want %s", i, s, want[i])
		}
	}

	// Empty seed and ablation axes collapse to singletons.
	defaults := Plan{Benchmarks: []string{"x"}}.Specs()
	if len(defaults) != 1 || defaults[0].Seed != 1 || defaults[0].Ablation.Label() != "base" {
		t.Fatalf("default expansion wrong: %+v", defaults)
	}
}

func TestEngineOutputsInPlanOrder(t *testing.T) {
	// Workers that finish in reverse order must not reorder outputs.
	specs := Plan{Benchmarks: []string{"b0", "b1", "b2", "b3", "b4", "b5"}}.Specs()
	eng := Engine[string]{
		Parallel: len(specs),
		Run: func(s RunSpec) (string, sim.Ticks, error) {
			time.Sleep(time.Duration(len(specs)-s.Index) * 2 * time.Millisecond)
			return "r:" + s.Benchmark, sim.Ticks(100), nil
		},
	}
	outs, err := eng.Execute(specs)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range outs {
		if o.Result != "r:"+specs[i].Benchmark {
			t.Fatalf("output %d = %q, out of plan order", i, o.Result)
		}
		if o.Ticks != 100 || o.Wall <= 0 {
			t.Fatalf("output %d missing measurements: %+v", i, o)
		}
	}
}

func TestEngineOrderedCollectorStreamsInOrder(t *testing.T) {
	specs := Plan{Benchmarks: []string{"b0", "b1", "b2", "b3", "b4", "b5", "b6", "b7"}}.Specs()
	var mu sync.Mutex
	var emitted []int
	eng := Engine[int]{
		Parallel: 4,
		Run: func(s RunSpec) (int, sim.Ticks, error) {
			time.Sleep(time.Duration((s.Index*3)%5) * time.Millisecond)
			return s.Index, 1, nil
		},
		OnResult: func(o RunOutput[int]) {
			mu.Lock()
			emitted = append(emitted, o.Spec.Index)
			mu.Unlock()
		},
	}
	if _, err := eng.Execute(specs); err != nil {
		t.Fatal(err)
	}
	if len(emitted) != len(specs) {
		t.Fatalf("collector emitted %d results, want %d", len(emitted), len(specs))
	}
	for i, idx := range emitted {
		if idx != i {
			t.Fatalf("collector emitted out of order: %v", emitted)
		}
	}
}

func TestEngineBoundsWorkers(t *testing.T) {
	const bound = 3
	var inFlight, peak atomic.Int32
	specs := make([]RunSpec, 20)
	for i := range specs {
		specs[i] = RunSpec{Index: i, Benchmark: fmt.Sprintf("b%d", i), Seed: 1}
	}
	eng := Engine[struct{}]{
		Parallel: bound,
		Run: func(s RunSpec) (struct{}, sim.Ticks, error) {
			n := inFlight.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			inFlight.Add(-1)
			return struct{}{}, 1, nil
		},
	}
	if _, err := eng.Execute(specs); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > bound {
		t.Fatalf("peak concurrency %d exceeds worker bound %d", p, bound)
	}
}

func TestEngineFirstErrorInPlanOrder(t *testing.T) {
	boom := errors.New("boom")
	specs := Plan{Benchmarks: []string{"ok0", "bad1", "ok2", "bad3", "ok4"}}.Specs()
	for _, parallel := range []int{1, 4} {
		eng := Engine[string]{
			Parallel: parallel,
			Run: func(s RunSpec) (string, sim.Ticks, error) {
				if s.Benchmark == "bad1" || s.Benchmark == "bad3" {
					return "", 0, boom
				}
				return s.Benchmark, 1, nil
			},
		}
		_, err := eng.Execute(specs)
		var re *RunError
		if !errors.As(err, &re) {
			t.Fatalf("parallel=%d: error %v is not a RunError", parallel, err)
		}
		if re.Spec.Benchmark != "bad1" {
			t.Fatalf("parallel=%d: first error at %s, want bad1", parallel, re.Spec)
		}
		if !errors.Is(err, boom) {
			t.Fatalf("parallel=%d: RunError does not unwrap to cause", parallel)
		}
	}
}

func TestEngineSerialStopsAtFirstError(t *testing.T) {
	var ran atomic.Int32
	specs := Plan{Benchmarks: []string{"a", "bad", "c", "d"}}.Specs()
	eng := Engine[struct{}]{
		Parallel: 1,
		Run: func(s RunSpec) (struct{}, sim.Ticks, error) {
			ran.Add(1)
			if s.Benchmark == "bad" {
				return struct{}{}, 0, errors.New("stop here")
			}
			return struct{}{}, 1, nil
		},
	}
	if _, err := eng.Execute(specs); err == nil {
		t.Fatal("error swallowed")
	}
	if got := ran.Load(); got != 2 {
		t.Fatalf("serial engine ran %d specs after failure, want exactly 2 (historical RunSuite behavior)", got)
	}
}

func TestEngineEmptyPlan(t *testing.T) {
	eng := Engine[int]{Run: func(RunSpec) (int, sim.Ticks, error) { return 0, 0, nil }}
	outs, err := eng.Execute(nil)
	if err != nil || len(outs) != 0 {
		t.Fatalf("empty plan: outs=%v err=%v", outs, err)
	}
}

func TestSummarizeFoldsSeeds(t *testing.T) {
	plan := Plan{
		Benchmarks: []string{"a", "b"},
		Seeds:      []uint64{1, 2, 3},
	}
	eng := Engine[float64]{
		Parallel: 2,
		Run: func(s RunSpec) (float64, sim.Ticks, error) {
			return float64(s.Seed * 10), 1000, nil
		},
	}
	outs, err := eng.Execute(plan.Specs())
	if err != nil {
		t.Fatal(err)
	}
	sums := Summarize(outs, func(v float64) map[string]float64 {
		return map[string]float64{"value": v}
	})
	if len(sums) != 2 {
		t.Fatalf("got %d summaries, want 2 (one per benchmark)", len(sums))
	}
	if sums[0].Benchmark != "a" || sums[1].Benchmark != "b" {
		t.Fatalf("summaries out of plan order: %+v", sums)
	}
	for _, s := range sums {
		if len(s.Seeds) != 3 {
			t.Fatalf("%s: folded %d seeds, want 3", s.Benchmark, len(s.Seeds))
		}
		v := s.Metrics["value"]
		if v.Mean() != 20 || v.Min() != 10 || v.Max() != 30 {
			t.Fatalf("%s: value agg = mean %.1f min %.1f max %.1f", s.Benchmark, v.Mean(), v.Min(), v.Max())
		}
		if got := s.MetricNames(); len(got) != 1 || got[0] != "value" {
			t.Fatalf("metric names = %v", got)
		}
	}
}

func TestShardGeometry(t *testing.T) {
	if got := NumShards(0, 8); got != 0 {
		t.Fatalf("NumShards(0,8) = %d, want 0", got)
	}
	if got := NumShards(17, 8); got != 3 {
		t.Fatalf("NumShards(17,8) = %d, want 3", got)
	}
	if got := NumShards(16, 8); got != 2 {
		t.Fatalf("NumShards(16,8) = %d, want 2", got)
	}
	// Shards tile the plan exactly: consecutive, non-overlapping, covering.
	total, size := 17, 8
	next := 0
	for s := 0; s < NumShards(total, size); s++ {
		lo, hi := ShardRange(total, size, s)
		if lo != next || hi <= lo {
			t.Fatalf("shard %d = [%d,%d), want lo %d", s, lo, hi, next)
		}
		if hi-lo > size {
			t.Fatalf("shard %d covers %d specs, max %d", s, hi-lo, size)
		}
		next = hi
	}
	if next != total {
		t.Fatalf("shards cover %d specs, want %d", next, total)
	}
	for _, bad := range []int{-1, NumShards(total, size)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("ShardRange(%d,%d,%d) did not panic", total, size, bad)
				}
			}()
			ShardRange(total, size, bad)
		}()
	}
}
