package android

import (
	"agave/internal/binder"
	"agave/internal/dalvik"
	"agave/internal/dex"
	"agave/internal/gfx"
	"agave/internal/kernel"
	"agave/internal/loader"
	"agave/internal/media"
	"agave/internal/mem"
	"agave/internal/sim"
)

// System is the booted Android stack: every resident process a Gingerbread
// device runs before any application starts. The paper's Figures 3 and 4
// decompose references over exactly this process population (plus the
// benchmark's own processes).
type System struct {
	K      *kernel.Kernel
	Binder *binder.Driver

	Zygote   *kernel.Process
	ZygoteVM *dalvik.VM
	zygoteLM *loader.LinkMap

	SystemServer   *kernel.Process
	SystemServerVM *dalvik.VM

	Compositor *gfx.Compositor
	Media      *media.Server

	// Input is the input-event pipeline: Inject* queues synthetic events,
	// the InputDispatcher thread in system_server routes them to the
	// focused app's looper, and InputStats reports the outcome.
	Input *InputDispatcher

	// Inject is the fault-injection plane and dependability scoreboard:
	// armed binder faults, crash/recovery bookkeeping, and the ANR count
	// the AnrWatchdog accumulates.
	Inject *Injector

	// FrameworkFile is the synthetic framework bytecode zygote preloads;
	// its image lives in the "framework.jar@classes.dex" mapping.
	FrameworkFile *dex.File

	Launcher *App
	SystemUI *App

	// launcherHidden is sticky: a fullscreen app may request hiding
	// before the launcher has finished creating its surface.
	launcherHidden bool

	// ActivityManager process records: every app ever created, the
	// current foreground activity, and the cached-app LRU (most recent
	// first) the oom_adj ladder is computed from.
	amApps       []*App
	amForeground *App
	amCached     []*App

	// servicesDex is system_server's framework image, kept for the
	// memory-management threads' bookkeeping work.
	servicesDex *dalvik.LoadedDex

	// trims counts onTrimMemory callbacks delivered to apps.
	trims int
}

// Trims reports how many onTrimMemory callbacks the ActivityManager has
// delivered this run.
func (sys *System) Trims() int { return sys.trims }

// nativeDaemons is the resident daemon population of a Gingerbread device;
// together with init/servicemanager/zygote/system_server/mediaserver and the
// kernel threads, it brings the boot-time process census to the paper's
// ~20-process floor.
var nativeDaemons = []struct {
	name     string
	interval sim.Ticks
	burst    uint64
}{
	{"rild", 200 * sim.Millisecond, 1800},
	{"vold", 400 * sim.Millisecond, 1200},
	{"netd", 300 * sim.Millisecond, 1400},
	{"installd", 500 * sim.Millisecond, 800},
	{"debuggerd", 800 * sim.Millisecond, 400},
	{"adbd", 250 * sim.Millisecond, 1000},
	{"keystore", 900 * sim.Millisecond, 500},
	{"dbus-daemon", 350 * sim.Millisecond, 900},
	{"akmd", 150 * sim.Millisecond, 1100},
}

// Boot brings the stack up: kernel threads already exist (swapper,
// ata_sff/0); Boot adds init, the native daemons, servicemanager, zygote
// (with the preloaded framework), system_server (hosting SurfaceFlinger and
// the core services), mediaserver, and the launcher and systemui apps.
func Boot(k *kernel.Kernel) *System {
	sys := &System{K: k, Binder: binder.NewDriver(k)}
	sys.Input = newInputDispatcher(sys)
	sys.Inject = newInjector(sys)
	sys.Binder.SetFaultHook(sys.Inject.faultHook)

	// init and the native daemon population.
	initP := k.NewProcess("init", 96*loader.KB, 256*loader.KB)
	heartbeat(initP, 500*sim.Millisecond, 1500)
	for _, d := range nativeDaemons {
		p := k.NewProcess(d.name, 128*loader.KB, 256*loader.KB)
		heartbeat(p, d.interval, d.burst)
	}

	// servicemanager: the Binder context manager.
	smP := k.NewProcess("servicemanager", 32*loader.KB, 64*loader.KB)
	heartbeat(smP, 400*sim.Millisecond, 600)

	// Zygote: preloaded library set + Dalvik VM + framework bytecode.
	sys.Zygote = k.NewProcess("zygote", 64*loader.KB, 2<<20)
	sys.zygoteLM = loader.Load(sys.Zygote.AS, sys.Zygote.Layout, loader.BaseSet())
	sys.ZygoteVM = dalvik.Attach(sys.Zygote, sys.zygoteLM, false)
	sys.FrameworkFile = dalvik.StockDex("framework.jar")
	k.SpawnThread(sys.Zygote, "main", "main", func(ex *kernel.Exec) {
		ex.PushCode(sys.Zygote.Layout.Text)
		fw := sys.ZygoteVM.Adopt(sys.FrameworkFile, sys.zygoteLM.VMA("framework.jar@classes.dex"))
		// Preload classes: populate LinearAlloc and warm the heap, the
		// work `zygote --start-system-server` does at boot.
		ex.Do(kernel.Work{Fetch: 2, Writes: 1, Data: sys.ZygoteVM.Linear}, 80_000)
		sys.ZygoteVM.Exec(ex, fw, "sumLoop", 500)
		sys.ZygoteVM.Exec(ex, fw, "fillArray", 400)
		// Zygote then parks in its fork-request select loop.
		ex.Wait(k.NewWaitQueue("zygote.forkreq"))
	})

	// system_server: forked from zygote, hosting SurfaceFlinger and the
	// core services.
	sys.SystemServer = k.Fork(sys.Zygote, "system_server")
	ssLM := loader.Rebind(sys.SystemServer.AS, sys.SystemServer.Layout, loader.SystemServerSet())
	sys.SystemServerVM = dalvik.ForkVM(sys.ZygoteVM, sys.SystemServer, true)
	sys.Compositor = gfx.NewCompositor(sys.SystemServer, ssLM)
	sys.startCoreServices(ssLM)

	// mediaserver: a native (non-zygote) service process.
	sys.startMediaserver()

	// Home screen and status bar.
	sys.Launcher = sys.NewApp(AppConfig{
		Process: "ndroid.launcher", Label: "launcher",
		Fullscreen: true, Foreground: true, AsyncWorkers: 2,
	})
	sys.Launcher.Start(launcherMain)
	sys.SystemUI = sys.NewApp(AppConfig{
		Process: "ndroid.systemui", Label: "systemui",
		Foreground: true, AsyncWorkers: 1, StatusBar: true,
	})
	sys.SystemUI.Start(systemUIMain)
	if k.LMKEnabled() {
		sys.startMemoryManagement()
	}
	return sys
}

// startMediaserver boots (or, after a CrashMediaserver, reboots) the
// mediaserver process: a fresh kernel process, the media library set, the
// media.Server with its "media.player" registration, and the Open lookup
// mapping. The sequence charges no simulated work, so no other thread can
// observe a half-started server.
func (sys *System) startMediaserver() {
	msP := sys.K.NewProcess("mediaserver", 64*loader.KB, 1<<20)
	msLM := loader.Load(msP.AS, msP.Layout, loader.MediaServerSet())
	sys.Media = media.NewServer(msP, msLM, sys.Binder, sys.Compositor)
	media.RegisterLookup(sys.Binder, sys.Media)
}

// startCoreServices registers the Binder services system_server exposes and
// its resident service threads.
func (sys *System) startCoreServices(ssLM *loader.LinkMap) {
	k := sys.K
	ss := sys.SystemServer
	vm := sys.SystemServerVM
	servicesDex := vm.Adopt(dalvik.StockDex("services.jar"), ssLM.VMA("services.jar@classes.dex"))
	sys.servicesDex = servicesDex

	frameworkCall := func(cost uint64) binder.Handler {
		return func(ex *kernel.Exec, txn *binder.Transaction) {
			vm.InterpBulk(ex, servicesDex, cost, false)
			txn.Reply = binder.NewParcel()
			txn.Reply.WriteInt32(0)
		}
	}
	sys.Binder.Register(ss, "activity", 2, frameworkCall(4000))
	sys.Binder.Register(ss, "window", 2, frameworkCall(2500))
	sys.Binder.Register(ss, "package", 2, frameworkCall(6000))

	// Resident service threads: periodic bookkeeping in framework
	// bytecode. These are the system_server threads beyond
	// SurfaceFlinger and the binder pool.
	service := func(name string, period sim.Ticks, cost uint64) {
		k.SpawnThread(ss, name, name, func(ex *kernel.Exec) {
			ex.PushCode(ss.Layout.Text)
			for {
				vm.InterpBulk(ex, servicesDex, cost, false)
				ex.SleepFor(period)
			}
		})
	}
	service("ActivityManager", 120*sim.Millisecond, 2200)
	service("WindowManager", 90*sim.Millisecond, 1800)
	service("PackageManager", 600*sim.Millisecond, 1200)
	service("PowerManagerSer", 450*sim.Millisecond, 500)
	service("android.server.", 200*sim.Millisecond, 900)

	// InputDispatcher: unlike the periodic bookkeeping services it is
	// event-driven — it parks on the input channel and wakes per injected
	// event to resolve the focused window and post into the winning app's
	// looper, charging the dispatch as framework bytecode in system_server.
	k.SpawnThread(ss, "InputDispatcher", "InputDispatcher", func(ex *kernel.Exec) {
		ex.PushCode(ss.Layout.Text)
		for {
			ev := ex.Recv(sys.Input.q).(*InputEvent)
			vm.InterpBulk(ex, servicesDex, 700, false)
			sys.Input.route(ex, ev)
		}
	})

	// AnrWatchdog: the ActivityManager's not-responding detector. Every
	// poll period it walks the process records and ages the head message
	// of each resumed UI app's main looper; one blocked past the dispatch
	// timeout raises an ANR, latched per episode (see Injector.scanForANRs
	// for the predicate and the false-positive reasoning).
	k.SpawnThread(ss, "AnrWatchdog", "AnrWatchdog", func(ex *kernel.Exec) {
		ex.PushCode(ss.Layout.Text)
		for {
			ex.SleepFor(anrPollPeriod)
			sys.Inject.scanForANRs(ex)
		}
	})
}

// launcherMain draws the wallpaper/icon grid once, then idles with a slow
// refresh — it stays behind the foreground application.
func launcherMain(ex *kernel.Exec, a *App) {
	a.EnsureSurface(ex)
	if a.Sys.launcherHidden {
		a.Surface.Visible = false
	}
	a.Canvas.Blit(ex, gfx.ScreenW, gfx.ScreenH) // wallpaper
	for i := 0; i < 16; i++ {
		a.Canvas.Blit(ex, 96, 96) // icon grid
	}
	a.Surface.Post(ex, a.Sys.Compositor)
	for {
		a.VM.InterpBulk(ex, a.FrameworkDex, 1500, false)
		ex.SleepFor(500 * sim.Millisecond)
	}
}

// systemUIMain owns the status bar: a 1 Hz clock redraw keeps a trickle of
// composition alive even when the foreground app is idle or backgrounded.
func systemUIMain(ex *kernel.Exec, a *App) {
	a.EnsureSurface(ex)
	a.Canvas.FillRect(ex, gfx.ScreenW, statusBarH)
	a.Surface.Post(ex, a.Sys.Compositor)
	for {
		a.VM.InterpBulk(ex, a.FrameworkDex, 800, false)
		a.Canvas.FillRect(ex, 120, statusBarH)
		a.Canvas.Text(ex, 5) // clock digits
		a.Surface.Post(ex, a.Sys.Compositor)
		ex.SleepFor(1 * sim.Second)
	}
}

const statusBarH = 38

// HideLauncher removes the launcher surface from composition (a fullscreen
// app is in front). It is sticky: if the launcher has not created its
// surface yet, the surface comes up hidden.
func (sys *System) HideLauncher() {
	sys.launcherHidden = true
	if sys.Launcher != nil && sys.Launcher.Surface != nil {
		sys.Launcher.Surface.Visible = false
	}
}

// processKernelRegion is a convenience for tests.
func processKernelRegion(p *kernel.Process) *mem.VMA { return p.Layout.Kernel }
