// Package android models the framework layer of the Gingerbread stack: the
// Looper/Handler message loop, the AsyncTask worker pool, zygote and its
// fork-based application spawning, the system_server and its services —
// including the InputDispatcher that routes injected touch/key events to
// the focused app's looper, the fault-injection plane (Injector) that
// drives binder failures, service crashes, and mediaserver restarts, and
// the AnrWatchdog that flags loopers blocked past the dispatch timeout —
// the launcher and systemui processes, the PackageManager install flow
// (with id.defcontainer and dexopt), the ActivityManager's
// oom_adj/onTrimMemory memory policy, and whole-system boot orchestration.
package android

import (
	"fmt"

	"agave/internal/kernel"
	"agave/internal/sim"
)

// Message is one unit of Looper work.
type Message struct {
	What int
	Arg  int64
	// Input carries the event payload of an msgInput message posted by
	// the InputDispatcher; nil for every other message.
	Input *InputEvent
	// Run, when non-nil, is executed by the receiving thread (the moral
	// equivalent of Handler.post).
	Run func(ex *kernel.Exec)
	// Posted is stamped by Post with the enqueue time; the AnrWatchdog
	// ages a looper's head message from it.
	Posted sim.Ticks
}

// Looper is a per-thread message queue, as every Android main thread owns.
//
// Queued messages are pooled: Post copies the caller's Message value into a
// recycled *Message (pointer-shaped sends avoid the interface boxing
// allocation), and every consumer copies it back out and releases the
// struct before dispatching. The free list needs no locking because exactly
// one simulated thread of a kernel runs at a time, and a looper never
// crosses kernels.
type Looper struct {
	q    *kernel.MsgQueue
	quit bool
	free []*Message
}

// NewLooper prepares a looper backed by the kernel's mailbox primitive.
func NewLooper(k *kernel.Kernel, name string) *Looper {
	return &Looper{q: k.NewMsgQueue("looper." + name)}
}

func (l *Looper) getMsg() *Message {
	if n := len(l.free); n > 0 {
		m := l.free[n-1]
		l.free[n-1] = nil
		l.free = l.free[:n-1]
		return m
	}
	return &Message{}
}

// putMsg returns a consumed message to the pool. Reset invariant: the struct
// is zeroed here, so a recycled message can never leak a previous payload
// (Run closures, Input pointers, stale Posted stamps) into its next use even
// if a future Post forgets a field.
func (l *Looper) putMsg(m *Message) {
	*m = Message{}
	l.free = append(l.free, m)
}

// Post enqueues a message from the calling thread, stamping its enqueue
// time for the ANR watchdog.
func (l *Looper) Post(ex *kernel.Exec, m Message) {
	mp := l.getMsg()
	*mp = m
	mp.Posted = ex.Now()
	ex.Send(l.q, mp)
}

// Oldest returns the head message without consuming it; ok is false when
// the queue is empty. The AnrWatchdog uses it to age pending work without
// stealing messages from the looper's own thread.
func (l *Looper) Oldest() (Message, bool) {
	raw, ok := l.q.Peek()
	if !ok {
		return Message{}, false
	}
	return *raw.(*Message), true
}

// Quit makes Loop return after draining already-queued messages.
func (l *Looper) Quit(ex *kernel.Exec) {
	l.Post(ex, Message{What: -1})
}

// recv blocks for the next message, copies it out, and recycles the pooled
// struct before the caller acts on the copy.
func (l *Looper) recv(ex *kernel.Exec) Message {
	mp := ex.Recv(l.q).(*Message)
	m := *mp
	l.putMsg(mp)
	return m
}

// Loop processes messages until Quit. The dispatch overhead per message is
// charged as framework bytecode by the caller-provided dispatch hook.
func (l *Looper) Loop(ex *kernel.Exec, dispatch func(ex *kernel.Exec, m Message)) {
	for {
		m := l.recv(ex)
		if m.What == -1 {
			return
		}
		if m.Run != nil {
			m.Run(ex)
			continue
		}
		dispatch(ex, m)
	}
}

// TryDrain processes at most max pending messages without blocking.
func (l *Looper) TryDrain(ex *kernel.Exec, max int, dispatch func(ex *kernel.Exec, m Message)) int {
	n := 0
	for n < max {
		raw, ok := l.q.TryRecv()
		if !ok {
			return n
		}
		m := *raw.(*Message)
		l.putMsg(raw.(*Message))
		if m.What == -1 {
			l.quit = true
			return n
		}
		if m.Run != nil {
			m.Run(ex)
		} else {
			dispatch(ex, m)
		}
		n++
	}
	return n
}

// AsyncPool is the framework's AsyncTask executor: a fixed pool of worker
// threads named "AsyncTask #N" (they account to the "AsyncTask" group that
// Table I ranks at 7.6 % of suite references).
type AsyncPool struct {
	q *kernel.MsgQueue
}

// asyncTaskNames covers the framework's fixed pool size, so spawning a pool
// formats no thread names; Sprintf only runs for oversized test pools.
var asyncTaskNames = [...]string{
	"AsyncTask #1", "AsyncTask #2", "AsyncTask #3", "AsyncTask #4",
	"AsyncTask #5", "AsyncTask #6", "AsyncTask #7", "AsyncTask #8",
}

func asyncTaskName(i int) string {
	if i < len(asyncTaskNames) {
		return asyncTaskNames[i]
	}
	return fmt.Sprintf("AsyncTask #%d", i+1)
}

// NewAsyncPool spawns n workers in proc.
func NewAsyncPool(proc *kernel.Process, n int) *AsyncPool {
	k := proc.Kernel()
	p := &AsyncPool{q: k.NewMsgQueue(proc.Name + ".asynctask")}
	for i := 0; i < n; i++ {
		name := asyncTaskName(i)
		k.SpawnThread(proc, name, "AsyncTask", func(ex *kernel.Exec) {
			for {
				task := ex.Recv(p.q).(func(ex *kernel.Exec))
				task(ex)
			}
		})
	}
	return p
}

// Submit queues task for execution on some pool worker.
func (p *AsyncPool) Submit(ex *kernel.Exec, task func(ex *kernel.Exec)) {
	ex.Send(p.q, task)
}

// Pending reports queued-but-unclaimed tasks.
func (p *AsyncPool) Pending() int { return p.q.Len() }

// heartbeat runs a native daemon's periodic activity: a small burst of
// work every interval. It is how init, rild, vold, netd and friends earn
// their (tiny) slice of the paper's "other (51 items)" process category.
func heartbeat(proc *kernel.Process, interval sim.Ticks, burst uint64) {
	proc.Kernel().SpawnThread(proc, proc.Name, proc.Name, func(ex *kernel.Exec) {
		ex.PushCode(proc.Layout.Text)
		for {
			ex.Fetch(burst)
			ex.Read(proc.Layout.Heap, burst/4)
			ex.Write(proc.Layout.Heap, burst/8)
			ex.Syscall(burst/8, burst/16)
			ex.SleepFor(interval)
		}
	})
}
