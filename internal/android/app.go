package android

import (
	"fmt"

	"agave/internal/binder"
	"agave/internal/dalvik"
	"agave/internal/gfx"
	"agave/internal/kernel"
	"agave/internal/loader"
	"agave/internal/mem"
	"agave/internal/sim"
)

// AppConfig describes a process to be forked from zygote.
type AppConfig struct {
	// Process is the kernel process name (the benchmark app uses
	// "benchmark", matching the paper's Figure 3/4 legend).
	Process string
	// Label is the workload identity, e.g. "aard.main"; it names the
	// app's dex image.
	Label string
	// ExtraLibs are app-private native libraries beyond the zygote set
	// (e.g. "libcr3engine-3-1-1.so" for coolreader).
	ExtraLibs []string
	// Fullscreen hides the launcher behind the app's surface.
	Fullscreen bool
	// Foreground creates a surface and a canvas; background services
	// leave it off.
	Foreground bool
	// StatusBar sizes the surface as the status bar instead of the
	// app window area.
	StatusBar bool
	// AsyncWorkers is the AsyncTask pool size (0 = no pool).
	AsyncWorkers int
	// Helpers forks that many "app_process" companion processes, the
	// unspecialized zygote children the paper notes are forked "for
	// every other process the application spawns".
	Helpers int
	// NoJIT disables the trace JIT in this app's VM (ablation A1).
	NoJIT bool
}

// App is a running application: a zygote child with its own VM view, binder
// pool, optional surface/canvas, and AsyncTask pool.
type App struct {
	Sys *System
	Cfg AppConfig

	Proc    *kernel.Process
	VM      *dalvik.VM
	LinkMap *loader.LinkMap

	// Dex is the app's own bytecode image ("<label>@classes.dex").
	Dex *dalvik.LoadedDex
	// FrameworkDex is the shared framework image view in this process.
	FrameworkDex *dalvik.LoadedDex

	Surface *gfx.Surface
	Canvas  *gfx.Canvas
	Tasks   *AsyncPool

	// Looper is the main thread's message queue. Lifecycle transitions
	// (pause/resume) arrive here and are performed by the main thread at
	// its next PausePoint, as through the real ActivityThread handler.
	Looper *Looper
	// OnInput handles a delivered input event on the main thread, after
	// the framework's view-hierarchy dispatch. The apps package installs
	// a workload-appropriate handler at launch; workload bodies may
	// replace it (media players install seek handlers). Nil means the
	// framework dispatch is the whole cost.
	OnInput func(ex *kernel.Exec, a *App, ev *InputEvent)
	// HelperProcs are the app_process companions forked for cfg.Helpers;
	// KillApp terminates them with the app.
	HelperProcs []*kernel.Process
	// Dead marks an app torn down by KillApp.
	Dead bool

	// Resources is the app's mapped .apk (resource loads read it),
	// Database its sqlite file, Assets the shared system asset mappings
	// (framework-res, fonts, ICU data). Each is a named region in the
	// paper's Figure 2 census.
	Resources *mem.VMA
	Database  *mem.VMA
	Assets    []*mem.VMA

	mainBody  func(ex *kernel.Exec, a *App)
	workerSeq int
	anon      map[string]*mem.VMA
	paused    bool
	// trimmed latches one onTrimMemory per pressure episode; the memory
	// monitor re-arms it when free pages recover.
	trimmed bool
	// anrFlagged latches one ANR per blocked-looper episode; the watchdog
	// re-arms it when the looper drains.
	anrFlagged bool
}

// sharedAssets are system-wide files every app maps; the names are shared
// across processes so they count once in the suite census.
var sharedAssets = []struct {
	name string
	size uint64
}{
	{"framework-res.apk", 8 << 20},
	{"DroidSans.ttf", 192 << 10},
	{"DroidSans-Bold.ttf", 192 << 10},
	{"DroidSansMono.ttf", 128 << 10},
	{"Clockopia.ttf", 32 << 10},
	{"icudt44l.dat", 6 << 20},
	{"/dev/ashmem/system_properties", 128 << 10},
	{"sqlite shared cache", 512 << 10},
}

// AnonBuffer returns (creating on first use) a keyed anonymous working
// buffer for workload data: dictionary pages, decoded chapters, tile packs.
func (a *App) AnonBuffer(key string, size uint64) *mem.VMA {
	if v, ok := a.anon[key]; ok {
		return v
	}
	if a.anon == nil {
		a.anon = make(map[string]*mem.VMA)
	}
	v := a.Proc.Layout.MapAnon(a.Proc.AS, size)
	a.anon[key] = v
	return v
}

// NewApp forks cfg.Process from zygote and wires up the runtime. The app
// does not run until Start.
func (sys *System) NewApp(cfg AppConfig) *App {
	if cfg.Process == "" || cfg.Label == "" {
		panic("android: AppConfig needs Process and Label")
	}
	k := sys.K
	a := &App{Sys: sys, Cfg: cfg}
	a.Proc = k.Fork(sys.Zygote, cfg.Process)
	names := append(loader.BaseSet(), cfg.ExtraLibs...)
	// Every application also maps its JNI stub library, named after the
	// package as on a real device.
	names = append(names, jniLibName(cfg.Label))
	a.LinkMap = loader.Rebind(a.Proc.AS, a.Proc.Layout, names)
	// Package-private mappings: the resource apk and the app database.
	a.Resources = a.Proc.AS.MapAnywhere(mem.MmapBase, 4<<20, cfg.Label+".apk",
		mem.PermRead, mem.ClassData)
	a.Database = a.Proc.AS.MapAnywhere(mem.MmapBase, 256<<10, cfg.Label+".db",
		mem.PermRead|mem.PermWrite, mem.ClassData)
	for _, asset := range sharedAssets {
		v := a.Proc.AS.MapAnywhere(mem.MmapBase, asset.size, asset.name,
			mem.PermRead, mem.ClassShared)
		a.Assets = append(a.Assets, v)
	}
	a.VM = dalvik.ForkVM(sys.ZygoteVM, a.Proc, true)
	a.Looper = NewLooper(k, cfg.Process+"."+cfg.Label)
	if cfg.NoJIT {
		a.VM.JITEnabled = false
	}
	if cfg.AsyncWorkers > 0 {
		a.Tasks = NewAsyncPool(a.Proc, cfg.AsyncWorkers)
	}
	// Every app hosts a Binder endpoint for framework callbacks. The
	// handler parses the callback header before doing the work; a
	// malformed parcel (the CorruptParcel injection) fails the read and
	// takes the short error path — log-and-reject in framework bytecode,
	// reply -EBADMSG — instead of the full callback.
	sys.Binder.Register(a.Proc, "app."+cfg.Label, 2,
		func(ex *kernel.Exec, txn *binder.Transaction) {
			txn.Reply = binder.NewParcel()
			if _, err := txn.Data.ReadString(); err != nil {
				a.VM.InterpBulk(ex, a.frameworkDexFor(ex), 300, false)
				txn.Reply.WriteInt32(-74) // -EBADMSG
				sys.noteDetectedFault()
				return
			}
			a.VM.InterpBulk(ex, a.frameworkDexFor(ex), 1200, false)
			txn.Reply.WriteInt32(0)
		})
	for i := 0; i < cfg.Helpers; i++ {
		sys.spawnHelper(a, i)
	}
	sys.registerApp(a)
	return a
}

// frameworkDexFor lazily adopts the framework image into this process's VM
// (usable from any of the app's threads).
func (a *App) frameworkDexFor(ex *kernel.Exec) *dalvik.LoadedDex {
	if a.FrameworkDex == nil {
		a.FrameworkDex = a.VM.Adopt(a.Sys.FrameworkFile, a.LinkMap.VMA("framework.jar@classes.dex"))
	}
	return a.FrameworkDex
}

// jniLibName derives the app's JNI stub library name from its label:
// "aard.main" → "libaard_jni.so", as app-private libraries are named on a
// real device.
func jniLibName(label string) string {
	first := label
	if i := indexByte(label, '.'); i > 0 {
		first = label[:i]
	}
	return "lib" + first + "_jni.so"
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

// Start launches the app's main thread: activity lifecycle (Binder calls to
// the activity manager), dex loading, then the workload body. The main
// thread accounts under the app's label, matching how real Android names a
// process's main thread after its package.
func (a *App) Start(body func(ex *kernel.Exec, a *App)) {
	a.mainBody = body
	a.Sys.noteLaunched(a)
	a.Sys.K.SpawnThread(a.Proc, "main", a.Cfg.Label, func(ex *kernel.Exec) {
		ex.PushCode(a.Proc.Layout.Text)
		a.frameworkDexFor(ex)
		// ActivityManager handshake: onCreate/onResume round trips.
		if _, err := a.Sys.Binder.Call(ex, "activity", 1, lifecycleParcel(a.Cfg.Label, "create")); err != nil {
			panic(err)
		}
		a.Dex = a.VM.LoadDex(ex, dalvik.StockDex(a.Cfg.Label))
		if a.Cfg.Fullscreen {
			a.Sys.HideLauncher()
		}
		if _, err := a.Sys.Binder.Call(ex, "activity", 2, lifecycleParcel(a.Cfg.Label, "resume")); err != nil {
			panic(err)
		}
		a.mainBody(ex, a)
	})
}

func lifecycleParcel(label, event string) *binder.Parcel {
	p := binder.NewParcel()
	p.WriteString("android.app.IActivityManager")
	p.WriteString(label)
	p.WriteString(event)
	return p
}

// EnsureSurface creates the app's window surface (via the window service and
// SurfaceFlinger) and a canvas on first call.
func (a *App) EnsureSurface(ex *kernel.Exec) {
	if a.Surface != nil || !a.Cfg.Foreground {
		return
	}
	if _, err := a.Sys.Binder.Call(ex, "window", 1, lifecycleParcel(a.Cfg.Label, "addWindow")); err != nil {
		panic(err)
	}
	w, h, z := gfx.ScreenW, gfx.ScreenH-statusBarH, 1
	if a.Cfg.StatusBar {
		w, h, z = gfx.ScreenW, statusBarH, 10
	}
	a.Surface = a.Sys.Compositor.CreateSurface(ex, a.Proc, a.Cfg.Label, w, h, z)
	a.Canvas = gfx.NewCanvas(a.Proc, a.LinkMap, a.Surface)
}

// SpawnWorker starts a generic app worker thread ("Thread-N", accounting to
// the "Thread" group of Table I) running body.
func (a *App) SpawnWorker(body func(ex *kernel.Exec, a *App)) *kernel.Thread {
	a.workerSeq++
	name := fmt.Sprintf("Thread-%d", 10+a.workerSeq)
	return a.Sys.K.SpawnThread(a.Proc, name, "Thread", func(ex *kernel.Exec) {
		ex.PushCode(a.Proc.Layout.Text)
		body(ex, a)
	})
}

// spawnHelper forks an unspecialized "app_process" companion that performs
// modest framework bytecode work on the app's behalf.
func (sys *System) spawnHelper(a *App, idx int) {
	p := sys.K.Fork(sys.Zygote, "app_process")
	a.HelperProcs = append(a.HelperProcs, p)
	vm := dalvik.ForkVM(sys.ZygoteVM, p, false)
	sys.K.SpawnThread(p, "main", "main", func(ex *kernel.Exec) {
		ex.PushCode(p.Layout.Text)
		fwVMA := p.AS.FindByName("framework.jar@classes.dex")
		if fwVMA == nil {
			panic("android: helper lacks framework image")
		}
		fw := vm.Adopt(sys.FrameworkFile, fwVMA)
		period := sim.Ticks(40+20*idx) * sim.Millisecond
		for {
			vm.InterpBulk(ex, fw, 3000, false)
			ex.StackWork(1500)
			ex.SleepFor(period)
		}
	})
}

// FrameLoop runs a UI frame callback at the given frame rate until the
// simulation ends: the standard foreground-app cadence (input → logic →
// draw → post).
func (a *App) FrameLoop(ex *kernel.Exec, fps int, frame func(ex *kernel.Exec, n uint64)) {
	period := sim.Second / sim.Ticks(fps)
	next := ex.Now() + period
	var n uint64
	for {
		a.PausePoint(ex)
		frame(ex, n)
		n++
		if a.Surface != nil {
			a.Surface.Post(ex, a.Sys.Compositor)
		}
		ex.SleepUntil(next)
		next += period
		if now := ex.Now(); now > next {
			// Dropped frames: resynchronize instead of spiralling.
			next = now + period
		}
	}
}
