package android

import (
	"agave/internal/dalvik"
	"agave/internal/dex"
	"agave/internal/kernel"
	"agave/internal/loader"
	"agave/internal/mem"
	"agave/internal/sim"
)

// InstallAPK models `pm install`: the flow behind the paper's pm.apk.view
// workloads. It is the only Agave workload where the dexopt and
// id.defcontainer processes appear — exactly as in the paper's Figures 3
// and 4, where those legend entries are visible only for pm.apk.*.
//
// Steps, each performed by the process that does it on a real device:
//  1. the caller (the pm client) reads the APK from storage and walks the
//     zip central directory;
//  2. the "package" service in system_server verifies the package;
//  3. a fresh id.defcontainer process measures the container;
//  4. a fresh dexopt process verifies + optimizes the classes.dex into an
//     odex image.
//
// The returned Install completes when dexopt finishes.
func (sys *System) InstallAPK(ex *kernel.Exec, a *App, pkgName string, apkBytes uint64) *Install {
	k := sys.K
	done := &Install{wq: k.NewWaitQueue("install." + pkgName)}

	// 1. Read the APK and parse the zip central directory in the client.
	apkBuf := a.Proc.Layout.MapAnon(a.Proc.AS, apkBytes)
	ex.BlockRead(apkBuf, apkBytes)
	zipScan(ex, a, apkBuf)

	// 2. Package verification in system_server.
	p := lifecycleParcel(pkgName, "install")
	if _, err := sys.Binder.Call(ex, "package", 3, p); err != nil {
		panic(err)
	}

	// 3. id.defcontainer: measure the container. A short-lived zygote
	// child, forked on demand.
	dc := k.Fork(sys.Zygote, "id.defcontainer")
	dcVM := dalvik.ForkVM(sys.ZygoteVM, dc, false)
	k.SpawnThread(dc, "main", "main", func(ex *kernel.Exec) {
		ex.PushCode(dc.Layout.Text)
		fw := dcVM.Adopt(sys.FrameworkFile, dc.AS.FindByName("framework.jar@classes.dex"))
		dcVM.InterpBulk(ex, fw, 20_000, false)
		buf := dc.Layout.MapAnon(dc.AS, apkBytes)
		ex.BlockRead(buf, apkBytes)
		ex.Do(kernel.Work{Fetch: 2, Reads: 1, Data: buf}, apkBytes/16)
	})

	// 4. dexopt: verify + optimize the embedded classes.dex.
	sys.runDexopt(pkgName, apkBytes/3, done)
	return done
}

// Install tracks an in-flight InstallAPK. The completion flag makes Wait
// immune to the lost-wakeup race where dexopt finishes before the installer
// gets around to waiting.
type Install struct {
	done bool
	wq   *kernel.WaitQueue
}

// Wait blocks until dexopt has finished (returns immediately if it already
// has).
func (in *Install) Wait(ex *kernel.Exec) {
	for !in.done {
		ex.Wait(in.wq)
	}
}

// zipScan walks the APK's central directory and local headers.
func zipScan(ex *kernel.Exec, a *App, apk *mem.VMA) {
	entries := apk.Size() / (24 << 10) // ~24 KiB per asset
	if entries < 8 {
		entries = 8
	}
	libz := a.LinkMap.VMA("libz.so")
	ex.InCode(libz, func() {
		// Central directory scan + CRC of a sample of entries.
		ex.Do(kernel.Work{Fetch: 6, Reads: 1, Data: apk}, entries*64)
		ex.Do(kernel.Work{Fetch: 4, Reads: 1, Data: apk}, apk.Size()/64)
	})
	ex.StackWork(4000)
}

// runDexopt forks the dexopt process and performs the optimization pass:
// read every instruction word of the dex (several verifier passes), write
// the odex image. dexSize approximates the classes.dex payload size.
func (sys *System) runDexopt(pkgName string, dexSize uint64, done *Install) {
	k := sys.K
	dp := k.NewProcess("dexopt", 96*loader.KB, 512*loader.KB)
	k.SpawnThread(dp, "dexopt", "dexopt", func(ex *kernel.Exec) {
		ex.PushCode(dp.Layout.Text)
		// Run the real verifier/optimizer over the app's bytecode to
		// keep this path honest, then charge the volume work on the
		// full image size.
		f := dalvik.StockDex(pkgName)
		if _, err := dex.Optimize(f); err != nil {
			panic(err)
		}
		in := dp.Layout.MapAnon(dp.AS, dexSize)
		out := dp.Layout.MapAnon(dp.AS, dexSize)
		ex.BlockRead(in, dexSize)
		words := dexSize / 4
		// Verifier: three passes over the instruction stream.
		ex.Do(kernel.Work{Fetch: 9, Reads: 1, Data: in}, words*3)
		// Optimizer: rewrite quickened opcodes into the odex.
		ex.Copy(out, in, words, 4)
		// Write-back happens through the page cache.
		ex.Syscall(3000, 800)
		ex.SleepFor(30 * sim.Millisecond)
		done.done = true
		done.wq.WakeAll()
	})
}
