package android

import (
	"testing"

	"agave/internal/kernel"
	"agave/internal/sim"
)

// blockedApp boots a foreground app whose main thread finishes its launch
// handshake and then blocks without ever draining its looper — the ANR
// victim shape.
func blockedApp(sys *System, label string) *App {
	a := sys.NewApp(AppConfig{
		Process: "benchmark", Label: label, Foreground: true,
	})
	a.Start(func(ex *kernel.Exec, a *App) {
		ex.SleepFor(30 * sim.Second)
	})
	return a
}

// TestAnrTimeoutBoundaryIsStrict pins the watchdog's comparison exactly: a
// head message aged exactly anrTimeout at the observation instant is not an
// ANR; one tick past is. The flag latches for the episode and re-arms only
// after the looper drains.
func TestAnrTimeoutBoundaryIsStrict(t *testing.T) {
	k, sys := bootSystem(t)
	victim := blockedApp(sys, "wedged.app")
	inj := sys.Inject
	done := false
	k.SpawnThread(sys.SystemServer, "probe", "probe", func(ex *kernel.Exec) {
		ex.PushCode(sys.SystemServer.Layout.Text)
		// Let the victim finish its launch handshake and park.
		ex.SleepFor(300 * sim.Millisecond)
		posted := ex.Now()
		victim.Looper.Post(ex, Message{What: 9})

		inj.scanForANRsAt(ex, posted+anrTimeout)
		if _, _, _, anrs := inj.Counts(); anrs != 0 {
			t.Errorf("blocked exactly at the timeout flagged %d ANRs, want 0 (comparison must be strict)", anrs)
		}
		inj.scanForANRsAt(ex, posted+anrTimeout+1)
		if _, _, _, anrs := inj.Counts(); anrs != 1 {
			t.Errorf("blocked one tick past the timeout flagged %d ANRs, want 1", anrs)
		}
		inj.scanForANRsAt(ex, posted+anrTimeout+anrPollPeriod)
		if _, _, _, anrs := inj.Counts(); anrs != 1 {
			t.Errorf("same episode re-flagged: %d ANRs, want 1 (latch)", anrs)
		}

		// Drain the looper: the latch re-arms, and a fresh blocked episode
		// is a second ANR.
		victim.Looper.TryDrain(ex, 10, func(ex *kernel.Exec, m Message) {})
		inj.scanForANRsAt(ex, posted+anrTimeout+2*anrPollPeriod)
		reposted := ex.Now()
		victim.Looper.Post(ex, Message{What: 10})
		inj.scanForANRsAt(ex, reposted+anrTimeout+1)
		if _, _, _, anrs := inj.Counts(); anrs != 2 {
			t.Errorf("new blocked episode after a drain flagged %d ANRs total, want 2", anrs)
		}
		done = true
	})
	// Short run: the concurrent real watchdog never sees the head message
	// aged past the timeout in real simulated time.
	k.Run(1 * sim.Second)
	if !done {
		t.Fatal("probe thread never finished")
	}
}

// TestAnrDuringInFlightSwipeFeedsInputStats drives a swipe at a wedged
// foreground app: the dispatcher delivers the samples into the blocked
// looper, the running watchdog raises exactly one (latched) ANR for the
// episode, and the per-target input statistics carry both the undelivered
// samples and the ANR count.
func TestAnrDuringInFlightSwipeFeedsInputStats(t *testing.T) {
	k, sys := bootSystem(t)
	victim := blockedApp(sys, "wedged.app")
	k.SpawnThread(sys.SystemServer, "probe", "probe", func(ex *kernel.Exec) {
		ex.PushCode(sys.SystemServer.Layout.Text)
		ex.SleepFor(200 * sim.Millisecond)
		sys.InjectSwipe(ex, "wedged.app")
	})
	k.Run(4 * sim.Second)
	if victim.Dead {
		t.Fatal("victim died")
	}
	if _, _, _, anrs := sys.Inject.Counts(); anrs != 1 {
		t.Fatalf("wedged app with pending input flagged %d ANRs, want exactly 1 (latched episode)", anrs)
	}
	st := sys.InputStats()
	if len(st) != 1 || st[0].App != "wedged.app" {
		t.Fatalf("input stats = %+v, want one wedged.app entry", st)
	}
	if st[0].Injected != 5 || st[0].Dispatched != 0 || st[0].Dropped != 5 {
		t.Fatalf("swipe at wedged app: injected/dispatched/dropped = %d/%d/%d, want 5/0/5",
			st[0].Injected, st[0].Dispatched, st[0].Dropped)
	}
	if st[0].ANRs != 1 {
		t.Fatalf("per-app ANR count = %d, want 1", st[0].ANRs)
	}
}

// TestFaultAtDeadTargetDropsWithoutPanic: every injection primitive aimed at
// a runtime-dead (or never-existing) target must drop cleanly — report
// false, count nothing, never panic.
func TestFaultAtDeadTargetDropsWithoutPanic(t *testing.T) {
	k, sys := bootSystem(t)
	victim := sys.NewApp(AppConfig{Process: "benchmark", Label: "doomed.app", Foreground: true})
	victim.Start(func(ex *kernel.Exec, a *App) {
		ex.SleepFor(30 * sim.Second)
	})
	done := false
	k.SpawnThread(sys.SystemServer, "probe", "probe", func(ex *kernel.Exec) {
		ex.PushCode(sys.SystemServer.Layout.Text)
		ex.SleepFor(300 * sim.Millisecond)
		sys.KillApp(ex, victim)
		if sys.InjectBinderFault(ex, "doomed.app") {
			t.Error("binder fault at a dead app reported injected")
		}
		if sys.InjectCorruptParcel(ex, "doomed.app") {
			t.Error("corrupt parcel at a dead app reported injected")
		}
		sys.CrashApp(ex, victim) // already dead: must be a no-op
		if sys.InjectBinderFault(ex, "no.such.app") {
			t.Error("binder fault at an unknown label reported injected")
		}
		done = true
	})
	k.Run(1 * sim.Second)
	if !done {
		t.Fatal("probe thread never finished")
	}
	if inj, det, rec, anrs := sys.Inject.Counts(); inj != 0 || det != 0 || rec != 0 || anrs != 0 {
		t.Fatalf("dropped faults moved the scoreboard: %d/%d/%d/%d, want 0/0/0/0", inj, det, rec, anrs)
	}
}

// TestInjectedFaultsAreCountedAndDetected: a binder fault fires on the
// framework's own ping (the armed error is the detection), and a corrupt
// parcel forces the receiving endpoint through its error path, which reports
// the detection from the app side.
func TestInjectedFaultsAreCountedAndDetected(t *testing.T) {
	k, sys := bootSystem(t)
	blockedApp(sys, "target.app")
	k.SpawnThread(sys.SystemServer, "probe", "probe", func(ex *kernel.Exec) {
		ex.PushCode(sys.SystemServer.Layout.Text)
		ex.SleepFor(300 * sim.Millisecond)
		if !sys.InjectBinderFault(ex, "target.app") {
			t.Error("binder fault at a live app dropped")
		}
		if !sys.InjectCorruptParcel(ex, "target.app") {
			t.Error("corrupt parcel at a live app dropped")
		}
	})
	k.Run(2 * sim.Second)
	inj, det, rec, _ := sys.Inject.Counts()
	if inj != 2 {
		t.Fatalf("injected = %d, want 2", inj)
	}
	if det != 2 {
		t.Fatalf("detected = %d, want 2 (armed fault on the ping + receiver error path)", det)
	}
	if rec != 0 {
		t.Fatalf("recovered = %d, want 0 (nothing was restarted)", rec)
	}
}

// TestCrashMediaserverAdoptsInFlightSessions: a playing session survives the
// mediaserver being killed — the replacement adopts it under its old id, the
// client's existing handle keeps working, and the scoreboard counts the
// restart plus the relaunched session as recoveries.
func TestCrashMediaserverAdoptsInFlightSessions(t *testing.T) {
	k, sys := bootSystem(t)
	oldMedia := sys.Media
	crashed := false
	k.SpawnThread(sys.SystemServer, "probe", "probe", func(ex *kernel.Exec) {
		ex.PushCode(sys.SystemServer.Layout.Text)
		ex.SleepFor(500 * sim.Millisecond)
		if relaunched := sys.CrashMediaserver(ex); relaunched != 1 {
			t.Errorf("CrashMediaserver relaunched %d sessions, want 1", relaunched)
		}
		crashed = true
	})
	app := sys.NewApp(AppConfig{Process: "benchmark", Label: "music.app", Foreground: true})
	stopped := false
	app.Start(func(ex *kernel.Exec, a *App) {
		p, err := mediaOpen(ex, sys, "mp3")
		if err != nil {
			t.Error(err)
			return
		}
		if err := p.Start(ex, sys.Binder); err != nil {
			t.Error(err)
			return
		}
		// Play across the crash at 500 ms, then drive the old handle
		// against the replacement server.
		ex.SleepFor(1 * sim.Second)
		if err := p.Seek(ex, sys.Binder); err != nil {
			t.Errorf("seek on adopted session: %v", err)
		}
		if err := p.Stop(ex, sys.Binder); err != nil {
			t.Errorf("stop on adopted session: %v", err)
		}
		stopped = true
	})
	k.Run(2 * sim.Second)
	if !crashed || !stopped {
		t.Fatalf("crashed=%v stopped=%v, want both", crashed, stopped)
	}
	if sys.Media == oldMedia {
		t.Fatal("mediaserver was not replaced")
	}
	if sys.Media.MP3FramesDecoded == 0 {
		t.Fatal("no MP3 frames decoded across the restart (counters must carry over)")
	}
	inj, det, rec, _ := sys.Inject.Counts()
	if inj != 1 || det != 1 {
		t.Fatalf("injected/detected = %d/%d, want 1/1", inj, det)
	}
	if rec != 2 {
		t.Fatalf("recovered = %d, want 2 (the restart + one relaunched session)", rec)
	}
}
