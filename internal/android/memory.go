// The ActivityManager side of the memory-pressure model: oom_adj assignment
// (foreground / visible / perceptible / home / cached-LRU), onTrimMemory
// delivery to background apps when free pages run low, and the userspace
// half of a lowmemorykiller process death (binder teardown, media session
// stop, surface removal) — the pieces that make a kill under pressure an
// emergent whole-stack event rather than a scripted one.

package android

import (
	"agave/internal/kernel"
	"agave/internal/sim"
)

// onTrimMemory severity levels, as ComponentCallbacks2 spells them.
const (
	// TrimBackground asks background apps to drop caches they can
	// rebuild (TRIM_MEMORY_BACKGROUND).
	TrimBackground = 40
	// TrimComplete warns an app it is first in line to be killed
	// (TRIM_MEMORY_COMPLETE).
	TrimComplete = 80
)

// memMonitorPeriod is how often the ActivityManager re-reads the free-page
// watermark to decide about trim broadcasts.
const memMonitorPeriod = 25 * sim.Millisecond

// registerApp adds a to the ActivityManager's process records.
func (sys *System) registerApp(a *App) {
	sys.amApps = append(sys.amApps, a)
}

// noteLaunched records an app start: a launched activity takes the
// foreground (backgrounding whoever held it); services and the resident
// launcher/systemui apps only join the ladder.
func (sys *System) noteLaunched(a *App) {
	if a != sys.Launcher && a != sys.SystemUI && a.Cfg.Foreground {
		if f := sys.amForeground; f != nil && f != a {
			sys.cacheApp(f)
		}
		sys.uncacheApp(a)
		sys.amForeground = a
	}
	sys.updateOomAdj()
}

// notePaused records a backgrounding: the app drops out of the foreground
// slot and enters the cached LRU at the most-recent end.
func (sys *System) notePaused(a *App) {
	if sys.amForeground == a {
		sys.amForeground = nil
	}
	if a != sys.Launcher && a != sys.SystemUI && a.Cfg.Foreground && !a.Dead {
		sys.cacheApp(a)
	}
	sys.updateOomAdj()
}

// noteResumed records a foreground switch.
func (sys *System) noteResumed(a *App) {
	if a != sys.Launcher && a != sys.SystemUI && a.Cfg.Foreground {
		if f := sys.amForeground; f != nil && f != a {
			sys.cacheApp(f)
		}
		sys.uncacheApp(a)
		sys.amForeground = a
	}
	sys.updateOomAdj()
}

// noteDead removes a dead app from every record.
func (sys *System) noteDead(a *App) {
	if sys.amForeground == a {
		sys.amForeground = nil
	}
	sys.uncacheApp(a)
	sys.updateOomAdj()
}

// cacheApp moves a to the most-recent end of the cached LRU.
func (sys *System) cacheApp(a *App) {
	sys.uncacheApp(a)
	sys.amCached = append([]*App{a}, sys.amCached...)
}

func (sys *System) uncacheApp(a *App) {
	for i, c := range sys.amCached {
		if c == a {
			sys.amCached = append(sys.amCached[:i], sys.amCached[i+1:]...)
			return
		}
	}
}

// updateOomAdj recomputes every app's lowmemorykiller badness from the
// current records: foreground 0, status bar visible, background services
// perceptible, launcher home, everything else cached with a score that grows
// as the app ages down the LRU. Helper processes share their app's score.
func (sys *System) updateOomAdj() {
	for _, a := range sys.amApps {
		if a.Dead {
			continue
		}
		adj := kernel.OomPerceptible
		switch {
		case a == sys.SystemUI:
			adj = kernel.OomVisible
		case a == sys.Launcher:
			adj = kernel.OomHome
		case a == sys.amForeground:
			adj = kernel.OomForeground
		case a.Cfg.Foreground:
			adj = kernel.OomCachedMin + sys.cachedIndex(a)
			if adj > kernel.OomCachedMax {
				adj = kernel.OomCachedMax
			}
		}
		a.Proc.OomAdj = adj
		for _, h := range a.HelperProcs {
			h.OomAdj = adj
		}
	}
}

func (sys *System) cachedIndex(a *App) int {
	for i, c := range sys.amCached {
		if c == a {
			return i
		}
	}
	return 0
}

// startMemoryManagement spawns the two system_server threads the pressure
// model adds: the memory monitor that broadcasts onTrimMemory when free
// pages run low, and the process reaper that performs the framework half of
// every lowmemorykiller death.
func (sys *System) startMemoryManagement() {
	k := sys.K
	ss := sys.SystemServer

	// The trim waterline sits at twice the highest minfree rung: apps are
	// asked to shrink before the killer has grounds to act.
	var cachedLine uint64
	for _, rung := range k.Cfg.MinFree {
		if rung.Pages > cachedLine {
			cachedLine = rung.Pages
		}
	}
	trimLine := 2 * cachedLine

	k.SpawnThread(ss, "MemoryMonitor", "ActivityManager", func(ex *kernel.Exec) {
		ex.PushCode(ss.Layout.Text)
		for {
			ex.SleepFor(memMonitorPeriod)
			free := k.FreePages()
			if free >= trimLine {
				// Pressure cleared: re-arm one trim per app for the
				// next episode.
				for _, a := range sys.amApps {
					a.trimmed = false
				}
				continue
			}
			level := TrimBackground
			if free < cachedLine {
				level = TrimComplete
			}
			sys.deliverTrims(ex, level)
		}
	})

	k.SpawnThread(ss, "ProcessReaper", "ActivityManager", func(ex *kernel.Exec) {
		ex.PushCode(ss.Layout.Text)
		for {
			victim := ex.Recv(k.DeathQueue()).(*kernel.Process)
			sys.reapDeadProcess(ex, victim)
		}
	})
}

// deliverTrims posts one onTrimMemory to every live non-foreground app that
// has not been trimmed this pressure episode.
func (sys *System) deliverTrims(ex *kernel.Exec, level int) {
	for _, a := range sys.amApps {
		if a.Dead || a.trimmed || a == sys.amForeground {
			continue
		}
		a.trimmed = true
		sys.trims++
		// The AM walks its process records and posts the callback.
		sys.SystemServerVM.InterpBulk(ex, sys.servicesDex, 600, false)
		a.Looper.Post(ex, Message{What: msgTrim, Arg: int64(level)})
	}
}

// reapDeadProcess performs the ActivityManager's reaction to a process the
// kernel killed: the binder-death bookkeeping a scripted KillApp does
// synchronously. Helper processes die with their app, media sessions stop
// through the client-death path, and the records update so the oom ladder
// reflects the loss.
func (sys *System) reapDeadProcess(ex *kernel.Exec, p *kernel.Process) {
	var app *App
	for _, a := range sys.amApps {
		if a.Proc == p && !a.Dead {
			app = a
			break
		}
	}
	if app == nil {
		return // a helper or an already-reaped process
	}
	app.Dead = true
	sys.SystemServerVM.InterpBulk(ex, sys.servicesDex, 2800, false)
	if sys.Media != nil {
		sys.Media.StopOwned(app.Proc)
	}
	sys.Binder.Unregister("app." + app.Cfg.Label)
	if app.Surface != nil {
		app.Surface.Visible = false
	}
	for _, h := range app.HelperProcs {
		sys.K.KillProcess(h)
	}
	sys.noteDead(app)
	// Kernel-side exit bookkeeping for the stragglers.
	ex.Syscall(4000, 1000)
}
