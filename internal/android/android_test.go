package android

import (
	"testing"

	"agave/internal/gfx"
	"agave/internal/kernel"
	"agave/internal/mem"
	"agave/internal/sim"
	"agave/internal/stats"
)

func bootSystem(t *testing.T) (*kernel.Kernel, *System) {
	t.Helper()
	k := kernel.New(kernel.Config{Quantum: 100 * sim.Microsecond, Seed: 11})
	t.Cleanup(k.Shutdown)
	return k, Boot(k)
}

func TestBootProcessCensus(t *testing.T) {
	k, _ := bootSystem(t)
	k.Run(100 * sim.Millisecond)
	want := []string{
		"swapper", "ata_sff/0", "init", "servicemanager", "zygote",
		"system_server", "mediaserver", "ndroid.launcher", "ndroid.systemui",
		"rild", "vold", "netd", "installd", "adbd",
	}
	for _, name := range want {
		if k.FindProcess(name) == nil {
			t.Errorf("boot did not create process %q", name)
		}
	}
	if n := k.ProcessCount(); n < 18 {
		t.Errorf("boot process count = %d, want >= 18 (paper floor ~20 with app)", n)
	}
}

func TestBootSurfaceFlingerComposes(t *testing.T) {
	k, sys := bootSystem(t)
	k.Run(300 * sim.Millisecond)
	if sys.Compositor.Frames == 0 {
		t.Fatal("SurfaceFlinger composed nothing (launcher/systemui should post)")
	}
	byThread := k.Stats.ByThread()
	if byThread["SurfaceFlinger"] == 0 {
		t.Fatal("SurfaceFlinger thread earned no references")
	}
	byRegion := k.Stats.ByRegion(stats.DataWrite)
	if byRegion[mem.RegionFramebuffer] == 0 {
		t.Fatal("no framebuffer writes")
	}
	if byRegion[mem.RegionGralloc] == 0 {
		t.Fatal("no gralloc writes")
	}
}

func TestAppLaunchLifecycle(t *testing.T) {
	k, sys := bootSystem(t)
	ran := false
	app := sys.NewApp(AppConfig{
		Process: "benchmark", Label: "test.app",
		Fullscreen: true, Foreground: true, AsyncWorkers: 2, Helpers: 1,
	})
	app.Start(func(ex *kernel.Exec, a *App) {
		a.EnsureSurface(ex)
		if a.Surface == nil {
			t.Error("no surface for foreground app")
		}
		a.Canvas.FillRect(ex, 400, 200)
		a.Surface.Post(ex, sys.Compositor)
		if got := a.VM.Exec(ex, a.Dex, "sumLoop", 10); got != 45 {
			t.Errorf("app bytecode sumLoop(10) = %d", got)
		}
		ran = true
	})
	k.Run(400 * sim.Millisecond)
	if !ran {
		t.Fatal("app main body never ran")
	}
	if k.FindProcess("app_process") == nil {
		t.Fatal("helper app_process not forked")
	}
	if sys.Launcher.Surface == nil || sys.Launcher.Surface.Visible {
		t.Fatal("fullscreen app did not hide the launcher")
	}
	if got := k.Stats.ByProcess()["benchmark"]; got == 0 {
		t.Fatal("benchmark process earned no references")
	}
	if got := k.Stats.ByRegion(stats.DataRead)["test.app@classes.dex"]; got == 0 {
		t.Fatal("app dex image never read")
	}
}

func TestAsyncPoolRunsTasks(t *testing.T) {
	k, sys := bootSystem(t)
	app := sys.NewApp(AppConfig{Process: "benchmark", Label: "t", AsyncWorkers: 2})
	count := 0
	app.Start(func(ex *kernel.Exec, a *App) {
		for i := 0; i < 5; i++ {
			a.Tasks.Submit(ex, func(ex *kernel.Exec) {
				ex.StackWork(500)
				count++
			})
		}
		ex.SleepFor(50 * sim.Millisecond)
	})
	k.Run(200 * sim.Millisecond)
	if count != 5 {
		t.Fatalf("async tasks ran %d/5", count)
	}
	if got := k.Stats.ByThread()["AsyncTask"]; got == 0 {
		t.Fatal("AsyncTask group earned no references")
	}
}

func TestWorkerThreadsGroupAsThread(t *testing.T) {
	k, sys := bootSystem(t)
	app := sys.NewApp(AppConfig{Process: "benchmark", Label: "t"})
	app.Start(func(ex *kernel.Exec, a *App) {
		a.SpawnWorker(func(ex *kernel.Exec, a *App) {
			ex.StackWork(10_000)
		})
		ex.SleepFor(20 * sim.Millisecond)
	})
	k.Run(100 * sim.Millisecond)
	if got := k.Stats.ByThread()["Thread"]; got == 0 {
		t.Fatal("generic worker did not account to the Thread group")
	}
}

func TestLooperPostAndQuit(t *testing.T) {
	k, sys := bootSystem(t)
	app := sys.NewApp(AppConfig{Process: "benchmark", Label: "t"})
	var got []int
	app.Start(func(ex *kernel.Exec, a *App) {
		lp := NewLooper(k, "test")
		lp.Post(ex, Message{What: 1})
		lp.Post(ex, Message{Run: func(ex *kernel.Exec) { got = append(got, 99) }})
		lp.Post(ex, Message{What: 2})
		lp.Quit(ex)
		lp.Loop(ex, func(ex *kernel.Exec, m Message) { got = append(got, m.What) })
	})
	k.Run(100 * sim.Millisecond)
	if len(got) != 3 || got[0] != 1 || got[1] != 99 || got[2] != 2 {
		t.Fatalf("looper dispatched %v", got)
	}
}

func TestInstallAPKSpawnsDexoptAndDefcontainer(t *testing.T) {
	k, sys := bootSystem(t)
	app := sys.NewApp(AppConfig{Process: "benchmark", Label: "pm"})
	installed := false
	app.Start(func(ex *kernel.Exec, a *App) {
		done := sys.InstallAPK(ex, a, "com.example.pkg", 2<<20)
		done.Wait(ex)
		installed = true
	})
	k.Run(2 * sim.Second)
	if !installed {
		t.Fatal("install never completed")
	}
	if k.FindProcess("dexopt") == nil {
		t.Fatal("dexopt process missing")
	}
	if k.FindProcess("id.defcontainer") == nil {
		t.Fatal("id.defcontainer process missing")
	}
	byProc := k.Stats.ByProcess()
	if byProc["dexopt"] == 0 {
		t.Fatal("dexopt earned no references")
	}
	if byProc["id.defcontainer"] == 0 {
		t.Fatal("id.defcontainer earned no references")
	}
}

func TestMediaPlaybackThroughBinder(t *testing.T) {
	k, sys := bootSystem(t)
	app := sys.NewApp(AppConfig{Process: "benchmark", Label: "music", Foreground: true})
	app.Start(func(ex *kernel.Exec, a *App) {
		p, err := mediaOpen(ex, sys, "mp3")
		if err != nil {
			t.Error(err)
			return
		}
		if err := p.Start(ex, sys.Binder); err != nil {
			t.Error(err)
		}
		ex.SleepFor(300 * sim.Millisecond)
		if err := p.Stop(ex, sys.Binder); err != nil {
			t.Error(err)
		}
	})
	k.Run(600 * sim.Millisecond)
	if sys.Media.MP3FramesDecoded == 0 {
		t.Fatal("no MP3 frames decoded")
	}
	byProc := k.Stats.ByProcess()
	if byProc["mediaserver"] == 0 {
		t.Fatal("mediaserver earned no references")
	}
	if got := k.Stats.ByThread()["AudioTrackThread"]; got == 0 {
		t.Fatal("AudioTrackThread earned no references")
	}
	if got := k.Stats.ByRegion(stats.IFetch)[("libstagefright.so")]; got == 0 {
		t.Fatal("no decoder fetches from libstagefright.so")
	}
}

func TestVsyncIdleWhenNothingPosts(t *testing.T) {
	k := kernel.New(kernel.Config{Quantum: 100 * sim.Microsecond, Seed: 3})
	defer k.Shutdown()
	// Bare compositor without launcher/systemui: nothing ever posts.
	ss := k.NewProcess("system_server", 1<<20, 1<<20)
	lm := loaderLoadForTest(ss)
	c := gfx.NewCompositor(ss, lm)
	k.Run(200 * sim.Millisecond)
	if c.Frames != 0 {
		t.Fatalf("compositor composed %d frames with no posts", c.Frames)
	}
}

func TestBootDeterminism(t *testing.T) {
	run := func() uint64 {
		k := kernel.New(kernel.Config{Quantum: 100 * sim.Microsecond, Seed: 11})
		defer k.Shutdown()
		Boot(k)
		k.Run(150 * sim.Millisecond)
		return k.Stats.Total()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("boot runs diverged: %d vs %d", a, b)
	}
}
