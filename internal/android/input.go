package android

import (
	"sort"

	"agave/internal/kernel"
	"agave/internal/sim"
)

// The input-event pipeline. Real Android delivers every touch and key through
// one chokepoint: events enter the kernel, the InputDispatcher thread in
// system_server resolves the focused window, and the winning app's main
// thread drains its input channel interleaved with lifecycle messages and
// frame production. This file models that chokepoint: a ScenarioDriver (or
// any caller) injects synthetic events with Inject*, the InputDispatcher
// thread routes each one to the current foreground app's looper, and the
// app's main thread performs the handler work at its next PausePoint. Events
// aimed at a dead, paused, or unfocused app are dropped — and counted, per
// target, alongside end-to-end dispatch-latency statistics for the events
// that did land.

// InputKind is one synthetic input sample's type.
type InputKind uint8

// Input sample kinds. A scenario Tap expands to a down/up pair, a Swipe to a
// down, several moves, and an up; a Key is a single press.
const (
	TouchDown InputKind = iota
	TouchMove
	TouchUp
	KeyPress
)

// String names the sample kind for diagnostics.
func (k InputKind) String() string {
	switch k {
	case TouchDown:
		return "touch-down"
	case TouchMove:
		return "touch-move"
	case TouchUp:
		return "touch-up"
	case KeyPress:
		return "key-press"
	}
	return "input?"
}

// InputEvent is one synthetic input sample in flight through the pipeline.
type InputEvent struct {
	// Kind is the sample type.
	Kind InputKind
	// Target names the app (by label) the gesture aims at; delivery
	// additionally requires the target to hold the focus.
	Target string
	// Posted is the injection time; end-to-end dispatch latency is
	// measured from here to the app-side handler.
	Posted sim.Ticks
}

// InputAppStats is the per-target outcome of a run's input traffic.
type InputAppStats struct {
	// App is the target label events were injected for.
	App string
	// Injected counts events aimed at the app.
	Injected int
	// Dispatched counts events the app's main thread actually handled.
	Dispatched int
	// Dropped is Injected - Dispatched: events refused at routing time
	// (target dead, paused, or not focused), consumed unhandled by a
	// paused activity, or still in flight when the measurement ended.
	Dropped int
	// LatencyMin/Max/Sum aggregate end-to-end dispatch latency
	// (injection to handler start) over the Dispatched events, in ticks.
	LatencyMin, LatencyMax, LatencySum sim.Ticks
	// ANRs counts Application Not Responding flags the watchdog raised
	// against the app: episodes where its main looper sat blocked past the
	// dispatch timeout with this app's traffic (input included) pending.
	ANRs int
}

// inputChannel accumulates one target's counters.
type inputChannel struct {
	injected  int
	delivered int
	latMin    sim.Ticks
	latMax    sim.Ticks
	latSum    sim.Ticks
	anrs      int
}

// InputDispatcher is system_server's input pipeline state: the event queue
// its dispatcher thread drains, and the per-target accounting.
//
// In-flight InputEvents are pooled: inject draws from the free list and the
// pipeline's terminal points (route's drop, the paused-activity drain, and
// performInput's return) recycle the struct. No locking is needed — one
// simulated thread runs at a time and the dispatcher never crosses kernels.
type InputDispatcher struct {
	sys *System
	q   *kernel.MsgQueue

	chans map[string]*inputChannel
	free  []*InputEvent
}

func (d *InputDispatcher) getEvent() *InputEvent {
	if n := len(d.free); n > 0 {
		ev := d.free[n-1]
		d.free[n-1] = nil
		d.free = d.free[:n-1]
		return ev
	}
	return &InputEvent{}
}

// putEvent recycles a fully-handled (or dropped) event. Reset invariant: the
// struct is zeroed so a recycled event cannot leak a stale target or
// timestamp into its next flight.
func (d *InputDispatcher) putEvent(ev *InputEvent) {
	*ev = InputEvent{}
	d.free = append(d.free, ev)
}

func newInputDispatcher(sys *System) *InputDispatcher {
	return &InputDispatcher{
		sys:   sys,
		q:     sys.K.NewMsgQueue("input.dispatch"),
		chans: make(map[string]*inputChannel),
	}
}

// channel returns (creating on first use) the target's counter record.
func (d *InputDispatcher) channel(target string) *inputChannel {
	c, ok := d.chans[target]
	if !ok {
		c = &inputChannel{}
		d.chans[target] = c
	}
	return c
}

// inject queues one gesture's samples for the dispatcher thread. The send
// cost (the write into the input channel) charges to the calling thread, as
// the event-hub write does on a real device.
func (d *InputDispatcher) inject(ex *kernel.Exec, target string, kinds ...InputKind) {
	c := d.channel(target)
	for _, k := range kinds {
		c.injected++
		ev := d.getEvent()
		ev.Kind = k
		ev.Target = target
		ev.Posted = ex.Now()
		ex.Send(d.q, ev)
	}
}

// InjectTap queues a touch tap (down/up pair) aimed at the labelled app.
func (sys *System) InjectTap(ex *kernel.Exec, target string) {
	sys.Input.inject(ex, target, TouchDown, TouchUp)
}

// InjectKey queues a single key press aimed at the labelled app.
func (sys *System) InjectKey(ex *kernel.Exec, target string) {
	sys.Input.inject(ex, target, KeyPress)
}

// InjectSwipe queues a swipe gesture — a down, three move samples, and an
// up — aimed at the labelled app.
func (sys *System) InjectSwipe(ex *kernel.Exec, target string) {
	sys.Input.inject(ex, target, TouchDown, TouchMove, TouchMove, TouchMove, TouchUp)
}

// route is the dispatcher thread's focus decision for one event: deliver to
// the target's looper only if the target is alive, unpaused, and holds the
// foreground focus. Everything else is dropped here — posting input to a
// backgrounded or dying process is exactly how a real dispatcher produces
// "dropped event" logs rather than crashes.
func (d *InputDispatcher) route(ex *kernel.Exec, ev *InputEvent) {
	a := d.sys.appByLabel(ev.Target)
	if a == nil || a.Dead || a.Paused() || d.sys.amForeground != a {
		// Never delivered: counted as dropped at collection. The event's
		// flight ends here, so recycle it.
		d.putEvent(ev)
		return
	}
	a.Looper.Post(ex, Message{What: msgInput, Input: ev})
}

// noteDelivered records a handled event and its end-to-end latency. It runs
// on the receiving app's main thread, at handler start.
func (d *InputDispatcher) noteDelivered(ev *InputEvent, lat sim.Ticks) {
	c := d.channel(ev.Target)
	if c.delivered == 0 || lat < c.latMin {
		c.latMin = lat
	}
	if lat > c.latMax {
		c.latMax = lat
	}
	c.latSum += lat
	c.delivered++
}

// noteANR records a watchdog Application Not Responding flag against the
// labelled app, alongside its input-latency statistics: an ANR is the
// pathological tail of the same dispatch pipeline.
func (d *InputDispatcher) noteANR(target string) {
	d.channel(target).anrs++
}

// InputStats reports the per-target input outcome, sorted by target name.
// Dropped covers every injected event that was never handled: refused at
// routing, consumed unhandled while the target was paused, or still queued
// when the machine stopped.
func (sys *System) InputStats() []InputAppStats {
	d := sys.Input
	names := make([]string, 0, len(d.chans))
	for n := range d.chans {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]InputAppStats, 0, len(names))
	for _, n := range names {
		c := d.chans[n]
		out = append(out, InputAppStats{
			App:        n,
			Injected:   c.injected,
			Dispatched: c.delivered,
			Dropped:    c.injected - c.delivered,
			LatencyMin: c.latMin,
			LatencyMax: c.latMax,
			LatencySum: c.latSum,
			ANRs:       c.anrs,
		})
	}
	return out
}

// appByLabel resolves a target label to the most recently created live app
// under that label (relaunches reuse names; the newest incarnation owns the
// label, exactly as the newest process owns a package name on a device).
func (sys *System) appByLabel(label string) *App {
	for i := len(sys.amApps) - 1; i >= 0; i-- {
		if a := sys.amApps[i]; a.Cfg.Label == label && !a.Dead {
			return a
		}
	}
	return nil
}

// performInput is the app half of a delivery: record the end-to-end latency,
// charge the view-hierarchy dispatch that precedes any listener, then run
// the workload's input handler (which does the app-specific work — dalvik
// allocations, surface invalidations, media seeks).
func (a *App) performInput(ex *kernel.Exec, ev *InputEvent) {
	a.Sys.Input.noteDelivered(ev, ex.Now()-ev.Posted)
	a.VM.InterpBulk(ex, a.frameworkDexFor(ex), 1400, false)
	if a.OnInput != nil {
		a.OnInput(ex, a, ev)
	}
	// The handler is the end of the event's flight; handlers must not
	// retain ev past their return.
	a.Sys.Input.putEvent(ev)
}
