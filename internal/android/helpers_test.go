package android

import (
	"agave/internal/binder"
	"agave/internal/kernel"
	"agave/internal/loader"
	"agave/internal/media"
)

// mediaOpen is a test shim over media.Open.
func mediaOpen(ex *kernel.Exec, sys *System, kind string) (*media.Player, error) {
	return media.Open(ex, sys.Binder, kind)
}

// loaderLoadForTest maps the graphics library set for a bare compositor.
func loaderLoadForTest(p *kernel.Process) *loader.LinkMap {
	return loader.Load(p.AS, p.Layout, []string{"libskia.so", "libsurfaceflinger.so"})
}

var _ = binder.NewParcel
