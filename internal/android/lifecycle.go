package android

import (
	"agave/internal/kernel"
)

// Lifecycle message codes posted to an app's main looper. They mirror the
// ActivityThread.H handler constants: the ActivityManager decides a
// transition, the app's main thread performs it when it next drains its
// looper.
const (
	msgPause  = 101
	msgResume = 102
	// msgTrim is an onTrimMemory callback; Arg carries the severity level.
	// Unlike pause/resume it is handled even while the activity is parked
	// in its looper — cached apps are exactly the ones asked to shrink.
	msgTrim = 103
	// msgInput is an input event from the InputDispatcher; Input carries
	// the payload. It is handled only by a resumed activity — a paused
	// one consumes it unhandled (stale UI traffic), which the dispatcher's
	// accounting reports as a dropped event.
	msgInput = 104
)

// PausePoint is the main thread's lifecycle gate: workload bodies reach it
// once per UI iteration (FrameLoop and the apps package's uiPump call it
// automatically). It drains pending lifecycle messages without blocking; on
// a pause message the thread performs onPause, hides its surface, and parks
// in the looper until the resume message arrives — the ActivityThread flow,
// so a backgrounded app stops drawing and composing while its worker
// threads, AsyncTasks, and media sessions keep running.
func (a *App) PausePoint(ex *kernel.Exec) {
	for {
		raw, ok := a.Looper.q.TryRecv()
		if !ok {
			return
		}
		m := *raw.(*Message)
		a.Looper.putMsg(raw.(*Message))
		a.dispatchLifecycle(ex, m)
	}
}

// Paused reports whether the app's main thread is parked in its lifecycle
// looper (it has processed a pause and not yet a resume).
func (a *App) Paused() bool { return a.paused }

func (a *App) dispatchLifecycle(ex *kernel.Exec, m Message) {
	switch m.What {
	case msgPause:
		a.onPause(ex)
		// Park in the looper until resumed. Trim requests are honoured
		// even while parked; other non-lifecycle messages — input events
		// included — and redundant pauses are consumed and dropped, as a
		// real paused activity ignores stale UI traffic (the input
		// dispatcher's accounting reports those as dropped).
		for {
			next := a.Looper.recv(ex)
			switch next.What {
			case msgResume:
				a.onResume(ex)
				return
			case msgTrim:
				a.onTrimMemory(ex, int(next.Arg))
			default:
				// Consumed unhandled. An input event's payload is done
				// flying here — recycle it (the dispatcher's accounting
				// already reports it as dropped).
				if next.Input != nil {
					a.Sys.Input.putEvent(next.Input)
				}
			}
		}
	case msgResume:
		// Resume while already resumed: stale message, drop it.
	case msgTrim:
		a.onTrimMemory(ex, int(m.Arg))
	case msgInput:
		a.performInput(ex, m.Input)
	}
}

// onTrimMemory is the app's ComponentCallbacks2 response: framework bytecode
// for the callback dispatch, then the dalvik heap gives its free tail back
// to the machine — the cooperative half of surviving memory pressure.
func (a *App) onTrimMemory(ex *kernel.Exec, level int) {
	a.VM.InterpBulk(ex, a.frameworkDexFor(ex), 1800, false)
	if level >= TrimBackground {
		a.VM.TrimMemory(ex)
	}
}

// onPause runs the app side of backgrounding: onPause/onSaveInstanceState
// in framework bytecode, then the window drops out of composition.
func (a *App) onPause(ex *kernel.Exec) {
	a.paused = true
	a.VM.InterpBulk(ex, a.frameworkDexFor(ex), 2600, false)
	ex.StackWork(800)
	if a.Surface != nil {
		a.Surface.Visible = false
	}
}

// onResume brings the activity back: onRestart/onResume bytecode, the
// window re-enters composition, and a fullscreen app re-hides the launcher.
func (a *App) onResume(ex *kernel.Exec) {
	a.paused = false
	a.VM.InterpBulk(ex, a.frameworkDexFor(ex), 2100, false)
	ex.StackWork(600)
	if a.Surface != nil {
		a.Surface.Visible = true
	}
	if a.Cfg.Fullscreen {
		a.Sys.HideLauncher()
	}
}

// PauseApp drives the manager side of backgrounding a: an ActivityManager
// transaction in system_server, then the pause message posted to the app's
// main looper. The app performs its half at its next PausePoint; apps that
// never reach one (pure background services) simply ignore it, as real
// services outlive activity pauses.
func (sys *System) PauseApp(ex *kernel.Exec, a *App) {
	if a.Dead {
		return
	}
	if _, err := sys.Binder.Call(ex, "activity", 3, lifecycleParcel(a.Cfg.Label, "pause")); err != nil {
		panic(err)
	}
	sys.notePaused(a)
	a.Looper.Post(ex, Message{What: msgPause})
}

// ResumeApp brings a backgrounded app to the foreground: the AMS resume
// transaction plus the resume message that unparks the app's main thread.
func (sys *System) ResumeApp(ex *kernel.Exec, a *App) {
	if a.Dead {
		return
	}
	if _, err := sys.Binder.Call(ex, "activity", 2, lifecycleParcel(a.Cfg.Label, "resume")); err != nil {
		panic(err)
	}
	sys.noteResumed(a)
	a.Looper.Post(ex, Message{What: msgResume})
}

// KillApp tears application a down the way the ActivityManager kills a
// process: its media sessions stop (the client-death notification path),
// its binder endpoint leaves the context manager, its surface leaves
// composition, and every thread of the app process and its app_process
// helpers terminates. The dead App remains inspectable; launching a fresh
// app under the same name afterwards is allowed (the scenario engine's
// relaunch path).
func (sys *System) KillApp(ex *kernel.Exec, a *App) {
	if a.Dead {
		return
	}
	a.Dead = true
	if _, err := sys.Binder.Call(ex, "activity", 4, lifecycleParcel(a.Cfg.Label, "destroy")); err != nil {
		panic(err)
	}
	if sys.Media != nil {
		sys.Media.StopOwned(a.Proc)
	}
	sys.Binder.Unregister("app." + a.Cfg.Label)
	if a.Surface != nil {
		a.Surface.Visible = false
	}
	sys.K.KillProcess(a.Proc)
	for _, h := range a.HelperProcs {
		sys.K.KillProcess(h)
	}
	sys.noteDead(a)
	// Kernel-side exit bookkeeping: task teardown, address-space unmap.
	ex.Syscall(6000, 1500)
}
