package android

import (
	"fmt"

	"agave/internal/binder"
	"agave/internal/kernel"
	"agave/internal/sim"
)

// The fault-injection plane. Scenario fault events land here: the Injector
// arms one-shot binder transaction failures, crashes registered services
// and the mediaserver, and sends corrupt parcels — all from the scenario
// driver thread inside system_server, so chaos sessions replay
// byte-identically. The same object is the run's dependability scoreboard:
// faults injected, faults detected (some framework or app code observed the
// failure and took its error path), recoveries completed (crashed services
// and mediaserver sessions relaunched), and ANRs the watchdog raised.

// ANR watchdog tuning. The timeout must comfortably exceed the longest
// legitimate gap between looper drains — most workloads pump every 500 ms
// or faster, but countdown.main ticks once per second — or idle-but-healthy
// apps would be flagged; two simulated seconds is the dispatch-timeout
// stand-in for Android's five.
const (
	anrTimeout    = 2 * sim.Second
	anrPollPeriod = 100 * sim.Millisecond
)

// appPingCode is the transaction code of the framework liveness callback
// the Injector drives into an app's binder endpoint.
const appPingCode int32 = 7

// Injector is the system_server fault-injection plane plus the run's
// dependability counters.
type Injector struct {
	sys *System

	// faults holds armed one-shot binder failures by service name; the
	// fault hook consumes one arm per matching transaction.
	faults map[string]int

	injected  int
	detected  int
	recovered int
	anrs      int
}

func newInjector(sys *System) *Injector {
	return &Injector{sys: sys, faults: make(map[string]int)}
}

// Counts reports the dependability scoreboard: faults injected, faults
// detected, recoveries completed, and ANRs raised.
func (inj *Injector) Counts() (injected, detected, recovered, anrs int) {
	return inj.injected, inj.detected, inj.recovered, inj.anrs
}

// NoteRecovered records one completed recovery action (the scenario engine
// calls it after relaunching a crashed service).
func (inj *Injector) NoteRecovered() { inj.recovered++ }

// noteDetectedFault records that framework or application code observed an
// injected failure and took its error path instead of crashing.
func (sys *System) noteDetectedFault() { sys.Inject.detected++ }

// NoteDetectedFault is noteDetectedFault for workload code outside the
// framework package: app-side handlers call it when a binder error reaches
// them and they degrade gracefully instead of crashing.
func (sys *System) NoteDetectedFault() { sys.noteDetectedFault() }

// faultHook implements binder.FaultHook: an armed service name fails its
// next transaction (one arm per failure), everything else passes.
func (inj *Injector) faultHook(service string) error {
	n, ok := inj.faults[service]
	if !ok {
		return nil
	}
	if n <= 1 {
		delete(inj.faults, service)
	} else {
		inj.faults[service] = n - 1
	}
	return fmt.Errorf("binder: injected transaction failure on %q", service)
}

// frameworkPingParcel is the well-formed liveness callback payload: the
// interface header the app endpoint parses, plus the callback code.
func frameworkPingParcel(label string) *binder.Parcel {
	p := binder.NewParcel()
	p.WriteString("android.app.IApplicationThread")
	p.WriteString(label)
	return p
}

// InjectBinderFault arms a one-shot transaction failure on the labelled
// app's binder endpoint and drives a framework callback into it, so the
// injected error fires immediately and deterministically. The callback is
// oneway: a faulted (or dying) endpoint can never wedge the injecting
// thread. It reports false when the label has no live app — the fault
// drops, the runtime counterpart of the validator's liveness rule.
func (sys *System) InjectBinderFault(ex *kernel.Exec, label string) bool {
	a := sys.appByLabel(label)
	if a == nil || a.Dead {
		return false
	}
	inj := sys.Inject
	name := "app." + label
	inj.faults[name]++
	inj.injected++
	// AMS bookkeeping for the callback it is about to deliver.
	sys.SystemServerVM.InterpBulk(ex, sys.servicesDex, 900, false)
	if err := sys.Binder.CallOneway(ex, name, appPingCode, frameworkPingParcel(label)); err != nil {
		// The armed fault fired on our own ping: the framework logs the
		// failed transaction and moves on — detection, by construction.
		inj.detected++
		sys.SystemServerVM.InterpBulk(ex, sys.servicesDex, 600, false)
	}
	return true
}

// InjectCorruptParcel sends the labelled app's binder endpoint an empty
// parcel where the callback header is expected: every read underruns, so
// the receiver must take its error path (which reports the detection).
// Oneway, like InjectBinderFault; reports false when the target is dead.
func (sys *System) InjectCorruptParcel(ex *kernel.Exec, label string) bool {
	a := sys.appByLabel(label)
	if a == nil || a.Dead {
		return false
	}
	sys.Inject.injected++
	sys.SystemServerVM.InterpBulk(ex, sys.servicesDex, 900, false)
	if err := sys.Binder.CallOneway(ex, "app."+label, appPingCode, binder.NewParcel()); err != nil {
		// The endpoint vanished between the liveness check and the send:
		// the corruption never reached a receiver, but the framework saw
		// the failed transaction — still a detection.
		sys.Inject.detected++
		sys.SystemServerVM.InterpBulk(ex, sys.servicesDex, 600, false)
	}
	return true
}

// CrashApp tears application a down the way a native crash does: no
// orderly destroy transaction — the process just dies, binder's death
// notification fires, and the framework reaps the carcass (media sessions
// stopped, endpoint unregistered, surface hidden, helpers killed), exactly
// the KillApp teardown minus the app's own goodbye. Queued-but-unserved
// transactions to the dead endpoint complete with DEAD_REPLY so no client
// wedges on a reply that will never come. Counts one injected and one
// detected fault (the death notification is the detection).
func (sys *System) CrashApp(ex *kernel.Exec, a *App) {
	if a.Dead {
		return
	}
	a.Dead = true
	inj := sys.Inject
	inj.injected++
	if sys.Media != nil {
		sys.Media.StopOwned(a.Proc)
	}
	name := "app." + a.Cfg.Label
	svc, hadSvc := sys.Binder.Lookup(name)
	sys.Binder.Unregister(name)
	if a.Surface != nil {
		a.Surface.Visible = false
	}
	sys.K.KillProcess(a.Proc)
	for _, h := range a.HelperProcs {
		sys.K.KillProcess(h)
	}
	if hadSvc {
		sys.Binder.AbortPending(svc)
	}
	// Binder death notification + ActivityManager crash handling
	// (dropbox entry, process-record cleanup) in framework bytecode.
	sys.SystemServerVM.InterpBulk(ex, sys.servicesDex, 2800, false)
	sys.noteDead(a)
	inj.detected++
	// Kernel-side exit bookkeeping: task teardown, address-space unmap.
	ex.Syscall(6000, 1500)
}

// CrashMediaserver kills the mediaserver process outright and performs the
// init-style restart: the old process dies with its decode loops, binder
// pool, and mixer; queued transactions abort with DEAD_REPLY; a fresh
// mediaserver boots and adopts the old player sessions under their old ids
// (AdoptSessions), so client handles keep working and in-flight playback
// resumes on the replacement. It returns the number of active sessions
// relaunched; the scoreboard counts one injected and one detected fault,
// and one recovery per restart plus one per relaunched session.
func (sys *System) CrashMediaserver(ex *kernel.Exec) int {
	inj := sys.Inject
	inj.injected++
	old := sys.Media
	svc, hadSvc := sys.Binder.Lookup("media.player")
	sys.Binder.Unregister("media.player")
	sys.K.KillProcess(old.Proc)
	if hadSvc {
		sys.Binder.AbortPending(svc)
	}
	// init notices the death (SIGCHLD, service-restart bookkeeping) and
	// the framework logs the media.player death notification.
	sys.SystemServerVM.InterpBulk(ex, sys.servicesDex, 1200, false)
	inj.detected++
	ex.Syscall(6000, 1500)
	sys.startMediaserver()
	relaunched := sys.Media.AdoptSessions(old)
	inj.recovered += 1 + relaunched
	// Restart cost: fork/exec of the service binary.
	ex.Syscall(3000, 800)
	return relaunched
}

// scanForANRs is the AnrWatchdog's poll: age the head message of each
// candidate app's main looper and raise an ANR for any blocked strictly
// past anrTimeout, latched per episode (the latch re-arms when the looper
// drains). Candidates are resumed foreground-capable apps other than the
// launcher and systemui — those two, like pure background services, post
// periodic trim traffic into loopers that by design never drain, so aging
// them would manufacture false positives; paused apps park inside their
// looper Recv and consume messages promptly.
func (inj *Injector) scanForANRs(ex *kernel.Exec) {
	inj.scanForANRsAt(ex, ex.Now())
}

// scanForANRsAt is the poll body with the observation time factored out:
// every head message is aged against now, the poll's entry instant, so the
// timeout boundary is exact and testable (the bytecode the walk itself
// charges does not smear into the age comparison).
func (inj *Injector) scanForANRsAt(ex *kernel.Exec, now sim.Ticks) {
	sys := inj.sys
	// The record walk itself is framework bytecode in system_server.
	sys.SystemServerVM.InterpBulk(ex, sys.servicesDex, 150, false)
	for _, a := range sys.amApps {
		if a.Dead || !a.Cfg.Foreground || a == sys.Launcher || a == sys.SystemUI || a.Paused() {
			continue
		}
		head, ok := a.Looper.Oldest()
		if !ok {
			a.anrFlagged = false
			continue
		}
		if now-head.Posted <= anrTimeout {
			continue
		}
		if a.anrFlagged {
			continue
		}
		a.anrFlagged = true
		inj.anrs++
		// The ANR report: stack dumps and the not-responding dialog path.
		sys.SystemServerVM.InterpBulk(ex, sys.servicesDex, 1500, false)
		sys.Input.noteANR(a.Cfg.Label)
	}
}
