package dalvik

import (
	"fmt"

	"agave/internal/dex"
	"agave/internal/kernel"
	"agave/internal/stats"
)

// acct batches interpreter accounting so the per-bytecode hot path is plain
// integer arithmetic; counters flush to the collector in quantum-sized
// slices. Totals are exact; only intra-slice interleaving is coalesced.
type acct struct {
	dvmFetch, jitFetch       uint64
	dexRead                  uint64
	stackRead, stackWrite    uint64
	flushEvery, sinceFlushed uint64
}

const interpFlush = 2048 // bytecodes between accounting flushes

// Exec interprets method in d until it returns, and returns its result.
// Arguments arrive in the callee's v0..v(n-1).
//
// Attribution: dispatch/execute instructions fetch from libdvm.so (or
// dalvik-jit-code-cache once the method is compiled), each bytecode word is
// a data read from the dex mapping (elided when compiled), register-file
// traffic hits the thread stack, and array/field/alloc traffic hits
// dalvik-heap.
func (vm *VM) Exec(ex *kernel.Exec, d *LoadedDex, method string, args ...int64) int64 {
	mi := d.File.MethodIndex(method)
	if mi < 0 {
		panic(fmt.Sprintf("dalvik: no method %q in %s", method, d.File.Name))
	}
	a := &acct{}
	ret := vm.execMethod(ex, d, mi, args, a, 0)
	vm.flush(ex, a)
	return ret
}

func (vm *VM) flush(ex *kernel.Exec, a *acct) {
	if a.dvmFetch > 0 {
		ex.InCode(vm.LibDVM, func() { ex.Fetch(a.dvmFetch) })
	}
	if a.jitFetch > 0 {
		ex.InCode(vm.JITVMA, func() { ex.Fetch(a.jitFetch) })
	}
	// Note: a.dexRead is flushed at its call sites, which know the dex VMA.
	st := ex.T.Stack
	c := ex.K.Stats
	if st != nil {
		c.Add(ex.P.StatID, ex.T.StatID, st.Region, stats.DataRead, a.stackRead)
		c.Add(ex.P.StatID, ex.T.StatID, st.Region, stats.DataWrite, a.stackWrite)
	}
	a.dvmFetch, a.jitFetch, a.stackRead, a.stackWrite = 0, 0, 0, 0
	a.sinceFlushed = 0
}

func (vm *VM) execMethod(ex *kernel.Exec, d *LoadedDex, mi int, args []int64, a *acct, depth int) int64 {
	if depth > 64 {
		panic("dalvik: interpreter recursion too deep")
	}
	m := d.File.Methods[mi]
	key := methodKey{dex: d.File.Name, method: m.Name}
	vm.noteHot(ex, d, mi, key, 1)
	isJit := vm.compiled[key]

	var regs [dex.NumRegs]int64
	copy(regs[:], args)
	var lastResult int64

	img := d.VMA.Bytes()
	base := d.codeOff[mi]

	pc := 0
	for {
		if pc < 0 || pc >= len(m.Code) {
			panic(fmt.Sprintf("dalvik: pc %d out of range in %s", pc, m.Name))
		}
		// Genuinely decode the instruction word from the mapped image.
		o := base + uint64(pc)*4
		ins := dex.DecodeInstr([4]byte{img[o], img[o+1], img[o+2], img[o+3]})

		if isJit {
			a.jitFetch += jitCost
		} else {
			a.dvmFetch += interpCost
			a.dexRead++
		}
		a.stackRead += 2
		a.stackWrite++
		a.sinceFlushed++
		if a.sinceFlushed >= interpFlush {
			if a.dexRead > 0 {
				ex.Read(d.VMA, a.dexRead)
				a.dexRead = 0
			}
			vm.flush(ex, a)
		}
		vm.countTrace(ex, d, mi, key)

		pc++
		switch ins.Op {
		case dex.OpNop:
		case dex.OpConst:
			regs[ins.A] = int64(ins.Imm())
		case dex.OpMove:
			regs[ins.A] = regs[ins.B]
		case dex.OpAdd:
			regs[ins.A] = regs[ins.B] + regs[ins.C]
		case dex.OpSub:
			regs[ins.A] = regs[ins.B] - regs[ins.C]
		case dex.OpMul:
			regs[ins.A] = regs[ins.B] * regs[ins.C]
		case dex.OpDiv:
			if regs[ins.C] == 0 {
				regs[ins.A] = 0
			} else {
				regs[ins.A] = regs[ins.B] / regs[ins.C]
			}
		case dex.OpRem:
			if regs[ins.C] == 0 {
				regs[ins.A] = 0
			} else {
				regs[ins.A] = regs[ins.B] % regs[ins.C]
			}
		case dex.OpAnd:
			regs[ins.A] = regs[ins.B] & regs[ins.C]
		case dex.OpOr:
			regs[ins.A] = regs[ins.B] | regs[ins.C]
		case dex.OpXor:
			regs[ins.A] = regs[ins.B] ^ regs[ins.C]
		case dex.OpShl:
			regs[ins.A] = regs[ins.B] << (uint64(regs[ins.C]) & 63)
		case dex.OpShr:
			regs[ins.A] = regs[ins.B] >> (uint64(regs[ins.C]) & 63)
		case dex.OpAddI:
			regs[ins.A] = regs[ins.B] + int64(int8(ins.C))
		case dex.OpIfEq:
			if regs[ins.A] == regs[ins.B] {
				pc += int(ins.BranchOff())
				vm.noteBackedge(ex, d, mi, key, int16(ins.BranchOff()))
			}
		case dex.OpIfNe:
			if regs[ins.A] != regs[ins.B] {
				pc += int(ins.BranchOff())
				vm.noteBackedge(ex, d, mi, key, int16(ins.BranchOff()))
			}
		case dex.OpIfLt:
			if regs[ins.A] < regs[ins.B] {
				pc += int(ins.BranchOff())
				vm.noteBackedge(ex, d, mi, key, int16(ins.BranchOff()))
			}
		case dex.OpIfGe:
			if regs[ins.A] >= regs[ins.B] {
				pc += int(ins.BranchOff())
				vm.noteBackedge(ex, d, mi, key, int16(ins.BranchOff()))
			}
		case dex.OpGoto:
			pc += int(ins.Imm())
			vm.noteBackedge(ex, d, mi, key, ins.Imm())
		case dex.OpNewArray:
			regs[ins.A] = int64(vm.AllocArray(ex, regs[ins.B]))
		case dex.OpArrayLen:
			regs[ins.A] = vm.ArrayLen(ex, uint64(regs[ins.B]))
		case dex.OpAGet:
			regs[ins.A] = vm.ArrayGet(ex, uint64(regs[ins.B]), regs[ins.C])
		case dex.OpAPut:
			vm.ArrayPut(ex, uint64(regs[ins.B]), regs[ins.C], regs[ins.A])
		case dex.OpNewObj:
			regs[ins.A] = int64(vm.AllocObject(ex, int(ins.B)))
		case dex.OpIGet:
			regs[ins.A] = vm.FieldGet(ex, uint64(regs[ins.B]), int(ins.C))
		case dex.OpIPut:
			vm.FieldPut(ex, uint64(regs[ins.B]), int(ins.C), regs[ins.A])
		case dex.OpInvoke:
			var callArgs []int64
			if ins.A > 0 {
				callArgs = regs[ins.C : int(ins.C)+int(ins.A)]
			}
			a.stackWrite += uint64(ins.A) + 2 // frame push
			lastResult = vm.execMethod(ex, d, int(ins.B), callArgs, a, depth+1)
		case dex.OpMoveRes:
			regs[ins.A] = lastResult
		case dex.OpReturn:
			if a.dexRead > 0 {
				ex.Read(d.VMA, a.dexRead)
				a.dexRead = 0
			}
			return regs[ins.A]
		case dex.OpRetVoid:
			if a.dexRead > 0 {
				ex.Read(d.VMA, a.dexRead)
				a.dexRead = 0
			}
			return 0
		default:
			panic(fmt.Sprintf("dalvik: bad opcode %v (verify the dex)", ins.Op))
		}

		// A method compiled mid-execution switches attribution at the
		// next loop head, like a real trace JIT entering compiled code.
		if !isJit && vm.compiled[key] {
			isJit = true
		}
	}
}

// noteHot counts an invoke; crossing the threshold enqueues a compile.
func (vm *VM) noteHot(ex *kernel.Exec, d *LoadedDex, mi int, key methodKey, weight int) {
	if !vm.JITEnabled || vm.compiled[key] {
		return
	}
	vm.hot[key] += weight
	if vm.hot[key] >= hotThreshold {
		vm.hot[key] = 0
		ex.Send(vm.compileQueue, compileReq{d: d, mi: mi, key: key})
	}
}

// noteBackedge treats taken backward branches as extra hotness, as Dalvik's
// trace JIT did.
func (vm *VM) noteBackedge(ex *kernel.Exec, d *LoadedDex, mi int, key methodKey, rel int16) {
	if rel < 0 {
		vm.noteHot(ex, d, mi, key, 1)
	}
}

// InterpBulk models sustained interpretation of framework/library bytecode
// at statistically calibrated per-bytecode costs, without running a real
// program. Workload models combine real Exec calls (semantics) with
// InterpBulk (volume): the attribution profile is identical; see DESIGN.md.
//
// Per simulated bytecode: interpCost libdvm.so fetches (or jitCost fetches
// from the JIT cache for the warmed fraction), one dex-image read, ~3 stack
// references, and a configurable dalvik-heap mix.
func (vm *VM) InterpBulk(ex *kernel.Exec, d *LoadedDex, bytecodes uint64, heavyAlloc bool) {
	if bytecodes == 0 {
		return
	}
	jitShare := uint64(0)
	if vm.JITEnabled {
		// Warmed fraction of execution running from the code cache.
		jitShare = 45
		if len(vm.compiled) == 0 {
			jitShare = 10
		}
	}
	jitBC := bytecodes * jitShare / 100
	interpBC := bytecodes - jitBC

	ex.InCode(vm.LibDVM, func() {
		ex.Do(kernel.Work{Fetch: interpCost, Reads: 1, Data: d.VMA}, interpBC)
		// Register file traffic on the thread stack.
		ex.Do(kernel.Work{Fetch: 1, Reads: 2, Writes: 1, Data: ex.T.Stack}, bytecodes/2)
		// Object traffic: field/array ops against the managed heap —
		// roughly every other bytecode touches an object.
		heapOps := bytecodes / 2
		ex.Do(kernel.Work{Fetch: 1, Reads: 1, Data: vm.HeapVMA}, heapOps*2/3)
		ex.Do(kernel.Work{Fetch: 1, Writes: 1, Data: vm.HeapVMA}, heapOps/3)
	})
	if jitBC > 0 {
		ex.InCode(vm.JITVMA, func() {
			ex.Do(kernel.Work{Fetch: jitCost, Reads: 1, Data: vm.HeapVMA}, jitBC)
		})
	}

	// Allocation pressure feeds the GC, heavier for allocation-happy code.
	allocBytes := bytecodes / 8
	if heavyAlloc {
		allocBytes = bytecodes * 3
	}
	vm.allocSinceGC += allocBytes
	for vm.allocSinceGC >= gcThreshold {
		vm.allocSinceGC -= gcThreshold
		vm.heapTop = 16 + (vm.heapTop+allocBytes)%(vm.HeapVMA.Size()-16)
		ex.Send(vm.gcQueue, gcReq{used: maxU64(vm.heapTop, gcThreshold)})
	}

	// Sustained interpretation keeps discovering hot traces (Gingerbread's
	// trace JIT), keeping the Compiler thread busy for the whole run.
	if vm.JITEnabled {
		vm.sinceTrace += bytecodes
		for vm.sinceTrace >= traceEvery {
			vm.sinceTrace -= traceEvery
			mi := int(vm.sinceTrace/977) % len(d.File.Methods)
			key := methodKey{dex: d.File.Name, method: fmt.Sprintf("%s#trace%d", d.File.Methods[mi].Name, vm.compilesDone)}
			ex.Send(vm.compileQueue, compileReq{d: d, mi: mi, key: key})
		}
	}
}

// countTrace feeds the steady-state trace-discovery counter from real
// interpretation, so heavy Exec use also keeps the Compiler thread warm.
func (vm *VM) countTrace(ex *kernel.Exec, d *LoadedDex, mi int, key methodKey) {
	if !vm.JITEnabled {
		return
	}
	vm.sinceTrace++
	if vm.sinceTrace >= traceEvery {
		vm.sinceTrace = 0
		ex.Send(vm.compileQueue, compileReq{d: d, mi: mi, key: methodKey{
			dex: d.File.Name, method: fmt.Sprintf("%s#trace%d", key.method, vm.compilesDone),
		}})
	}
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
