package dalvik

import (
	"fmt"

	"agave/internal/dex"
	"agave/internal/kernel"
	"agave/internal/stats"
)

// This file is the Dalvik bytecode interpreter, organized as two dispatch
// loops over pre-decoded code (see docs/ARCHITECTURE.md):
//
//   - runInterp: threaded dispatch through opTable, one handler per opcode,
//     charging the interpreted cost model (libdvm.so fetches + a dex-image
//     read per bytecode).
//   - runCompiled: the "compiled" form of a method — per-method closure
//     programs with pre-resolved register operands and fused ALU/ALU and
//     ALU/branch superinstructions — charging the JIT cost model (code-cache
//     fetches, no dex read).
//
// Both loops produce byte-identical attribution to the historical
// switch-threaded interpreter: the per-bytecode accounting sequence (fetch
// and stack counters, the flush boundary every interpFlush bytecodes, the
// trace-discovery counter) is preserved exactly, so golden reports and the
// determinism sweep do not move.

// acct batches interpreter accounting so the per-bytecode hot path is plain
// integer arithmetic; counters flush to the collector in quantum-sized
// slices. Totals are exact; only intra-slice interleaving is coalesced.
type acct struct {
	dvmFetch, jitFetch    uint64
	dexRead               uint64
	stackRead, stackWrite uint64
	sinceFlushed          uint64
}

const interpFlush = 2048 // bytecodes between accounting flushes

// frame is one method activation: the virtual register file plus the
// execution context the opcode handlers need. Handlers communicate control
// flow back to the dispatch loop through pc, returned, and yielded.
type frame struct {
	regs       [dex.NumRegs]int64
	lastResult int64
	pc         int
	ret        int64
	returned   bool

	// yielded is set by any handler that may have released the simulated
	// CPU (heap traffic, invokes, accounting flushes, compile-queue sends).
	// The VM's compiled map can only change while another simulated thread
	// runs, and the scheduler is strict-handoff, so the interpreter re-reads
	// the map only after instructions that set this flag — replacing the
	// historical per-bytecode map lookup without changing behavior.
	yielded bool

	vm    *VM
	ex    *kernel.Exec
	d     *LoadedDex
	a     *acct
	m     *dex.Method
	mi    int
	key   methodKey
	depth int
}

// Exec interprets method in d until it returns, and returns its result.
// Arguments arrive in the callee's v0..v(n-1).
//
// Attribution: dispatch/execute instructions fetch from libdvm.so (or
// dalvik-jit-code-cache once the method is compiled), each bytecode word is
// a data read from the dex mapping (elided when compiled), register-file
// traffic hits the thread stack, and array/field/alloc traffic hits
// dalvik-heap.
func (vm *VM) Exec(ex *kernel.Exec, d *LoadedDex, method string, args ...int64) int64 {
	mi := d.File.MethodIndex(method)
	if mi < 0 {
		panic(fmt.Sprintf("dalvik: no method %q in %s", method, d.File.Name))
	}
	a := &acct{}
	ret := vm.execMethod(ex, d, mi, args, a, 0)
	vm.flush(ex, a)
	return ret
}

func (vm *VM) flush(ex *kernel.Exec, a *acct) {
	if a.dvmFetch > 0 {
		ex.InCode(vm.LibDVM, func() { ex.Fetch(a.dvmFetch) })
	}
	if a.jitFetch > 0 {
		ex.InCode(vm.JITVMA, func() { ex.Fetch(a.jitFetch) })
	}
	// Note: a.dexRead is flushed at its call sites, which know the dex VMA.
	st := ex.T.Stack
	c := ex.K.Stats
	if st != nil {
		c.Add(ex.P.StatID, ex.T.StatID, st.Region, stats.DataRead, a.stackRead)
		c.Add(ex.P.StatID, ex.T.StatID, st.Region, stats.DataWrite, a.stackWrite)
	}
	a.dvmFetch, a.jitFetch, a.stackRead, a.stackWrite = 0, 0, 0, 0
	a.sinceFlushed = 0
}

func (vm *VM) execMethod(ex *kernel.Exec, d *LoadedDex, mi int, args []int64, a *acct, depth int) int64 {
	if depth > 64 {
		panic("dalvik: interpreter recursion too deep")
	}
	m := d.File.Methods[mi]
	key := methodKey{dex: d.File.Name, method: m.Name}
	vm.noteHot(ex, d, mi, key, 1)

	fr := &frame{vm: vm, ex: ex, d: d, a: a, m: m, mi: mi, key: key, depth: depth}
	copy(fr.regs[:], args)

	if vm.compiled[key] {
		return vm.runCompiled(fr)
	}
	return vm.runInterp(fr)
}

// runInterp executes fr's method from fr.pc in interpreted mode: threaded
// dispatch over the pre-decoded code, charging interpCost libdvm.so fetches
// and one dex-image read per bytecode.
func (vm *VM) runInterp(fr *frame) int64 {
	code := fr.d.pre[fr.mi]
	a, ex, d, key := fr.a, fr.ex, fr.d, fr.key
	for {
		pc := fr.pc
		if pc < 0 || pc >= len(code) {
			panic(fmt.Sprintf("dalvik: pc %d out of range in %s", pc, fr.m.Name))
		}
		ins := code[pc]

		a.dvmFetch += interpCost
		a.dexRead++
		a.stackRead += 2
		a.stackWrite++
		a.sinceFlushed++
		if a.sinceFlushed >= interpFlush {
			ex.Read(d.VMA, a.dexRead)
			a.dexRead = 0
			vm.flush(ex, a)
			fr.yielded = true
		}
		if vm.JITEnabled {
			vm.sinceTrace++
			if vm.sinceTrace >= traceEvery {
				vm.sinceTrace = 0
				vm.sendTrace(ex, d, fr.mi, key)
				fr.yielded = true
			}
		}

		fr.pc = pc + 1
		opTable[ins.Op](fr, ins)
		if fr.returned {
			return fr.ret
		}
		if fr.yielded {
			fr.yielded = false
			// A method compiled mid-execution switches attribution at the
			// next loop head, like a real trace JIT entering compiled code.
			if vm.compiled[key] {
				return vm.runCompiled(fr)
			}
		}
	}
}

// runCompiled executes fr's method from fr.pc in compiled mode: each slot of
// the method's closure program charges jitCost code-cache fetches per covered
// bytecode and never reads the dex image. Entry is valid at any pc (the
// program keeps a one-slot-per-bytecode identity mapping), so an interpreted
// prefix can hand over mid-method.
func (vm *VM) runCompiled(fr *frame) int64 {
	prog := fr.d.prog(fr.mi)
	for {
		pc := fr.pc
		if pc < 0 || pc >= len(prog) {
			panic(fmt.Sprintf("dalvik: pc %d out of range in %s", pc, fr.m.Name))
		}
		prog[pc](fr)
		if fr.returned {
			return fr.ret
		}
	}
}

// chargeJIT is the compiled-mode per-bytecode accounting step. It mirrors
// the interpreted step exactly, with the JIT cost model: jitCost code-cache
// fetches, no dex read (any residue from an interpreted prefix still drains
// at the flush boundary), and the same trace-discovery counter.
func (fr *frame) chargeJIT() {
	a := fr.a
	a.jitFetch += jitCost
	a.stackRead += 2
	a.stackWrite++
	a.sinceFlushed++
	if a.sinceFlushed >= interpFlush {
		if a.dexRead > 0 {
			fr.ex.Read(fr.d.VMA, a.dexRead)
			a.dexRead = 0
		}
		fr.vm.flush(fr.ex, a)
	}
	vm := fr.vm
	if vm.JITEnabled {
		vm.sinceTrace++
		if vm.sinceTrace >= traceEvery {
			vm.sinceTrace = 0
			vm.sendTrace(fr.ex, fr.d, fr.mi, fr.key)
		}
	}
}

// --- interpreted dispatch table ---

type opFn func(fr *frame, ins dex.Instr)

// opTable is the threaded-dispatch jump table, indexed by the full uint8
// opcode space so the dispatch load needs no bounds check; undefined opcodes
// dispatch to opBad.
var opTable [256]opFn

func opBad(fr *frame, ins dex.Instr) {
	panic(fmt.Sprintf("dalvik: bad opcode %v (verify the dex)", ins.Op))
}

// branch applies a taken branch: pc was already advanced past the
// instruction, so off is relative to the successor, matching the assembler's
// encoding. Taken backedges feed JIT hotness and may send a compile request
// (hence yielded).
func branch(fr *frame, off int) {
	fr.pc += off
	if off < 0 && fr.vm.JITEnabled {
		fr.vm.noteBackedge(fr.ex, fr.d, fr.mi, fr.key, int16(off))
		fr.yielded = true
	}
}

func init() {
	for i := range opTable {
		opTable[i] = opBad
	}
	opTable[dex.OpNop] = func(fr *frame, ins dex.Instr) {}
	opTable[dex.OpConst] = func(fr *frame, ins dex.Instr) { fr.regs[ins.A] = int64(ins.Imm()) }
	opTable[dex.OpMove] = func(fr *frame, ins dex.Instr) { fr.regs[ins.A] = fr.regs[ins.B] }
	opTable[dex.OpAdd] = func(fr *frame, ins dex.Instr) { fr.regs[ins.A] = fr.regs[ins.B] + fr.regs[ins.C] }
	opTable[dex.OpSub] = func(fr *frame, ins dex.Instr) { fr.regs[ins.A] = fr.regs[ins.B] - fr.regs[ins.C] }
	opTable[dex.OpMul] = func(fr *frame, ins dex.Instr) { fr.regs[ins.A] = fr.regs[ins.B] * fr.regs[ins.C] }
	opTable[dex.OpDiv] = func(fr *frame, ins dex.Instr) {
		// Zero divisor yields 0 (documented divergence; see internal/dex/isa.go).
		if fr.regs[ins.C] == 0 {
			fr.regs[ins.A] = 0
		} else {
			fr.regs[ins.A] = fr.regs[ins.B] / fr.regs[ins.C]
		}
	}
	opTable[dex.OpRem] = func(fr *frame, ins dex.Instr) {
		if fr.regs[ins.C] == 0 {
			fr.regs[ins.A] = 0
		} else {
			fr.regs[ins.A] = fr.regs[ins.B] % fr.regs[ins.C]
		}
	}
	opTable[dex.OpAnd] = func(fr *frame, ins dex.Instr) { fr.regs[ins.A] = fr.regs[ins.B] & fr.regs[ins.C] }
	opTable[dex.OpOr] = func(fr *frame, ins dex.Instr) { fr.regs[ins.A] = fr.regs[ins.B] | fr.regs[ins.C] }
	opTable[dex.OpXor] = func(fr *frame, ins dex.Instr) { fr.regs[ins.A] = fr.regs[ins.B] ^ fr.regs[ins.C] }
	opTable[dex.OpShl] = func(fr *frame, ins dex.Instr) {
		fr.regs[ins.A] = fr.regs[ins.B] << (uint64(fr.regs[ins.C]) & 63)
	}
	opTable[dex.OpShr] = func(fr *frame, ins dex.Instr) {
		fr.regs[ins.A] = fr.regs[ins.B] >> (uint64(fr.regs[ins.C]) & 63)
	}
	opTable[dex.OpAddI] = func(fr *frame, ins dex.Instr) { fr.regs[ins.A] = fr.regs[ins.B] + int64(int8(ins.C)) }
	opTable[dex.OpIfEq] = func(fr *frame, ins dex.Instr) {
		if fr.regs[ins.A] == fr.regs[ins.B] {
			branch(fr, int(ins.BranchOff()))
		}
	}
	opTable[dex.OpIfNe] = func(fr *frame, ins dex.Instr) {
		if fr.regs[ins.A] != fr.regs[ins.B] {
			branch(fr, int(ins.BranchOff()))
		}
	}
	opTable[dex.OpIfLt] = func(fr *frame, ins dex.Instr) {
		if fr.regs[ins.A] < fr.regs[ins.B] {
			branch(fr, int(ins.BranchOff()))
		}
	}
	opTable[dex.OpIfGe] = func(fr *frame, ins dex.Instr) {
		if fr.regs[ins.A] >= fr.regs[ins.B] {
			branch(fr, int(ins.BranchOff()))
		}
	}
	opTable[dex.OpGoto] = func(fr *frame, ins dex.Instr) { branch(fr, int(ins.Imm())) }
	opTable[dex.OpNewArray] = func(fr *frame, ins dex.Instr) {
		fr.regs[ins.A] = int64(fr.vm.AllocArray(fr.ex, fr.regs[ins.B]))
		fr.yielded = true
	}
	opTable[dex.OpArrayLen] = func(fr *frame, ins dex.Instr) {
		fr.regs[ins.A] = fr.vm.ArrayLen(fr.ex, uint64(fr.regs[ins.B]))
		fr.yielded = true
	}
	opTable[dex.OpAGet] = func(fr *frame, ins dex.Instr) {
		fr.regs[ins.A] = fr.vm.ArrayGet(fr.ex, uint64(fr.regs[ins.B]), fr.regs[ins.C])
		fr.yielded = true
	}
	opTable[dex.OpAPut] = func(fr *frame, ins dex.Instr) {
		fr.vm.ArrayPut(fr.ex, uint64(fr.regs[ins.B]), fr.regs[ins.C], fr.regs[ins.A])
		fr.yielded = true
	}
	opTable[dex.OpNewObj] = func(fr *frame, ins dex.Instr) {
		fr.regs[ins.A] = int64(fr.vm.AllocObject(fr.ex, int(ins.B)))
		fr.yielded = true
	}
	opTable[dex.OpIGet] = func(fr *frame, ins dex.Instr) {
		fr.regs[ins.A] = fr.vm.FieldGet(fr.ex, uint64(fr.regs[ins.B]), int(ins.C))
		fr.yielded = true
	}
	opTable[dex.OpIPut] = func(fr *frame, ins dex.Instr) {
		fr.vm.FieldPut(fr.ex, uint64(fr.regs[ins.B]), int(ins.C), fr.regs[ins.A])
		fr.yielded = true
	}
	opTable[dex.OpInvoke] = func(fr *frame, ins dex.Instr) {
		var callArgs []int64
		if ins.A > 0 {
			// The callee copies this window into its own register file at
			// entry, giving call-time snapshot semantics.
			callArgs = fr.regs[ins.C : int(ins.C)+int(ins.A)]
		}
		fr.a.stackWrite += uint64(ins.A) + 2 // frame push
		fr.lastResult = fr.vm.execMethod(fr.ex, fr.d, int(ins.B), callArgs, fr.a, fr.depth+1)
		fr.yielded = true
	}
	opTable[dex.OpMoveRes] = func(fr *frame, ins dex.Instr) { fr.regs[ins.A] = fr.lastResult }
	opTable[dex.OpReturn] = func(fr *frame, ins dex.Instr) {
		if fr.a.dexRead > 0 {
			fr.ex.Read(fr.d.VMA, fr.a.dexRead)
			fr.a.dexRead = 0
		}
		fr.returned = true
		fr.ret = fr.regs[ins.A]
	}
	opTable[dex.OpRetVoid] = func(fr *frame, ins dex.Instr) {
		if fr.a.dexRead > 0 {
			fr.ex.Read(fr.d.VMA, fr.a.dexRead)
			fr.a.dexRead = 0
		}
		fr.returned = true
		fr.ret = 0
	}
}

// --- compiled-form lowering ---

// cop is one slot of a method's compiled program. Slot i covers execution
// starting at bytecode i: usually that one bytecode, or a fused pair (i, i+1)
// when the pair is eligible. Because the mapping is identity and every slot
// remains individually enterable, branches and mid-method handover need no
// pc translation.
type cop func(*frame)

// prog returns d's compiled program for method mi, lowering it on first use.
// Programs capture only operand values and branch targets — never a VM or
// frame — so zygote children share them via ForkVM.
func (d *LoadedDex) prog(mi int) []cop {
	if p := d.progs[mi]; p != nil {
		return p
	}
	p := buildCompiled(d.pre[mi])
	d.progs[mi] = p
	return p
}

func buildCompiled(code []dex.Instr) []cop {
	prog := make([]cop, len(code))
	for pc := range code {
		prog[pc] = compileSlot(code, pc)
	}
	return prog
}

// compileSlot lowers the instruction at pc. Pure ALU ops get pre-resolved
// operand closures and fuse greedily with a following ALU op or branch
// (cmp+branch, const+add, ...); each fused part still charges its own
// per-bytecode accounting, so fusion saves dispatch work only. Everything
// with side effects outside the register file (heap ops, invokes, returns)
// reuses the interpreter's handler under JIT accounting.
func compileSlot(code []dex.Instr, pc int) cop {
	ins := code[pc]
	next := pc + 1
	if p1 := aluExec(ins); p1 != nil {
		if next < len(code) {
			if p2 := aluExec(code[next]); p2 != nil {
				after := next + 1
				return func(fr *frame) {
					fr.chargeJIT()
					p1(fr)
					fr.chargeJIT()
					p2(fr)
					fr.pc = after
				}
			}
			if p2 := branchExec(code[next], next); p2 != nil {
				return func(fr *frame) {
					fr.chargeJIT()
					p1(fr)
					fr.chargeJIT()
					p2(fr)
				}
			}
		}
		return func(fr *frame) {
			fr.chargeJIT()
			p1(fr)
			fr.pc = next
		}
	}
	if p := branchExec(ins, pc); p != nil {
		return func(fr *frame) {
			fr.chargeJIT()
			p(fr)
		}
	}
	h := opTable[ins.Op]
	return func(fr *frame) {
		fr.chargeJIT()
		fr.pc = next
		h(fr, ins)
	}
}

// aluExec lowers a pure register-file op (no branches, no heap, no yields)
// into a closure with pre-resolved operands, or nil if ins is not one.
func aluExec(ins dex.Instr) func(*frame) {
	a, b, c := int(ins.A), int(ins.B), int(ins.C)
	switch ins.Op {
	case dex.OpNop:
		return func(fr *frame) {}
	case dex.OpConst:
		imm := int64(ins.Imm())
		return func(fr *frame) { fr.regs[a] = imm }
	case dex.OpMove:
		return func(fr *frame) { fr.regs[a] = fr.regs[b] }
	case dex.OpAdd:
		return func(fr *frame) { fr.regs[a] = fr.regs[b] + fr.regs[c] }
	case dex.OpSub:
		return func(fr *frame) { fr.regs[a] = fr.regs[b] - fr.regs[c] }
	case dex.OpMul:
		return func(fr *frame) { fr.regs[a] = fr.regs[b] * fr.regs[c] }
	case dex.OpDiv:
		return func(fr *frame) {
			if fr.regs[c] == 0 {
				fr.regs[a] = 0
			} else {
				fr.regs[a] = fr.regs[b] / fr.regs[c]
			}
		}
	case dex.OpRem:
		return func(fr *frame) {
			if fr.regs[c] == 0 {
				fr.regs[a] = 0
			} else {
				fr.regs[a] = fr.regs[b] % fr.regs[c]
			}
		}
	case dex.OpAnd:
		return func(fr *frame) { fr.regs[a] = fr.regs[b] & fr.regs[c] }
	case dex.OpOr:
		return func(fr *frame) { fr.regs[a] = fr.regs[b] | fr.regs[c] }
	case dex.OpXor:
		return func(fr *frame) { fr.regs[a] = fr.regs[b] ^ fr.regs[c] }
	case dex.OpShl:
		return func(fr *frame) { fr.regs[a] = fr.regs[b] << (uint64(fr.regs[c]) & 63) }
	case dex.OpShr:
		return func(fr *frame) { fr.regs[a] = fr.regs[b] >> (uint64(fr.regs[c]) & 63) }
	case dex.OpAddI:
		imm := int64(int8(ins.C))
		return func(fr *frame) { fr.regs[a] = fr.regs[b] + imm }
	case dex.OpMoveRes:
		return func(fr *frame) { fr.regs[a] = fr.lastResult }
	}
	return nil
}

// branchExec lowers a branch at pc into a closure with the taken and
// fall-through targets pre-resolved, or nil if ins is not a branch. Compiled
// methods skip backedge hotness (noteHot is a no-op once compiled).
func branchExec(ins dex.Instr, pc int) func(*frame) {
	next := pc + 1
	a, b := int(ins.A), int(ins.B)
	switch ins.Op {
	case dex.OpGoto:
		target := next + int(ins.Imm())
		return func(fr *frame) { fr.pc = target }
	case dex.OpIfEq:
		target := next + int(ins.BranchOff())
		return func(fr *frame) {
			if fr.regs[a] == fr.regs[b] {
				fr.pc = target
			} else {
				fr.pc = next
			}
		}
	case dex.OpIfNe:
		target := next + int(ins.BranchOff())
		return func(fr *frame) {
			if fr.regs[a] != fr.regs[b] {
				fr.pc = target
			} else {
				fr.pc = next
			}
		}
	case dex.OpIfLt:
		target := next + int(ins.BranchOff())
		return func(fr *frame) {
			if fr.regs[a] < fr.regs[b] {
				fr.pc = target
			} else {
				fr.pc = next
			}
		}
	case dex.OpIfGe:
		target := next + int(ins.BranchOff())
		return func(fr *frame) {
			if fr.regs[a] >= fr.regs[b] {
				fr.pc = target
			} else {
				fr.pc = next
			}
		}
	}
	return nil
}

// --- hotness and trace discovery ---

// noteHot counts an invoke; crossing the threshold enqueues a compile.
func (vm *VM) noteHot(ex *kernel.Exec, d *LoadedDex, mi int, key methodKey, weight int) {
	if !vm.JITEnabled || vm.compiled[key] {
		return
	}
	vm.hot[key] += weight
	if vm.hot[key] >= hotThreshold {
		vm.hot[key] = 0
		ex.Send(vm.compileQueue, compileReq{d: d, mi: mi, key: key})
	}
}

// noteBackedge treats taken backward branches as extra hotness, as Dalvik's
// trace JIT did.
func (vm *VM) noteBackedge(ex *kernel.Exec, d *LoadedDex, mi int, key methodKey, rel int16) {
	if rel < 0 {
		vm.noteHot(ex, d, mi, key, 1)
	}
}

// sendTrace enqueues the next discovered trace. It is the cold tail of the
// per-bytecode trace counter inlined in both dispatch loops: sustained
// interpretation keeps discovering hot traces (Gingerbread's trace JIT),
// keeping the Compiler thread warm; the naming scheme matches InterpBulk's.
func (vm *VM) sendTrace(ex *kernel.Exec, d *LoadedDex, mi int, key methodKey) {
	ex.Send(vm.compileQueue, compileReq{d: d, mi: mi, key: methodKey{
		dex: d.File.Name, method: fmt.Sprintf("%s#trace%d", key.method, vm.compilesDone),
	}})
}

// InterpBulk models sustained interpretation of framework/library bytecode
// at statistically calibrated per-bytecode costs, without running a real
// program. Workload models combine real Exec calls (semantics) with
// InterpBulk (volume): the attribution profile is identical; see
// docs/ARCHITECTURE.md.
//
// Per simulated bytecode: interpCost libdvm.so fetches (or jitCost fetches
// from the JIT cache for the warmed fraction), one dex-image read, ~3 stack
// references, and a configurable dalvik-heap mix.
func (vm *VM) InterpBulk(ex *kernel.Exec, d *LoadedDex, bytecodes uint64, heavyAlloc bool) {
	if bytecodes == 0 {
		return
	}
	jitShare := uint64(0)
	if vm.JITEnabled {
		// Warmed fraction of execution running from the code cache.
		jitShare = 45
		if len(vm.compiled) == 0 {
			jitShare = 10
		}
	}
	jitBC := bytecodes * jitShare / 100
	interpBC := bytecodes - jitBC

	ex.InCode(vm.LibDVM, func() {
		ex.Do(kernel.Work{Fetch: interpCost, Reads: 1, Data: d.VMA}, interpBC)
		// Register file traffic on the thread stack.
		ex.Do(kernel.Work{Fetch: 1, Reads: 2, Writes: 1, Data: ex.T.Stack}, bytecodes/2)
		// Object traffic: field/array ops against the managed heap —
		// roughly every other bytecode touches an object.
		heapOps := bytecodes / 2
		ex.Do(kernel.Work{Fetch: 1, Reads: 1, Data: vm.HeapVMA}, heapOps*2/3)
		ex.Do(kernel.Work{Fetch: 1, Writes: 1, Data: vm.HeapVMA}, heapOps/3)
	})
	if jitBC > 0 {
		ex.InCode(vm.JITVMA, func() {
			ex.Do(kernel.Work{Fetch: jitCost, Reads: 1, Data: vm.HeapVMA}, jitBC)
		})
	}

	// Allocation pressure feeds the GC, heavier for allocation-happy code.
	allocBytes := bytecodes / 8
	if heavyAlloc {
		allocBytes = bytecodes * 3
	}
	vm.allocSinceGC += allocBytes
	for vm.allocSinceGC >= gcThreshold {
		vm.allocSinceGC -= gcThreshold
		vm.heapTop = 16 + (vm.heapTop+allocBytes)%(vm.HeapVMA.Size()-16)
		ex.Send(vm.gcQueue, gcReq{used: maxU64(vm.heapTop, gcThreshold)})
	}

	// Sustained interpretation keeps discovering hot traces (Gingerbread's
	// trace JIT), keeping the Compiler thread busy for the whole run.
	// A method-less image (rejected by dex.Verify, but constructible by
	// hand) has no traces to discover — and indexing its method table
	// below would divide by zero.
	if vm.JITEnabled && len(d.File.Methods) > 0 {
		vm.sinceTrace += bytecodes
		for vm.sinceTrace >= traceEvery {
			vm.sinceTrace -= traceEvery
			mi := int(vm.sinceTrace/977) % len(d.File.Methods)
			key := methodKey{dex: d.File.Name, method: fmt.Sprintf("%s#trace%d", d.File.Methods[mi].Name, vm.compilesDone)}
			ex.Send(vm.compileQueue, compileReq{d: d, mi: mi, key: key})
		}
	}
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
