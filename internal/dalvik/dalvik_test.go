package dalvik

import (
	"testing"

	"agave/internal/kernel"
	"agave/internal/loader"
	"agave/internal/mem"
	"agave/internal/sim"
	"agave/internal/stats"
)

// harness spins up a kernel + process + VM and runs body on the process's
// main thread, then drives the machine until idle.
func harness(t *testing.T, services bool, body func(ex *kernel.Exec, vm *VM, d *LoadedDex)) *kernel.Kernel {
	t.Helper()
	k := kernel.New(kernel.Config{Quantum: 50 * sim.Microsecond, Seed: 7})
	t.Cleanup(k.Shutdown)
	p := k.NewProcess("benchmark", 1<<20, 1<<20)
	lm := loader.Load(p.AS, p.Layout, loader.BaseSet())
	vm := Attach(p, lm, services)
	k.SpawnThread(p, "main", "main", func(ex *kernel.Exec) {
		ex.PushCode(p.Layout.Text)
		d := vm.LoadDex(ex, StockDex("benchmark"))
		body(ex, vm, d)
	})
	k.Run(500 * sim.Millisecond)
	return k
}

func TestInterpreterArithmetic(t *testing.T) {
	harness(t, false, func(ex *kernel.Exec, vm *VM, d *LoadedDex) {
		if got := vm.Exec(ex, d, "sumLoop", 100); got != 4950 {
			t.Errorf("sumLoop(100) = %d, want 4950", got)
		}
		if got := vm.Exec(ex, d, "callHeavy", 10); got != 7*45+3*10 {
			t.Errorf("callHeavy(10) = %d, want %d", got, 7*45+3*10)
		}
	})
}

func TestInterpreterArraysAndObjects(t *testing.T) {
	harness(t, false, func(ex *kernel.Exec, vm *VM, d *LoadedDex) {
		ref := vm.Exec(ex, d, "fillArray", 50)
		if got := vm.Exec(ex, d, "scanArray", ref); got != 3*(49*50/2) {
			t.Errorf("scanArray = %d, want %d", got, 3*(49*50/2))
		}
		chain := vm.Exec(ex, d, "objectChurn", 20)
		if got := vm.Exec(ex, d, "chainWalk", chain); got != 19*20/2 {
			t.Errorf("chainWalk = %d, want %d", got, 19*20/2)
		}
	})
}

func TestInterpreterBlend(t *testing.T) {
	harness(t, false, func(ex *kernel.Exec, vm *VM, d *LoadedDex) {
		a := vm.Exec(ex, d, "fillArray", 32)
		b := vm.Exec(ex, d, "fillArray", 32)
		want := int64(0)
		for i := int64(0); i < 32; i++ {
			want += (3 * i * 3 * i) >> 8
		}
		if got := vm.Exec(ex, d, "blend", a, b); got != want {
			t.Errorf("blend = %d, want %d", got, want)
		}
	})
}

func TestInterpreterAttribution(t *testing.T) {
	k := harness(t, false, func(ex *kernel.Exec, vm *VM, d *LoadedDex) {
		vm.Exec(ex, d, "sumLoop", 5000)
	})
	ifetch := k.Stats.ByRegion(stats.IFetch)
	if ifetch["libdvm.so"] == 0 {
		t.Fatal("no interpreter fetches attributed to libdvm.so")
	}
	dread := k.Stats.ByRegion(stats.DataRead)
	if dread["benchmark@classes.dex"] == 0 {
		t.Fatal("no bytecode reads attributed to the dex mapping")
	}
	if dread[mem.RegionStack] == 0 {
		t.Fatal("no register-file reads attributed to the stack")
	}
}

func TestHeapTrafficAttribution(t *testing.T) {
	k := harness(t, false, func(ex *kernel.Exec, vm *VM, d *LoadedDex) {
		ref := vm.Exec(ex, d, "fillArray", 2000)
		vm.Exec(ex, d, "scanArray", ref)
	})
	heap := k.Stats.ByRegion(stats.DataKinds...)[mem.RegionDalvikHeap]
	if heap < 4000 {
		t.Fatalf("dalvik-heap refs = %d, want >= 4000", heap)
	}
}

func TestJITCompilesHotMethod(t *testing.T) {
	var compiles uint64
	k := harness(t, true, func(ex *kernel.Exec, vm *VM, d *LoadedDex) {
		// Invoke enough times to cross the hot threshold, then yield so
		// the Compiler thread runs, then call again for JIT execution.
		for i := 0; i < hotThreshold+2; i++ {
			vm.Exec(ex, d, "sumLoop", 3)
		}
		ex.SleepFor(5 * sim.Millisecond)
		vm.Exec(ex, d, "sumLoop", 3)
		compiles = vm.CompilesDone()
	})
	if compiles == 0 {
		t.Fatal("hot method never compiled")
	}
	if got := k.Stats.ByRegion(stats.IFetch)[mem.RegionJITCache]; got == 0 {
		t.Fatal("no fetches from dalvik-jit-code-cache after compilation")
	}
	if got := k.Stats.ByRegion(stats.DataWrite)[mem.RegionJITCache]; got == 0 {
		t.Fatal("compiler emitted no code into the cache")
	}
	if got := k.Stats.ByThread()["Compiler"]; got == 0 {
		t.Fatal("Compiler thread earned no references")
	}
}

func TestJITDisabled(t *testing.T) {
	k := harness(t, true, func(ex *kernel.Exec, vm *VM, d *LoadedDex) {
		vm.JITEnabled = false
		for i := 0; i < hotThreshold*3; i++ {
			vm.Exec(ex, d, "sumLoop", 3)
		}
		ex.SleepFor(5 * sim.Millisecond)
		if vm.CompilesDone() != 0 {
			t.Error("compiles happened with JIT disabled")
		}
	})
	if got := k.Stats.ByRegion(stats.IFetch)[mem.RegionJITCache]; got != 0 {
		t.Fatalf("JIT cache fetched %d with JIT off", got)
	}
}

func TestGCRunsUnderAllocationPressure(t *testing.T) {
	k := harness(t, true, func(ex *kernel.Exec, vm *VM, d *LoadedDex) {
		// Churn enough to cross the GC threshold several times
		// (each churn of 1000 allocates ~24 KB).
		for i := 0; i < 200; i++ {
			vm.Exec(ex, d, "objectChurn", 1000)
		}
		ex.SleepFor(10 * sim.Millisecond)
		if vm.GCRuns() == 0 {
			t.Error("no GC cycles despite churn")
		}
	})
	if got := k.Stats.ByThread()["GC"]; got == 0 {
		t.Fatal("GC thread earned no references")
	}
}

func TestInterpBulkAttribution(t *testing.T) {
	k := harness(t, true, func(ex *kernel.Exec, vm *VM, d *LoadedDex) {
		vm.InterpBulk(ex, d, 200_000, false)
		ex.SleepFor(5 * sim.Millisecond)
	})
	ifetch := k.Stats.ByRegion(stats.IFetch)
	if ifetch["libdvm.so"] < 200_000 {
		t.Fatalf("libdvm.so fetches = %d, want >= bytecode count", ifetch["libdvm.so"])
	}
	if ifetch[mem.RegionJITCache] == 0 {
		t.Fatal("warmed bulk interpretation fetched nothing from the JIT cache")
	}
	if k.Stats.ByRegion(stats.DataRead)["benchmark@classes.dex"] == 0 {
		t.Fatal("bulk interpretation read no bytecode")
	}
}

func TestLoadDexChargesLinearAlloc(t *testing.T) {
	k := harness(t, false, func(ex *kernel.Exec, vm *VM, d *LoadedDex) {})
	if got := k.Stats.ByRegion(stats.DataWrite)[mem.RegionLinearAlloc]; got == 0 {
		t.Fatal("class loading wrote nothing to dalvik-LinearAlloc")
	}
}

func TestLoadDexIdempotent(t *testing.T) {
	harness(t, false, func(ex *kernel.Exec, vm *VM, d *LoadedDex) {
		d2 := vm.LoadDex(ex, StockDex("benchmark"))
		if d2 != d {
			t.Error("LoadDex of same name created a second image")
		}
	})
}

func TestVMServiceThreadsExist(t *testing.T) {
	k := harness(t, true, func(ex *kernel.Exec, vm *VM, d *LoadedDex) {})
	groups := map[string]bool{}
	for _, th := range k.Threads() {
		groups[th.Group] = true
	}
	for _, want := range []string{"GC", "Compiler", "HeapWorker", "Signal Catcher", "JDWP"} {
		if !groups[want] {
			t.Errorf("VM service thread %q missing", want)
		}
	}
}

func TestHeapWrapModelsFullGC(t *testing.T) {
	harness(t, false, func(ex *kernel.Exec, vm *VM, d *LoadedDex) {
		before := vm.GCRuns()
		// Allocate more than the whole heap in chunks.
		for i := 0; i < 30; i++ {
			vm.AllocArray(ex, (HeapSize/4)/30*8)
		}
		_ = before
		if vm.HeapUsed() > HeapSize {
			t.Error("heap top ran past the arena")
		}
	})
}

func TestStockDexVerifies(t *testing.T) {
	f := StockDex("x")
	if len(f.Methods) < 7 {
		t.Fatalf("stock dex has %d methods", len(f.Methods))
	}
}

func TestDeterministicInterpRun(t *testing.T) {
	run := func() uint64 {
		k := kernel.New(kernel.Config{Quantum: 50 * sim.Microsecond, Seed: 7})
		defer k.Shutdown()
		p := k.NewProcess("benchmark", 1<<20, 1<<20)
		lm := loader.Load(p.AS, p.Layout, loader.BaseSet())
		vm := Attach(p, lm, true)
		k.SpawnThread(p, "main", "main", func(ex *kernel.Exec) {
			ex.PushCode(p.Layout.Text)
			d := vm.LoadDex(ex, StockDex("benchmark"))
			for i := 0; i < 30; i++ {
				vm.Exec(ex, d, "sumLoop", 200)
				vm.Exec(ex, d, "objectChurn", 50)
			}
		})
		k.Run(200 * sim.Millisecond)
		return k.Stats.Total()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("interpreter runs diverged: %d vs %d", a, b)
	}
}
