package dalvik

import (
	"fmt"
	"sync"

	"agave/internal/dex"
)

// Stock bytecode programs the Agave workload models run on the interpreter.
// Each exercises a different reference mix: pure ALU loops, array
// scans/fills (dalvik-heap reads/writes), object allocation churn (GC
// pressure), and call-heavy code (frame traffic). Apps assemble these into
// their own dex image so each application contributes a distinctly named
// "<app>@classes.dex" region, as on a real device.
const stockSource = `
; sum of 0..n-1 — pure ALU/branch loop
.method sumLoop 1
    const v1, 0          ; acc
    const v2, 0          ; i
loop:
    if_ge v2, v0, done
    add v1, v1, v2
    addi v2, v2, 1
    goto loop
done:
    return v1
.end

; allocate an n-element array and fill it with i*3
.method fillArray 1
    new_array v1, v0
    const v2, 0
    const v3, 3
fill:
    if_ge v2, v0, done
    mul v4, v2, v3
    aput v4, v1, v2
    addi v2, v2, 1
    goto fill
done:
    return v1
.end

; sum an array passed by ref in v0
.method scanArray 1
    array_len v1, v0
    const v2, 0
    const v3, 0
scan:
    if_ge v2, v1, done
    aget v4, v0, v2
    add v3, v3, v4
    addi v2, v2, 1
    goto scan
done:
    return v3
.end

; allocate n 4-field objects, linking each to the previous (GC pressure)
.method objectChurn 1
    const v1, 0          ; prev ref
    const v2, 0          ; i
churn:
    if_ge v2, v0, done
    new_obj v3, 4
    iput v1, v3, 0       ; next = prev
    iput v2, v3, 1       ; id = i
    move v1, v3
    addi v2, v2, 1
    goto churn
done:
    return v1
.end

; walk a chain built by objectChurn, summing ids
.method chainWalk 1
    const v1, 0
walk:
    const v2, 0
    if_eq v0, v2, done
    iget v3, v0, 1
    add v1, v1, v3
    iget v0, v0, 0
    goto walk
done:
    return v1
.end

; call helper n times (frame push/pop traffic)
.method callHeavy 1
    const v1, 0
    const v2, 0
calls:
    if_ge v2, v0, done
    move v4, v2
    invoke helper, v4
    move_result v3
    add v1, v1, v3
    addi v2, v2, 1
    goto calls
done:
    return v1
.end

.method helper 1
    const v1, 7
    mul v2, v0, v1
    addi v2, v2, 3
    return v2
.end

; fixed-point dot-product-ish kernel over two arrays
.method blend 2
    array_len v2, v0
    const v3, 0          ; i
    const v4, 0          ; acc
mix:
    if_ge v3, v2, done
    aget v5, v0, v3
    aget v6, v1, v3
    mul v7, v5, v6
    const v8, 8
    shr v7, v7, v8
    add v4, v4, v7
    addi v3, v3, 1
    goto mix
done:
    return v4
.end
`

// stockDexes caches the assembled stock program set per application name.
// The source is a compile-time constant and dex.File is immutable once
// assembled, so the same *dex.File can be shared by every kernel (including
// parallel suite workers) that launches an app of that name — assembling
// per launch was the single largest allocation source in a scenario run.
var stockDexes sync.Map // app name -> *dex.File

// StockDex assembles the stock program set into a dex file named after the
// owning application. Results are cached per name; callers must treat the
// returned file as read-only.
func StockDex(appName string) *dex.File {
	if f, ok := stockDexes.Load(appName); ok {
		return f.(*dex.File)
	}
	f, err := Assemble(appName, stockSource)
	if err != nil {
		panic(fmt.Sprintf("dalvik: stock programs failed to assemble: %v", err))
	}
	got, _ := stockDexes.LoadOrStore(appName, f)
	return got.(*dex.File)
}

// Assemble wraps dex.Assemble and verifies the result, so every program
// entering a VM has passed the verifier (as on a real device).
func Assemble(name, src string) (*dex.File, error) {
	f, err := dex.Assemble(name, src)
	if err != nil {
		return nil, err
	}
	if err := dex.Verify(f); err != nil {
		return nil, err
	}
	return f, nil
}
