package dalvik

import (
	"strings"
	"testing"

	"agave/internal/dex"
	"agave/internal/kernel"
	"agave/internal/mem"
	"agave/internal/stats"
)

// These tests pin the interpreter edge cases the threaded-dispatch rewrite
// must preserve: div/rem-by-zero semantics, invoke argument-window snapshot
// semantics, the recursion-depth guard, and mid-execution promotion to the
// JIT code cache.

const divRemSource = `
.method divZero 2
    div v2, v0, v1
    return v2
.end
.method remZero 2
    rem v2, v0, v1
    return v2
.end
`

// TestDivRemByZeroYieldsZero locks the documented divergence from real
// Dalvik (see internal/dex/isa.go): a zero divisor yields 0 instead of
// throwing ArithmeticException — on the interpreted path and on the
// pre-decoded compiled path alike.
func TestDivRemByZeroYieldsZero(t *testing.T) {
	harness(t, false, func(ex *kernel.Exec, vm *VM, d *LoadedDex) {
		f, err := Assemble("divrem", divRemSource)
		if err != nil {
			t.Fatalf("assemble: %v", err)
		}
		dd := vm.LoadDex(ex, f)
		if got := vm.Exec(ex, dd, "divZero", 17, 0); got != 0 {
			t.Errorf("interp 17/0 = %d, want 0", got)
		}
		if got := vm.Exec(ex, dd, "remZero", 17, 0); got != 0 {
			t.Errorf("interp 17%%0 = %d, want 0", got)
		}
		if got := vm.Exec(ex, dd, "divZero", 17, 5); got != 3 {
			t.Errorf("interp 17/5 = %d, want 3", got)
		}
		vm.ForceCompile(dd, "divZero")
		vm.ForceCompile(dd, "remZero")
		if got := vm.Exec(ex, dd, "divZero", 17, 0); got != 0 {
			t.Errorf("compiled 17/0 = %d, want 0", got)
		}
		if got := vm.Exec(ex, dd, "remZero", 17, 0); got != 0 {
			t.Errorf("compiled 17%%0 = %d, want 0", got)
		}
		if got := vm.Exec(ex, dd, "remZero", 17, 5); got != 2 {
			t.Errorf("compiled 17%%5 = %d, want 2", got)
		}
	})
}

const snapshotSource = `
; caller keeps live values in the registers it passes as the arg window;
; the callee clobbers its own v0/v1 — the caller's v2/v3 must survive.
.method snapshotCaller 0
    const v2, 41
    const v3, 7
    invoke clobber, v2, v3
    move_result v4
    const v5, 10000
    mul v6, v2, v5
    const v5, 100
    mul v7, v3, v5
    add v6, v6, v7
    add v6, v6, v4
    return v6
.end
.method clobber 2
    add v2, v0, v1
    const v0, 999
    const v1, 888
    return v2
.end
`

// TestInvokeArgWindowSnapshot pins the copy-in semantics of OpInvoke: the
// callee frame snapshots the caller's regs[C:C+A] window at call time, so
// callee writes to its own registers never alias back into the caller.
func TestInvokeArgWindowSnapshot(t *testing.T) {
	for _, compiled := range []bool{false, true} {
		harness(t, false, func(ex *kernel.Exec, vm *VM, d *LoadedDex) {
			f, err := Assemble("snapshot", snapshotSource)
			if err != nil {
				t.Fatalf("assemble: %v", err)
			}
			dd := vm.LoadDex(ex, f)
			if compiled {
				vm.ForceCompile(dd, "snapshotCaller")
				vm.ForceCompile(dd, "clobber")
			}
			want := int64(41*10000 + 7*100 + 48)
			if got := vm.Exec(ex, dd, "snapshotCaller"); got != want {
				t.Errorf("compiled=%v: snapshotCaller = %d, want %d (callee clobbered the caller's window?)",
					compiled, got, want)
			}
		})
	}
}

const spinSource = `
.method spin 0
    invoke spin
    return_void
.end
`

// TestRecursionDepthPanics pins the depth-64 frame guard: unbounded
// self-recursion must panic with the interpreter's message rather than
// overflow the host stack.
func TestRecursionDepthPanics(t *testing.T) {
	for _, compiled := range []bool{false, true} {
		harness(t, false, func(ex *kernel.Exec, vm *VM, d *LoadedDex) {
			f, err := Assemble("spin", spinSource)
			if err != nil {
				t.Fatalf("assemble: %v", err)
			}
			dd := vm.LoadDex(ex, f)
			if compiled {
				vm.ForceCompile(dd, "spin")
			}
			defer func() {
				r := recover()
				if r == nil {
					t.Errorf("compiled=%v: unbounded recursion did not panic", compiled)
					return
				}
				if msg, ok := r.(string); !ok || !strings.Contains(msg, "recursion too deep") {
					panic(r) // not ours — re-raise
				}
			}()
			vm.Exec(ex, dd, "spin")
		})
	}
}

// TestMidExecutionJITSwitchover pins the trace-JIT promotion race the
// rewrite must preserve: a single long Exec crosses the hot threshold via
// loop backedges, the Compiler thread runs while the interpreter is parked
// between accounting quanta, and the remainder of that same invocation
// executes from dalvik-jit-code-cache — so one call charges both libdvm.so
// and the JIT cache.
func TestMidExecutionJITSwitchover(t *testing.T) {
	var got int64
	k := harness(t, true, func(ex *kernel.Exec, vm *VM, d *LoadedDex) {
		got = vm.Exec(ex, d, "sumLoop", 40_000)
	})
	const n = 40_000
	if want := int64(n) * (n - 1) / 2; got != want {
		t.Fatalf("sumLoop(%d) = %d, want %d", n, got, want)
	}
	ifetch := k.Stats.ByRegion(stats.IFetch)
	if ifetch[mem.RegionJITCache] == 0 {
		t.Fatal("hot loop never switched to JIT-cache fetches mid-execution")
	}
	if ifetch["libdvm.so"] == 0 {
		t.Fatal("no interpreted prefix before the switchover")
	}
}

// TestCompiledElidesDexReads pins the attribution contract of compiled
// execution: a ForceCompile'd method fetches from dalvik-jit-code-cache at
// jitCost per bytecode and never reads the dex image — the only image reads
// left are LoadDex's class-loading walk.
func TestCompiledElidesDexReads(t *testing.T) {
	const n = 5000
	k := harness(t, false, func(ex *kernel.Exec, vm *VM, d *LoadedDex) {
		vm.ForceCompile(d, "sumLoop")
		if got := vm.Exec(ex, d, "sumLoop", n); got != int64(n)*(n-1)/2 {
			t.Errorf("compiled sumLoop(%d) = %d, want %d", n, got, int64(n)*(n-1)/2)
		}
	})
	ifetch := k.Stats.ByRegion(stats.IFetch)
	bytecodes := uint64(4*n + 4)
	if got := ifetch[mem.RegionJITCache]; got != bytecodes*jitCost {
		t.Errorf("JIT-cache fetches = %d, want exactly %d (jitCost per bytecode)", got, bytecodes*jitCost)
	}
	// LoadDex walks a quarter of the image words; interpretation of a
	// compiled method must add nothing on top of that.
	if reads := k.Stats.ByRegion(stats.DataRead)["benchmark@classes.dex"]; reads >= 1000 {
		t.Errorf("dex reads = %d, want < 1000: compiled execution should elide the per-bytecode dex read", reads)
	}
}

// TestInterpBulkZeroMethodDex guards the trace-discovery path against a
// method-less image: dex.Verify now rejects those, but a hand-built File
// must still not divide InterpBulk by zero.
func TestInterpBulkZeroMethodDex(t *testing.T) {
	k := harness(t, true, func(ex *kernel.Exec, vm *VM, d *LoadedDex) {
		ed := vm.LoadDex(ex, dex.NewFile("empty"))
		vm.InterpBulk(ex, ed, 60_000, false) // crosses traceEvery twice
	})
	if got := k.Stats.ByRegion(stats.IFetch)["libdvm.so"]; got < 60_000 {
		t.Fatalf("libdvm.so fetches = %d, want >= bulk bytecode count", got)
	}
}
