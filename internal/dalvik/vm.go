// Package dalvik models the Dalvik virtual machine as the paper observes it:
// an interpreter whose dispatch loop executes from libdvm.so text, bytecode
// fetched as data reads from mapped dex images, a managed object heap in the
// "dalvik-heap" region, class metadata in "dalvik-LinearAlloc", a trace JIT
// writing into "dalvik-jit-code-cache", and the VM service threads
// ("Compiler", "GC", "HeapWorker", "Signal Catcher", "JDWP") that Table I of
// the paper ranks among the busiest in the system.
package dalvik

import (
	"fmt"
	"sync"

	"agave/internal/dex"
	"agave/internal/kernel"
	"agave/internal/loader"
	"agave/internal/mem"
)

// Arena and policy sizes (Gingerbread-flavoured).
const (
	HeapSize        = 24 << 20
	LinearAllocSize = 4 << 20
	JITCacheSize    = 1536 << 10

	// gcThreshold is the allocation volume that triggers a concurrent GC
	// cycle (GC_CONCURRENT fired every couple of MB on Gingerbread).
	gcThreshold = 2 << 20

	// gcLiveFloor is the assumed live set a mark pass scans even when the
	// bump pointer is low (framework classes + app state).
	gcLiveFloor = 8 << 20

	// hotThreshold is the invoke/backedge count after which a method is
	// handed to the Compiler thread.
	hotThreshold = 24

	// traceEvery models Gingerbread's trace JIT granularity: sustained
	// interpretation keeps discovering new hot traces, so every
	// traceEvery interpreted bytecodes enqueue one more trace
	// compilation.
	traceEvery = 25_000

	// minTraceUnits is the compile-cost floor per request: traces inline
	// across methods, so even a short method costs a real trace's worth
	// of compiler work.
	minTraceUnits = 480

	// Interpreter cost model: host instructions per bytecode when
	// interpreted (libdvm.so) vs JIT-compiled (dalvik-jit-code-cache).
	interpCost = 12
	jitCost    = 4
)

// LoadedDex is a dex file mapped into the VM's address space. The mapping is
// named after the package ("<name>@classes.dex"), matching how dalvik-cache
// images appear in /proc/maps — each distinct name is one more region in the
// paper's Figure 2 census.
type LoadedDex struct {
	File *dex.File
	VMA  *mem.VMA

	codeOff []uint64 // per-method byte offset of code within the image

	// pre caches each method's code pre-decoded from the serialized image
	// (images are immutable once mapped), so the interpreter's dispatch
	// loop never re-decodes instruction words. codeOff and pre come from
	// the per-file decodedImage cache and are shared read-only by every VM
	// loading the file; progs lazily holds the per-method compiled closure
	// programs (see interp.go) and is shared only within one kernel's
	// zygote lineage by ForkVM.
	pre   [][]dex.Instr
	progs [][]cop
}

// decodedImage is the immutable, shareable part of a loaded dex: the
// serialized bytes and the per-method code pre-decoded from them. It is
// derived purely from the *dex.File, so it is computed once per file and
// shared read-only by every VM — across kernels and suite workers — that
// loads it; re-serializing and re-decoding per process load dominated
// scenario allocations.
type decodedImage struct {
	img     []byte
	codeOff []uint64
	pre     [][]dex.Instr
}

var decodedImages sync.Map // *dex.File -> *decodedImage

func decodeImage(f *dex.File) *decodedImage {
	if d, ok := decodedImages.Load(f); ok {
		return d.(*decodedImage)
	}
	dec := &decodedImage{
		img:     f.Serialize(),
		codeOff: make([]uint64, len(f.Methods)),
		pre:     make([][]dex.Instr, len(f.Methods)),
	}
	for i, m := range f.Methods {
		off := f.CodeOffset(i)
		dec.codeOff[i] = off
		dec.pre[i] = dex.DecodeCode(dec.img[off : off+uint64(4*len(m.Code))])
	}
	got, _ := decodedImages.LoadOrStore(f, dec)
	return got.(*decodedImage)
}

// VM is one process's Dalvik instance.
type VM struct {
	Proc *kernel.Process

	LibDVM  *mem.VMA // interpreter + compiler text
	HeapVMA *mem.VMA // dalvik-heap
	Linear  *mem.VMA // dalvik-LinearAlloc
	JITVMA  *mem.VMA // dalvik-jit-code-cache

	// JITEnabled can be cleared to model -Xint:fast (ablation A1).
	JITEnabled bool

	heapTop      uint64
	heapCommit   uint64 // bytes of HeapVMA currently resident (>= heapTop)
	allocSinceGC uint64
	gcRuns       uint64
	trimsDone    uint64

	gcQueue      *kernel.MsgQueue
	compileQueue *kernel.MsgQueue

	compiled      map[methodKey]bool
	hot           map[methodKey]int
	jitTop        uint64
	sinceTrace    uint64
	compilesDone  uint64
	dexes         map[string]*LoadedDex
	serviceSpawns bool
	heapWorkerWq  *kernel.WaitQueue
}

type methodKey struct {
	dex    string
	method string
}

type compileReq struct {
	d   *LoadedDex
	mi  int
	key methodKey
}

type gcReq struct {
	used uint64
}

// Attach creates a VM inside proc. lm must already map libdvm.so. The VM
// maps its runtime arenas and, when services is true, spawns the VM service
// threads (GC, Compiler, HeapWorker, Signal Catcher, JDWP).
func Attach(proc *kernel.Process, lm *loader.LinkMap, services bool) *VM {
	k := proc.Kernel()
	vm := &VM{
		Proc:       proc,
		LibDVM:     lm.VMA("libdvm.so"),
		JITEnabled: true,
		compiled:   make(map[methodKey]bool),
		hot:        make(map[methodKey]int),
		dexes:      make(map[string]*LoadedDex),
	}
	vm.HeapVMA = proc.AS.MapAnywhere(mem.MmapBase, HeapSize, mem.RegionDalvikHeap,
		mem.PermRead|mem.PermWrite, mem.ClassRuntime)
	vm.Linear = proc.AS.MapAnywhere(mem.MmapBase, LinearAllocSize, mem.RegionLinearAlloc,
		mem.PermRead|mem.PermWrite, mem.ClassRuntime)
	vm.JITVMA = proc.AS.MapAnywhere(mem.MmapBase, JITCacheSize, mem.RegionJITCache,
		mem.PermRead|mem.PermWrite|mem.PermExec, mem.ClassRuntime)
	vm.heapTop = 16 // offset 0 is reserved so 0 can mean null
	vm.heapCommit = vm.HeapVMA.Size()
	vm.gcQueue = k.NewMsgQueue(proc.Name + ".gc")
	vm.compileQueue = k.NewMsgQueue(proc.Name + ".jit")
	if services {
		vm.spawnServices()
	}
	return vm
}

func (vm *VM) spawnServices() {
	if vm.serviceSpawns {
		return
	}
	vm.serviceSpawns = true
	k := vm.Proc.Kernel()
	k.SpawnThread(vm.Proc, "GC", "GC", vm.gcLoop)
	k.SpawnThread(vm.Proc, "Compiler", "Compiler", vm.compilerLoop)
	// The remaining daemons exist for thread-census realism; they park
	// immediately and wake rarely (HeapWorker runs finalizers after GC).
	k.SpawnThread(vm.Proc, "HeapWorker", "HeapWorker", func(ex *kernel.Exec) {
		ex.PushCode(vm.LibDVM)
		wq := k.NewWaitQueue(vm.Proc.Name + ".heapworker")
		vm.heapWorkerWq = wq
		for {
			ex.Wait(wq)
			// Finalizer sweep: touch a slice of the heap.
			ex.Do(kernel.Work{Fetch: 2, Reads: 1, Data: vm.HeapVMA}, 2000)
		}
	})
	k.SpawnThread(vm.Proc, "Signal Catcher", "Signal Catcher", func(ex *kernel.Exec) {
		ex.PushCode(vm.LibDVM)
		ex.Wait(k.NewWaitQueue(vm.Proc.Name + ".sigcatch"))
	})
	k.SpawnThread(vm.Proc, "JDWP", "JDWP", func(ex *kernel.Exec) {
		ex.PushCode(vm.LibDVM)
		ex.Wait(k.NewWaitQueue(vm.Proc.Name + ".jdwp"))
	})
}

// LoadDex maps file into the process as "<file name>@classes.dex", writes the
// serialized image through the page cache (a real dalvik-cache image would
// be mmapped; we charge the map-and-verify cost), and charges class-metadata
// writes to dalvik-LinearAlloc.
func (vm *VM) LoadDex(ex *kernel.Exec, file *dex.File) *LoadedDex {
	if d, ok := vm.dexes[file.Name]; ok {
		return d
	}
	dec := decodeImage(file)
	img := dec.img
	name := file.Name + "@classes.dex"
	v := vm.Proc.AS.MapAnywhere(mem.MmapBase, uint64(len(img)), name,
		mem.PermRead, mem.ClassData)
	copy(v.Bytes(), img)
	d := &LoadedDex{File: file, VMA: v, codeOff: dec.codeOff, pre: dec.pre,
		progs: make([][]cop, len(file.Methods))}
	vm.dexes[file.Name] = d

	// Class loading: walk the image (reads) and populate LinearAlloc
	// metadata (writes).
	words := uint64(len(img)) / 4
	ex.InCode(vm.LibDVM, func() {
		ex.Do(kernel.Work{Fetch: 3, Reads: 1, Data: v}, words/4)
		ex.Do(kernel.Work{Fetch: 2, Writes: 1, Data: vm.Linear}, 64*uint64(len(file.Methods))+words/16)
	})
	return d
}

// Dex returns the loaded image for name, or nil.
func (vm *VM) Dex(name string) *LoadedDex { return vm.dexes[name] }

// Adopt wraps an already-mapped image (for example the loader-mapped
// "framework.jar@classes.dex" region) as a LoadedDex backed by file, so
// framework-bytecode interpretation reads the image the linker mapped. The
// mapping must be at least file.Size() bytes; the serialized image is
// written into it.
func (vm *VM) Adopt(file *dex.File, v *mem.VMA) *LoadedDex {
	if d, ok := vm.dexes[file.Name]; ok {
		return d
	}
	dec := decodeImage(file)
	img := dec.img
	if uint64(len(img)) > v.Size() {
		panic(fmt.Sprintf("dalvik: image %s (%d bytes) larger than mapping %s", file.Name, len(img), v.Name))
	}
	copy(v.Slice(0, uint64(len(img))), img)
	d := &LoadedDex{File: file, VMA: v, codeOff: dec.codeOff, pre: dec.pre,
		progs: make([][]cop, len(file.Methods))}
	vm.dexes[file.Name] = d
	return d
}

// ForkVM builds the child-process view of parent's VM after a fork: the
// child's address space already holds copies/aliases of every runtime arena
// and dex image (zygote semantics), so the new VM simply rebinds to the
// child's VMAs. JIT state is inherited warm, as zygote children inherit the
// preloaded-class world. VM service threads are spawned fresh in the child
// when services is true.
func ForkVM(parent *VM, child *kernel.Process, services bool) *VM {
	k := child.Kernel()
	find := func(name string) *mem.VMA {
		v := child.AS.FindByName(name)
		if v == nil {
			panic(fmt.Sprintf("dalvik: forked child lacks region %q", name))
		}
		return v
	}
	vm := &VM{
		Proc:       child,
		LibDVM:     find("libdvm.so"),
		HeapVMA:    find(mem.RegionDalvikHeap),
		Linear:     find(mem.RegionLinearAlloc),
		JITVMA:     find(mem.RegionJITCache),
		JITEnabled: parent.JITEnabled,
		heapTop:    parent.heapTop,
		compiled:   make(map[methodKey]bool, len(parent.compiled)),
		hot:        make(map[methodKey]int),
		dexes:      make(map[string]*LoadedDex, len(parent.dexes)),
	}
	for k2, v := range parent.compiled {
		vm.compiled[k2] = v
	}
	// One slab allocation covers every rebound dex view; which slab slot a
	// given dex lands in follows map order, but each entry's content depends
	// only on its name, so nothing observable varies.
	dexSlab := make([]LoadedDex, len(parent.dexes))
	di := 0
	for name, d := range parent.dexes {
		nd := &dexSlab[di]
		di++
		*nd = LoadedDex{
			File:    d.File,
			VMA:     find(d.VMA.Name),
			codeOff: d.codeOff,
			pre:     d.pre,
			progs:   d.progs,
		}
		vm.dexes[name] = nd
	}
	vm.heapCommit = vm.HeapVMA.ResidentBytes()
	vm.gcQueue = k.NewMsgQueue(child.Name + ".gc")
	vm.compileQueue = k.NewMsgQueue(child.Name + ".jit")
	if services {
		vm.spawnServices()
	}
	return vm
}

// GCRuns reports completed collection cycles (for tests and ablations).
func (vm *VM) GCRuns() uint64 { return vm.gcRuns }

// Trims reports completed TrimMemory passes.
func (vm *VM) Trims() uint64 { return vm.trimsDone }

// HeapResidentBytes reports how many bytes of the dalvik heap currently pin
// physical pages.
func (vm *VM) HeapResidentBytes() uint64 { return vm.heapCommit }

// trimSlack is how much headroom above the live bump pointer a trim keeps
// committed, so the next few allocations do not immediately fault pages
// back in.
const trimSlack = 1 << 20

// TrimMemory is the app side of onTrimMemory(TRIM_MEMORY_*): a collection
// pass over the live set, then madvise(MADV_DONTNEED) on everything above
// it, so a backgrounded app's dalvik heap stops holding physical pages it is
// not using. It returns the bytes released to the machine-wide budget.
func (vm *VM) TrimMemory(ex *kernel.Exec) uint64 {
	ex.InCode(vm.LibDVM, func() {
		// Mark the live prefix and madvise the tail: cheaper than a full
		// GC cycle, charged against the heap it walks.
		used := vm.heapTop
		if used > vm.HeapVMA.Size() {
			used = vm.HeapVMA.Size()
		}
		ex.Do(kernel.Work{Fetch: 3, Reads: 1, Data: vm.HeapVMA}, used/16)
		ex.Syscall(900, 250) // madvise
	})
	keep := vm.heapTop + trimSlack
	if keep >= vm.heapCommit {
		return 0
	}
	released := vm.Proc.AS.Discard(vm.HeapVMA, vm.heapCommit-keep)
	vm.heapCommit -= released
	vm.trimsDone++
	return released
}

// CompilesDone reports completed JIT compilations.
func (vm *VM) CompilesDone() uint64 { return vm.compilesDone }

// ForceCompile marks method in d as JIT-compiled without charging any
// compiler work, so tests and benchmarks can drive the compiled dispatch
// path deterministically. Real promotion goes through the Compiler thread.
func (vm *VM) ForceCompile(d *LoadedDex, method string) {
	vm.compiled[methodKey{dex: d.File.Name, method: method}] = true
}

// HeapUsed reports the current bump-pointer offset.
func (vm *VM) HeapUsed() uint64 { return vm.heapTop }

// --- managed heap ---

// alloc carves n bytes from the dalvik heap, charging the zeroing writes,
// and triggers a concurrent GC cycle when enough has been allocated. When
// the arena is exhausted the bump pointer wraps, modelling a full stop-the-
// world collection compacting the heap.
func (vm *VM) alloc(ex *kernel.Exec, n uint64) uint64 {
	n = (n + 7) &^ 7
	if vm.heapTop+n > vm.HeapVMA.Size() {
		vm.heapTop = 16
		vm.gcRuns++
	}
	off := vm.heapTop
	vm.heapTop += n
	if vm.heapTop > vm.heapCommit {
		// First touch past a trimmed high-water mark: the discarded pages
		// fault back in and re-enter the machine-wide resident set.
		vm.heapCommit += vm.Proc.AS.Commit(vm.HeapVMA, vm.heapTop-vm.heapCommit)
	}
	ex.Do(kernel.Work{Fetch: 1, Writes: 1, Data: vm.HeapVMA}, n/8+2)
	vm.allocSinceGC += n
	if vm.allocSinceGC >= gcThreshold {
		vm.allocSinceGC = 0
		ex.Send(vm.gcQueue, gcReq{used: vm.heapTop})
	}
	return off
}

// AllocArray allocates an int32 array of the given length; returns its ref.
func (vm *VM) AllocArray(ex *kernel.Exec, length int64) uint64 {
	if length < 0 {
		length = 0
	}
	off := vm.alloc(ex, 8+uint64(length)*4)
	b := vm.HeapVMA.Slice(off, 8)
	putU32(b, uint32(length))
	for i := range b[4:] {
		b[4+i] = 0
	}
	zero(vm.HeapVMA.Slice(off+8, uint64(length)*4))
	return off
}

// AllocObject allocates an object with nFields int32 fields.
func (vm *VM) AllocObject(ex *kernel.Exec, nFields int) uint64 {
	off := vm.alloc(ex, 8+uint64(nFields)*4)
	putU32(vm.HeapVMA.Slice(off, 4), uint32(nFields))
	zero(vm.HeapVMA.Slice(off+8, uint64(nFields)*4))
	return off
}

// ArrayLen reads an array's length header.
func (vm *VM) ArrayLen(ex *kernel.Exec, ref uint64) int64 {
	ex.Read(vm.HeapVMA, 1)
	return int64(getU32(vm.HeapVMA.Slice(ref, 4)))
}

// ArrayGet loads arr[idx]; out-of-bounds access panics (a thrown exception
// would abort the workload anyway, and panicking catches model bugs).
func (vm *VM) ArrayGet(ex *kernel.Exec, ref uint64, idx int64) int64 {
	vm.boundsCheck(ref, idx)
	ex.Read(vm.HeapVMA, 1)
	return int64(int32(getU32(vm.HeapVMA.Slice(ref+8+uint64(idx)*4, 4))))
}

// ArrayPut stores arr[idx] = v.
func (vm *VM) ArrayPut(ex *kernel.Exec, ref uint64, idx, v int64) {
	vm.boundsCheck(ref, idx)
	ex.Write(vm.HeapVMA, 1)
	putU32(vm.HeapVMA.Slice(ref+8+uint64(idx)*4, 4), uint32(int32(v)))
}

// FieldGet loads obj.field[i].
func (vm *VM) FieldGet(ex *kernel.Exec, ref uint64, field int) int64 {
	ex.Read(vm.HeapVMA, 1)
	return int64(int32(getU32(vm.HeapVMA.Slice(ref+8+uint64(field)*4, 4))))
}

// FieldPut stores obj.field[i] = v.
func (vm *VM) FieldPut(ex *kernel.Exec, ref uint64, field int, v int64) {
	ex.Write(vm.HeapVMA, 1)
	putU32(vm.HeapVMA.Slice(ref+8+uint64(field)*4, 4), uint32(int32(v)))
}

func (vm *VM) boundsCheck(ref uint64, idx int64) {
	n := int64(getU32(vm.HeapVMA.Slice(ref, 4)))
	if idx < 0 || idx >= n {
		panic(fmt.Sprintf("dalvik: index %d out of bounds (len %d)", idx, n))
	}
}

// --- service threads ---

// gcLoop is the "GC" thread: each request marks the live heap (reads) and
// sweeps (writes), then pokes HeapWorker to run finalizers.
func (vm *VM) gcLoop(ex *kernel.Exec) {
	ex.PushCode(vm.LibDVM)
	for {
		req := ex.Recv(vm.gcQueue).(gcReq)
		used := req.used
		if used < gcLiveFloor {
			used = gcLiveFloor
		}
		if used > vm.HeapVMA.Size() {
			used = vm.HeapVMA.Size()
		}
		// Mark: walk live objects (~60% of used bytes, one read per
		// word visited plus mark-bit writes).
		ex.Do(kernel.Work{Fetch: 4, Reads: 1, Data: vm.HeapVMA}, used*6/10/8)
		ex.Do(kernel.Work{Fetch: 1, Writes: 1, Data: vm.HeapVMA}, used/64)
		// Sweep: reclaim dead ranges.
		ex.Do(kernel.Work{Fetch: 2, Writes: 1, Data: vm.HeapVMA}, used*4/10/32)
		vm.gcRuns++
		if vm.heapWorkerWq != nil {
			vm.heapWorkerWq.WakeOne()
		}
	}
}

// compilerLoop is the "Compiler" thread: Gingerbread's trace JIT. Each
// request reads the method's bytecode repeatedly (trace formation + opt
// passes over the dex image), burns compiler CPU in libdvm.so, and emits
// machine code into dalvik-jit-code-cache.
func (vm *VM) compilerLoop(ex *kernel.Exec) {
	ex.PushCode(vm.LibDVM)
	for {
		req := ex.Recv(vm.compileQueue).(compileReq)
		m := req.d.File.Methods[req.mi]
		ilen := uint64(len(m.Code))
		if ilen < minTraceUnits {
			ilen = minTraceUnits
		}
		// Trace formation + IR passes: ~8 passes over the code words.
		ex.Do(kernel.Work{Fetch: 26, Reads: 1, Data: req.d.VMA}, ilen*8)
		// Codegen: ~10 emitted words per bytecode.
		emit := ilen * 10
		if vm.jitTop+emit*4 > vm.JITVMA.Size() {
			vm.jitTop = 0 // code cache flush, as Dalvik does when full
		}
		vm.jitTop += emit * 4
		ex.Do(kernel.Work{Fetch: 7, Writes: 1, Data: vm.JITVMA}, emit)
		vm.compiled[req.key] = true
		vm.compilesDone++
	}
}

func putU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func zero(b []byte) {
	for i := range b {
		b[i] = 0
	}
}
