// Package gfx models the Gingerbread graphics stack: gralloc buffers shared
// between applications and SurfaceFlinger, Skia software rendering in the
// application, and SurfaceFlinger composition into the fb0 framebuffer.
//
// Two modelling decisions come straight from the paper's Figures 1 and 2:
//
//   - "mspace" is the top *instruction* region across the Agave suite; the
//     paper attributes it to "buffering pixel operations". We reproduce this
//     by placing the generated scanline/blit pipelines in each process's
//     mspace arena, so pixel loops fetch from mspace.
//   - gralloc-buffer and fb0 are top *data* regions: composition reads
//     gralloc-buffer and writes fb0 (frame buffer), one reference per pixel
//     word.
package gfx

import (
	"fmt"

	"agave/internal/kernel"
	"agave/internal/loader"
	"agave/internal/mem"
	"agave/internal/sim"
)

// Display geometry: a WVGA Gingerbread handset, 16-bit RGB565.
const (
	ScreenW       = 800
	ScreenH       = 480
	BytesPerPixel = 2
	// VsyncPeriod is ~60 Hz.
	VsyncPeriod = 16_667 * sim.Microsecond
)

// MspaceSize is the per-process pixel-pipeline arena.
const MspaceSize = 4 << 20

// Per-pixel cost model (instructions from mspace-resident pipeline code,
// plus setup overhead from libskia.so per operation). Composition through
// pixelflinger-style software blending costs ~8 instructions per pixel
// (fetch, convert, blend, dither, store); app-side Skia drawing is cheaper
// per pixel but adds per-op setup.
const (
	composeFetchPerPx = 2
	drawFetchPerPx    = 4
	opSetupFetch      = 600
)

// Surface is one window: a gralloc buffer owned by an application and
// aliased into the compositor's address space.
type Surface struct {
	Name    string
	W, H    int
	Z       int
	Visible bool

	// Overlay marks video surfaces that bypass software composition:
	// Gingerbread pushed video planes through the copybit/overlay path,
	// so SurfaceFlinger only programs the flip instead of blending every
	// pixel. This is what lets mediaserver dominate gallery.mp4.view (81
	// % in the paper) while composition still dominates UI workloads.
	Overlay bool

	Buf   *mem.VMA // gralloc-buffer mapping in the owner process
	sfBuf *mem.VMA // the compositor's alias of the same pixels

	dirty bool
}

// Pixels reports the surface pixel count.
func (s *Surface) Pixels() uint64 { return uint64(s.W) * uint64(s.H) }

// Post marks the surface dirty so the next composition pass picks it up,
// and charges the small surface-control handshake (an ashmem control block
// write plus a futex wake).
func (s *Surface) Post(ex *kernel.Exec, c *Compositor) {
	ex.Write(c.ctrl, 8)
	ex.Syscall(150, 24)
	s.dirty = true
	c.kick.WakeOne()
}

// Compositor is SurfaceFlinger: it owns fb0 and the composition thread
// inside system_server.
type Compositor struct {
	Proc *kernel.Process

	FB     *mem.VMA // "fb0 (frame buffer)"
	Mspace *mem.VMA // composition pipelines
	ctrl   *mem.VMA // ashmem surface control block

	libskia *mem.VMA
	libsf   *mem.VMA

	surfaces []*Surface
	kick     *kernel.WaitQueue

	// DirtyRectOnly enables the ablation-A3 composition path that only
	// recomposes posted surfaces instead of the full stack.
	DirtyRectOnly bool

	// Frames counts composition passes that actually composed.
	Frames uint64
}

// NewCompositor installs SurfaceFlinger into proc (system_server on a real
// device) and starts the "SurfaceFlinger" thread. lm must map libskia.so
// and libsurfaceflinger.so.
func NewCompositor(proc *kernel.Process, lm *loader.LinkMap) *Compositor {
	k := proc.Kernel()
	c := &Compositor{
		Proc:    proc,
		libskia: lm.VMA("libskia.so"),
		libsf:   lm.VMA("libsurfaceflinger.so"),
		kick:    k.NewWaitQueue("surfaceflinger.kick"),
	}
	c.FB = proc.AS.MapAnywhere(mem.MmapBase, ScreenW*ScreenH*BytesPerPixel,
		mem.RegionFramebuffer, mem.PermRead|mem.PermWrite, mem.ClassDevice)
	c.Mspace = proc.AS.MapAnywhere(mem.MmapBase, MspaceSize,
		mem.RegionMspace, mem.PermRead|mem.PermWrite|mem.PermExec, mem.ClassRuntime)
	c.ctrl = proc.AS.MapAnywhere(mem.MmapBase, 64<<10,
		"ashmem/SurfaceFlinger", mem.PermRead|mem.PermWrite, mem.ClassShared)
	c.ctrl.Shared = true
	k.SpawnThread(proc, "SurfaceFlinger", "SurfaceFlinger", c.loop)
	return c
}

// CreateSurface allocates a gralloc buffer in owner's address space, aliases
// it into the compositor, and registers the surface at the given Z order.
func (c *Compositor) CreateSurface(ex *kernel.Exec, owner *kernel.Process, name string, w, h, z int) *Surface {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("gfx: bad surface size %dx%d", w, h))
	}
	s := &Surface{Name: name, W: w, H: h, Z: z, Visible: true}
	size := uint64(w) * uint64(h) * BytesPerPixel
	s.Buf = owner.AS.MapAnywhere(mem.MmapBase, size, mem.RegionGralloc,
		mem.PermRead|mem.PermWrite, mem.ClassShared)
	s.Buf.Shared = true
	s.sfBuf = c.Proc.AS.MapShared(mem.MmapBase, s.Buf, mem.PermRead)
	// Registration: a binder-ish handshake into the control block.
	ex.Syscall(1200, 200)
	ex.Write(c.ctrl, 32)
	c.surfaces = append(c.surfaces, s)
	// Keep z-order stable: insertion sort by Z (small N).
	for i := len(c.surfaces) - 1; i > 0 && c.surfaces[i-1].Z > c.surfaces[i].Z; i-- {
		c.surfaces[i-1], c.surfaces[i] = c.surfaces[i], c.surfaces[i-1]
	}
	return s
}

// Surfaces returns the registered surfaces in Z order.
func (c *Compositor) Surfaces() []*Surface { return c.surfaces }

// loop is the SurfaceFlinger thread: wake at vsync, compose if anything was
// posted. Composition reads each visible surface's gralloc pixels through
// the mspace-resident pipelines and writes the blended result to fb0.
func (c *Compositor) loop(ex *kernel.Exec) {
	ex.PushCode(c.libsf)
	next := c.Proc.Kernel().Clock.Now() + VsyncPeriod
	for {
		ex.SleepUntil(next)
		next += VsyncPeriod
		anyDirty := false
		for _, s := range c.surfaces {
			if s.dirty {
				anyDirty = true
				break
			}
		}
		if !anyDirty {
			// Idle vsync: poll the control block only.
			ex.Fetch(200)
			ex.Read(c.ctrl, 16)
			continue
		}
		c.compose(ex)
	}
}

// compose runs one composition pass.
func (c *Compositor) compose(ex *kernel.Exec) {
	ex.Read(c.ctrl, 64)
	for _, s := range c.surfaces {
		if !s.Visible || (c.DirtyRectOnly && !s.dirty) {
			continue
		}
		px := s.Pixels()
		if s.Overlay {
			// Video plane: program the overlay engine, no blending.
			ex.InCode(c.libsf, func() { ex.Fetch(opSetupFetch) })
			ex.Read(s.sfBuf, 64)
			ex.Write(c.FB, 64)
			ex.Syscall(400, 60)
			s.dirty = false
			continue
		}
		// Per-operation setup in libskia/libsurfaceflinger.
		ex.InCode(c.libskia, func() { ex.Fetch(opSetupFetch) })
		// The hot blend loop runs from mspace: read source pixels
		// (gralloc), write the framebuffer.
		ex.InCode(c.Mspace, func() {
			ex.Do(kernel.Work{
				Fetch: composeFetchPerPx, Reads: 1, Data: s.sfBuf,
			}, px)
			ex.Do(kernel.Work{Fetch: 2, Writes: 1, Data: c.FB}, px/2)
		})
		// Touch a strip of real pixels so the data path is exercised
		// end to end (the rest is accounted in bulk above).
		rows := uint64(2)
		strip := uint64(s.W) * rows * BytesPerPixel
		if strip > s.sfBuf.Size() {
			strip = s.sfBuf.Size()
		}
		src := s.sfBuf.Slice(0, strip)
		dst := c.FB.Slice(0, strip)
		for i := range src {
			dst[i] = dst[i]/2 + src[i]/2
		}
		s.dirty = false
	}
	c.Frames++
}

// Canvas is the application-side Skia renderer targeting one surface.
type Canvas struct {
	Target *Surface

	mspace  *mem.VMA
	scratch *mem.VMA // decoded bitmaps, glyph caches (anonymous)
	libskia *mem.VMA
}

// NewCanvas prepares app-side rendering state for owner: its own mspace
// pixel-pipeline arena and an anonymous scratch arena for bitmaps.
func NewCanvas(owner *kernel.Process, lm *loader.LinkMap, target *Surface) *Canvas {
	cv := &Canvas{
		Target:  target,
		libskia: lm.VMA("libskia.so"),
	}
	if v := owner.AS.FindByName(mem.RegionMspace); v != nil {
		cv.mspace = v
	} else {
		cv.mspace = owner.AS.MapAnywhere(mem.MmapBase, MspaceSize,
			mem.RegionMspace, mem.PermRead|mem.PermWrite|mem.PermExec, mem.ClassRuntime)
	}
	cv.scratch = owner.Layout.MapAnon(owner.AS, 4<<20)
	return cv
}

// Scratch exposes the canvas's bitmap arena (decoders render into it).
func (cv *Canvas) Scratch() *mem.VMA { return cv.scratch }

// FillRect fills a w×h region of the target surface.
func (cv *Canvas) FillRect(ex *kernel.Exec, w, h int) {
	px := uint64(w) * uint64(h)
	ex.InCode(cv.libskia, func() { ex.Fetch(opSetupFetch / 2) })
	ex.InCode(cv.mspace, func() {
		ex.Do(kernel.Work{Fetch: 3, Writes: 1, Data: cv.Target.Buf}, px/2)
	})
}

// Blit copies a w×h bitmap from the scratch arena onto the target surface
// with blending.
func (cv *Canvas) Blit(ex *kernel.Exec, w, h int) {
	px := uint64(w) * uint64(h)
	ex.InCode(cv.libskia, func() { ex.Fetch(opSetupFetch) })
	ex.InCode(cv.mspace, func() {
		ex.Do(kernel.Work{Fetch: drawFetchPerPx, Reads: 1, Data: cv.scratch}, px/2)
		ex.Do(kernel.Work{Fetch: 2, Writes: 1, Data: cv.Target.Buf}, px/2)
	})
}

// Text rasterizes n glyphs (each ~12×16 px) through the glyph cache.
func (cv *Canvas) Text(ex *kernel.Exec, n int) {
	pxPerGlyph := uint64(12 * 16)
	px := uint64(n) * pxPerGlyph
	ex.InCode(cv.libskia, func() {
		ex.Fetch(opSetupFetch + uint64(n)*40)
		ex.Read(cv.scratch, uint64(n)*8) // glyph cache lookups
	})
	ex.InCode(cv.mspace, func() {
		ex.Do(kernel.Work{Fetch: drawFetchPerPx, Reads: 1, Data: cv.scratch}, px)
		ex.Do(kernel.Work{Fetch: 1, Writes: 1, Data: cv.Target.Buf}, px)
	})
}

// DecodeImage models decoding a compressed image of w×h from src into the
// scratch bitmap arena (JPEG/PNG-ish: entropy decode + dequant + color
// convert), executing from libjpeg/libskia and writing the bitmap.
func (cv *Canvas) DecodeImage(ex *kernel.Exec, src *mem.VMA, w, h int) {
	px := uint64(w) * uint64(h)
	compressed := px / 8 // ~8:1 compression
	ex.InCode(cv.libskia, func() {
		ex.Do(kernel.Work{Fetch: 18, Reads: 1, Data: src}, compressed/4)
		ex.Do(kernel.Work{Fetch: 6, Writes: 1, Data: cv.scratch}, px/2)
	})
}
