package gfx

import (
	"testing"

	"agave/internal/kernel"
	"agave/internal/loader"
	"agave/internal/mem"
	"agave/internal/sim"
	"agave/internal/stats"
)

func setup(t *testing.T) (*kernel.Kernel, *Compositor, *kernel.Process) {
	t.Helper()
	k := kernel.New(kernel.Config{Quantum: 100 * sim.Microsecond, Seed: 9})
	t.Cleanup(k.Shutdown)
	ss := k.NewProcess("system_server", 1<<20, 1<<20)
	lm := loader.Load(ss.AS, ss.Layout, []string{"libskia.so", "libsurfaceflinger.so"})
	c := NewCompositor(ss, lm)
	app := k.NewProcess("benchmark", 1<<20, 1<<20)
	loader.Load(app.AS, app.Layout, []string{"libskia.so"})
	return k, c, app
}

func TestCreateSurfaceSharesPixels(t *testing.T) {
	k, c, app := setup(t)
	var s *Surface
	k.SpawnThread(app, "main", "main", func(ex *kernel.Exec) {
		ex.PushCode(app.Layout.Text)
		s = c.CreateSurface(ex, app, "win", 320, 240, 1)
		s.Buf.Bytes()[5] = 0xCD
	})
	k.Run(5 * sim.Millisecond)
	if s == nil {
		t.Fatal("surface not created")
	}
	if s.sfBuf.Bytes()[5] != 0xCD {
		t.Fatal("compositor alias does not see app pixels")
	}
	if s.Buf.Name != mem.RegionGralloc {
		t.Fatalf("surface buffer region = %q", s.Buf.Name)
	}
}

func TestZOrderMaintained(t *testing.T) {
	k, c, app := setup(t)
	k.SpawnThread(app, "main", "main", func(ex *kernel.Exec) {
		ex.PushCode(app.Layout.Text)
		c.CreateSurface(ex, app, "top", 10, 10, 10)
		c.CreateSurface(ex, app, "bottom", 10, 10, 0)
		c.CreateSurface(ex, app, "middle", 10, 10, 5)
	})
	k.Run(5 * sim.Millisecond)
	ss := c.Surfaces()
	if len(ss) != 3 || ss[0].Name != "bottom" || ss[1].Name != "middle" || ss[2].Name != "top" {
		t.Fatalf("z order wrong: %v %v %v", ss[0].Name, ss[1].Name, ss[2].Name)
	}
}

func TestComposeOnPost(t *testing.T) {
	k, c, app := setup(t)
	k.SpawnThread(app, "main", "main", func(ex *kernel.Exec) {
		ex.PushCode(app.Layout.Text)
		s := c.CreateSurface(ex, app, "win", ScreenW, ScreenH, 1)
		for i := 0; i < 5; i++ {
			s.Post(ex, c)
			ex.SleepFor(2 * VsyncPeriod)
		}
	})
	k.Run(400 * sim.Millisecond)
	if c.Frames < 4 {
		t.Fatalf("composed %d frames, want >= 4", c.Frames)
	}
	ifetch := k.Stats.ByRegion(stats.IFetch)
	if ifetch[mem.RegionMspace] == 0 {
		t.Fatal("composition fetched nothing from mspace")
	}
	data := k.Stats.ByRegion(stats.DataKinds...)
	if data[mem.RegionGralloc] == 0 || data[mem.RegionFramebuffer] == 0 {
		t.Fatal("composition touched no gralloc/fb0 data")
	}
}

func TestOverlaySurfaceSkipsBlend(t *testing.T) {
	k, c, app := setup(t)
	k.SpawnThread(app, "main", "main", func(ex *kernel.Exec) {
		ex.PushCode(app.Layout.Text)
		s := c.CreateSurface(ex, app, "video", ScreenW, ScreenH, 1)
		s.Overlay = true
		for i := 0; i < 5; i++ {
			s.Post(ex, c)
			ex.SleepFor(2 * VsyncPeriod)
		}
	})
	k.Run(400 * sim.Millisecond)
	// Overlay flips write only descriptors: fb0 traffic must be tiny.
	fb := k.Stats.ByRegion(stats.DataKinds...)[mem.RegionFramebuffer]
	if fb > 10_000 {
		t.Fatalf("overlay path wrote %d fb0 refs (expected descriptor-only)", fb)
	}
}

func TestDirtyRectOnlyComposesPosted(t *testing.T) {
	k, c, app := setup(t)
	c.DirtyRectOnly = true
	k.SpawnThread(app, "main", "main", func(ex *kernel.Exec) {
		ex.PushCode(app.Layout.Text)
		big := c.CreateSurface(ex, app, "big", ScreenW, ScreenH, 0)
		small := c.CreateSurface(ex, app, "small", 16, 16, 1)
		_ = big // never posted
		for i := 0; i < 5; i++ {
			small.Post(ex, c)
			ex.SleepFor(2 * VsyncPeriod)
		}
	})
	k.Run(400 * sim.Millisecond)
	// With dirty-rect composition only the 16x16 surface is blended, so
	// gralloc reads stay small.
	gr := k.Stats.ByRegion(stats.DataRead)[mem.RegionGralloc]
	if gr > 100_000 {
		t.Fatalf("dirty-rect composition read %d gralloc refs (full-screen leak?)", gr)
	}
}

func TestHiddenSurfaceNotComposed(t *testing.T) {
	k, c, app := setup(t)
	k.SpawnThread(app, "main", "main", func(ex *kernel.Exec) {
		ex.PushCode(app.Layout.Text)
		s := c.CreateSurface(ex, app, "hidden", ScreenW, ScreenH, 0)
		tiny := c.CreateSurface(ex, app, "tiny", 8, 8, 1)
		s.Visible = false
		for i := 0; i < 3; i++ {
			tiny.Post(ex, c)
			ex.SleepFor(2 * VsyncPeriod)
		}
	})
	k.Run(200 * sim.Millisecond)
	gr := k.Stats.ByRegion(stats.DataRead)[mem.RegionGralloc]
	if gr > 50_000 {
		t.Fatalf("hidden surface appears to have been composed: %d gralloc reads", gr)
	}
}

func TestCanvasOps(t *testing.T) {
	k, c, app := setup(t)
	lmApp := loader.Rebind(app.AS, app.Layout, []string{"libskia.so"})
	k.SpawnThread(app, "main", "main", func(ex *kernel.Exec) {
		ex.PushCode(app.Layout.Text)
		s := c.CreateSurface(ex, app, "win", 400, 300, 1)
		cv := NewCanvas(app, lmApp, s)
		cv.FillRect(ex, 400, 300)
		cv.Blit(ex, 100, 100)
		cv.Text(ex, 25)
		cv.DecodeImage(ex, cv.Scratch(), 200, 150)
	})
	k.Run(20 * sim.Millisecond)
	byProc := k.Stats.ByProcess()
	if byProc["benchmark"] == 0 {
		t.Fatal("canvas ops earned nothing")
	}
	data := k.Stats.ByRegion(stats.DataWrite)
	if data[mem.RegionGralloc] == 0 {
		t.Fatal("canvas never wrote the surface")
	}
	ifetch := k.Stats.ByRegion(stats.IFetch)
	if ifetch["libskia.so"] == 0 || ifetch[mem.RegionMspace] == 0 {
		t.Fatal("canvas fetch attribution missing")
	}
}

func TestBadSurfaceSizePanics(t *testing.T) {
	k, c, app := setup(t)
	panicked := false
	k.SpawnThread(app, "main", "main", func(ex *kernel.Exec) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		ex.PushCode(app.Layout.Text)
		c.CreateSurface(ex, app, "bad", 0, 10, 1)
	})
	k.Run(5 * sim.Millisecond)
	if !panicked {
		t.Fatal("zero-width surface accepted")
	}
}

func TestIdleVsyncCheap(t *testing.T) {
	k, c, _ := setup(t)
	_ = c
	k.Run(100 * sim.Millisecond) // no posts at all
	sf := k.Stats.ByThread()["SurfaceFlinger"]
	if sf > 500_000 {
		t.Fatalf("idle SurfaceFlinger consumed %d refs", sf)
	}
}
