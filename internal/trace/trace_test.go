package trace

import (
	"bytes"
	"strings"
	"testing"

	"agave/internal/kernel"
	"agave/internal/sim"
	"agave/internal/stats"
)

func TestRingKeepsArrivalOrder(t *testing.T) {
	g := NewRing(4, 1)
	for i := 0; i < 3; i++ {
		g.Emit(sim.Ticks(i), "p", "t", "r", stats.IFetch, uint64(i+1))
	}
	recs := g.Records()
	if len(recs) != 3 || recs[0].N != 1 || recs[2].N != 3 {
		t.Fatalf("records = %v", recs)
	}
}

func TestRingWrapsOldest(t *testing.T) {
	g := NewRing(3, 1)
	for i := 0; i < 5; i++ {
		g.Emit(sim.Ticks(i), "p", "t", "r", stats.IFetch, uint64(i))
	}
	recs := g.Records()
	if len(recs) != 3 {
		t.Fatalf("len = %d", len(recs))
	}
	if recs[0].N != 2 || recs[2].N != 4 {
		t.Fatalf("wrap kept wrong records: %v", recs)
	}
}

func TestSampling(t *testing.T) {
	g := NewRing(100, 4)
	for i := 0; i < 40; i++ {
		g.Emit(0, "p", "t", "r", stats.DataRead, 1)
	}
	if g.Len() != 10 {
		t.Fatalf("kept %d of 40 at 1/4 sampling", g.Len())
	}
	if g.Dropped != 30 {
		t.Fatalf("dropped = %d", g.Dropped)
	}
}

func TestFilterAndTotals(t *testing.T) {
	g := NewRing(10, 1)
	g.Emit(1, "benchmark", "main", "dalvik-heap", stats.DataRead, 5)
	g.Emit(2, "system_server", "SurfaceFlinger", "fb0", stats.DataWrite, 7)
	heap := g.Filter(func(r Record) bool { return r.Region == "dalvik-heap" })
	if len(heap) != 1 || heap[0].N != 5 {
		t.Fatalf("filter = %v", heap)
	}
	tot := g.Totals()
	if tot["dalvik-heap"] != 5 || tot["fb0"] != 7 {
		t.Fatalf("totals = %v", tot)
	}
}

func TestWriteCSV(t *testing.T) {
	g := NewRing(4, 1)
	g.Emit(9, "p", "t", "mspace", stats.IFetch, 3)
	var buf bytes.Buffer
	if err := g.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "when,proc,thread,region,kind,n\n") {
		t.Fatalf("csv header wrong: %q", out)
	}
	if !strings.Contains(out, "9,p,t,mspace,ifetch,3") {
		t.Fatalf("csv row missing: %q", out)
	}
}

func TestRecordString(t *testing.T) {
	r := Record{When: 5, Proc: "p", Thread: "t", Region: "r", Kind: stats.DataWrite, N: 2}
	if got := r.String(); !strings.Contains(got, "p/t r dwrite x2") {
		t.Fatalf("String = %q", got)
	}
}

func TestAttachCapturesKernelEvents(t *testing.T) {
	k := kernel.New(kernel.Config{Quantum: 100 * sim.Microsecond, Seed: 1})
	defer k.Shutdown()
	g := NewRing(1024, 1)
	Attach(g, k)
	p := k.NewProcess("benchmark", 1<<20, 1<<20)
	k.SpawnThread(p, "main", "main", func(ex *kernel.Exec) {
		ex.PushCode(p.Layout.Text)
		ex.Fetch(100)
		ex.Read(p.Layout.Heap, 30)
	})
	k.Run(2 * sim.Millisecond)
	if g.Len() == 0 {
		t.Fatal("trace captured nothing")
	}
	app := g.Filter(func(r Record) bool { return r.Proc == "benchmark" && r.Region == "app binary" })
	if len(app) == 0 {
		t.Fatal("trace missing the app's fetch events")
	}
	// A full (unsampled) trace must fold back to the aggregate counters.
	tot := g.Totals()
	if tot["app binary"] != k.Stats.ByRegion(stats.IFetch)["app binary"] {
		t.Fatalf("trace totals diverge from counters: %d vs %d",
			tot["app binary"], k.Stats.ByRegion(stats.IFetch)["app binary"])
	}
}

func TestBadCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity accepted")
		}
	}()
	NewRing(0, 1)
}
