// Package trace provides a sampled reference trace: a ring of attributed
// access records the kernel emits alongside the aggregate counters. The
// paper's methodology is aggregate-only; the trace exists for the tooling
// around it — debugging workload models, inspecting interleavings, and
// feeding downstream consumers (e.g. a cache simulator) the same attributed
// stream the counters summarize.
package trace

import (
	"fmt"
	"io"

	"agave/internal/sim"
	"agave/internal/stats"
)

// Record is one sampled accounting event: n accesses of kind Kind by
// (Proc, Thread) against Region at simulated time When.
type Record struct {
	When   sim.Ticks
	Proc   string
	Thread string
	Region string
	Kind   stats.Kind
	N      uint64
}

// String renders the record in a grep-friendly single line.
func (r Record) String() string {
	return fmt.Sprintf("%d %s/%s %s %s x%d", r.When, r.Proc, r.Thread, r.Region, r.Kind, r.N)
}

// Ring is a fixed-capacity sampling trace buffer. Every Sample-th accounting
// event is recorded; when full, the oldest records are overwritten. The zero
// value is unusable; call NewRing.
type Ring struct {
	records []Record
	next    int
	full    bool

	// Sample keeps every Sample-th event (1 = everything).
	Sample uint64
	seen   uint64

	// Dropped counts events skipped by sampling.
	Dropped uint64
}

// NewRing returns a ring holding up to capacity records, keeping every
// sample-th event.
func NewRing(capacity int, sample uint64) *Ring {
	if capacity <= 0 {
		panic("trace: non-positive capacity")
	}
	if sample == 0 {
		sample = 1
	}
	return &Ring{records: make([]Record, 0, capacity), Sample: sample}
}

// Emit offers an event to the ring; it implements the kernel's Tracer hook.
func (g *Ring) Emit(when sim.Ticks, proc, thread, region string, kind stats.Kind, n uint64) {
	g.seen++
	if g.seen%g.Sample != 0 {
		g.Dropped++
		return
	}
	rec := Record{When: when, Proc: proc, Thread: thread, Region: region, Kind: kind, N: n}
	if len(g.records) < cap(g.records) {
		g.records = append(g.records, rec)
		return
	}
	g.full = true
	g.records[g.next] = rec
	g.next = (g.next + 1) % cap(g.records)
}

// Len reports the number of retained records.
func (g *Ring) Len() int { return len(g.records) }

// Records returns retained records in arrival order.
func (g *Ring) Records() []Record {
	if !g.full {
		return append([]Record(nil), g.records...)
	}
	out := make([]Record, 0, len(g.records))
	out = append(out, g.records[g.next:]...)
	out = append(out, g.records[:g.next]...)
	return out
}

// Filter returns the retained records matching pred, in order.
func (g *Ring) Filter(pred func(Record) bool) []Record {
	var out []Record
	for _, r := range g.Records() {
		if pred(r) {
			out = append(out, r)
		}
	}
	return out
}

// WriteCSV renders the retained records as CSV.
func (g *Ring) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "when,proc,thread,region,kind,n"); err != nil {
		return err
	}
	for _, r := range g.Records() {
		if _, err := fmt.Fprintf(w, "%d,%s,%s,%s,%s,%d\n",
			r.When, r.Proc, r.Thread, r.Region, r.Kind, r.N); err != nil {
			return err
		}
	}
	return nil
}

// Totals folds the retained records back into (region → count) — useful for
// checking that a sampled trace is a faithful thinning of the aggregate
// counters.
func (g *Ring) Totals() map[string]uint64 {
	out := map[string]uint64{}
	for _, r := range g.Records() {
		out[r.Region] += r.N
	}
	return out
}
