package trace

import (
	"agave/internal/kernel"
	"agave/internal/stats"
)

// Attach wires the ring to a running machine: every accounting event flows
// through the collector's Tap with the current simulated timestamp. Detach
// by setting k.Stats.Tap = nil.
func Attach(g *Ring, k *kernel.Kernel) {
	c := k.Stats
	c.Tap = func(p stats.ProcID, t stats.ThreadID, r stats.RegionID, kind stats.Kind, n uint64) {
		g.Emit(k.Clock.Now(), c.ProcName(p), c.ThreadName(t), c.RegionName(r), kind, n)
	}
}
