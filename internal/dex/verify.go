package dex

import "fmt"

// Verify checks the structural validity of every method in the file: opcode
// range, register bounds, branch targets inside the method, and invoke
// indices referencing real methods. It mirrors the Dalvik verifier's role
// (and dexopt runs it before optimizing).
func Verify(f *File) error {
	// A dex image with no methods has nothing to execute: real dalvik
	// rejects it at load, and accepting it here would hand interpreters a
	// file whose method count they cannot safely divide or index by.
	if len(f.Methods) == 0 {
		return fmt.Errorf("dex: %s: no methods", f.Name)
	}
	for mi, m := range f.Methods {
		if m.In < 0 || m.In > NumRegs {
			return fmt.Errorf("dex: %s.%s: bad arg count %d", f.Name, m.Name, m.In)
		}
		if len(m.Code) == 0 {
			return fmt.Errorf("dex: %s.%s: empty method", f.Name, m.Name)
		}
		for pc, ins := range m.Code {
			if ins.Op >= numOps {
				return fmt.Errorf("dex: %s.%s+%d: bad opcode %d", f.Name, m.Name, pc, ins.Op)
			}
			if err := verifyRegs(m, pc, ins); err != nil {
				return fmt.Errorf("dex: %s.%s: %v", f.Name, m.Name, err)
			}
			switch ins.Op {
			case OpIfEq, OpIfNe, OpIfLt, OpIfGe, OpGoto:
				rel := int(ins.Imm())
				if ins.Op != OpGoto {
					rel = int(ins.BranchOff())
				}
				target := pc + 1 + rel
				if target < 0 || target >= len(m.Code) {
					return fmt.Errorf("dex: %s.%s+%d: branch target %d out of range", f.Name, m.Name, pc, target)
				}
			case OpInvoke:
				if int(ins.B) >= len(f.Methods) {
					return fmt.Errorf("dex: %s.%s+%d: invoke of method #%d (have %d)", f.Name, m.Name, pc, ins.B, len(f.Methods))
				}
				callee := f.Methods[ins.B]
				if int(ins.A) != callee.In {
					return fmt.Errorf("dex: %s.%s+%d: invoke %s with %d args, wants %d", f.Name, m.Name, pc, callee.Name, ins.A, callee.In)
				}
				if mi == int(ins.B) && m.In == callee.In {
					// Self-recursion is allowed; nothing to check.
					_ = mi
				}
			}
		}
		last := m.Code[len(m.Code)-1]
		if last.Op != OpReturn && last.Op != OpRetVoid && last.Op != OpGoto {
			return fmt.Errorf("dex: %s.%s: control falls off the end", f.Name, m.Name)
		}
	}
	return nil
}

func verifyRegs(m *Method, pc int, ins Instr) error {
	bad := func(r uint8) bool { return int(r) >= NumRegs }
	switch ins.Op {
	case OpNop, OpGoto, OpRetVoid:
		return nil
	case OpConst, OpMoveRes, OpReturn:
		if bad(ins.A) {
			return fmt.Errorf("+%d: register v%d out of range", pc, ins.A)
		}
	case OpMove, OpArrayLen, OpNewArray, OpIfEq, OpIfNe, OpIfLt, OpIfGe, OpAddI, OpIGet, OpIPut:
		if bad(ins.A) || bad(ins.B) {
			return fmt.Errorf("+%d: register out of range", pc)
		}
	case OpNewObj:
		if bad(ins.A) {
			return fmt.Errorf("+%d: register v%d out of range", pc, ins.A)
		}
	case OpInvoke:
		if ins.A > 0 && int(ins.C)+int(ins.A) > NumRegs {
			return fmt.Errorf("+%d: invoke args v%d..v%d out of range", pc, ins.C, int(ins.C)+int(ins.A)-1)
		}
	default: // three-register ALU and array forms
		if bad(ins.A) || bad(ins.B) || bad(ins.C) {
			return fmt.Errorf("+%d: register out of range", pc)
		}
	}
	return nil
}

// Optimize models dexopt's rewriting pass: it verifies the file and returns
// an "odex" image (a serialized copy with the header tagged). The simulation
// value is in the *work* dexopt performs — reading every instruction word
// and writing the output image — which the android install flow charges to
// the dexopt process.
func Optimize(f *File) ([]byte, error) {
	if err := Verify(f); err != nil {
		return nil, err
	}
	img := f.Serialize()
	out := make([]byte, len(img))
	copy(out, img)
	copy(out[:4], []byte{'d', 'e', 'y', '\n'}) // odex magic
	return out, nil
}
