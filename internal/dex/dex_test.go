package dex

import (
	"strings"
	"testing"
	"testing/quick"
)

const goodSrc = `
.method main 1
    const v1, 0
    const v2, 0
loop:
    if_ge v2, v0, done
    add v1, v1, v2
    addi v2, v2, 1
    goto loop
done:
    return v1
.end

.method double 1
    const v1, 2
    mul v2, v0, v1
    return v2
.end
`

func TestAssembleAndLookup(t *testing.T) {
	f, err := Assemble("test", goodSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Methods) != 2 {
		t.Fatalf("methods = %d, want 2", len(f.Methods))
	}
	m, ok := f.Method("main")
	if !ok || m.In != 1 {
		t.Fatalf("main lookup failed: %v %v", m, ok)
	}
	if f.MethodIndex("double") != 1 {
		t.Fatalf("double index = %d", f.MethodIndex("double"))
	}
	if f.MethodIndex("missing") != -1 {
		t.Fatal("missing method found")
	}
}

func TestBranchResolution(t *testing.T) {
	f, err := Assemble("test", goodSrc)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := f.Method("main")
	// instr 2 is if_ge -> done (instr 6); rel = 6 - 3 = 3
	if got := m.Code[2].Imm(); got != 3 {
		t.Fatalf("if_ge rel = %d, want 3", got)
	}
	// instr 5 is goto -> loop (instr 2); rel = 2 - 6 = -4
	if got := m.Code[5].Imm(); got != -4 {
		t.Fatalf("goto rel = %d, want -4", got)
	}
}

func TestVerifyGood(t *testing.T) {
	f, err := Assemble("test", goodSrc)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(f); err != nil {
		t.Fatal(err)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := map[string]string{
		"missing end":        ".method m 0\nreturn_void\n",
		"label outside":      "x:\n",
		"instr outside":      "const v0, 1\n",
		"bad register":       ".method m 0\nconst v99, 1\nreturn_void\n.end",
		"bad mnemonic":       ".method m 0\nfrobnicate v0\nreturn_void\n.end",
		"undefined label":    ".method m 0\ngoto nowhere\nreturn_void\n.end",
		"undefined callee":   ".method m 0\ninvoke ghost\nreturn_void\n.end",
		"dup method":         ".method m 0\nreturn_void\n.end\n.method m 0\nreturn_void\n.end",
		"imm range":          ".method m 0\nconst v0, 70000\nreturn_void\n.end",
		"nonconsecutive arg": ".method m 0\nconst v0, 1\nconst v2, 2\ninvoke h, v0, v2\nreturn_void\n.end\n.method h 2\nreturn_void\n.end",
	}
	for name, src := range cases {
		if _, err := Assemble("t", src); err == nil {
			t.Errorf("%s: assembled without error", name)
		}
	}
}

func TestVerifyCatchesFallOffEnd(t *testing.T) {
	f := NewFile("t")
	if err := f.Add(&Method{Name: "bad", Code: []Instr{{Op: OpNop}}}); err != nil {
		t.Fatal(err)
	}
	if err := Verify(f); err == nil || !strings.Contains(err.Error(), "falls off") {
		t.Fatalf("want fall-off error, got %v", err)
	}
}

func TestVerifyRejectsZeroMethodFile(t *testing.T) {
	// A method-less image used to pass Verify (the per-method loop never
	// ran) and then divide interpreters by zero; it must be rejected.
	if err := Verify(NewFile("empty")); err == nil || !strings.Contains(err.Error(), "no methods") {
		t.Fatalf("want zero-method error, got %v", err)
	}
}

func TestDecodeCodeMatchesDecodeInstr(t *testing.T) {
	f := NewFile("t")
	code := []Instr{
		Instr{Op: OpConst, A: 1}.WithImm(7),
		{Op: OpAdd, A: 2, B: 1, C: 1},
		{Op: OpReturn, A: 2},
	}
	if err := f.Add(&Method{Name: "m", Code: code}); err != nil {
		t.Fatal(err)
	}
	img := f.Serialize()
	off := f.CodeOffset(0)
	got := DecodeCode(img[off : off+uint64(4*len(code))])
	if len(got) != len(code) {
		t.Fatalf("decoded %d instrs, want %d", len(got), len(code))
	}
	for i := range code {
		if got[i] != code[i] {
			t.Errorf("instr %d: decoded %v, want %v", i, got[i], code[i])
		}
	}
}

func TestVerifyCatchesBadBranch(t *testing.T) {
	f := NewFile("t")
	bad := Instr{Op: OpGoto}.WithImm(100)
	if err := f.Add(&Method{Name: "bad", Code: []Instr{bad, {Op: OpRetVoid}}}); err != nil {
		t.Fatal(err)
	}
	if err := Verify(f); err == nil || !strings.Contains(err.Error(), "target") {
		t.Fatalf("want branch error, got %v", err)
	}
}

func TestVerifyCatchesBadInvokeArity(t *testing.T) {
	src := `
.method m 0
    const v0, 1
    invoke h, v0
    return_void
.end
.method h 2
    return_void
.end`
	if _, err := Assemble("t", src); err == nil {
		// Assembler accepts; verifier must reject arity mismatch.
		t.Log("assembler accepted, checking verifier")
	}
	f := NewFile("t")
	_ = f.Add(&Method{Name: "h", In: 2, Code: []Instr{{Op: OpRetVoid}}})
	_ = f.Add(&Method{Name: "m", In: 0, Code: []Instr{
		{Op: OpInvoke, A: 1, B: 0, C: 0},
		{Op: OpRetVoid},
	}})
	if err := Verify(f); err == nil || !strings.Contains(err.Error(), "args") {
		t.Fatalf("want arity error, got %v", err)
	}
}

func TestSerializeRoundtripInstr(t *testing.T) {
	fn := func(op uint8, a, b, c uint8) bool {
		in := Instr{Op: Op(op), A: a, B: b, C: c}
		out := DecodeInstr(in.Encode())
		return in == out
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Fatal(err)
	}
}

func TestImmRoundtripProperty(t *testing.T) {
	fn := func(v int16) bool {
		return Instr{Op: OpConst}.WithImm(v).Imm() == v
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSerializeLayout(t *testing.T) {
	f, err := Assemble("test", goodSrc)
	if err != nil {
		t.Fatal(err)
	}
	img := f.Serialize()
	if uint64(len(img)) != f.Size() {
		t.Fatalf("image %d bytes, Size() says %d", len(img), f.Size())
	}
	if string(img[:4]) != "dex\n" {
		t.Fatalf("magic = %q", img[:4])
	}
	// Instruction words for method 0 start at CodeOffset(0).
	off := f.CodeOffset(0)
	got := DecodeInstr([4]byte{img[off], img[off+1], img[off+2], img[off+3]})
	if got.Op != OpConst {
		t.Fatalf("first instr of main = %v", got)
	}
	// Method 1's code follows method 0's.
	if f.CodeOffset(1) != off+uint64(4*len(f.Methods[0].Code)) {
		t.Fatal("code offsets not contiguous")
	}
}

func TestOptimizeTagsOdex(t *testing.T) {
	f, err := Assemble("test", goodSrc)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Optimize(f)
	if err != nil {
		t.Fatal(err)
	}
	if string(out[:4]) != "dey\n" {
		t.Fatalf("odex magic = %q", out[:4])
	}
	if len(out) != len(f.Serialize()) {
		t.Fatal("odex size mismatch")
	}
}

func TestOptimizeRejectsBroken(t *testing.T) {
	f := NewFile("t")
	_ = f.Add(&Method{Name: "bad", Code: []Instr{{Op: Op(200)}, {Op: OpRetVoid}}})
	if _, err := Optimize(f); err == nil {
		t.Fatal("Optimize accepted invalid file")
	}
}

func TestInstrString(t *testing.T) {
	i := Instr{Op: OpAdd, A: 1, B: 2, C: 3}
	if got := i.String(); got != "add v1, v2, v3" {
		t.Fatalf("String = %q", got)
	}
	if !strings.Contains(Instr{Op: OpConst, A: 0}.WithImm(-5).String(), "#-5") {
		t.Fatal("const disassembly missing immediate")
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	src := `
; leading comment
.method m 0   ; trailing
    const v0, 1   # hash comment

    return v0
.end
`
	f, err := Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := f.Method("m")
	if len(m.Code) != 2 {
		t.Fatalf("code len = %d, want 2", len(m.Code))
	}
}
