// Package dex models the Dalvik executable side of the stack: a compact
// register-based bytecode ISA, an assembler for it, a container format that
// serializes to bytes (so interpreters genuinely fetch instruction words
// from the dex mapping — data *reads* in the paper's accounting), a
// verifier, and the dexopt optimization pass.
//
// The ISA is a faithful miniature of Dalvik's: 16 virtual registers per
// frame, three-address arithmetic, array/field access, object allocation,
// static invokes, and conditional branches.
package dex

import "fmt"

// Op is a bytecode opcode.
type Op uint8

// Opcodes.
const (
	OpNop   Op = iota
	OpConst    // vA := imm16 (sign-extended)
	OpMove     // vA := vB
	OpAdd      // vA := vB + vC
	OpSub      // vA := vB - vC
	OpMul      // vA := vB * vC
	// OpDiv and OpRem pin a deliberate divergence from real Dalvik: a zero
	// divisor yields 0 instead of throwing ArithmeticException. The
	// simulator has no exception machinery (a throw would abort the
	// workload model anyway), so "caught exception, result 0" is the
	// modelled behaviour. Both interpreter dispatch paths (switch-threaded
	// and the pre-decoded compiled form) implement exactly this, and
	// TestDivRemByZeroYieldsZero in internal/dalvik locks it down.
	OpDiv      // vA := vB / vC (0 divisor yields 0; see above)
	OpRem      // vA := vB % vC (0 divisor yields 0; see above)
	OpAnd      // vA := vB & vC
	OpOr       // vA := vB | vC
	OpXor      // vA := vB ^ vC
	OpShl      // vA := vB << (vC & 63)
	OpShr      // vA := vB >> (vC & 63)
	OpAddI     // vA := vB + imm8 (C as signed immediate)
	OpIfEq     // if vA == vB branch by int8 offset in C
	OpIfNe     // if vA != vB ...
	OpIfLt     // if vA < vB ...
	OpIfGe     // if vA >= vB ...
	OpGoto     // unconditional branch by imm16 offset
	OpNewArray // vA := new array of length vB (elements int32)
	OpArrayLen // vA := len(vB)
	OpAGet     // vA := arr(vB)[vC]
	OpAPut     // arr(vB)[vC] := vA
	OpNewObj   // vA := new object with B fields
	OpIGet     // vA := obj(vB).field[C]
	OpIPut     // obj(vB).field[C] := vA
	OpInvoke   // call method #imm; args v0..v(A-1) of callee frame copied from vB...
	OpMoveRes  // vA := last return value
	OpReturn   // return vA
	OpRetVoid  // return 0
	numOps
)

// NumOps is the number of defined opcodes; interpreters size their dispatch
// tables with it.
const NumOps = int(numOps)

var opNames = [...]string{
	OpNop: "nop", OpConst: "const", OpMove: "move", OpAdd: "add",
	OpSub: "sub", OpMul: "mul", OpDiv: "div", OpRem: "rem", OpAnd: "and",
	OpOr: "or", OpXor: "xor", OpShl: "shl", OpShr: "shr", OpAddI: "addi",
	OpIfEq: "if_eq", OpIfNe: "if_ne", OpIfLt: "if_lt", OpIfGe: "if_ge",
	OpGoto: "goto", OpNewArray: "new_array", OpArrayLen: "array_len",
	OpAGet: "aget", OpAPut: "aput", OpNewObj: "new_obj", OpIGet: "iget",
	OpIPut: "iput", OpInvoke: "invoke", OpMoveRes: "move_result",
	OpReturn: "return", OpRetVoid: "return_void",
}

// String names the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op%d", uint8(o))
}

// NumRegs is the fixed per-frame virtual register file size.
const NumRegs = 16

// Instr is one fixed-width (4-byte) instruction: opcode and three operand
// bytes. Immediate-carrying forms pack a 16-bit value into B:C.
type Instr struct {
	Op      Op
	A, B, C uint8
}

// Imm returns the signed 16-bit immediate packed into B:C.
func (i Instr) Imm() int16 { return int16(uint16(i.B)<<8 | uint16(i.C)) }

// BranchOff returns the signed 8-bit branch offset of a conditional branch
// (packed into C, leaving A and B free for the compared registers).
func (i Instr) BranchOff() int8 { return int8(i.C) }

// WithBranchOff packs off into C.
func (i Instr) WithBranchOff(off int8) Instr {
	i.C = uint8(off)
	return i
}

// WithImm packs imm into B:C.
func (i Instr) WithImm(imm int16) Instr {
	i.B = uint8(uint16(imm) >> 8)
	i.C = uint8(uint16(imm))
	return i
}

// Encode packs the instruction into 4 bytes.
func (i Instr) Encode() [4]byte { return [4]byte{byte(i.Op), i.A, i.B, i.C} }

// DecodeInstr unpacks 4 bytes into an instruction.
func DecodeInstr(b [4]byte) Instr {
	return Instr{Op: Op(b[0]), A: b[1], B: b[2], C: b[3]}
}

// DecodeCode decodes a serialized code region (4 bytes per instruction, as
// laid out by Serialize) into instructions. Interpreters call it once per
// method at load time so the dispatch loop fetches pre-decoded instructions
// instead of re-decoding the mapped image on every iteration; trailing bytes
// short of a full instruction word are ignored.
func DecodeCode(b []byte) []Instr {
	out := make([]Instr, len(b)/4)
	for i := range out {
		out[i] = DecodeInstr([4]byte{b[4*i], b[4*i+1], b[4*i+2], b[4*i+3]})
	}
	return out
}

// String disassembles the instruction.
func (i Instr) String() string {
	switch i.Op {
	case OpConst, OpGoto, OpInvoke:
		return fmt.Sprintf("%s v%d, #%d", i.Op, i.A, i.Imm())
	case OpIfEq, OpIfNe, OpIfLt, OpIfGe:
		return fmt.Sprintf("%s v%d, v%d, %+d", i.Op, i.A, i.B, i.BranchOff())
	case OpAddI:
		return fmt.Sprintf("%s v%d, v%d, #%d", i.Op, i.A, i.B, int8(i.C))
	default:
		return fmt.Sprintf("%s v%d, v%d, v%d", i.Op, i.A, i.B, i.C)
	}
}

// Method is one bytecode method.
type Method struct {
	Name string
	// In is the number of argument registers (arguments arrive in
	// v0..vIn-1).
	In   int
	Code []Instr
}

// File is a dex container: an ordered set of methods.
type File struct {
	Name    string
	Methods []*Method

	index map[string]int
}

// NewFile returns an empty container.
func NewFile(name string) *File {
	return &File{Name: name, index: make(map[string]int)}
}

// Add appends a method. Duplicate names are an error.
func (f *File) Add(m *Method) error {
	if _, dup := f.index[m.Name]; dup {
		return fmt.Errorf("dex: duplicate method %q in %s", m.Name, f.Name)
	}
	f.index[m.Name] = len(f.Methods)
	f.Methods = append(f.Methods, m)
	return nil
}

// Method looks a method up by name.
func (f *File) Method(name string) (*Method, bool) {
	i, ok := f.index[name]
	if !ok {
		return nil, false
	}
	return f.Methods[i], true
}

// MethodIndex returns the index of the named method, or -1.
func (f *File) MethodIndex(name string) int {
	i, ok := f.index[name]
	if !ok {
		return -1
	}
	return i
}

// headerBytes is the serialized per-file header (magic + method count).
const headerBytes = 16

// perMethodHeader is the serialized per-method header (code offset+len+in).
const perMethodHeader = 12

// Size reports the serialized byte size.
func (f *File) Size() uint64 {
	n := uint64(headerBytes + perMethodHeader*len(f.Methods))
	for _, m := range f.Methods {
		n += uint64(4 * len(m.Code))
	}
	return n
}

// Serialize renders the container to bytes: header, method table, then
// 4-byte instruction words. The exact layout only needs to be stable — the
// interpreter reads instruction words out of the mapped image.
func (f *File) Serialize() []byte {
	out := make([]byte, 0, f.Size())
	out = append(out, 'd', 'e', 'x', '\n', '0', '3', '5', 0)
	out = appendU32(out, uint32(len(f.Methods)))
	out = appendU32(out, uint32(f.Size()))
	off := uint32(headerBytes + perMethodHeader*len(f.Methods))
	for _, m := range f.Methods {
		out = appendU32(out, off)
		out = appendU32(out, uint32(len(m.Code)))
		out = appendU32(out, uint32(m.In))
		off += uint32(4 * len(m.Code))
	}
	for _, m := range f.Methods {
		for _, ins := range m.Code {
			e := ins.Encode()
			out = append(out, e[:]...)
		}
	}
	return out
}

// CodeOffset returns the byte offset of method index mi's code within the
// serialized image; the interpreter uses it to fetch instruction words at
// their true addresses.
func (f *File) CodeOffset(mi int) uint64 {
	off := uint64(headerBytes + perMethodHeader*len(f.Methods))
	for i := 0; i < mi; i++ {
		off += uint64(4 * len(f.Methods[i].Code))
	}
	return off
}

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}
