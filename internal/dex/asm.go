package dex

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble parses assembly text into a File. The syntax is line-oriented:
//
//	.method name nIn        ; begin method taking nIn args in v0..v(nIn-1)
//	label:                  ; branch target
//	const v0, 42
//	add v2, v0, v1
//	addi v1, v1, -1
//	if_lt v1, v0, label
//	goto label
//	new_array v3, v1
//	aget v4, v3, v1
//	aput v4, v3, v1
//	new_obj v5, 4           ; 4 fields
//	iget v6, v5, 2
//	iput v6, v5, 2
//	invoke callee, v0, v1   ; static call; listed regs become callee v0..
//	move_result v7
//	return v7
//	return_void
//	.end
//
// Comments start with ';' or '#'. Branches name labels; the assembler
// resolves them to relative instruction offsets.
func Assemble(fileName, src string) (*File, error) {
	f := NewFile(fileName)
	var cur *Method
	labels := map[string]int{}
	type fixup struct {
		instr int
		label string
		line  int
	}
	var fixups []fixup
	type callFixup struct {
		method *Method
		instr  int
		callee string
		line   int
	}
	var callFixups []callFixup

	finish := func() error {
		for _, fx := range fixups {
			target, ok := labels[fx.label]
			if !ok {
				return fmt.Errorf("line %d: undefined label %q", fx.line, fx.label)
			}
			rel := target - (fx.instr + 1)
			ins := cur.Code[fx.instr]
			if ins.Op == OpGoto {
				if rel < -32768 || rel > 32767 {
					return fmt.Errorf("line %d: branch to %q out of range", fx.line, fx.label)
				}
				cur.Code[fx.instr] = ins.WithImm(int16(rel))
			} else {
				// Conditional branches keep vA/vB and carry an
				// 8-bit offset in C.
				if rel < -128 || rel > 127 {
					return fmt.Errorf("line %d: conditional branch to %q out of range", fx.line, fx.label)
				}
				cur.Code[fx.instr] = ins.WithBranchOff(int8(rel))
			}
		}
		fixups = fixups[:0]
		labels = map[string]int{}
		return nil
	}

	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexAny(line, ";#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		ln := lineNo + 1

		switch {
		case strings.HasPrefix(line, ".method"):
			if cur != nil {
				return nil, fmt.Errorf("line %d: nested .method", ln)
			}
			parts := strings.Fields(line)
			if len(parts) != 3 {
				return nil, fmt.Errorf("line %d: want '.method name nIn'", ln)
			}
			in, err := strconv.Atoi(parts[2])
			if err != nil || in < 0 || in > NumRegs {
				return nil, fmt.Errorf("line %d: bad arg count %q", ln, parts[2])
			}
			cur = &Method{Name: parts[1], In: in}
			continue
		case line == ".end":
			if cur == nil {
				return nil, fmt.Errorf("line %d: .end outside method", ln)
			}
			if err := finish(); err != nil {
				return nil, err
			}
			if err := f.Add(cur); err != nil {
				return nil, fmt.Errorf("line %d: %v", ln, err)
			}
			cur = nil
			continue
		case strings.HasSuffix(line, ":"):
			if cur == nil {
				return nil, fmt.Errorf("line %d: label outside method", ln)
			}
			labels[strings.TrimSuffix(line, ":")] = len(cur.Code)
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("line %d: instruction outside method", ln)
		}

		mn, rest, _ := strings.Cut(line, " ")
		ops := splitOperands(rest)
		ins, fix, cfix, err := parseInstr(mn, ops, ln)
		if err != nil {
			return nil, err
		}
		if fix != "" {
			fixups = append(fixups, fixup{instr: len(cur.Code), label: fix, line: ln})
		}
		if cfix != "" {
			callFixups = append(callFixups, callFixup{method: cur, instr: len(cur.Code), callee: cfix, line: ln})
		}
		cur.Code = append(cur.Code, ins)
	}
	if cur != nil {
		return nil, fmt.Errorf("dex: missing .end for method %q", cur.Name)
	}
	for _, cf := range callFixups {
		idx := f.MethodIndex(cf.callee)
		if idx < 0 {
			return nil, fmt.Errorf("line %d: call to undefined method %q", cf.line, cf.callee)
		}
		if idx > 255 {
			return nil, fmt.Errorf("line %d: method index %d exceeds invoke encoding", cf.line, idx)
		}
		// Invoke encoding: A = arg count, B = callee method index,
		// C = first argument register.
		cf.method.Code[cf.instr].B = uint8(idx)
	}
	return f, nil
}

func splitOperands(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseInstr(mnemonic string, ops []string, ln int) (ins Instr, labelFix, callFix string, err error) {
	fail := func(format string, args ...any) (Instr, string, string, error) {
		return Instr{}, "", "", fmt.Errorf("line %d: "+format, append([]any{ln}, args...)...)
	}
	reg := func(s string) (uint8, bool) {
		if !strings.HasPrefix(s, "v") {
			return 0, false
		}
		n, err := strconv.Atoi(s[1:])
		if err != nil || n < 0 || n >= NumRegs {
			return 0, false
		}
		return uint8(n), true
	}
	imm := func(s string) (int64, bool) {
		s = strings.TrimPrefix(s, "#")
		n, err := strconv.ParseInt(s, 0, 64)
		return n, err == nil
	}

	threeReg := map[string]Op{
		"add": OpAdd, "sub": OpSub, "mul": OpMul, "div": OpDiv,
		"rem": OpRem, "and": OpAnd, "or": OpOr, "xor": OpXor,
		"shl": OpShl, "shr": OpShr, "aget": OpAGet, "aput": OpAPut,
	}
	branch := map[string]Op{
		"if_eq": OpIfEq, "if_ne": OpIfNe, "if_lt": OpIfLt, "if_ge": OpIfGe,
	}

	switch {
	case mnemonic == "nop":
		return Instr{Op: OpNop}, "", "", nil
	case mnemonic == "const":
		if len(ops) != 2 {
			return fail("const wants 2 operands")
		}
		a, ok := reg(ops[0])
		if !ok {
			return fail("bad register %q", ops[0])
		}
		v, ok := imm(ops[1])
		if !ok || v < -32768 || v > 32767 {
			return fail("bad 16-bit immediate %q", ops[1])
		}
		return Instr{Op: OpConst, A: a}.WithImm(int16(v)), "", "", nil
	case mnemonic == "move" || mnemonic == "array_len":
		op := OpMove
		if mnemonic == "array_len" {
			op = OpArrayLen
		}
		if len(ops) != 2 {
			return fail("%s wants 2 operands", mnemonic)
		}
		a, ok1 := reg(ops[0])
		b, ok2 := reg(ops[1])
		if !ok1 || !ok2 {
			return fail("bad registers in %q", mnemonic)
		}
		return Instr{Op: op, A: a, B: b}, "", "", nil
	case threeReg[mnemonic] != 0:
		if len(ops) != 3 {
			return fail("%s wants 3 operands", mnemonic)
		}
		a, ok1 := reg(ops[0])
		b, ok2 := reg(ops[1])
		c, ok3 := reg(ops[2])
		if !ok1 || !ok2 || !ok3 {
			return fail("bad registers in %s", mnemonic)
		}
		return Instr{Op: threeReg[mnemonic], A: a, B: b, C: c}, "", "", nil
	case mnemonic == "addi":
		if len(ops) != 3 {
			return fail("addi wants 3 operands")
		}
		a, ok1 := reg(ops[0])
		b, ok2 := reg(ops[1])
		v, ok3 := imm(ops[2])
		if !ok1 || !ok2 || !ok3 || v < -128 || v > 127 {
			return fail("bad addi operands")
		}
		return Instr{Op: OpAddI, A: a, B: b, C: uint8(int8(v))}, "", "", nil
	case branch[mnemonic] != 0:
		if len(ops) != 3 {
			return fail("%s wants vA, vB, label", mnemonic)
		}
		a, ok1 := reg(ops[0])
		b, ok2 := reg(ops[1])
		if !ok1 || !ok2 {
			return fail("bad registers in %s", mnemonic)
		}
		return Instr{Op: branch[mnemonic], A: a, B: b}, ops[2], "", nil
	case mnemonic == "goto":
		if len(ops) != 1 {
			return fail("goto wants a label")
		}
		return Instr{Op: OpGoto}, ops[0], "", nil
	case mnemonic == "new_array":
		if len(ops) != 2 {
			return fail("new_array wants vA, vLen")
		}
		a, ok1 := reg(ops[0])
		b, ok2 := reg(ops[1])
		if !ok1 || !ok2 {
			return fail("bad new_array operands")
		}
		return Instr{Op: OpNewArray, A: a, B: b}, "", "", nil
	case mnemonic == "new_obj":
		if len(ops) != 2 {
			return fail("new_obj wants vA, nFields")
		}
		a, ok1 := reg(ops[0])
		v, ok2 := imm(ops[1])
		if !ok1 || !ok2 || v < 0 || v > 255 {
			return fail("bad new_obj operands")
		}
		return Instr{Op: OpNewObj, A: a, B: uint8(v)}, "", "", nil
	case mnemonic == "iget" || mnemonic == "iput":
		op := OpIGet
		if mnemonic == "iput" {
			op = OpIPut
		}
		if len(ops) != 3 {
			return fail("%s wants vA, vObj, field#", mnemonic)
		}
		a, ok1 := reg(ops[0])
		b, ok2 := reg(ops[1])
		v, ok3 := imm(ops[2])
		if !ok1 || !ok2 || !ok3 || v < 0 || v > 255 {
			return fail("bad %s operands", mnemonic)
		}
		return Instr{Op: op, A: a, B: b, C: uint8(v)}, "", "", nil
	case mnemonic == "invoke":
		if len(ops) < 1 {
			return fail("invoke wants a callee")
		}
		nArgs := len(ops) - 1
		if nArgs > 0 {
			first, ok := reg(ops[1])
			if !ok {
				return fail("bad invoke arg %q", ops[1])
			}
			for i, r := range ops[1:] {
				got, ok := reg(r)
				if !ok || got != first+uint8(i) {
					return fail("invoke args must be consecutive registers")
				}
			}
			return Instr{Op: OpInvoke, A: uint8(nArgs), C: first}, "", ops[0], nil
		}
		return Instr{Op: OpInvoke, A: 0}, "", ops[0], nil
	case mnemonic == "move_result":
		if len(ops) != 1 {
			return fail("move_result wants vA")
		}
		a, ok := reg(ops[0])
		if !ok {
			return fail("bad register %q", ops[0])
		}
		return Instr{Op: OpMoveRes, A: a}, "", "", nil
	case mnemonic == "return":
		if len(ops) != 1 {
			return fail("return wants vA")
		}
		a, ok := reg(ops[0])
		if !ok {
			return fail("bad register %q", ops[0])
		}
		return Instr{Op: OpReturn, A: a}, "", "", nil
	case mnemonic == "return_void":
		return Instr{Op: OpRetVoid}, "", "", nil
	}
	return fail("unknown mnemonic %q", mnemonic)
}
