// Package docref exercises the docref analyzer. A comment naming a markdown
// file that exists neither at the module root nor beside this file is a
// diagnostic reported at the comment itself, so the want expectations here
// ride inside the offending comments. The patterns stop before the ".md"
// suffix on purpose: writing the full name in a pattern would itself be a
// markdown reference for the analyzer to chase.
package docref

// resolvesBeside follows the plan in NOTES.md, which lives next to this file.
func resolvesBeside() {}

// dangling cites docs/NEVER_WRITTEN.md, renamed away long ago. want `comment references "docs/NEVER_WRITTEN`
func dangling() {}

// urlExempt links https://example.com/REMOTE.md, which is not ours to check.
func urlExempt() {}

// A directive suppresses a dangling reference only when it sits directly
// above the citing line, because that line is where the diagnostic lands.
// The citing group below stays detached from the declaration: inside a doc
// comment the formatter would float the directive to the group's end.

//agave:allow docref fixture: document intentionally ships in a later PR
// This note cites PLANNED.md, shipping in a later PR.

func forthcoming() {}
