// Command mainexempt shows the walltime exemption: main packages are the
// display paths, where host time is legitimate — no diagnostics here.
package main

import (
	"fmt"
	"os"
	"time"
)

func main() {
	start := time.Now()
	fmt.Println(os.Getenv("HOME"), time.Since(start))
}
