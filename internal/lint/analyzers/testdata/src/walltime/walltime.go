// Package walltime exercises the walltime analyzer: wall-clock and
// host-environment reads in a library package are diagnostics; directive-
// annotated sites and pure time constructors are not.
package walltime

import (
	"os"
	"time"
)

func clocks() time.Duration {
	start := time.Now()          // want `time.Now reads the wall clock`
	time.Sleep(time.Millisecond) // want `time.Sleep blocks on the wall clock`
	return time.Since(start)     // want `time.Since reads the wall clock`
}

func env() string {
	return os.Getenv("AGAVE_SEED") // want `os.Getenv reads the host environment`
}

// valueUse shows that referencing the function without calling it is still a
// use of the wall clock.
func valueUse() func() time.Time {
	return time.Now // want `time.Now reads the wall clock`
}

// pure constructors of fixed values are deterministic and stay legal.
func pure() time.Time {
	return time.Unix(0, 0).Add(3 * time.Second)
}

// allowedInline carries a directive at the site, so the read is suppressed.
func allowedInline() time.Time {
	return time.Now() //agave:allow walltime fixture: display-only timing
}

// allowedAbove carries a standalone directive on the preceding line.
func allowedAbove() string {
	//agave:allow walltime fixture: host config read outside the replay path
	return os.Getenv("HOME")
}

// unrelatedDirective sits two lines above the violation: too far, so the
// diagnostic still fires — the directive's scope is one line.
func unrelatedDirective() time.Time {
	//agave:allow walltime fixture: this directive is out of range

	return time.Now() // want `time.Now reads the wall clock`
}
