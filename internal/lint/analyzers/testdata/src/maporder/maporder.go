// Package maporder exercises the maporder analyzer: map-iteration bodies
// with order-dependent effects are diagnostics unless a dominating sort
// canonicalizes the collected keys.
package maporder

import (
	"sort"

	"maporder/report"
)

// badAppend collects map keys with no sort anywhere after the loop.
func badAppend(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `append to out inside iteration over map m accumulates in map order`
	}
	return out
}

// goodCollectThenSort is the blessed idiom: the append is unordered, the
// sort right after the loop makes the result canonical.
func goodCollectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// goodSortSlice canonicalizes with sort.Slice instead; mentioning the slice
// anywhere in the sort call is enough.
func goodSortSlice(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// goodLocalScratch appends to a slice born inside the loop body: nothing
// order-dependent escapes an iteration.
func goodLocalScratch(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var scratch []int
		scratch = append(scratch, vs...)
		total += len(scratch)
	}
	return total
}

// badSend delivers map keys on a channel in iteration order.
func badSend(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want `send on ch inside iteration over map m delivers in map order`
	}
}

// badFloat accumulates floats across map order: same set, different
// rounding, different bytes.
func badFloat(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `float accumulation into sum inside iteration over map m rounds in map order`
	}
	return sum
}

// goodInt accumulation is associative and commutative; order cannot show.
func goodInt(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

// badReportCall emits rows in map order.
func badReportCall(m map[string]int) {
	for k, v := range m {
		report.Emit(report.Row{Name: k, Count: v}) // want `call to report.Emit inside iteration over map m happens in map order`
	}
}

// badFieldWrite lands writes on a report row in map order (last writer wins
// nondeterministically).
func badFieldWrite(m map[string]int, row *report.Row) {
	for k := range m {
		row.Name = k // want `write to Row field Name inside iteration over map m lands in map order`
	}
}

// goodMapBuild writes another map: keyed, order-free.
func goodMapBuild(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] += v
	}
	return out
}

// allowedAppend documents why this particular order leak is acceptable.
func allowedAppend(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) //agave:allow maporder fixture: consumer sorts before use
	}
	return out
}
