// Package report is a stand-in for an order-sensitive reporting package:
// maporder flags calls into it, and writes to its row types, from inside map
// iteration.
package report

// A Row is one emitted record; emission order is output order.
type Row struct {
	Name  string
	Count int
}

// Emit appends the row to the report in call order.
func Emit(r Row) {}
