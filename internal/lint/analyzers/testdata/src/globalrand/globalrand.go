// Package globalrand exercises the globalrand analyzer: draws from the
// process-global math/rand source are diagnostics; seeded streams built via
// the constructors, and draws from them, are the blessed idiom.
package globalrand

import "math/rand"

func global() int {
	n := rand.Intn(10)                 // want `rand.Intn draws from the process-global source`
	rand.Shuffle(n, func(i, j int) {}) // want `rand.Shuffle draws from the process-global source`
	return n
}

func globalFloat() float64 {
	return rand.Float64() // want `rand.Float64 draws from the process-global source`
}

// seeded is the idiom internal/scenario/gen.go uses: a stream the caller
// seeds, so every replay draws the same numbers.
func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10) // a method on *rand.Rand, not the global source
}

func allowed() int {
	return rand.Int() //agave:allow globalrand fixture: one-off tool, not replayed
}
