// Package mutexorder exercises the mutexorder analyzer: two code paths that
// acquire the same pair of lock classes in opposite orders form a cycle in
// the whole-program acquisition graph, and every edge of the cycle is
// reported.
package mutexorder

import "sync"

var muA, muB sync.Mutex

func aThenB() {
	muA.Lock()
	muB.Lock() // want `acquiring mutexorder.muB while holding mutexorder.muA creates a lock-order cycle`
	muB.Unlock()
	muA.Unlock()
}

func bThenA() {
	muB.Lock()
	muA.Lock() // want `acquiring mutexorder.muA while holding mutexorder.muB creates a lock-order cycle`
	muA.Unlock()
	muB.Unlock()
}

// Struct-held locks are classed by declaring type and field, so instances
// share ordering constraints.
type Table struct{ mu sync.Mutex }

type Journal struct{ mu sync.RWMutex }

func tableThenJournal(t *Table, j *Journal) {
	t.mu.Lock()
	defer t.mu.Unlock()
	j.mu.RLock() // want `acquiring mutexorder.Journal.mu while holding mutexorder.Table.mu creates a lock-order cycle`
	j.mu.RUnlock()
}

func journalThenTable(t *Table, j *Journal) {
	j.mu.Lock()
	t.mu.Lock() // want `acquiring mutexorder.Table.mu while holding mutexorder.Journal.mu creates a lock-order cycle`
	t.mu.Unlock()
	j.mu.Unlock()
}

// Consistent ordering is silent: both functions take muC before muD.
var muC, muD sync.Mutex

func cThenD() {
	muC.Lock()
	muD.Lock()
	muD.Unlock()
	muC.Unlock()
}

func cThenDAgain() {
	muC.Lock()
	defer muC.Unlock()
	muD.Lock()
	defer muD.Unlock()
}

// Releasing before the next acquisition contributes no edge at all.
func sequential() {
	muD.Lock()
	muD.Unlock()
	muC.Lock()
	muC.Unlock()
}

// A documented, deliberate inversion is suppressible at both edge sites.
var muE, muF sync.Mutex

func eThenF() {
	muE.Lock()
	muF.Lock() //agave:allow mutexorder fixture: shutdown path, muE side is startup-only
	muF.Unlock()
	muE.Unlock()
}

func fThenE() {
	muF.Lock()
	muE.Lock() //agave:allow mutexorder fixture: startup path, runs before any shutdown
	muE.Unlock()
	muF.Unlock()
}
