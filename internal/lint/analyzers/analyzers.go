// Package analyzers holds the agavelint analyzer registry: the static
// encodings of this repository's determinism and attribution invariants.
// Every analyzer here has a heading in docs/LINT.md (cmd/docscheck enforces
// that), analysistest fixtures under testdata/src, and honors the
// //agave:allow directive applied by the internal/lint driver.
package analyzers

import "agave/internal/lint/analysis"

// All returns the full registry in the order analyzers run and document.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{Walltime, Globalrand, Maporder, Mutexorder, Docref}
}

// Names returns the registered analyzer names, in registry order. This is
// the set //agave:allow directives may cite and the set of headings
// docs/LINT.md must carry.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, a := range all {
		names[i] = a.Name
	}
	return names
}
