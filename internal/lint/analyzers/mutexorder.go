package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"agave/internal/lint/analysis"
)

// Mutexorder enforces a whole-program partial order on mutex acquisition.
// Each function body contributes "A held while acquiring B" edges, keyed by
// lock class — the declaring type and field for struct locks
// (kernel.Kernel.mu), the package-level variable for bare ones — and the
// Finish pass condenses the merged graph: any strongly connected component
// with more than one class is a potential deadlock, reported at every edge
// inside it. The simulated stack is cooperatively scheduled and lock-free
// today; this analyzer is the contract that keeps the fleet-executor and
// worker-pool code that does lock (internal/suite, and whatever the
// million-device sharding grows into) cycle-free as it lands.
//
// Limits, stated so nobody leans on them: acquisition is tracked linearly
// through each body (branches are walked in source order), deferred unlocks
// hold to function end, and two instances of one class are one node — an
// instance-level ordering protocol within a class (locking processes in pid
// order) needs an //agave:allow with its protocol named in the reason.
var Mutexorder = &analysis.Analyzer{
	Name:   "mutexorder",
	Doc:    "build the cross-package mutex acquisition graph and reject lock-order cycles",
	Run:    runMutexorder,
	Finish: finishMutexorder,
}

// A lockEdge records one "From held while acquiring To" observation.
type lockEdge struct {
	From, To string
	Pos      token.Pos
}

func runMutexorder(pass *analysis.Pass) (any, error) {
	var edges []lockEdge
	var bodies []*ast.BlockStmt
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				bodies = append(bodies, fd.Body)
			}
		}
	}
	for len(bodies) > 0 {
		body := bodies[0]
		bodies = bodies[1:]
		var held []string
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				bodies = append(bodies, n.Body) // separate acquisition context
				return false
			case *ast.DeferStmt:
				return false // a deferred unlock releases at return, not here
			case *ast.CallExpr:
				op, name := mutexCall(pass, n)
				switch op {
				case lockOp:
					for _, h := range held {
						if h != name {
							edges = append(edges, lockEdge{From: h, To: name, Pos: n.Pos()})
						}
					}
					held = append(held, name)
				case unlockOp:
					for i := len(held) - 1; i >= 0; i-- {
						if held[i] == name {
							held = append(held[:i], held[i+1:]...)
							break
						}
					}
				}
			}
			return true
		})
	}
	return edges, nil
}

type mutexOp int

const (
	notMutex mutexOp = iota
	lockOp
	unlockOp
)

// mutexCall classifies a call as a lock/unlock on a nameable mutex class.
func mutexCall(pass *analysis.Pass, call *ast.CallExpr) (mutexOp, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return notMutex, ""
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return notMutex, ""
	}
	var op mutexOp
	switch fn.Name() {
	case "Lock", "RLock":
		op = lockOp
	case "Unlock", "RUnlock":
		op = unlockOp
	default:
		return notMutex, ""
	}
	name := lockClass(pass, sel.X)
	if name == "" {
		return notMutex, ""
	}
	return op, name
}

// lockClass names the mutex a receiver expression denotes. Struct-held locks
// are classed by declaring type and field ("kernel.Kernel.mu"); package-level
// variables by package and name; locals of a named type by that type (an
// embedded mutex promoted through a local). Unnameable receivers return "".
func lockClass(pass *analysis.Pass, e ast.Expr) string {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return lockClass(pass, e.X)
	case *ast.Ident:
		obj := pass.TypesInfo.ObjectOf(e)
		v, ok := obj.(*types.Var)
		if !ok {
			return ""
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return lastSegment(v.Pkg().Path()) + "." + v.Name()
		}
		return namedClass(v.Type())
	case *ast.SelectorExpr:
		if named := namedTypeOf(exprType(pass, e.X)); named != nil && named.Obj().Pkg() != nil {
			return lastSegment(named.Obj().Pkg().Path()) + "." + named.Obj().Name() + "." + e.Sel.Name
		}
	}
	return ""
}

// namedClass names a local's type when that type is a lock-carrying struct
// from this codebase; bare sync.Mutex locals have no cross-function identity.
func namedClass(t types.Type) string {
	named := namedTypeOf(t)
	if named == nil || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() == "sync" {
		return ""
	}
	return lastSegment(named.Obj().Pkg().Path()) + "." + named.Obj().Name()
}

func exprType(pass *analysis.Pass, e ast.Expr) types.Type {
	if tv, ok := pass.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// finishMutexorder merges every package's edges and reports each edge that
// sits inside a multi-node strongly connected component of the acquisition
// graph.
func finishMutexorder(sum *analysis.Summary) error {
	type key struct{ from, to string }
	first := make(map[key]token.Pos)
	var keys []key
	for _, res := range sum.Results {
		edges, _ := res.Value.([]lockEdge)
		for _, e := range edges {
			k := key{e.From, e.To}
			if prev, ok := first[k]; !ok || positionLess(sum.Fset, e.Pos, prev) {
				if !ok {
					keys = append(keys, k)
				}
				first[k] = e.Pos
			}
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].from != keys[j].from {
			return keys[i].from < keys[j].from
		}
		return keys[i].to < keys[j].to
	})

	adj := make(map[string][]string)
	for _, k := range keys {
		adj[k.from] = append(adj[k.from], k.to)
	}
	comp := stronglyConnected(adj)
	for _, k := range keys {
		// Same component iff the sorted member lists share a representative:
		// SCCs partition the nodes, so first elements collide only within one.
		cf, ct := comp[k.from], comp[k.to]
		if len(cf) < 2 || len(ct) == 0 || cf[0] != ct[0] {
			continue
		}
		cycle := append(append([]string{}, cf...), cf[0])
		sum.Reportf(first[k],
			"acquiring %s while holding %s creates a lock-order cycle (%s)",
			k.to, k.from, joinArrows(cycle))
	}
	return nil
}

func positionLess(fset *token.FileSet, a, b token.Pos) bool {
	pa, pb := fset.Position(a), fset.Position(b)
	if pa.Filename != pb.Filename {
		return pa.Filename < pb.Filename
	}
	if pa.Line != pb.Line {
		return pa.Line < pb.Line
	}
	return pa.Column < pb.Column
}

// stronglyConnected returns, for every node, the sorted member list of its
// strongly connected component (Tarjan, iterative over sorted nodes so the
// result is deterministic).
func stronglyConnected(adj map[string][]string) map[string][]string {
	nodes := make([]string, 0, len(adj))
	seen := make(map[string]bool)
	add := func(n string) {
		if !seen[n] {
			seen[n] = true
			nodes = append(nodes, n)
		}
	}
	for from, tos := range adj {
		add(from)
		for _, to := range tos {
			add(to)
		}
	}
	sort.Strings(nodes)

	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	comp := make(map[string][]string)
	next := 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, ok := index[w]; !ok {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var members []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				members = append(members, w)
				if w == v {
					break
				}
			}
			sort.Strings(members)
			for _, m := range members {
				comp[m] = members
			}
		}
	}
	for _, n := range nodes {
		if _, ok := index[n]; !ok {
			strongconnect(n)
		}
	}
	return comp
}

func joinArrows(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += " -> "
		}
		out += n
	}
	return out
}
