package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"agave/internal/lint/analysis"
)

// Maporder flags `for … range` over a map whose body has an effect that
// observes iteration order: appending to a slice declared outside the loop
// (unless the slice is sorted afterwards), sending on a channel,
// accumulating into a float or string (non-associative across orders),
// writing a field of a report/Result value, or calling into a report or
// scenario package. Go randomizes map iteration per run, so any of these
// turns a byte-identical replay into a coin flip — the bug class PR 5 fixed
// by hand in internal/android/input.go, now rejected at lint time. The
// blessed shape stays legal: collect the keys, sort them, then range the
// sorted slice.
var Maporder = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flag map iteration whose body appends/sends/accumulates/reports in iteration order " +
		"without a dominating sort of the keys",
	Run: runMaporder,
}

func runMaporder(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			stmts := statementList(n)
			for i, stmt := range stmts {
				rng, ok := unlabel(stmt).(*ast.RangeStmt)
				if !ok || !isMapRange(pass, rng) {
					continue
				}
				checkMapRange(pass, rng, stmts[i+1:])
			}
			return true
		})
	}
	return nil, nil
}

// statementList extracts the statement list a node owns, so a range loop can
// be inspected alongside the statements that follow it (where a dominating
// sort would live).
func statementList(n ast.Node) []ast.Stmt {
	switch n := n.(type) {
	case *ast.BlockStmt:
		return n.List
	case *ast.CaseClause:
		return n.Body
	case *ast.CommClause:
		return n.Body
	}
	return nil
}

func unlabel(s ast.Stmt) ast.Stmt {
	for {
		l, ok := s.(*ast.LabeledStmt)
		if !ok {
			return s
		}
		s = l.Stmt
	}
}

func isMapRange(pass *analysis.Pass, rng *ast.RangeStmt) bool {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// checkMapRange reports every order-dependent effect in rng's body. rest is
// the statement tail following the loop in its enclosing list; an append
// whose target is sorted there is the blessed collect-then-sort idiom and
// stays silent.
func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt, rest []ast.Stmt) {
	mapName := types.ExprString(rng.X)
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if n != rng && isMapRange(pass, n) {
				return false // the inner map range reports its own effects
			}
		case *ast.SendStmt:
			pass.Reportf(n.Arrow,
				"send on %s inside iteration over map %s delivers in map order; sort the keys first",
				types.ExprString(n.Chan), mapName)
		case *ast.AssignStmt:
			checkMapRangeAssign(pass, rng, n, rest, mapName)
		case *ast.CallExpr:
			if pkg, fn := calleePackage(pass, n); pkg != nil && pkg != pass.Pkg && isOrderSensitivePkg(pkg) {
				pass.Reportf(n.Pos(),
					"call to %s.%s inside iteration over map %s happens in map order; sort the keys first",
					pkg.Name(), fn, mapName)
			}
		}
		return true
	})
}

func checkMapRangeAssign(pass *analysis.Pass, rng *ast.RangeStmt, as *ast.AssignStmt, rest []ast.Stmt, mapName string) {
	// x = append(x, ...) into a slice that outlives the loop.
	for i, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || !isBuiltinAppend(pass, call) || i >= len(as.Lhs) {
			continue
		}
		obj := targetObject(pass, as.Lhs[i])
		if obj == nil || !declaredBefore(obj, rng) {
			continue
		}
		if sortedAfter(pass, obj, rest) {
			continue // collect-then-sort idiom
		}
		pass.Reportf(call.Pos(),
			"append to %s inside iteration over map %s accumulates in map order; sort %s afterwards or range sorted keys",
			types.ExprString(as.Lhs[i]), mapName, obj.Name())
	}
	// Non-associative accumulation: float or string += across map order.
	if as.Tok == token.ADD_ASSIGN && len(as.Lhs) == 1 {
		if _, isIndex := as.Lhs[0].(*ast.IndexExpr); !isIndex {
			obj := targetObject(pass, as.Lhs[0])
			if obj != nil && declaredBefore(obj, rng) {
				if basic, ok := obj.Type().Underlying().(*types.Basic); ok {
					switch {
					case basic.Info()&types.IsFloat != 0 || basic.Info()&types.IsComplex != 0:
						pass.Reportf(as.Pos(),
							"float accumulation into %s inside iteration over map %s rounds in map order; sort the keys first",
							obj.Name(), mapName)
					case basic.Info()&types.IsString != 0:
						pass.Reportf(as.Pos(),
							"string concatenation into %s inside iteration over map %s builds in map order; sort the keys first",
							obj.Name(), mapName)
					}
				}
			}
		}
	}
	// Writing a report/Result field in map order.
	if as.Tok != token.DEFINE {
		for _, lhs := range as.Lhs {
			sel, ok := lhs.(*ast.SelectorExpr)
			if !ok {
				continue
			}
			obj := targetObject(pass, sel.X)
			if obj == nil || !declaredBefore(obj, rng) {
				continue
			}
			if named := namedTypeOf(pass.TypesInfo.Types[sel.X].Type); named != nil && isReportType(pass, named) {
				pass.Reportf(lhs.Pos(),
					"write to %s field %s inside iteration over map %s lands in map order; sort the keys first",
					named.Obj().Name(), sel.Sel.Name, mapName)
			}
		}
	}
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// targetObject resolves the root object an lvalue chain (x, x.f, x[i].f, *x)
// hangs off.
func targetObject(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return pass.TypesInfo.ObjectOf(v)
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// declaredBefore reports whether obj was declared before the range statement
// — the effect escapes the loop body. Objects with no position (package
// names, fields reached through pointers from parameters) count as outer.
func declaredBefore(obj types.Object, rng *ast.RangeStmt) bool {
	return !obj.Pos().IsValid() || obj.Pos() < rng.Pos()
}

// sortedAfter reports whether any statement after the loop calls into sort
// or slices mentioning obj — the dominating sort that makes the collected
// order canonical.
func sortedAfter(pass *analysis.Pass, obj types.Object, rest []ast.Stmt) bool {
	for _, stmt := range rest {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			base, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.TypesInfo.Uses[base].(*types.PkgName)
			if !ok {
				return true
			}
			switch pkgName.Imported().Path() {
			case "sort", "slices":
			default:
				return true
			}
			for _, arg := range call.Args {
				ast.Inspect(arg, func(an ast.Node) bool {
					if id, ok := an.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
						found = true
					}
					return !found
				})
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// calleePackage resolves the package a call lands in, for the rule that map
// iteration must not call into report/scenario code (whose row and timeline
// appends observe caller order).
func calleePackage(pass *analysis.Pass, call *ast.CallExpr) (*types.Package, string) {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil, ""
	}
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	if !ok {
		return nil, ""
	}
	return fn.Pkg(), fn.Name()
}

// isOrderSensitivePkg marks packages whose entry points record caller order:
// the report writers and the scenario engine.
func isOrderSensitivePkg(pkg *types.Package) bool {
	path := pkg.Path()
	for _, suffix := range []string{"report", "scenario"} {
		if path == suffix || lastSegment(path) == suffix {
			return true
		}
	}
	return false
}

// isReportType marks named types whose fields are result/report payload:
// anything declared in a report package, plus the engines' Result types.
func isReportType(pass *analysis.Pass, named *types.Named) bool {
	if named.Obj().Name() == "Result" {
		return true
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && pkg != pass.Pkg && isOrderSensitivePkg(pkg)
}

func namedTypeOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

func lastSegment(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}
