package analyzers

import (
	"go/ast"
	"go/types"

	"agave/internal/lint/analysis"
)

// Globalrand rejects the process-global math/rand source everywhere. The
// global source is shared mutable state: two goroutines draw from it in
// scheduler order, so a parallel suite run and a serial one see different
// streams and the replay guarantee dies. All randomness must flow from a
// seeded *rand.Rand handed down by the caller, the way
// internal/scenario/gen.go threads its generator. Constructors (rand.New,
// rand.NewSource, ...) are exactly how such a seeded stream is built, so
// they stay legal.
var Globalrand = &analysis.Analyzer{
	Name: "globalrand",
	Doc: "forbid the package-level math/rand source (rand.Intn, rand.Shuffle, ...); " +
		"all randomness must flow from a seeded *rand.Rand parameter",
	Run: runGlobalrand,
}

// globalrandAllowed are the math/rand top-level functions that construct
// seeded streams rather than draw from the hidden global one.
var globalrandAllowed = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

func runGlobalrand(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Signature().Recv() != nil {
				return true
			}
			path := fn.Pkg().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			if globalrandAllowed[fn.Name()] {
				return true
			}
			pass.Reportf(sel.Pos(),
				"rand.%s draws from the process-global source, whose stream depends on goroutine scheduling; "+
					"draw from a seeded *rand.Rand passed by the caller instead",
				fn.Name())
			return true
		})
	}
	return nil, nil
}
