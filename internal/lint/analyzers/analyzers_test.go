package analyzers_test

import (
	"strings"
	"testing"

	"agave/internal/lint/analysistest"
	"agave/internal/lint/analyzers"
)

// Each analyzer runs over its fixture tree under testdata/src; the fixtures
// pair at least one caught violation with at least one allow-suppressed
// site, and the harness is strict in both directions.

func TestWalltime(t *testing.T) {
	analysistest.Run(t, "testdata/src", analyzers.Walltime, nil, "walltime", "walltime/mainexempt")
}

func TestGlobalrand(t *testing.T) {
	analysistest.Run(t, "testdata/src", analyzers.Globalrand, nil, "globalrand")
}

func TestMaporder(t *testing.T) {
	analysistest.Run(t, "testdata/src", analyzers.Maporder, nil, "maporder/report", "maporder")
}

func TestMutexorder(t *testing.T) {
	analysistest.Run(t, "testdata/src", analyzers.Mutexorder, nil, "mutexorder")
}

func TestDocref(t *testing.T) {
	analysistest.Run(t, "testdata/src", analyzers.Docref, nil, "docref")
}

// TestRegistry pins the registry shape other gates depend on: docscheck
// holds docs/LINT.md headings to exactly these names, and //agave:allow
// validates against them.
func TestRegistry(t *testing.T) {
	names := analyzers.Names()
	want := []string{"walltime", "globalrand", "maporder", "mutexorder", "docref"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("registry = %v, want %v", names, want)
	}
	seen := make(map[string]bool)
	for i, a := range analyzers.All() {
		if a.Name != names[i] {
			t.Errorf("All()[%d].Name = %q, Names()[%d] = %q", i, a.Name, i, names[i])
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if a.Doc == "" {
			t.Errorf("analyzer %q has no Doc", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %q has no Run", a.Name)
		}
	}
}
