package analyzers

import (
	"go/ast"
	"go/types"

	"agave/internal/lint/analysis"
)

// Walltime rejects wall-clock and host-environment reads in library code.
// Every Agave result must replay byte-identically — serial ≡ parallel-N —
// which a single time.Now or os.Getenv silently breaks the moment its value
// reaches a Result. Simulated code takes time from the sim clock and
// configuration from parameters; only main packages (the cmd/ and examples/
// display paths) may touch the host, and the one legitimate library read
// (per-spec wall timing in internal/suite, never serialized) carries an
// //agave:allow directive at its site.
var Walltime = &analysis.Analyzer{
	Name: "walltime",
	Doc: "forbid wall-clock (time.Now/Since/Sleep/...) and host-environment (os.Getenv) reads " +
		"outside main packages; simulation time comes from the sim clock",
	Run: runWalltime,
}

// walltimeFuncs maps package path to the forbidden top-level functions. The
// set is the impure ones: constructors of fixed values (time.Unix,
// time.Date) and pure types (time.Duration) are deterministic and fine.
var walltimeFuncs = map[string]map[string]string{
	"time": {
		"Now":       "reads the wall clock",
		"Since":     "reads the wall clock",
		"Until":     "reads the wall clock",
		"Sleep":     "blocks on the wall clock",
		"Tick":      "ticks on the wall clock",
		"After":     "fires on the wall clock",
		"AfterFunc": "fires on the wall clock",
		"NewTicker": "ticks on the wall clock",
		"NewTimer":  "fires on the wall clock",
	},
	"os": {
		"Getenv":    "reads the host environment",
		"LookupEnv": "reads the host environment",
		"Environ":   "reads the host environment",
	},
}

func runWalltime(pass *analysis.Pass) (any, error) {
	if pass.Pkg.Name() == "main" {
		return nil, nil // cmd/ and examples/ are display paths; host time is theirs
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Signature().Recv() != nil {
				return true
			}
			if why, bad := walltimeFuncs[fn.Pkg().Path()][fn.Name()]; bad {
				pass.Reportf(sel.Pos(),
					"%s.%s %s, which breaks replay determinism; derive time from the sim clock or move this to a main package",
					fn.Pkg().Name(), fn.Name(), why)
			}
			return true
		})
	}
	return nil, nil
}
