package analyzers

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"

	"agave/internal/lint/analysis"
)

// Docref verifies that every markdown file a Go comment mentions ("see
// docs/ARCHITECTURE.md") exists, resolved against the module root (the
// nearest ancestor directory holding a go.mod) or the referencing file's own
// directory. Godoc prose is where renamed design documents dangle the
// longest. This check started life as cmd/docscheck invariant 3 and moved
// here so all comment-to-markdown enforcement lives in the shared analysis
// driver, suppressible and fixture-tested like every other invariant;
// docscheck keeps the markdown-side gates (links, headings).
var Docref = &analysis.Analyzer{
	Name: "docref",
	Doc:  "every markdown file referenced from a Go comment must exist at the module root or beside the file",
	Run:  runDocref,
}

// docrefPattern matches a bare markdown-file reference inside prose, e.g.
// "docs/ARCHITECTURE.md" or "ROADMAP.md".
var docrefPattern = regexp.MustCompile(`\b[A-Za-z0-9][A-Za-z0-9_./-]*\.md\b`)

func runDocref(pass *analysis.Pass) (any, error) {
	rootCache := make(map[string]string)
	for _, file := range pass.Files {
		path := pass.Fset.Position(file.Pos()).Filename
		dir := filepath.Dir(path)
		root := moduleRoot(rootCache, dir)
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if strings.Contains(c.Text, "://") {
					continue // a URL's path may end in .md without being ours
				}
				for _, ref := range docrefPattern.FindAllString(c.Text, -1) {
					if fileExists(filepath.Join(dir, ref)) ||
						(root != "" && fileExists(filepath.Join(root, ref))) {
						continue
					}
					pass.Reportf(c.Pos(),
						"comment references %q, which exists neither at the module root nor beside the file", ref)
				}
			}
		}
	}
	return nil, nil
}

func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

// moduleRoot walks up from dir to the nearest directory holding a go.mod,
// or "" when none exists (a bare fixture tree).
func moduleRoot(cache map[string]string, dir string) string {
	if root, ok := cache[dir]; ok {
		return root
	}
	root := ""
	for d := dir; ; {
		if fileExists(filepath.Join(d, "go.mod")) {
			root = d
			break
		}
		parent := filepath.Dir(d)
		if parent == d {
			break
		}
		d = parent
	}
	cache[dir] = root
	return root
}
