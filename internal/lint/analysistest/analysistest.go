// Package analysistest runs an analyzer over fixture packages and checks its
// diagnostics against `// want` expectations embedded in the fixtures — the
// x/tools testing idiom, rebuilt on the stdlib-only loader. A fixture line
// carrying a finding says what it expects in a backquoted regexp:
//
//	t := time.Now() // want `time.Now reads the wall clock`
//
// Matching is strict both ways per file:line — an unmatched diagnostic and
// an unsatisfied expectation are both test failures — so a fixture line with
// an //agave:allow directive and no want comment asserts suppression.
package analysistest

import (
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"testing"

	"agave/internal/lint"
	"agave/internal/lint/analysis"
	"agave/internal/lint/load"
)

// wantPattern extracts the backquoted regexps of one want comment.
var wantPattern = regexp.MustCompile("`([^`]+)`")

// wantMarker locates the expectation inside a comment: the word "want"
// followed by a backquoted regexp. It may sit mid-comment so that a comment
// which is itself the diagnostic site (docref flags comment lines) can carry
// its expectation inline.
var wantMarker = regexp.MustCompile("\\bwant\\s+`")

// Run loads each fixture package under srcRoot (GOPATH-src layout:
// srcRoot/<path>/*.go), applies the analyzer through the real driver —
// //agave:allow handling included — and enforces the want expectations.
// known lists extra analyzer names directives in the fixtures may cite;
// the analyzer under test is always known.
func Run(t *testing.T, srcRoot string, a *analysis.Analyzer, known []string, pkgPaths ...string) {
	t.Helper()
	fset := token.NewFileSet()
	loader := load.New(load.Config{Fset: fset, FixtureRoot: srcRoot})
	var pkgs []*load.Package
	for _, p := range pkgPaths {
		pkg, err := loader.LoadDir(filepath.Join(srcRoot, filepath.FromSlash(p)))
		if err != nil {
			t.Fatalf("loading fixture %s: %v", p, err)
		}
		pkgs = append(pkgs, pkg)
	}

	findings, err := lint.Run(fset, pkgs, []*analysis.Analyzer{a}, append([]string{a.Name}, known...))
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	type expectation struct {
		re       *regexp.Regexp
		raw      string
		consumed bool
	}
	wants := make(map[string][]*expectation) // "file:line" -> expectations
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					loc := wantMarker.FindStringIndex(c.Text)
					if loc == nil {
						continue
					}
					pos := fset.Position(c.Pos())
					key := keyOf(pos.Filename, pos.Line)
					for _, m := range wantPattern.FindAllStringSubmatch(c.Text[loc[0]:], -1) {
						re, err := regexp.Compile(m[1])
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v", key, m[1], err)
						}
						wants[key] = append(wants[key], &expectation{re: re, raw: m[1]})
					}
				}
			}
		}
	}

	for _, f := range findings {
		key := keyOf(f.Pos.Filename, f.Pos.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.consumed && w.re.MatchString(f.Message) {
				w.consumed = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s (%s)", f.Pos.Filename, f.Pos.Line, f.Message, f.Analyzer)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.consumed {
				t.Errorf("%s: expected diagnostic matching `%s`, got none", key, w.raw)
			}
		}
	}
}

func keyOf(file string, line int) string {
	return file + ":" + strconv.Itoa(line)
}
