// Package lint is the agavelint driver: it applies a set of analyzers to a
// set of loaded packages, validates and honors //agave:allow suppression
// directives, and returns findings in a deterministic order. A linter whose
// whole purpose is replay determinism must itself be deterministic, so
// findings are sorted by position, analyzer, and message — two runs over the
// same tree produce byte-identical output. The analyzers themselves live in
// internal/lint/analyzers; docs/LINT.md is the user-facing reference.
package lint

import (
	"fmt"
	"go/token"
	"sort"

	"agave/internal/lint/analysis"
	"agave/internal/lint/load"
)

// A Finding is one diagnostic after suppression, in position space.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the finding the way vet does: file:line:col: message (name).
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Message, f.Analyzer)
}

// Run applies every analyzer to every package and returns the surviving
// findings. known is the full set of analyzer names //agave:allow may cite —
// pass it when running a subset of the registry so directives for analyzers
// not in this run still validate; nil means "exactly the analyzers given".
func Run(fset *token.FileSet, pkgs []*load.Package, analyzers []*analysis.Analyzer, known []string) ([]Finding, error) {
	if known == nil {
		for _, a := range analyzers {
			known = append(known, a.Name)
		}
	}
	knownSet := make(map[string]bool, len(known))
	for _, n := range known {
		knownSet[n] = true
	}

	type raw struct {
		pos      token.Pos
		analyzer string
		message  string
	}
	var diags []raw
	for _, a := range analyzers {
		report := func(name string) func(analysis.Diagnostic) {
			return func(d analysis.Diagnostic) {
				diags = append(diags, raw{pos: d.Pos, analyzer: name, message: d.Message})
			}
		}
		var results []analysis.PackageResult
		for _, pkg := range pkgs {
			if a.Run == nil {
				continue
			}
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     pkg.Files,
				Pkg:       pkg.Pkg,
				TypesInfo: pkg.Info,
				Report:    report(a.Name),
			}
			value, err := a.Run(pass)
			if err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
			results = append(results, analysis.PackageResult{Pkg: pkg.Pkg, Value: value})
		}
		if a.Finish != nil {
			sum := &analysis.Summary{Fset: fset, Results: results, Report: report(a.Name)}
			if err := a.Finish(sum); err != nil {
				return nil, fmt.Errorf("%s: %w", a.Name, err)
			}
		}
	}

	allows, findings, err := collectAllows(fset, pkgs, knownSet)
	if err != nil {
		return nil, err
	}
	for _, d := range diags {
		pos := fset.Position(d.pos)
		if allows[allowKey{file: pos.Filename, line: pos.Line, analyzer: d.analyzer}] {
			continue
		}
		findings = append(findings, Finding{Pos: pos, Analyzer: d.analyzer, Message: d.message})
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return findings, nil
}
