package lint

import (
	"fmt"
	"go/token"
	"os"
	"sort"
	"strings"

	"agave/internal/lint/load"
)

// allowPrefix introduces a suppression directive. The full form is
//
//	//agave:allow <analyzer> <reason>
//
// A directive written inline (after code on the same line) suppresses that
// analyzer's findings on its own line; a directive standing alone on a line
// suppresses them on the line that follows. The scope is deliberately that
// narrow: a directive three lines up never silences anything, so every
// suppressed finding is visibly annotated at its site. The reason is
// mandatory — an allow without a why is how invariants erode — and the
// analyzer name must be one the driver knows, so a typo cannot create a
// directive that silently allows nothing.
const allowPrefix = "//agave:allow"

type allowKey struct {
	file     string
	line     int
	analyzer string
}

// collectAllows scans every file's comments for //agave:allow directives,
// returning the suppression table plus a finding (analyzer "allow") for each
// malformed directive. Malformed directives are never themselves
// suppressible.
func collectAllows(fset *token.FileSet, pkgs []*load.Package, known map[string]bool) (map[allowKey]bool, []Finding, error) {
	allows := make(map[allowKey]bool)
	var findings []Finding
	lineCache := make(map[string][]string)
	knownNames := sortedNames(known)

	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, allowPrefix) {
						continue
					}
					rest := strings.TrimPrefix(c.Text, allowPrefix)
					if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
						continue // e.g. //agave:allowance — not ours
					}
					pos := fset.Position(c.Pos())
					fields := strings.Fields(rest)
					switch {
					case len(fields) == 0:
						findings = append(findings, Finding{
							Pos: pos, Analyzer: "allow",
							Message: fmt.Sprintf("malformed directive: usage %s <analyzer> <reason>", allowPrefix),
						})
						continue
					case !known[fields[0]]:
						findings = append(findings, Finding{
							Pos: pos, Analyzer: "allow",
							Message: fmt.Sprintf("unknown analyzer %q in %s directive (known: %s)",
								fields[0], allowPrefix, strings.Join(knownNames, ", ")),
						})
						continue
					case len(fields) < 2:
						findings = append(findings, Finding{
							Pos: pos, Analyzer: "allow",
							Message: fmt.Sprintf("%s %s needs a reason: say why this line may break the %s invariant",
								allowPrefix, fields[0], fields[0]),
						})
						continue
					}
					standalone, err := standsAlone(lineCache, pos)
					if err != nil {
						return nil, nil, err
					}
					line := pos.Line
					if standalone {
						line++
					}
					allows[allowKey{file: pos.Filename, line: line, analyzer: fields[0]}] = true
				}
			}
		}
	}
	return allows, findings, nil
}

// standsAlone reports whether the directive at pos is the only thing on its
// source line (ignoring leading whitespace), which shifts its scope to the
// next line.
func standsAlone(cache map[string][]string, pos token.Position) (bool, error) {
	lines, ok := cache[pos.Filename]
	if !ok {
		data, err := os.ReadFile(pos.Filename)
		if err != nil {
			return false, fmt.Errorf("lint: reading %s for directive scoping: %w", pos.Filename, err)
		}
		lines = strings.Split(string(data), "\n")
		cache[pos.Filename] = lines
	}
	if pos.Line-1 >= len(lines) {
		return false, nil
	}
	text := lines[pos.Line-1]
	col := pos.Column - 1
	if col > len(text) {
		col = len(text)
	}
	return strings.TrimSpace(text[:col]) == "", nil
}

func sortedNames(set map[string]bool) []string {
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
