// Package load parses and type-checks Go packages for agavelint using only
// the standard library. Module packages (import paths under the module path)
// are loaded from source in the module directory; analysistest fixture
// packages resolve GOPATH-style under a fixture root; everything else —
// the standard library — is type-checked from $GOROOT/src by the "source"
// compiler importer, which needs no network, no module cache, and no
// pre-built export data. That self-sufficiency is the point: the container
// that builds this repository has no golang.org/x/tools, so the loader is
// what lets the analyzer suite exist at all.
package load

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one parsed, type-checked package ready for analysis.
type Package struct {
	// Path is the import path the package was resolved under.
	Path string
	// Dir is the directory its files were read from.
	Dir   string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Config says where import paths live on disk.
type Config struct {
	// Fset receives all parsed positions; one FileSet must span every
	// package of a run so diagnostics are comparable.
	Fset *token.FileSet

	// ModulePath/ModuleDir map the module's import-path prefix to its
	// root directory (e.g. "agave" -> the repo checkout).
	ModulePath string
	ModuleDir  string

	// FixtureRoot, if set, resolves any import path whose directory
	// exists beneath it — the GOPATH-src layout analysistest trees use.
	// It is consulted before the standard library, so a fixture may shadow
	// nothing but its own tree.
	FixtureRoot string
}

// A Loader caches type-checked packages across imports.
type Loader struct {
	cfg     Config
	std     types.ImporterFrom
	pkgs    map[string]*Package // by import path
	loading map[string]bool     // cycle guard
}

// New returns a Loader for cfg. cfg.Fset must be non-nil.
func New(cfg Config) *Loader {
	return &Loader{
		cfg:     cfg,
		std:     importer.ForCompiler(cfg.Fset, "source", nil).(types.ImporterFrom),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
}

// Import implements types.Importer so a Loader can resolve the imports of
// the packages it loads.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if dir, importPath, ok := l.resolve(path); ok {
		pkg, err := l.load(dir, importPath)
		if err != nil {
			return nil, err
		}
		return pkg.Pkg, nil
	}
	return l.std.Import(path)
}

// resolve maps an import path onto a source directory, or reports that the
// path belongs to the standard library.
func (l *Loader) resolve(path string) (dir, importPath string, ok bool) {
	if l.cfg.ModulePath != "" {
		if path == l.cfg.ModulePath {
			return l.cfg.ModuleDir, path, true
		}
		if rest, found := strings.CutPrefix(path, l.cfg.ModulePath+"/"); found {
			return filepath.Join(l.cfg.ModuleDir, filepath.FromSlash(rest)), path, true
		}
	}
	if l.cfg.FixtureRoot != "" {
		dir := filepath.Join(l.cfg.FixtureRoot, filepath.FromSlash(path))
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			return dir, path, true
		}
	}
	return "", "", false
}

// LoadDir loads the package in dir. The import path is derived from the
// configured roots; a directory outside both roots is an error.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	importPath, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	return l.load(dir, importPath)
}

func (l *Loader) importPathFor(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for _, root := range []struct{ dir, prefix string }{
		{l.cfg.ModuleDir, l.cfg.ModulePath},
		{l.cfg.FixtureRoot, ""},
	} {
		if root.dir == "" {
			continue
		}
		rootAbs, err := filepath.Abs(root.dir)
		if err != nil {
			return "", err
		}
		rel, err := filepath.Rel(rootAbs, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			continue
		}
		path := filepath.ToSlash(rel)
		switch {
		case path == "." && root.prefix != "":
			return root.prefix, nil
		case root.prefix != "":
			return root.prefix + "/" + path, nil
		case path != ".":
			return path, nil
		}
	}
	return "", fmt.Errorf("load: %s is under neither the module nor the fixture root", dir)
}

// LoadModule walks the module directory and loads every package found,
// skipping testdata, hidden, and VCS directories. Packages come back sorted
// by import path so every run analyzes them in the same order.
func (l *Loader) LoadModule() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.cfg.ModuleDir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || name == ".git" || name == ".claude" ||
				(strings.HasPrefix(name, ".") && path != l.cfg.ModuleDir) {
				return filepath.SkipDir
			}
			if ok, err := hasGoSource(path); err != nil {
				return err
			} else if ok {
				dirs = append(dirs, path)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	pkgs := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func hasGoSource(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		if !e.IsDir() && isSourceFile(e.Name()) {
			return true, nil
		}
	}
	return false, nil
}

// isSourceFile reports whether name is a non-test Go source file the loader
// considers. Test files are out of scope: the invariants guard simulation
// code, and tests legitimately use wall clocks and ad-hoc ordering.
func isSourceFile(name string) bool {
	return strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") &&
		!strings.HasPrefix(name, "_")
}

// load parses and type-checks one directory, memoized by import path.
func (l *Loader) load(dir, importPath string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("load: import cycle through %q", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !isSourceFile(e.Name()) {
			continue
		}
		f, err := parser.ParseFile(l.cfg.Fset, filepath.Join(dir, e.Name()), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("load: no Go source in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var typeErrs []error
	conf := types.Config{
		Importer:    l,
		FakeImportC: true,
		Error: func(err error) {
			if len(typeErrs) < 10 {
				typeErrs = append(typeErrs, err)
			}
		},
	}
	tpkg, _ := conf.Check(importPath, l.cfg.Fset, files, info)
	if len(typeErrs) > 0 {
		msgs := make([]string, len(typeErrs))
		for i, e := range typeErrs {
			msgs[i] = e.Error()
		}
		return nil, fmt.Errorf("load: type-checking %s:\n\t%s", importPath, strings.Join(msgs, "\n\t"))
	}
	pkg := &Package{Path: importPath, Dir: dir, Files: files, Pkg: tpkg, Info: info}
	l.pkgs[importPath] = pkg
	return pkg, nil
}
