// Package analysis defines the plug-in interface agavelint analyzers are
// written against. It deliberately mirrors the shape of
// golang.org/x/tools/go/analysis — an Analyzer owns a Run function that
// receives a Pass and reports Diagnostics — so the analyzers read like any
// vet checker and could be rebased onto the upstream framework by swapping
// an import. The one extension is Finish: agavelint's determinism invariants
// are whole-program properties (a lock-order cycle can span packages), so an
// analyzer may also register a hook that runs once after every package's Run
// and sees all per-package results together.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer is one named, self-contained check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, in //agave:allow
	// directives, and as a docs/LINT.md heading. Lower-case, no spaces.
	Name string

	// Doc is the one-paragraph invariant statement shown by `agavelint -list`.
	Doc string

	// Run applies the analyzer to one type-checked package. The returned
	// value is kept and handed to Finish; analyzers without cross-package
	// state return nil.
	Run func(*Pass) (any, error)

	// Finish, if non-nil, runs once after Run has seen every package in
	// the load set. Whole-program diagnostics (lock-order cycles) are
	// reported here.
	Finish func(*Summary) error
}

// A Pass connects an Analyzer to one package: its syntax, its types, and a
// sink for diagnostics. Exactly the fields of an x/tools pass that the
// agavelint analyzers need.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic to the driver, which applies
	// //agave:allow suppression and ordering.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A PackageResult pairs one package with the value its Run returned.
type PackageResult struct {
	Pkg   *types.Package
	Value any
}

// A Summary is the whole-program view an Analyzer's Finish hook receives:
// every per-package Run result, in load order.
type Summary struct {
	Fset    *token.FileSet
	Results []PackageResult
	Report  func(Diagnostic)
}

// Reportf reports a formatted whole-program diagnostic at pos.
func (s *Summary) Reportf(pos token.Pos, format string, args ...any) {
	s.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}
