package lint_test

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"agave/internal/lint"
	"agave/internal/lint/analysis"
	"agave/internal/lint/load"
)

// runOn loads a single synthetic package and runs the given analyzers over
// it with the given known-name set.
func runOn(t *testing.T, src string, analyzers []*analysis.Analyzer, known []string) []lint.Finding {
	t.Helper()
	root := t.TempDir()
	dir := filepath.Join(root, "fix")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "fix.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	loader := load.New(load.Config{Fset: fset, FixtureRoot: root})
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	findings, err := lint.Run(fset, []*load.Package{pkg}, analyzers, known)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return findings
}

// tattle reports a diagnostic on every line containing the word MARK, so
// directive-scoping tests can place findings precisely.
var tattle = &analysis.Analyzer{
	Name: "tattle",
	Doc:  "test analyzer: flags every MARK comment",
	Run: func(pass *analysis.Pass) (any, error) {
		for _, file := range pass.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					if strings.Contains(c.Text, "MARK") {
						pass.Reportf(c.Pos(), "marked line")
					}
				}
			}
		}
		return nil, nil
	},
}

func messages(fs []lint.Finding) []string {
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = f.Analyzer + ": " + f.Message
	}
	return out
}

// TestAllowUnknownAnalyzerIsError: a directive citing a name outside the
// known set is itself a finding, and it names the known set.
func TestAllowUnknownAnalyzerIsError(t *testing.T) {
	src := `package fix

//agave:allow nosuchanalyzer because reasons
func f() {}
`
	findings := runOn(t, src, []*analysis.Analyzer{tattle}, []string{"tattle", "walltime"})
	if len(findings) != 1 {
		t.Fatalf("findings = %v, want exactly one", messages(findings))
	}
	f := findings[0]
	if f.Analyzer != "allow" || !strings.Contains(f.Message, `unknown analyzer "nosuchanalyzer"`) {
		t.Errorf("finding = %+v, want unknown-analyzer error", f)
	}
	if !strings.Contains(f.Message, "tattle, walltime") {
		t.Errorf("message should list the known analyzers sorted: %s", f.Message)
	}
}

// TestAllowMissingReasonIsError: the reason is mandatory.
func TestAllowMissingReasonIsError(t *testing.T) {
	src := `package fix

//agave:allow tattle
func f() {} // MARK
`
	findings := runOn(t, src, []*analysis.Analyzer{tattle}, nil)
	var reasonErr, marked bool
	for _, f := range findings {
		if f.Analyzer == "allow" && strings.Contains(f.Message, "needs a reason") {
			reasonErr = true
		}
		if f.Analyzer == "tattle" {
			marked = true
		}
	}
	if !reasonErr {
		t.Errorf("missing-reason directive not flagged: %v", messages(findings))
	}
	if !marked {
		t.Errorf("a reasonless directive must not suppress; findings: %v", messages(findings))
	}
}

// TestAllowBareDirectiveIsError: no analyzer name at all.
func TestAllowBareDirectiveIsError(t *testing.T) {
	src := `package fix

//agave:allow
func f() {}
`
	findings := runOn(t, src, []*analysis.Analyzer{tattle}, nil)
	if len(findings) != 1 || !strings.Contains(findings[0].Message, "malformed directive") {
		t.Errorf("findings = %v, want one malformed-directive error", messages(findings))
	}
}

// TestAllowScope: an inline directive suppresses its own line, a standalone
// one the next line, and a directive anywhere else suppresses nothing.
func TestAllowScope(t *testing.T) {
	// A line holds only one // comment, so the inline case puts the MARK
	// trigger inside the directive's reason: tattle flags that very line,
	// and the directive suppresses it there.
	src := `package fix

func inline() {} //agave:allow tattle MARK suppressed inline

//agave:allow tattle suppressed from the line above
func nextLine() {} // MARK

//agave:allow tattle too far away to matter

func unrelated() {} // MARK
`
	findings := runOn(t, src, []*analysis.Analyzer{tattle}, nil)
	if len(findings) != 1 {
		t.Fatalf("findings = %v, want exactly the out-of-range MARK", messages(findings))
	}
	if findings[0].Pos.Line != 10 {
		t.Errorf("surviving finding at line %d, want 10 (the unrelated MARK)", findings[0].Pos.Line)
	}
}

// TestAllowWrongAnalyzerDoesNotSuppress: a valid directive for analyzer X
// leaves analyzer Y's finding on the same line alone.
func TestAllowWrongAnalyzerDoesNotSuppress(t *testing.T) {
	src := `package fix

func f() {} //agave:allow other MARK names the analyzer that did not fire
`
	findings := runOn(t, src, []*analysis.Analyzer{tattle}, []string{"tattle", "other"})
	if len(findings) != 1 || findings[0].Analyzer != "tattle" {
		t.Fatalf("findings = %v, want tattle's finding to survive", messages(findings))
	}
}

// TestFindingsAreSorted: the driver's output order is positional and stable.
func TestFindingsAreSorted(t *testing.T) {
	src := `package fix

func b() {} // MARK
func a() {} // MARK
`
	findings := runOn(t, src, []*analysis.Analyzer{tattle}, nil)
	if len(findings) != 2 {
		t.Fatalf("findings = %v, want two", messages(findings))
	}
	if findings[0].Pos.Line >= findings[1].Pos.Line {
		t.Errorf("findings out of order: %+v", findings)
	}
}
