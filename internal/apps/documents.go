package apps

import (
	"fmt"

	"agave/internal/android"
	"agave/internal/kernel"
	"agave/internal/sim"
)

// odrView — OpenDocument Reader displaying a presentation (ppt), plain text
// (txt) or spreadsheet (xls). All three share the open-unzip-parse-layout
// pipeline but differ in rendering mix: ppt is image/blit heavy, txt is
// glyph heavy, xls re-renders a cell grid and evaluates formulas in Java.
func odrView(kind string) *Workload {
	cfg := map[string]struct {
		docMB     uint64
		parseCost uint64
	}{
		"ppt": {docMB: 6, parseCost: 60_000},
		"txt": {docMB: 1, parseCost: 25_000},
		"xls": {docMB: 3, parseCost: 80_000},
	}[kind]
	return &Workload{
		Name:         "odr." + kind + ".view",
		Category:     "productivity",
		AsyncWorkers: 2,
		Helpers:      1,
		Main: func(ex *kernel.Exec, a *android.App) {
			a.EnsureSurface(ex)
			doc := a.AnonBuffer("document", cfg.docMB<<20)
			libz := a.LinkMap.VMA("libz.so")
			expat := a.LinkMap.VMA("libexpat.so")

			// Open: read the file, inflate the ODF container, parse XML.
			readAsset(ex, a, doc, cfg.docMB<<19)
			ex.InCode(libz, func() {
				ex.Do(kernel.Work{Fetch: 8, Reads: 1, Writes: 1, Data: doc}, cfg.docMB<<15)
			})
			ex.InCode(expat, func() {
				ex.Do(kernel.Work{Fetch: 11, Reads: 1, Data: doc}, cfg.parseCost)
			})
			a.VM.InterpBulk(ex, a.Dex, cfg.parseCost, true)

			// View loop: scroll/flip every few hundred ms.
			a.FrameLoop(ex, 8, func(ex *kernel.Exec, n uint64) {
				uiPump(ex, a, 10_000)
				switch kind {
				case "ppt":
					// Slide: large decoded images blitted to screen.
					if n%12 == 0 {
						a.Canvas.DecodeImage(ex, doc, 800, 442)
					}
					a.Canvas.Blit(ex, 800, 442)
					a.Canvas.Text(ex, 60)
				case "txt":
					a.Canvas.FillRect(ex, 800, 442)
					a.Canvas.Text(ex, 1100)
				case "xls":
					// Grid lines + cell text + formula recalc.
					a.Canvas.FillRect(ex, 800, 442)
					for i := 0; i < 24; i++ {
						a.Canvas.FillRect(ex, 800, 2)
					}
					a.Canvas.Text(ex, 500)
					a.VM.Exec(ex, a.Dex, "callHeavy", 120)
					a.VM.InterpBulk(ex, a.Dex, 35_000, false)
				}
				if n%4 == 0 {
					a.Tasks.Submit(ex, func(ex *kernel.Exec) {
						// Prefetch + parse the next page/sheet chunk.
						ex.Do(kernel.Work{Fetch: 6, Reads: 1, Data: doc}, 90_000)
						a.VM.InterpBulk(ex, a.Dex, 90_000, false)
					})
				}
				if n%3 == 0 {
					touchLibraries(ex, a, 500)
				}
			})
		},
	}
}

// osmandView — OsmAnd map viewing (map) or turn-by-turn navigation (nav).
// Map mode rasterizes vector tiles as the viewport pans; nav mode adds
// periodic route recomputation on worker threads.
func osmandView(nav bool) *Workload {
	mode := "map"
	if nav {
		mode = "nav"
	}
	return &Workload{
		Name:         fmt.Sprintf("osmand.%s.view", mode),
		Category:     "navigation",
		AsyncWorkers: 3,
		Helpers:      2,
		Main: func(ex *kernel.Exec, a *android.App) {
			a.EnsureSurface(ex)
			tiles := a.AnonBuffer("tiles", 16<<20)
			routing := a.AnonBuffer("routing", 8<<20)
			readAsset(ex, a, tiles, 4<<20)
			if nav {
				readAsset(ex, a, routing, 2<<20)
			}
			a.FrameLoop(ex, 15, func(ex *kernel.Exec, n uint64) {
				uiPump(ex, a, 16_000)
				// Viewport pan: rasterize the newly exposed tiles.
				if n%8 == 0 {
					a.Tasks.Submit(ex, func(ex *kernel.Exec) {
						// Tile load + vector decode.
						ex.BlockRead(tiles, 128<<10)
						ex.Do(kernel.Work{Fetch: 9, Reads: 2, Data: tiles}, 50_000)
						a.VM.InterpBulk(ex, a.Dex, 70_000, true)
					})
				}
				// Map raster: polyline/polygon drawing into the frame.
				a.Canvas.FillRect(ex, 800, 442)
				a.Canvas.Blit(ex, 800, 300) // tile cache blit
				a.Canvas.Text(ex, 120)      // labels
				a.VM.Exec(ex, a.Dex, "sumLoop", 400)
				if nav && n%30 == 0 {
					a.Tasks.Submit(ex, func(ex *kernel.Exec) {
						// A* over the routing graph.
						ex.Do(kernel.Work{Fetch: 8, Reads: 3, Data: routing}, 140_000)
						a.VM.InterpBulk(ex, a.Dex, 120_000, true)
					})
				}
				if nav && n%15 == 0 {
					a.Canvas.FillRect(ex, 800, 90) // turn banner
					a.Canvas.Text(ex, 40)
				}
				if n%3 == 0 {
					touchLibraries(ex, a, 700)
				}
			})
		},
	}
}

// pmAPKView — the package manager installing an APK, the paper's only
// workload that exercises dexopt and id.defcontainer. Foreground mode shows
// the installer UI; .bkg installs silently.
func pmAPKView(background bool) *Workload {
	name := "pm.apk.view"
	if background {
		name += ".bkg"
	}
	return &Workload{
		Name:         name,
		Category:     "system",
		Background:   background,
		AsyncWorkers: 1,
		Main: func(ex *kernel.Exec, a *android.App) {
			a.EnsureSurface(ex)
			for n := uint64(0); ; n++ {
				done := a.Sys.InstallAPK(ex, a, fmt.Sprintf("com.example.app%d", n), 3<<20)
				if !background {
					// Progress UI while dexopt grinds.
					for i := 0; i < 4; i++ {
						uiPump(ex, a, 1500)
						a.Canvas.FillRect(ex, 500, 60)
						a.Canvas.Text(ex, 30)
						a.Surface.Post(ex, a.Sys.Compositor)
						touchLibraries(ex, a, 120)
						ex.SleepFor(150 * sim.Millisecond)
					}
				}
				done.Wait(ex)
				a.VM.InterpBulk(ex, a.FrameworkDex, 6_000, false)
				touchLibraries(ex, a, 200)
				ex.SleepFor(500 * sim.Millisecond)
			}
		},
	}
}
