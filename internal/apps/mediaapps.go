package apps

import (
	"agave/internal/android"
	"agave/internal/kernel"
	"agave/internal/media"
	"agave/internal/mem"
	"agave/internal/sim"
)

// serverSeekInput builds the seekbar handler of a mediaserver-backed
// player: a move sample only redraws the scrub overlay (overlayH tall),
// everything else seeks the session through mediaserver (demux index walk +
// bitstream resync server-side), charges the seek-complete callback in
// framework bytecode, and reposts the overlay. A failed seek — an injected
// binder fault, or mediaserver mid-restart — is tolerated: the scrub is
// lost, the player keeps its handle, and the next gesture lands on the
// recovered server.
func serverSeekInput(p *media.Player, callbackCost uint64, overlayH int) func(ex *kernel.Exec, a *android.App, ev *android.InputEvent) {
	return func(ex *kernel.Exec, a *android.App, ev *android.InputEvent) {
		if ev.Kind == android.TouchMove {
			a.Canvas.FillRect(ex, 800, overlayH)
			return
		}
		if err := p.Seek(ex, a.Sys.Binder); err != nil {
			a.Sys.NoteDetectedFault()
			a.Canvas.FillRect(ex, 800, overlayH)
			return
		}
		a.VM.InterpBulk(ex, a.FrameworkDex, callbackCost, false)
		a.Canvas.FillRect(ex, 800, overlayH)
		a.Surface.Post(ex, a.Sys.Compositor)
	}
}

// openPlayer opens a media session, retrying while mediaserver is absent
// (an app launch can land inside a KillMediaserver restart window); a
// failure other than the restart gap still panics — a missing media stack
// outside chaos runs is a harness bug, not a scenario outcome.
func openPlayer(ex *kernel.Exec, a *android.App, kind string) *media.Player {
	for attempt := 0; ; attempt++ {
		p, err := media.Open(ex, a.Sys.Binder, kind)
		if err == nil {
			return p
		}
		if attempt >= 50 {
			panic(err)
		}
		a.Sys.NoteDetectedFault()
		ex.SleepFor(50 * sim.Millisecond)
	}
}

// startPlayer begins playback, tolerating an injected failure: the session
// simply does not start, which the run's decode counters expose.
func startPlayer(ex *kernel.Exec, a *android.App, p *media.Player) {
	if err := p.Start(ex, a.Sys.Binder); err != nil {
		a.Sys.NoteDetectedFault()
	}
}

// inProcessSeekInput builds the seek handler of an in-process decoder
// (VLC): a move sample only redraws the scrub overlay, everything else
// walks the stream index inside the engine's own demuxer (indexWords over
// the bitstream plus stackWork of bookkeeping, and any extra invalidation
// the codec needs), refills the bitstream from storage at the target, and
// reposts the overlay.
func inProcessSeekInput(engine, stream *mem.VMA, indexWords, stackWork, refill uint64,
	overlayH int, invalidate func(ex *kernel.Exec)) func(ex *kernel.Exec, a *android.App, ev *android.InputEvent) {
	return func(ex *kernel.Exec, a *android.App, ev *android.InputEvent) {
		if ev.Kind == android.TouchMove {
			a.Canvas.FillRect(ex, 800, overlayH)
			return
		}
		ex.InCode(engine, func() {
			ex.Do(kernel.Work{Fetch: 8, Reads: 1, Data: stream}, indexWords)
			if invalidate != nil {
				invalidate(ex)
			}
			ex.StackWork(stackWork)
		})
		ex.BlockRead(stream, refill)
		a.Canvas.FillRect(ex, 800, overlayH)
		a.Surface.Post(ex, a.Sys.Compositor)
	}
}

// gallery.mp4.view — Gingerbread's stock Gallery playing an MP4. All decode
// work happens in mediaserver via Stagefright; the app itself only runs the
// playback controls. This is the workload where the paper measures
// mediaserver at 81 % of instruction references and 77 % of data references.
func galleryMP4View() *Workload {
	return &Workload{
		Name:         "gallery.mp4.view",
		Category:     "media",
		AsyncWorkers: 1,
		Main: func(ex *kernel.Exec, a *android.App) {
			a.EnsureSurface(ex)
			a.Surface.Overlay = true // video plane composes via overlay
			p := openPlayer(ex, a, "mp4")
			p.AttachSurface(a.Surface)
			startPlayer(ex, a, p)
			// A tap on the timeline is a scrub: the demux index walk and
			// bitstream resync happen server-side in mediaserver, the app
			// only redraws the progress overlay.
			a.OnInput = serverSeekInput(p, 2000, 48)
			// Playback controls fade out; the app wakes rarely to
			// advance the progress bar.
			for n := uint64(0); ; n++ {
				uiPump(ex, a, 1000)
				if n%3 == 0 {
					a.Canvas.FillRect(ex, 800, 48) // progress overlay
					a.Surface.Post(ex, a.Sys.Compositor)
				}
				touchLibraries(ex, a, 120)
				ex.SleepFor(400 * sim.Millisecond)
			}
		},
	}
}

// musicMP3View — the stock Music app playing an MP3 via mediaserver.
// Foreground mode redraws the now-playing screen (seekbar, VU-ish art);
// background mode is the paper's music.mp3.view.bkg: the service keeps
// playing with no UI at all.
func musicMP3View(background bool) *Workload {
	name := "music.mp3.view"
	if background {
		name += ".bkg"
	}
	return &Workload{
		Name:         name,
		Category:     "media",
		Background:   background,
		AsyncWorkers: 1,
		Main: func(ex *kernel.Exec, a *android.App) {
			a.EnsureSurface(ex)
			p := openPlayer(ex, a, "mp3")
			startPlayer(ex, a, p)
			if !background {
				// Seekbar input scrubs the track through mediaserver.
				a.OnInput = serverSeekInput(p, 2500, 80)
			}
			for n := uint64(0); ; n++ {
				if background {
					// The service ticks its notification state only.
					a.VM.InterpBulk(ex, a.FrameworkDex, 400, false)
					touchLibraries(ex, a, 60)
					ex.SleepFor(500 * sim.Millisecond)
					continue
				}
				uiPump(ex, a, 6000)
				a.VM.Exec(ex, a.Dex, "sumLoop", 200)
				a.Canvas.FillRect(ex, 800, 80) // seekbar strip
				a.Canvas.Blit(ex, 256, 256)    // album art pulse
				a.Canvas.Text(ex, 40)
				a.Surface.Post(ex, a.Sys.Compositor)
				touchLibraries(ex, a, 250)
				ex.SleepFor(500 * sim.Millisecond)
			}
		},
	}
}

// vlcMP3View — VLC playing an MP3. Unlike the Music app, VLC decodes
// in-process with its own native engine (libvlccore), so the benchmark
// process itself carries the decode load and hosts the AudioTrackThread.
func vlcMP3View(background bool) *Workload {
	name := "vlc.mp3.view"
	if background {
		name += ".bkg"
	}
	return &Workload{
		Name:         name,
		Category:     "media",
		Background:   background,
		ExtraLibs:    []string{"libvlccore.so", "libvlcjni.so", "libmedia.so"},
		AsyncWorkers: 1,
		Main: func(ex *kernel.Exec, a *android.App) {
			a.EnsureSurface(ex)
			vlc := a.LinkMap.VMA("libvlccore.so")
			stream := a.AnonBuffer("bitstream", 1<<20)
			a.Sys.Media.StreamTrack(a.Proc)
			if !background {
				// VLC decodes in-process, so a seek is in-process too:
				// its own demuxer walks the stream index and refills the
				// bitstream — the contrast to the Music app's
				// mediaserver-side scrub.
				a.OnInput = inProcessSeekInput(vlc, stream, 4000, 6_000, 64<<10, 100, nil)
			}
			// Decoder worker: VLC runs its input/decode chain on its
			// own threads.
			a.SpawnWorker(func(ex *kernel.Exec, a *android.App) {
				frames := 0
				for {
					if frames%150 == 0 {
						ex.BlockRead(stream, 64<<10)
					}
					frames++
					ex.InCode(vlc, func() {
						// MAD-style fixed-point MP3 decode.
						ex.Do(kernel.Work{Fetch: 13, Reads: 1, Data: stream}, 480)
						ex.StackWork(24_000)
					})
					ex.SleepFor(26 * sim.Millisecond)
				}
			})
			for n := uint64(0); ; n++ {
				if background {
					a.VM.InterpBulk(ex, a.FrameworkDex, 300, false)
					touchLibraries(ex, a, 60)
					ex.SleepFor(500 * sim.Millisecond)
					continue
				}
				uiPump(ex, a, 5000)
				a.Canvas.FillRect(ex, 800, 100)
				a.Canvas.Text(ex, 60)
				a.Surface.Post(ex, a.Sys.Compositor)
				touchLibraries(ex, a, 220)
				ex.SleepFor(500 * sim.Millisecond)
			}
		},
	}
}

// vlcMP4View — VLC playing video in-process: native demux + AVC decode +
// YUV→RGB conversion, all inside the benchmark process, rendering into its
// own surface. The contrast with gallery.mp4.view (mediaserver-side decode)
// is one of the suite's deliberate mode comparisons.
func vlcMP4View() *Workload {
	return &Workload{
		Name:         "vlc.mp4.view",
		Category:     "media",
		ExtraLibs:    []string{"libvlccore.so", "libvlcjni.so", "libmedia.so"},
		AsyncWorkers: 1,
		Helpers:      1,
		Main: func(ex *kernel.Exec, a *android.App) {
			a.EnsureSurface(ex)
			a.Surface.Overlay = true // video plane composes via overlay
			vlc := a.LinkMap.VMA("libvlccore.so")
			stream := a.AnonBuffer("bitstream", 2<<20)
			refs := a.AnonBuffer("reframes", 4<<20)
			a.Sys.Media.StreamTrack(a.Proc)
			// In-process video seek: demux index walk, a sync-frame burst
			// from storage, and the reference-frame set invalidated.
			a.OnInput = inProcessSeekInput(vlc, stream, 6000, 8_000, 192<<10, 48,
				func(ex *kernel.Exec) {
					ex.Do(kernel.Work{Fetch: 2, Writes: 1, Data: refs}, 20_000)
				})
			a.SpawnWorker(func(ex *kernel.Exec, a *android.App) {
				frames := 0
				for {
					if frames%24 == 0 {
						ex.BlockRead(stream, 256<<10)
					}
					frames++
					px := uint64(800 * 442)
					ex.InCode(vlc, func() {
						// Entropy decode + MC + reconstruction.
						ex.Do(kernel.Work{Fetch: 16, Reads: 1, Data: stream}, px/16)
						ex.Do(kernel.Work{Fetch: 3, Reads: 1, Data: refs}, px)
						ex.Do(kernel.Work{Fetch: 3, Writes: 1, Data: a.Surface.Buf}, px)
						ex.Do(kernel.Work{Fetch: 1, Writes: 1, Data: refs}, px/2)
					})
					a.Surface.Post(ex, a.Sys.Compositor)
					ex.SleepFor(sim.Second / 24)
				}
			})
			for n := uint64(0); ; n++ {
				uiPump(ex, a, 2500)
				if n%2 == 0 {
					a.Canvas.FillRect(ex, 800, 48)
				}
				touchLibraries(ex, a, 200)
				ex.SleepFor(500 * sim.Millisecond)
			}
		},
	}
}
