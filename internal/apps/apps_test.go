package apps

import (
	"strings"
	"testing"

	"agave/internal/android"
	"agave/internal/kernel"
	"agave/internal/sim"
	"agave/internal/stats"
)

func TestSuiteHas19WorkloadsInPaperOrder(t *testing.T) {
	names := Names()
	want := []string{
		"aard.main", "coolreader.epub.view", "countdown.main", "doom.main",
		"frozenbubble.main", "gallery.mp4.view", "jetboy.main",
		"music.mp3.view", "music.mp3.view.bkg", "odr.ppt.view",
		"odr.txt.view", "odr.xls.view", "osmand.map.view",
		"osmand.nav.view", "pm.apk.view", "pm.apk.view.bkg",
		"vlc.mp3.view", "vlc.mp3.view.bkg", "vlc.mp4.view",
	}
	if len(names) != 19 {
		t.Fatalf("suite has %d workloads, want 19", len(names))
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("workload[%d] = %s, want %s", i, names[i], want[i])
		}
	}
}

func TestByName(t *testing.T) {
	w, err := ByName("doom.main")
	if err != nil || w.Name != "doom.main" {
		t.Fatalf("ByName: %v %v", w, err)
	}
	if _, err := ByName("angrybirds.main"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestBackgroundVariantsMarked(t *testing.T) {
	for _, w := range All() {
		wantBkg := strings.HasSuffix(w.Name, ".bkg")
		if w.Background != wantBkg {
			t.Errorf("%s: Background = %v", w.Name, w.Background)
		}
	}
}

func TestCategoriesSpanEight(t *testing.T) {
	cats := map[string]bool{}
	for _, w := range All() {
		cats[w.Category] = true
	}
	// The paper: 12 applications spanning eight categories.
	if len(cats) < 6 {
		t.Fatalf("only %d categories: %v", len(cats), cats)
	}
}

func TestCoolreaderMapsCR3Engine(t *testing.T) {
	w, _ := ByName("coolreader.epub.view")
	found := false
	for _, l := range w.ExtraLibs {
		if l == "libcr3engine-3-1-1.so" {
			found = true
		}
	}
	if !found {
		t.Fatal("coolreader does not map libcr3engine-3-1-1.so (Figure 1 legend entry)")
	}
}

// launchAndRun boots the stack, runs workload name for d simulated time, and
// returns the kernel for inspection.
func launchAndRun(t *testing.T, name string, d sim.Ticks) *kernel.Kernel {
	t.Helper()
	k := kernel.New(kernel.Config{Quantum: sim.Millisecond, Seed: 1})
	t.Cleanup(k.Shutdown)
	sys := android.Boot(k)
	w, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	Launch(sys, w)
	k.Run(d)
	return k
}

func TestEveryWorkloadRunsWithoutPanic(t *testing.T) {
	// A boot + 350 simulated ms of every workload: the broad integration
	// sweep. Panics inside simulated threads would fail the run.
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			k := launchAndRun(t, name, 350*sim.Millisecond)
			if got := k.Stats.ByProcess()["benchmark"]; got == 0 {
				t.Fatalf("%s: benchmark process earned no references", name)
			}
		})
	}
}

func TestForegroundHidesLauncherBackgroundDoesNot(t *testing.T) {
	kFg := launchAndRun(t, "music.mp3.view", 300*sim.Millisecond)
	kBg := launchAndRun(t, "music.mp3.view.bkg", 300*sim.Millisecond)
	_ = kFg
	// The background variant must produce no gralloc writes from the
	// benchmark: it has no surface.
	if got := kBg.Stats.ByProcess()["benchmark"]; got == 0 {
		t.Fatal("bkg benchmark idle")
	}
	// Compare the benchmark process's own drawing: the background variant
	// has no surface, so its gralloc writes must be zero (the residual
	// gralloc traffic belongs to launcher/systemui).
	fgGralloc := kFg.Stats.ByRegionForProcess("benchmark", stats.DataWrite)["gralloc-buffer"]
	bgGralloc := kBg.Stats.ByRegionForProcess("benchmark", stats.DataWrite)["gralloc-buffer"]
	if fgGralloc == 0 {
		t.Fatal("foreground music never drew")
	}
	if bgGralloc != 0 {
		t.Fatalf("background variant drew into a surface: %d refs", bgGralloc)
	}
}

func TestPMInstallSpawnsDexopt(t *testing.T) {
	k := launchAndRun(t, "pm.apk.view", 1200*sim.Millisecond)
	if k.FindProcess("dexopt") == nil {
		t.Fatal("pm.apk.view never spawned dexopt")
	}
	if k.FindProcess("id.defcontainer") == nil {
		t.Fatal("pm.apk.view never spawned id.defcontainer")
	}
}

func TestGalleryMediaserverDominant(t *testing.T) {
	k := launchAndRun(t, "gallery.mp4.view", 700*sim.Millisecond)
	bp := stats.NewBreakdown(k.Stats.ByProcess(stats.IFetch))
	if bp.Rows[0].Name != "mediaserver" {
		t.Fatalf("gallery top process = %s, want mediaserver (paper: 81%%)", bp.Rows[0].Name)
	}
	if bp.Rows[0].Share < 0.5 {
		t.Fatalf("mediaserver share = %.1f%%, want > 50%%", bp.Rows[0].Share*100)
	}
}

func TestVLCDecodesInProcess(t *testing.T) {
	k := launchAndRun(t, "vlc.mp4.view", 700*sim.Millisecond)
	bp := stats.NewBreakdown(k.Stats.ByProcess(stats.IFetch))
	if bp.Rows[0].Name != "benchmark" {
		t.Fatalf("vlc top process = %s, want benchmark (in-process decode)", bp.Rows[0].Name)
	}
	if k.Stats.ByRegion(stats.IFetch)["libvlccore.so"] == 0 {
		t.Fatal("no fetches from libvlccore.so")
	}
}

func TestThreadCensusInPaperBand(t *testing.T) {
	k := launchAndRun(t, "osmand.nav.view", 400*sim.Millisecond)
	if n := k.ThreadCount(); n < 32 || n > 147 {
		t.Fatalf("threads = %d, paper band is 32-147", n)
	}
	if n := k.ProcessCount(); n < 18 || n > 36 {
		t.Fatalf("processes = %d, paper band is 20-34", n)
	}
}
