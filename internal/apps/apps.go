// Package apps defines the 19 Agave application workloads: 12 popular
// open-source applications, several in multiple modes (foreground vs
// background, different inputs), exactly as the paper's Figures 1–4 list
// them on their x-axes. Each workload drives the stack through the same
// services the real application uses: Dalvik bytecode for Java logic, Skia
// and SurfaceFlinger for UI, mediaserver/Stagefright for playback, the
// PackageManager flow for installs, and app-private native libraries for
// the NDK components.
package apps

import (
	"fmt"
	"sync"

	"agave/internal/android"
	"agave/internal/kernel"
)

// Workload is one Agave benchmark.
type Workload struct {
	// Name is the paper's identifier, e.g. "coolreader.epub.view".
	Name string
	// Category is one of the paper's eight application categories.
	Category string
	// ExtraLibs are app-private native libraries (mapped on top of the
	// zygote set).
	ExtraLibs []string
	// Background marks the .bkg variants: no surface, no UI drawing.
	Background bool
	// AsyncWorkers and Helpers size the AsyncTask pool and the
	// app_process companion count.
	AsyncWorkers int
	Helpers      int
	// Main is the application main-thread body; it runs after the
	// activity lifecycle handshake and never returns.
	Main func(ex *kernel.Exec, a *android.App)
}

// All returns the 19 workloads in the paper's x-axis order.
func All() []*Workload {
	return []*Workload{
		aardMain(),
		coolreaderEpubView(),
		countdownMain(),
		doomMain(),
		frozenbubbleMain(),
		galleryMP4View(),
		jetboyMain(),
		musicMP3View(false),
		musicMP3View(true),
		odrView("ppt"),
		odrView("txt"),
		odrView("xls"),
		osmandView(false),
		osmandView(true),
		pmAPKView(false),
		pmAPKView(true),
		vlcMP3View(false),
		vlcMP3View(true),
		vlcMP4View(),
	}
}

// Names lists the workload identifiers in order.
func Names() []string {
	all := All()
	out := make([]string, len(all))
	for i, w := range all {
		out[i] = w.Name
	}
	return out
}

// registry memoizes one shared, read-only instance of each workload for the
// ByName hot path: scenario engines look a workload up per app launch, and
// rebuilding all 19 (All allocates fresh copies by contract) per launch was
// measurable. Workloads are stateless — the Main closures capture only
// constructor parameters — so sharing one instance across kernels is safe.
var registry struct {
	once   sync.Once
	byName map[string]*Workload
}

// ByName finds a workload. The returned workload is shared; callers must
// treat it as read-only.
func ByName(name string) (*Workload, error) {
	registry.once.Do(func() {
		all := All()
		registry.byName = make(map[string]*Workload, len(all))
		for _, w := range all {
			registry.byName[w.Name] = w
		}
	})
	w, ok := registry.byName[name]
	if !ok {
		return nil, fmt.Errorf("apps: unknown workload %q", name)
	}
	return w, nil
}

// Launch builds the benchmark application process (named "benchmark", as in
// the paper's process legends) and starts the workload.
func Launch(sys *android.System, w *Workload) *android.App {
	cfg := android.AppConfig{
		Process:      "benchmark",
		Label:        w.Name,
		ExtraLibs:    w.ExtraLibs,
		Fullscreen:   !w.Background,
		Foreground:   !w.Background,
		AsyncWorkers: w.AsyncWorkers,
		Helpers:      w.Helpers,
	}
	a := sys.NewApp(cfg)
	a.OnInput = inputHandler(w)
	a.Start(w.Main)
	return a
}

// LaunchAs builds an application process for w under an explicit process
// name — the multi-app entry point the scenario engine uses, so each
// concurrent app attributes its references to its own process exactly the
// way a single-app run attributes to "benchmark". The name also labels the
// app's dex image, JNI stub library, and binder endpoint, so it must be
// unique among live apps. noJIT disables the app VM's trace JIT (ablation
// A1, applied per app).
func LaunchAs(sys *android.System, w *Workload, name string, noJIT bool) *android.App {
	cfg := android.AppConfig{
		Process:      name,
		Label:        name,
		ExtraLibs:    w.ExtraLibs,
		Fullscreen:   !w.Background,
		Foreground:   !w.Background,
		AsyncWorkers: w.AsyncWorkers,
		Helpers:      w.Helpers,
		NoJIT:        noJIT,
	}
	a := sys.NewApp(cfg)
	a.OnInput = inputHandler(w)
	a.Start(w.Main)
	return a
}
