package apps

import (
	"agave/internal/android"
	"agave/internal/kernel"
	"agave/internal/mem"
)

// touchLibraries sprinkles a light reference load across the app's mapped
// libraries with a Zipf-ish weighting: PLT stubs, one-off helper calls,
// string/locale lookups. This is what fills out the long tail of the
// paper's region census — "other (63 items)" in Figure 1 and
// "other (169 items)" in Figure 2 — without inventing regions that receive
// no references.
func touchLibraries(ex *kernel.Exec, a *android.App, intensity uint64) {
	names := a.LinkMap.Names()
	for i, name := range names {
		v := a.LinkMap.VMA(name)
		w := intensity / uint64(i+2) // Zipf by deterministic map order
		if w == 0 {
			w = 1
		}
		ex.InCode(v, func() {
			ex.Do(kernel.Work{Fetch: 1, Reads: 1, Data: v}, w)
		})
	}
	// Asset traffic: resource loads from the apk, a database page, and
	// the shared system assets (fonts, framework-res, ICU tables).
	ex.Read(a.Resources, 2+intensity/8)
	ex.Read(a.Database, 1+intensity/32)
	ex.Write(a.Database, 1+intensity/64)
	for i, v := range a.Assets {
		ex.Read(v, 1+intensity/uint64(8*(i+1)))
	}
}

// readAsset models loading an application asset (dictionary page, ebook
// chapter, map tile pack, document chunk) from storage into an anonymous
// buffer and scanning it once.
func readAsset(ex *kernel.Exec, a *android.App, buf *mem.VMA, n uint64) {
	ex.BlockRead(buf, n)
	ex.Do(kernel.Work{Fetch: 3, Reads: 1, Data: buf}, n/8)
}

// uiPump charges one frame's worth of framework overhead: input pipeline,
// view traversal and layout in framework bytecode, plus a little liblog /
// libandroid_runtime native glue. It is also the main thread's lifecycle
// gate: a pause posted by the ActivityManager parks the thread here until
// the matching resume, so every UI-driving workload backgrounds cleanly
// under the scenario engine.
func uiPump(ex *kernel.Exec, a *android.App, bytecodes uint64) {
	a.PausePoint(ex)
	a.VM.InterpBulk(ex, a.FrameworkDex, bytecodes, false)
	rt := a.LinkMap.VMA("libandroid_runtime.so")
	ex.InCode(rt, func() {
		ex.Do(kernel.Work{Fetch: 2, Reads: 1, Data: rt}, bytecodes/24)
	})
	ex.StackWork(bytecodes / 8)
}

// scratchAnon returns the app's default anonymous working buffer.
func scratchAnon(a *android.App, size uint64) *mem.VMA {
	return a.AnonBuffer("scratch", size)
}
