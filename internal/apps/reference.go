package apps

import (
	"agave/internal/android"
	"agave/internal/kernel"
	"agave/internal/sim"
)

// aard.main — the aarddict offline dictionary/reference app. The user types
// a query; lookups run on AsyncTask workers over the compressed dictionary
// volume; results render as a text page. A Java-heavy workload: most cycles
// go through the interpreter and JIT.
func aardMain() *Workload {
	return &Workload{
		Name:         "aard.main",
		Category:     "reference",
		AsyncWorkers: 3,
		Helpers:      2,
		Main: func(ex *kernel.Exec, a *android.App) {
			a.EnsureSurface(ex)
			dict := a.AnonBuffer("dictionary", 8<<20)
			readAsset(ex, a, dict, 2<<20)
			a.FrameLoop(ex, 12, func(ex *kernel.Exec, n uint64) {
				uiPump(ex, a, 12_000)
				// A keystroke every couple of frames kicks off a lookup.
				if n%2 == 0 {
					a.Tasks.Submit(ex, func(ex *kernel.Exec) {
						// Binary search + article decompress over
						// the volume, then article parse in Java.
						ex.Do(kernel.Work{Fetch: 9, Reads: 2, Data: dict}, 150_000)
						a.VM.InterpBulk(ex, a.Dex, 150_000, true)
					})
				}
				// Render the result page: text body + highlights.
				a.Canvas.FillRect(ex, 800, 442)
				a.Canvas.Text(ex, 420)
				a.VM.Exec(ex, a.Dex, "callHeavy", 40)
				if n%3 == 0 {
					touchLibraries(ex, a, 600)
				}
			})
		},
	}
}

// coolreader.epub.view — Cool Reader displaying an EPUB. Page layout and
// font rasterization happen in the native cr3engine
// (libcr3engine-3-1-1.so, which the paper's Figure 1 legend calls out); the
// Java shell handles paging and settings.
func coolreaderEpubView() *Workload {
	return &Workload{
		Name:         "coolreader.epub.view",
		Category:     "reading",
		ExtraLibs:    []string{"libcr3engine-3-1-1.so"},
		AsyncWorkers: 2,
		Helpers:      1,
		Main: func(ex *kernel.Exec, a *android.App) {
			a.EnsureSurface(ex)
			cr3 := a.LinkMap.VMA("libcr3engine-3-1-1.so")
			book := a.AnonBuffer("epub", 4<<20)
			readAsset(ex, a, book, 1<<20)
			pageTicks := uint64(0)
			a.FrameLoop(ex, 10, func(ex *kernel.Exec, n uint64) {
				uiPump(ex, a, 8000)
				pageTicks++
				if pageTicks%15 == 0 {
					// Page turn: cr3engine reflows the chapter.
					ex.InCode(cr3, func() {
						ex.Do(kernel.Work{Fetch: 9, Reads: 2, Data: book}, 90_000)
						ex.Do(kernel.Work{Fetch: 3, Reads: 1, Data: cr3}, 20_000)
					})
					a.Tasks.Submit(ex, func(ex *kernel.Exec) {
						// Preparse the next chapter (unzip + XML).
						ex.Do(kernel.Work{Fetch: 6, Reads: 1, Data: book}, 40_000)
						a.VM.InterpBulk(ex, a.Dex, 25_000, false)
					})
				}
				// Render the visible page from the cr3engine: glyph
				// rasterization runs in native code.
				ex.InCode(cr3, func() {
					ex.Do(kernel.Work{Fetch: 5, Reads: 1, Data: book}, 30_000)
				})
				a.Canvas.FillRect(ex, 800, 442)
				a.Canvas.Text(ex, 900)
				if n%3 == 0 {
					touchLibraries(ex, a, 400)
				}
			})
		},
	}
}

// countdown.main — a minimal countdown timer: one digit redraw per second.
// The least demanding Agave workload; most system references come from the
// surrounding stack (SurfaceFlinger, systemui, services), which is exactly
// why the paper includes it.
func countdownMain() *Workload {
	return &Workload{
		Name:         "countdown.main",
		Category:     "utility",
		AsyncWorkers: 1,
		Main: func(ex *kernel.Exec, a *android.App) {
			a.EnsureSurface(ex)
			a.Canvas.FillRect(ex, 800, 442)
			a.Surface.Post(ex, a.Sys.Compositor)
			for n := uint64(0); ; n++ {
				uiPump(ex, a, 3000)
				a.VM.Exec(ex, a.Dex, "sumLoop", 300)
				a.Canvas.FillRect(ex, 360, 160) // digits panel
				a.Canvas.Text(ex, 8)
				a.Surface.Post(ex, a.Sys.Compositor)
				touchLibraries(ex, a, 150)
				ex.SleepFor(1 * sim.Second)
			}
		},
	}
}
