package apps

import (
	"agave/internal/android"
	"agave/internal/kernel"
	"agave/internal/sim"
)

// doom.main — prBoom/Doom for Android: an almost entirely native workload.
// The engine (libdoom.so) runs the game loop, software-renders the frame
// into the surface, and mixes sound effects through an AudioTrack.
func doomMain() *Workload {
	return &Workload{
		Name:         "doom.main",
		Category:     "game",
		ExtraLibs:    []string{"libdoom.so", "libmedia.so"},
		AsyncWorkers: 1,
		Helpers:      1,
		Main: func(ex *kernel.Exec, a *android.App) {
			a.EnsureSurface(ex)
			engine := a.LinkMap.VMA("libdoom.so")
			wad := a.AnonBuffer("wad", 12<<20)
			readAsset(ex, a, wad, 4<<20)
			a.Sys.Media.StreamTrack(a.Proc) // sfx mixer feed
			a.SpawnWorker(func(ex *kernel.Exec, a *android.App) {
				for {
					ex.InCode(engine, func() {
						ex.Do(kernel.Work{Fetch: 5, Reads: 2, Data: wad}, 30_000)
						ex.StackWork(10_000)
					})
					ex.SleepFor(sim.Second / 35)
				}
			})
			a.FrameLoop(ex, 35, func(ex *kernel.Exec, n uint64) {
				// Game tick: BSP traversal + entity logic over WAD
				// structures.
				ex.InCode(engine, func() {
					ex.Do(kernel.Work{Fetch: 6, Reads: 2, Data: wad}, 45_000)
					ex.StackWork(12_000)
				})
				// Software renderer: column/span drawing into the
				// surface (the engine's own rasterizer, not Skia).
				ex.InCode(engine, func() {
					ex.Do(kernel.Work{Fetch: 3, Reads: 1, Data: wad}, 120_000)
					ex.Do(kernel.Work{Fetch: 1, Writes: 1, Data: a.Surface.Buf}, 160_000)
				})
				// Thin Java shell: input + lifecycle glue.
				uiPump(ex, a, 1800)
				if n%8 == 0 {
					touchLibraries(ex, a, 350)
				}
			})
		},
	}
}

// frozenbubble.main — Frozen Bubble, a pure-Java game: sprite blits through
// Skia, game logic in bytecode (a showcase for the interpreter + trace JIT),
// sound effects via AudioTrack.
func frozenbubbleMain() *Workload {
	return &Workload{
		Name:         "frozenbubble.main",
		Category:     "game",
		ExtraLibs:    []string{"libmedia.so"},
		AsyncWorkers: 1,
		Helpers:      1,
		Main: func(ex *kernel.Exec, a *android.App) {
			a.EnsureSurface(ex)
			a.Sys.Media.StreamTrack(a.Proc)
			// Physics runs on the game's SurfaceView thread, as in the
			// real app (a generic "Thread-N", Table I's "Thread" group).
			a.SpawnWorker(func(ex *kernel.Exec, a *android.App) {
				for {
					a.VM.InterpBulk(ex, a.Dex, 70_000, true)
					ex.StackWork(20_000)
					ex.SleepFor(sim.Second / 30)
				}
			})
			a.FrameLoop(ex, 30, func(ex *kernel.Exec, n uint64) {
				// Game logic in Java: physics, collision, state.
				a.VM.InterpBulk(ex, a.Dex, 150_000, true)
				a.VM.Exec(ex, a.Dex, "objectChurn", int64(n%32)+16)
				// Sprite rendering: background + bubbles.
				a.Canvas.Blit(ex, 800, 442)
				for i := 0; i < 12; i++ {
					a.Canvas.Blit(ex, 32, 32)
				}
				uiPump(ex, a, 5000)
				if n%6 == 0 {
					touchLibraries(ex, a, 450)
				}
			})
		},
	}
}

// jetboy.main — the SDK's JetBoy sample: a Java game driven by the JET MIDI
// engine. Game canvas at 30 fps plus a MIDI-synthesis audio stream (the
// sonivox synthesizer runs in the app's audio path).
func jetboyMain() *Workload {
	return &Workload{
		Name:         "jetboy.main",
		Category:     "game",
		ExtraLibs:    []string{"libmedia.so"},
		AsyncWorkers: 1,
		Main: func(ex *kernel.Exec, a *android.App) {
			a.EnsureSurface(ex)
			sonivox := a.LinkMap.VMA("libsonivox.so")
			a.Sys.Media.StreamTrack(a.Proc)
			a.SpawnWorker(func(ex *kernel.Exec, a *android.App) {
				for {
					a.VM.InterpBulk(ex, a.Dex, 50_000, false)
					ex.StackWork(15_000)
					ex.SleepFor(sim.Second / 30)
				}
			})
			a.FrameLoop(ex, 30, func(ex *kernel.Exec, n uint64) {
				a.VM.InterpBulk(ex, a.Dex, 110_000, true)
				// JET MIDI synthesis: wavetable reads + DSP.
				ex.InCode(sonivox, func() {
					ex.Do(kernel.Work{Fetch: 8, Reads: 2, Data: sonivox}, 9_000)
					ex.StackWork(4_000)
				})
				a.Canvas.Blit(ex, 800, 442) // scrolling starfield
				for i := 0; i < 6; i++ {
					a.Canvas.Blit(ex, 64, 64) // asteroids + ship
				}
				uiPump(ex, a, 4000)
				if n%6 == 0 {
					touchLibraries(ex, a, 300)
				}
			})
		},
	}
}
