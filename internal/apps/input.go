package apps

import (
	"agave/internal/android"
	"agave/internal/kernel"
)

// Input-event handlers: the app half of the InputDispatcher pipeline. A
// delivered tap, key, or swipe sample must change what the app *does* — the
// point of driving input through the stack is that the measured CPU and
// memory profile moves — so every handler performs real workload-shaped
// work: dalvik bytecode with fresh allocations, surface invalidations that
// feed SurfaceFlinger another composition, and (for the media players, which
// install their own closures in their Main bodies) seeks through the media
// stack.

// inputHandler picks the workload's default handler by category. Launch and
// LaunchAs install it before the main body runs; bodies that want richer
// behavior (media seeks need the player handle) overwrite App.OnInput.
func inputHandler(w *Workload) func(ex *kernel.Exec, a *android.App, ev *android.InputEvent) {
	if w.Category == "game" {
		return gameInput
	}
	return uiInput
}

// uiInput is the generic activity response: listener dispatch and view
// updates in the app's own bytecode (with allocation churn — a tap makes
// garbage), then an invalidated region redrawn and posted. Move samples are
// the cheap middle of a gesture: scroll bookkeeping and a partial redraw.
func uiInput(ex *kernel.Exec, a *android.App, ev *android.InputEvent) {
	if ev.Kind == android.TouchMove {
		a.VM.InterpBulk(ex, a.Dex, 2500, true)
		if a.Canvas != nil {
			a.Canvas.FillRect(ex, 800, 60)
		}
		return
	}
	a.VM.InterpBulk(ex, a.Dex, 6000, true)
	a.VM.Exec(ex, a.Dex, "objectChurn", 24)
	ex.StackWork(800)
	if a.Canvas != nil {
		a.Canvas.FillRect(ex, 240, 120)
		a.Surface.Post(ex, a.Sys.Compositor)
	}
}

// gameInput is the game-category response: a tap or key is a game action, so
// the handler runs a slice of game logic hot enough to engage the trace JIT,
// allocates entity state, and redraws the touched sprite region.
func gameInput(ex *kernel.Exec, a *android.App, ev *android.InputEvent) {
	if ev.Kind == android.TouchMove {
		a.VM.InterpBulk(ex, a.Dex, 4000, true)
		return
	}
	a.VM.InterpBulk(ex, a.Dex, 18_000, true)
	a.VM.Exec(ex, a.Dex, "objectChurn", 40)
	ex.StackWork(2000)
	if a.Canvas != nil {
		a.Canvas.Blit(ex, 64, 64)
		a.Surface.Post(ex, a.Sys.Compositor)
	}
}
