package apps

import (
	"testing"

	"agave/internal/android"
	"agave/internal/kernel"
	"agave/internal/sim"
)

// TestTapScrubsMediaPlayerThroughDispatcher drives the whole input pipeline
// across four layers: a driver thread injects taps, system_server's
// InputDispatcher routes them to the focused Music app, the app's main
// thread runs its seekbar handler at the next looper drain, and the handler
// scrubs the track — a Binder transaction into mediaserver whose demux walk
// and bitstream resync are visible as served seeks.
func TestTapScrubsMediaPlayerThroughDispatcher(t *testing.T) {
	k := kernel.New(kernel.Config{Quantum: sim.Millisecond, Seed: 1})
	t.Cleanup(k.Shutdown)
	sys := android.Boot(k)
	w, err := ByName("music.mp3.view")
	if err != nil {
		t.Fatal(err)
	}
	Launch(sys, w)
	k.SpawnThread(sys.SystemServer, "test-input", "test-input", func(ex *kernel.Exec) {
		ex.PushCode(sys.SystemServer.Layout.Text)
		for _, at := range []sim.Ticks{350, 600, 850} {
			ex.SleepUntil(at * sim.Millisecond)
			sys.InjectTap(ex, "music.mp3.view")
		}
		ex.Wait(k.NewWaitQueue("test-input.done"))
	})
	k.Run(1300 * sim.Millisecond)

	stats := sys.InputStats()
	if len(stats) != 1 || stats[0].App != "music.mp3.view" {
		t.Fatalf("input stats = %+v, want one music.mp3.view record", stats)
	}
	st := stats[0]
	if st.Injected != 6 { // three taps, two samples each
		t.Fatalf("injected %d samples, want 6", st.Injected)
	}
	if st.Dispatched == 0 {
		t.Fatalf("no tap reached the app (dropped %d)", st.Dropped)
	}
	if st.Dispatched+st.Dropped != st.Injected {
		t.Fatalf("accounting leak: %d + %d != %d", st.Dispatched, st.Dropped, st.Injected)
	}
	if st.LatencySum == 0 || st.LatencyMax < st.LatencyMin {
		t.Fatalf("latency stats malformed: %+v", st)
	}
	if sys.Media.Seeks == 0 {
		t.Fatal("dispatched taps never seeked the media session")
	}
}
