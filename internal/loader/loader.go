// Package loader models the dynamic linker's view of a Gingerbread system:
// a catalog of shared objects (sizes in the ballpark of a real Android 2.3.7
// /system/lib) and per-process link maps. Each library is mapped as a single
// named VMA; instruction fetches against it populate the paper's Figure 1
// (code regions) and data references against the same name populate Figure 2
// — exactly as in the paper, where "libdvm.so" appears in both legends.
package loader

import (
	"fmt"
	"sort"

	"agave/internal/mem"
)

// Library describes one shared object image.
type Library struct {
	Name string
	Size uint64 // text+data footprint, bytes
}

// KB is a byte-size helper for catalog literals.
const KB = 1024

// Catalog is the Gingerbread /system/lib inventory used by the reproduction.
// Sizes are rough footprints; the names are what matters for the figures.
var Catalog = []Library{
	{"libc.so", 280 * KB},
	{"libm.so", 96 * KB},
	{"libstdc++.so", 8 * KB},
	{"liblog.so", 8 * KB},
	{"libcutils.so", 48 * KB},
	{"libutils.so", 168 * KB},
	{"libbinder.so", 120 * KB},
	{"libz.so", 72 * KB},
	{"libexpat.so", 112 * KB},
	{"libcrypto.so", 960 * KB},
	{"libssl.so", 184 * KB},
	{"libicuuc.so", 800 * KB},
	{"libicui18n.so", 1100 * KB},
	{"libsqlite.so", 336 * KB},
	{"libdvm.so", 1200 * KB},
	{"libnativehelper.so", 20 * KB},
	{"libandroid_runtime.so", 1100 * KB},
	{"libskia.so", 1600 * KB},
	{"libpixelflinger.so", 64 * KB},
	{"libui.so", 40 * KB},
	{"libsurfaceflinger.so", 224 * KB},
	{"libsurfaceflinger_client.so", 72 * KB},
	{"libEGL.so", 56 * KB},
	{"libGLESv1_CM.so", 24 * KB},
	{"libGLESv2.so", 16 * KB},
	{"libagl.so", 160 * KB},
	{"libhardware.so", 8 * KB},
	{"libhardware_legacy.so", 56 * KB},
	{"libmedia.so", 400 * KB},
	{"libmediaplayerservice.so", 160 * KB},
	{"libstagefright.so", 800 * KB},
	{"libstagefright_omx.so", 96 * KB},
	{"libstagefright_color_conversion.so", 16 * KB},
	{"libaudioflinger.so", 200 * KB},
	{"libsonivox.so", 240 * KB},
	{"libvorbisidec.so", 120 * KB},
	{"libspeex.so", 80 * KB},
	{"libwebcore.so", 3600 * KB},
	{"libchromium_net.so", 800 * KB},
	{"libdbus.so", 120 * KB},
	{"libbluetoothd.so", 240 * KB},
	{"libnetutils.so", 16 * KB},
	{"libwpa_client.so", 8 * KB},
	{"libcamera_client.so", 72 * KB},
	{"libcameraservice.so", 64 * KB},
	{"libsystem_server.so", 24 * KB},
	{"libemoji.so", 8 * KB},
	{"libjpeg.so", 160 * KB},
	{"libpagemap.so", 8 * KB},
	{"libdrm1.so", 40 * KB},
	{"libthread_db.so", 8 * KB},
	{"linker", 64 * KB},
	{"libgabi++.so", 16 * KB},
	{"libttspico.so", 320 * KB},
	{"libsoundpool.so", 24 * KB},
	{"libgps.so", 80 * KB},
	{"librilutils.so", 16 * KB},
	{"libril.so", 48 * KB},
	{"libreference-ril.so", 40 * KB},
	{"libvold.so", 72 * KB},
	{"libkeystore.so", 24 * KB},
	{"libdiskconfig.so", 12 * KB},
	{"libsensorservice.so", 56 * KB},
}

// App-visible framework dex images (mapped from /data/dalvik-cache on a real
// device). Bytecode fetches are *data reads* against these regions.
var FrameworkDex = []Library{
	{"core.jar@classes.dex", 2800 * KB},
	{"framework.jar@classes.dex", 6200 * KB},
	{"services.jar@classes.dex", 1800 * KB},
	{"ext.jar@classes.dex", 900 * KB},
	{"android.policy.jar@classes.dex", 220 * KB},
	{"core-junit.jar@classes.dex", 40 * KB},
}

// catalogIndex is built lazily over Catalog plus FrameworkDex.
var catalogIndex map[string]Library

func init() {
	catalogIndex = make(map[string]Library, len(Catalog)+len(FrameworkDex))
	for _, l := range Catalog {
		catalogIndex[l.Name] = l
	}
	for _, l := range FrameworkDex {
		catalogIndex[l.Name] = l
	}
}

// Lookup finds a catalog entry by name.
func Lookup(name string) (Library, bool) {
	l, ok := catalogIndex[name]
	return l, ok
}

// BaseSet is the library set every Android process maps (zygote preloads
// these, so every forked process inherits them).
func BaseSet() []string {
	return []string{
		"linker", "libc.so", "libm.so", "libstdc++.so", "liblog.so",
		"libcutils.so", "libutils.so", "libbinder.so", "libz.so",
		"libexpat.so", "libicuuc.so", "libicui18n.so", "libsqlite.so",
		"libdvm.so", "libnativehelper.so", "libandroid_runtime.so",
		"libskia.so", "libui.so", "libsurfaceflinger_client.so",
		"libEGL.so", "libGLESv1_CM.so", "libagl.so", "libpixelflinger.so",
		"libhardware.so", "libmedia.so", "libcamera_client.so",
		"libemoji.so", "libjpeg.so", "libcrypto.so", "libssl.so",
		"libsonivox.so", "libsoundpool.so", "libwebcore.so",
		"libchromium_net.so", "libnetutils.so", "libwpa_client.so",
		"libthread_db.so", "libgabi++.so", "libspeex.so", "libdrm1.so",
		"core.jar@classes.dex", "framework.jar@classes.dex",
		"ext.jar@classes.dex",
	}
}

// SystemServerSet extends the base set with the services the system_server
// process hosts (SurfaceFlinger, sensors, policy).
func SystemServerSet() []string {
	return append(BaseSet(),
		"libsurfaceflinger.so", "libsystem_server.so", "libsensorservice.so",
		"libhardware_legacy.so", "libdbus.so", "libbluetoothd.so", "libgps.so",
		"services.jar@classes.dex", "android.policy.jar@classes.dex",
	)
}

// MediaServerSet extends the base set with the media service stack.
func MediaServerSet() []string {
	return append(BaseSet(),
		"libmediaplayerservice.so", "libstagefright.so",
		"libstagefright_omx.so", "libstagefright_color_conversion.so",
		"libaudioflinger.so", "libvorbisidec.so", "libcameraservice.so",
	)
}

// Image is one mapped library.
type Image struct {
	Lib Library
	VMA *mem.VMA
}

// LinkMap is a process's set of mapped libraries, by name.
type LinkMap struct {
	images map[string]*Image

	// slab backs the Image structs: link maps are rebuilt per fork, and a
	// per-library allocation was a measurable share of scenario allocs.
	slab []Image
}

// newImage hands out a zeroed Image struct from the chunked slab.
func (lm *LinkMap) newImage() *Image {
	if len(lm.slab) == 0 {
		lm.slab = make([]Image, 16)
	}
	img := &lm.slab[0]
	lm.slab = lm.slab[1:]
	return img
}

// Load maps every named library into as (using layout's bump pointer) and
// returns the link map. Unknown names are mapped with a default small
// footprint so app-private libraries ("libdoom.so") need no catalog entry.
func Load(as *mem.AddressSpace, layout *mem.Layout, names []string) *LinkMap {
	lm := &LinkMap{images: make(map[string]*Image, len(names)), slab: make([]Image, len(names))}
	for _, name := range names {
		lm.LoadOne(as, layout, name)
	}
	return lm
}

// LoadOne maps a single library if not already present and returns its image.
func (lm *LinkMap) LoadOne(as *mem.AddressSpace, layout *mem.Layout, name string) *Image {
	if img, ok := lm.images[name]; ok {
		return img
	}
	lib, ok := Lookup(name)
	if !ok {
		lib = Library{Name: name, Size: 160 * KB}
	}
	text, _ := layout.MapLibrary(as, lib.Name, lib.Size, 0)
	img := lm.newImage()
	img.Lib = lib
	img.VMA = text
	lm.images[name] = img
	return img
}

// Rebind builds a link map over an address space that already holds (some
// of) the named mappings — the situation after fork, where the child
// inherited the parent's libraries. Names not yet mapped are loaded.
func Rebind(as *mem.AddressSpace, layout *mem.Layout, names []string) *LinkMap {
	lm := &LinkMap{images: make(map[string]*Image, len(names)), slab: make([]Image, len(names))}
	for _, name := range names {
		if v := as.FindByName(name); v != nil {
			lib, ok := Lookup(name)
			if !ok {
				lib = Library{Name: name, Size: v.Size()}
			}
			img := lm.newImage()
			img.Lib = lib
			img.VMA = v
			lm.images[name] = img
			continue
		}
		lm.LoadOne(as, layout, name)
	}
	return lm
}

// VMA returns the mapping of the named library, panicking when absent —
// a workload model referencing an unmapped library is a bug.
func (lm *LinkMap) VMA(name string) *mem.VMA {
	img, ok := lm.images[name]
	if !ok {
		panic(fmt.Sprintf("loader: library %q not mapped", name))
	}
	return img.VMA
}

// Has reports whether the named library is mapped.
func (lm *LinkMap) Has(name string) bool {
	_, ok := lm.images[name]
	return ok
}

// Names lists mapped library names, sorted for deterministic iteration.
func (lm *LinkMap) Names() []string {
	out := make([]string, 0, len(lm.images))
	for n := range lm.images {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Count reports the number of mapped libraries.
func (lm *LinkMap) Count() int { return len(lm.images) }
