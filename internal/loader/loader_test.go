package loader

import (
	"testing"

	"agave/internal/mem"
	"agave/internal/stats"
)

func newSpace() (*mem.AddressSpace, *mem.Layout) {
	as := mem.NewAddressSpace(stats.NewCollector())
	return as, mem.NewLayout(as, 64*KB, 256*KB)
}

func TestCatalogHasPaperLibraries(t *testing.T) {
	for _, name := range []string{
		"libdvm.so", "libskia.so", "libstagefright.so", "libc.so",
	} {
		if _, ok := Lookup(name); !ok {
			t.Errorf("catalog missing %s (named in the paper's Figure 1)", name)
		}
	}
}

func TestCatalogSizeSupportsRegionCensus(t *testing.T) {
	// The paper's suite-wide census needs >65 instruction regions; the
	// catalog plus runtime/app regions must be able to supply that.
	if len(Catalog) < 55 {
		t.Fatalf("catalog has %d libraries, too few for the region census", len(Catalog))
	}
	if len(FrameworkDex) < 4 {
		t.Fatalf("framework dex set too small: %d", len(FrameworkDex))
	}
}

func TestLoadMapsEverything(t *testing.T) {
	as, layout := newSpace()
	lm := Load(as, layout, BaseSet())
	if lm.Count() != len(BaseSet()) {
		t.Fatalf("mapped %d, want %d", lm.Count(), len(BaseSet()))
	}
	v := lm.VMA("libdvm.so")
	if v == nil || v.Name != "libdvm.so" {
		t.Fatal("libdvm.so not mapped")
	}
	if as.Find(v.Start) != v {
		t.Fatal("mapping not registered in address space")
	}
}

func TestLoadUnknownGetsDefaultFootprint(t *testing.T) {
	as, layout := newSpace()
	lm := Load(as, layout, []string{"libdoom.so"})
	v := lm.VMA("libdoom.so")
	if v.Size() == 0 {
		t.Fatal("unknown library mapped with zero size")
	}
}

func TestLoadOneIdempotent(t *testing.T) {
	as, layout := newSpace()
	lm := Load(as, layout, []string{"libc.so"})
	a := lm.LoadOne(as, layout, "libc.so")
	b := lm.LoadOne(as, layout, "libc.so")
	if a != b {
		t.Fatal("double load created two images")
	}
	if lm.Count() != 1 {
		t.Fatalf("count = %d", lm.Count())
	}
}

func TestVMAPanicsOnMissing(t *testing.T) {
	as, layout := newSpace()
	lm := Load(as, layout, []string{"libc.so"})
	defer func() {
		if recover() == nil {
			t.Fatal("VMA of unmapped library did not panic")
		}
	}()
	lm.VMA("libghost.so")
}

func TestRebindFindsInherited(t *testing.T) {
	as, layout := newSpace()
	Load(as, layout, []string{"libc.so", "libdvm.so"})
	child := as.Clone()
	lm := Rebind(child, layout, []string{"libc.so", "libdvm.so", "libvlccore.so"})
	if lm.Count() != 3 {
		t.Fatalf("rebind mapped %d, want 3", lm.Count())
	}
	// Inherited libraries must resolve to the child's VMAs, not be
	// remapped.
	if lm.VMA("libc.so") != child.FindByName("libc.so") {
		t.Fatal("rebind remapped an inherited library")
	}
	// The new library must actually be mapped in the child.
	if child.FindByName("libvlccore.so") == nil {
		t.Fatal("rebind did not map the new library")
	}
}

func TestNamesSorted(t *testing.T) {
	as, layout := newSpace()
	lm := Load(as, layout, []string{"libz.so", "libc.so", "libm.so"})
	names := lm.Names()
	if len(names) != 3 || names[0] != "libc.so" || names[1] != "libm.so" || names[2] != "libz.so" {
		t.Fatalf("Names() = %v", names)
	}
}

func TestSetsAreLoadable(t *testing.T) {
	for _, set := range [][]string{BaseSet(), SystemServerSet(), MediaServerSet()} {
		as, layout := newSpace()
		lm := Load(as, layout, set)
		if lm.Count() != len(set) {
			t.Fatalf("set of %d mapped %d", len(set), lm.Count())
		}
	}
	if len(SystemServerSet()) <= len(BaseSet()) || len(MediaServerSet()) <= len(BaseSet()) {
		t.Fatal("specialized sets should extend the base set")
	}
}
