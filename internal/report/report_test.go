package report

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"agave/internal/core"
	"agave/internal/fleet"
	"agave/internal/sim"
	"agave/internal/stats"
	"agave/internal/suite"
)

// fakeResult builds a result with a hand-crafted counter matrix.
func fakeResult(name string, isSpec bool, fill func(c *stats.Collector)) *core.Result {
	c := stats.NewCollector()
	fill(c)
	return &core.Result{
		Benchmark: name, IsSPEC: isSpec, Stats: c,
		Processes: 20, Threads: 60,
		CodeRegions: c.RegionCount(stats.IFetch),
		DataRegions: c.RegionCount(stats.DataKinds...),
		Duration:    sim.Second,
	}
}

func twoResults() []*core.Result {
	android := fakeResult("frozenbubble.main", false, func(c *stats.Collector) {
		p := c.Proc("benchmark")
		ss := c.Proc("system_server")
		main := c.Thread("main")
		sf := c.Thread("SurfaceFlinger")
		c.Add(p, main, c.Region("mspace"), stats.IFetch, 60)
		c.Add(p, main, c.Region("libdvm.so"), stats.IFetch, 30)
		c.Add(p, main, c.Region("libweird.so"), stats.IFetch, 10)
		c.Add(ss, sf, c.Region("gralloc-buffer"), stats.DataRead, 50)
		c.Add(ss, sf, c.Region("fb0 (frame buffer)"), stats.DataWrite, 30)
		c.Add(p, main, c.Region("dalvik-heap"), stats.DataRead, 20)
	})
	spec := fakeResult("401.bzip2", true, func(c *stats.Collector) {
		p := c.Proc("benchmark")
		main := c.Thread("main")
		c.Add(p, main, c.Region("app binary"), stats.IFetch, 95)
		c.Add(p, main, c.Region("OS kernel"), stats.IFetch, 5)
		c.Add(p, main, c.Region("heap"), stats.DataRead, 80)
		c.Add(p, main, c.Region("stack"), stats.DataWrite, 20)
	})
	return []*core.Result{android, spec}
}

func TestFig1Fold(t *testing.T) {
	fig := Fig1(twoResults())
	if fig.ID != "fig1" || len(fig.Series) != 2 {
		t.Fatalf("fig = %+v", fig)
	}
	b := fig.Series[0].Breakdown
	if b.Share("mspace") != 0.6 || b.Share("libdvm.so") != 0.3 {
		t.Fatalf("fold shares wrong: %+v", b.Rows)
	}
	// libweird.so is not in the legend: folded into "other (1 items)".
	last := b.Rows[len(b.Rows)-1]
	if !strings.HasPrefix(last.Name, "other (") || last.Count != 10 {
		t.Fatalf("other row = %+v", last)
	}
	// SPEC series: app binary 95%.
	if got := fig.Series[1].Breakdown.Share("app binary"); got != 0.95 {
		t.Fatalf("spec app binary share = %v", got)
	}
}

func TestFig2UsesDataKinds(t *testing.T) {
	fig := Fig2(twoResults())
	b := fig.Series[0].Breakdown
	if b.Share("gralloc-buffer") != 0.5 || b.Share("fb0 (frame buffer)") != 0.3 {
		t.Fatalf("fig2 shares: %+v", b.Rows)
	}
	if b.Share("mspace") != 0 {
		t.Fatal("instruction-only region leaked into fig2")
	}
}

func TestFig3And4Processes(t *testing.T) {
	fig3 := Fig3(twoResults())
	if got := fig3.Series[0].Breakdown.Share("benchmark"); got != 1.0 {
		t.Fatalf("fig3 benchmark share = %v (ifetch all from benchmark)", got)
	}
	fig4 := Fig4(twoResults())
	if got := fig4.Series[0].Breakdown.Share("system_server"); got != 0.8 {
		t.Fatalf("fig4 system_server share = %v", got)
	}
}

func TestTable1ExcludesSPEC(t *testing.T) {
	b := Table1(twoResults())
	if b.Share("SurfaceFlinger") == 0 {
		t.Fatal("Table1 lost SurfaceFlinger")
	}
	// The SPEC result also holds 200 refs under thread "main"; Table1
	// must contain only the Android result's 200.
	if b.Total != 200 {
		t.Fatalf("Table1 total = %d, want 200 (Agave only)", b.Total)
	}
	if got := b.Share("SurfaceFlinger"); got != 0.4 {
		t.Fatalf("SurfaceFlinger share = %v, want 0.4", got)
	}
}

func TestScalarsAndSuiteCounts(t *testing.T) {
	rows := Scalars(twoResults())
	if len(rows) != 2 || rows[0].Benchmark != "frozenbubble.main" || rows[0].Processes != 20 {
		t.Fatalf("scalars = %+v", rows)
	}
	code, data := SuiteRegionCounts(twoResults())
	if code != 3 || data != 3 {
		t.Fatalf("suite counts = %d/%d, want 3/3 (Agave only)", code, data)
	}
}

func TestWriters(t *testing.T) {
	fig := Fig1(twoResults())
	var tbl, csv, bars bytes.Buffer
	WriteTable(&tbl, fig)
	WriteCSV(&csv, fig)
	WriteBars(&bars, fig)
	if !strings.Contains(tbl.String(), "frozenbubble.main") {
		t.Fatal("table missing benchmark row")
	}
	header := strings.SplitN(csv.String(), "\n", 2)[0]
	if !strings.HasPrefix(header, "benchmark,mspace,") || !strings.HasSuffix(header, ",other") {
		t.Fatalf("csv header = %q", header)
	}
	// CSV rows: one per series, shares sum to ~100.
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv has %d lines", len(lines))
	}
	if !strings.Contains(bars.String(), "|") {
		t.Fatal("bars missing bar glyphs")
	}

	var t1 bytes.Buffer
	WriteTable1(&t1, Table1(twoResults()), 6)
	if !strings.Contains(t1.String(), "SurfaceFlinger") {
		t.Fatal("table1 missing SurfaceFlinger")
	}
	var sc bytes.Buffer
	WriteScalars(&sc, Scalars(twoResults()))
	if !strings.Contains(sc.String(), "code regions") {
		t.Fatal("scalars missing header")
	}
}

func TestLegendsMatchPaper(t *testing.T) {
	// Spot-check the verbatim legend entries from the paper's figures.
	has := func(legend []string, name string) bool {
		for _, l := range legend {
			if l == name {
				return true
			}
		}
		return false
	}
	if !has(Fig1Legend, "libcr3engine-3-1-1.so") || !has(Fig1Legend, "dalvik-jit-code-cache") {
		t.Fatal("Fig1 legend missing paper entries")
	}
	if !has(Fig2Legend, "dalvik-LinearAlloc") || !has(Fig2Legend, "fb0 (frame buffer)") {
		t.Fatal("Fig2 legend missing paper entries")
	}
	if !has(Fig3Legend, "ata_sff/0") || !has(Fig3Legend, "dexopt") {
		t.Fatal("Fig3 legend missing paper entries")
	}
	if !has(Fig4Legend, "id.defcontainer") {
		t.Fatal("Fig4 legend missing id.defcontainer")
	}
	if len(Fig1Legend) != 9 || len(Fig2Legend) != 9 || len(Fig3Legend) != 9 || len(Fig4Legend) != 9 {
		t.Fatal("legends must have 9 named entries + other, as in the paper")
	}
}

// fakeOutputs wraps the fake results as suite outputs of a two-benchmark,
// one-seed plan.
func fakeOutputs() (suite.Plan, []suite.RunOutput[*core.Result]) {
	plan := suite.Plan{
		Benchmarks: []string{"frozenbubble.main", "401.bzip2"},
		Seeds:      []uint64{1},
		Ablations:  []suite.Ablation{suite.Baseline},
	}
	specs := plan.Specs()
	rs := twoResults()
	rs[1].Checksum = 0xdead
	outs := make([]suite.RunOutput[*core.Result], len(specs))
	for i, s := range specs {
		outs[i] = suite.RunOutput[*core.Result]{
			Spec: s, Result: rs[i], Wall: 5 * time.Millisecond, Ticks: sim.Second,
		}
	}
	return plan, outs
}

func TestMatrixRows(t *testing.T) {
	_, outs := fakeOutputs()
	rows := MatrixRows(outs)
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	r := rows[0]
	if r.Benchmark != "frozenbubble.main" || r.Seed != 1 || r.Ablation != "base" {
		t.Fatalf("row identity wrong: %+v", r)
	}
	if r.TotalRefs != outs[0].Result.Stats.Total() || r.Fingerprint != outs[0].Result.Stats.Fingerprint() {
		t.Fatalf("row stats wrong: %+v", r)
	}
	if rows[1].Checksum != 0xdead {
		t.Fatalf("SPEC checksum dropped: %+v", rows[1])
	}
	if r.TicksPerSec <= 0 || r.WallMS <= 0 {
		t.Fatalf("row measurements missing: %+v", r)
	}
	// Failed runs are skipped.
	outs[0].Err = errFake
	if got := len(MatrixRows(outs)); got != 1 {
		t.Fatalf("failed run not skipped: %d rows", got)
	}
}

var errFake = fmt.Errorf("fake failure")

func TestWriteMatrixAndSummaries(t *testing.T) {
	_, outs := fakeOutputs()
	var buf bytes.Buffer
	WriteMatrix(&buf, outs)
	out := buf.String()
	if !strings.Contains(out, "frozenbubble.main") || !strings.Contains(out, "401.bzip2") {
		t.Fatalf("matrix missing rows:\n%s", out)
	}
	buf.Reset()
	WriteSummaries(&buf, outs)
	if !strings.Contains(buf.String(), "total refs mean") {
		t.Fatalf("summaries malformed:\n%s", buf.String())
	}
}

func TestWriteSuiteJSONRoundTrip(t *testing.T) {
	plan, outs := fakeOutputs()
	var buf bytes.Buffer
	if err := WriteSuiteJSON(&buf, plan, 4, outs); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	runs, ok := doc["runs"].([]any)
	if !ok || len(runs) != 2 {
		t.Fatalf("JSON runs wrong: %v", doc["runs"])
	}
	sums, ok := doc["summaries"].([]any)
	if !ok || len(sums) != 2 {
		t.Fatalf("JSON summaries wrong: %v", doc["summaries"])
	}
}

func TestFleetLineCanonical(t *testing.T) {
	results := twoResults()
	spec := suite.RunSpec{Index: 3, Benchmark: "frozenbubble.main", Seed: 7, Ablation: suite.Ablation{Name: "nojit"}}
	line := FleetLine(spec, results[0])
	if line.Index != 3 || line.Unit != "frozenbubble.main" || line.Seed != 7 || line.Ablation != "nojit" {
		t.Fatalf("line header wrong: %+v", line)
	}
	if line.Fingerprint != results[0].Stats.Fingerprint() {
		t.Fatal("line fingerprint does not match the run's stats fingerprint")
	}
	for i := 1; i < len(line.Metrics); i++ {
		if line.Metrics[i-1].Name >= line.Metrics[i].Name {
			t.Fatalf("metrics not name-sorted: %+v", line.Metrics)
		}
	}
	// Two calls over the same result encode identically — the map fold
	// never leaks iteration order onto the wire.
	a, err := line.Encode()
	if err != nil {
		t.Fatal(err)
	}
	again := FleetLine(spec, results[0])
	b, err := again.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("line encoding unstable:\n%s\n%s", a, b)
	}
}

func TestWriteFleetReport(t *testing.T) {
	rep := &fleet.Report{
		PlanHash: "abc", Runs: 4, Shards: 2, ShardSize: 2,
		Fingerprint: fleet.Digest{}.Hex(),
		Cells: []*fleet.Cell{
			{Unit: "frozenbubble.main", Ablation: "base", Runs: 4, Metrics: []fleet.MetricAgg{
				{Name: "total_refs", Agg: stats.Agg{N: 4, Sum: 800, MinV: 100, MaxV: 300}},
			}},
		},
	}
	var buf bytes.Buffer
	WriteFleetText(&buf, rep)
	out := buf.String()
	for _, want := range []string{"4 runs in 2 shards of 2", "frozenbubble.main", "200 [100, 300]", "fingerprint: " + fleet.Digest{}.Hex()} {
		if !strings.Contains(out, want) {
			t.Fatalf("fleet text missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := WriteFleetJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	var round fleet.Report
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("invalid fleet JSON: %v\n%s", err, buf.String())
	}
	if round.Fingerprint != rep.Fingerprint || len(round.Cells) != 1 {
		t.Fatalf("fleet JSON round-trip wrong: %+v", round)
	}
}
