package report

import (
	"encoding/json"
	"fmt"
	"io"

	"agave/internal/core"
	"agave/internal/fleet"
	"agave/internal/suite"
)

// FleetLine renders one core run as its fleet wire line: plan index, unit
// name, per-run stats fingerprint, and the suite metrics as a name-sorted
// slice (collected from the metrics map, then sorted — the wire order is
// canonical regardless of map iteration).
func FleetLine(spec suite.RunSpec, r *core.Result) fleet.Line {
	metrics := core.SuiteMetrics(r)
	line := fleet.Line{
		Index:       spec.Index,
		Unit:        spec.UnitName(),
		Seed:        spec.Seed,
		Ablation:    spec.Ablation.Label(),
		Fingerprint: r.Stats.Fingerprint(),
		Metrics:     make([]fleet.Metric, 0, len(metrics)),
	}
	for name, v := range metrics {
		line.Metrics = append(line.Metrics, fleet.Metric{Name: name, Value: v}) //agave:allow maporder collect-then-sort: SortMetrics below fixes the canonical order before anything reads the slice
	}
	line.SortMetrics()
	return line
}

// WriteFleetText renders the fleet report as the operator-facing table: one
// line per (unit, ablation) cell plus the run fingerprint. Everything
// printed derives from the report alone, so serial, fleet, and resumed runs
// print identically.
func WriteFleetText(w io.Writer, r *fleet.Report) {
	fmt.Fprintf(w, "fleet: %d runs in %d shards of %d\n", r.Runs, r.Shards, r.ShardSize)
	fmt.Fprintf(w, "%-28s %-10s %5s %36s\n", "unit", "ablation", "runs", "total refs mean [min, max]")
	for _, c := range r.Cells {
		var refs fmt.Stringer = noRefs{}
		for _, m := range c.Metrics {
			if m.Name == "total_refs" {
				refs = refsAgg{m}
				break
			}
		}
		fmt.Fprintf(w, "%-28s %-10s %5d %36s\n", c.Unit, c.Ablation, c.Runs, refs)
	}
	fmt.Fprintf(w, "fingerprint: %s\n", r.Fingerprint)
}

type noRefs struct{}

func (noRefs) String() string { return "-" }

type refsAgg struct{ m fleet.MetricAgg }

func (r refsAgg) String() string {
	return fmt.Sprintf("%.0f [%.0f, %.0f]", r.m.Agg.Mean(), r.m.Agg.Min(), r.m.Agg.Max())
}

// WriteFleetJSON renders the fleet report as indented canonical JSON — the
// byte-comparable artifact the equivalence and resume tests diff.
func WriteFleetJSON(w io.Writer, r *fleet.Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
