// Scenario-shaped output: per-run rows and per-app attribution for scripted
// multi-app sessions. Unlike the suite matrix, scenario reports carry no
// wall-clock or throughput columns — every field is a pure function of
// (scenario, seed, ablation), so two invocations of the same plan emit
// byte-identical reports regardless of worker count or machine load. That
// property is what lets the CLI's -parallel flag be a pure speed knob.

package report

import (
	"encoding/json"
	"fmt"
	"io"

	"agave/internal/core"
	"agave/internal/scenario"
	"agave/internal/sim"
	"agave/internal/stats"
	"agave/internal/suite"
)

// ScenarioAppRow is one scenario app's attribution within a run, plus —
// when the session injected input — the app's input-delivery outcome.
type ScenarioAppRow struct {
	Name     string  `json:"name"`
	Workload string  `json:"workload"`
	Refs     uint64  `json:"refs"`
	Share    float64 `json:"share"`
	// InputDispatched/InputDropped count the input samples aimed at this
	// app that its main thread handled vs. never saw; the latency fields
	// aggregate end-to-end dispatch latency (injection to handler start)
	// over the dispatched samples, in microseconds of simulated time.
	// All omitted when no input was aimed at the app.
	InputDispatched    int     `json:"input_dispatched,omitempty"`
	InputDropped       int     `json:"input_dropped,omitempty"`
	InputLatencyMeanUS float64 `json:"input_latency_mean_us,omitempty"`
	InputLatencyMaxUS  float64 `json:"input_latency_max_us,omitempty"`
	// ANRs counts Application Not Responding episodes the watchdog raised
	// against this app; omitted when the app never blocked.
	ANRs int `json:"anrs,omitempty"`
}

// ScenarioRow is one completed scenario run, flattened for rendering. All
// fields are deterministic for a (scenario, seed, ablation) triple.
type ScenarioRow struct {
	Scenario string `json:"scenario"`
	// Source is the scenario definition's provenance: omitted for bundled
	// library sessions, "file:<name>" for scenario documents loaded from
	// disk, "gen(...)" for generator output. Provenance never appears in
	// the text matrix, so a file-loaded copy of a bundled scenario renders
	// a byte-identical default report.
	Source        string `json:"source,omitempty"`
	Seed          uint64 `json:"seed"`
	Ablation      string `json:"ablation"`
	Events        int    `json:"events"`
	MaxLiveApps   int    `json:"max_live_apps"`
	TotalRefs     uint64 `json:"total_refs"`
	Processes     int    `json:"processes"`
	LiveProcesses int    `json:"live_processes"`
	Threads       int    `json:"threads"`
	CodeRegions   int    `json:"code_regions"`
	DataRegions   int    `json:"data_regions"`
	// LMKKills/LMKVictims/Trims are the memory-pressure outcome of the
	// session: lowmemorykiller process kills (in kill order) and
	// onTrimMemory callbacks delivered. All deterministic per
	// (scenario, seed, ablation).
	LMKKills   int      `json:"lmk_kills"`
	LMKVictims []string `json:"lmk_victims,omitempty"`
	Trims      int      `json:"trims"`
	// InputEvents/InputDispatched/InputDropped are the session's input
	// totals: samples injected through the InputDispatcher, samples an
	// app's main thread handled, and samples dropped (unfocused, paused,
	// or dead targets, plus anything still in flight at the end).
	// InputEvents == InputDispatched + InputDropped; all deterministic
	// per (scenario, seed, ablation).
	InputEvents     int `json:"input_events"`
	InputDispatched int `json:"input_dispatched"`
	InputDropped    int `json:"input_dropped"`
	// The dependability section: fault events that fired, injected
	// failures some code observed and survived, completed recovery
	// actions, and watchdog-raised ANRs. All deterministic per
	// (scenario, seed, ablation).
	FaultsInjected  int              `json:"faults_injected"`
	FaultsDetected  int              `json:"faults_detected"`
	FaultsRecovered int              `json:"faults_recovered"`
	ANRs            int              `json:"anrs"`
	Fingerprint     uint64           `json:"fingerprint"`
	Apps            []ScenarioAppRow `json:"apps"`
}

// ScenarioRows flattens scenario suite outputs (skipping failed runs and
// non-scenario specs) in plan order. Session-level fields — event count,
// peak live apps, the per-app attribution roster — come from the run's own
// result, so rows describe the session that actually executed (bundled or
// not), never a registry lookup.
func ScenarioRows(outputs []suite.RunOutput[*core.Result]) []ScenarioRow {
	rows := make([]ScenarioRow, 0, len(outputs))
	for _, o := range outputs {
		if o.Err != nil || o.Result == nil || !o.Spec.Scenario {
			continue
		}
		r := o.Result
		row := ScenarioRow{
			Scenario:      r.Benchmark,
			Seed:          o.Spec.Seed,
			Ablation:      o.Spec.Ablation.Label(),
			TotalRefs:     r.Stats.Total(),
			Processes:     r.Processes,
			LiveProcesses: r.LiveProcesses,
			Threads:       r.Threads,
			CodeRegions:   r.CodeRegions,
			DataRegions:   r.DataRegions,
			Fingerprint:   r.Stats.Fingerprint(),
		}
		if s := r.Session; s != nil {
			row.Source = s.Source
			row.Events = s.Events
			row.MaxLiveApps = s.MaxLive
			row.LMKKills = s.LMKKills
			row.LMKVictims = append([]string(nil), s.LMKVictims...)
			row.Trims = s.Trims
			row.InputEvents = s.InputEvents
			row.InputDispatched = s.InputDispatched
			row.InputDropped = s.InputDropped
			row.FaultsInjected = s.FaultsInjected
			row.FaultsDetected = s.FaultsDetected
			row.FaultsRecovered = s.FaultsRecovered
			row.ANRs = s.ANRs
			inputs := make(map[string]scenario.InputAppStats, len(s.InputApps))
			for _, st := range s.InputApps {
				inputs[st.App] = st
			}
			byProc := stats.NewBreakdown(r.Stats.ByProcess())
			for _, app := range s.Apps {
				appRow := ScenarioAppRow{
					Name:     app.Name,
					Workload: app.Workload,
					Refs:     byProc.Count(app.Name),
					Share:    byProc.Share(app.Name),
				}
				if st, ok := inputs[app.Name]; ok {
					appRow.InputDispatched = st.Dispatched
					appRow.InputDropped = st.Dropped
					if st.Dispatched > 0 {
						appRow.InputLatencyMeanUS = float64(st.LatencySum) /
							float64(st.Dispatched) / float64(sim.Microsecond)
						appRow.InputLatencyMaxUS = float64(st.LatencyMax) / float64(sim.Microsecond)
					}
					appRow.ANRs = st.ANRs
				}
				row.Apps = append(row.Apps, appRow)
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// WriteScenarioMatrix renders one line per scenario run plus an indented
// per-app attribution block — the multi-app counterpart of WriteMatrix,
// minus every non-deterministic column.
func WriteScenarioMatrix(w io.Writer, outputs []suite.RunOutput[*core.Result]) {
	fmt.Fprintf(w, "%-20s %6s %-10s %7s %12s %11s %8s %8s %8s %5s %5s %6s %6s %5s %5s %5s %5s\n",
		"scenario", "seed", "ablation", "events", "total refs", "procs", "live", "threads", "regions",
		"lmk", "trims", "indisp", "indrop", "finj", "fdet", "frec", "anrs")
	for _, r := range ScenarioRows(outputs) {
		fmt.Fprintf(w, "%-20s %6d %-10s %7d %12d %11d %8d %8d %8d %5d %5d %6d %6d %5d %5d %5d %5d\n",
			r.Scenario, r.Seed, r.Ablation, r.Events, r.TotalRefs,
			r.Processes, r.LiveProcesses, r.Threads, r.CodeRegions+r.DataRegions,
			r.LMKKills, r.Trims, r.InputDispatched, r.InputDropped,
			r.FaultsInjected, r.FaultsDetected, r.FaultsRecovered, r.ANRs)
		for _, a := range r.Apps {
			fmt.Fprintf(w, "    %-14s %-22s %12d %6.2f%%", a.Name, a.Workload, a.Refs, a.Share*100)
			if a.InputDispatched > 0 || a.InputDropped > 0 {
				fmt.Fprintf(w, "  in=%d drop=%d", a.InputDispatched, a.InputDropped)
				if a.InputDispatched > 0 {
					fmt.Fprintf(w, " lat mean=%.1fus max=%.1fus", a.InputLatencyMeanUS, a.InputLatencyMaxUS)
				}
			}
			if a.ANRs > 0 {
				fmt.Fprintf(w, " anr=%d", a.ANRs)
			}
			fmt.Fprintln(w)
		}
		if len(r.LMKVictims) > 0 {
			fmt.Fprintf(w, "    lmk victims: %v\n", r.LMKVictims)
		}
	}
}

// scenarioPlanJSON is the plan half of a scenario sweep document.
type scenarioPlanJSON struct {
	Scenarios []string `json:"scenarios"`
	Seeds     []uint64 `json:"seeds"`
	Ablations []string `json:"ablations"`
}

// scenarioJSON is the top-level JSON document of a scenario sweep. The
// worker count is deliberately absent: it cannot influence any byte of the
// document.
type scenarioJSON struct {
	Plan scenarioPlanJSON `json:"plan"`
	Runs []ScenarioRow    `json:"runs"`
}

// WriteScenarioJSON emits the scenario sweep as one indented JSON document
// whose bytes depend only on the plan and the seeds.
func WriteScenarioJSON(w io.Writer, p suite.Plan, outputs []suite.RunOutput[*core.Result]) error {
	doc := scenarioJSON{
		Plan: scenarioPlanJSON{Scenarios: p.ScenarioNames(), Seeds: p.Seeds},
		Runs: ScenarioRows(outputs),
	}
	for _, a := range p.Ablations {
		doc.Plan.Ablations = append(doc.Plan.Ablations, a.Label())
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// WriteScenarioList renders the bundled scenario library: name, app count,
// event count, peak concurrently-live apps, and the one-line description.
func WriteScenarioList(w io.Writer, lib []*scenario.Scenario) {
	fmt.Fprintf(w, "%-20s %5s %7s %5s  %s\n", "scenario", "apps", "events", "live", "description")
	for _, s := range lib {
		fmt.Fprintf(w, "%-20s %5d %7d %5d  %s\n",
			s.Name, len(s.Apps), len(s.Timeline), s.MaxLiveApps(), s.Description)
	}
}
