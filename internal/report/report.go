// Package report regenerates the paper's evaluation artifacts from run
// results: Figure 1 (instruction references by VMA region), Figure 2 (data
// references by region), Figure 3 (instruction references by process),
// Figure 4 (data references by process), Table I (threads ranked by share
// of total memory references), and the Section III scalar census. Output
// formats: aligned text tables, CSV, and ASCII stacked bars.
package report

import (
	"fmt"
	"io"
	"strings"

	"agave/internal/core"
	"agave/internal/stats"
)

// The paper's figure legends, verbatim.
var (
	Fig1Legend = []string{
		"mspace", "libdvm.so", "libskia.so", "OS kernel", "app binary",
		"libstagefright.so", "dalvik-jit-code-cache", "libc.so",
		"libcr3engine-3-1-1.so",
	}
	Fig2Legend = []string{
		"anonymous", "heap", "stack", "OS kernel", "gralloc-buffer",
		"dalvik-heap", "fb0 (frame buffer)", "libdvm.so",
		"dalvik-LinearAlloc",
	}
	Fig3Legend = []string{
		"benchmark", "system_server", "mediaserver", "app_process",
		"ata_sff/0", "ndroid.systemui", "ndroid.launcher", "dexopt",
		"swapper",
	}
	Fig4Legend = []string{
		"benchmark", "system_server", "mediaserver", "app_process",
		"ndroid.systemui", "ndroid.launcher", "swapper", "dexopt",
		"id.defcontainer",
	}
)

// Series is one benchmark's folded breakdown (one stacked bar).
type Series struct {
	Benchmark string
	Breakdown stats.Breakdown
}

// Figure is a full paper figure: a legend and one series per benchmark.
type Figure struct {
	ID     string
	Title  string
	Legend []string
	Series []Series
}

// Fig1 builds "Instruction references by VMA region".
func Fig1(results []*core.Result) Figure {
	return buildFigure("fig1", "Instruction references by VMA region", Fig1Legend,
		results, func(r *core.Result) map[string]uint64 {
			return r.Stats.ByRegionInto(nil, stats.InstrSet)
		})
}

// Fig2 builds "Data references by VMA region".
func Fig2(results []*core.Result) Figure {
	return buildFigure("fig2", "Data references by VMA region", Fig2Legend,
		results, func(r *core.Result) map[string]uint64 {
			return r.Stats.ByRegionInto(nil, stats.DataSet)
		})
}

// Fig3 builds "Instruction references by process".
func Fig3(results []*core.Result) Figure {
	return buildFigure("fig3", "Instruction references by process", Fig3Legend,
		results, func(r *core.Result) map[string]uint64 {
			return r.Stats.ByProcessInto(nil, stats.InstrSet)
		})
}

// Fig4 builds "Data references by process".
func Fig4(results []*core.Result) Figure {
	return buildFigure("fig4", "Data references by process", Fig4Legend,
		results, func(r *core.Result) map[string]uint64 {
			return r.Stats.ByProcessInto(nil, stats.DataSet)
		})
}

func buildFigure(id, title string, legend []string, results []*core.Result,
	fold func(*core.Result) map[string]uint64) Figure {
	fig := Figure{ID: id, Title: title, Legend: legend}
	for _, r := range results {
		b := stats.NewBreakdown(fold(r)).Fold(legend)
		fig.Series = append(fig.Series, Series{Benchmark: r.Benchmark, Breakdown: b})
	}
	return fig
}

// Table1 builds the paper's Table I: thread groups ranked by their share of
// total memory references across the Agave suite (SPEC results are
// excluded, as in the paper).
func Table1(results []*core.Result) stats.Breakdown {
	merged := mergeSuite(results)
	return stats.NewBreakdown(merged.ByThreadInto(nil, stats.AllSet))
}

// mergeSuite folds every non-SPEC result into one collector, presized from
// the inputs so the merge never rehashes the counter table.
func mergeSuite(results []*core.Result) *stats.Collector {
	merged := stats.NewCollector()
	cells := 0
	for _, r := range results {
		if !r.IsSPEC {
			cells += r.Stats.Cells()
		}
	}
	merged.Presize(cells)
	for _, r := range results {
		if r.IsSPEC {
			continue
		}
		merged.Merge(r.Stats)
	}
	return merged
}

// ScalarRow is one benchmark's Section-III census line.
type ScalarRow struct {
	Benchmark   string
	CodeRegions int
	DataRegions int
	Processes   int
	Threads     int
}

// Scalars extracts the census table for every result.
func Scalars(results []*core.Result) []ScalarRow {
	out := make([]ScalarRow, 0, len(results))
	for _, r := range results {
		out = append(out, ScalarRow{
			Benchmark:   r.Benchmark,
			CodeRegions: r.CodeRegions,
			DataRegions: r.DataRegions,
			Processes:   r.Processes,
			Threads:     r.Threads,
		})
	}
	return out
}

// SuiteRegionCounts reports the suite-wide distinct instruction and data
// region counts (the paper: "over 65" and "almost 170").
func SuiteRegionCounts(results []*core.Result) (code, data int) {
	merged := mergeSuite(results)
	return merged.RegionCountSet(stats.InstrSet), merged.RegionCountSet(stats.DataSet)
}

// WriteTable renders the figure as an aligned percentage table: one row per
// benchmark, one column per legend entry plus "other".
func WriteTable(w io.Writer, fig Figure) {
	fmt.Fprintf(w, "%s — %s\n", strings.ToUpper(fig.ID), fig.Title)
	cols := append(append([]string{}, fig.Legend...), "other")
	fmt.Fprintf(w, "%-24s", "benchmark")
	for _, c := range cols {
		fmt.Fprintf(w, " %10s", truncate(c, 10))
	}
	fmt.Fprintln(w)
	for _, s := range fig.Series {
		fmt.Fprintf(w, "%-24s", s.Benchmark)
		for _, row := range s.Breakdown.Rows {
			fmt.Fprintf(w, " %9.1f%%", row.Share*100)
		}
		fmt.Fprintln(w)
	}
}

// WriteCSV renders the figure as CSV (percent shares).
func WriteCSV(w io.Writer, fig Figure) {
	cols := append(append([]string{}, fig.Legend...), "other")
	fmt.Fprintf(w, "benchmark,%s\n", strings.Join(cols, ","))
	for _, s := range fig.Series {
		fmt.Fprintf(w, "%s", s.Benchmark)
		for _, row := range s.Breakdown.Rows {
			fmt.Fprintf(w, ",%.3f", row.Share*100)
		}
		fmt.Fprintln(w)
	}
}

// WriteBars renders each benchmark as an ASCII stacked bar (each cell ≈2%).
func WriteBars(w io.Writer, fig Figure) {
	fmt.Fprintf(w, "%s — %s\n", strings.ToUpper(fig.ID), fig.Title)
	glyphs := "ABCDEFGHIJ"
	for i, name := range append(append([]string{}, fig.Legend...), "other") {
		fmt.Fprintf(w, "  %c = %s\n", glyphs[i], name)
	}
	for _, s := range fig.Series {
		var bar strings.Builder
		for i, row := range s.Breakdown.Rows {
			n := int(row.Share*50 + 0.5)
			for j := 0; j < n; j++ {
				bar.WriteByte(glyphs[i])
			}
		}
		fmt.Fprintf(w, "%-24s |%-50s|\n", s.Benchmark, bar.String())
	}
}

// WriteTable1 renders Table I.
func WriteTable1(w io.Writer, b stats.Breakdown, topN int) {
	fmt.Fprintln(w, "TABLE I — Memory references from the most-executed threads")
	fmt.Fprintf(w, "%-20s %s\n", "Thread", "% Total Memory References across Suite")
	for _, row := range b.TopN(topN) {
		fmt.Fprintf(w, "%-20s %.1f\n", row.Name, row.Share*100)
	}
}

// WriteScalars renders the Section-III census.
func WriteScalars(w io.Writer, rows []ScalarRow) {
	fmt.Fprintf(w, "%-24s %12s %12s %10s %8s\n",
		"benchmark", "code regions", "data regions", "processes", "threads")
	for _, r := range rows {
		fmt.Fprintf(w, "%-24s %12d %12d %10d %8d\n",
			r.Benchmark, r.CodeRegions, r.DataRegions, r.Processes, r.Threads)
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
