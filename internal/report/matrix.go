// Matrix-shaped output for suite-engine sweeps: per-run rows for every
// (benchmark, seed, ablation) cell of a plan, mean/min/max summaries across
// seeds, and a JSON export carrying both plus the per-run counter
// fingerprints the determinism harness compares.

package report

import (
	"encoding/json"
	"fmt"
	"io"

	"agave/internal/core"
	"agave/internal/suite"
)

// MatrixRow is one completed run of a plan, flattened for rendering.
type MatrixRow struct {
	Benchmark   string  `json:"benchmark"`
	Seed        uint64  `json:"seed"`
	Ablation    string  `json:"ablation"`
	WallMS      float64 `json:"wall_ms"`
	TicksPerSec float64 `json:"ticks_per_sec"`
	TotalRefs   uint64  `json:"total_refs"`
	Processes   int     `json:"processes"`
	Threads     int     `json:"threads"`
	CodeRegions int     `json:"code_regions"`
	DataRegions int     `json:"data_regions"`
	Checksum    uint64  `json:"checksum,omitempty"`
	Fingerprint uint64  `json:"fingerprint"`
}

// MatrixRows flattens suite outputs (skipping failed runs) in plan order.
func MatrixRows(outputs []suite.RunOutput[*core.Result]) []MatrixRow {
	rows := make([]MatrixRow, 0, len(outputs))
	for _, o := range outputs {
		if o.Err != nil || o.Result == nil {
			continue
		}
		r := o.Result
		rows = append(rows, MatrixRow{
			Benchmark:   o.Spec.UnitName(),
			Seed:        o.Spec.Seed,
			Ablation:    o.Spec.Ablation.Label(),
			WallMS:      float64(o.Wall.Microseconds()) / 1000,
			TicksPerSec: o.TicksPerSecond(),
			TotalRefs:   r.Stats.Total(),
			Processes:   r.Processes,
			Threads:     r.Threads,
			CodeRegions: r.CodeRegions,
			DataRegions: r.DataRegions,
			Checksum:    r.Checksum,
			Fingerprint: r.Stats.Fingerprint(),
		})
	}
	return rows
}

// WriteMatrix renders one line per run of a plan.
func WriteMatrix(w io.Writer, outputs []suite.RunOutput[*core.Result]) {
	fmt.Fprintf(w, "%-24s %6s %-10s %12s %6s %8s %9s %12s\n",
		"benchmark", "seed", "ablation", "total refs", "procs", "threads", "wall ms", "Mticks/s")
	for _, r := range MatrixRows(outputs) {
		fmt.Fprintf(w, "%-24s %6d %-10s %12d %6d %8d %9.1f %12.1f\n",
			r.Benchmark, r.Seed, r.Ablation, r.TotalRefs, r.Processes,
			r.Threads, r.WallMS, r.TicksPerSec/1e6)
	}
}

// aggJSON is the JSON shape of a stats.Agg fold.
type aggJSON struct {
	Mean float64 `json:"mean"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// summaryJSON is the JSON shape of one (benchmark, ablation) summary.
type summaryJSON struct {
	Benchmark   string             `json:"benchmark"`
	Ablation    string             `json:"ablation"`
	Seeds       []uint64           `json:"seeds"`
	WallMS      aggJSON            `json:"wall_ms"`
	TicksPerSec aggJSON            `json:"ticks_per_sec"`
	Metrics     map[string]aggJSON `json:"metrics"`
}

// suiteJSON is the top-level JSON document of a suite sweep.
type suiteJSON struct {
	Plan      planJSON      `json:"plan"`
	Runs      []MatrixRow   `json:"runs"`
	Summaries []summaryJSON `json:"summaries"`
}

type planJSON struct {
	Benchmarks []string `json:"benchmarks"`
	Scenarios  []string `json:"scenarios,omitempty"`
	Seeds      []uint64 `json:"seeds"`
	Ablations  []string `json:"ablations"`
	Parallel   int      `json:"parallel"`
}

// WriteSuiteJSON emits the full sweep — plan, per-run rows, and summaries —
// as one indented JSON document.
func WriteSuiteJSON(w io.Writer, p suite.Plan, parallel int,
	outputs []suite.RunOutput[*core.Result]) error {
	doc := suiteJSON{
		Plan: planJSON{Benchmarks: p.Benchmarks, Scenarios: p.ScenarioNames(),
			Seeds: p.Seeds, Parallel: parallel},
		Runs: MatrixRows(outputs),
	}
	for _, a := range p.Ablations {
		doc.Plan.Ablations = append(doc.Plan.Ablations, a.Label())
	}
	for _, s := range suite.Summarize(outputs, core.SuiteMetrics) {
		sj := summaryJSON{
			Benchmark:   s.Benchmark,
			Ablation:    s.Ablation,
			Seeds:       s.Seeds,
			WallMS:      aggJSON{s.Wall.Mean(), s.Wall.Min(), s.Wall.Max()},
			TicksPerSec: aggJSON{s.Throughput.Mean(), s.Throughput.Min(), s.Throughput.Max()},
			Metrics:     make(map[string]aggJSON, len(s.Metrics)),
		}
		for _, name := range s.MetricNames() {
			a := s.Metrics[name]
			sj.Metrics[name] = aggJSON{a.Mean(), a.Min(), a.Max()}
		}
		doc.Summaries = append(doc.Summaries, sj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// WriteSummaries renders the mean/min/max fold of a sweep: one line per
// (benchmark, ablation) cell, aggregated across that cell's seeds.
func WriteSummaries(w io.Writer, outputs []suite.RunOutput[*core.Result]) {
	summaries := suite.Summarize(outputs, core.SuiteMetrics)
	fmt.Fprintf(w, "%-24s %-10s %5s %36s %22s\n",
		"benchmark", "ablation", "seeds", "total refs mean [min, max]", "wall ms mean")
	for _, s := range summaries {
		refs := s.Metrics["total_refs"]
		fmt.Fprintf(w, "%-24s %-10s %5d %20.0f [%.0f, %.0f] %15.1f\n",
			s.Benchmark, s.Ablation, len(s.Seeds), refs.Mean(), refs.Min(), refs.Max(),
			s.Wall.Mean())
	}
}
