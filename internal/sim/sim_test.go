package sim

import (
	"testing"
	"testing/quick"
)

func TestClockAdvance(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("zero clock reads %d, want 0", c.Now())
	}
	c.Advance(5 * Millisecond)
	if got := c.Now(); got != 5*Millisecond {
		t.Fatalf("Now = %d, want %d", got, 5*Millisecond)
	}
	c.Set(7 * Millisecond)
	if got := c.Now(); got != 7*Millisecond {
		t.Fatalf("Now = %d, want %d", got, 7*Millisecond)
	}
}

func TestClockBackwardsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Set to the past did not panic")
		}
	}()
	var c Clock
	c.Advance(10)
	c.Set(5)
}

func TestTickUnits(t *testing.T) {
	if Second != 1000*Millisecond || Millisecond != 1000*Microsecond || Microsecond != 1000*Nanosecond {
		t.Fatal("tick unit ratios are wrong")
	}
}

func TestTimerQueueOrder(t *testing.T) {
	var q TimerQueue
	var fired []int
	q.Schedule(30, func(Ticks) { fired = append(fired, 3) })
	q.Schedule(10, func(Ticks) { fired = append(fired, 1) })
	q.Schedule(20, func(Ticks) { fired = append(fired, 2) })
	if n := q.FireDue(25); n != 2 {
		t.Fatalf("FireDue(25) fired %d, want 2", n)
	}
	if len(fired) != 2 || fired[0] != 1 || fired[1] != 2 {
		t.Fatalf("fired order %v, want [1 2]", fired)
	}
	q.FireDue(100)
	if len(fired) != 3 || fired[2] != 3 {
		t.Fatalf("fired %v, want [1 2 3]", fired)
	}
}

func TestTimerQueueTieBreakIsFIFO(t *testing.T) {
	var q TimerQueue
	var fired []int
	for i := 0; i < 10; i++ {
		i := i
		q.Schedule(5, func(Ticks) { fired = append(fired, i) })
	}
	q.FireDue(5)
	for i, v := range fired {
		if v != i {
			t.Fatalf("tie-broken order %v not FIFO", fired)
		}
	}
}

func TestTimerCancel(t *testing.T) {
	var q TimerQueue
	fired := false
	tm := q.Schedule(10, func(Ticks) { fired = true })
	q.Cancel(tm)
	q.FireDue(100)
	if fired {
		t.Fatal("cancelled timer fired")
	}
	q.Cancel(tm) // double-cancel is a no-op
	q.Cancel(nil)
}

func TestTimerRescheduleDuringFire(t *testing.T) {
	var q TimerQueue
	count := 0
	var fire func(Ticks)
	fire = func(now Ticks) {
		count++
		if count < 3 {
			q.Schedule(now, fire) // already due: fires in the same call
		}
	}
	q.Schedule(1, fire)
	if n := q.FireDue(1); n != 3 {
		t.Fatalf("FireDue fired %d, want 3 (chained)", n)
	}
}

func TestNextDeadline(t *testing.T) {
	var q TimerQueue
	if _, ok := q.NextDeadline(); ok {
		t.Fatal("empty queue reported a deadline")
	}
	q.Schedule(42, func(Ticks) {})
	if when, ok := q.NextDeadline(); !ok || when != 42 {
		t.Fatalf("NextDeadline = %d,%v want 42,true", when, ok)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	if NewRNG(7).Uint64() == NewRNG(8).Uint64() {
		t.Fatal("different seeds produced identical first draw")
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed degenerated")
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		if v := r.Intn(17); v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d out of range", v)
		}
	}
}

func TestRNGRangeProperty(t *testing.T) {
	r := NewRNG(11)
	f := func(lo int8, span uint8) bool {
		l, h := int(lo), int(lo)+int(span)
		v := r.Range(l, h)
		return v >= l && v <= h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 10000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestRNGForkIndependence(t *testing.T) {
	a := NewRNG(9)
	c1 := a.Fork()
	c2 := a.Fork()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling forks produced identical streams")
	}
	// Reproducibility: same parent seed, same fork order, same children.
	b := NewRNG(9)
	d1 := b.Fork()
	if c1.state == 0 || d1.Uint64() == 0 {
		t.Log("state sanity")
	}
}
