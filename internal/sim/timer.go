package sim

import "container/heap"

// Timer is a pending callback registered with a TimerQueue.
type Timer struct {
	// When is the deadline in simulated ticks.
	When Ticks
	// Fire is invoked when the deadline is reached. It runs on the
	// simulation loop; it must not block.
	Fire func(now Ticks)
	// Target, when non-nil, receives the firing instead of Fire. Long-lived
	// owners of embedded timers (the scheduler's per-thread sleep timer) set
	// it once so arming the timer never allocates a closure.
	Target TimerTarget

	index int // heap index; -1 when not queued
	seq   uint64
}

// TimerTarget is the closure-free delivery interface for Timer: a timer with
// a Target fires by calling TimerFired on it.
type TimerTarget interface {
	TimerFired(now Ticks)
}

// TimerQueue is a deterministic priority queue of timers. Ties on deadline
// fire in registration order, which keeps runs reproducible.
type TimerQueue struct {
	h   timerHeap
	seq uint64
}

// Schedule registers fire to run at deadline when. It returns the timer so
// the caller may cancel it.
func (q *TimerQueue) Schedule(when Ticks, fire func(now Ticks)) *Timer {
	t := &Timer{When: when, Fire: fire, seq: q.seq}
	q.seq++
	heap.Push(&q.h, t)
	return t
}

// ScheduleTimer enqueues a caller-owned timer whose When and Fire fields are
// already set. It exists so hot paths (the scheduler's per-sleep wakeups) can
// reuse one Timer struct instead of allocating per Schedule call; the caller
// must not touch t again until it has fired or been cancelled.
func (q *TimerQueue) ScheduleTimer(t *Timer) {
	t.seq = q.seq
	q.seq++
	heap.Push(&q.h, t)
}

// Cancel removes t from the queue. Cancelling an already-fired or
// already-cancelled timer is a no-op.
func (q *TimerQueue) Cancel(t *Timer) {
	if t == nil || t.index < 0 {
		return
	}
	heap.Remove(&q.h, t.index)
}

// Len reports the number of pending timers.
func (q *TimerQueue) Len() int { return len(q.h) }

// NextDeadline reports the earliest pending deadline. ok is false when the
// queue is empty.
func (q *TimerQueue) NextDeadline() (when Ticks, ok bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	return q.h[0].When, true
}

// FireDue pops and fires every timer with deadline ≤ now, in deadline order.
// It returns the number of timers fired. Callbacks may schedule new timers;
// newly scheduled timers that are already due fire in the same call.
func (q *TimerQueue) FireDue(now Ticks) int {
	n := 0
	for len(q.h) > 0 && q.h[0].When <= now {
		t := heap.Pop(&q.h).(*Timer)
		if t.Target != nil {
			t.Target.TimerFired(now)
		} else {
			t.Fire(now)
		}
		n++
	}
	return n
}

type timerHeap []*Timer

func (h timerHeap) Len() int { return len(h) }

func (h timerHeap) Less(i, j int) bool {
	if h[i].When != h[j].When {
		return h[i].When < h[j].When
	}
	return h[i].seq < h[j].seq
}

func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *timerHeap) Push(x any) {
	t := x.(*Timer)
	t.index = len(*h)
	*h = append(*h, t)
}

func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*h = old[:n-1]
	return t
}
