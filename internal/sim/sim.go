// Package sim provides the deterministic simulation substrate shared by the
// rest of the Agave reproduction: a virtual clock measured in ticks, a timer
// queue, and a seedable pseudo-random source.
//
// One tick corresponds to one simulated CPU cycle of the atomic CPU model
// (one instruction per tick, mirroring gem5's AtomicSimpleCPU as used by the
// paper). At the nominal 1 GHz clock, 1 tick = 1 ns of simulated time.
package sim

// Ticks is a point in, or span of, simulated time. One tick is one atomic-CPU
// instruction slot (1 ns at the nominal 1 GHz clock).
type Ticks uint64

// Common spans at the nominal 1 GHz simulated clock.
const (
	Nanosecond  Ticks = 1
	Microsecond Ticks = 1e3
	Millisecond Ticks = 1e6
	Second      Ticks = 1e9
)

// Clock is the simulated wall clock. The zero value reads zero ticks.
type Clock struct {
	now Ticks
}

// Now reports the current simulated time.
func (c *Clock) Now() Ticks { return c.now }

// Advance moves the clock forward by d ticks.
func (c *Clock) Advance(d Ticks) { c.now += d }

// Set jumps the clock to t. It panics if t is in the past: simulated time is
// monotonic by construction.
func (c *Clock) Set(t Ticks) {
	if t < c.now {
		panic("sim: clock moved backwards")
	}
	c.now = t
}
