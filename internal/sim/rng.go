package sim

// RNG is a small, fast, deterministic pseudo-random source
// (xorshift64-star). Every stochastic decision in the simulator draws from a
// seeded RNG so runs are bit-reproducible.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. A zero seed is remapped to a
// fixed non-zero constant (xorshift has an all-zero fixed point).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Intn returns a value uniform in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Range returns a value uniform in [lo, hi]. It panics if hi < lo.
func (r *RNG) Range(lo, hi int) int {
	if hi < lo {
		panic("sim: Range with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Float64 returns a value uniform in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Fork derives an independent child generator. Children produced in the same
// order always receive the same seeds.
func (r *RNG) Fork() *RNG { return NewRNG(r.Uint64()) }
