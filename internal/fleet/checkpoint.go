package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// checkpointFormat names the journal wire format; bump on incompatible
// changes so stale journals fail loudly instead of misparsing.
const checkpointFormat = "agave-fleet-checkpoint/1"

// Header is the checkpoint journal's first line: it pins the job identity
// (plan_hash) and shard geometry (runs, shards, shard_size) so a journal
// can never resume a different plan or a re-sharded one.
type Header struct {
	Format    string `json:"format"`
	PlanHash  string `json:"plan_hash"`
	Runs      int    `json:"runs"`
	Shards    int    `json:"shards"`
	ShardSize int    `json:"shard_size"`
}

// Checkpoint is an open journal: one header line followed by one
// ShardResult record per completed shard, each appended and fsynced as the
// shard seals, so a SIGKILL loses at most the in-flight shards.
type Checkpoint struct {
	path string
	f    *os.File
}

// CreateCheckpoint starts a fresh journal at path, truncating any previous
// file, and writes the header.
func CreateCheckpoint(path string, h Header) (*Checkpoint, error) {
	h.Format = checkpointFormat
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("checkpoint %s: %w", path, err)
	}
	c := &Checkpoint{path: path, f: f}
	if err := c.appendJSON(h); err != nil {
		f.Close()
		return nil, err
	}
	return c, nil
}

// OpenCheckpoint resumes the journal at path: it validates the header
// against want (Format is filled in here), parses every completed-shard
// record, and reopens the file for appending. A torn final line — one with
// no trailing newline, the signature of a SIGKILL mid-append — is dropped
// silently; that shard simply reruns. Any other unparsable content is a
// hard error: the journal is corrupt and resuming it would silently skip
// work.
func OpenCheckpoint(path string, want Header) ([]*ShardResult, *Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, fmt.Errorf("checkpoint %s: %w", path, err)
	}
	want.Format = checkpointFormat
	lines := bytes.Split(data, []byte("\n"))
	// A well-formed journal ends with a newline, leaving one empty
	// trailing element; anything else on the last element is a torn write.
	torn := len(lines) > 0 && len(lines[len(lines)-1]) > 0
	if torn {
		lines = lines[:len(lines)-1]
	} else if len(lines) > 0 {
		lines = lines[:len(lines)-1] // drop the empty element after the final newline
	}
	if len(lines) == 0 {
		return nil, nil, fmt.Errorf("checkpoint %s: corrupt header: empty file", path)
	}
	var h Header
	if err := json.Unmarshal(lines[0], &h); err != nil {
		return nil, nil, fmt.Errorf("checkpoint %s: corrupt header: %v", path, err)
	}
	if h.Format != want.Format {
		return nil, nil, fmt.Errorf("checkpoint %s: unknown format %q (want %q)", path, h.Format, want.Format)
	}
	if h.PlanHash != want.PlanHash {
		return nil, nil, fmt.Errorf("checkpoint %s: stale plan hash %s (current plan is %s); the checkpoint belongs to a different plan — delete it or rerun that plan", path, h.PlanHash, want.PlanHash)
	}
	if h.Runs != want.Runs || h.Shards != want.Shards || h.ShardSize != want.ShardSize {
		return nil, nil, fmt.Errorf("checkpoint %s: shard geometry mismatch: journal has %d runs in %d shards of %d, plan has %d runs in %d shards of %d", path, h.Runs, h.Shards, h.ShardSize, want.Runs, want.Shards, want.ShardSize)
	}
	var partials []*ShardResult
	seen := make(map[int]bool)
	for i, line := range lines[1:] {
		p := new(ShardResult)
		if err := json.Unmarshal(line, p); err != nil {
			return nil, nil, fmt.Errorf("checkpoint %s: corrupt record at line %d: %v", path, i+2, err)
		}
		if p.Shard < 0 || p.Shard >= h.Shards {
			return nil, nil, fmt.Errorf("checkpoint %s: corrupt record at line %d: shard %d out of range", path, i+2, p.Shard)
		}
		if seen[p.Shard] {
			return nil, nil, fmt.Errorf("checkpoint %s: corrupt record at line %d: shard %d recorded twice", path, i+2, p.Shard)
		}
		seen[p.Shard] = true
		partials = append(partials, p)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("checkpoint %s: %w", path, err)
	}
	if torn {
		// Truncate the torn tail so the next append starts on a clean
		// line boundary.
		keep := int64(bytes.LastIndexByte(data, '\n') + 1)
		if err := f.Truncate(keep); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("checkpoint %s: %w", path, err)
		}
	}
	return partials, &Checkpoint{path: path, f: f}, nil
}

// Append journals one completed shard and syncs it to disk.
func (c *Checkpoint) Append(p *ShardResult) error {
	return c.appendJSON(p)
}

func (c *Checkpoint) appendJSON(v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("checkpoint %s: %w", c.path, err)
	}
	if _, err := c.f.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("checkpoint %s: %w", c.path, err)
	}
	if err := c.f.Sync(); err != nil {
		return fmt.Errorf("checkpoint %s: %w", c.path, err)
	}
	return nil
}

// Close closes the journal file.
func (c *Checkpoint) Close() error { return c.f.Close() }
