package fleet

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"agave/internal/suite"
)

// Envelope is what a worker subprocess reads from stdin: the full job spec,
// the coordinator's hash of it, and the one shard to execute. The worker
// recomputes the hash and refuses a mismatch — a worker must never run
// specs the coordinator will attribute to a different plan.
type Envelope struct {
	PlanHash string `json:"plan_hash"`
	Shard    int    `json:"shard"`
	Spec     Spec   `json:"spec"`
}

// Trailer is the worker's final stdout line, after its result lines: it
// pins the shard's line count and digest so the coordinator detects a
// truncated or duplicated stream even when every individual line parsed.
type Trailer struct {
	Done   bool   `json:"done"`
	Shard  int    `json:"shard"`
	Lines  int    `json:"lines"`
	Digest string `json:"digest"`
}

// RunFunc executes one spec under the opaque engine config and returns its
// result line (Index, metrics, and fingerprint filled in; metrics sorted).
type RunFunc func(cfg json.RawMessage, spec suite.RunSpec) (Line, error)

// RunWorker is the worker-mode entry point: it decodes the shard envelope
// from stdin, executes the shard's specs serially in plan order via run,
// and streams one canonical JSON line per spec plus the trailer to stdout.
// Any error aborts the stream — the coordinator sees a non-zero exit and a
// missing trailer, never a silently short shard.
func RunWorker(stdin io.Reader, stdout io.Writer, run RunFunc) error {
	var env Envelope
	dec := json.NewDecoder(stdin)
	if err := dec.Decode(&env); err != nil {
		return fmt.Errorf("fleet worker: decode envelope: %w", err)
	}
	hash, err := env.Spec.Hash()
	if err != nil {
		return err
	}
	if hash != env.PlanHash {
		return fmt.Errorf("fleet worker: envelope plan hash %s does not match spec hash %s", env.PlanHash, hash)
	}
	plan, err := env.Spec.Plan.SuitePlan()
	if err != nil {
		return err
	}
	specs := plan.Specs()
	total := len(specs)
	if env.Shard < 0 || env.Shard >= suite.NumShards(total, env.Spec.ShardSize) {
		return fmt.Errorf("fleet worker: shard %d out of range (plan has %d shards)", env.Shard, suite.NumShards(total, env.Spec.ShardSize))
	}
	lo, hi := suite.ShardRange(total, env.Spec.ShardSize, env.Shard)

	out := bufio.NewWriter(stdout)
	var digest Digest
	for _, spec := range specs[lo:hi] {
		line, err := run(env.Spec.Config, spec)
		if err != nil {
			return fmt.Errorf("fleet worker: shard %d: %s: %w", env.Shard, spec, err)
		}
		if line.Index != spec.Index {
			return fmt.Errorf("fleet worker: shard %d: run returned index %d for spec %d", env.Shard, line.Index, spec.Index)
		}
		raw, err := line.Encode()
		if err != nil {
			return fmt.Errorf("fleet worker: shard %d: encode line %d: %w", env.Shard, spec.Index, err)
		}
		digest.AddLine(raw)
		if _, err := out.Write(append(raw, '\n')); err != nil {
			return fmt.Errorf("fleet worker: shard %d: write line: %w", env.Shard, err)
		}
	}
	trailer, err := json.Marshal(Trailer{Done: true, Shard: env.Shard, Lines: hi - lo, Digest: digest.Hex()})
	if err != nil {
		return fmt.Errorf("fleet worker: shard %d: encode trailer: %w", env.Shard, err)
	}
	if _, err := out.Write(append(trailer, '\n')); err != nil {
		return fmt.Errorf("fleet worker: shard %d: write trailer: %w", env.Shard, err)
	}
	return out.Flush()
}
