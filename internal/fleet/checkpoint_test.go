package fleet

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeCheckpoint(t *testing.T, lines ...string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "fleet.ckpt")
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func header(hash string) string {
	return fmt.Sprintf(`{"format":"agave-fleet-checkpoint/1","plan_hash":%q,"runs":24,"shards":5,"shard_size":5}`+"\n", hash)
}

func wantHeader(hash string) Header {
	return Header{PlanHash: hash, Runs: 24, Shards: 5, ShardSize: 5}
}

const goodRecord = `{"shard":0,"lines":5,"digest":"` +
	"0000000000000000000000000000000000000000000000000000000000000000" + `","cells":[]}` + "\n"

// TestCheckpointStalePlanHash pins the exact stale-hash error text: an
// operator resuming against the wrong plan must be told what happened and
// what to do.
func TestCheckpointStalePlanHash(t *testing.T) {
	path := writeCheckpoint(t, header("aaaa"))
	_, _, err := OpenCheckpoint(path, wantHeader("bbbb"))
	if err == nil {
		t.Fatal("stale plan hash accepted")
	}
	want := fmt.Sprintf("checkpoint %s: stale plan hash aaaa (current plan is bbbb); the checkpoint belongs to a different plan — delete it or rerun that plan", path)
	if err.Error() != want {
		t.Fatalf("error = %q\nwant    %q", err, want)
	}
}

// TestCheckpointCorrupt pins the corrupt-header and corrupt-record error
// prefixes.
func TestCheckpointCorrupt(t *testing.T) {
	path := writeCheckpoint(t, "not json\n")
	_, _, err := OpenCheckpoint(path, wantHeader("h"))
	if err == nil || !strings.HasPrefix(err.Error(), fmt.Sprintf("checkpoint %s: corrupt header:", path)) {
		t.Fatalf("corrupt header error = %v", err)
	}

	path = writeCheckpoint(t, header("h"), "garbage record\n")
	_, _, err = OpenCheckpoint(path, wantHeader("h"))
	if err == nil || !strings.HasPrefix(err.Error(), fmt.Sprintf("checkpoint %s: corrupt record at line 2:", path)) {
		t.Fatalf("corrupt record error = %v", err)
	}

	path = writeCheckpoint(t, header("h"), goodRecord, goodRecord)
	_, _, err = OpenCheckpoint(path, wantHeader("h"))
	if err == nil || !strings.Contains(err.Error(), "shard 0 recorded twice") {
		t.Fatalf("duplicate record error = %v", err)
	}

	path = writeCheckpoint(t, header("h"), `{"shard":9,"lines":5,"digest":"00","cells":[]}`+"\n")
	_, _, err = OpenCheckpoint(path, wantHeader("h"))
	if err == nil || !strings.Contains(err.Error(), "shard 9 out of range") {
		t.Fatalf("out-of-range record error = %v", err)
	}
}

// TestCheckpointTornTailTolerated pins crash-safety: a final line without a
// trailing newline is the signature of a SIGKILL mid-append, so it is
// dropped (the shard reruns) rather than poisoning the journal, and the
// next append lands on a clean line boundary.
func TestCheckpointTornTailTolerated(t *testing.T) {
	path := writeCheckpoint(t, header("h"), goodRecord, `{"shard":1,"lines":5,"dig`)
	partials, cp, err := OpenCheckpoint(path, wantHeader("h"))
	if err != nil {
		t.Fatal(err)
	}
	defer cp.Close()
	if len(partials) != 1 || partials[0].Shard != 0 {
		t.Fatalf("partials = %+v, want only shard 0", partials)
	}
	if err := cp.Append(&ShardResult{Shard: 1, Lines: 5, Digest: Digest{}.Hex()}); err != nil {
		t.Fatal(err)
	}
	// Reopen: the torn tail must be gone and the new record intact.
	partials, cp2, err := OpenCheckpoint(path, wantHeader("h"))
	if err != nil {
		t.Fatal(err)
	}
	defer cp2.Close()
	if len(partials) != 2 || partials[1].Shard != 1 {
		t.Fatalf("after truncate+append, partials = %+v", partials)
	}
}

func TestCheckpointGeometryMismatch(t *testing.T) {
	path := writeCheckpoint(t, header("h"))
	want := wantHeader("h")
	want.ShardSize = 3
	want.Shards = 8
	_, _, err := OpenCheckpoint(path, want)
	if err == nil || !strings.Contains(err.Error(), "shard geometry mismatch") {
		t.Fatalf("geometry mismatch error = %v", err)
	}
}
