package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"agave/internal/stats"
	"agave/internal/suite"
)

// Digest is a multiset hash over result lines: the four 64-bit big-endian
// limbs of each line's SHA-256, summed limb-wise mod 2^64. Addition
// commutes, so the digest is independent of arrival order and of shard
// geometry — the fingerprint of a fleet run is bit-identical to the serial
// run's no matter how the lines were grouped or interleaved — while staying
// O(1) memory. It is still a faithful commitment to the ordered result
// stream because every line embeds its plan index: equal digests mean equal
// line multisets, and the indices order the multiset uniquely.
type Digest [4]uint64

// AddLine folds one canonical wire line (without its newline) into the digest.
func (d *Digest) AddLine(line []byte) {
	sum := sha256.Sum256(line)
	for i := range d {
		d[i] += binary.BigEndian.Uint64(sum[i*8:])
	}
}

// Merge folds another digest into d (multiset union).
func (d *Digest) Merge(other Digest) {
	for i := range d {
		d[i] += other[i]
	}
}

// Hex renders the digest as 64 hex digits, big-endian limb order.
func (d Digest) Hex() string {
	var buf [32]byte
	for i, limb := range d {
		binary.BigEndian.PutUint64(buf[i*8:], limb)
	}
	return hex.EncodeToString(buf[:])
}

// ParseDigest parses the Hex form back into a digest.
func ParseDigest(s string) (Digest, error) {
	raw, err := hex.DecodeString(s)
	if err != nil || len(raw) != 32 {
		return Digest{}, fmt.Errorf("fleet: bad digest %q", s)
	}
	var d Digest
	for i := range d {
		d[i] = binary.BigEndian.Uint64(raw[i*8:])
	}
	return d, nil
}

// MetricAgg is one named metric aggregate in a cell. The wire form is flat
// — {"name","n","sum","min","max"} — so the checkpoint and report formats
// don't leak the stats package's field names.
type MetricAgg struct {
	Name string
	Agg  stats.Agg
}

type metricAggWire struct {
	Name string  `json:"name"`
	N    int     `json:"n"`
	Sum  float64 `json:"sum"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// MarshalJSON renders the flat wire shape.
func (m MetricAgg) MarshalJSON() ([]byte, error) {
	return json.Marshal(metricAggWire{m.Name, m.Agg.N, m.Agg.Sum, m.Agg.MinV, m.Agg.MaxV})
}

// UnmarshalJSON parses the flat wire shape.
func (m *MetricAgg) UnmarshalJSON(data []byte) error {
	var w metricAggWire
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*m = MetricAgg{w.Name, stats.Agg{N: w.N, Sum: w.Sum, MinV: w.Min, MaxV: w.Max}}
	return nil
}

// Cell is one (unit, ablation) summary: running aggregates over every seed
// that ran it, metrics in name order.
type Cell struct {
	Unit     string      `json:"unit"`
	Ablation string      `json:"ablation"`
	Runs     int         `json:"runs"`
	Metrics  []MetricAgg `json:"metrics"`
}

func (c *Cell) observe(metrics []Metric) {
	c.Runs++
	for _, m := range metrics {
		i := sort.Search(len(c.Metrics), func(i int) bool { return c.Metrics[i].Name >= m.Name })
		if i < len(c.Metrics) && c.Metrics[i].Name == m.Name {
			c.Metrics[i].Agg.Observe(m.Value)
			continue
		}
		c.Metrics = append(c.Metrics, MetricAgg{})
		copy(c.Metrics[i+1:], c.Metrics[i:])
		c.Metrics[i] = MetricAgg{Name: m.Name}
		c.Metrics[i].Agg.Observe(m.Value)
	}
}

func (c *Cell) merge(other *Cell) {
	c.Runs += other.Runs
	for _, m := range other.Metrics {
		i := sort.Search(len(c.Metrics), func(i int) bool { return c.Metrics[i].Name >= m.Name })
		if i < len(c.Metrics) && c.Metrics[i].Name == m.Name {
			c.Metrics[i].Agg.Merge(m.Agg)
			continue
		}
		c.Metrics = append(c.Metrics, MetricAgg{})
		copy(c.Metrics[i+1:], c.Metrics[i:])
		c.Metrics[i] = m
	}
}

// ShardResult is a completed shard's partial state: its line count, digest,
// and per-cell aggregates. It is what workers summarize, what the
// checkpoint journals, and what the ordered merge consumes — never the
// lines themselves.
type ShardResult struct {
	Shard  int     `json:"shard"`
	Lines  int     `json:"lines"`
	Digest string  `json:"digest"`
	Cells  []*Cell `json:"cells"`
}

// Report is the fleet run's final summary. It deliberately carries nothing
// execution-dependent — no worker count, no resumed-shard tally, no wall
// time — so the JSON of a cold 8-worker fleet, a resumed fleet, and a
// serial run are byte-identical.
type Report struct {
	PlanHash    string  `json:"plan_hash"`
	Runs        int     `json:"runs"`
	Shards      int     `json:"shards"`
	ShardSize   int     `json:"shard_size"`
	Fingerprint string  `json:"fingerprint"`
	Cells       []*Cell `json:"cells"`
}

type cellKey struct {
	unit     string
	ablation string
}

// shardFold is the in-flight state of one shard: lines fold into per-cell
// partials local to the shard so the global merge can stay shard-ordered.
type shardFold struct {
	lines   int
	digest  Digest
	cells   []*Cell
	cellIdx map[cellKey]int
}

func (f *shardFold) cell(unit, ablation string) *Cell {
	if i, ok := f.cellIdx[cellKey{unit, ablation}]; ok {
		return f.cells[i]
	}
	c := &Cell{Unit: unit, Ablation: ablation}
	f.cellIdx[cellKey{unit, ablation}] = len(f.cells)
	f.cells = append(f.cells, c)
	return c
}

func (f *shardFold) result(shard int) *ShardResult {
	return &ShardResult{Shard: shard, Lines: f.lines, Digest: f.digest.Hex(), Cells: f.cells}
}

// Aggregator folds a fleet's result stream into the final report with
// memory proportional to shards in flight, never to total lines. Observe
// accepts lines from any shard in any interleaving; FinishShard seals a
// shard's partial. The fingerprint digest updates on every line
// (order-free); the float cell aggregates merge only when the next shard in
// id order is sealed, so their fold tree matches the serial run exactly.
type Aggregator struct {
	total     int
	shardSize int
	shards    int
	planHash  string

	open    map[int]*shardFold
	pending map[int]*ShardResult
	next    int

	digest  Digest
	cells   []*Cell
	cellIdx map[cellKey]int
	runs    int
	done    int
}

// NewAggregator builds an aggregator for a plan of total specs, sharded at
// shardSize, under the given spec hash.
func NewAggregator(total, shardSize int, planHash string) *Aggregator {
	return &Aggregator{
		total:     total,
		shardSize: shardSize,
		shards:    suite.NumShards(total, shardSize),
		planHash:  planHash,
		open:      make(map[int]*shardFold),
		pending:   make(map[int]*ShardResult),
		cellIdx:   make(map[cellKey]int),
	}
}

// Observe folds one result line into the given shard. raw is the line's
// canonical wire bytes (no newline); line is its parsed form — the caller
// decodes once and lends both, so a warmed aggregator observes without
// allocating. Lines must arrive in plan order within their shard.
func (a *Aggregator) Observe(shard int, raw []byte, line *Line) error {
	if shard < 0 || shard >= a.shards {
		return fmt.Errorf("fleet: shard %d out of range (plan has %d shards)", shard, a.shards)
	}
	f, ok := a.open[shard]
	if !ok {
		if a.Restored(shard) {
			return fmt.Errorf("fleet: shard %d already finished", shard)
		}
		f = &shardFold{cellIdx: make(map[cellKey]int)}
		a.open[shard] = f
	}
	lo, hi := suite.ShardRange(a.total, a.shardSize, shard)
	want := lo + f.lines
	if line.Index != want {
		return fmt.Errorf("fleet: shard %d: line index %d out of order (want %d)", shard, line.Index, want)
	}
	if line.Index >= hi {
		return fmt.Errorf("fleet: shard %d: line index %d beyond shard range [%d,%d)", shard, line.Index, lo, hi)
	}
	f.lines++
	f.digest.AddLine(raw)
	f.cell(line.Unit, line.Ablation).observe(line.Metrics)
	return nil
}

// FinishShard seals a shard: verifies the worker's trailer against the
// folded partial (wantLines < 0 or an empty wantDigest skip the respective
// check — the serial executor has no trailer), then merges every pending
// shard that is next in id order into the report state.
func (a *Aggregator) FinishShard(shard, wantLines int, wantDigest string) (*ShardResult, error) {
	f, ok := a.open[shard]
	if !ok {
		return nil, fmt.Errorf("fleet: shard %d finished without lines in flight", shard)
	}
	lo, hi := suite.ShardRange(a.total, a.shardSize, shard)
	if f.lines != hi-lo {
		return nil, fmt.Errorf("fleet: shard %d: got %d lines, want %d", shard, f.lines, hi-lo)
	}
	if wantLines >= 0 && wantLines != f.lines {
		return nil, fmt.Errorf("fleet: shard %d: trailer claims %d lines, counted %d", shard, wantLines, f.lines)
	}
	if wantDigest != "" && wantDigest != f.digest.Hex() {
		return nil, fmt.Errorf("fleet: shard %d: trailer digest %s != folded digest %s", shard, wantDigest, f.digest.Hex())
	}
	delete(a.open, shard)
	p := f.result(shard)
	if err := a.admit(p); err != nil {
		return nil, err
	}
	return p, nil
}

// Restore admits a shard partial recovered from a checkpoint, bypassing the
// line fold but joining the same ordered merge.
func (a *Aggregator) Restore(p *ShardResult) error {
	if p.Shard < 0 || p.Shard >= a.shards {
		return fmt.Errorf("fleet: restored shard %d out of range (plan has %d shards)", p.Shard, a.shards)
	}
	lo, hi := suite.ShardRange(a.total, a.shardSize, p.Shard)
	if p.Lines != hi-lo {
		return fmt.Errorf("fleet: restored shard %d has %d lines, want %d", p.Shard, p.Lines, hi-lo)
	}
	if _, err := ParseDigest(p.Digest); err != nil {
		return fmt.Errorf("fleet: restored shard %d: %w", p.Shard, err)
	}
	return a.admit(p)
}

// Restored reports whether the shard has already been merged or is pending
// merge — i.e. needs no re-execution.
func (a *Aggregator) Restored(shard int) bool {
	if shard < a.next {
		return true
	}
	_, ok := a.pending[shard]
	return ok
}

// admit queues a sealed shard partial and drains the pending set in shard-id
// order, merging each next shard's digest and cells into the report state.
// The strict order makes the float fold tree — hence every rounding step —
// identical to a serial sweep's.
func (a *Aggregator) admit(p *ShardResult) error {
	if p.Shard < a.next {
		return fmt.Errorf("fleet: shard %d finished twice", p.Shard)
	}
	if _, dup := a.pending[p.Shard]; dup {
		return fmt.Errorf("fleet: shard %d finished twice", p.Shard)
	}
	a.pending[p.Shard] = p
	for {
		q, ok := a.pending[a.next]
		if !ok {
			return nil
		}
		delete(a.pending, a.next)
		d, err := ParseDigest(q.Digest)
		if err != nil {
			return fmt.Errorf("fleet: shard %d: %w", q.Shard, err)
		}
		a.digest.Merge(d)
		for _, c := range q.Cells {
			k := cellKey{c.Unit, c.Ablation}
			if i, ok := a.cellIdx[k]; ok {
				a.cells[i].merge(c)
			} else {
				cp := &Cell{Unit: c.Unit, Ablation: c.Ablation}
				cp.merge(c)
				a.cellIdx[k] = len(a.cells)
				a.cells = append(a.cells, cp)
			}
		}
		a.runs += q.Lines
		a.done++
		a.next++
	}
}

// Done reports whether every shard has been merged.
func (a *Aggregator) Done() bool { return a.done == a.shards }

// Report seals the aggregation and returns the final report. Cells appear
// in first-merged order, which is plan order because shards merge in id
// order and specs within a shard fold in plan order.
func (a *Aggregator) Report() (*Report, error) {
	if !a.Done() {
		return nil, fmt.Errorf("fleet: report requested with %d of %d shards merged", a.done, a.shards)
	}
	return &Report{
		PlanHash:    a.planHash,
		Runs:        a.runs,
		Shards:      a.shards,
		ShardSize:   a.shardSize,
		Fingerprint: a.digest.Hex(),
		Cells:       a.cells,
	}, nil
}
