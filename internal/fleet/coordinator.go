package fleet

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sort"
	"sync"
	"time"
)

// Options configures a fleet coordinator run.
type Options struct {
	// Workers is how many worker subprocesses run concurrently. It bounds
	// concurrency only — shard geometry, and therefore the report, never
	// depends on it. Values < 1 are treated as 1.
	Workers int
	// Command builds one worker subprocess invocation. The coordinator
	// sets its Stdin (the shard envelope), Stdout, and Stderr.
	Command func() (*exec.Cmd, error)
	// Checkpoint, when non-empty, is the journal path: completed shards
	// append to it, and an existing compatible journal is resumed.
	Checkpoint string
	// Progress, when non-nil, receives operator-facing progress lines.
	Progress io.Writer
}

// stderrLimit caps how much worker stderr the coordinator retains for error
// reports — enough to diagnose, bounded so a pathological worker can't
// balloon coordinator memory.
const stderrLimit = 64 << 10

// cappedBuffer retains the first stderrLimit bytes written to it.
type cappedBuffer struct {
	buf       bytes.Buffer
	truncated bool
}

func (b *cappedBuffer) Write(p []byte) (int, error) {
	if room := stderrLimit - b.buf.Len(); room > 0 {
		if len(p) > room {
			b.buf.Write(p[:room])
			b.truncated = true
		} else {
			b.buf.Write(p)
		}
	} else if len(p) > 0 {
		b.truncated = true
	}
	return len(p), nil
}

func (b *cappedBuffer) String() string {
	s := b.buf.String()
	if b.truncated {
		s += "\n[stderr truncated]"
	}
	return s
}

// trailerPrefix distinguishes the worker trailer from result lines. The
// trailer is canonical json.Marshal output of Trailer, whose first field is
// Done — the prefix is part of the wire protocol, not a heuristic.
var trailerPrefix = []byte(`{"done":true`)

// Run executes the fleet: it shards the spec's plan, dispatches shards to
// worker subprocesses in shard order, folds their streamed result lines
// through the aggregator, and returns the final report. On any worker
// failure it stops dispatching, lets in-flight shards finish (their
// partials still checkpoint), and returns the error of the smallest failed
// shard id — the same shard a serial run would have failed at first.
func Run(spec *Spec, opts Options) (*Report, error) {
	hash, err := spec.Hash()
	if err != nil {
		return nil, err
	}
	plan, err := spec.Plan.SuitePlan()
	if err != nil {
		return nil, err
	}
	total := plan.Size()
	agg := NewAggregator(total, spec.ShardSize, hash)

	cp, restored, err := prepareCheckpoint(opts.Checkpoint, hash, total, spec.ShardSize, agg)
	if err != nil {
		return nil, err
	}
	if cp != nil {
		defer cp.Close()
	}
	if restored > 0 && opts.Progress != nil {
		fmt.Fprintf(opts.Progress, "fleet: resumed %d of %d shards from %s\n", restored, agg.shards, opts.Checkpoint)
	}

	envBase := Envelope{PlanHash: hash, Spec: *spec}
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > agg.shards {
		workers = agg.shards
	}

	start := time.Now() //agave:allow walltime coordinator progress reporting is operator-facing; nothing derived from it enters the report or the fingerprint
	var (
		mu       sync.Mutex
		next     int
		failed   bool
		errs     = map[int]error{}
		wg       sync.WaitGroup
		progress = func(done int) {
			if opts.Progress == nil {
				return
			}
			elapsed := time.Since(start).Round(time.Millisecond) //agave:allow walltime same display-only measurement as the paired time.Now above
			fmt.Fprintf(opts.Progress, "fleet: %d/%d shards (%s)\n", done, agg.shards, elapsed)
		}
	)
	runShard := func(shard int) error {
		env := envBase
		env.Shard = shard
		envData, err := json.Marshal(env)
		if err != nil {
			return fmt.Errorf("fleet: shard %d: encode envelope: %w", shard, err)
		}
		cmd, err := opts.Command()
		if err != nil {
			return fmt.Errorf("fleet: shard %d: build worker command: %w", shard, err)
		}
		cmd.Stdin = bytes.NewReader(envData)
		var stderr cappedBuffer
		cmd.Stderr = &stderr
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return fmt.Errorf("fleet: shard %d: %w", shard, err)
		}
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("fleet: shard %d: start worker: %w", shard, err)
		}
		fail := func(format string, args ...any) error {
			cmd.Process.Kill()
			cmd.Wait()
			msg := fmt.Sprintf(format, args...)
			if s := stderr.String(); s != "" {
				msg += "\nworker stderr:\n" + s
			}
			return fmt.Errorf("fleet: shard %d: %s", shard, msg)
		}
		sc := bufio.NewScanner(stdout)
		sc.Buffer(make([]byte, 64<<10), 1<<20)
		var line Line
		var trailer *Trailer
		for sc.Scan() {
			raw := sc.Bytes()
			if trailer != nil {
				return fail("trailing garbage after trailer: %.80q", raw)
			}
			if bytes.HasPrefix(raw, trailerPrefix) {
				t := new(Trailer)
				if err := json.Unmarshal(raw, t); err != nil {
					return fail("malformed trailer: %v", err)
				}
				if t.Shard != shard {
					return fail("trailer names shard %d", t.Shard)
				}
				trailer = t
				continue
			}
			if err := DecodeLine(raw, &line); err != nil {
				return fail("malformed result line: %v (line: %.80q)", err, raw)
			}
			mu.Lock()
			err := agg.Observe(shard, raw, &line)
			mu.Unlock()
			if err != nil {
				return fail("%v", err)
			}
		}
		if err := sc.Err(); err != nil {
			return fail("read worker output: %v", err)
		}
		if err := cmd.Wait(); err != nil {
			return fail("worker failed: %v", err)
		}
		if trailer == nil {
			return fail("worker exited without a trailer")
		}
		mu.Lock()
		defer mu.Unlock()
		p, err := agg.FinishShard(shard, trailer.Lines, trailer.Digest)
		if err != nil {
			if s := stderr.String(); s != "" {
				return fmt.Errorf("%w\nworker stderr:\n%s", err, s)
			}
			return err
		}
		if cp != nil {
			if err := cp.Append(p); err != nil {
				return err
			}
		}
		progress(agg.done + len(agg.pending))
		return nil
	}

	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				for next < agg.shards && agg.Restored(next) {
					next++
				}
				if failed || next >= agg.shards {
					mu.Unlock()
					return
				}
				shard := next
				next++
				mu.Unlock()
				if err := runShard(shard); err != nil {
					mu.Lock()
					failed = true
					errs[shard] = err
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()

	if len(errs) > 0 {
		shards := make([]int, 0, len(errs))
		for s := range errs {
			shards = append(shards, s)
		}
		sort.Ints(shards)
		return nil, errs[shards[0]]
	}
	return agg.Report()
}

// prepareCheckpoint opens or creates the journal at path (empty path means
// no checkpointing) and restores any journaled shards into agg. It reports
// how many shards were restored.
func prepareCheckpoint(path, hash string, total, shardSize int, agg *Aggregator) (*Checkpoint, int, error) {
	if path == "" {
		return nil, 0, nil
	}
	want := Header{PlanHash: hash, Runs: total, Shards: agg.shards, ShardSize: shardSize}
	if _, err := os.Stat(path); err != nil {
		if !os.IsNotExist(err) {
			return nil, 0, fmt.Errorf("checkpoint %s: %w", path, err)
		}
		cp, err := CreateCheckpoint(path, want)
		return cp, 0, err
	}
	partials, cp, err := OpenCheckpoint(path, want)
	if err != nil {
		return nil, 0, err
	}
	sort.Slice(partials, func(i, j int) bool { return partials[i].Shard < partials[j].Shard })
	for _, p := range partials {
		if err := agg.Restore(p); err != nil {
			cp.Close()
			return nil, 0, err
		}
	}
	return cp, len(partials), nil
}
