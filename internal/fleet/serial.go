package fleet

import (
	"fmt"
	"io"

	"agave/internal/suite"
)

// SerialOptions configures an in-process serial fleet run.
type SerialOptions struct {
	// Checkpoint, when non-empty, journals completed shards exactly like
	// the subprocess coordinator, so a serial run can also resume.
	Checkpoint string
	// Progress, when non-nil, receives operator-facing progress lines.
	Progress io.Writer
	// Run executes one spec.
	Run RunFunc
}

// RunSerial executes the whole plan in this process, shard by shard in
// shard order, through the same aggregator and checkpoint code path the
// subprocess coordinator uses. It is the reference implementation the
// conformance tests compare fleets against: any worker count must reproduce
// its report byte for byte.
func RunSerial(spec *Spec, opts SerialOptions) (*Report, error) {
	hash, err := spec.Hash()
	if err != nil {
		return nil, err
	}
	plan, err := spec.Plan.SuitePlan()
	if err != nil {
		return nil, err
	}
	specs := plan.Specs()
	total := len(specs)
	agg := NewAggregator(total, spec.ShardSize, hash)

	cp, restored, err := prepareCheckpoint(opts.Checkpoint, hash, total, spec.ShardSize, agg)
	if err != nil {
		return nil, err
	}
	if cp != nil {
		defer cp.Close()
	}
	if restored > 0 && opts.Progress != nil {
		fmt.Fprintf(opts.Progress, "fleet: resumed %d of %d shards from %s\n", restored, agg.shards, opts.Checkpoint)
	}

	var line Line
	for shard := 0; shard < agg.shards; shard++ {
		if agg.Restored(shard) {
			continue
		}
		lo, hi := suite.ShardRange(total, spec.ShardSize, shard)
		for _, s := range specs[lo:hi] {
			line, err = opts.Run(spec.Config, s)
			if err != nil {
				return nil, fmt.Errorf("fleet: shard %d: %s: %w", shard, s, err)
			}
			if line.Index != s.Index {
				return nil, fmt.Errorf("fleet: shard %d: run returned index %d for spec %d", shard, line.Index, s.Index)
			}
			raw, err := line.Encode()
			if err != nil {
				return nil, fmt.Errorf("fleet: shard %d: encode line %d: %w", shard, s.Index, err)
			}
			if err := agg.Observe(shard, raw, &line); err != nil {
				return nil, err
			}
		}
		p, err := agg.FinishShard(shard, -1, "")
		if err != nil {
			return nil, err
		}
		if cp != nil {
			if err := cp.Append(p); err != nil {
				return nil, err
			}
		}
		if opts.Progress != nil {
			fmt.Fprintf(opts.Progress, "fleet: %d/%d shards\n", agg.done, agg.shards)
		}
	}
	return agg.Report()
}
