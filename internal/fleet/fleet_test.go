package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"agave/internal/scenario"
	"agave/internal/suite"
)

// TestMain doubles as the fake fleet worker: when the coordinator tests
// re-exec this test binary with AGAVE_FLEET_FAKE_WORKER=1, it behaves as a
// worker subprocess running the synthetic engine instead of running tests.
func TestMain(m *testing.M) {
	if os.Getenv("AGAVE_FLEET_FAKE_WORKER") == "1" {
		if err := RunWorker(os.Stdin, os.Stdout, syntheticRun); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// syntheticRun is a pure function of the spec — no simulator, so fleet
// plumbing tests run in microseconds. The float metric exercises the
// fold-order guarantee: summing 0.1-scaled values in different orders
// yields different roundings, so any fold-tree deviation shows up as a
// report mismatch.
func syntheticRun(_ json.RawMessage, s suite.RunSpec) (Line, error) {
	l := Line{
		Index:       s.Index,
		Unit:        s.UnitName(),
		Seed:        s.Seed,
		Ablation:    s.Ablation.Name,
		Fingerprint: uint64(s.Index)*2654435761 + s.Seed,
		Metrics: []Metric{
			{Name: "value", Value: 0.1 * float64(s.Index+1)},
			{Name: "total_refs", Value: float64((s.Index + 1) * 1000)},
		},
	}
	l.SortMetrics()
	return l, nil
}

func testPlan(t *testing.T) WirePlan {
	t.Helper()
	sc, err := scenario.ByName("memory-storm")
	if err != nil {
		t.Fatal(err)
	}
	wp, err := NewWirePlan(suite.Plan{
		Benchmarks:  []string{"alpha", "beta"},
		Scenarios:   []string{"binder-storm"},
		ScenarioSet: []*scenario.Scenario{sc},
		Seeds:       []uint64{1, 2, 3},
		Ablations:   []suite.Ablation{{Name: "base"}, {Name: "nojit", DisableJIT: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return wp
}

func testSpec(t *testing.T, shardSize int) *Spec {
	t.Helper()
	return &Spec{
		Config:    json.RawMessage(`{"synthetic":true}`),
		Plan:      testPlan(t),
		ShardSize: shardSize,
	}
}

// fakeWorkerCommand re-execs this test binary as a fleet worker.
func fakeWorkerCommand() (*exec.Cmd, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), "AGAVE_FLEET_FAKE_WORKER=1")
	return cmd, nil
}

func reportJSON(t *testing.T, r *Report) []byte {
	t.Helper()
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestWirePlanRoundTrip(t *testing.T) {
	wp := testPlan(t)
	plan, err := wp.SuitePlan()
	if err != nil {
		t.Fatal(err)
	}
	if plan.Size() != 4*3*2 {
		t.Fatalf("plan size = %d, want 24", plan.Size())
	}
	wp2, err := NewWirePlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	d1, _ := json.Marshal(wp)
	d2, _ := json.Marshal(wp2)
	if !bytes.Equal(d1, d2) {
		t.Fatalf("wire plan not a fixed point:\n%s\n%s", d1, d2)
	}
}

func TestSpecHashStable(t *testing.T) {
	a := testSpec(t, 5)
	b := testSpec(t, 5)
	ha, err := a.Hash()
	if err != nil {
		t.Fatal(err)
	}
	hb, err := b.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb {
		t.Fatalf("equal specs hash differently: %s vs %s", ha, hb)
	}
	c := testSpec(t, 6)
	hc, _ := c.Hash()
	if hc == ha {
		t.Fatal("different shard size did not change spec hash")
	}
}

func TestRunWorkerProtocol(t *testing.T) {
	spec := testSpec(t, 5)
	hash, err := spec.Hash()
	if err != nil {
		t.Fatal(err)
	}
	env, err := json.Marshal(Envelope{PlanHash: hash, Shard: 1, Spec: *spec})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := RunWorker(bytes.NewReader(env), &out, syntheticRun); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSuffix(out.Bytes(), []byte("\n")), []byte("\n"))
	// Shard 1 of a 24-spec plan at size 5 covers specs [5,10): 5 lines + trailer.
	if len(lines) != 6 {
		t.Fatalf("worker wrote %d lines, want 6", len(lines))
	}
	var digest Digest
	for i, raw := range lines[:5] {
		var l Line
		if err := DecodeLine(raw, &l); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if l.Index != 5+i {
			t.Fatalf("line %d has index %d, want %d", i, l.Index, 5+i)
		}
		digest.AddLine(raw)
	}
	var trailer Trailer
	if err := json.Unmarshal(lines[5], &trailer); err != nil {
		t.Fatal(err)
	}
	if !trailer.Done || trailer.Shard != 1 || trailer.Lines != 5 {
		t.Fatalf("trailer = %+v", trailer)
	}
	if trailer.Digest != digest.Hex() {
		t.Fatalf("trailer digest %s != folded %s", trailer.Digest, digest.Hex())
	}
	// A wrong plan hash must be refused before any spec runs.
	env, _ = json.Marshal(Envelope{PlanHash: "deadbeef", Shard: 0, Spec: *spec})
	out.Reset()
	if err := RunWorker(bytes.NewReader(env), &out, syntheticRun); err == nil || out.Len() != 0 {
		t.Fatalf("mismatched plan hash accepted (err=%v, wrote %d bytes)", err, out.Len())
	}
}

// TestCoordinatorMatchesSerial is the package-level equivalence conformance
// check: the subprocess fleet at 1, 2, and 8 workers must reproduce the
// serial in-process report byte for byte — fingerprint, float aggregates,
// everything.
func TestCoordinatorMatchesSerial(t *testing.T) {
	spec := testSpec(t, 5)
	serial, err := RunSerial(spec, SerialOptions{Run: syntheticRun})
	if err != nil {
		t.Fatal(err)
	}
	want := reportJSON(t, serial)
	if serial.Runs != 24 || serial.Shards != 5 {
		t.Fatalf("serial report: runs %d shards %d", serial.Runs, serial.Shards)
	}
	for _, workers := range []int{1, 2, 8} {
		got, err := Run(spec, Options{Workers: workers, Command: fakeWorkerCommand})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if data := reportJSON(t, got); !bytes.Equal(data, want) {
			t.Errorf("workers=%d report differs from serial:\n%s\nwant:\n%s", workers, data, want)
		}
	}
}

// TestShardSizeChangesReportNotFingerprint pins the two halves of the
// determinism contract: the fingerprint is geometry-free (any shard size
// yields the same digest), while the full report is pinned only per shard
// size (the header records it).
func TestShardSizeChangesReportNotFingerprint(t *testing.T) {
	r5, err := RunSerial(testSpec(t, 5), SerialOptions{Run: syntheticRun})
	if err != nil {
		t.Fatal(err)
	}
	r7, err := RunSerial(testSpec(t, 7), SerialOptions{Run: syntheticRun})
	if err != nil {
		t.Fatal(err)
	}
	if r5.Fingerprint != r7.Fingerprint {
		t.Fatalf("fingerprint depends on shard size: %s vs %s", r5.Fingerprint, r7.Fingerprint)
	}
	if r5.Shards == r7.Shards {
		t.Fatal("shard counts unexpectedly equal")
	}
}

func TestSerialCheckpointResume(t *testing.T) {
	spec := testSpec(t, 5)
	uninterrupted, err := RunSerial(spec, SerialOptions{Run: syntheticRun})
	if err != nil {
		t.Fatal(err)
	}
	cp := filepath.Join(t.TempDir(), "fleet.ckpt")
	// First attempt dies at spec 12 (shard 2), after shards 0 and 1
	// journaled.
	bomb := func(cfg json.RawMessage, s suite.RunSpec) (Line, error) {
		if s.Index == 12 {
			return Line{}, fmt.Errorf("injected crash at spec %d", s.Index)
		}
		return syntheticRun(cfg, s)
	}
	if _, err := RunSerial(spec, SerialOptions{Checkpoint: cp, Run: bomb}); err == nil {
		t.Fatal("interrupted run did not fail")
	}
	var progress bytes.Buffer
	resumed, err := RunSerial(spec, SerialOptions{Checkpoint: cp, Progress: &progress, Run: syntheticRun})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reportJSON(t, resumed), reportJSON(t, uninterrupted)) {
		t.Fatalf("resumed report differs:\n%s\nwant:\n%s", reportJSON(t, resumed), reportJSON(t, uninterrupted))
	}
	if !bytes.Contains(progress.Bytes(), []byte("resumed 2 of 5 shards")) {
		t.Fatalf("progress did not note the resume: %q", progress.String())
	}
}

// TestCoordinatorWorkerCrashResume kills the first worker subprocess
// mid-fleet, then resumes from the checkpoint and requires the final report
// to match an uninterrupted run exactly.
func TestCoordinatorWorkerCrashResume(t *testing.T) {
	spec := testSpec(t, 5)
	uninterrupted, err := RunSerial(spec, SerialOptions{Run: syntheticRun})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cp := filepath.Join(dir, "fleet.ckpt")
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	// The first invocation to win the mkdir race SIGKILLs itself —
	// simulating a worker dying mid-shard — and every other invocation
	// execs the real fake worker.
	script := fmt.Sprintf(`if mkdir %q 2>/dev/null; then kill -KILL $$; else exec %q; fi`,
		filepath.Join(dir, "crashed"), exe)
	sabotage := func() (*exec.Cmd, error) {
		cmd := exec.Command("/bin/sh", "-c", script)
		cmd.Env = append(os.Environ(), "AGAVE_FLEET_FAKE_WORKER=1")
		return cmd, nil
	}
	if _, err := Run(spec, Options{Workers: 2, Command: sabotage, Checkpoint: cp}); err == nil {
		t.Fatal("fleet with crashing worker did not fail")
	}
	resumed, err := Run(spec, Options{Workers: 2, Command: fakeWorkerCommand, Checkpoint: cp})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reportJSON(t, resumed), reportJSON(t, uninterrupted)) {
		t.Fatalf("resumed fleet report differs:\n%s\nwant:\n%s", reportJSON(t, resumed), reportJSON(t, uninterrupted))
	}
}

// TestCoordinatorFailurePaths pins that worker misbehavior surfaces the
// shard id and the worker's stderr in the coordinator error, without
// hanging.
func TestCoordinatorFailurePaths(t *testing.T) {
	spec := testSpec(t, 5)
	cases := []struct {
		name   string
		script string
		want   []string
	}{
		{
			name:   "nonzero exit",
			script: `cat >/dev/null; echo boom >&2; exit 3`,
			want:   []string{"fleet: shard 0", "exit status 3", "boom"},
		},
		{
			name:   "malformed json",
			script: `cat >/dev/null; echo not-json`,
			want:   []string{"fleet: shard 0", "malformed result line"},
		},
		{
			name:   "silent exit",
			script: `cat >/dev/null; exit 0`,
			want:   []string{"fleet: shard 0", "without a trailer"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cmdFn := func() (*exec.Cmd, error) {
				return exec.Command("/bin/sh", "-c", tc.script), nil
			}
			_, err := Run(spec, Options{Workers: 1, Command: cmdFn})
			if err == nil {
				t.Fatal("fleet did not fail")
			}
			for _, want := range tc.want {
				if !bytes.Contains([]byte(err.Error()), []byte(want)) {
					t.Errorf("error %q does not mention %q", err, want)
				}
			}
		})
	}
}

// TestCoordinatorTrailingGarbage pins that output after the trailer is an
// error: a worker that keeps writing past its trailer is corrupt even if
// the trailer itself verified.
func TestCoordinatorTrailingGarbage(t *testing.T) {
	spec := testSpec(t, 5)
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	// The real worker runs first (inheriting sh's stdin pipe), then sh
	// appends garbage to the same stdout.
	cmdFn := func() (*exec.Cmd, error) {
		cmd := exec.Command("/bin/sh", "-c", fmt.Sprintf("%q; echo garbage-after-trailer", exe))
		cmd.Env = append(os.Environ(), "AGAVE_FLEET_FAKE_WORKER=1")
		return cmd, nil
	}
	_, err = Run(spec, Options{Workers: 1, Command: cmdFn})
	if err == nil {
		t.Fatal("fleet accepted trailing garbage")
	}
	for _, want := range []string{"fleet: shard 0", "trailing garbage"} {
		if !bytes.Contains([]byte(err.Error()), []byte(want)) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

func TestReportExcludesExecutionDetails(t *testing.T) {
	r, err := RunSerial(testSpec(t, 5), SerialOptions{Run: syntheticRun})
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(reportJSON(t, r), &decoded); err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"plan_hash": true, "runs": true, "shards": true,
		"shard_size": true, "fingerprint": true, "cells": true,
	}
	keys := make([]string, 0, len(decoded))
	for k := range decoded {
		keys = append(keys, k) //agave:allow maporder keys only checked for set membership below, order-free
	}
	for _, k := range keys {
		if !want[k] {
			t.Errorf("report leaks execution-dependent field %q", k)
		}
	}
	if len(decoded) != len(want) {
		t.Errorf("report has %d fields, want %d", len(decoded), len(want))
	}
}
