// Package fleet shards a suite plan across worker subprocesses and folds
// their streamed results through a constant-memory aggregator.
//
// The design splits a plan matrix (units × seeds × ablations) into
// fixed-size shards whose geometry depends only on the plan and the shard
// size — never on how many workers execute them. Each worker subprocess
// receives one shard envelope on stdin, runs its specs serially, and streams
// one canonical-JSON result line per spec back over its stdout pipe,
// followed by a trailer that pins the shard's line count and digest. The
// coordinator folds lines into running aggregates and a multiset
// fingerprint as they arrive, so memory stays O(shards in flight), not
// O(results) — a million-session sweep never materializes a million results.
//
// Determinism contract: the final report — aggregates and fingerprint — is
// bit-identical across any worker count, across a serial in-process run,
// and across a checkpoint-resumed run, because (1) the fingerprint is a
// commutative multiset hash over the result lines, (2) every line embeds
// its plan index so the multiset pins the full ordered stream, and (3)
// per-shard float partials merge into the report strictly in shard order,
// reproducing the serial fold tree rounding step for rounding step.
//
// The package is engine-agnostic: the run config travels as opaque JSON and
// a RunFunc supplied by the caller executes each spec, so fleet depends on
// the suite geometry and scenario codec but not on the core simulator.
package fleet

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"agave/internal/scenario"
	"agave/internal/suite"
)

// Metric is one named sample on a result line. Lines carry metrics as a
// name-sorted slice, not a map: the wire order is canonical, the
// aggregator's fold walks it with a binary search instead of a map range,
// and decoding reuses slice capacity so the steady-state fold is
// allocation-free.
type Metric struct {
	Name  string  `json:"k"`
	Value float64 `json:"v"`
}

// Line is one run result on the wire: a single newline-terminated canonical
// JSON object. Index is the spec's plan position — embedding it makes the
// multiset of lines determine the full ordered result stream, which is what
// lets the fingerprint ignore arrival order. Fingerprint is the run's
// stats-collector fingerprint; Metrics are sorted by name.
type Line struct {
	Index       int      `json:"index"`
	Unit        string   `json:"unit"`
	Seed        uint64   `json:"seed"`
	Ablation    string   `json:"ablation"`
	Fingerprint uint64   `json:"fingerprint"`
	Metrics     []Metric `json:"metrics"`
}

// SortMetrics puts the line's metrics into canonical name order.
func (l *Line) SortMetrics() {
	sort.Slice(l.Metrics, func(i, j int) bool { return l.Metrics[i].Name < l.Metrics[j].Name })
}

// Encode renders the line as its canonical wire bytes (no trailing newline).
func (l *Line) Encode() ([]byte, error) {
	return json.Marshal(l)
}

// DecodeLine parses a wire line into dst, zeroing it first so a reused dst
// never leaks fields from the previous line; the Metrics slice capacity is
// retained across calls.
func DecodeLine(data []byte, dst *Line) error {
	*dst = Line{Metrics: dst.Metrics[:0]}
	return json.Unmarshal(data, dst)
}

// WireAblation is an Ablation in wire form.
type WireAblation struct {
	Name      string `json:"name"`
	NoJIT     bool   `json:"nojit,omitempty"`
	DirtyRect bool   `json:"dirtyrect,omitempty"`
}

// WirePlan is a suite plan in wire form: ad-hoc scenario definitions are
// carried as their canonical scenario-codec encoding, so the plan survives
// the subprocess boundary bit-exactly and hashes deterministically.
type WirePlan struct {
	Benchmarks   []string          `json:"benchmarks,omitempty"`
	Scenarios    []string          `json:"scenarios,omitempty"`
	ScenarioDocs []json.RawMessage `json:"scenario_docs,omitempty"`
	Seeds        []uint64          `json:"seeds,omitempty"`
	Ablations    []WireAblation    `json:"ablations,omitempty"`
}

// NewWirePlan converts a suite plan to wire form.
func NewWirePlan(p suite.Plan) (WirePlan, error) {
	wp := WirePlan{
		Benchmarks: p.Benchmarks,
		Scenarios:  p.Scenarios,
		Seeds:      p.Seeds,
	}
	for _, sc := range p.ScenarioSet {
		doc, err := scenario.Encode(sc)
		if err != nil {
			return WirePlan{}, fmt.Errorf("fleet: encode scenario %q: %w", sc.Name, err)
		}
		wp.ScenarioDocs = append(wp.ScenarioDocs, doc)
	}
	for _, a := range p.Ablations {
		wp.Ablations = append(wp.Ablations, WireAblation{
			Name:      a.Name,
			NoJIT:     a.DisableJIT,
			DirtyRect: a.DirtyRectComposition,
		})
	}
	return wp, nil
}

// SuitePlan converts the wire plan back to a suite plan.
func (wp WirePlan) SuitePlan() (suite.Plan, error) {
	p := suite.Plan{
		Benchmarks: wp.Benchmarks,
		Scenarios:  wp.Scenarios,
		Seeds:      wp.Seeds,
	}
	for i, doc := range wp.ScenarioDocs {
		sc, err := scenario.Decode(doc)
		if err != nil {
			return suite.Plan{}, fmt.Errorf("fleet: decode scenario doc %d: %w", i, err)
		}
		p.ScenarioSet = append(p.ScenarioSet, sc)
	}
	for _, a := range wp.Ablations {
		p.Ablations = append(p.Ablations, suite.Ablation{
			Name:                 a.Name,
			DisableJIT:           a.NoJIT,
			DirtyRectComposition: a.DirtyRect,
		})
	}
	return p, nil
}

// Spec is the full fleet job description: the engine config (opaque to this
// package), the plan, and the shard size. Its hash names the job — workers
// refuse envelopes whose recomputed hash disagrees, and checkpoints refuse
// resumption under a different hash.
type Spec struct {
	Config    json.RawMessage `json:"config"`
	Plan      WirePlan        `json:"plan"`
	ShardSize int             `json:"shard_size"`
}

// Hash is the spec's identity: the hex SHA-256 of its canonical JSON
// encoding. json.Marshal fixes struct field order and compacts RawMessage,
// so equal specs hash equally on both sides of the process boundary.
func (s *Spec) Hash() (string, error) {
	data, err := json.Marshal(s)
	if err != nil {
		return "", fmt.Errorf("fleet: hash spec: %w", err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}
