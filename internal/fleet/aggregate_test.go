package fleet

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

func syntheticLines(t testing.TB, n int) ([][]byte, []Line) {
	t.Helper()
	raws := make([][]byte, n)
	lines := make([]Line, n)
	for i := 0; i < n; i++ {
		l := Line{
			Index:       i,
			Unit:        fmt.Sprintf("unit-%d", i%4),
			Seed:        uint64(i%3 + 1),
			Ablation:    "base",
			Fingerprint: uint64(i) * 0x9e3779b97f4a7c15,
			Metrics: []Metric{
				{Name: "total_refs", Value: float64((i + 1) * 100)},
				{Name: "value", Value: 0.1 * float64(i+1)},
			},
		}
		raw, err := l.Encode()
		if err != nil {
			t.Fatal(err)
		}
		raws[i] = raw
		lines[i] = l
	}
	return raws, lines
}

// TestDigestOrderAndGeometryInvariance pins the multiset property: the
// digest of a line set is independent of both the order lines fold in and
// how they are grouped into shards.
func TestDigestOrderAndGeometryInvariance(t *testing.T) {
	raws, _ := syntheticLines(t, 100)
	var forward, backward Digest
	for _, r := range raws {
		forward.AddLine(r)
	}
	for i := len(raws) - 1; i >= 0; i-- {
		backward.AddLine(raws[i])
	}
	if forward != backward {
		t.Fatal("digest depends on fold order")
	}
	// Group into uneven shards and merge shard digests out of order.
	var grouped Digest
	bounds := []int{0, 7, 7, 31, 100}
	var parts []Digest
	for i := 1; i < len(bounds); i++ {
		var d Digest
		for _, r := range raws[bounds[i-1]:bounds[i]] {
			d.AddLine(r)
		}
		parts = append(parts, d)
	}
	for i := len(parts) - 1; i >= 0; i-- {
		grouped.Merge(parts[i])
	}
	if grouped != forward {
		t.Fatal("digest depends on shard grouping")
	}
	// Hex round-trips.
	parsed, err := ParseDigest(forward.Hex())
	if err != nil {
		t.Fatal(err)
	}
	if parsed != forward {
		t.Fatal("digest hex round-trip failed")
	}
	if len(forward.Hex()) != 64 {
		t.Fatalf("digest hex is %d chars, want 64", len(forward.Hex()))
	}
	// And a different multiset yields a different digest.
	var other Digest
	for _, r := range raws[1:] {
		other.AddLine(r)
	}
	if other == forward {
		t.Fatal("dropping a line did not change the digest")
	}
}

// TestAggregatorInterleavingInvariance folds the same lines through
// aggregators with shards completing in different interleavings and
// requires identical reports.
func TestAggregatorInterleavingInvariance(t *testing.T) {
	const total, size = 23, 5
	raws, lines := syntheticLines(t, total)
	fold := func(shardOrder []int) *Report {
		agg := NewAggregator(total, size, "testhash")
		for _, s := range shardOrder {
			lo := s * size
			hi := min(lo+size, total)
			for i := lo; i < hi; i++ {
				if err := agg.Observe(s, raws[i], &lines[i]); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := agg.FinishShard(s, -1, ""); err != nil {
				t.Fatal(err)
			}
		}
		r, err := agg.Report()
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	want, err := json.Marshal(fold([]int{0, 1, 2, 3, 4}))
	if err != nil {
		t.Fatal(err)
	}
	for _, order := range [][]int{{4, 3, 2, 1, 0}, {2, 0, 4, 1, 3}} {
		got, err := json.Marshal(fold(order))
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("shard completion order %v changed the report:\n%s\nwant:\n%s", order, got, want)
		}
	}
}

func TestAggregatorRejectsBadStreams(t *testing.T) {
	const total, size = 23, 5
	raws, lines := syntheticLines(t, total)
	agg := NewAggregator(total, size, "h")
	if err := agg.Observe(7, raws[0], &lines[0]); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
	if err := agg.Observe(0, raws[1], &lines[1]); err == nil || !strings.Contains(err.Error(), "out of order") {
		t.Fatalf("out-of-order line accepted: %v", err)
	}
	if err := agg.Observe(0, raws[0], &lines[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := agg.FinishShard(0, -1, ""); err == nil {
		t.Fatal("short shard sealed")
	}
	// Trailer mismatches.
	agg = NewAggregator(total, size, "h")
	for i := 0; i < size; i++ {
		if err := agg.Observe(0, raws[i], &lines[i]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := agg.FinishShard(0, size+1, ""); err == nil || !strings.Contains(err.Error(), "trailer claims") {
		t.Fatalf("line-count mismatch accepted: %v", err)
	}
}

// TestAggregatorFoldIsAllocationFree is the constant-memory pin: once the
// aggregator has seen every cell, folding further lines allocates nothing,
// so memory is a function of the plan's cell count — O(units × ablations)
// — and never of how many result lines stream through.
func TestAggregatorFoldIsAllocationFree(t *testing.T) {
	const total, size = 1 << 16, 1 << 16
	raws, lines := syntheticLines(t, 256)
	agg := NewAggregator(total, size, "h")
	next := 0
	// Warm every cell (units cycle mod 4).
	for i := 0; i < 8; i++ {
		l := lines[i]
		l.Index = next
		if err := agg.Observe(0, raws[i], &l); err != nil {
			t.Fatal(err)
		}
		next++
	}
	allocs := testing.AllocsPerRun(100, func() {
		l := lines[next%256]
		l.Index = next
		if err := agg.Observe(0, raws[next%256], &l); err != nil {
			t.Fatal(err)
		}
		next++
	})
	if allocs != 0 {
		t.Fatalf("warmed Observe allocates %.1f per line, want 0", allocs)
	}
}
