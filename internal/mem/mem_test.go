package mem

import (
	"testing"
	"testing/quick"

	"agave/internal/stats"
)

func newAS() *AddressSpace { return NewAddressSpace(stats.NewCollector()) }

func TestMapAndFind(t *testing.T) {
	as := newAS()
	v, err := as.Map(0x1000, 0x2000, "libdvm.so", PermRead|PermExec, ClassText)
	if err != nil {
		t.Fatal(err)
	}
	if got := as.Find(0x1000); got != v {
		t.Fatal("Find(start) missed")
	}
	if got := as.Find(0x2fff); got != v {
		t.Fatal("Find(end-1) missed")
	}
	if got := as.Find(0x3000); got != nil {
		t.Fatal("Find(end) should be unmapped")
	}
	if got := as.Find(0xfff); got != nil {
		t.Fatal("Find(start-1) should be unmapped")
	}
}

func TestMapOverlapRejected(t *testing.T) {
	as := newAS()
	if _, err := as.Map(0x1000, 0x2000, "a", PermRead, ClassAnon); err != nil {
		t.Fatal(err)
	}
	if _, err := as.Map(0x2000, 0x2000, "b", PermRead, ClassAnon); err == nil {
		t.Fatal("overlapping map accepted")
	}
	if _, err := as.Map(0x0, 0x1001, "c", PermRead, ClassAnon); err == nil {
		t.Fatal("overlapping map accepted")
	}
	// Adjacent is fine.
	if _, err := as.Map(0x3000, 0x1000, "d", PermRead, ClassAnon); err != nil {
		t.Fatalf("adjacent map rejected: %v", err)
	}
}

func TestMapRoundsToPages(t *testing.T) {
	as := newAS()
	v, err := as.Map(0x1000, 100, "x", PermRead, ClassAnon)
	if err != nil {
		t.Fatal(err)
	}
	if v.Size() != PageSize {
		t.Fatalf("size = %d, want one page", v.Size())
	}
}

func TestZeroSizeMapRejected(t *testing.T) {
	as := newAS()
	if _, err := as.Map(0x1000, 0, "x", PermRead, ClassAnon); err == nil {
		t.Fatal("zero-size map accepted")
	}
}

func TestMapAnywhereSkipsGaps(t *testing.T) {
	as := newAS()
	mustMap(t, as, 0x10000, 0x1000, "a")
	mustMap(t, as, 0x12000, 0x1000, "b")
	v := as.MapAnywhere(0x10000, 0x1000, "c", PermRead, ClassAnon)
	if v.Start != 0x11000 {
		t.Fatalf("MapAnywhere landed at %#x, want 0x11000 (first gap)", v.Start)
	}
	v2 := as.MapAnywhere(0x10000, 0x4000, "d", PermRead, ClassAnon)
	if v2.Start != 0x13000 {
		t.Fatalf("large MapAnywhere landed at %#x, want 0x13000", v2.Start)
	}
}

func TestUnmap(t *testing.T) {
	as := newAS()
	v := mustMap(t, as, 0x1000, 0x1000, "a")
	if err := as.Unmap(v); err != nil {
		t.Fatal(err)
	}
	if as.Find(0x1000) != nil {
		t.Fatal("unmapped region still found")
	}
	if err := as.Unmap(v); err == nil {
		t.Fatal("double unmap succeeded")
	}
}

func TestSliceAndBytes(t *testing.T) {
	as := newAS()
	v := mustMap(t, as, 0x1000, 0x2000, "buf")
	s := v.Slice(16, 4)
	s[0] = 0xAB
	if v.Bytes()[16] != 0xAB {
		t.Fatal("slice views not aliased")
	}
	if v.AddrOf(16) != 0x1010 {
		t.Fatalf("AddrOf = %#x", v.AddrOf(16))
	}
}

func TestSliceOutOfRangePanics(t *testing.T) {
	as := newAS()
	v := mustMap(t, as, 0x1000, 0x1000, "buf")
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range slice did not panic")
		}
	}()
	v.Slice(PageSize-1, 2)
}

func TestBrkGrowsHeap(t *testing.T) {
	as := newAS()
	NewLayout(as, 0x10000, 0x10000)
	heap := as.FindByName(RegionHeap)
	oldEnd := heap.End
	got := as.Brk(oldEnd + 0x5000)
	if got != oldEnd+0x5000 || heap.End != got {
		t.Fatalf("Brk = %#x, heap end %#x", got, heap.End)
	}
	// Shrinking below start is refused.
	if got := as.Brk(heap.Start - 1); got != heap.End {
		t.Fatal("Brk below heap start should be refused")
	}
}

func TestBrkCollisionRefused(t *testing.T) {
	as := newAS()
	NewLayout(as, 0x10000, 0x10000)
	heap := as.FindByName(RegionHeap)
	// Map a blocker immediately after the heap.
	mustMap(t, as, heap.End, 0x1000, "blocker")
	if got := as.Brk(heap.End + 0x1000); got != heap.End {
		t.Fatalf("Brk grew into blocker: %#x", got)
	}
}

func TestBrkPreservesData(t *testing.T) {
	as := newAS()
	NewLayout(as, 0x10000, 0x10000)
	heap := as.FindByName(RegionHeap)
	heap.Bytes()[0] = 42
	as.Brk(heap.End + 0x10000)
	if heap.Bytes()[0] != 42 {
		t.Fatal("Brk lost heap contents")
	}
	if uint64(len(heap.Bytes())) != heap.Size() {
		t.Fatal("backing size mismatch after growth")
	}
}

func TestCloneSharingSemantics(t *testing.T) {
	as := newAS()
	ro := mustMapPerm(t, as, 0x1000, 0x1000, "libc.so", PermRead|PermExec)
	rw := mustMap(t, as, 0x3000, 0x1000, "private")
	sh := mustMap(t, as, 0x5000, 0x1000, "ashmem")
	sh.Shared = true
	rw.Bytes()[0] = 1
	sh.Bytes()[0] = 2
	ro.Bytes()[0] = 3

	child := as.Clone()
	crw := child.FindByName("private")
	csh := child.FindByName("ashmem")
	cro := child.FindByName("libc.so")

	crw.Bytes()[0] = 99
	if rw.Bytes()[0] != 1 {
		t.Fatal("private mapping leaked between parent and child")
	}
	csh.Bytes()[0] = 88
	if sh.Bytes()[0] != 88 {
		t.Fatal("shared mapping not shared")
	}
	if cro.Bytes()[0] != 3 {
		t.Fatal("read-only mapping lost contents")
	}
}

// TestClonePrefixCopyPreservesContents pins the touched-prefix fork copy:
// Clone copies a private store only up to its high-water mark (everything
// beyond is guaranteed zero), and the result must still behave exactly like a
// full deep copy — contents preserved, nothing shared.
func TestClonePrefixCopyPreservesContents(t *testing.T) {
	as := newAS()
	rw := mustMap(t, as, 0x100000, 1<<20, "dalvik-heap")
	// Touch only a small prefix; the rest of the arena stays virgin zero.
	copy(rw.Slice(16, 4), []byte{1, 2, 3, 4})

	child := as.Clone()
	crw := child.FindByName("dalvik-heap")
	if got := crw.Slice(16, 4); got[0] != 1 || got[3] != 4 {
		t.Fatalf("touched prefix not copied: %v", got)
	}
	// Bytes beyond the parent's touched mark must read as zero in the child...
	if got := crw.Slice(1<<19, 8); got[0] != 0 || got[7] != 0 {
		t.Fatalf("untouched tail not zero in child: %v", got)
	}
	// ...and stay private: writes past the old mark must not cross the fork.
	crw.Slice(1<<19, 1)[0] = 7
	if rw.Slice(1<<19, 1)[0] != 0 {
		t.Fatal("child write past the touched mark leaked into the parent")
	}
	rw.Slice(1<<18, 1)[0] = 9
	if crw.Slice(1<<18, 1)[0] != 0 {
		t.Fatal("parent write after fork leaked into the child")
	}
}

func TestMapShared(t *testing.T) {
	c := stats.NewCollector()
	a, b := NewAddressSpace(c), NewAddressSpace(c)
	src := &VMA{}
	la := NewLayout(a, 0x1000, 0x1000)
	_ = la
	srcV, err := a.Map(0x50000000, 0x1000, "gralloc-buffer", PermRead|PermWrite, ClassShared)
	if err != nil {
		t.Fatal(err)
	}
	srcV.Bytes()[7] = 0x5A
	dstV := b.MapShared(0x40000000, srcV, PermRead|PermWrite)
	if dstV.Bytes()[7] != 0x5A {
		t.Fatal("MapShared does not alias source bytes")
	}
	dstV.Bytes()[7] = 0x66
	if srcV.Bytes()[7] != 0x66 {
		t.Fatal("MapShared writes not visible to source")
	}
	if dstV.Name != "gralloc-buffer" {
		t.Fatalf("shared name = %q", dstV.Name)
	}
	_ = src
}

func TestLayoutSkeleton(t *testing.T) {
	as := newAS()
	l := NewLayout(as, 0x20000, 0x40000)
	for _, tc := range []struct {
		v    *VMA
		name string
	}{
		{l.Text, RegionAppBinary},
		{l.Heap, RegionHeap},
		{l.Stack, RegionStack},
		{l.Kernel, RegionKernel},
	} {
		if tc.v == nil || tc.v.Name != tc.name {
			t.Fatalf("layout region %q missing or misnamed: %v", tc.name, tc.v)
		}
	}
	if as.Find(TextBase) != l.Text {
		t.Fatal("text not at TextBase")
	}
	if as.Find(KernelVA) != l.Kernel {
		t.Fatal("kernel not at KernelVA")
	}
}

func TestMapLibraryBumpsPointer(t *testing.T) {
	as := newAS()
	l := NewLayout(as, 0x1000, 0x1000)
	t1, d1 := l.MapLibrary(as, "libdvm.so", 0x80000, 0x10000)
	t2, _ := l.MapLibrary(as, "libskia.so", 0x100000, 0)
	if d1 == nil || d1.Name != "libdvm.so (data)" {
		t.Fatalf("data segment = %v", d1)
	}
	if t2.Start < d1.End || t1.End > d1.Start {
		t.Fatal("library layout not monotonic")
	}
}

func TestMapAnonName(t *testing.T) {
	as := newAS()
	l := NewLayout(as, 0x1000, 0x1000)
	v := l.MapAnon(as, ThreadStackSize)
	if v.Name != RegionAnonymous {
		t.Fatalf("anon mapping named %q", v.Name)
	}
}

func TestPermString(t *testing.T) {
	if (PermRead | PermWrite).String() != "rw-" {
		t.Fatalf("perm string %q", (PermRead | PermWrite).String())
	}
	if (PermRead | PermExec).String() != "r-x" {
		t.Fatalf("perm string %q", (PermRead | PermExec).String())
	}
}

// Property: after any sequence of non-overlapping maps, every address inside
// a VMA resolves to it and VMAs stay sorted and disjoint.
func TestAddressSpaceInvariantProperty(t *testing.T) {
	f := func(starts []uint16) bool {
		as := newAS()
		var mapped []*VMA
		for _, s := range starts {
			start := Addr(s) * PageSize * 4
			v, err := as.Map(start, 2*PageSize, "r", PermRead, ClassAnon)
			if err == nil {
				mapped = append(mapped, v)
			}
		}
		// Sorted & disjoint.
		vs := as.VMAs()
		for i := 1; i < len(vs); i++ {
			if vs[i-1].End > vs[i].Start {
				return false
			}
		}
		// Lookup consistency.
		for _, v := range mapped {
			if as.Find(v.Start) != v || as.Find(v.End-1) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestLookupCacheInvalidatedOnMutation pins the cache-coherence fix: the
// stale path is cache-a-VMA, unmap it, remap an overlapping range — the old
// code only cleared the cache when the unmapped VMA was the cached one at
// unmap time, and a later mutation covering the cached range could otherwise
// leave Find answering from a freed VMA. Every mutation (Map, Unmap, Brk)
// now invalidates any cache entry its range covers.
func TestLookupCacheInvalidatedOnMutation(t *testing.T) {
	as := newAS()
	a := mustMap(t, as, 0x1000, 0x1000, "a")
	if as.Find(0x1800) != a {
		t.Fatal("warm-up Find missed")
	}
	if err := as.Unmap(a); err != nil {
		t.Fatal(err)
	}
	if as.last != nil {
		t.Fatal("Unmap left the lookup cache pointing at a freed VMA")
	}
	// Overlapping remap of the freed range must resolve to the new VMA.
	b := mustMap(t, as, 0x0800, 0x2000, "b")
	if got := as.Find(0x1800); got != b {
		t.Fatalf("Find after overlapping remap = %v, want %v", got, b)
	}

	// Brk mutations invalidate a cached heap hit too: shrink the heap,
	// remap the freed tail, and the tail must resolve to the new mapping.
	as2 := newAS()
	NewLayout(as2, 0x10000, 0x10000)
	heap := as2.FindByName(RegionHeap)
	tail := heap.End - PageSize
	if as2.Find(tail) != heap {
		t.Fatal("heap warm-up Find missed")
	}
	as2.Brk(tail) // shrink: [tail, oldEnd) is no longer heap
	if as2.last == heap {
		t.Fatal("Brk shrink left the cache covering a range the heap lost")
	}
	blocker := mustMap(t, as2, tail, PageSize, "blocker")
	if got := as2.Find(tail); got != blocker {
		t.Fatalf("Find in freed heap tail = %v, want %v", got, blocker)
	}
}

// TestResidentAccounting pins the physical-page bookkeeping the kernel's
// pressure model is fed by: writable mappings count, read-only and kernel
// mappings do not, and Unmap/Brk/Discard/Commit move the counters.
func TestResidentAccounting(t *testing.T) {
	as := newAS()
	var observed int64
	as.OnResident = func(d int64) { observed += d }

	rw := mustMap(t, as, 0x1000, 8*PageSize, "rw")
	if got := as.ResidentPages(); got != 8 {
		t.Fatalf("resident after rw map = %d pages, want 8", got)
	}
	if rw.ResidentBytes() != 8*PageSize {
		t.Fatalf("VMA resident = %d", rw.ResidentBytes())
	}
	// Read-only file pages are evictable cache: not counted.
	mustMapPerm(t, as, 0x20000, 4*PageSize, "ro", PermRead)
	if got := as.ResidentPages(); got != 8 {
		t.Fatalf("resident after ro map = %d pages, want 8", got)
	}
	// The kernel direct map is shared physical memory: not counted.
	if _, err := as.Map(KernelVA, KernelLen, RegionKernel, PermRead|PermWrite|PermExec, ClassKernel); err != nil {
		t.Fatal(err)
	}
	if got := as.ResidentPages(); got != 8 {
		t.Fatalf("resident after kernel map = %d pages, want 8", got)
	}
	if got := as.ResidentPagesByClass(ClassAnon); got != 8 {
		t.Fatalf("anon class pages = %d, want 8", got)
	}

	// Discard releases pages without unmapping; Commit brings them back,
	// capped at the mapping size.
	if released := as.Discard(rw, 3*PageSize); released != 3*PageSize {
		t.Fatalf("Discard released %d", released)
	}
	if got := as.ResidentPages(); got != 5 {
		t.Fatalf("resident after discard = %d pages, want 5", got)
	}
	if committed := as.Commit(rw, 100*PageSize); committed != 3*PageSize {
		t.Fatalf("Commit added %d, want cap at %d", committed, 3*PageSize)
	}
	if got := as.ResidentPages(); got != 8 {
		t.Fatalf("resident after commit = %d pages, want 8", got)
	}

	if err := as.Unmap(rw); err != nil {
		t.Fatal(err)
	}
	if got := as.ResidentPages(); got != 0 {
		t.Fatalf("resident after unmap = %d pages, want 0", got)
	}
	if observed != 0 {
		t.Fatalf("observer saw net %d pages, want 0", observed)
	}
}

// TestBrkMovesResidentAccounting: heap growth commits pages, shrink releases
// them.
func TestBrkMovesResidentAccounting(t *testing.T) {
	as := newAS()
	NewLayout(as, 0x10000, 0x10000)
	heap := as.FindByName(RegionHeap)
	base := as.ResidentPages()
	as.Brk(heap.End + 4*PageSize)
	if got := as.ResidentPages(); got != base+4 {
		t.Fatalf("resident after Brk grow = %d, want %d", got, base+4)
	}
	as.Brk(heap.End - 2*PageSize)
	if got := as.ResidentPages(); got != base+2 {
		t.Fatalf("resident after Brk shrink = %d, want %d", got, base+2)
	}
}

// TestCloneCarriesResidentAccounting: a forked child reports the same
// countable resident set as its parent.
func TestCloneCarriesResidentAccounting(t *testing.T) {
	as := newAS()
	NewLayout(as, 0x10000, 0x10000)
	mustMap(t, as, 0x40000000, 16*PageSize, "anon")
	child := as.Clone()
	if child.ResidentPages() != as.ResidentPages() {
		t.Fatalf("clone resident = %d, parent = %d", child.ResidentPages(), as.ResidentPages())
	}
	if child.ResidentPagesByClass(ClassAnon) != as.ResidentPagesByClass(ClassAnon) {
		t.Fatal("clone per-class accounting diverged")
	}
}

func mustMap(t *testing.T, as *AddressSpace, start Addr, size uint64, name string) *VMA {
	t.Helper()
	return mustMapPerm(t, as, start, size, name, PermRead|PermWrite)
}

func mustMapPerm(t *testing.T, as *AddressSpace, start Addr, size uint64, name string, p Perm) *VMA {
	t.Helper()
	v, err := as.Map(start, size, name, p, ClassAnon)
	if err != nil {
		t.Fatal(err)
	}
	return v
}
