package mem

import (
	"fmt"
	"sort"

	"agave/internal/stats"
)

// AddressSpace is one process's virtual memory map: a sorted, non-overlapping
// set of VMAs plus the brk pointer for the classic heap.
type AddressSpace struct {
	vmas []*VMA // sorted by Start
	brk  Addr   // current program break (top of the "heap" VMA)

	collector *stats.Collector

	// lookup cache: the last VMA hit. Valid because the simulator advances
	// one thread at a time.
	last *VMA
}

// NewAddressSpace returns an empty map whose VMAs intern their region names
// into c.
func NewAddressSpace(c *stats.Collector) *AddressSpace {
	return &AddressSpace{collector: c}
}

// Collector exposes the stats collector used for region interning.
func (as *AddressSpace) Collector() *stats.Collector { return as.collector }

// Map installs a VMA covering [start, start+size). size is rounded up to a
// whole number of pages. It returns an error if the range overlaps an
// existing mapping.
func (as *AddressSpace) Map(start Addr, size uint64, name string, perms Perm, class Class) (*VMA, error) {
	size = roundUp(size)
	if size == 0 {
		return nil, fmt.Errorf("mem: zero-size mapping %q", name)
	}
	end := start + size
	if i := as.overlapIndex(start, end); i >= 0 {
		return nil, fmt.Errorf("mem: mapping %q [%#x,%#x) overlaps %s", name, start, end, as.vmas[i])
	}
	v := &VMA{
		Start:  start,
		End:    end,
		Name:   name,
		Perms:  perms,
		Class:  class,
		Region: as.collector.Region(name),
	}
	as.insert(v)
	return v, nil
}

// MapAnywhere installs a VMA of the given size at the lowest free gap at or
// above hint.
func (as *AddressSpace) MapAnywhere(hint Addr, size uint64, name string, perms Perm, class Class) *VMA {
	size = roundUp(size)
	start := as.findGap(hint, size)
	v, err := as.Map(start, size, name, perms, class)
	if err != nil {
		// findGap guarantees no overlap; reaching here is a bug.
		panic(err)
	}
	return v
}

// MapShared installs a VMA aliasing the backing store of src (which may
// belong to another address space), at the lowest free gap at or above hint.
// The new VMA shares src's name, class, and bytes.
func (as *AddressSpace) MapShared(hint Addr, src *VMA, perms Perm) *VMA {
	src.materialize()
	v := as.MapAnywhere(hint, src.Size(), src.Name, perms, src.Class)
	v.Shared = true
	v.store = src.store
	src.Shared = true
	return v
}

// Unmap removes the VMA. It is an error to unmap a VMA not in this space.
func (as *AddressSpace) Unmap(v *VMA) error {
	for i, w := range as.vmas {
		if w == v {
			as.vmas = append(as.vmas[:i], as.vmas[i+1:]...)
			if as.last == v {
				as.last = nil
			}
			return nil
		}
	}
	return fmt.Errorf("mem: unmap of unknown VMA %s", v)
}

// Find resolves addr to its containing VMA, or nil when unmapped.
func (as *AddressSpace) Find(addr Addr) *VMA {
	if as.last != nil && as.last.Contains(addr) {
		return as.last
	}
	i := sort.Search(len(as.vmas), func(i int) bool { return as.vmas[i].End > addr })
	if i < len(as.vmas) && as.vmas[i].Contains(addr) {
		as.last = as.vmas[i]
		return as.vmas[i]
	}
	return nil
}

// FindByName returns the first VMA with the given name, or nil.
func (as *AddressSpace) FindByName(name string) *VMA {
	for _, v := range as.vmas {
		if v.Name == name {
			return v
		}
	}
	return nil
}

// VMAs returns the mappings in address order. The caller must not mutate the
// slice.
func (as *AddressSpace) VMAs() []*VMA { return as.vmas }

// Count reports the number of mappings.
func (as *AddressSpace) Count() int { return len(as.vmas) }

// SetBrk initializes the program break used by Brk growth.
func (as *AddressSpace) SetBrk(brk Addr) { as.brk = brk }

// Brk grows (or shrinks) the classic heap VMA to the new break and returns
// the resulting break. Growing fails silently (returning the old break) if it
// would collide with the next mapping, mirroring Linux.
func (as *AddressSpace) Brk(newBrk Addr) Addr {
	heap := as.FindByName("heap")
	if heap == nil || newBrk == 0 {
		return as.brk
	}
	newBrk = roundUp(newBrk)
	if newBrk <= heap.Start {
		return as.brk
	}
	if i := as.overlapIndexExcept(heap.Start, newBrk, heap); i >= 0 {
		return as.brk
	}
	if newBrk > heap.End && heap.store != nil && heap.store.data != nil {
		grown := make([]byte, newBrk-heap.Start)
		copy(grown, heap.store.data)
		heap.store.data = grown
	}
	heap.End = newBrk
	as.brk = newBrk
	return as.brk
}

// Clone produces the child address space of a fork. Shared and read-only
// VMAs alias the parent's backing store (zygote's copy-on-write model: text,
// preloaded heaps); writable private VMAs are deep-copied if materialized.
func (as *AddressSpace) Clone() *AddressSpace {
	child := NewAddressSpace(as.collector)
	child.brk = as.brk
	child.vmas = make([]*VMA, 0, len(as.vmas))
	for _, v := range as.vmas {
		nv := &VMA{
			Start:  v.Start,
			End:    v.End,
			Name:   v.Name,
			Perms:  v.Perms,
			Class:  v.Class,
			Region: v.Region,
			Shared: v.Shared,
		}
		switch {
		case v.Shared || v.Perms&PermWrite == 0:
			nv.store = v.store
		case v.store != nil && v.store.data != nil:
			nv.store = &store{data: append([]byte(nil), v.store.data...)}
		}
		child.vmas = append(child.vmas, nv)
	}
	return child
}

func (as *AddressSpace) insert(v *VMA) {
	i := sort.Search(len(as.vmas), func(i int) bool { return as.vmas[i].Start >= v.Start })
	as.vmas = append(as.vmas, nil)
	copy(as.vmas[i+1:], as.vmas[i:])
	as.vmas[i] = v
}

func (as *AddressSpace) overlapIndex(start, end Addr) int {
	return as.overlapIndexExcept(start, end, nil)
}

func (as *AddressSpace) overlapIndexExcept(start, end Addr, skip *VMA) int {
	for i, v := range as.vmas {
		if v != skip && v.Start < end && start < v.End {
			return i
		}
	}
	return -1
}

// findGap locates the lowest page-aligned start ≥ hint such that
// [start, start+size) is unmapped.
func (as *AddressSpace) findGap(hint Addr, size uint64) Addr {
	start := roundUp(hint)
	for {
		i := as.overlapIndex(start, start+size)
		if i < 0 {
			return start
		}
		start = as.vmas[i].End
	}
}

func roundUp(n uint64) uint64 {
	return (n + PageSize - 1) &^ uint64(PageSize-1)
}
