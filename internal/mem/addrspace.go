package mem

import (
	"fmt"
	"sort"

	"agave/internal/stats"
)

// AddressSpace is one process's virtual memory map: a sorted, non-overlapping
// set of VMAs plus the brk pointer for the classic heap.
//
// The address space also keeps the resident-set accounting the kernel's
// memory-pressure model is fed by: every Map/Unmap/Brk/Discard/Commit updates
// a per-class page count, and the OnResident hook reports the delta to the
// owner (the kernel's global physical-page budget). Only writable non-kernel
// mappings count — read-only file pages are evictable cache and the kernel
// direct map is shared physical memory, so neither pins pages. Shared
// writable mappings (ashmem, gralloc) count once per address space that maps
// them, a deliberate simplification.
type AddressSpace struct {
	vmas []*VMA // sorted by Start
	brk  Addr   // current program break (top of the "heap" VMA)

	collector *stats.Collector

	// OnResident, when non-nil, observes every resident-page delta. The
	// kernel attaches it so process mappings feed the machine-wide page
	// budget; leave nil for standalone spaces.
	OnResident func(deltaPages int64)

	residentPages uint64
	classPages    [ClassRuntime + 1]uint64

	// lookup cache: the last VMA hit. Valid because the simulator advances
	// one thread at a time.
	last *VMA

	// vmaSlab is a chunked allocator for VMA structs: Map is called dozens
	// of times per process launch, and individual VMA allocations were a
	// measurable share of scenario allocs. Entries are handed out zeroed.
	vmaSlab []VMA
}

// NewAddressSpace returns an empty map whose VMAs intern their region names
// into c.
func NewAddressSpace(c *stats.Collector) *AddressSpace {
	return &AddressSpace{collector: c}
}

// Collector exposes the stats collector used for region interning.
func (as *AddressSpace) Collector() *stats.Collector { return as.collector }

// ResidentPages reports the pressure-relevant resident set of the whole
// address space, in pages.
func (as *AddressSpace) ResidentPages() uint64 { return as.residentPages }

// ResidentPagesByClass reports the resident pages of one region class.
func (as *AddressSpace) ResidentPagesByClass(c Class) uint64 {
	if int(c) >= len(as.classPages) {
		return 0
	}
	return as.classPages[c]
}

// countable reports whether a mapping pins physical pages in the pressure
// model: writable (dirty-able) and not the shared kernel image.
func countable(v *VMA) bool {
	return v.Perms&PermWrite != 0 && v.Class != ClassKernel
}

// addResident applies a resident-byte delta to v and to the per-class and
// whole-space page counts, reporting the page delta through OnResident.
// deltaBytes must be page-aligned.
func (as *AddressSpace) addResident(v *VMA, deltaBytes int64) {
	if deltaBytes == 0 || !countable(v) {
		return
	}
	pages := deltaBytes / PageSize
	v.resident = uint64(int64(v.resident) + deltaBytes)
	as.residentPages = uint64(int64(as.residentPages) + pages)
	if int(v.Class) < len(as.classPages) {
		as.classPages[v.Class] = uint64(int64(as.classPages[v.Class]) + pages)
	}
	if as.OnResident != nil {
		as.OnResident(pages)
	}
}

// invalidate drops the lookup cache when a mutation touches [start, end).
// Every mutation of the map (Map, Unmap, Brk) funnels through this, so the
// cache can never outlive a VMA whose range it covers: a freed-and-remapped
// range always resolves through the authoritative sorted slice.
func (as *AddressSpace) invalidate(start, end Addr) {
	if as.last != nil && as.last.Start < end && start < as.last.End {
		as.last = nil
	}
}

// Map installs a VMA covering [start, start+size). size is rounded up to a
// whole number of pages. It returns an error if the range overlaps an
// existing mapping.
func (as *AddressSpace) Map(start Addr, size uint64, name string, perms Perm, class Class) (*VMA, error) {
	size = roundUp(size)
	if size == 0 {
		return nil, fmt.Errorf("mem: zero-size mapping %q", name)
	}
	end := start + size
	if i := as.overlapIndex(start, end); i >= 0 {
		return nil, fmt.Errorf("mem: mapping %q [%#x,%#x) overlaps %s", name, start, end, as.vmas[i])
	}
	v := as.newVMA()
	v.Start = start
	v.End = end
	v.Name = name
	v.Perms = perms
	v.Class = class
	v.Region = as.collector.Region(name)
	as.insert(v)
	as.invalidate(v.Start, v.End)
	as.addResident(v, int64(size))
	return v, nil
}

// MapAnywhere installs a VMA of the given size at the lowest free gap at or
// above hint.
func (as *AddressSpace) MapAnywhere(hint Addr, size uint64, name string, perms Perm, class Class) *VMA {
	size = roundUp(size)
	start := as.findGap(hint, size)
	v, err := as.Map(start, size, name, perms, class)
	if err != nil {
		// findGap guarantees no overlap; reaching here is a bug.
		panic(err)
	}
	return v
}

// MapShared installs a VMA aliasing the backing store of src (which may
// belong to another address space), at the lowest free gap at or above hint.
// The new VMA shares src's name, class, and bytes.
func (as *AddressSpace) MapShared(hint Addr, src *VMA, perms Perm) *VMA {
	// A frozen fork snapshot cannot be aliased: the first write on either
	// side would thaw it into a private copy and the alias would diverge.
	// ensure(0) thaws src (and creates its store if absent) before sharing;
	// later in-place growth keeps every alias in sync because all aliases
	// hold the same store struct.
	src.ensure(0)
	v := as.MapAnywhere(hint, src.Size(), src.Name, perms, src.Class)
	v.Shared = true
	v.store = src.store
	src.Shared = true
	return v
}

// Unmap removes the VMA. It is an error to unmap a VMA not in this space.
func (as *AddressSpace) Unmap(v *VMA) error {
	for i, w := range as.vmas {
		if w == v {
			as.vmas = append(as.vmas[:i], as.vmas[i+1:]...)
			as.invalidate(v.Start, v.End)
			as.addResident(v, -int64(v.resident))
			return nil
		}
	}
	return fmt.Errorf("mem: unmap of unknown VMA %s", v)
}

// Discard releases up to bytes of v's resident pages without unmapping it —
// the madvise(MADV_DONTNEED) a trimming runtime issues on the free tail of
// its heap. The amount is rounded up to whole pages and clamped to what is
// resident; the bytes actually released are returned.
func (as *AddressSpace) Discard(v *VMA, bytes uint64) uint64 {
	if !countable(v) {
		return 0
	}
	bytes = roundUp(bytes)
	if bytes > v.resident {
		bytes = v.resident
	}
	as.addResident(v, -int64(bytes))
	return bytes
}

// Commit re-commits bytes of v after a Discard (the page faults of touching
// discarded pages again), capped at the mapping size. It returns the bytes
// actually committed.
func (as *AddressSpace) Commit(v *VMA, bytes uint64) uint64 {
	if !countable(v) {
		return 0
	}
	bytes = roundUp(bytes)
	if v.resident+bytes > v.Size() {
		bytes = v.Size() - v.resident
	}
	as.addResident(v, int64(bytes))
	return bytes
}

// Find resolves addr to its containing VMA, or nil when unmapped.
func (as *AddressSpace) Find(addr Addr) *VMA {
	if as.last != nil && as.last.Contains(addr) {
		return as.last
	}
	i := sort.Search(len(as.vmas), func(i int) bool { return as.vmas[i].End > addr })
	if i < len(as.vmas) && as.vmas[i].Contains(addr) {
		as.last = as.vmas[i]
		return as.vmas[i]
	}
	return nil
}

// FindByName returns the first VMA with the given name, or nil.
func (as *AddressSpace) FindByName(name string) *VMA {
	for _, v := range as.vmas {
		if v.Name == name {
			return v
		}
	}
	return nil
}

// VMAs returns the mappings in address order. The caller must not mutate the
// slice.
func (as *AddressSpace) VMAs() []*VMA { return as.vmas }

// Count reports the number of mappings.
func (as *AddressSpace) Count() int { return len(as.vmas) }

// SetBrk initializes the program break used by Brk growth.
func (as *AddressSpace) SetBrk(brk Addr) { as.brk = brk }

// Brk grows (or shrinks) the classic heap VMA to the new break and returns
// the resulting break. Growing fails silently (returning the old break) if it
// would collide with the next mapping, mirroring Linux.
func (as *AddressSpace) Brk(newBrk Addr) Addr {
	heap := as.FindByName("heap")
	if heap == nil || newBrk == 0 {
		return as.brk
	}
	newBrk = roundUp(newBrk)
	if newBrk <= heap.Start {
		return as.brk
	}
	if i := as.overlapIndexExcept(heap.Start, newBrk, heap); i >= 0 {
		return as.brk
	}
	// Growth does not touch the store: Slice grows the backing on demand the
	// first time the new range is actually touched, which also keeps a
	// frozen post-fork snapshot intact until a real access thaws it.
	// Invalidate against the pre-mutation extent: a shrink takes addresses
	// away from a possibly-cached heap hit.
	oldEnd := heap.End
	if newBrk < oldEnd {
		as.invalidate(newBrk, oldEnd)
	}
	heap.End = newBrk
	as.brk = newBrk
	if newBrk >= oldEnd {
		as.addResident(heap, int64(newBrk-oldEnd))
	} else {
		shrunk := oldEnd - newBrk
		if shrunk > heap.resident {
			shrunk = heap.resident
		}
		as.addResident(heap, -int64(shrunk))
	}
	return as.brk
}

// Clone produces the child address space of a fork. Shared and read-only
// VMAs alias the parent's backing store (zygote's copy-on-write model: text,
// preloaded heaps); writable private VMAs are snapshotted copy-on-write: the
// store is frozen and shared with the child, and the first Slice on either
// side thaws it into a private copy (VMA.ensure). A fork therefore copies no
// arena bytes at all — the zygote's preloaded-but-mostly-idle heaps cost
// nothing until a side actually writes them.
func (as *AddressSpace) Clone() *AddressSpace {
	child := NewAddressSpace(as.collector)
	child.brk = as.brk
	// One slab for all child VMA structs: address spaces here have dozens of
	// mappings, and forks are frequent enough that per-VMA allocations were a
	// measurable share of scenario allocs.
	slab := make([]VMA, len(as.vmas))
	child.vmas = make([]*VMA, len(as.vmas))
	for i, v := range as.vmas {
		nv := &slab[i]
		nv.Start = v.Start
		nv.End = v.End
		nv.Name = v.Name
		nv.Perms = v.Perms
		nv.Class = v.Class
		nv.Region = v.Region
		nv.Shared = v.Shared
		nv.resident = v.resident
		if countable(nv) {
			child.residentPages += nv.resident / PageSize
			if int(nv.Class) < len(child.classPages) {
				child.classPages[nv.Class] += nv.resident / PageSize
			}
		}
		switch {
		case v.Shared || v.Perms&PermWrite == 0:
			nv.store = v.store
		case v.store != nil && v.store.hi > 0:
			// Freeze the touched snapshot and share it. Neither side may
			// mutate a frozen store, so this is safe across repeated forks:
			// untouched children all reference the same immutable snapshot.
			v.store.frozen = true
			nv.store = v.store
		}
		// A writable private store with hi == 0 has no touched bytes: the
		// child starts unmaterialized, which reads identically (all zero).
		child.vmas[i] = nv
	}
	return child
}

// newVMA hands out a zeroed VMA struct from the chunked slab.
func (as *AddressSpace) newVMA() *VMA {
	if len(as.vmaSlab) == 0 {
		as.vmaSlab = make([]VMA, 16)
	}
	v := &as.vmaSlab[0]
	as.vmaSlab = as.vmaSlab[1:]
	return v
}

func (as *AddressSpace) insert(v *VMA) {
	i := sort.Search(len(as.vmas), func(i int) bool { return as.vmas[i].Start >= v.Start })
	as.vmas = append(as.vmas, nil)
	copy(as.vmas[i+1:], as.vmas[i:])
	as.vmas[i] = v
}

func (as *AddressSpace) overlapIndex(start, end Addr) int {
	return as.overlapIndexExcept(start, end, nil)
}

func (as *AddressSpace) overlapIndexExcept(start, end Addr, skip *VMA) int {
	for i, v := range as.vmas {
		if v != skip && v.Start < end && start < v.End {
			return i
		}
	}
	return -1
}

// findGap locates the lowest page-aligned start ≥ hint such that
// [start, start+size) is unmapped.
func (as *AddressSpace) findGap(hint Addr, size uint64) Addr {
	start := roundUp(hint)
	for {
		i := as.overlapIndex(start, start+size)
		if i < 0 {
			return start
		}
		start = as.vmas[i].End
	}
}

func roundUp(n uint64) uint64 {
	return (n + PageSize - 1) &^ uint64(PageSize-1)
}
