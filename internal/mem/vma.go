// Package mem models per-process virtual memory as the paper measures it:
// each address space is an ordered set of named virtual memory areas (VMAs),
// and every simulated access resolves to the VMA containing its address. The
// VMA *name* ("libdvm.so", "dalvik-heap", "gralloc-buffer", "anonymous", ...)
// is the unit of the paper's Figures 1 and 2.
package mem

import (
	"fmt"

	"agave/internal/stats"
)

// Addr is a simulated 32-bit virtual address (held in 64 bits for headroom).
type Addr = uint64

// PageSize is the simulated page size.
const PageSize = 4096

// Perm is a VMA permission bitmask.
type Perm uint8

// Permission bits.
const (
	PermRead Perm = 1 << iota
	PermWrite
	PermExec
)

// String renders perms in /proc/pid/maps style.
func (p Perm) String() string {
	b := []byte("---")
	if p&PermRead != 0 {
		b[0] = 'r'
	}
	if p&PermWrite != 0 {
		b[1] = 'w'
	}
	if p&PermExec != 0 {
		b[2] = 'x'
	}
	return string(b)
}

// Class is a coarse taxonomy of regions used by reporting and by layout
// decisions. The figures key on names, but the class drives behaviours such
// as which regions fork shares versus copies.
type Class uint8

// Region classes.
const (
	ClassText    Class = iota // an executable image: app binary or .so text
	ClassData                 // an image's writable data segment
	ClassHeap                 // the classic brk heap
	ClassStack                // a main-thread stack
	ClassAnon                 // anonymous mmap (includes thread stacks)
	ClassShared               // shared between processes (ashmem, gralloc, ...)
	ClassDevice               // device mapping (fb0, binder, ...)
	ClassKernel               // the pseudo-region for kernel-mode execution
	ClassRuntime              // managed-runtime arenas (dalvik-heap, LinearAlloc, jit cache, mspace)
)

// VMA is one contiguous mapped region [Start, End) of an address space.
type VMA struct {
	Start Addr
	End   Addr
	Name  string
	Perms Perm
	Class Class

	// Region is the interned stats ID for Name, cached so the accounting
	// hot path avoids string work.
	Region stats.RegionID

	// Shared marks mappings whose backing is shared across address spaces
	// (and therefore across fork).
	Shared bool

	// resident is the number of bytes of the mapping currently backed by
	// physical pages, as the owning AddressSpace accounts them. Only
	// pressure-relevant mappings (writable, non-kernel) are tracked; it is
	// maintained by AddressSpace.Map/Unmap/Brk/Discard/Commit.
	resident uint64

	store *store
}

// ResidentBytes reports how many bytes of the VMA the physical-page
// accounting currently counts as resident. Read-only and kernel mappings
// report zero: their pages are clean file cache (or the shared kernel image)
// and never pin memory in the pressure model.
func (v *VMA) ResidentBytes() uint64 { return v.resident }

// Size reports the VMA length in bytes.
func (v *VMA) Size() uint64 { return v.End - v.Start }

// Contains reports whether addr falls inside the VMA.
func (v *VMA) Contains(addr Addr) bool { return addr >= v.Start && addr < v.End }

// String renders the VMA in /proc/pid/maps style.
func (v *VMA) String() string {
	return fmt.Sprintf("%08x-%08x %s %s", v.Start, v.End, v.Perms, v.Name)
}

// Slice returns a mutable view of n bytes starting at byte offset off within
// the VMA, materializing backing storage on first touch. Programs that do
// real computation on simulated memory (decoders, rasterizers, interpreters)
// operate on these views.
//
// Views are transient: growth (and thawing of a fork snapshot) replaces the
// backing array, copying the touched prefix, so a view taken before an
// intervening Slice call on the same store may alias stale — but
// byte-identical — memory. Callers must re-Slice before writing after any
// other Slice on the same store (see docs/ARCHITECTURE.md, "Hot path &
// pooling").
func (v *VMA) Slice(off, n uint64) []byte {
	end := off + n
	if end > v.Size() {
		panic(fmt.Sprintf("mem: slice [%d,%d) outside %s of size %d", off, end, v.Name, v.Size()))
	}
	s := v.store
	if s == nil || s.frozen || uint64(len(s.data)) < end {
		s = v.ensure(end)
	}
	if end > s.hi {
		s.hi = end
	}
	return s.data[off:end]
}

// Bytes returns a mutable view of the whole VMA.
func (v *VMA) Bytes() []byte { return v.Slice(0, v.Size()) }

// AddrOf converts a byte offset within the VMA to a virtual address.
func (v *VMA) AddrOf(off uint64) Addr {
	if off > v.Size() {
		panic(fmt.Sprintf("mem: offset %d outside %s", off, v.Name))
	}
	return v.Start + off
}

// ensure gives v a private, writable store whose backing array covers at
// least [0, end). It handles the two slow paths Slice kicks out to:
//
//   - a frozen store (snapshotted by a fork): replaced with a private copy
//     of the touched prefix, leaving the snapshot untouched for the other
//     side of the fork;
//   - a backing array shorter than end: grown in place (the store struct is
//     retained so shared mappings aliasing it observe the growth) with
//     amortized doubling capped at the VMA size.
//
// Either way only data[:hi] is copied — data[hi:] is all-zero by the Slice
// invariant, and fresh arrays are already zero.
func (v *VMA) ensure(end uint64) *store {
	s := v.store
	if s == nil {
		s = &store{}
		v.store = s
	}
	if s.frozen {
		// Thaw: this side of the fork touches the mapping first (or again);
		// give it a private array covering end. The array never shrinks below
		// the snapshot's extent — a heap shrunk by Brk keeps stale bytes past
		// the break (and hi may exceed the VMA size), and those must survive
		// the thaw so they reappear on regrowth exactly as without a fork.
		want := grownLen(end, v.Size())
		if n := uint64(len(s.data)); n > want {
			want = n
		}
		data := make([]byte, want)
		copy(data, s.data[:s.hi])
		ns := &store{data: data, hi: s.hi}
		v.store = ns
		return ns
	}
	if uint64(len(s.data)) < end {
		data := make([]byte, grownLen(end, v.Size()))
		copy(data, s.data[:s.hi])
		s.data = data
	}
	return s
}

// grownLen picks the new backing length for a store that must cover at least
// need bytes of a VMA of size max: amortized doubling from a one-page floor,
// capped at the mapping size.
func grownLen(need, max uint64) uint64 {
	if need >= max {
		return max
	}
	n := uint64(PageSize)
	for n < need {
		n <<= 1
	}
	if n > max {
		n = max
	}
	return n
}

// store is the byte backing of a VMA. Shared VMAs alias one store across
// address spaces; private VMAs copy on write after fork.
//
// hi is the touched high-water mark: every mutable view of the backing is
// handed out by Slice, which raises hi past the view's end, so data[hi:] is
// guaranteed all-zero. The backing array is grown on demand (amortized
// doubling, capped at the mapping size), so len(data) can be anywhere from 0
// to the VMA size; untouched tail bytes read as zero once grown.
//
// frozen marks a snapshot shared between a forked parent and child: neither
// data nor hi may be mutated while set. The first Slice on either side thaws
// the mapping by installing a private copy of the touched prefix (see
// VMA.ensure), which is exactly copy-on-write at store granularity — repeated
// forks of untouched arenas copy nothing.
type store struct {
	data   []byte
	hi     uint64
	frozen bool
}
