// Package mem models per-process virtual memory as the paper measures it:
// each address space is an ordered set of named virtual memory areas (VMAs),
// and every simulated access resolves to the VMA containing its address. The
// VMA *name* ("libdvm.so", "dalvik-heap", "gralloc-buffer", "anonymous", ...)
// is the unit of the paper's Figures 1 and 2.
package mem

import (
	"fmt"

	"agave/internal/stats"
)

// Addr is a simulated 32-bit virtual address (held in 64 bits for headroom).
type Addr = uint64

// PageSize is the simulated page size.
const PageSize = 4096

// Perm is a VMA permission bitmask.
type Perm uint8

// Permission bits.
const (
	PermRead Perm = 1 << iota
	PermWrite
	PermExec
)

// String renders perms in /proc/pid/maps style.
func (p Perm) String() string {
	b := []byte("---")
	if p&PermRead != 0 {
		b[0] = 'r'
	}
	if p&PermWrite != 0 {
		b[1] = 'w'
	}
	if p&PermExec != 0 {
		b[2] = 'x'
	}
	return string(b)
}

// Class is a coarse taxonomy of regions used by reporting and by layout
// decisions. The figures key on names, but the class drives behaviours such
// as which regions fork shares versus copies.
type Class uint8

// Region classes.
const (
	ClassText    Class = iota // an executable image: app binary or .so text
	ClassData                 // an image's writable data segment
	ClassHeap                 // the classic brk heap
	ClassStack                // a main-thread stack
	ClassAnon                 // anonymous mmap (includes thread stacks)
	ClassShared               // shared between processes (ashmem, gralloc, ...)
	ClassDevice               // device mapping (fb0, binder, ...)
	ClassKernel               // the pseudo-region for kernel-mode execution
	ClassRuntime              // managed-runtime arenas (dalvik-heap, LinearAlloc, jit cache, mspace)
)

// VMA is one contiguous mapped region [Start, End) of an address space.
type VMA struct {
	Start Addr
	End   Addr
	Name  string
	Perms Perm
	Class Class

	// Region is the interned stats ID for Name, cached so the accounting
	// hot path avoids string work.
	Region stats.RegionID

	// Shared marks mappings whose backing is shared across address spaces
	// (and therefore across fork).
	Shared bool

	// resident is the number of bytes of the mapping currently backed by
	// physical pages, as the owning AddressSpace accounts them. Only
	// pressure-relevant mappings (writable, non-kernel) are tracked; it is
	// maintained by AddressSpace.Map/Unmap/Brk/Discard/Commit.
	resident uint64

	store *store
}

// ResidentBytes reports how many bytes of the VMA the physical-page
// accounting currently counts as resident. Read-only and kernel mappings
// report zero: their pages are clean file cache (or the shared kernel image)
// and never pin memory in the pressure model.
func (v *VMA) ResidentBytes() uint64 { return v.resident }

// Size reports the VMA length in bytes.
func (v *VMA) Size() uint64 { return v.End - v.Start }

// Contains reports whether addr falls inside the VMA.
func (v *VMA) Contains(addr Addr) bool { return addr >= v.Start && addr < v.End }

// String renders the VMA in /proc/pid/maps style.
func (v *VMA) String() string {
	return fmt.Sprintf("%08x-%08x %s %s", v.Start, v.End, v.Perms, v.Name)
}

// Slice returns a mutable view of n bytes starting at byte offset off within
// the VMA, materializing backing storage on first touch. Programs that do
// real computation on simulated memory (decoders, rasterizers, interpreters)
// operate on these views.
func (v *VMA) Slice(off, n uint64) []byte {
	if off+n > v.Size() {
		panic(fmt.Sprintf("mem: slice [%d,%d) outside %s of size %d", off, off+n, v.Name, v.Size()))
	}
	v.materialize()
	if off+n > v.store.hi {
		v.store.hi = off + n
	}
	return v.store.data[off : off+n]
}

// Bytes returns a mutable view of the whole VMA.
func (v *VMA) Bytes() []byte { return v.Slice(0, v.Size()) }

// AddrOf converts a byte offset within the VMA to a virtual address.
func (v *VMA) AddrOf(off uint64) Addr {
	if off > v.Size() {
		panic(fmt.Sprintf("mem: offset %d outside %s", off, v.Name))
	}
	return v.Start + off
}

func (v *VMA) materialize() {
	if v.store == nil {
		v.store = &store{}
	}
	if v.store.data == nil {
		v.store.data = make([]byte, v.Size())
	}
}

// store is the byte backing of a VMA. Shared VMAs alias one store across
// address spaces; private VMAs deep-copy on fork once materialized.
//
// hi is the touched high-water mark: every mutable view of the backing is
// handed out by Slice, which raises hi past the view's end, so data[hi:] is
// guaranteed all-zero. Fork (AddressSpace.Clone) and brk growth exploit this
// by copying only the touched prefix of a mostly-empty arena — the zygote's
// preloaded-but-unwritten heaps — instead of the whole mapping.
type store struct {
	data []byte
	hi   uint64
}
