package mem

// Canonical region names. These strings are the figure legend entries of the
// paper, so they are defined once here and used verbatim everywhere.
const (
	RegionKernel      = "OS kernel"
	RegionAppBinary   = "app binary"
	RegionHeap        = "heap"
	RegionStack       = "stack"
	RegionAnonymous   = "anonymous"
	RegionMspace      = "mspace"
	RegionDalvikHeap  = "dalvik-heap"
	RegionLinearAlloc = "dalvik-LinearAlloc"
	RegionJITCache    = "dalvik-jit-code-cache"
	RegionGralloc     = "gralloc-buffer"
	RegionFramebuffer = "fb0 (frame buffer)"
	RegionLibDVM      = "libdvm.so"
	RegionLibSkia     = "libskia.so"
	RegionLibC        = "libc.so"
	RegionStagefright = "libstagefright.so"
	RegionCR3Engine   = "libcr3engine-3-1-1.so"
)

// Classic 32-bit ARM Linux layout anchors (Gingerbread era).
const (
	TextBase  Addr = 0x0000_8000 // app binary text
	HeapBase  Addr = 0x0010_0000 // brk heap start
	MmapBase  Addr = 0x4000_0000 // shared libraries and anonymous mmaps
	StackTop  Addr = 0xbf00_0000 // main stack grows down from here
	KernelVA  Addr = 0xc000_0000 // kernel direct map
	KernelLen      = 0x1000_0000
)

// DefaultStackSize is the main-thread stack reservation.
const DefaultStackSize = 8 << 20

// ThreadStackSize is the pthread stack mmap size (anonymous region, as on
// real Gingerbread where thread stacks are anonymous mmaps).
const ThreadStackSize = 1 << 20

// Layout installs the canonical skeleton of a process address space: app
// binary text, heap, main stack, and the kernel pseudo-region. Library and
// runtime regions are layered on by the loader and the runtime models.
type Layout struct {
	Text   *VMA
	Heap   *VMA
	Stack  *VMA
	Kernel *VMA
	// NextLib is the bump pointer used when mapping shared libraries.
	NextLib Addr
}

// NewLayout builds the skeleton in as. textSize and heapSize are rounded up
// to pages; the heap can later grow via Brk.
func NewLayout(as *AddressSpace, textSize, heapSize uint64) *Layout {
	l := &Layout{NextLib: MmapBase}
	var err error
	if l.Text, err = as.Map(TextBase, textSize, RegionAppBinary, PermRead|PermExec, ClassText); err != nil {
		panic(err)
	}
	heapBase := HeapBase
	if l.Text.End > heapBase {
		heapBase = l.Text.End
	}
	if l.Heap, err = as.Map(heapBase, heapSize, RegionHeap, PermRead|PermWrite, ClassHeap); err != nil {
		panic(err)
	}
	as.SetBrk(l.Heap.End)
	if l.Stack, err = as.Map(StackTop-DefaultStackSize, DefaultStackSize, RegionStack, PermRead|PermWrite, ClassStack); err != nil {
		panic(err)
	}
	if l.Kernel, err = as.Map(KernelVA, KernelLen, RegionKernel, PermRead|PermWrite|PermExec, ClassKernel); err != nil {
		panic(err)
	}
	return l
}

// MapLibrary maps a shared object's text at the lib bump pointer and returns
// the text VMA. A writable data segment named like "name (data)" is mapped
// immediately after when dataSize > 0; it is returned second.
func (l *Layout) MapLibrary(as *AddressSpace, name string, textSize, dataSize uint64) (text, data *VMA) {
	text = as.MapAnywhere(l.NextLib, textSize, name, PermRead|PermExec, ClassText)
	l.NextLib = text.End
	if dataSize > 0 {
		data = as.MapAnywhere(l.NextLib, dataSize, name+" (data)", PermRead|PermWrite, ClassData)
		l.NextLib = data.End
	}
	return text, data
}

// MapAnon maps an anonymous region (thread stacks, big mallocs above
// MMAP_THRESHOLD, scratch arenas). All anonymous mappings share the single
// "anonymous" region name, as in the paper's Linux accounting.
func (l *Layout) MapAnon(as *AddressSpace, size uint64) *VMA {
	v := as.MapAnywhere(l.NextLib, size, RegionAnonymous, PermRead|PermWrite, ClassAnon)
	l.NextLib = v.End
	return v
}
