package kernel

import (
	"testing"

	"agave/internal/mem"
	"agave/internal/sim"
	"agave/internal/stats"
)

// execHarness runs body on a fresh process main thread and returns the
// kernel after the machine goes idle.
func execHarness(t *testing.T, body func(ex *Exec, p *Process)) *Kernel {
	t.Helper()
	k := New(Config{Quantum: 50 * sim.Microsecond, Seed: 1})
	t.Cleanup(k.Shutdown)
	p := k.NewProcess("benchmark", 1<<20, 1<<20)
	k.SpawnThread(p, "main", "main", func(ex *Exec) {
		ex.PushCode(p.Layout.Text)
		body(ex, p)
	})
	k.Run(20 * sim.Millisecond)
	return k
}

func TestCodeStackNesting(t *testing.T) {
	k := execHarness(t, func(ex *Exec, p *Process) {
		lib := p.AS.MapAnywhere(mem.MmapBase, 1<<16, "libfoo.so", mem.PermRead|mem.PermExec, mem.ClassText)
		ex.Fetch(10) // app binary
		ex.InCode(lib, func() {
			ex.Fetch(20) // libfoo.so
			ex.InCode(p.Layout.Kernel, func() {
				ex.Fetch(5) // kernel
			})
			ex.Fetch(3) // back in libfoo.so
		})
		ex.Fetch(7) // back in app binary
	})
	got := k.Stats.ByRegion(stats.IFetch)
	if got[mem.RegionAppBinary] != 17 || got["libfoo.so"] != 23 || got[mem.RegionKernel] < 5 {
		t.Fatalf("nested attribution wrong: %v", got)
	}
}

func TestPopCodeUnderflowPanics(t *testing.T) {
	panicked := false
	execHarness(t, func(ex *Exec, p *Process) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		// The stack holds [kernel, app text]: the first pop is legal,
		// the second would empty the stack and must refuse.
		ex.PopCode()
		ex.PopCode()
	})
	if !panicked {
		t.Fatal("PopCode underflow did not panic")
	}
}

func TestReadWriteAtResolveVMA(t *testing.T) {
	k := execHarness(t, func(ex *Exec, p *Process) {
		ex.ReadAt(p.Layout.Heap.Start + 64)
		ex.WriteAt(p.Layout.Stack.End - 8)
	})
	if k.Stats.ByRegion(stats.DataRead)[mem.RegionHeap] != 1 {
		t.Fatal("ReadAt misattributed")
	}
	if k.Stats.ByRegion(stats.DataWrite)[mem.RegionStack] != 1 {
		t.Fatal("WriteAt misattributed")
	}
}

func TestUnmappedAccessPanics(t *testing.T) {
	panicked := false
	execHarness(t, func(ex *Exec, p *Process) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		ex.ReadAt(0xdead0000) // far outside any mapping
	})
	if !panicked {
		t.Fatal("unmapped access did not panic")
	}
}

func TestDoAccountsExactCounts(t *testing.T) {
	k := execHarness(t, func(ex *Exec, p *Process) {
		ex.Do(Work{Fetch: 3, Reads: 2, Writes: 1, Data: p.Layout.Heap}, 10_000)
	})
	ifetch := k.Stats.ByRegion(stats.IFetch)[mem.RegionAppBinary]
	if ifetch != 30_000 {
		t.Fatalf("Do fetch = %d, want 30000", ifetch)
	}
	if r := k.Stats.ByRegion(stats.DataRead)[mem.RegionHeap]; r != 20_000 {
		t.Fatalf("Do reads = %d, want 20000", r)
	}
	if w := k.Stats.ByRegion(stats.DataWrite)[mem.RegionHeap]; w != 10_000 {
		t.Fatalf("Do writes = %d, want 10000", w)
	}
}

func TestDoWithTwoRegions(t *testing.T) {
	k := execHarness(t, func(ex *Exec, p *Process) {
		anon := p.Layout.MapAnon(p.AS, 1<<16)
		ex.Do(Work{Fetch: 1, Reads: 1, Data: p.Layout.Heap, Data2: anon}, 500)
	})
	if r := k.Stats.ByRegion(stats.DataRead); r[mem.RegionHeap] != 500 || r[mem.RegionAnonymous] != 500 {
		t.Fatalf("two-region Do wrong: %v", r)
	}
}

func TestDoZeroItersIsNoop(t *testing.T) {
	k := execHarness(t, func(ex *Exec, p *Process) {
		ex.Do(Work{Fetch: 5, Reads: 1, Data: p.Layout.Heap}, 0)
	})
	if got := k.Stats.ByProcess()["benchmark"]; got != 0 {
		t.Fatalf("zero-iteration Do accounted %d refs", got)
	}
}

func TestCopyAccountsBothSides(t *testing.T) {
	k := execHarness(t, func(ex *Exec, p *Process) {
		anon := p.Layout.MapAnon(p.AS, 1<<16)
		ex.Copy(anon, p.Layout.Heap, 1000, 2)
	})
	if r := k.Stats.ByRegion(stats.DataRead)[mem.RegionHeap]; r != 1000 {
		t.Fatalf("Copy reads = %d", r)
	}
	if w := k.Stats.ByRegion(stats.DataWrite)[mem.RegionAnonymous]; w != 1000 {
		t.Fatalf("Copy writes = %d", w)
	}
	if f := k.Stats.ByRegion(stats.IFetch)[mem.RegionAppBinary]; f != 2000 {
		t.Fatalf("Copy fetches = %d", f)
	}
}

func TestCopyBytesMovesRealData(t *testing.T) {
	execHarness(t, func(ex *Exec, p *Process) {
		src := p.Layout.MapAnon(p.AS, 1<<12)
		dst := p.Layout.MapAnon(p.AS, 1<<12)
		for i := 0; i < 256; i++ {
			src.Bytes()[i] = byte(i)
		}
		ex.CopyBytes(dst, 0, src, 0, 256)
		for i := 0; i < 256; i++ {
			if dst.Bytes()[i] != byte(i) {
				t.Fatalf("CopyBytes lost data at %d", i)
			}
		}
	})
}

func TestChargeAdvancesSimulatedTime(t *testing.T) {
	var before, after sim.Ticks
	k := execHarness(t, func(ex *Exec, p *Process) {
		before = ex.Now()
		ex.Fetch(500_000)
		// Time is only observable across a yield; force one.
		ex.Yield()
		after = ex.Now()
	})
	_ = k
	if after-before < 500_000 {
		t.Fatalf("500k instructions advanced only %d ticks", after-before)
	}
}

func TestSyscallFetchSplit(t *testing.T) {
	k := execHarness(t, func(ex *Exec, p *Process) {
		ex.Syscall(1000, 300)
	})
	// All syscall fetches are kernel-region; exactly `instr` many.
	if f := k.Stats.ByProcess(stats.IFetch)["benchmark"]; f != 1000 {
		t.Fatalf("syscall fetches = %d, want 1000", f)
	}
	if d := k.Stats.ByProcess(stats.DataKinds...)["benchmark"]; d != 300 {
		t.Fatalf("syscall data = %d, want 300", d)
	}
}
