package kernel

import (
	"testing"

	"agave/internal/mem"
	"agave/internal/sim"
	"agave/internal/stats"
)

func newTestKernel() *Kernel {
	return New(Config{Quantum: 10 * sim.Microsecond, Seed: 42})
}

func TestBootHasSwapperAndAta(t *testing.T) {
	k := newTestKernel()
	defer k.Shutdown()
	if k.FindProcess("swapper") == nil {
		t.Fatal("no swapper")
	}
	if k.FindProcess("ata_sff/0") == nil {
		t.Fatal("no ata_sff/0")
	}
	if k.Swapper.PID != 0 {
		t.Fatalf("swapper pid = %d, want 0", k.Swapper.PID)
	}
}

func TestSpawnAndRunAttributesRefs(t *testing.T) {
	k := newTestKernel()
	defer k.Shutdown()
	p := k.NewProcess("benchmark", 1<<20, 1<<20)
	k.SpawnThread(p, "main", "main", func(ex *Exec) {
		ex.PushCode(p.Layout.Text)
		ex.Fetch(1000)
		ex.Read(p.Layout.Heap, 300)
		ex.Write(p.Layout.Heap, 200)
	})
	k.Run(1 * sim.Millisecond)

	ifetch := k.Stats.ByRegion(stats.IFetch)
	if ifetch[mem.RegionAppBinary] != 1000 {
		t.Fatalf("app binary ifetch = %d, want 1000", ifetch[mem.RegionAppBinary])
	}
	data := k.Stats.ByRegion(stats.DataKinds...)
	if data[mem.RegionHeap] != 500 {
		t.Fatalf("heap data = %d, want 500", data[mem.RegionHeap])
	}
	byProc := k.Stats.ByProcess(stats.IFetch)
	if byProc["benchmark"] != 1000 {
		t.Fatalf("benchmark ifetch = %d", byProc["benchmark"])
	}
}

func TestSchedulerRoundRobinFairness(t *testing.T) {
	k := newTestKernel()
	defer k.Shutdown()
	p := k.NewProcess("benchmark", 1<<20, 1<<20)
	done := [2]bool{}
	for i := 0; i < 2; i++ {
		i := i
		k.SpawnThread(p, "worker", "worker", func(ex *Exec) {
			ex.PushCode(p.Layout.Text)
			for j := 0; j < 100; j++ {
				ex.Fetch(1000)
			}
			done[i] = true
		})
	}
	k.Run(1 * sim.Millisecond)
	if !done[0] || !done[1] {
		t.Fatalf("round robin starved a thread: %v", done)
	}
}

func TestSleepAdvancesClock(t *testing.T) {
	k := newTestKernel()
	defer k.Shutdown()
	p := k.NewProcess("benchmark", 1<<20, 1<<20)
	var wokeAt sim.Ticks
	k.SpawnThread(p, "main", "main", func(ex *Exec) {
		ex.PushCode(p.Layout.Text)
		ex.SleepFor(5 * sim.Millisecond)
		wokeAt = ex.Now()
	})
	k.Run(20 * sim.Millisecond)
	if wokeAt < 5*sim.Millisecond {
		t.Fatalf("woke at %d, want >= 5ms", wokeAt)
	}
	if wokeAt > 6*sim.Millisecond {
		t.Fatalf("woke far too late: %d", wokeAt)
	}
}

func TestIdleChargesSwapper(t *testing.T) {
	k := newTestKernel()
	defer k.Shutdown()
	k.Run(10 * sim.Millisecond) // nothing runnable: pure idle
	byProc := k.Stats.ByProcess(stats.IFetch)
	if byProc["swapper"] == 0 {
		t.Fatal("idle time did not charge swapper")
	}
	if k.Clock.Now() < 10*sim.Millisecond {
		t.Fatalf("clock did not reach deadline: %d", k.Clock.Now())
	}
}

func TestWaitQueueWakeOne(t *testing.T) {
	k := newTestKernel()
	defer k.Shutdown()
	p := k.NewProcess("benchmark", 1<<20, 1<<20)
	wq := k.NewWaitQueue("test")
	order := []int{}
	for i := 0; i < 2; i++ {
		i := i
		k.SpawnThread(p, "waiter", "waiter", func(ex *Exec) {
			ex.PushCode(p.Layout.Text)
			ex.Wait(wq)
			order = append(order, i)
		})
	}
	k.SpawnThread(p, "waker", "waker", func(ex *Exec) {
		ex.PushCode(p.Layout.Text)
		ex.SleepFor(1 * sim.Millisecond)
		wq.WakeOne()
		ex.SleepFor(1 * sim.Millisecond)
		wq.WakeAll()
	})
	k.Run(5 * sim.Millisecond)
	if len(order) != 2 || order[0] != 0 || order[1] != 1 {
		t.Fatalf("wake order = %v, want [0 1] (FIFO)", order)
	}
}

func TestMsgQueueFIFOAndBlocking(t *testing.T) {
	k := newTestKernel()
	defer k.Shutdown()
	p := k.NewProcess("benchmark", 1<<20, 1<<20)
	q := k.NewMsgQueue("q")
	var got []int
	k.SpawnThread(p, "consumer", "consumer", func(ex *Exec) {
		ex.PushCode(p.Layout.Text)
		for i := 0; i < 3; i++ {
			got = append(got, ex.Recv(q).(int))
		}
	})
	k.SpawnThread(p, "producer", "producer", func(ex *Exec) {
		ex.PushCode(p.Layout.Text)
		for i := 1; i <= 3; i++ {
			ex.SleepFor(sim.Millisecond)
			ex.Send(q, i)
		}
	})
	k.Run(10 * sim.Millisecond)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("received %v, want [1 2 3]", got)
	}
}

func TestForkSharesReadonlyCopiesPrivate(t *testing.T) {
	k := newTestKernel()
	defer k.Shutdown()
	parent := k.NewProcess("zygote", 1<<20, 1<<20)
	parent.Layout.Heap.Bytes()[0] = 7
	child := k.Fork(parent, "benchmark")
	if child.PID == parent.PID {
		t.Fatal("fork reused pid")
	}
	if child.Parent != parent {
		t.Fatal("parent link missing")
	}
	ch := child.AS.FindByName(mem.RegionHeap)
	if ch.Bytes()[0] != 7 {
		t.Fatal("child heap lost parent data")
	}
	ch.Bytes()[0] = 9
	if parent.Layout.Heap.Bytes()[0] != 7 {
		t.Fatal("child write leaked into parent heap")
	}
}

func TestBlockReadDrivesAta(t *testing.T) {
	k := newTestKernel()
	defer k.Shutdown()
	p := k.NewProcess("benchmark", 1<<20, 1<<20)
	doneAt := sim.Ticks(0)
	k.SpawnThread(p, "main", "main", func(ex *Exec) {
		ex.PushCode(p.Layout.Text)
		ex.BlockRead(p.Layout.Heap, 64*1024)
		doneAt = ex.Now()
	})
	k.Run(50 * sim.Millisecond)
	if doneAt == 0 {
		t.Fatal("BlockRead never completed")
	}
	if k.Disk.BytesRead != 64*1024 {
		t.Fatalf("disk transferred %d bytes", k.Disk.BytesRead)
	}
	byProc := k.Stats.ByProcess()
	if byProc["ata_sff/0"] == 0 {
		t.Fatal("ata_sff/0 earned no references")
	}
	// The read landed in the heap region via copy_to_user.
	if k.Stats.ByRegion(stats.DataWrite)[mem.RegionHeap] == 0 {
		t.Fatal("no copy_to_user writes to heap")
	}
}

func TestSyscallAttributesKernelRegion(t *testing.T) {
	k := newTestKernel()
	defer k.Shutdown()
	p := k.NewProcess("benchmark", 1<<20, 1<<20)
	k.SpawnThread(p, "main", "main", func(ex *Exec) {
		ex.PushCode(p.Layout.Text)
		ex.Syscall(500, 100)
	})
	k.Run(sim.Millisecond)
	// Fold by process to exclude swapper-idle and ata refs, which also
	// land in the kernel region.
	if got := k.Stats.ByProcess(stats.IFetch)["benchmark"]; got != 500 {
		t.Fatalf("benchmark ifetch = %d, want 500 (all kernel-mode)", got)
	}
	if got := k.Stats.ByProcess(stats.DataKinds...)["benchmark"]; got != 100 {
		t.Fatalf("benchmark data = %d, want 100", got)
	}
	if got := k.Stats.ByRegion(stats.IFetch)[mem.RegionKernel]; got < 500 {
		t.Fatalf("kernel-region ifetch = %d, want >= 500", got)
	}
}

func TestThreadStacks(t *testing.T) {
	k := newTestKernel()
	defer k.Shutdown()
	p := k.NewProcess("benchmark", 1<<20, 1<<20)
	t1 := k.SpawnThread(p, "main", "main", func(ex *Exec) {})
	t2 := k.SpawnThread(p, "worker", "Thread", func(ex *Exec) {})
	if t1.Stack.Name != mem.RegionStack {
		t.Fatalf("main stack region = %q", t1.Stack.Name)
	}
	if t2.Stack.Name != mem.RegionAnonymous {
		t.Fatalf("pthread stack region = %q (want anonymous, as on Gingerbread)", t2.Stack.Name)
	}
	k.Run(sim.Millisecond)
}

func TestStackWorkSplitsReadsWrites(t *testing.T) {
	k := newTestKernel()
	defer k.Shutdown()
	p := k.NewProcess("benchmark", 1<<20, 1<<20)
	k.SpawnThread(p, "main", "main", func(ex *Exec) {
		ex.PushCode(p.Layout.Text)
		ex.StackWork(900)
	})
	k.Run(sim.Millisecond)
	r := k.Stats.ByRegion(stats.DataRead)[mem.RegionStack]
	w := k.Stats.ByRegion(stats.DataWrite)[mem.RegionStack]
	if r == 0 || w == 0 {
		t.Fatalf("stack refs r=%d w=%d", r, w)
	}
	if r <= w {
		t.Fatalf("expected read-heavy stack mix, got r=%d w=%d", r, w)
	}
}

func TestDeterministicWholeRun(t *testing.T) {
	run := func() uint64 {
		k := newTestKernel()
		defer k.Shutdown()
		p := k.NewProcess("benchmark", 1<<20, 1<<20)
		for i := 0; i < 3; i++ {
			k.SpawnThread(p, "worker", "worker", func(ex *Exec) {
				ex.PushCode(p.Layout.Text)
				for j := 0; j < 50; j++ {
					ex.Fetch(uint64(100 + ex.RNG().Intn(100)))
					ex.SleepFor(sim.Ticks(ex.RNG().Range(10, 100)) * sim.Microsecond)
				}
			})
		}
		k.Run(10 * sim.Millisecond)
		return k.Stats.Total()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("whole-system runs diverged: %d vs %d", a, b)
	}
}

func TestYieldRotates(t *testing.T) {
	k := newTestKernel()
	defer k.Shutdown()
	p := k.NewProcess("benchmark", 1<<20, 1<<20)
	var order []int
	for i := 0; i < 2; i++ {
		i := i
		k.SpawnThread(p, "y", "y", func(ex *Exec) {
			ex.PushCode(p.Layout.Text)
			for j := 0; j < 3; j++ {
				ex.Fetch(10)
				order = append(order, i)
				ex.Yield()
			}
		})
	}
	k.Run(5 * sim.Millisecond)
	if len(order) != 6 {
		t.Fatalf("order = %v", order)
	}
	// Strict alternation 0,1,0,1,...
	for j := 0; j < 6; j++ {
		if order[j] != j%2 {
			t.Fatalf("yield did not rotate: %v", order)
		}
	}
}

func TestExitedThreadNotRescheduled(t *testing.T) {
	k := newTestKernel()
	defer k.Shutdown()
	p := k.NewProcess("benchmark", 1<<20, 1<<20)
	runs := 0
	k.SpawnThread(p, "oneshot", "oneshot", func(ex *Exec) {
		ex.PushCode(p.Layout.Text)
		ex.Fetch(10)
		runs++
	})
	k.Run(2 * sim.Millisecond)
	if runs != 1 {
		t.Fatalf("thread body ran %d times", runs)
	}
	if p.LiveThreads() != 0 {
		t.Fatalf("live threads = %d", p.LiveThreads())
	}
}

func TestProcessAndThreadCounts(t *testing.T) {
	k := newTestKernel()
	defer k.Shutdown()
	base := k.ProcessCount()
	p := k.NewProcess("a", 1<<20, 1<<20)
	k.Fork(p, "b")
	if k.ProcessCount() != base+2 {
		t.Fatalf("process count = %d, want %d", k.ProcessCount(), base+2)
	}
}

func TestKillProcessStopsThreadsMidRun(t *testing.T) {
	k := newTestKernel()
	defer k.Shutdown()
	victim := k.NewProcess("victim", 1<<20, 1<<20)
	var victimRefs uint64
	for i := 0; i < 3; i++ {
		k.SpawnThread(victim, "worker", "worker", func(ex *Exec) {
			ex.PushCode(victim.Layout.Text)
			for {
				ex.Fetch(100)
				victimRefs += 100
				ex.SleepFor(50 * sim.Microsecond)
			}
		})
	}
	// A killer thread in another process terminates the victim mid-run —
	// the scenario driver's teardown path.
	killer := k.NewProcess("killer", 1<<20, 1<<20)
	k.SpawnThread(killer, "main", "main", func(ex *Exec) {
		ex.PushCode(killer.Layout.Text)
		ex.SleepFor(300 * sim.Microsecond)
		k.KillProcess(victim)
	})
	k.Run(1 * sim.Millisecond)
	if got := victim.LiveThreads(); got != 0 {
		t.Fatalf("victim live threads after kill = %d, want 0", got)
	}
	atKill := victimRefs
	if atKill == 0 {
		t.Fatal("victim never ran before the kill")
	}
	// Nothing of the victim runs after the kill.
	k.Run(2 * sim.Millisecond)
	if victimRefs != atKill {
		t.Fatalf("victim issued %d refs after being killed", victimRefs-atKill)
	}
	// Census still counts the dead process; the live count does not.
	if k.FindProcess("victim") == nil {
		t.Fatal("killed process vanished from the process table")
	}
	if lc, tc := k.LiveProcessCount(), k.ProcessCount(); lc >= tc {
		t.Fatalf("live process count %d not below total %d", lc, tc)
	}
	// Killing an already-dead process is a no-op.
	k.KillProcess(victim)
}

func TestKillProcessWakeOnDeadThreadIsNoop(t *testing.T) {
	k := newTestKernel()
	defer k.Shutdown()
	p := k.NewProcess("victim", 1<<20, 1<<20)
	wq := k.NewWaitQueue("test.park")
	k.SpawnThread(p, "parked", "parked", func(ex *Exec) {
		ex.PushCode(p.Layout.Text)
		ex.Wait(wq)
	})
	k.Run(100 * sim.Microsecond)
	k.KillProcess(p)
	// A waker finding the dead thread on the queue must not resurrect it.
	wq.WakeAll()
	k.Run(200 * sim.Microsecond)
	if p.LiveThreads() != 0 {
		t.Fatal("dead thread came back to life")
	}
}
