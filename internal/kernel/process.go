// Package kernel models the operating-system layer the paper instruments: a
// Linux-2.6.35-like kernel with processes, threads, a deterministic
// scheduler, syscall-time attribution to the "OS kernel" region, kernel
// service threads (swapper, ata_sff/0), and the wait/wake primitives the
// Android stack models build on.
package kernel

import (
	"fmt"

	"agave/internal/cpu"
	"agave/internal/mem"
	"agave/internal/sim"
	"agave/internal/stats"
)

// ThreadState tracks where a thread is from the scheduler's point of view.
type ThreadState uint8

// Thread states.
const (
	StateRunnable ThreadState = iota
	StateRunning
	StateSleeping
	StateBlocked
	StateExited
)

// Process is one simulated process: a name (the unit of the paper's Figures
// 3 and 4), an address space, and a set of threads.
type Process struct {
	PID    int
	Name   string
	AS     *mem.AddressSpace
	Layout *mem.Layout
	Parent *Process

	// StatID is the interned stats process ID for Name.
	StatID stats.ProcID

	// RNG is the process-private deterministic random source.
	RNG *sim.RNG

	// OomAdj is the lowmemorykiller badness score the ActivityManager
	// model assigns (higher = killed sooner). Processes start at
	// OomNeverKill: only the framework volunteers its apps.
	OomAdj int

	Threads []*Thread

	kern    *Kernel
	nextTID int
	// memReleased marks a dead process whose resident pages have been
	// returned to the machine-wide budget.
	memReleased bool
}

// Kernel returns the owning kernel.
func (p *Process) Kernel() *Kernel { return p.kern }

// MainThread returns the first thread, or nil before any thread is spawned.
func (p *Process) MainThread() *Thread {
	if len(p.Threads) == 0 {
		return nil
	}
	return p.Threads[0]
}

// LiveThreads counts threads that have not exited.
func (p *Process) LiveThreads() int {
	n := 0
	for _, t := range p.Threads {
		if t.State != StateExited {
			n++
		}
	}
	return n
}

// Thread is one simulated kernel-schedulable thread.
type Thread struct {
	TID  int
	Name string // instance name, e.g. "AsyncTask #2"
	// Group is the name Table I ranks by, e.g. "AsyncTask". Pool workers
	// share a group; singleton threads use their own name.
	Group string
	Proc  *Process
	State ThreadState

	// StatID is the interned stats thread ID for Group.
	StatID stats.ThreadID

	// Stack is the thread's stack VMA: the "stack" region for main
	// threads, an anonymous mmap for pthread-created ones (as on real
	// Gingerbread).
	Stack *mem.VMA

	ctx *cpu.Context
	// exec is the thread's machine handle, embedded by value so a spawn
	// performs one allocation for thread and handle together. The scheduler
	// flushes its batched stats deltas at every quantum end.
	exec Exec
	// body is the thread function; kept as a field so Start can launch the
	// package-level trampoline threadMain with the thread itself as argument
	// instead of allocating a capturing closure per spawn.
	body   func(ex *Exec)
	wakeAt sim.Ticks
	// waitingOn is the queue the thread is blocked on, for diagnostics.
	waitingOn *WaitQueue

	// sleepTimer is the thread's dedicated wakeup timer. A thread has at
	// most one sleep pending (it only runs again once the wakeup fires), so
	// the scheduler reuses this struct for every sleep instead of
	// allocating a timer plus closure per YieldSleep.
	sleepTimer sim.Timer
}

// String identifies the thread for diagnostics.
func (t *Thread) String() string {
	return fmt.Sprintf("%s/%s (pid %d tid %d)", t.Proc.Name, t.Name, t.Proc.PID, t.TID)
}

// NewProcess creates a process with the canonical user address-space
// skeleton (app binary text, heap, stack, kernel region).
func (k *Kernel) NewProcess(name string, textSize, heapSize uint64) *Process {
	p := k.newBareProcess(name)
	p.Layout = mem.NewLayout(p.AS, textSize, heapSize)
	return p
}

// newBareProcess creates a process with an empty address space (kernel
// threads map only the kernel region).
func (k *Kernel) newBareProcess(name string) *Process {
	p := &Process{
		PID:    k.nextPID,
		Name:   name,
		AS:     mem.NewAddressSpace(k.Stats),
		StatID: k.Stats.Proc(name),
		RNG:    k.rng.Fork(),
		OomAdj: OomNeverKill,
		kern:   k,
	}
	p.AS.OnResident = k.addResidentPages
	k.nextPID++
	k.procs = append(k.procs, p)
	return p
}

// NewKernelProcess creates a kernel-thread process (swapper, ata_sff/0):
// only the kernel region is mapped and all execution is attributed to it.
func (k *Kernel) NewKernelProcess(name string) *Process {
	p := k.newBareProcess(name)
	kv, err := p.AS.Map(mem.KernelVA, mem.KernelLen, mem.RegionKernel,
		mem.PermRead|mem.PermWrite|mem.PermExec, mem.ClassKernel)
	if err != nil {
		panic(err)
	}
	p.Layout = &mem.Layout{Kernel: kv, NextLib: mem.MmapBase}
	return p
}

// Fork clones parent into a child process named name, copying the address
// space with zygote copy-on-write semantics (read-only and shared mappings
// alias the parent's memory). The child starts with no threads.
func (k *Kernel) Fork(parent *Process, name string) *Process {
	child := &Process{
		PID:    k.nextPID,
		Name:   name,
		AS:     parent.AS.Clone(),
		StatID: k.Stats.Proc(name),
		RNG:    k.rng.Fork(),
		OomAdj: OomNeverKill,
		kern:   k,
		Parent: parent,
	}
	child.AS.OnResident = k.addResidentPages
	k.addResidentPages(int64(child.AS.ResidentPages()))
	k.nextPID++
	child.Layout = &mem.Layout{
		Text:    child.AS.FindByName(mem.RegionAppBinary),
		Heap:    child.AS.FindByName(mem.RegionHeap),
		Stack:   child.AS.FindByName(mem.RegionStack),
		Kernel:  child.AS.FindByName(mem.RegionKernel),
		NextLib: parent.Layout.NextLib,
	}
	k.procs = append(k.procs, child)
	return child
}

// KillProcess forcibly terminates every live thread of p — the kernel side
// of Android's process teardown (ActivityManager killing a backgrounded or
// misbehaving app). Blocked, sleeping, and runnable threads unwind
// immediately; threads of other processes blocked on p's wait queues are
// never woken by it again (their wakers must handle the death, as the media
// server does for dead clients). The process object and its address space
// stay in the tables, so census counts — which track everything ever
// created, as the paper's do — are unaffected. Safe to call both from the
// host between Run calls and from a running simulated thread (as the
// scenario driver does); a process may not kill itself.
func (k *Kernel) KillProcess(p *Process) {
	for _, t := range p.Threads {
		if t.ctx == nil || t.ctx.Exited() {
			continue
		}
		t.ctx.Kill()
		t.State = StateExited
		k.reclaimCtx(t)
	}
	k.releaseProcessMemory(p)
}

// releaseProcessMemory returns a dead process's resident pages to the
// machine-wide budget, once. The address space stays inspectable but stops
// feeding the budget.
func (k *Kernel) releaseProcessMemory(p *Process) {
	if p.memReleased {
		return
	}
	p.memReleased = true
	p.AS.OnResident = nil
	k.addResidentPages(-int64(p.AS.ResidentPages()))
}

// LiveProcessCount counts processes that still have at least one live
// thread (plus any that never spawned one).
func (k *Kernel) LiveProcessCount() int {
	n := 0
	for _, p := range k.procs {
		if len(p.Threads) == 0 || p.LiveThreads() > 0 {
			n++
		}
	}
	return n
}

// SpawnThread creates and starts a thread in p running body. The first
// thread of a process uses the main "stack" region; later threads get
// anonymous mmap stacks. group is the Table-I accounting name.
func (k *Kernel) SpawnThread(p *Process, name, group string, body func(ex *Exec)) *Thread {
	var ctx *cpu.Context
	if n := len(k.ctxFree); n > 0 {
		ctx = k.ctxFree[n-1]
		k.ctxFree[n-1] = nil
		k.ctxFree = k.ctxFree[:n-1]
	} else {
		ctx = cpu.NewContext()
	}
	t := &Thread{
		TID:    k.nextTID,
		Name:   name,
		Group:  group,
		Proc:   p,
		State:  StateRunnable,
		StatID: k.Stats.Thread(group),
		ctx:    ctx,
	}
	t.sleepTimer.Target = t
	k.nextTID++
	p.nextTID++
	if len(p.Threads) == 0 && p.Layout != nil && p.Layout.Stack != nil {
		t.Stack = p.Layout.Stack
	} else if p.Layout != nil {
		t.Stack = p.Layout.MapAnon(p.AS, mem.ThreadStackSize)
	}
	p.Threads = append(p.Threads, t)
	k.threads = append(k.threads, t)
	ex := &t.exec
	ex.K = k
	ex.P = p
	ex.T = t
	ex.ctx = t.ctx
	ex.code = ex.codeBuf[:0]
	if p.Layout != nil && p.Layout.Kernel != nil {
		// The bottom of every code stack is the kernel region: a thread
		// with no user code region (kernel threads) fetches from it.
		ex.code = append(ex.code, p.Layout.Kernel)
	}
	t.body = body
	t.ctx.Start(threadMain, t)
	k.enqueue(t)
	return t
}

// threadMain is the goroutine entry for every simulated thread. A shared
// trampoline taking the thread through Start's any-typed argument means a
// spawn allocates no per-thread closure (a *Thread in an interface is
// pointer-shaped and allocation-free).
func threadMain(arg any) {
	t := arg.(*Thread)
	t.body(&t.exec)
}

// TimerFired wakes the thread from a completed sleep; it makes Thread the
// closure-free Target of its own embedded sleep timer.
func (t *Thread) TimerFired(sim.Ticks) {
	t.Proc.kern.Wake(t)
}
