package kernel

// WaitQueue is the kernel's block/wake primitive (the moral equivalent of a
// futex wait queue). Because exactly one simulated thread runs at a time,
// the check-then-wait pattern
//
//	for !cond() {
//	    ex.Wait(wq)
//	}
//
// is free of lost wakeups by construction.
type WaitQueue struct {
	k       *Kernel
	Name    string
	waiters []*Thread
}

// NewWaitQueue returns an empty queue. The name is for diagnostics only.
func (k *Kernel) NewWaitQueue(name string) *WaitQueue {
	return &WaitQueue{k: k, Name: name}
}

// Wait blocks the calling thread on wq until another thread wakes it. The
// futex-syscall cost is charged on entry.
func (ex *Exec) Wait(wq *WaitQueue) {
	ex.Syscall(180, 30)
	wq.waiters = append(wq.waiters, ex.T)
	ex.T.waitingOn = wq
	ex.ctx.Block()
}

// WaitFree blocks without charging a syscall (for callers that already
// accounted the kernel entry themselves).
func (ex *Exec) WaitFree(wq *WaitQueue) {
	wq.waiters = append(wq.waiters, ex.T)
	ex.T.waitingOn = wq
	ex.ctx.Block()
}

// WakeOne wakes the longest-waiting thread; it reports whether anything was
// woken.
func (wq *WaitQueue) WakeOne() bool {
	for len(wq.waiters) > 0 {
		t := wq.waiters[0]
		wq.waiters = wq.waiters[1:]
		if t.State == StateBlocked {
			wq.k.Wake(t)
			return true
		}
	}
	return false
}

// WakeAll wakes every waiter, returning the count woken.
func (wq *WaitQueue) WakeAll() int {
	n := 0
	for wq.WakeOne() {
		n++
	}
	return n
}

// Waiters reports the number of threads currently parked on wq.
func (wq *WaitQueue) Waiters() int { return len(wq.waiters) }

// MsgQueue is a deterministic FIFO mailbox built on two wait queues. It
// backs Android Looper message queues, Binder transaction queues, media
// buffer queues, and the storage request queue.
type MsgQueue struct {
	Name     string
	notEmpty *WaitQueue
	msgs     []any
}

// NewMsgQueue returns an empty unbounded mailbox.
func (k *Kernel) NewMsgQueue(name string) *MsgQueue {
	return &MsgQueue{Name: name, notEmpty: k.NewWaitQueue(name + ".notEmpty")}
}

// Send enqueues m and wakes one receiver. Sending charges a small kernel
// cost (the futex wake).
func (ex *Exec) Send(q *MsgQueue, m any) {
	ex.Syscall(140, 24)
	q.msgs = append(q.msgs, m)
	q.notEmpty.WakeOne()
}

// Recv dequeues the oldest message, blocking while the queue is empty.
func (ex *Exec) Recv(q *MsgQueue) any {
	for len(q.msgs) == 0 {
		ex.Wait(q.notEmpty)
	}
	m := q.msgs[0]
	q.msgs[0] = nil
	q.msgs = q.msgs[1:]
	return m
}

// TryRecv dequeues without blocking; ok is false when the queue is empty.
func (q *MsgQueue) TryRecv() (m any, ok bool) {
	if len(q.msgs) == 0 {
		return nil, false
	}
	m = q.msgs[0]
	q.msgs[0] = nil
	q.msgs = q.msgs[1:]
	return m, true
}

// Peek returns the oldest queued message without dequeuing it; ok is false
// when the queue is empty. The ANR watchdog uses it to age a looper's head
// message without stealing work from the looper's own thread.
func (q *MsgQueue) Peek() (m any, ok bool) {
	if len(q.msgs) == 0 {
		return nil, false
	}
	return q.msgs[0], true
}

// Len reports queued message count.
func (q *MsgQueue) Len() int { return len(q.msgs) }
