package kernel

// WaitQueue is the kernel's block/wake primitive (the moral equivalent of a
// futex wait queue). Because exactly one simulated thread runs at a time,
// the check-then-wait pattern
//
//	for !cond() {
//	    ex.Wait(wq)
//	}
//
// is free of lost wakeups by construction.
//
// waiters is a head-indexed ring (see Kernel.runq): popping by slicing the
// head off would walk the slice base forward and force append to reallocate
// on nearly every wait.
type WaitQueue struct {
	k       *Kernel
	Name    string
	waiters []*Thread
	head    int
}

// NewWaitQueue returns an empty queue. The name is for diagnostics only.
// Queues come out of a per-kernel slab (see Kernel.wqSlab).
func (k *Kernel) NewWaitQueue(name string) *WaitQueue {
	if len(k.wqSlab) == 0 {
		k.wqSlab = make([]WaitQueue, 16)
	}
	wq := &k.wqSlab[0]
	k.wqSlab = k.wqSlab[1:]
	wq.k = k
	wq.Name = name
	return wq
}

// InitWaitQueue readies a caller-embedded WaitQueue value, preserving any
// waiter backing array an earlier use left behind. Structures that live
// per-transaction (the binder reply queue) embed the queue by value and
// re-init it on reuse instead of allocating a fresh one per call.
func (k *Kernel) InitWaitQueue(wq *WaitQueue, name string) {
	wq.k = k
	wq.Name = name
	wq.waiters = wq.waiters[:0]
	wq.head = 0
}

func (wq *WaitQueue) push(t *Thread) {
	if wq.head > 0 && len(wq.waiters) == cap(wq.waiters) {
		n := copy(wq.waiters, wq.waiters[wq.head:])
		clear(wq.waiters[n:])
		wq.waiters = wq.waiters[:n]
		wq.head = 0
	}
	wq.waiters = append(wq.waiters, t)
}

func (wq *WaitQueue) pop() (*Thread, bool) {
	if wq.head == len(wq.waiters) {
		return nil, false
	}
	t := wq.waiters[wq.head]
	wq.waiters[wq.head] = nil
	wq.head++
	if wq.head == len(wq.waiters) {
		wq.waiters = wq.waiters[:0]
		wq.head = 0
	}
	return t, true
}

// Wait blocks the calling thread on wq until another thread wakes it. The
// futex-syscall cost is charged on entry.
func (ex *Exec) Wait(wq *WaitQueue) {
	ex.Syscall(180, 30)
	wq.push(ex.T)
	ex.T.waitingOn = wq
	ex.ctx.Block()
}

// WaitFree blocks without charging a syscall (for callers that already
// accounted the kernel entry themselves).
func (ex *Exec) WaitFree(wq *WaitQueue) {
	wq.push(ex.T)
	ex.T.waitingOn = wq
	ex.ctx.Block()
}

// WakeOne wakes the longest-waiting thread; it reports whether anything was
// woken.
func (wq *WaitQueue) WakeOne() bool {
	for {
		t, ok := wq.pop()
		if !ok {
			return false
		}
		if t.State == StateBlocked {
			wq.k.Wake(t)
			return true
		}
	}
}

// WakeAll wakes every waiter, returning the count woken.
func (wq *WaitQueue) WakeAll() int {
	n := 0
	for wq.WakeOne() {
		n++
	}
	return n
}

// Waiters reports the number of threads currently parked on wq.
func (wq *WaitQueue) Waiters() int { return len(wq.waiters) - wq.head }

// MsgQueue is a deterministic FIFO mailbox built on two wait queues. It
// backs Android Looper message queues, Binder transaction queues, media
// buffer queues, and the storage request queue. msgs is a head-indexed ring
// like WaitQueue.waiters.
type MsgQueue struct {
	Name string
	// notEmpty is embedded by value: a mailbox and its wait queue have
	// identical lifetimes, so splitting them across two allocations only
	// added per-queue cost (every process spawn creates several).
	notEmpty WaitQueue
	msgs     []any
	head     int
}

// NewMsgQueue returns an empty unbounded mailbox. Mailboxes come out of a
// per-kernel slab (see Kernel.msgqSlab); the embedded wait queue shares the
// mailbox name rather than minting a suffixed copy per queue.
func (k *Kernel) NewMsgQueue(name string) *MsgQueue {
	if len(k.msgqSlab) == 0 {
		k.msgqSlab = make([]MsgQueue, 16)
	}
	q := &k.msgqSlab[0]
	k.msgqSlab = k.msgqSlab[1:]
	q.Name = name
	q.notEmpty.k = k
	q.notEmpty.Name = name
	return q
}

// Send enqueues m and wakes one receiver. Sending charges a small kernel
// cost (the futex wake). Pointer-shaped messages avoid the interface boxing
// allocation; the looper and input paths rely on that.
func (ex *Exec) Send(q *MsgQueue, m any) {
	ex.Syscall(140, 24)
	if q.head > 0 && len(q.msgs) == cap(q.msgs) {
		n := copy(q.msgs, q.msgs[q.head:])
		clear(q.msgs[n:])
		q.msgs = q.msgs[:n]
		q.head = 0
	}
	q.msgs = append(q.msgs, m)
	q.notEmpty.WakeOne()
}

// Recv dequeues the oldest message, blocking while the queue is empty.
func (ex *Exec) Recv(q *MsgQueue) any {
	for q.Len() == 0 {
		ex.Wait(&q.notEmpty)
	}
	m, _ := q.TryRecv()
	return m
}

// TryRecv dequeues without blocking; ok is false when the queue is empty.
func (q *MsgQueue) TryRecv() (m any, ok bool) {
	if q.head == len(q.msgs) {
		return nil, false
	}
	m = q.msgs[q.head]
	q.msgs[q.head] = nil
	q.head++
	if q.head == len(q.msgs) {
		q.msgs = q.msgs[:0]
		q.head = 0
	}
	return m, true
}

// Peek returns the oldest queued message without dequeuing it; ok is false
// when the queue is empty. The ANR watchdog uses it to age a looper's head
// message without stealing work from the looper's own thread.
func (q *MsgQueue) Peek() (m any, ok bool) {
	if q.head == len(q.msgs) {
		return nil, false
	}
	return q.msgs[q.head], true
}

// Len reports queued message count.
func (q *MsgQueue) Len() int { return len(q.msgs) - q.head }
