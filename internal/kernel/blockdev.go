package kernel

import (
	"agave/internal/mem"
	"agave/internal/sim"
)

// Storage timing and cost model. Gingerbread devices used slow eMMC/SD-class
// storage behind the libata SFF path, serviced by the ata_sff/0 workqueue
// thread — which is why ata_sff/0 appears as a process in the paper's
// Figures 3 and 4 (most prominently under the SPEC benchmarks, whose only
// companion activity is file input).
const (
	diskSeekTicks  = 80 * sim.Microsecond // per-request overhead
	diskBytesPerUs = 20                   // ~20 MB/s transfer
	// ata instruction/data cost per 512-byte sector serviced.
	ataFetchPerSector = 160
	ataDataPerSector  = 96
)

type ioRequest struct {
	bytes uint64
	done  bool
	wq    *WaitQueue
}

// BlockDevice models the storage device plus its ata_sff/0 service thread.
type BlockDevice struct {
	k     *Kernel
	queue *MsgQueue
	proc  *Process

	// BytesRead counts total bytes transferred, for tests.
	BytesRead uint64
}

func newBlockDevice(k *Kernel) *BlockDevice {
	d := &BlockDevice{k: k, queue: k.NewMsgQueue("ata.requests")}
	d.proc = k.NewKernelProcess("ata_sff/0")
	k.SpawnThread(d.proc, "ata_sff/0", "ata_sff/0", d.serviceLoop)
	return d
}

// serviceLoop is the ata_sff/0 kernel thread: pop a request, charge the
// programmed-IO/DMA-completion work, model the transfer latency, complete.
func (d *BlockDevice) serviceLoop(ex *Exec) {
	kv := d.proc.Layout.Kernel
	for {
		req := ex.Recv(d.queue).(*ioRequest)
		sectors := (req.bytes + 511) / 512
		ex.Do(Work{Fetch: ataFetchPerSector, Reads: ataDataPerSector * 2 / 3,
			Writes: ataDataPerSector / 3, Data: kv}, sectors)
		ex.SleepFor(diskSeekTicks + sim.Ticks(req.bytes/diskBytesPerUs)*sim.Microsecond)
		d.BytesRead += req.bytes
		req.done = true
		req.wq.WakeAll()
	}
}

// BlockRead models a synchronous buffered read of n bytes into dst: VFS
// syscall entry, a trip through the ata_sff/0 service thread, then the
// copy_to_user into dst performed in kernel mode on behalf of the caller.
func (ex *Exec) BlockRead(dst *mem.VMA, n uint64) {
	ex.Syscall(650, 120)
	req := &ioRequest{bytes: n, wq: ex.K.NewWaitQueue("io.done")}
	ex.Send(ex.K.Disk.queue, req)
	for !req.done {
		ex.WaitFree(req.wq)
	}
	// copy_to_user: kernel text, reads from the page cache (kernel
	// region), writes into the user buffer.
	kv := ex.P.Layout.Kernel
	ex.PushCode(kv)
	ex.Copy(dst, kv, (n+3)/4, 2)
	ex.PopCode()
}
