package kernel

import (
	"testing"

	"agave/internal/mem"
	"agave/internal/sim"
)

func pressureConfig(memPages uint64) Config {
	return Config{
		Quantum:  sim.Millisecond,
		Seed:     1,
		MemPages: memPages,
		MinFree:  DefaultMinFree(0),
	}
}

func TestDefaultMinFreeLadder(t *testing.T) {
	ladder := DefaultMinFree(8000)
	if len(ladder) != 3 {
		t.Fatalf("ladder has %d rungs", len(ladder))
	}
	if ladder[0].Pages != 8000 || ladder[0].Adj != OomCachedMin {
		t.Fatalf("cached rung = %+v", ladder[0])
	}
	if ladder[1].Pages != 4000 || ladder[1].Adj != OomVisible {
		t.Fatalf("visible rung = %+v", ladder[1])
	}
	if ladder[2].Pages != 2000 || ladder[2].Adj != OomForeground {
		t.Fatalf("foreground rung = %+v", ladder[2])
	}
	if DefaultMinFree(0)[0].Pages != DefaultMinFreePages {
		t.Fatal("zero waterline did not fall back to the default")
	}
}

// TestFreePagesAccounting: process mappings and the balloon both draw down
// the budget, and killing a process returns its pages.
func TestFreePagesAccounting(t *testing.T) {
	k := New(pressureConfig(10000))
	defer k.Shutdown()
	base := k.FreePages()
	p := k.NewProcess("victim", 64<<10, 256<<10)
	v := p.Layout.MapAnon(p.AS, 100*mem.PageSize)
	_ = v
	after := k.FreePages()
	if after >= base {
		t.Fatalf("mapping did not draw down the budget: %d -> %d", base, after)
	}
	k.Balloon(500)
	if got := k.FreePages(); got != after-500 {
		t.Fatalf("balloon: free = %d, want %d", got, after-500)
	}
	k.Balloon(-500)
	if got := k.FreePages(); got != after {
		t.Fatalf("balloon deflate: free = %d, want %d", got, after)
	}
	k.KillProcess(p)
	if got := k.FreePages(); got != base {
		t.Fatalf("kill did not return pages: free = %d, want %d", got, base)
	}
	// Releasing twice must not double-credit.
	k.KillProcess(p)
	if got := k.FreePages(); got != base {
		t.Fatalf("double kill double-credited: free = %d, want %d", got, base)
	}
}

// TestLMKKillsByAdjOrder drives the killer directly: under deepening
// pressure the highest-oom_adj process dies first, ties break by RSS, and
// OomNeverKill processes are untouchable.
func TestLMKKillsByAdjOrder(t *testing.T) {
	k := New(pressureConfig(200_000))
	defer k.Shutdown()
	if !k.LMKEnabled() {
		t.Fatal("LMK not enabled")
	}
	park := func(p *Process) {
		k.SpawnThread(p, "main", "main", func(ex *Exec) {
			ex.Wait(k.NewWaitQueue(p.Name + ".park"))
		})
	}
	mk := func(name string, adj int, extraPages uint64) *Process {
		p := k.NewProcess(name, 64<<10, 256<<10)
		p.OomAdj = adj
		if extraPages > 0 {
			p.Layout.MapAnon(p.AS, extraPages*mem.PageSize)
		}
		park(p)
		return p
	}
	mk("cached-old", OomCachedMin+1, 0)
	mk("cached-new", OomCachedMin, 4000)
	visible := mk("visible", OomVisible, 0)
	fg := mk("foreground", OomForeground, 0)
	system := mk("system", OomNeverKill, 0)

	// Starve the machine below the cached rung but above the visible one,
	// deep enough that the first victim's released pages do not lift free
	// back over the rung on their own.
	k.Balloon(int64(k.FreePages() - DefaultMinFreePages + 3500))
	k.Run(k.Clock.Now() + 40*sim.Millisecond)
	if got := k.LMKVictims(); len(got) < 2 || got[0] != "cached-old" || got[1] != "cached-new" {
		t.Fatalf("cached-band victims = %v, want [cached-old cached-new ...]", got)
	}
	if visible.LiveThreads() == 0 || fg.LiveThreads() == 0 {
		t.Fatal("cached-band pressure killed a visible or foreground process")
	}

	// Deepen below the foreground rung: the visible process goes before
	// the foreground one.
	k.Balloon(int64(k.FreePages()) + 1000)
	k.Run(k.Clock.Now() + 20*sim.Millisecond)
	victims := k.LMKVictims()
	if len(victims) < 3 || victims[2] != "visible" {
		t.Fatalf("victims = %v, want visible third", victims)
	}
	k.Run(k.Clock.Now() + 20*sim.Millisecond)
	if system.LiveThreads() == 0 {
		t.Fatal("LMK killed an OomNeverKill process")
	}
	if k.LMKKills() != len(k.LMKVictims()) {
		t.Fatalf("kill count %d != victims %d", k.LMKKills(), len(k.LMKVictims()))
	}
	// Every kill was announced on the death queue for the framework side.
	if got := k.DeathQueue().Len(); got != k.LMKKills() {
		t.Fatalf("death queue holds %d announcements, want %d", got, k.LMKKills())
	}
}

// TestLMKTieBreaksByRSS: equal adj, bigger resident set dies first.
func TestLMKTieBreaksByRSS(t *testing.T) {
	k := New(pressureConfig(200_000))
	defer k.Shutdown()
	small := k.NewProcess("small", 64<<10, 256<<10)
	big := k.NewProcess("big", 64<<10, 256<<10)
	big.Layout.MapAnon(big.AS, 5000*mem.PageSize)
	small.OomAdj, big.OomAdj = OomCachedMin, OomCachedMin
	for _, p := range []*Process{small, big} {
		pp := p
		k.SpawnThread(pp, "main", "main", func(ex *Exec) {
			ex.Wait(k.NewWaitQueue(pp.Name + ".park"))
		})
	}
	k.Balloon(int64(k.FreePages() - 100))
	k.Run(k.Clock.Now() + 15*sim.Millisecond)
	if got := k.LMKVictims(); len(got) == 0 || got[0] != "big" {
		t.Fatalf("victims = %v, want big first (RSS tie-break)", got)
	}
}

// TestNoLMKWithoutConfig: the default machine has no killer, no kswapd0
// process, and an effectively infinite free-page pool.
func TestNoLMKWithoutConfig(t *testing.T) {
	k := New(Config{Quantum: sim.Millisecond, Seed: 1})
	defer k.Shutdown()
	if k.LMKEnabled() {
		t.Fatal("LMK enabled without MemPages/MinFree")
	}
	if k.FindProcess("kswapd0") != nil {
		t.Fatal("kswapd0 spawned on an unconstrained machine")
	}
	if k.FreePages() != ^uint64(0) {
		t.Fatal("unconstrained machine reports finite free pages")
	}
	if k.DeathQueue() != nil {
		t.Fatal("death queue exists without the killer")
	}
}
