package kernel

import (
	"fmt"

	"agave/internal/cpu"
	"agave/internal/sim"
	"agave/internal/stats"
)

// Config sets the tunables of a kernel instance.
type Config struct {
	// Quantum is the scheduler time slice.
	Quantum sim.Ticks
	// Seed drives every stochastic decision in the simulation.
	Seed uint64
	// IdleRefDivisor controls how many kernel references the swapper idle
	// loop generates: one instruction fetch per IdleRefDivisor idle ticks.
	IdleRefDivisor sim.Ticks
	// MemPages is the machine's physical page budget. Resident pages are
	// always accounted; a zero budget leaves the machine effectively
	// infinite, so nothing is ever short of memory.
	MemPages uint64
	// MinFree is the lowmemorykiller threshold ladder. When both MemPages
	// and MinFree are set, New spawns the kswapd0 kernel thread that kills
	// the worst oom_adj process whenever free pages fall below a rung.
	// Empty disables the killer.
	MinFree []MinFree
}

// DefaultConfig mirrors a HZ=1000ish Gingerbread kernel: 1 ms quanta.
func DefaultConfig() Config {
	return Config{
		Quantum:        1 * sim.Millisecond,
		Seed:           1,
		IdleRefDivisor: 2048,
	}
}

// Kernel is the whole simulated machine: clock, scheduler, process table,
// timers, devices, and the stats collector that receives every attributed
// reference.
type Kernel struct {
	Stats *stats.Collector
	Clock sim.Clock
	Cfg   Config

	Timers sim.TimerQueue

	rng     *sim.RNG
	nextPID int
	nextTID int
	procs   []*Process
	threads []*Thread

	// runq is a head-indexed ring: dequeue pops runq[runqHead] (nilling the
	// slot so exited threads are not retained) and append reuses the slack
	// ahead of the head before growing. Slicing the head off instead
	// (runq = runq[1:]) permanently walks the slice base forward, forcing
	// append to reallocate on nearly every enqueue.
	runq     []*Thread
	runqHead int

	// ctxFree recycles the cpu contexts of exited threads: the goroutine is
	// gone and both handoff channels are empty, so the struct and channels
	// can serve the next SpawnThread. Exited threads have ctx set to nil
	// when their context is reclaimed.
	ctxFree []*cpu.Context

	// msgqSlab and wqSlab chunk-allocate mailbox and wait-queue structs:
	// every process spawn creates several of each, and one allocation per
	// chunk beats one per queue. Handed-out entries are never reclaimed, so
	// their addresses stay valid for the life of the kernel.
	msgqSlab []MsgQueue
	wqSlab   []WaitQueue

	// Swapper is the idle process (pid 0); idle time charges references
	// to it, which is why it appears in the paper's Figures 3 and 4.
	Swapper *Process
	swapT   *Thread

	// Disk is the block storage device serviced by the ata_sff/0 kernel
	// thread.
	Disk *BlockDevice

	// usedPages is the machine-wide resident set (every live process's
	// countable pages); balloonPages is the extra demand Pressure events
	// inject. Free memory is MemPages minus both.
	usedPages    uint64
	balloonPages uint64
	lmk          lmkState

	stopping bool
}

// New boots an empty machine: swapper and the ata_sff/0 storage thread
// exist; no user processes yet.
func New(cfg Config) *Kernel {
	if cfg.Quantum == 0 {
		cfg.Quantum = DefaultConfig().Quantum
	}
	if cfg.IdleRefDivisor == 0 {
		cfg.IdleRefDivisor = DefaultConfig().IdleRefDivisor
	}
	k := &Kernel{
		Stats:   stats.NewCollector(),
		Cfg:     cfg,
		rng:     sim.NewRNG(cfg.Seed),
		nextPID: 0,
		nextTID: 0,
	}
	k.Swapper = k.NewKernelProcess("swapper")
	k.swapT = &Thread{
		TID:    k.nextTID,
		Name:   "swapper",
		Group:  "swapper",
		Proc:   k.Swapper,
		State:  StateRunnable,
		StatID: k.Stats.Thread("swapper"),
	}
	k.nextTID++
	k.Swapper.Threads = append(k.Swapper.Threads, k.swapT)
	k.Disk = newBlockDevice(k)
	if k.LMKEnabled() {
		k.startLMK()
	}
	return k
}

// addResidentPages applies a machine-wide resident-page delta (saturating
// at zero). Every process address space reports its mutations here.
func (k *Kernel) addResidentPages(delta int64) {
	if delta < 0 && uint64(-delta) > k.usedPages {
		k.usedPages = 0
		return
	}
	k.usedPages = uint64(int64(k.usedPages) + delta)
}

// UsedPages reports the machine-wide resident set in pages (excluding the
// pressure balloon).
func (k *Kernel) UsedPages() uint64 { return k.usedPages }

// FreePages reports how many pages of the physical budget remain. With no
// budget configured the machine is effectively infinite.
func (k *Kernel) FreePages() uint64 {
	if k.Cfg.MemPages == 0 {
		return ^uint64(0)
	}
	used := k.usedPages + k.balloonPages
	if used >= k.Cfg.MemPages {
		return 0
	}
	return k.Cfg.MemPages - used
}

// Balloon inflates (positive) or deflates (negative) the external memory
// demand — the scenario engine's Pressure events model "the rest of the
// device wants memory" without attributing it to any process.
func (k *Kernel) Balloon(deltaPages int64) {
	if deltaPages < 0 && uint64(-deltaPages) > k.balloonPages {
		k.balloonPages = 0
		return
	}
	k.balloonPages = uint64(int64(k.balloonPages) + deltaPages)
}

// RNG returns the kernel's root random source.
func (k *Kernel) RNG() *sim.RNG { return k.rng }

// Processes returns every process ever created, in creation order.
func (k *Kernel) Processes() []*Process { return k.procs }

// Threads returns every thread ever created, in creation order.
func (k *Kernel) Threads() []*Thread { return k.threads }

// FindProcess returns the first process with the given name, or nil.
func (k *Kernel) FindProcess(name string) *Process {
	for _, p := range k.procs {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// ProcessCount counts processes created so far (including kernel ones).
func (k *Kernel) ProcessCount() int { return len(k.procs) }

// ThreadCount counts threads created so far (excluding swapper's implicit
// idle context).
func (k *Kernel) ThreadCount() int { return len(k.threads) }

func (k *Kernel) enqueue(t *Thread) {
	t.State = StateRunnable
	if k.runqHead > 0 && len(k.runq) == cap(k.runq) {
		n := copy(k.runq, k.runq[k.runqHead:])
		clear(k.runq[n:])
		k.runq = k.runq[:n]
		k.runqHead = 0
	}
	k.runq = append(k.runq, t)
}

func (k *Kernel) dequeue() *Thread {
	for k.runqHead < len(k.runq) {
		t := k.runq[k.runqHead]
		k.runq[k.runqHead] = nil
		k.runqHead++
		if k.runqHead == len(k.runq) {
			k.runq = k.runq[:0]
			k.runqHead = 0
		}
		if t.State == StateRunnable && t.ctx != nil && !t.ctx.Exited() {
			return t
		}
	}
	return nil
}

// reclaimCtx returns an exited thread's cpu context to the free list for the
// next SpawnThread. The thread keeps State == StateExited and a nil ctx.
func (k *Kernel) reclaimCtx(t *Thread) {
	if t.ctx == nil || !t.ctx.Exited() {
		return
	}
	c := t.ctx
	t.ctx = nil
	c.Recycle()
	k.ctxFree = append(k.ctxFree, c)
}

// Wake moves a blocked thread back onto the run queue. Waking a runnable or
// exited thread is a no-op.
func (k *Kernel) Wake(t *Thread) {
	if t.State != StateBlocked && t.State != StateSleeping {
		return
	}
	t.waitingOn = nil
	k.enqueue(t)
}

// Run advances the machine until the simulated clock reaches deadline.
// Threads run in deterministic round-robin order; timers fire between
// quanta; idle time is charged to swapper.
func (k *Kernel) Run(deadline sim.Ticks) {
	for k.Clock.Now() < deadline {
		k.Timers.FireDue(k.Clock.Now())
		t := k.dequeue()
		if t == nil {
			k.idle(deadline)
			continue
		}
		t.State = StateRunning
		y := t.ctx.Run(k.Cfg.Quantum)
		// Flush the thread's batched stats deltas while it is off-CPU: the
		// collector is exact at every quantum boundary, so host code running
		// between Run calls (engine resets, report reads) sees counts
		// identical to unbatched accounting.
		t.exec.FlushStats()
		k.Clock.Advance(y.Used)
		switch y.Reason {
		default:
			panic(fmt.Sprintf("kernel: unknown yield reason %v", y.Reason))
		case cpu.YieldQuantum:
			k.enqueue(t)
		case cpu.YieldBlocked:
			t.State = StateBlocked
		case cpu.YieldSleep:
			t.State = StateSleeping
			t.wakeAt = y.WakeAt
			// A thread has at most one pending sleep (it runs again only
			// after the wakeup fires), so its dedicated timer is free here.
			t.sleepTimer.When = y.WakeAt
			k.Timers.ScheduleTimer(&t.sleepTimer)
		case cpu.YieldExit:
			t.State = StateExited
			k.reclaimCtx(t)
		}
	}
}

// idle advances the clock to the next timer deadline (or the run deadline)
// and charges swapper's idle-loop references, which is how the swapper
// process earns its place in the paper's process breakdowns.
func (k *Kernel) idle(deadline sim.Ticks) {
	next := deadline
	if when, ok := k.Timers.NextDeadline(); ok && when < next {
		next = when
	}
	if next <= k.Clock.Now() {
		next = k.Clock.Now() + 1
	}
	idleTicks := next - k.Clock.Now()
	refs := uint64(idleTicks / k.Cfg.IdleRefDivisor)
	if refs > 0 {
		kv := k.Swapper.Layout.Kernel
		k.Stats.Add(k.Swapper.StatID, k.swapT.StatID, kv.Region, stats.IFetch, refs)
		k.Stats.Add(k.Swapper.StatID, k.swapT.StatID, kv.Region, stats.DataRead, refs/4)
	}
	k.Clock.Set(next)
}

// Shutdown kills every live thread so their goroutines exit. The kernel must
// not be Run again afterwards. Tests and benchmarks call this to avoid
// leaking goroutines between runs.
func (k *Kernel) Shutdown() {
	k.stopping = true
	for _, t := range k.threads {
		if t.ctx != nil {
			t.ctx.Kill()
			t.State = StateExited
		}
	}
}
