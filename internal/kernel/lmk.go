package kernel

import (
	"agave/internal/sim"
)

// The lowmemorykiller model: Gingerbread's staticly-configured kernel driver
// that frees memory under pressure by SIGKILLing the process with the worst
// oom_adj score. Here it runs as the kswapd0 kernel thread: every scan
// period it compares free pages against the minfree ladder and, when a rung
// is crossed, kills the highest-adj (largest-RSS on ties) process at or
// above that rung's adj floor. Kill timing is therefore a consequence of
// load — which apps are resident, how big their heaps are, what the balloon
// demands — not of any scripted timeline.

// MinFree is one lowmemorykiller rung: when free pages fall below Pages,
// processes with OomAdj >= Adj become victims.
type MinFree struct {
	Pages uint64
	Adj   int
}

// Gingerbread-flavoured oom_adj landmarks. The kernel only compares them;
// the ActivityManager model (internal/android) assigns them.
const (
	// OomNeverKill marks processes the killer must never touch: kernel
	// threads, init, daemons, zygote, system_server — everything that is
	// not a framework-managed app.
	OomNeverKill = -17
	// OomForeground is the app the user is interacting with.
	OomForeground = 0
	// OomVisible is an app still visible on screen (status bar).
	OomVisible = 1
	// OomPerceptible is an app the user notices without seeing it —
	// background music playback, an in-progress sync.
	OomPerceptible = 2
	// OomHome is the launcher.
	OomHome = 6
	// OomCachedMin..OomCachedMax is the cached-app LRU: a backgrounded
	// app's score grows as it ages down the recency list.
	OomCachedMin = 9
	OomCachedMax = 15
)

// DefaultMemPages is the default physical budget of a pressure-enabled
// machine: 262144 4 KiB pages = 1 GB. The accounting deliberately
// over-counts against real handsets (full stacks and dalvik arenas count
// resident, shared pages count once per address space), so the budget is
// sized to leave the bundled non-pressure scenarios comfortable headroom
// while Pressure events can still starve the machine.
const DefaultMemPages = 262144

// DefaultMinFreePages is the default cached-app kill waterline (pages free)
// the rest of the ladder is derived from: 8192 pages = 32 MB.
const DefaultMinFreePages = 8192

// lmkScanPeriod is how often kswapd0 re-evaluates the ladder. One kill per
// scan, as the real shrinker kills one task per invocation.
const lmkScanPeriod = 10 * sim.Millisecond

// DefaultMinFree derives the graduated minfree ladder from the cached-app
// waterline: cached apps go first, visible/perceptible apps at half the
// waterline, and only a machine within a quarter of it kills the foreground.
func DefaultMinFree(cached uint64) []MinFree {
	if cached == 0 {
		cached = DefaultMinFreePages
	}
	return []MinFree{
		{Pages: cached, Adj: OomCachedMin},
		{Pages: cached / 2, Adj: OomVisible},
		{Pages: cached / 4, Adj: OomForeground},
	}
}

// lmkState is the killer's bookkeeping on the kernel.
type lmkState struct {
	proc    *Process
	deaths  *MsgQueue
	kills   int
	victims []string
}

// LMKEnabled reports whether the lowmemorykiller is active in this machine.
func (k *Kernel) LMKEnabled() bool {
	return k.Cfg.MemPages > 0 && len(k.Cfg.MinFree) > 0
}

// LMKKills reports how many processes the lowmemorykiller has killed.
func (k *Kernel) LMKKills() int { return k.lmk.kills }

// LMKVictims reports the names of killed processes, in kill order.
func (k *Kernel) LMKVictims() []string { return k.lmk.victims }

// DeathQueue is the mailbox LMK victims are announced on. The framework's
// ActivityManager model consumes it to perform the userspace half of a
// process death (binder teardown, media session stop, surface removal).
// Non-nil only when the killer is enabled.
func (k *Kernel) DeathQueue() *MsgQueue { return k.lmk.deaths }

// startLMK brings up the kswapd0 kernel thread and the death queue.
func (k *Kernel) startLMK() {
	k.lmk.proc = k.NewKernelProcess("kswapd0")
	k.lmk.deaths = k.NewMsgQueue("lmk.deaths")
	k.SpawnThread(k.lmk.proc, "kswapd0", "kswapd0", func(ex *Exec) {
		for {
			ex.SleepFor(lmkScanPeriod)
			k.lmkScan(ex)
		}
	})
}

// lmkScan is one shrinker pass: find the lowest adj floor whose rung is
// crossed, pick the worst victim at or above it, and kill it.
func (k *Kernel) lmkScan(ex *Exec) {
	// Watermark bookkeeping happens every pass, pressure or not.
	ex.Syscall(160, 40)
	free := k.FreePages()
	minAdj, triggered := 0, false
	for _, rung := range k.Cfg.MinFree {
		if free < rung.Pages && (!triggered || rung.Adj < minAdj) {
			minAdj = rung.Adj
			triggered = true
		}
	}
	if !triggered {
		return
	}
	victim := k.selectVictim(minAdj)
	if victim == nil {
		return
	}
	// Task-list scan plus the SIGKILL and unmap work of the kill itself.
	ex.Syscall(uint64(600+20*len(k.procs)), 200)
	k.lmk.kills++
	k.lmk.victims = append(k.lmk.victims, victim.Name)
	k.KillProcess(victim)
	ex.Send(k.lmk.deaths, victim)
}

// selectVictim picks the process the killer frees: among live processes with
// OomAdj >= minAdj, the highest adj wins; ties go to the largest resident
// set, then the lowest PID, so selection is fully deterministic.
func (k *Kernel) selectVictim(minAdj int) *Process {
	var victim *Process
	for _, p := range k.procs {
		if p.OomAdj < minAdj || p.memReleased || p.LiveThreads() == 0 {
			continue
		}
		if victim == nil ||
			p.OomAdj > victim.OomAdj ||
			(p.OomAdj == victim.OomAdj && p.AS.ResidentPages() > victim.AS.ResidentPages()) {
			victim = p
		}
	}
	return victim
}
