package kernel

import (
	"fmt"

	"agave/internal/cpu"
	"agave/internal/mem"
	"agave/internal/sim"
	"agave/internal/stats"
)

// chunk bounds how far a single bulk operation may overrun its quantum; bulk
// helpers charge in slices of at most this many ticks.
const chunk = 4096

// Exec is a thread's handle on the machine: every instruction fetch and data
// reference a workload model issues flows through it and is attributed to
// (process, thread, region). It corresponds to the paper's modified
// gem5+kernel instrumentation.
//
// The *code-region stack* tracks which image's text is executing: workload
// models push "libskia.so" before raster work, the interpreter pushes
// "libdvm.so", syscalls push the kernel region, and Fetch attributes
// instruction reads to the top of the stack.
type Exec struct {
	K *Kernel
	P *Process
	T *Thread

	ctx  *cpu.Context
	code []*mem.VMA

	// codeBuf is the inline backing for code: real code stacks are a few
	// frames deep (kernel, app text, one or two libraries), so the stack
	// lives in the Exec itself and only pathological nesting spills to the
	// heap via append.
	codeBuf [8]*mem.VMA

	// pend batches this thread's counter deltas so the hot accounting path
	// is a linear scan of a few inline entries instead of a Collector map
	// update per Add. The scheduler flushes the buffer every time the
	// thread's quantum ends (see Kernel.Run), so whenever host code runs —
	// between Run calls, where the engine resets or reads the collector —
	// every off-CPU thread's counts are fully flushed. Deltas merge by
	// (region, kind); proc and thread are fixed per Exec. Buffering is
	// bypassed entirely while Collector.Tap is set: the trace hook must
	// observe every Add at its original granularity.
	pend  [8]pendEntry
	pendN int
}

// pendEntry is one merged, not-yet-flushed counter delta of Exec.pend.
type pendEntry struct {
	region stats.RegionID
	kind   stats.Kind
	n      uint64
}

// Now reports the simulated time. Time advances only between quanta, so
// within one quantum Now is constant.
func (ex *Exec) Now() sim.Ticks { return ex.K.Clock.Now() }

// RNG returns the process-private random source.
func (ex *Exec) RNG() *sim.RNG { return ex.P.RNG }

func (ex *Exec) account(region stats.RegionID, kind stats.Kind, n uint64) {
	if n == 0 {
		return
	}
	if ex.K.Stats.Tap != nil {
		ex.K.Stats.Add(ex.P.StatID, ex.T.StatID, region, kind, n)
		return
	}
	for i := 0; i < ex.pendN; i++ {
		if ex.pend[i].region == region && ex.pend[i].kind == kind {
			ex.pend[i].n += n
			return
		}
	}
	if ex.pendN == len(ex.pend) {
		ex.FlushStats()
	}
	ex.pend[ex.pendN] = pendEntry{region: region, kind: kind, n: n}
	ex.pendN++
}

// FlushStats drains the batched counter deltas into the collector. The
// scheduler calls it at every quantum end; callers that read the collector
// from inside a running thread (none do today) would need to flush first.
func (ex *Exec) FlushStats() {
	for i := 0; i < ex.pendN; i++ {
		e := &ex.pend[i]
		ex.K.Stats.Add(ex.P.StatID, ex.T.StatID, e.region, e.kind, e.n)
		*e = pendEntry{}
	}
	ex.pendN = 0
}

func (ex *Exec) charge(n uint64) {
	for n > chunk {
		ex.ctx.Charge(chunk)
		n -= chunk
	}
	if n > 0 {
		ex.ctx.Charge(sim.Ticks(n))
	}
}

// CurrentCode returns the VMA instruction fetches currently attribute to.
func (ex *Exec) CurrentCode() *mem.VMA {
	if len(ex.code) == 0 {
		panic(fmt.Sprintf("kernel: %s has no code region", ex.T))
	}
	return ex.code[len(ex.code)-1]
}

// PushCode makes v the current code region (a call into that image's text).
func (ex *Exec) PushCode(v *mem.VMA) {
	if v == nil {
		panic("kernel: PushCode(nil)")
	}
	ex.code = append(ex.code, v)
}

// PopCode returns to the caller's code region.
func (ex *Exec) PopCode() {
	if len(ex.code) <= 1 {
		panic("kernel: PopCode would empty the code stack")
	}
	ex.code = ex.code[:len(ex.code)-1]
}

// InCode runs f with v as the current code region.
func (ex *Exec) InCode(v *mem.VMA, f func()) {
	ex.PushCode(v)
	defer ex.PopCode()
	f()
}

// Fetch retires n instructions: n instruction reads attributed to the
// current code region and n ticks of simulated time.
func (ex *Exec) Fetch(n uint64) {
	if n == 0 {
		return
	}
	ex.account(ex.CurrentCode().Region, stats.IFetch, n)
	ex.charge(n)
}

// Read records n data reads against v's region. Data references ride along
// with instructions, so they consume no extra ticks; pair them with Fetch
// (or use Do/Copy which handle both).
func (ex *Exec) Read(v *mem.VMA, n uint64) {
	if n != 0 {
		ex.account(v.Region, stats.DataRead, n)
	}
}

// Write records n data writes against v's region.
func (ex *Exec) Write(v *mem.VMA, n uint64) {
	if n != 0 {
		ex.account(v.Region, stats.DataWrite, n)
	}
}

// ReadAt records one data read at addr, resolving the containing VMA. It
// panics on unmapped addresses: workload models must not wander.
func (ex *Exec) ReadAt(addr mem.Addr) {
	ex.account(ex.mustFind(addr).Region, stats.DataRead, 1)
}

// WriteAt records one data write at addr.
func (ex *Exec) WriteAt(addr mem.Addr) {
	ex.account(ex.mustFind(addr).Region, stats.DataWrite, 1)
}

func (ex *Exec) mustFind(addr mem.Addr) *mem.VMA {
	v := ex.P.AS.Find(addr)
	if v == nil {
		panic(fmt.Sprintf("kernel: %s touched unmapped address %#x", ex.T, addr))
	}
	return v
}

// Work describes one iteration of a homogeneous inner loop.
type Work struct {
	Fetch  uint64 // instructions per iteration
	Reads  uint64 // data reads per iteration
	Writes uint64 // data writes per iteration
	Data   *mem.VMA
	// Data2 optionally receives the same read/write counts as Data
	// (two-operand loops); nil for single-region loops.
	Data2 *mem.VMA
}

// Do executes iters iterations of w, interleaving accounting and charging in
// quantum-sized slices so long loops remain preemptable.
func (ex *Exec) Do(w Work, iters uint64) {
	if iters == 0 {
		return
	}
	code := ex.CurrentCode().Region
	perIter := w.Fetch
	if perIter == 0 {
		perIter = 1
	}
	step := uint64(chunk) / perIter
	if step == 0 {
		step = 1
	}
	for done := uint64(0); done < iters; {
		n := min(step, iters-done)
		ex.account(code, stats.IFetch, n*w.Fetch)
		if w.Data != nil {
			ex.account(w.Data.Region, stats.DataRead, n*w.Reads)
			ex.account(w.Data.Region, stats.DataWrite, n*w.Writes)
		}
		if w.Data2 != nil {
			ex.account(w.Data2.Region, stats.DataRead, n*w.Reads)
			ex.account(w.Data2.Region, stats.DataWrite, n*w.Writes)
		}
		ex.charge(n * w.Fetch)
		done += n
	}
}

// Copy models a word-at-a-time copy loop of n words from src to dst:
// fetchPerWord instructions, one read of src and one write of dst per word.
func (ex *Exec) Copy(dst, src *mem.VMA, words, fetchPerWord uint64) {
	code := ex.CurrentCode().Region
	for done := uint64(0); done < words; {
		n := min(uint64(chunk), words-done)
		ex.account(code, stats.IFetch, n*fetchPerWord)
		ex.account(src.Region, stats.DataRead, n)
		ex.account(dst.Region, stats.DataWrite, n)
		ex.charge(n * fetchPerWord)
		done += n
	}
}

// CopyBytes performs a real byte copy between VMA backing stores, accounting
// one reference per word on each side plus two instructions per word.
func (ex *Exec) CopyBytes(dst *mem.VMA, doff uint64, src *mem.VMA, soff, n uint64) {
	// Take the src view before the dst view: Slice may grow or thaw a store
	// (replacing its backing array), which would orphan a view taken earlier
	// in the same expression and lose the copy.
	from := src.Slice(soff, n)
	copy(dst.Slice(doff, n), from)
	words := (n + 3) / 4
	ex.Copy(dst, src, words, 2)
}

// StackWork models register-spill traffic: n instructions with a ~2:1
// read/write mix against the thread's stack region.
func (ex *Exec) StackWork(n uint64) {
	if ex.T.Stack == nil {
		ex.Fetch(n)
		return
	}
	ex.Do(Work{Fetch: 1, Reads: 1, Data: ex.T.Stack}, n*2/3)
	ex.Do(Work{Fetch: 1, Writes: 1, Data: ex.T.Stack}, n-n*2/3)
}

// Syscall models a trip into the kernel: instr instructions fetched from the
// kernel region and kdata data references (2/3 reads) against kernel
// structures.
func (ex *Exec) Syscall(instr, kdata uint64) {
	kv := ex.P.Layout.Kernel
	ex.PushCode(kv)
	ex.Do(Work{Fetch: 1, Data: kv}, instr-min(instr, kdata))
	if kdata > 0 {
		r := kdata * 2 / 3
		ex.Do(Work{Fetch: 1, Reads: 1, Data: kv}, r)
		ex.Do(Work{Fetch: 1, Writes: 1, Data: kv}, kdata-r)
	}
	ex.PopCode()
}

// SleepFor suspends the thread for d simulated ticks. A timer-tick syscall
// cost is charged on entry.
func (ex *Exec) SleepFor(d sim.Ticks) {
	ex.Syscall(220, 40)
	ex.ctx.Sleep(ex.K.Clock.Now() + d)
}

// SleepUntil suspends the thread until the clock reaches t (no-op if t has
// passed).
func (ex *Exec) SleepUntil(t sim.Ticks) {
	if t <= ex.K.Clock.Now() {
		return
	}
	ex.Syscall(220, 40)
	ex.ctx.Sleep(t)
}

// Yield lets the scheduler rotate to another runnable thread without
// blocking this one (sched_yield).
func (ex *Exec) Yield() {
	ex.Syscall(90, 12)
	ex.ctx.YieldNow()
}
