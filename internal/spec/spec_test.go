package spec

import (
	"bytes"
	"testing"
	"testing/quick"

	"agave/internal/kernel"
	"agave/internal/mem"
	"agave/internal/sim"
	"agave/internal/stats"
)

func TestNamesMatchPaper(t *testing.T) {
	want := []string{"401.bzip2", "429.mcf", "456.hmmer", "458.sjeng", "462.libquantum", "999.specrand"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("names = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("names[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("400.perlbench"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestBzip2Roundtrip(t *testing.T) {
	in := []byte("the quick brown fox jumps over the lazy dog, repeatedly: " +
		"the quick brown fox jumps over the lazy dog")
	comp := Bzip2Compress(in)
	out, err := Bzip2Decompress(comp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(in, out) {
		t.Fatalf("roundtrip mismatch:\n in: %q\nout: %q", in, out)
	}
}

func TestBzip2CompressesRepetitiveInput(t *testing.T) {
	in := bytes.Repeat([]byte("abab"), 256)
	comp := Bzip2Compress(in)
	if len(comp) >= len(in) {
		t.Fatalf("repetitive input grew: %d -> %d", len(in), len(comp))
	}
}

func TestBzip2RoundtripProperty(t *testing.T) {
	f := func(data []byte) bool {
		if len(data) == 0 || len(data) > 512 {
			return true // BWT of empty input is degenerate; bound cost
		}
		out, err := Bzip2Decompress(Bzip2Compress(data))
		return err == nil && bytes.Equal(data, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBzip2DecompressRejectsGarbage(t *testing.T) {
	if _, err := Bzip2Decompress([]byte{1, 2}); err == nil {
		t.Fatal("short block accepted")
	}
	if _, err := Bzip2Decompress([]byte{200, 0, 0, 0, 5, 1, 6}); err == nil {
		t.Fatal("odd RLE stream with bad index accepted")
	}
}

func runSpec(t *testing.T, name string, d sim.Ticks) (*kernel.Kernel, *Env) {
	t.Helper()
	b, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	k := kernel.New(kernel.Config{Quantum: sim.Millisecond, Seed: 2})
	t.Cleanup(k.Shutdown)
	env := Launch(k, b)
	k.Run(d)
	return k, env
}

func TestSpecLayoutIsSimple(t *testing.T) {
	k, _ := runSpec(t, "401.bzip2", 500*sim.Millisecond)
	// The defining SPEC property in the paper: nearly all instruction
	// reads from the app binary, data in heap/anonymous/stack.
	bi := stats.NewBreakdown(k.Stats.ByRegion(stats.IFetch))
	if bi.Rows[0].Name != mem.RegionAppBinary || bi.Rows[0].Share < 0.9 {
		t.Fatalf("top instr region = %+v, want app binary > 90%%", bi.Rows[0])
	}
	if got := k.Stats.RegionCount(stats.IFetch); got > 4 {
		t.Fatalf("SPEC uses %d code regions, want <= 4", got)
	}
	if got := k.Stats.RegionCount(stats.DataKinds...); got > 8 {
		t.Fatalf("SPEC uses %d data regions, want <= 8", got)
	}
}

func TestSpecDrivesAta(t *testing.T) {
	k, _ := runSpec(t, "429.mcf", 400*sim.Millisecond)
	if k.Stats.ByProcess()["ata_sff/0"] == 0 {
		t.Fatal("input read did not drive ata_sff/0")
	}
	if k.Disk.BytesRead == 0 {
		t.Fatal("no disk traffic")
	}
}

func TestSpecChecksumsDeterministic(t *testing.T) {
	for _, name := range Names() {
		_, e1 := runSpec(t, name, 350*sim.Millisecond)
		_, e2 := runSpec(t, name, 350*sim.Millisecond)
		if e1.Checksum != e2.Checksum {
			t.Errorf("%s: checksums diverged: %d vs %d", name, e1.Checksum, e2.Checksum)
		}
		if e1.Checksum == 0 {
			t.Errorf("%s: zero checksum (kernel did no work?)", name)
		}
	}
}

func TestMCFAnonymousDominates(t *testing.T) {
	k, _ := runSpec(t, "429.mcf", 400*sim.Millisecond)
	bd := stats.NewBreakdown(k.Stats.ByRegion(stats.DataKinds...))
	if bd.Rows[0].Name != mem.RegionAnonymous {
		t.Fatalf("mcf top data region = %s, want anonymous (big malloc over MMAP_THRESHOLD)", bd.Rows[0].Name)
	}
}

func TestHmmerHeapDominates(t *testing.T) {
	k, _ := runSpec(t, "456.hmmer", 300*sim.Millisecond)
	bd := stats.NewBreakdown(k.Stats.ByRegion(stats.DataKinds...))
	if bd.Rows[0].Name != mem.RegionHeap {
		t.Fatalf("hmmer top data region = %s, want heap", bd.Rows[0].Name)
	}
}

func TestSpecrandStackOnly(t *testing.T) {
	k, _ := runSpec(t, "999.specrand", 150*sim.Millisecond)
	bd := stats.NewBreakdown(k.Stats.ByRegion(stats.DataKinds...))
	if bd.Rows[0].Name != mem.RegionStack {
		t.Fatalf("specrand top data region = %s, want stack", bd.Rows[0].Name)
	}
}

func TestSjengSearchIsCorrect(t *testing.T) {
	// The take-away game with piles summing to a multiple-of-4 total per
	// pile is known lost for the side to move at depth covering the
	// tree; sanity-check stability rather than game theory: same
	// position, same value.
	var p1, p2 uint64
	t1, t2 := &sjengTT{}, &sjengTT{}
	v1 := t1.search([4]int8{3, 4, 2, 5}, 6, -1<<30, 1<<30, &p1)
	v2 := t2.search([4]int8{3, 4, 2, 5}, 6, -1<<30, 1<<30, &p2)
	if v1 != v2 {
		t.Fatalf("search unstable: %d vs %d", v1, v2)
	}
	if p1 == 0 {
		t.Fatal("no TT probes")
	}
}

func TestQuantumNormPreserved(t *testing.T) {
	// One Hadamard+CNOT pass preserves (approximate) norm in fixed point:
	// the checksum step asserts sum of |amp|^2 stays near (1<<14)^2.
	k, env := runSpec(t, "462.libquantum", 200*sim.Millisecond)
	_ = k
	if env.Checksum == 0 {
		t.Fatal("no quantum steps ran")
	}
}
