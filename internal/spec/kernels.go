package spec

import (
	"agave/internal/kernel"
)

// --- 429.mcf: min-cost flow (simplified network simplex) ---
//
// A genuine single-source shortest-path/negative-edge relaxation over a
// pseudo-random sparse graph: the pointer-chasing, cache-hostile access
// pattern 429.mcf is famous for. The graph lives conceptually in the huge
// anonymous mapping (mcf allocates its arc array with one giant malloc that
// glibc services with mmap — hence "anonymous", as the paper notes about
// MMAP_THRESHOLD).

const (
	mcfNodes = 4096
	mcfArcs  = 4 * mcfNodes
)

type mcfGraph struct {
	head   [mcfArcs]int32
	next   [mcfArcs]int32
	cost   [mcfArcs]int32
	first  [mcfNodes]int32
	dist   [mcfNodes]int64
	inited bool
}

func (g *mcfGraph) init(seed uint64) {
	for i := range g.first {
		g.first[i] = -1
	}
	for a := 0; a < mcfArcs; a++ {
		seed = seed*6364136223846793005 + 1442695040888963407
		from := int32(seed % mcfNodes)
		seed = seed*6364136223846793005 + 1442695040888963407
		to := int32(seed % mcfNodes)
		g.head[a] = to
		g.cost[a] = int32(seed%97) - 16
		g.next[a] = g.first[from]
		g.first[from] = int32(a)
	}
	g.inited = true
}

func stepMCF(ex *kernel.Exec, env *Env) {
	if env.mcf == nil {
		env.mcf = &mcfGraph{}
		env.mcf.init(42)
	}
	g := env.mcf
	for i := range g.dist {
		g.dist[i] = 1 << 40
	}
	g.dist[0] = 0
	relaxed := 0
	// Two Bellman-Ford rounds of genuine pointer chasing.
	for round := 0; round < 2; round++ {
		for u := 0; u < mcfNodes; u++ {
			for a := g.first[u]; a >= 0; a = g.next[a] {
				v := g.head[a]
				if nd := g.dist[u] + int64(g.cost[a]); nd < g.dist[v] {
					g.dist[v] = nd
					relaxed++
				}
			}
		}
	}
	env.Checksum += uint64(relaxed)
	// Account the full-size working set traversal: node/arc structure
	// reads dominate, nearly all in the anonymous arena.
	ex.Do(kernel.Work{Fetch: 6, Reads: 3, Data: env.Anon}, 260_000)
	ex.Do(kernel.Work{Fetch: 2, Writes: 1, Data: env.Anon}, 40_000)
	ex.StackWork(8_000)
}

// --- 456.hmmer: profile HMM Viterbi DP ---

const (
	hmmStates = 128
	hmmSeqLen = 256
)

func stepHmmer(ex *kernel.Exec, env *Env) {
	// Genuine Viterbi pass: match/insert/delete recurrences.
	var prev, cur [hmmStates]int32
	seed := env.iter*2862933555777941757 + 3037000493
	for i := range prev {
		prev[i] = int32(i % 7)
	}
	var best int32
	for pos := 0; pos < hmmSeqLen; pos++ {
		seed = seed*6364136223846793005 + 1
		emit := int32(seed % 31)
		cur[0] = prev[0] + emit
		for s := 1; s < hmmStates; s++ {
			m := prev[s-1] + emit   // match
			ins := prev[s] + emit/2 // insert
			del := cur[s-1] - 3     // delete
			v := m
			if ins > v {
				v = ins
			}
			if del > v {
				v = del
			}
			cur[s] = v
		}
		prev = cur
		if cur[hmmStates-1] > best {
			best = cur[hmmStates-1]
		}
	}
	env.Checksum += uint64(uint32(best))
	// The DP matrix traffic of the full-scale model (heap-resident).
	heap := env.Proc.Layout.Heap
	ex.Do(kernel.Work{Fetch: 9, Reads: 3, Writes: 1, Data: heap}, 220_000)
	ex.StackWork(30_000)
}

// --- 458.sjeng: alpha-beta game-tree search ---
//
// A real negamax search with a transposition table over a deterministic
// two-player take-away game (positions = pile states), reproducing sjeng's
// branchy, hash-probing profile.

type sjengTT struct {
	key [1 << 14]uint64
	val [1 << 14]int32
	ok  [1 << 14]bool
}

func (tt *sjengTT) search(piles [4]int8, depth int, alpha, beta int32, probes *uint64) int32 {
	if depth == 0 {
		var sum int32
		for _, p := range piles {
			sum += int32(p)
		}
		return sum & 7
	}
	var h uint64 = 14695981039346656037
	for _, p := range piles {
		h = (h ^ uint64(uint8(p))) * 1099511628211
	}
	h ^= uint64(depth)
	slot := h & (1<<14 - 1)
	*probes++
	if tt.ok[slot] && tt.key[slot] == h {
		return tt.val[slot]
	}
	best := int32(-1 << 30)
	moved := false
	for i := 0; i < 4; i++ {
		for take := int8(1); take <= 3 && take <= piles[i]; take++ {
			child := piles
			child[i] -= take
			moved = true
			v := -tt.search(child, depth-1, -beta, -alpha, probes)
			if v > best {
				best = v
			}
			if best > alpha {
				alpha = best
			}
			if alpha >= beta {
				goto done
			}
		}
	}
	if !moved {
		best = -8 // side to move has no moves: lost position
	}
done:
	tt.key[slot] = h
	tt.val[slot] = best
	tt.ok[slot] = true
	return best
}

func stepSjeng(ex *kernel.Exec, env *Env) {
	if env.sjeng == nil {
		env.sjeng = &sjengTT{}
	}
	var probes uint64
	piles := [4]int8{
		int8(3 + env.iter%5), int8(4 + env.iter%3),
		int8(2 + env.iter%7), int8(5),
	}
	v := env.sjeng.search(piles, 6, -1<<30, 1<<30, &probes)
	env.Checksum += uint64(uint32(v)) + probes
	// Full-scale accounting: hash probes against the anonymous TT,
	// move generation on the stack, evaluation compute.
	ex.Do(kernel.Work{Fetch: 8, Reads: 2, Data: env.Anon}, 180_000)
	ex.Do(kernel.Work{Fetch: 3, Writes: 1, Data: env.Anon}, 30_000)
	ex.StackWork(90_000)
}

// --- 462.libquantum: quantum register simulation ---

const quantumQubits = 12 // 4096-amplitude state vector

func stepQuantum(ex *kernel.Exec, env *Env) {
	n := 1 << quantumQubits
	// Genuine gate applications over a real amplitude array (fixed-point).
	amp := make([]int32, n)
	amp[0] = 1 << 14
	target := uint(env.iter % quantumQubits)
	bit := 1 << target
	// Hadamard on `target`: butterfly over the state vector.
	for i := 0; i < n; i++ {
		if i&bit == 0 {
			a, b := amp[i], amp[i|bit]
			amp[i] = (a + b) * 23170 >> 15 // 1/sqrt2 in Q15
			amp[i|bit] = (a - b) * 23170 >> 15
		}
	}
	// Controlled-NOT: swap amplitude pairs.
	ctrl := 1 << ((target + 1) % quantumQubits)
	for i := 0; i < n; i++ {
		if i&ctrl != 0 && i&bit == 0 {
			amp[i], amp[i|bit] = amp[i|bit], amp[i]
		}
	}
	var sum int64
	for _, a := range amp {
		sum += int64(a) * int64(a)
	}
	env.Checksum += uint64(sum)
	// Full-scale register (libquantum uses millions of amplitudes in the
	// anonymous arena): streaming read-modify-write sweeps.
	ex.Do(kernel.Work{Fetch: 7, Reads: 2, Writes: 2, Data: env.Anon}, 350_000)
	ex.StackWork(5_000)
}

// --- 999.specrand: the null benchmark ---

func stepSpecrand(ex *kernel.Exec, env *Env) {
	// specrand literally draws random numbers and prints a few: almost
	// no data footprint, pure register/ALU activity.
	seed := env.Checksum*69069 + 1
	for i := 0; i < 4096; i++ {
		seed = seed*69069 + 1
	}
	env.Checksum = seed
	ex.Fetch(160_000)
	ex.StackWork(6_000)
}
