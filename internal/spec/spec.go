// Package spec models the six SPEC CPU2006 benchmarks the paper uses as its
// contrast set: 401.bzip2, 429.mcf, 456.hmmer, 458.sjeng, 462.libquantum and
// 999.specrand. Each is a genuine miniature of the real benchmark's
// algorithm (block compression, min-cost flow, Viterbi DP, alpha-beta
// search, quantum register simulation, LCG) running in the classic C/Linux
// memory layout: one process named "benchmark", instruction fetches from the
// app binary, data in heap/anonymous/stack — the "simple" profile the
// paper's figures contrast against Android's.
package spec

import (
	"fmt"
	"sort"

	"agave/internal/kernel"
	"agave/internal/mem"
)

// Benchmark is one SPEC workload model.
type Benchmark struct {
	Name string
	// TextSize approximates the binary's text footprint.
	TextSize uint64
	// InputBytes is read from storage at startup (driving ata_sff/0).
	InputBytes uint64
	// AnonBytes is the large working set allocated above MMAP_THRESHOLD
	// (the "anonymous" region of the paper's Figure 2).
	AnonBytes uint64
	// Step runs one unit of work; the main loop repeats it until the
	// simulation deadline.
	Step func(ex *kernel.Exec, env *Env)
}

// Env is the memory environment a SPEC kernel runs in.
type Env struct {
	Proc *kernel.Process
	Anon *mem.VMA // large mmapped working set (nil if AnonBytes == 0)
	iter uint64
	// Checksum accumulates each step's result so computations cannot be
	// dead-code eliminated and tests can assert determinism.
	Checksum uint64

	// per-benchmark persistent state (built on first step)
	mcf   *mcfGraph
	sjeng *sjengTT
}

// Names lists the suite in the paper's order.
func Names() []string {
	return []string{
		"401.bzip2", "429.mcf", "456.hmmer",
		"458.sjeng", "462.libquantum", "999.specrand",
	}
}

// ByName returns the model for one benchmark.
func ByName(name string) (*Benchmark, error) {
	switch name {
	case "401.bzip2":
		return &Benchmark{Name: name, TextSize: 256 * 1024, InputBytes: 4 << 20,
			AnonBytes: 8 << 20, Step: stepBzip2}, nil
	case "429.mcf":
		return &Benchmark{Name: name, TextSize: 64 * 1024, InputBytes: 2 << 20,
			AnonBytes: 24 << 20, Step: stepMCF}, nil
	case "456.hmmer":
		return &Benchmark{Name: name, TextSize: 320 * 1024, InputBytes: 1 << 20,
			AnonBytes: 0, Step: stepHmmer}, nil
	case "458.sjeng":
		return &Benchmark{Name: name, TextSize: 192 * 1024, InputBytes: 64 * 1024,
			AnonBytes: 12 << 20, Step: stepSjeng}, nil
	case "462.libquantum":
		return &Benchmark{Name: name, TextSize: 48 * 1024, InputBytes: 16 * 1024,
			AnonBytes: 16 << 20, Step: stepQuantum}, nil
	case "999.specrand":
		return &Benchmark{Name: name, TextSize: 16 * 1024, InputBytes: 4 * 1024,
			AnonBytes: 0, Step: stepSpecrand}, nil
	}
	return nil, fmt.Errorf("spec: unknown benchmark %q", name)
}

// Launch creates the benchmark process (named "benchmark", as in the
// paper's process legends) and starts its main thread: read the input from
// storage, then iterate Step until the simulation deadline. It returns the
// environment so tests can inspect the checksum.
func Launch(k *kernel.Kernel, b *Benchmark) *Env {
	p := k.NewProcess("benchmark", b.TextSize, 4<<20)
	env := &Env{Proc: p}
	if b.AnonBytes > 0 {
		env.Anon = p.Layout.MapAnon(p.AS, b.AnonBytes)
	}
	k.SpawnThread(p, b.Name, "main", func(ex *kernel.Exec) {
		ex.PushCode(p.Layout.Text)
		// Startup: read the input set (drives the ata_sff/0 process the
		// paper observes competing with SPEC).
		in := p.Layout.Heap
		remaining := b.InputBytes
		for remaining > 0 {
			chunk := min(remaining, uint64(1<<20))
			ex.BlockRead(in, chunk)
			remaining -= chunk
		}
		for {
			b.Step(ex, env)
			env.iter++
		}
	})
	return env
}

// --- 401.bzip2: block compression (BWT + MTF + RLE) ---

// Bzip2Block compresses a block with a real Burrows–Wheeler transform,
// move-to-front coding and run-length encoding; Decompress inverts it. The
// simulation runs these for real on small blocks, and tests assert the
// round trip.
func Bzip2Compress(block []byte) []byte {
	bwt, idx := bwtForward(block)
	mtf := mtfEncode(bwt)
	out := rleEncode(mtf)
	hdr := []byte{byte(idx), byte(idx >> 8), byte(idx >> 16), byte(idx >> 24)}
	return append(hdr, out...)
}

// Bzip2Decompress inverts Bzip2Compress.
func Bzip2Decompress(data []byte) ([]byte, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("spec: short bzip2 block")
	}
	idx := int(data[0]) | int(data[1])<<8 | int(data[2])<<16 | int(data[3])<<24
	mtf, err := rleDecode(data[4:])
	if err != nil {
		return nil, err
	}
	bwt := mtfDecode(mtf)
	return bwtInverse(bwt, idx)
}

func bwtForward(s []byte) ([]byte, int) {
	n := len(s)
	rot := make([]int, n)
	for i := range rot {
		rot[i] = i
	}
	sort.Slice(rot, func(a, b int) bool {
		ra, rb := rot[a], rot[b]
		for k := 0; k < n; k++ {
			ca, cb := s[(ra+k)%n], s[(rb+k)%n]
			if ca != cb {
				return ca < cb
			}
		}
		return ra < rb
	})
	out := make([]byte, n)
	primary := 0
	for i, r := range rot {
		out[i] = s[(r+n-1)%n]
		if r == 0 {
			primary = i
		}
	}
	return out, primary
}

func bwtInverse(l []byte, primary int) ([]byte, error) {
	n := len(l)
	if primary < 0 || primary >= n {
		return nil, fmt.Errorf("spec: bad BWT index %d", primary)
	}
	var count [256]int
	for _, c := range l {
		count[c]++
	}
	var base [256]int
	sum := 0
	for c := 0; c < 256; c++ {
		base[c] = sum
		sum += count[c]
	}
	next := make([]int, n)
	var seen [256]int
	for i, c := range l {
		next[base[c]+seen[c]] = i
		seen[c]++
	}
	out := make([]byte, n)
	p := next[primary]
	for i := 0; i < n; i++ {
		out[i] = l[p]
		p = next[p]
	}
	return out, nil
}

func mtfEncode(s []byte) []byte {
	var tbl [256]byte
	for i := range tbl {
		tbl[i] = byte(i)
	}
	out := make([]byte, len(s))
	for i, c := range s {
		var j int
		for j = 0; tbl[j] != c; j++ {
		}
		out[i] = byte(j)
		copy(tbl[1:j+1], tbl[:j])
		tbl[0] = c
	}
	return out
}

func mtfDecode(s []byte) []byte {
	var tbl [256]byte
	for i := range tbl {
		tbl[i] = byte(i)
	}
	out := make([]byte, len(s))
	for i, j := range s {
		c := tbl[j]
		out[i] = c
		copy(tbl[1:int(j)+1], tbl[:int(j)])
		tbl[0] = c
	}
	return out
}

func rleEncode(s []byte) []byte {
	var out []byte
	for i := 0; i < len(s); {
		j := i
		for j < len(s) && s[j] == s[i] && j-i < 255 {
			j++
		}
		out = append(out, s[i], byte(j-i))
		i = j
	}
	return out
}

func rleDecode(s []byte) ([]byte, error) {
	if len(s)%2 != 0 {
		return nil, fmt.Errorf("spec: odd RLE stream")
	}
	var out []byte
	for i := 0; i < len(s); i += 2 {
		for k := 0; k < int(s[i+1]); k++ {
			out = append(out, s[i])
		}
	}
	return out, nil
}

// stepBzip2 compresses one synthetic text block for real and accounts the
// full-scale block volume.
func stepBzip2(ex *kernel.Exec, env *Env) {
	const realBlock = 2048
	buf := env.Anon.Slice(0, realBlock)
	seed := env.iter*2654435761 + 12345
	for i := range buf {
		seed = seed*1103515245 + 12345
		buf[i] = "the quick brown fox jumps over "[seed%31]
	}
	comp := Bzip2Compress(buf)
	env.Checksum += uint64(len(comp))
	// Account the full 256 KiB-block workload this miniature stands for:
	// suffix sort reads, MTF table traffic, output writes.
	heap := env.Proc.Layout.Heap
	ex.Do(kernel.Work{Fetch: 10, Reads: 2, Data: env.Anon}, 300_000)
	ex.Do(kernel.Work{Fetch: 4, Reads: 1, Writes: 1, Data: heap}, 120_000)
	ex.StackWork(40_000)
}

func min(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
