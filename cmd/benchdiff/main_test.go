package main

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: agave
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkSuiteSerial-8        	       1	1200000000 ns/op	       14.00 workers	     900.5 Mticks/s	  524288 B/op	    1024 allocs/op
BenchmarkSuiteParallel-8      	       1	 300000000 ns/op	        8.000 workers	    3600.0 Mticks/s	  524288 B/op	    1024 allocs/op
BenchmarkScenario/social-burst-8 	       1	 236000000 ns/op	        26.00 processes	 143067000 total_refs
PASS
ok  	agave	2.101s
`

func TestParseBench(t *testing.T) {
	snap, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(snap.Benchmarks))
	}
	b := snap.Benchmarks[0]
	if b.Name != "SuiteSerial" {
		t.Fatalf("name = %q (GOMAXPROCS suffix not stripped?)", b.Name)
	}
	if b.NsPerOp != 1.2e9 || b.BytesPerOp != 524288 || b.AllocsOp != 1024 {
		t.Fatalf("SuiteSerial parsed wrong: %+v", b)
	}
	if b.Metrics["Mticks/s"] != 900.5 {
		t.Fatalf("custom metric lost: %+v", b.Metrics)
	}
	sub := snap.Benchmarks[2]
	if sub.Name != "Scenario/social-burst" || sub.Metrics["total_refs"] != 143067000 {
		t.Fatalf("sub-benchmark parsed wrong: %+v", sub)
	}
}

func TestParseBenchAveragesRepeatedCounts(t *testing.T) {
	input := "BenchmarkX-4 1 100 ns/op\nBenchmarkX-4 1 300 ns/op\n"
	snap, err := parseBench(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Benchmarks) != 1 || math.Abs(snap.Benchmarks[0].NsPerOp-200) > 1e-9 {
		t.Fatalf("repeated counts not averaged: %+v", snap.Benchmarks)
	}
	if snap.Benchmarks[0].Iterations != 1 {
		t.Fatalf("iterations summed across counts, not averaged: %+v", snap.Benchmarks[0])
	}
}

func TestParseBenchRejectsEmptyInput(t *testing.T) {
	if _, err := parseBench(strings.NewReader("PASS\nok agave 1s\n")); err == nil {
		t.Fatal("empty bench input accepted")
	}
}

func TestCompareFlagsOnlyRegressions(t *testing.T) {
	base := &Snapshot{Benchmarks: []Benchmark{
		{Name: "A", NsPerOp: 1000},
		{Name: "B", NsPerOp: 1000},
		{Name: "C", NsPerOp: 1000},
		{Name: "Gone", NsPerOp: 1000},
	}}
	cur := &Snapshot{Benchmarks: []Benchmark{
		{Name: "A", NsPerOp: 1240}, // +24%: inside a 25% gate
		{Name: "B", NsPerOp: 1300}, // +30%: regression
		{Name: "C", NsPerOp: 700},  // improvement
		{Name: "New", NsPerOp: 50},
	}}
	deltas, newOnly, baseOnly := compare(base, cur, 0.25, 0.25)
	if len(deltas) != 3 {
		t.Fatalf("got %d deltas, want 3", len(deltas))
	}
	regressed := 0
	for _, d := range deltas {
		if d.Regressed {
			regressed++
			if d.Name != "B" {
				t.Fatalf("unexpected regression: %+v", d)
			}
		}
	}
	if regressed != 1 {
		t.Fatalf("flagged %d regressions, want 1", regressed)
	}
	if len(newOnly) != 1 || newOnly[0] != "New" {
		t.Fatalf("newOnly = %v", newOnly)
	}
	if len(baseOnly) != 1 || baseOnly[0] != "Gone" {
		t.Fatalf("baseOnly = %v", baseOnly)
	}
}

// TestCompareZeroBaselineIsIncomparable is the divide-by-zero regression
// test: a baseline entry with ns/op == 0 used to produce a 0-growth delta
// (NaN/Inf territory avoided by skipping the division) that silently passed
// the gate. Such entries are now flagged incomparable, never ok.
func TestCompareZeroBaselineIsIncomparable(t *testing.T) {
	base := &Snapshot{Benchmarks: []Benchmark{
		{Name: "Broken", NsPerOp: 0},
		{Name: "Fine", NsPerOp: 1000},
	}}
	cur := &Snapshot{Benchmarks: []Benchmark{
		{Name: "Broken", NsPerOp: 5e9}, // a huge "regression" vs nothing
		{Name: "Fine", NsPerOp: 1000},
	}}
	deltas, _, _ := compare(base, cur, 0.25, 0.25)
	if len(deltas) != 2 {
		t.Fatalf("got %d deltas, want 2", len(deltas))
	}
	for _, d := range deltas {
		switch d.Name {
		case "Broken":
			if !d.Incomparable {
				t.Fatalf("zero-baseline entry not flagged incomparable: %+v", d)
			}
			if d.Regressed {
				t.Fatalf("incomparable entry also counted as regression: %+v", d)
			}
			if math.IsNaN(d.Growth) || math.IsInf(d.Growth, 0) {
				t.Fatalf("growth is not finite: %+v", d)
			}
		case "Fine":
			if d.Incomparable || d.Regressed {
				t.Fatalf("healthy entry misflagged: %+v", d)
			}
		}
	}
}

// TestMainZeroBaselineFailsTheGate: end to end, a corrupt baseline entry is
// reported and fails the run instead of passing silently.
func TestMainZeroBaselineFailsTheGate(t *testing.T) {
	dir := t.TempDir()
	baseFile := filepath.Join(dir, "BENCH_baseline.json")
	broken := Snapshot{Benchmarks: []Benchmark{
		{Name: "SuiteSerial", NsPerOp: 0, Iterations: 1},
		{Name: "SuiteParallel", NsPerOp: 3e8, Iterations: 1},
		{Name: "Scenario/social-burst", NsPerOp: 2.36e8, Iterations: 1},
	}}
	data, err := json.MarshalIndent(broken, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(baseFile, data, 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, errOut := invoke(t, sampleOutput, "-baseline", baseFile)
	if code != 1 {
		t.Fatalf("corrupt baseline passed: code=%d\n%s", code, out)
	}
	if !strings.Contains(out, "INCOMPARABLE") {
		t.Fatalf("incomparable entry not reported:\n%s", out)
	}
	if !strings.Contains(errOut, "non-positive ns/op") {
		t.Fatalf("stderr does not explain the failure: %q", errOut)
	}
}

// invoke runs one benchdiff invocation against an input string.
func invoke(t *testing.T, input string, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := Main(args, strings.NewReader(input), &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestMainWriteThenCompareRoundTrip(t *testing.T) {
	dir := t.TempDir()
	baseFile := filepath.Join(dir, "BENCH_baseline.json")
	curFile := filepath.Join(dir, "BENCH_abc1234.json")

	code, _, errOut := invoke(t, sampleOutput, "-write", baseFile)
	if code != 0 {
		t.Fatalf("write: code=%d stderr=%q", code, errOut)
	}
	var snap Snapshot
	data, err := os.ReadFile(baseFile)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("written snapshot is not valid JSON: %v", err)
	}

	// The identical run compares clean, itemizes every benchmark with its
	// memory movement, and writes the artifact snapshot.
	code, out, errOut := invoke(t, sampleOutput, "-write", curFile, "-baseline", baseFile)
	if code != 0 {
		t.Fatalf("identical run flagged: code=%d stderr=%q\n%s", code, errOut, out)
	}
	if !strings.Contains(out, "within 25% of baseline") {
		t.Fatalf("missing pass summary:\n%s", out)
	}
	for _, want := range []string{"SuiteSerial", "SuiteParallel", "Scenario/social-burst"} {
		if !strings.Contains(out, want) {
			t.Fatalf("success output does not itemize %s:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "524288 -> 524288 B/op") || !strings.Contains(out, "1024 -> 1024 allocs/op") {
		t.Fatalf("memory deltas missing from comparison lines:\n%s", out)
	}
	if _, err := os.Stat(curFile); err != nil {
		t.Fatalf("artifact snapshot not written: %v", err)
	}

	// A 10x slowdown of one benchmark fails the gate.
	slow := strings.Replace(sampleOutput, " 300000000 ns/op", "3000000000 ns/op", 1)
	code, out, errOut = invoke(t, slow, "-baseline", baseFile)
	if code != 1 {
		t.Fatalf("regression not flagged: code=%d\n%s", code, out)
	}
	if !strings.Contains(out, "REGRESSED") || !strings.Contains(errOut, "regressed more than 25%") {
		t.Fatalf("regression report malformed:\nstdout=%s\nstderr=%s", out, errOut)
	}

	// A custom threshold loosens the gate.
	code, _, _ = invoke(t, slow, "-baseline", baseFile, "-threshold", "10")
	if code != 0 {
		t.Fatalf("threshold=10 still flagged: code=%d", code)
	}
}

// TestMainNewBenchmarkIsAdditionNotFailure: a benchmark present in the run
// but absent from the baseline — the normal state right after a benchmark is
// added, before the baseline is refreshed — is reported as an addition and
// passes the gate.
func TestMainNewBenchmarkIsAdditionNotFailure(t *testing.T) {
	dir := t.TempDir()
	baseFile := filepath.Join(dir, "BENCH_baseline.json")
	if code, _, errOut := invoke(t, sampleOutput, "-write", baseFile); code != 0 {
		t.Fatalf("write: code=%d stderr=%q", code, errOut)
	}

	withNew := strings.Replace(sampleOutput, "PASS\n",
		"BenchmarkInterpDispatch/interp-8 	     100	   1000000 ns/op	     133.1 Mbytecodes/s\nPASS\n", 1)
	code, out, errOut := invoke(t, withNew, "-baseline", baseFile)
	if code != 0 {
		t.Fatalf("new benchmark failed the gate: code=%d stderr=%q\n%s", code, errOut, out)
	}
	if !strings.Contains(out, "InterpDispatch/interp") ||
		!strings.Contains(out, "(new: no baseline entry)") {
		t.Fatalf("addition not reported:\n%s", out)
	}
	if strings.Contains(out, "REGRESSED") || strings.Contains(out, "INCOMPARABLE") {
		t.Fatalf("addition misreported as failure:\n%s", out)
	}
}

// TestMainWriteOnlySummarizesPerBenchmark: a snapshot-only invocation (the
// shape used when establishing a fresh baseline) prints one readable line
// per benchmark instead of leaving everything inside the JSON file.
func TestMainWriteOnlySummarizesPerBenchmark(t *testing.T) {
	dir := t.TempDir()
	code, out, errOut := invoke(t, sampleOutput, "-write", filepath.Join(dir, "BENCH_fresh.json"))
	if code != 0 {
		t.Fatalf("write: code=%d stderr=%q", code, errOut)
	}
	for _, want := range []string{
		"wrote",
		"SuiteSerial",
		"1200000000 ns/op",
		"524288 B/op",
		"1024 allocs/op",
		"Scenario/social-burst",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("write-only output missing %q:\n%s", want, out)
		}
	}
	// social-burst ran without -benchmem columns: no fabricated zeros.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "social-burst") && strings.Contains(line, "B/op") {
			t.Fatalf("memoryless benchmark grew memory columns: %q", line)
		}
	}
}

func TestMainUsageErrors(t *testing.T) {
	if code, _, _ := invoke(t, sampleOutput); code != 2 {
		t.Fatal("no-op invocation accepted")
	}
	if code, _, _ := invoke(t, sampleOutput, "-baseline", "/no/such/file.json"); code != 1 {
		t.Fatal("missing baseline not a comparison failure")
	}
}

// TestCompareAllocGate: allocs/op gates with its own threshold; a zero
// allocs/op baseline is incomparable only when the run measured allocations.
func TestCompareAllocGate(t *testing.T) {
	base := &Snapshot{Benchmarks: []Benchmark{
		{Name: "Grew", NsPerOp: 1000, AllocsOp: 1000},
		{Name: "Held", NsPerOp: 1000, AllocsOp: 1000},
		{Name: "Gained", NsPerOp: 1000, AllocsOp: 0},
		{Name: "Memless", NsPerOp: 1000, AllocsOp: 0},
	}}
	cur := &Snapshot{Benchmarks: []Benchmark{
		{Name: "Grew", NsPerOp: 1000, AllocsOp: 1300}, // +30%: regression
		{Name: "Held", NsPerOp: 1000, AllocsOp: 1240}, // +24%: inside the gate
		{Name: "Gained", NsPerOp: 1000, AllocsOp: 50}, // allocs vs none: incomparable
		{Name: "Memless", NsPerOp: 1000, AllocsOp: 0}, // never measured: not gated
	}}
	deltas, _, _ := compare(base, cur, 0.25, 0.25)
	byName := make(map[string]Delta)
	for _, d := range deltas {
		byName[d.Name] = d
	}
	if d := byName["Grew"]; !d.AllocsRegressed || d.Regressed {
		t.Fatalf("Grew misjudged: %+v", d)
	}
	if d := byName["Held"]; d.AllocsRegressed || d.AllocsIncomparable {
		t.Fatalf("Held misjudged: %+v", d)
	}
	if d := byName["Gained"]; !d.AllocsIncomparable || d.AllocsRegressed {
		t.Fatalf("Gained misjudged: %+v", d)
	}
	if d := byName["Memless"]; d.AllocsIncomparable || d.AllocsRegressed {
		t.Fatalf("Memless misjudged: %+v", d)
	}
	// A looser alloc threshold admits the growth without touching ns/op.
	deltas, _, _ = compare(base, cur, 0.25, 0.5)
	for _, d := range deltas {
		if d.Name == "Grew" && d.AllocsRegressed {
			t.Fatalf("alloc threshold not honored: %+v", d)
		}
	}
}

// TestMainAllocRegressionFailsTheGate: end to end, growing allocs/op past the
// default 25% fails the run even when ns/op is flat, and -allocthreshold
// loosens only the allocation gate.
func TestMainAllocRegressionFailsTheGate(t *testing.T) {
	dir := t.TempDir()
	baseFile := filepath.Join(dir, "BENCH_baseline.json")
	if code, _, errOut := invoke(t, sampleOutput, "-write", baseFile); code != 0 {
		t.Fatalf("write: code=%d stderr=%q", code, errOut)
	}
	grown := strings.ReplaceAll(sampleOutput, "1024 allocs/op", "2048 allocs/op")
	code, out, errOut := invoke(t, grown, "-baseline", baseFile)
	if code != 1 {
		t.Fatalf("alloc regression passed: code=%d\n%s", code, out)
	}
	if !strings.Contains(out, "ALLOCS-REGRESSED") || !strings.Contains(errOut, "grew allocs/op more than 25%") {
		t.Fatalf("alloc regression report malformed:\nstdout=%s\nstderr=%s", out, errOut)
	}
	if code, _, _ := invoke(t, grown, "-baseline", baseFile, "-allocthreshold", "2"); code != 0 {
		t.Fatal("allocthreshold=2 still flagged the doubled allocs")
	}
}
