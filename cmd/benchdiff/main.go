// Command benchdiff is the benchmark-regression gate of the CI pipeline.
// It parses `go test -bench` text output into a stable JSON document and
// compares it against a committed baseline, failing when any benchmark's
// ns/op or allocs/op regresses beyond its threshold. Every invocation
// itemizes the run one line per benchmark — deltas (ns/op and allocs/op
// gating, B/op informational) when a baseline is given, raw values otherwise
// — so reading a BENCH_<sha>.json trend never requires diffing JSON by hand.
//
// Usage:
//
//	go test -run xxx -bench . -benchmem -benchtime 1x | \
//	    benchdiff -write BENCH_abc1234.json -baseline BENCH_baseline.json
//
// Flags:
//
//	-in FILE              read bench output from FILE instead of stdin
//	-write FILE           write the parsed run as a JSON snapshot
//	-baseline FILE        compare against this JSON snapshot
//	-threshold 0.25       allowed fractional ns/op growth before failing
//	-allocthreshold 0.25  allowed fractional allocs/op growth before failing
//
// The allocs/op gate only applies where allocations were measured: a
// benchmark with zero allocs/op on both sides (no -benchmem, or genuinely
// allocation-free on both sides) is not gated, while a positive current
// value against a zero baseline is flagged incomparable exactly like a
// non-positive baseline ns/op — a gained allocation against a clean baseline
// must never pass silently.
//
// Exit status: 0 ok, 1 regression past a threshold (or baseline unreadable,
// or a baseline entry has a non-positive ns/op — or allocs/op where the run
// measured some — and is incomparable), 2 usage/parse error.
//
// Benchmarks present only in the run (new) or only in the baseline
// (removed/renamed) are reported but never fail the gate — the baseline is
// refreshed by committing the uploaded artifact when the suite's shape
// changes deliberately.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result. Repeated runs of the same name
// (-count > 1) are averaged.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	BytesPerOp float64            `json:"bytes_per_op,omitempty"`
	AllocsOp   float64            `json:"allocs_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`

	samples int
}

// Snapshot is the JSON document a bench run serializes to.
type Snapshot struct {
	GoOS       string      `json:"go_os"`
	GoArch     string      `json:"go_arch"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// gomaxprocsSuffix matches the "-8" tail go test appends to benchmark names.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parseBench reads `go test -bench` text output. Lines that are not
// benchmark results (headers, PASS, metadata) are skipped.
func parseBench(r io.Reader) (*Snapshot, error) {
	byName := make(map[string]*Benchmark)
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Minimum shape: name, iterations, value, unit.
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		name = gomaxprocsSuffix.ReplaceAllString(name, "")
		b, ok := byName[name]
		if !ok {
			b = &Benchmark{Name: name, Metrics: make(map[string]float64)}
			byName[name] = b
			order = append(order, name)
		}
		b.samples++
		b.Iterations += iters
		// Value/unit pairs follow the iteration count.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchdiff: %s: bad value %q", name, fields[i])
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp += v
			case "B/op":
				b.BytesPerOp += v
			case "allocs/op":
				b.AllocsOp += v
			default:
				b.Metrics[unit] += v
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(order) == 0 {
		return nil, fmt.Errorf("benchdiff: no benchmark lines in input")
	}
	snap := &Snapshot{GoOS: runtime.GOOS, GoArch: runtime.GOARCH}
	for _, name := range order {
		b := byName[name]
		n := float64(b.samples)
		b.Iterations /= int64(b.samples)
		b.NsPerOp /= n
		b.BytesPerOp /= n
		b.AllocsOp /= n
		for k := range b.Metrics {
			b.Metrics[k] /= n
		}
		if len(b.Metrics) == 0 {
			b.Metrics = nil
		}
		snap.Benchmarks = append(snap.Benchmarks, *b)
	}
	return snap, nil
}

// Delta is one benchmark's baseline comparison.
type Delta struct {
	Name      string
	Base      float64 // baseline ns/op
	Cur       float64 // current ns/op
	Growth    float64 // (Cur-Base)/Base
	Regressed bool
	// Incomparable marks a baseline entry with a non-positive ns/op: a
	// growth ratio against it would be NaN/Inf, so the entry is reported
	// as broken instead of silently passing the gate.
	Incomparable bool
	// Allocation movement gates like ns/op; byte movement is informational.
	BaseBytes, CurBytes   float64
	BaseAllocs, CurAllocs float64
	AllocsGrowth          float64
	AllocsRegressed       bool
	// AllocsIncomparable marks a run that measured allocations against a
	// baseline entry with none: no finite ratio exists, and a gained
	// allocation profile must not pass silently.
	AllocsIncomparable bool
}

// compare evaluates cur against base: every shared benchmark whose ns/op
// grew beyond threshold, or whose allocs/op grew beyond allocThreshold, is a
// regression. Shared benchmarks whose baseline ns/op is zero (a corrupt or
// hand-edited snapshot) are flagged incomparable rather than given a free
// pass; a zero allocs/op baseline is incomparable only when the current run
// measured allocations (both-zero means nothing to gate).
func compare(base, cur *Snapshot, threshold, allocThreshold float64) (deltas []Delta, newOnly, baseOnly []string) {
	baseBy := make(map[string]Benchmark, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseBy[b.Name] = b
	}
	curNames := make(map[string]bool, len(cur.Benchmarks))
	for _, c := range cur.Benchmarks {
		curNames[c.Name] = true
		b, ok := baseBy[c.Name]
		if !ok {
			newOnly = append(newOnly, c.Name)
			continue
		}
		d := Delta{
			Name: c.Name, Base: b.NsPerOp, Cur: c.NsPerOp,
			BaseBytes: b.BytesPerOp, CurBytes: c.BytesPerOp,
			BaseAllocs: b.AllocsOp, CurAllocs: c.AllocsOp,
		}
		if b.NsPerOp > 0 {
			d.Growth = (c.NsPerOp - b.NsPerOp) / b.NsPerOp
			d.Regressed = d.Growth > threshold
		} else {
			d.Incomparable = true
		}
		switch {
		case b.AllocsOp > 0:
			d.AllocsGrowth = (c.AllocsOp - b.AllocsOp) / b.AllocsOp
			d.AllocsRegressed = d.AllocsGrowth > allocThreshold
		case c.AllocsOp > 0:
			d.AllocsIncomparable = true
		}
		deltas = append(deltas, d)
	}
	for _, b := range base.Benchmarks {
		if !curNames[b.Name] {
			baseOnly = append(baseOnly, b.Name)
		}
	}
	sort.Strings(newOnly)
	sort.Strings(baseOnly)
	return deltas, newOnly, baseOnly
}

// memDelta renders a benchmark's memory movement as a line suffix, or ""
// when neither side recorded memory (the run lacked -benchmem). The suffix
// itself is informational — the allocs/op gate reports through the line's
// status column, and B/op never gates.
func memDelta(d Delta) string {
	var parts []string
	if d.BaseBytes != 0 || d.CurBytes != 0 {
		parts = append(parts, fmt.Sprintf("%.0f -> %.0f B/op%s",
			d.BaseBytes, d.CurBytes, growthTag(d.BaseBytes, d.CurBytes)))
	}
	if d.BaseAllocs != 0 || d.CurAllocs != 0 {
		parts = append(parts, fmt.Sprintf("%.0f -> %.0f allocs/op%s",
			d.BaseAllocs, d.CurAllocs, growthTag(d.BaseAllocs, d.CurAllocs)))
	}
	if len(parts) == 0 {
		return ""
	}
	return "  [" + strings.Join(parts, ", ") + "]"
}

// growthTag formats a percentage change, or "" when the base is non-positive
// and no finite ratio exists.
func growthTag(base, cur float64) string {
	if base <= 0 {
		return ""
	}
	return fmt.Sprintf(" %+.1f%%", (cur-base)/base*100)
}

func main() {
	os.Exit(Main(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// Main is the testable entry point.
func Main(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "", "bench output file (default: stdin)")
	write := fs.String("write", "", "write the parsed run to this JSON file")
	baseline := fs.String("baseline", "", "compare against this JSON snapshot")
	threshold := fs.Float64("threshold", 0.25, "allowed fractional ns/op growth")
	allocThreshold := fs.Float64("allocthreshold", 0.25, "allowed fractional allocs/op growth")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *write == "" && *baseline == "" {
		fmt.Fprintln(stderr, "benchdiff: nothing to do (need -write and/or -baseline)")
		return 2
	}
	src := stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(stderr, "benchdiff:", err)
			return 2
		}
		defer f.Close()
		src = f
	}
	cur, err := parseBench(src)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if *write != "" {
		data, err := json.MarshalIndent(cur, "", "  ")
		if err != nil {
			fmt.Fprintln(stderr, "benchdiff:", err)
			return 2
		}
		if err := os.WriteFile(*write, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(stderr, "benchdiff:", err)
			return 2
		}
		fmt.Fprintf(stdout, "wrote %s (%d benchmarks)\n", *write, len(cur.Benchmarks))
	}
	if *baseline == "" {
		// No baseline to diff against, but the run should still read like
		// one: one line per benchmark, so a snapshot-only invocation never
		// needs manual JSON spelunking.
		for _, b := range cur.Benchmarks {
			line := fmt.Sprintf("%-40s %14.0f ns/op", b.Name, b.NsPerOp)
			if b.BytesPerOp != 0 || b.AllocsOp != 0 {
				line += fmt.Sprintf("  %12.0f B/op  %8.0f allocs/op", b.BytesPerOp, b.AllocsOp)
			}
			fmt.Fprintln(stdout, line)
		}
		return 0
	}
	data, err := os.ReadFile(*baseline)
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 1
	}
	var base Snapshot
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(stderr, "benchdiff: %s: %v\n", *baseline, err)
		return 1
	}
	deltas, newOnly, baseOnly := compare(&base, cur, *threshold, *allocThreshold)
	failed, allocFailed, incomparable := 0, 0, 0
	for _, d := range deltas {
		if d.Incomparable {
			incomparable++
			fmt.Fprintf(stdout, "%-40s %14.0f -> %14.0f ns/op  INCOMPARABLE (baseline ns/op not positive)\n",
				d.Name, d.Base, d.Cur)
			continue
		}
		if d.AllocsIncomparable {
			incomparable++
			fmt.Fprintf(stdout, "%-40s %14.0f -> %14.0f allocs/op  INCOMPARABLE (baseline allocs/op not positive)\n",
				d.Name, d.BaseAllocs, d.CurAllocs)
			continue
		}
		var bad []string
		if d.Regressed {
			bad = append(bad, "REGRESSED")
			failed++
		}
		if d.AllocsRegressed {
			bad = append(bad, "ALLOCS-REGRESSED")
			allocFailed++
		}
		status := "ok"
		if len(bad) > 0 {
			status = strings.Join(bad, "+")
		}
		fmt.Fprintf(stdout, "%-40s %14.0f -> %14.0f ns/op  %+7.1f%%  %s%s\n",
			d.Name, d.Base, d.Cur, d.Growth*100, status, memDelta(d))
	}
	for _, n := range newOnly {
		fmt.Fprintf(stdout, "%-40s (new: no baseline entry)\n", n)
	}
	for _, n := range baseOnly {
		fmt.Fprintf(stdout, "%-40s (in baseline only: removed or renamed?)\n", n)
	}
	if failed > 0 {
		fmt.Fprintf(stderr, "benchdiff: %d benchmark(s) regressed more than %.0f%% vs %s\n",
			failed, *threshold*100, *baseline)
		return 1
	}
	if allocFailed > 0 {
		fmt.Fprintf(stderr, "benchdiff: %d benchmark(s) grew allocs/op more than %.0f%% vs %s\n",
			allocFailed, *allocThreshold*100, *baseline)
		return 1
	}
	if incomparable > 0 {
		// A broken baseline entry must not pass silently: refresh the
		// baseline snapshot rather than trusting a meaningless ratio.
		fmt.Fprintf(stderr, "benchdiff: %d baseline entr(ies) in %s have non-positive ns/op (or allocs/op) and cannot gate anything\n",
			incomparable, *baseline)
		return 1
	}
	fmt.Fprintf(stdout, "benchdiff: %d benchmarks within %.0f%% of baseline\n",
		len(deltas), *threshold*100)
	return 0
}
