package main

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestMain lets this test binary double as the agave CLI: fleet coordinator
// tests re-exec it with AGAVE_CLI_EXEC=1 — both as `fleet -worker`
// subprocess workers and as full subprocess coordinators for the
// SIGKILL/resume test — and the guard routes those invocations into Main
// instead of the test runner.
func TestMain(m *testing.M) {
	if os.Getenv("AGAVE_CLI_EXEC") == "1" {
		os.Exit(Main(os.Args[1:], os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

// fleetPlan is the conformance plan: one benchmark plus a chaos scenario
// (mediaserver-meltdown drives the fault-injection plane) and a pressure
// scenario (memory-storm drives the lowmemorykiller), across two seeds.
var fleetPlan = []string{
	"-bench", "countdown.main",
	"-scenarios", "mediaserver-meltdown,memory-storm",
	"-seeds", "1,2",
	"-shard-size", "2",
}

func fleetArgs(extra ...string) []string {
	args := append([]string{"fleet"}, fleetPlan...)
	args = append(args, quick...)
	return append(args, extra...)
}

// TestFleetFingerprintMatchesSerial is the end-to-end equivalence
// conformance test: the JSON report (fingerprint included) of subprocess
// fleets at 1, 2, and 8 workers must be byte-identical to the serial
// in-process run of the same plan.
func TestFleetFingerprintMatchesSerial(t *testing.T) {
	code, serialOut, errOut := invoke(t, fleetArgs("-json", "-workers", "0")...)
	if code != 0 {
		t.Fatalf("serial fleet: code=%d stderr=%q", code, errOut)
	}
	if !strings.Contains(serialOut, `"fingerprint"`) {
		t.Fatalf("serial fleet report carries no fingerprint:\n%s", serialOut)
	}
	for _, workers := range []int{1, 2, 8} {
		code, out, errOut := invoke(t, fleetArgs("-json", "-workers", fmt.Sprint(workers))...)
		if code != 0 {
			t.Fatalf("fleet -workers %d: code=%d stderr=%q", workers, code, errOut)
		}
		if out != serialOut {
			t.Errorf("fleet -workers %d report differs from serial:\n%s\nwant:\n%s", workers, out, serialOut)
		}
	}
}

// TestFleetTextReport sanity-checks the human-readable rendering.
func TestFleetTextReport(t *testing.T) {
	code, out, errOut := invoke(t, fleetArgs("-workers", "0")...)
	if code != 0 {
		t.Fatalf("code=%d stderr=%q", code, errOut)
	}
	for _, want := range []string{"fleet: 6 runs in 3 shards of 2", "countdown.main", "scenario:memory-storm", "fingerprint: "} {
		if !strings.Contains(out, want) {
			t.Fatalf("fleet text missing %q:\n%s", want, out)
		}
	}
}

// TestFleetWorkerCrashResume kills a worker subprocess mid-fleet, then
// resumes from the checkpoint with healthy workers and requires the final
// report to be byte-identical to an uninterrupted run.
func TestFleetWorkerCrashResume(t *testing.T) {
	_, coldOut, _ := invoke(t, fleetArgs("-json", "-workers", "0")...)
	dir := t.TempDir()
	cp := filepath.Join(dir, "fleet.ckpt")
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	// The first invocation to win the mkdir race SIGKILLs itself; the rest
	// exec the real worker.
	script := fmt.Sprintf(`if mkdir %q 2>/dev/null; then kill -KILL $$; else exec %q fleet -worker; fi`,
		filepath.Join(dir, "crashed"), exe)
	orig := fleetWorkerCommand
	fleetWorkerCommand = func() (*exec.Cmd, error) {
		cmd := exec.Command("/bin/sh", "-c", script)
		cmd.Env = append(os.Environ(), "AGAVE_CLI_EXEC=1")
		return cmd, nil
	}
	code, _, errOut := invoke(t, fleetArgs("-workers", "2", "-checkpoint", cp)...)
	fleetWorkerCommand = orig
	if code == 0 {
		t.Fatalf("fleet with crashing worker succeeded (stderr=%q)", errOut)
	}
	if !strings.Contains(errOut, "fleet: shard") {
		t.Fatalf("crash error names no shard: %q", errOut)
	}
	code, out, errOut := invoke(t, fleetArgs("-json", "-workers", "2", "-checkpoint", cp)...)
	if code != 0 {
		t.Fatalf("resumed fleet: code=%d stderr=%q", code, errOut)
	}
	if out != coldOut {
		t.Errorf("resumed fleet report differs from uninterrupted run:\n%s\nwant:\n%s", out, coldOut)
	}
}

// TestFleetCoordinatorKillResume SIGKILLs the whole coordinator process
// after at least one shard has journaled, resumes in a fresh process, and
// requires the report to match the uninterrupted run.
func TestFleetCoordinatorKillResume(t *testing.T) {
	_, coldOut, _ := invoke(t, fleetArgs("-json", "-workers", "0")...)
	cp := filepath.Join(t.TempDir(), "fleet.ckpt")
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	args := fleetArgs("-json", "-workers", "1", "-checkpoint", cp)
	cmd := exec.Command(exe, args...)
	cmd.Env = append(os.Environ(), "AGAVE_CLI_EXEC=1")
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Kill once the journal holds at least one completed shard (header
	// plus one record). If the run wins the race and finishes first, the
	// resume below degenerates to a no-op replay — still a valid check.
	killed := false
	for deadline := time.Now().Add(30 * time.Second); time.Now().Before(deadline); {
		data, err := os.ReadFile(cp)
		if err == nil && bytes.Count(data, []byte("\n")) >= 2 {
			if cmd.Process.Signal(syscall.SIGKILL) == nil {
				killed = true
			}
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	cmd.Wait()
	code, out, errOut := invoke(t, fleetArgs("-json", "-workers", "1", "-checkpoint", cp)...)
	if code != 0 {
		t.Fatalf("resumed coordinator: code=%d stderr=%q", code, errOut)
	}
	if out != coldOut {
		t.Errorf("post-SIGKILL resume differs from uninterrupted run (killed=%v):\n%s\nwant:\n%s", killed, out, coldOut)
	}
	if killed && !strings.Contains(errOut, "resumed") {
		t.Errorf("resume after SIGKILL did not report restored shards: %q", errOut)
	}
}

// TestFleetStaleCheckpointRejected pins the CLI-level stale-plan-hash
// error: a checkpoint journaled under one plan must refuse a different one.
func TestFleetStaleCheckpointRejected(t *testing.T) {
	cp := filepath.Join(t.TempDir(), "fleet.ckpt")
	code, _, errOut := invoke(t, fleetArgs("-workers", "0", "-checkpoint", cp)...)
	if code != 0 {
		t.Fatalf("first fleet run failed: %q", errOut)
	}
	args := append([]string{"fleet", "-bench", "countdown.main", "-seeds", "3,4", "-shard-size", "2"}, quick...)
	code, _, errOut = invoke(t, append(args, "-workers", "0", "-checkpoint", cp)...)
	if code != 1 || !strings.Contains(errOut, "stale plan hash") ||
		!strings.Contains(errOut, "delete it or rerun that plan") {
		t.Fatalf("stale checkpoint: code=%d stderr=%q", code, errOut)
	}
}

// TestFleetWorkerFailurePaths pins that worker misbehavior surfaces the
// shard id and worker stderr through the CLI, without hanging.
func TestFleetWorkerFailurePaths(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		script string
		env    []string
		want   []string
	}{
		{
			name:   "nonzero exit",
			script: `cat >/dev/null; echo boom >&2; exit 3`,
			want:   []string{"fleet: shard 0", "exit status 3", "worker stderr", "boom"},
		},
		{
			name:   "malformed json",
			script: `cat >/dev/null; echo not-json`,
			want:   []string{"fleet: shard 0", "malformed result line"},
		},
		{
			name:   "trailing garbage",
			script: fmt.Sprintf(`%q fleet -worker; echo garbage-after-trailer`, exe),
			env:    []string{"AGAVE_CLI_EXEC=1"},
			want:   []string{"fleet: shard 0", "trailing garbage"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			orig := fleetWorkerCommand
			defer func() { fleetWorkerCommand = orig }()
			fleetWorkerCommand = func() (*exec.Cmd, error) {
				cmd := exec.Command("/bin/sh", "-c", tc.script)
				cmd.Env = append(os.Environ(), tc.env...)
				return cmd, nil
			}
			code, _, errOut := invoke(t, fleetArgs("-workers", "1")...)
			if code != 1 {
				t.Fatalf("code=%d stderr=%q", code, errOut)
			}
			for _, want := range tc.want {
				if !strings.Contains(errOut, want) {
					t.Errorf("stderr %q does not mention %q", errOut, want)
				}
			}
		})
	}
}

// TestFleetFlagValidation pins the fleet-only usage errors.
func TestFleetFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"bad shard size", fleetArgs("-shard-size", "0"), "-shard-size must be positive"},
		{"negative workers", fleetArgs("-workers", "-1"), "-workers must not be negative"},
		{"workers on suite", append([]string{"suite", "-bench", "countdown.main", "-workers", "2"}, quick...),
			"-workers applies to the fleet subcommand"},
		{"checkpoint on run", append([]string{"run", "countdown.main", "-checkpoint", "x"}, quick...),
			"-checkpoint applies to the fleet subcommand"},
	}
	for _, tc := range cases {
		code, _, errOut := invoke(t, tc.args...)
		if code != 2 || !strings.Contains(errOut, tc.want) {
			t.Errorf("%s: code=%d stderr=%q (want %q)", tc.name, code, errOut, tc.want)
		}
	}
}
