package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// invoke runs one CLI invocation and returns (exit code, stdout, stderr).
func invoke(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := Main(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

// quick shortens simulated time so CLI tests stay fast.
var quick = []string{"-duration", "80", "-warmup", "60"}

func TestNoArgsIsUsageError(t *testing.T) {
	code, _, errOut := invoke(t)
	if code != 2 || !strings.Contains(errOut, "usage:") {
		t.Fatalf("code=%d stderr=%q", code, errOut)
	}
}

func TestUnknownCommand(t *testing.T) {
	code, _, errOut := invoke(t, "frobnicate")
	if code != 2 || !strings.Contains(errOut, "usage:") {
		t.Fatalf("code=%d stderr=%q", code, errOut)
	}
}

func TestRunRequiresBenchmarkName(t *testing.T) {
	code, _, errOut := invoke(t, "run")
	if code != 2 || !strings.Contains(errOut, "benchmark name required") {
		t.Fatalf("code=%d stderr=%q", code, errOut)
	}
}

func TestBadFlagIsUsageError(t *testing.T) {
	code, _, _ := invoke(t, "suite", "-no-such-flag")
	if code != 2 {
		t.Fatalf("bad flag exit code = %d, want 2", code)
	}
}

// TestRejectsNonPositiveDuration is the satellite regression table: every
// simulating subcommand must refuse an empty or negative measured interval
// with a clear message instead of silently measuring nothing.
func TestRejectsNonPositiveDuration(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"run zero", []string{"run", "countdown.main", "-duration", "0"}},
		{"run negative", []string{"run", "countdown.main", "-duration", "-5"}},
		{"suite zero", []string{"suite", "-bench", "countdown.main", "-duration", "0"}},
		{"suite negative", []string{"suite", "-bench", "countdown.main", "-duration", "-100"}},
		{"scenario zero", []string{"scenario", "commute", "-duration", "0"}},
		{"scenario negative", []string{"scenario", "commute", "-duration", "-1"}},
		{"fig1 zero", []string{"fig1", "-bench", "countdown.main", "-duration", "0"}},
		{"table1 negative", []string{"table1", "-bench", "countdown.main", "-duration", "-7"}},
		{"scalars zero", []string{"scalars", "-bench", "countdown.main", "-duration", "0"}},
		{"all negative", []string{"all", "-bench", "countdown.main", "-duration", "-9"}},
	}
	for _, tc := range cases {
		code, _, errOut := invoke(t, tc.args...)
		if code != 2 || !strings.Contains(errOut, "-duration must be a positive number") {
			t.Errorf("%s: code=%d stderr=%q", tc.name, code, errOut)
		}
	}
	// Negative warmup is equally meaningless.
	code, _, errOut := invoke(t, "run", "countdown.main", "-duration", "50", "-warmup", "-1")
	if code != 2 || !strings.Contains(errOut, "-warmup must not be negative") {
		t.Errorf("negative warmup: code=%d stderr=%q", code, errOut)
	}
}

func TestRunUnknownBenchmarkFails(t *testing.T) {
	code, _, errOut := invoke(t, "run", "no.such.bench")
	if code != 1 || !strings.Contains(errOut, "no.such.bench") {
		t.Fatalf("code=%d stderr=%q", code, errOut)
	}
}

func TestList(t *testing.T) {
	code, out, _ := invoke(t, "list")
	if code != 0 {
		t.Fatalf("list exit code = %d", code)
	}
	for _, want := range []string{"frozenbubble.main", "401.bzip2", "SPEC CPU2006"} {
		if !strings.Contains(out, want) {
			t.Fatalf("list output missing %q", want)
		}
	}
}

func TestRunOneBenchmark(t *testing.T) {
	code, out, errOut := invoke(t, append([]string{"run", "countdown.main"}, quick...)...)
	if code != 0 {
		t.Fatalf("code=%d stderr=%q", code, errOut)
	}
	if !strings.Contains(out, "countdown.main:") || !strings.Contains(out, "Top instruction regions") {
		t.Fatalf("run output malformed:\n%s", out)
	}
}

func TestSuiteUnknownBenchmark(t *testing.T) {
	code, _, errOut := invoke(t, "suite", "-bench", "countdown.main,bogus.bench")
	if code != 1 || !strings.Contains(errOut, `unknown benchmark "bogus.bench"`) {
		t.Fatalf("code=%d stderr=%q", code, errOut)
	}
}

func TestSuiteRejectsStrayPositional(t *testing.T) {
	// `agave suite countdown.main` must not silently sweep all 25
	// benchmarks; the benchmark set is selected with -bench.
	code, _, errOut := invoke(t, "suite", "countdown.main")
	if code != 2 || !strings.Contains(errOut, "unexpected argument") {
		t.Fatalf("code=%d stderr=%q", code, errOut)
	}
}

func TestSuiteRejectsAblationFlagConflict(t *testing.T) {
	for _, flag := range []string{"-nojit", "-dirtyrect"} {
		code, _, errOut := invoke(t, "suite", "-bench", "countdown.main", "-ablations", flag)
		if code != 2 || !strings.Contains(errOut, "cannot be combined") {
			t.Fatalf("%s: code=%d stderr=%q", flag, code, errOut)
		}
	}
}

func TestSuiteMalformedSeeds(t *testing.T) {
	for _, seeds := range []string{"1,x,3", "1,,3", "-4", "1;2"} {
		code, _, errOut := invoke(t, "suite", "-bench", "countdown.main", "-seeds", seeds)
		if code != 2 || !strings.Contains(errOut, "bad -seeds entry") {
			t.Fatalf("seeds=%q: code=%d stderr=%q", seeds, code, errOut)
		}
	}
}

func TestSuiteMatrixRuns(t *testing.T) {
	args := append([]string{"suite", "-bench", "countdown.main,999.specrand",
		"-seeds", "1,2", "-parallel", "4"}, quick...)
	code, out, errOut := invoke(t, args...)
	if code != 0 {
		t.Fatalf("code=%d stderr=%q", code, errOut)
	}
	if !strings.Contains(out, "suite: 4 runs (2 benchmarks × 2 seeds × 1 ablations)") {
		t.Fatalf("suite header missing:\n%s", out)
	}
	// One matrix row per run, then the cross-seed summary block.
	if got := strings.Count(out, "countdown.main"); got < 3 { // 2 rows + 1 summary
		t.Fatalf("countdown.main appears %d times:\n%s", got, out)
	}
	if !strings.Contains(out, "total refs mean [min, max]") {
		t.Fatalf("multi-seed sweep missing summaries:\n%s", out)
	}
}

func TestSuiteJSON(t *testing.T) {
	args := append([]string{"suite", "-bench", "countdown.main,999.specrand",
		"-seeds", "3,4", "-ablations", "-parallel", "8", "-json"}, quick...)
	code, out, errOut := invoke(t, args...)
	if code != 0 {
		t.Fatalf("code=%d stderr=%q", code, errOut)
	}
	var doc struct {
		Plan struct {
			Benchmarks []string `json:"benchmarks"`
			Seeds      []uint64 `json:"seeds"`
			Ablations  []string `json:"ablations"`
			Parallel   int      `json:"parallel"`
		} `json:"plan"`
		Runs []struct {
			Benchmark   string  `json:"benchmark"`
			Seed        uint64  `json:"seed"`
			Ablation    string  `json:"ablation"`
			TotalRefs   uint64  `json:"total_refs"`
			Fingerprint uint64  `json:"fingerprint"`
			WallMS      float64 `json:"wall_ms"`
		} `json:"runs"`
		Summaries []struct {
			Benchmark string                        `json:"benchmark"`
			Ablation  string                        `json:"ablation"`
			Metrics   map[string]map[string]float64 `json:"metrics"`
		} `json:"summaries"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("suite -json is not valid JSON: %v\n%s", err, out)
	}
	if len(doc.Runs) != 2*2*3 {
		t.Fatalf("JSON has %d runs, want 12 (2 benchmarks × 2 seeds × 3 ablations)", len(doc.Runs))
	}
	if doc.Plan.Parallel != 8 || len(doc.Plan.Ablations) != 3 {
		t.Fatalf("JSON plan malformed: %+v", doc.Plan)
	}
	if len(doc.Summaries) != 2*3 {
		t.Fatalf("JSON has %d summaries, want 6 (benchmark × ablation cells)", len(doc.Summaries))
	}
	for _, r := range doc.Runs {
		if r.TotalRefs == 0 || r.Fingerprint == 0 {
			t.Fatalf("run %s/seed=%d/%s carries empty stats", r.Benchmark, r.Seed, r.Ablation)
		}
	}
	for _, s := range doc.Summaries {
		if s.Metrics["total_refs"]["mean"] <= 0 {
			t.Fatalf("summary %s/%s missing total_refs agg", s.Benchmark, s.Ablation)
		}
	}
}

// TestSuiteSerialAndParallelSameStdout is the CLI-level determinism check:
// identical plans at -parallel 1 and -parallel 8 must render byte-identical
// matrix output (wall-clock columns are excluded from the comparison since
// real time is not deterministic).
func TestSuiteSerialAndParallelSameStdout(t *testing.T) {
	run := func(parallel string) string {
		args := append([]string{"suite", "-bench",
			"countdown.main,jetboy.main,999.specrand", "-seeds", "5,6",
			"-parallel", parallel}, quick...)
		code, out, errOut := invoke(t, args...)
		if code != 0 {
			t.Fatalf("parallel=%s: code=%d stderr=%q", parallel, code, errOut)
		}
		return out
	}
	stripWall := func(out string) []string {
		var rows []string
		for _, line := range strings.Split(out, "\n") {
			f := strings.Fields(line)
			if len(f) == 8 && f[0] != "benchmark" { // matrix row: drop wall ms + Mticks/s
				rows = append(rows, strings.Join(f[:6], " "))
			}
		}
		return rows
	}
	serial, par := stripWall(run("1")), stripWall(run("8"))
	if len(serial) != 6 {
		t.Fatalf("expected 6 matrix rows, got %d", len(serial))
	}
	for i := range serial {
		if serial[i] != par[i] {
			t.Fatalf("row %d diverged:\nserial:   %s\nparallel: %s", i, serial[i], par[i])
		}
	}
}

func TestScenarioList(t *testing.T) {
	code, out, errOut := invoke(t, "scenario", "-list")
	if code != 0 {
		t.Fatalf("code=%d stderr=%q", code, errOut)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 6 { // header + >= 5 scenarios
		t.Fatalf("scenario -list shows %d lines, want >= 6:\n%s", len(lines), out)
	}
	for _, want := range []string{"commute", "social-burst", "binder-storm", "mediaserver-meltdown", "description"} {
		if !strings.Contains(out, want) {
			t.Fatalf("scenario -list missing %q:\n%s", want, out)
		}
	}
}

func TestScenarioRequiresName(t *testing.T) {
	code, _, errOut := invoke(t, "scenario")
	if code != 2 || !strings.Contains(errOut, "scenario name required") {
		t.Fatalf("code=%d stderr=%q", code, errOut)
	}
}

func TestScenarioUnknownName(t *testing.T) {
	code, _, errOut := invoke(t, "scenario", "no-such-session")
	if code != 1 || !strings.Contains(errOut, "no-such-session") {
		t.Fatalf("code=%d stderr=%q", code, errOut)
	}
}

// TestScenarioParallelByteIdentical is the acceptance bar: the same
// scenario plan at -parallel 1 and -parallel 8 must emit byte-identical
// stdout — scenario reports carry no wall-clock columns at all.
func TestScenarioParallelByteIdentical(t *testing.T) {
	run := func(parallel string) string {
		args := append([]string{"scenario", "commute", "app-churn",
			"-seeds", "1,2", "-parallel", parallel}, quick...)
		code, out, errOut := invoke(t, args...)
		if code != 0 {
			t.Fatalf("parallel=%s: code=%d stderr=%q", parallel, code, errOut)
		}
		return out
	}
	serial, par := run("1"), run("8")
	if serial != par {
		t.Fatalf("scenario stdout diverged between -parallel 1 and 8:\n--- serial\n%s\n--- parallel\n%s", serial, par)
	}
	if !strings.Contains(serial, "commute") || !strings.Contains(serial, "app-churn") {
		t.Fatalf("scenario matrix missing rows:\n%s", serial)
	}
}

// TestScenarioNamesInterleaveWithFlags pins the argument grammar: scenario
// names may appear before, between, and after flags, because flag.Parse
// stops at the first positional and the CLI resumes parsing after it.
func TestScenarioNamesInterleaveWithFlags(t *testing.T) {
	args := append([]string{"scenario", "-parallel", "2", "commute", "-seeds", "1"}, quick...)
	code, out, errOut := invoke(t, args...)
	if code != 0 {
		t.Fatalf("code=%d stderr=%q", code, errOut)
	}
	if !strings.Contains(out, "commute") {
		t.Fatalf("interleaved invocation missed the scenario:\n%s", out)
	}
	// Flags after the name still take effect (JSON mode here).
	code, out, errOut = invoke(t, append([]string{"scenario", "commute", "-json"}, quick...)...)
	if code != 0 || !strings.HasPrefix(strings.TrimSpace(out), "{") {
		t.Fatalf("trailing -json ignored: code=%d stderr=%q out=%q", code, errOut, out[:min(80, len(out))])
	}
}

func TestScenarioJSON(t *testing.T) {
	args := append([]string{"scenario", "social-burst", "-json", "-parallel", "4"}, quick...)
	code, out, errOut := invoke(t, args...)
	if code != 0 {
		t.Fatalf("code=%d stderr=%q", code, errOut)
	}
	var doc struct {
		Plan struct {
			Scenarios []string `json:"scenarios"`
			Seeds     []uint64 `json:"seeds"`
			Ablations []string `json:"ablations"`
		} `json:"plan"`
		Runs []struct {
			Scenario    string `json:"scenario"`
			MaxLiveApps int    `json:"max_live_apps"`
			TotalRefs   uint64 `json:"total_refs"`
			Fingerprint uint64 `json:"fingerprint"`
			Apps        []struct {
				Name  string  `json:"name"`
				Refs  uint64  `json:"refs"`
				Share float64 `json:"share"`
			} `json:"apps"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("scenario -json is not valid JSON: %v\n%s", err, out)
	}
	if len(doc.Runs) != 1 || doc.Runs[0].Scenario != "social-burst" {
		t.Fatalf("JSON runs malformed: %+v", doc.Runs)
	}
	r := doc.Runs[0]
	if r.MaxLiveApps < 3 || len(r.Apps) != 4 {
		t.Fatalf("social-burst JSON: max_live_apps=%d apps=%d", r.MaxLiveApps, len(r.Apps))
	}
	for _, a := range r.Apps {
		if a.Refs == 0 {
			t.Fatalf("app %q attributed no references", a.Name)
		}
	}
	if strings.Contains(out, "wall_ms") {
		t.Fatal("scenario JSON leaks wall-clock fields")
	}
}

// TestScenarioPressureColumnsAndMinFree runs the emergent-kill scenario
// through the CLI: the matrix must carry the lmk/trims columns and name the
// victims, and the -minfree knob must plumb through (an absurdly raised
// waterline turns an otherwise-safe session into a kill zone).
func TestScenarioPressureColumnsAndMinFree(t *testing.T) {
	args := append([]string{"scenario", "memory-storm"}, "-duration", "150", "-warmup", "100")
	code, out, errOut := invoke(t, args...)
	if code != 0 {
		t.Fatalf("code=%d stderr=%q", code, errOut)
	}
	if !strings.Contains(out, "lmk") || !strings.Contains(out, "trims") {
		t.Fatalf("scenario matrix missing pressure columns:\n%s", out)
	}
	if !strings.Contains(out, "lmk victims:") {
		t.Fatalf("memory-storm reported no victims:\n%s", out)
	}
	// commute never comes under default pressure...
	args = append([]string{"scenario", "commute"}, "-duration", "150", "-warmup", "100")
	code, out, errOut = invoke(t, args...)
	if code != 0 {
		t.Fatalf("commute: code=%d stderr=%q", code, errOut)
	}
	if strings.Contains(out, "lmk victims:") {
		t.Fatalf("commute killed under the default waterline:\n%s", out)
	}
	// ...but a raised -minfree waterline makes the same session lethal.
	args = append([]string{"scenario", "commute", "-minfree", "200000"}, "-duration", "150", "-warmup", "100")
	code, out, errOut = invoke(t, args...)
	if code != 0 {
		t.Fatalf("minfree=200000: code=%d stderr=%q", code, errOut)
	}
	if !strings.Contains(out, "lmk victims:") {
		t.Fatalf("-minfree 200000 produced no victims:\n%s", out)
	}
}

// TestScenarioJSONCarriesPressureFields: the JSON document exposes the
// kill/trim counters and the victim list.
func TestScenarioJSONCarriesPressureFields(t *testing.T) {
	args := append([]string{"scenario", "memory-storm", "-json"}, "-duration", "150", "-warmup", "100")
	code, out, errOut := invoke(t, args...)
	if code != 0 {
		t.Fatalf("code=%d stderr=%q", code, errOut)
	}
	var doc struct {
		Runs []struct {
			Scenario   string   `json:"scenario"`
			LMKKills   int      `json:"lmk_kills"`
			LMKVictims []string `json:"lmk_victims"`
			Trims      int      `json:"trims"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, out)
	}
	if len(doc.Runs) != 1 {
		t.Fatalf("got %d runs", len(doc.Runs))
	}
	r := doc.Runs[0]
	if r.LMKKills < 1 || len(r.LMKVictims) != r.LMKKills || r.Trims < 1 {
		t.Fatalf("pressure fields malformed: %+v", r)
	}
}

func TestSuiteWithScenarioAxis(t *testing.T) {
	args := append([]string{"suite", "-bench", "countdown.main",
		"-scenarios", "app-churn", "-parallel", "2"}, quick...)
	code, out, errOut := invoke(t, args...)
	if code != 0 {
		t.Fatalf("code=%d stderr=%q", code, errOut)
	}
	if !strings.Contains(out, "suite: 2 runs (1 benchmarks + 1 scenarios × 1 seeds × 1 ablations)") {
		t.Fatalf("suite header missing scenario axis:\n%s", out)
	}
	if !strings.Contains(out, "scenario:app-churn") {
		t.Fatalf("suite matrix missing prefixed scenario row:\n%s", out)
	}
}

func TestSuiteUnknownScenario(t *testing.T) {
	code, _, errOut := invoke(t, "suite", "-bench", "countdown.main", "-scenarios", "bogus")
	if code != 1 || !strings.Contains(errOut, `unknown scenario "bogus"`) {
		t.Fatalf("code=%d stderr=%q", code, errOut)
	}
}

// writeScenarioFile drops a scenario document into a temp dir and returns
// its path.
func writeScenarioFile(t *testing.T, name, doc string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// validScenarioDoc is a well-formed two-app scenario document the negative
// cases below mutate.
const validScenarioDoc = `{
  "name": "pair",
  "apps": [
    {"name": "a", "workload": "countdown.main"},
    {"name": "b", "workload": "jetboy.main"}
  ],
  "timeline": [
    {"at": 0, "kind": "launch", "app": "a"},
    {"at": 400, "kind": "launch", "app": "b"},
    {"at": 700, "kind": "switchto", "app": "a"}
  ]
}
`

// TestScenarioFileRunsAuthoredDocument: the tentpole happy path — a
// hand-authored JSON session runs through `agave scenario -file` exactly
// like a bundled one.
func TestScenarioFileRunsAuthoredDocument(t *testing.T) {
	path := writeScenarioFile(t, "pair.json", validScenarioDoc)
	code, out, errOut := invoke(t, append([]string{"scenario", "-file", path}, quick...)...)
	if code != 0 {
		t.Fatalf("code=%d stderr=%q", code, errOut)
	}
	if !strings.Contains(out, "pair") || !strings.Contains(out, "countdown.main") {
		t.Fatalf("file-loaded scenario matrix malformed:\n%s", out)
	}
	// JSON mode surfaces the file provenance.
	code, out, errOut = invoke(t, append([]string{"scenario", "-file", path, "-json"}, quick...)...)
	if code != 0 {
		t.Fatalf("json: code=%d stderr=%q", code, errOut)
	}
	if !strings.Contains(out, `"source": "file:pair.json"`) {
		t.Fatalf("scenario -json missing file provenance:\n%s", out)
	}
}

// TestScenarioFileRejectsIllFormedDocuments is the negative-path satellite:
// each parser failure mode must exit non-zero through `agave scenario -file`
// with its specific error text on stderr.
func TestScenarioFileRejectsIllFormedDocuments(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(string) string
		wantErr string
	}{
		{
			"unknown event kind",
			func(s string) string { return strings.Replace(s, `"kind": "switchto"`, `"kind": "teleport"`, 1) },
			`timeline[2]: unknown event kind "teleport"`,
		},
		{
			"event on undeclared app",
			func(s string) string {
				return strings.Replace(s, `"kind": "switchto", "app": "a"`, `"kind": "switchto", "app": "ghost"`, 1)
			},
			`targets undeclared app`,
		},
		{
			"at out of range",
			func(s string) string { return strings.Replace(s, `"at": 700`, `"at": 7000`, 1) },
			`outside [0,1000]`,
		},
		{
			"duplicate app names",
			func(s string) string {
				return strings.Replace(s, `{"name": "b", "workload": "jetboy.main"}`, `{"name": "a", "workload": "jetboy.main"}`, 1)
			},
			`duplicate app "a"`,
		},
		{
			"empty timeline",
			func(s string) string {
				i := strings.Index(s, `"timeline"`)
				return s[:i] + "\"timeline\": []\n}\n"
			},
			`empty timeline`,
		},
	}
	for _, tc := range cases {
		path := writeScenarioFile(t, "bad.json", tc.mutate(validScenarioDoc))
		code, _, errOut := invoke(t, "scenario", "-file", path)
		if code == 0 {
			t.Errorf("%s: agave scenario -file exited 0", tc.name)
			continue
		}
		if !strings.Contains(errOut, tc.wantErr) {
			t.Errorf("%s: stderr %q does not contain %q", tc.name, errOut, tc.wantErr)
		}
		if !strings.Contains(errOut, "bad.json") {
			t.Errorf("%s: stderr %q does not name the file", tc.name, errOut)
		}
	}
	// A missing file is an ordinary run failure, not a usage error.
	code, _, errOut := invoke(t, "scenario", "-file", filepath.Join(t.TempDir(), "absent.json"))
	if code != 1 || !strings.Contains(errOut, "absent.json") {
		t.Fatalf("missing file: code=%d stderr=%q", code, errOut)
	}
}

// TestScenarioFileNameCollision: a file-loaded scenario may not alias a
// named bundled scenario on the same axis — the text matrix carries no
// provenance column, so two cells with one name would be indistinguishable.
func TestScenarioFileNameCollision(t *testing.T) {
	commute := strings.Replace(validScenarioDoc, `"name": "pair"`, `"name": "commute"`, 1)
	path := writeScenarioFile(t, "commute.json", commute)
	code, _, errOut := invoke(t, "scenario", "commute", "-file", path)
	if code != 1 || !strings.Contains(errOut, `duplicate scenario name "commute"`) {
		t.Fatalf("code=%d stderr=%q", code, errOut)
	}
}

// TestScenarioRepeatedNameRejected: the same scenario twice on one axis is
// rejected on both subcommands — repeated cells would render identical,
// indistinguishable rows.
func TestScenarioRepeatedNameRejected(t *testing.T) {
	code, _, errOut := invoke(t, "scenario", "commute", "commute")
	if code != 1 || !strings.Contains(errOut, `duplicate scenario name "commute"`) {
		t.Fatalf("scenario: code=%d stderr=%q", code, errOut)
	}
	code, _, errOut = invoke(t, "suite", "-bench", "countdown.main", "-scenarios", "commute,commute")
	if code != 1 || !strings.Contains(errOut, `duplicate scenario name "commute"`) {
		t.Fatalf("suite: code=%d stderr=%q", code, errOut)
	}
}

// TestCrossSubcommandScenarioFlagsRejected: the subcommands share one
// FlagSet, so a flag belonging to the other subcommand parses — it must be
// rejected, never silently ignored (a requested scenario source silently
// absent from the matrix is worse than an error).
func TestCrossSubcommandScenarioFlagsRejected(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{"suite -file", []string{"suite", "-bench", "countdown.main", "-file", "x.json"},
			"-file applies to the scenario subcommand"},
		{"suite -export", []string{"suite", "-export", "commute"},
			"-export applies to the scenario subcommand"},
		{"scenario -scenario-dir", []string{"scenario", "commute", "-scenario-dir", "d"},
			"-scenario-dir applies to the suite and fleet subcommands"},
		{"scenario -gen-scenarios", []string{"scenario", "commute", "-gen-scenarios", "3"},
			"-gen-scenarios applies to the suite and fleet subcommands"},
		{"scenario -gen-apps", []string{"scenario", "commute", "-gen-apps", "12"},
			"-gen-apps applies to the suite and fleet subcommands"},
		{"scenario -gen-seed at default", []string{"scenario", "commute", "-gen-seed", "1"},
			"-gen-seed applies to the suite and fleet subcommands"},
		{"-export with names", []string{"scenario", "commute", "-export", "social-burst"},
			"-export cannot be combined"},
		{"-export with -file", []string{"scenario", "-export", "commute", "-file", "x.json"},
			"-export cannot be combined"},
		{"-list with -file", []string{"scenario", "-list", "-file", "x.json"},
			"-list cannot be combined"},
		{"-list with -export", []string{"scenario", "-list", "-export", "commute"},
			"-list cannot be combined"},
		{"-list with names", []string{"scenario", "commute", "-list"},
			"-list cannot be combined"},
		{"run -file", []string{"run", "countdown.main", "-file", "x.json"},
			"-file applies to the scenario subcommand"},
		{"fig1 -scenario-dir", []string{"fig1", "-scenario-dir", "d"},
			"-scenario-dir applies to the suite and fleet subcommands"},
		{"all -export", []string{"all", "-export", "commute"},
			"-export applies to the scenario subcommand"},
		{"gen knob without count", []string{"suite", "-bench", "countdown.main", "-gen-apps", "12"},
			"-gen-apps requires -gen-scenarios"},
		{"gen seed without count", []string{"suite", "-bench", "countdown.main", "-gen-seed", "4"},
			"-gen-seed requires -gen-scenarios"},
	}
	for _, tc := range cases {
		code, _, errOut := invoke(t, tc.args...)
		if code != 2 || !strings.Contains(errOut, tc.wantErr) {
			t.Errorf("%s: code=%d stderr=%q", tc.name, code, errOut)
		}
	}
}

// TestSuiteNegativeGenKnobsRejected: zero selects a default, but a negative
// generator knob is a usage error, matching -gen-scenarios.
func TestSuiteNegativeGenKnobsRejected(t *testing.T) {
	for _, knob := range []string{"-gen-apps", "-gen-events", "-gen-pressure", "-gen-inputs", "-gen-faults"} {
		code, _, errOut := invoke(t, "suite", "-bench", "countdown.main",
			"-gen-scenarios", "1", knob, "-5")
		if code != 2 || !strings.Contains(errOut, "must not be negative") {
			t.Fatalf("%s: code=%d stderr=%q", knob, code, errOut)
		}
	}
}

// TestScenarioExportUnknownName: exporting something not in the library
// fails with the library's error.
func TestScenarioExportUnknownName(t *testing.T) {
	code, _, errOut := invoke(t, "scenario", "-export", "no-such-session")
	if code != 1 || !strings.Contains(errOut, `unknown scenario "no-such-session"`) {
		t.Fatalf("code=%d stderr=%q", code, errOut)
	}
}

// TestSuiteScenarioDirAxis: every *.json document of -scenario-dir becomes
// a plan cell, and a duplicate name across the axis is rejected.
func TestSuiteScenarioDirAxis(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "pair.json"), []byte(validScenarioDoc), 0o644); err != nil {
		t.Fatal(err)
	}
	solo := strings.Replace(validScenarioDoc, `"name": "pair"`, `"name": "solo"`, 1)
	if err := os.WriteFile(filepath.Join(dir, "solo.json"), []byte(solo), 0o644); err != nil {
		t.Fatal(err)
	}
	args := append([]string{"suite", "-bench", "countdown.main", "-scenario-dir", dir, "-parallel", "2"}, quick...)
	code, out, errOut := invoke(t, args...)
	if code != 0 {
		t.Fatalf("code=%d stderr=%q", code, errOut)
	}
	if !strings.Contains(out, "suite: 3 runs (1 benchmarks + 2 scenarios × 1 seeds × 1 ablations)") {
		t.Fatalf("suite header missing scenario-dir axis:\n%s", out)
	}
	for _, want := range []string{"scenario:pair", "scenario:solo"} {
		if !strings.Contains(out, want) {
			t.Fatalf("suite matrix missing %s:\n%s", want, out)
		}
	}
	// An empty directory is an error, not a silent no-op.
	code, _, errOut = invoke(t, "suite", "-bench", "countdown.main", "-scenario-dir", t.TempDir())
	if code != 1 || !strings.Contains(errOut, "no *.json scenario files") {
		t.Fatalf("empty dir: code=%d stderr=%q", code, errOut)
	}
}

// TestSuiteGeneratedScenarioAxis: -gen-scenarios N expands into N generated
// plan cells at consecutive generation seeds, with the knobs in the names.
func TestSuiteGeneratedScenarioAxis(t *testing.T) {
	args := append([]string{"suite", "-bench", "countdown.main",
		"-gen-scenarios", "2", "-gen-seed", "11", "-gen-apps", "3", "-gen-events", "9",
		"-parallel", "2"}, quick...)
	code, out, errOut := invoke(t, args...)
	if code != 0 {
		t.Fatalf("code=%d stderr=%q", code, errOut)
	}
	if !strings.Contains(out, "suite: 3 runs (1 benchmarks + 2 scenarios × 1 seeds × 1 ablations)") {
		t.Fatalf("suite header missing generated axis:\n%s", out)
	}
	for _, want := range []string{"scenario:gen-s11-a3-e9-p0-i0-f0", "scenario:gen-s12-a3-e9-p0-i0-f0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("suite matrix missing %s:\n%s", want, out)
		}
	}
	code, _, errOut = invoke(t, "suite", "-bench", "countdown.main", "-gen-scenarios", "-1")
	if code != 2 || !strings.Contains(errOut, "-gen-scenarios must not be negative") {
		t.Fatalf("negative gen count: code=%d stderr=%q", code, errOut)
	}
}

// TestSuiteScenarioAxisNameCollision: a generated or file-loaded scenario
// may not shadow a bundled scenario selected on the same axis.
func TestSuiteScenarioAxisNameCollision(t *testing.T) {
	dir := t.TempDir()
	commute := strings.Replace(validScenarioDoc, `"name": "pair"`, `"name": "commute"`, 1)
	if err := os.WriteFile(filepath.Join(dir, "commute.json"), []byte(commute), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errOut := invoke(t, "suite", "-bench", "countdown.main",
		"-scenarios", "commute", "-scenario-dir", dir)
	if code != 1 || !strings.Contains(errOut, `duplicate scenario name "commute"`) {
		t.Fatalf("code=%d stderr=%q", code, errOut)
	}
}
