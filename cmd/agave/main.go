// Command agave runs the Agave reproduction: it executes the 19 Agave
// workloads and the 6 SPEC CPU2006 baselines on the simulated Android stack
// and regenerates the paper's figures and tables.
//
// Usage:
//
//	agave list                         # benchmark inventory
//	agave run <benchmark> [flags]      # one benchmark, summary breakdowns
//	agave suite [flags]                # parallel run matrix (see below)
//	agave scenario -list               # bundled multi-app scenario library
//	agave scenario <name...> [flags]   # scripted multi-app sessions
//	agave scenario -file <path>        # run a JSON scenario document
//	agave scenario -export <name>      # dump a bundled scenario as canonical JSON
//	agave fleet [flags]                # process-sharded suite matrix (see below)
//	agave fig1|fig2|fig3|fig4 [flags]  # regenerate a figure (table/csv/bars)
//	agave table1 [flags]               # regenerate Table I
//	agave scalars [flags]              # Section-III census metrics
//	agave all [flags]                  # everything above in one pass
//
// Flags:
//
//	-duration 1000   measured milliseconds of simulated time
//	-warmup 300      warmup milliseconds before measurement (Android runs)
//	-seed 1          simulation seed
//	-format table    output format for figures: table, csv, bars
//	-bench a,b,c     restrict the benchmark set (default: full suite)
//	-nojit           disable the trace JIT in the app under test
//	-dirtyrect       SurfaceFlinger composes only posted surfaces
//
// The suite subcommand executes the cross product of benchmarks × seeds ×
// ablations on a bounded worker pool; results are emitted in plan order and
// are bit-identical to a serial run of the same plan:
//
//	-parallel 0        worker pool size (0 = all cores, 1 = serial)
//	-seeds 1,2,3       seed axis of the run matrix (default: -seed)
//	-ablations         add the nojit and dirtyrect ablations to the matrix
//	-scenarios a,b     add bundled scenarios to the matrix as a plan axis
//	-scenario-dir d    add every *.json scenario document in d to the matrix
//	-gen-scenarios N   add N generated scenarios (seeds -gen-seed..+N-1);
//	                   -gen-apps/-gen-events/-gen-pressure/-gen-inputs/
//	                   -gen-faults set the knobs
//	-json              emit plan, per-run rows, and summaries as JSON
//
// The fleet subcommand executes the same matrix sharded across worker
// subprocesses with constant-memory streaming aggregation — the
// million-session execution path (see docs/FLEET.md). The report of any
// worker count, including a checkpoint-resumed run, is byte-identical to
// the serial in-process run of the same plan, and its fingerprint commits
// to every per-run result line:
//
//	-workers 0         worker subprocesses (0 = serial in-process)
//	-shard-size 8      plan specs per shard (shard geometry, never concurrency)
//	-checkpoint path   journal completed shards; an existing journal resumes
//	-worker            internal: run one shard from a stdin envelope
//
// The scenario subcommand runs scripted multi-app sessions: apps launch,
// switch, background, and die on a deterministic timeline while every
// reference is attributed per process. Scenario machines run the
// memory-pressure model: a global physical-page budget, onTrimMemory
// broadcasts when free pages run low, and a lowmemorykiller that evicts
// processes by oom_adj score — so Pressure events in a timeline produce
// emergent kills the report's lmk columns account for. Timelines can also
// inject input gestures (tap, key, swipe) that travel through
// system_server's InputDispatcher to the focused app's looper; dispatched
// and dropped counts plus per-app dispatch-latency statistics surface in
// the report's input columns. Fault events (faultBinder, crashService,
// killMediaserver, corruptParcel — see docs/SCENARIOS.md) drive the
// fault-injection plane, and the report's finj/fdet/frec/anrs columns carry
// the dependability outcome, ANRs courtesy of the AnrWatchdog:
//
//	-minfree N       cached-app kill waterline in pages (0 = 8192 = 32 MB)
//	-file path       run a scenario decoded from a JSON scenario document
//	-export name     print a bundled scenario as canonical JSON and exit
//
// Scenario reports carry no wall-clock columns, so the same plan and seed
// emit byte-identical bytes at any -parallel value — and a file-loaded copy
// of a bundled scenario (agave scenario -export commute | agave scenario
// -file /dev/stdin) reproduces the bundled report byte for byte.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"agave/internal/core"
	"agave/internal/report"
	"agave/internal/scenario"
	"agave/internal/sim"
	"agave/internal/stats"
	"agave/internal/suite"
)

func main() {
	os.Exit(Main(os.Args[1:], os.Stdout, os.Stderr))
}

// Main is the testable entry point: it runs one CLI invocation against the
// given streams and returns the process exit code (0 ok, 1 run failure,
// 2 usage error).
func Main(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		usage(stderr)
		return 2
	}
	cmd := args[0]
	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	fs.SetOutput(stderr)
	durationMS := fs.Int64("duration", 1000, "measured simulated milliseconds")
	warmupMS := fs.Int64("warmup", 300, "warmup simulated milliseconds")
	seed := fs.Uint64("seed", 1, "simulation seed")
	minFree := fs.Uint64("minfree", 0, "lowmemorykiller cached-kill waterline in pages (scenario runs; 0 = default)")
	format := fs.String("format", "table", "figure output: table, csv, bars")
	benchList := fs.String("bench", "", "comma-separated benchmark subset")
	noJIT := fs.Bool("nojit", false, "disable the trace JIT")
	dirtyRect := fs.Bool("dirtyrect", false, "dirty-rect composition")
	parallel := fs.Int("parallel", 0, "suite worker pool size (0 = all cores)")
	seedList := fs.String("seeds", "", "comma-separated seed axis of the suite matrix")
	ablations := fs.Bool("ablations", false, "add nojit and dirtyrect ablations to the matrix")
	scenarioList := fs.String("scenarios", "", "comma-separated scenarios to add to the suite matrix")
	asJSON := fs.Bool("json", false, "emit the suite sweep as JSON")
	listScenarios := fs.Bool("list", false, "list the bundled scenario library")
	scenarioFile := fs.String("file", "", "run a scenario loaded from a JSON scenario document")
	exportName := fs.String("export", "", "print a bundled scenario as its canonical JSON document and exit")
	scenarioDir := fs.String("scenario-dir", "", "add every *.json scenario in a directory to the suite matrix")
	genScenarios := fs.Int("gen-scenarios", 0, "add N generated scenarios to the suite matrix (seeds gen-seed..gen-seed+N-1)")
	genSeed := fs.Uint64("gen-seed", 1, "generation seed of the first generated scenario")
	genApps := fs.Int("gen-apps", 0, "apps per generated scenario (0 = 10, the concurrently-live peak)")
	genEvents := fs.Int("gen-events", 0, "timeline events per generated scenario (0 = 4 per app)")
	genPressure := fs.Int("gen-pressure", 0, "memory-pressure knob of generated scenarios (0 = none)")
	genInputs := fs.Int("gen-inputs", 0, "input gestures (tap/key/swipe) per generated scenario (0 = none)")
	genFaults := fs.Int("gen-faults", 0, "fault-injection events per generated scenario (0 = none)")
	workers := fs.Int("workers", 0, "fleet worker subprocesses (0 = serial in-process)")
	shardSize := fs.Int("shard-size", 8, "fleet plan specs per shard")
	checkpoint := fs.String("checkpoint", "", "fleet checkpoint journal path (existing journals resume)")
	workerMode := fs.Bool("worker", false, "internal: run one fleet shard from a stdin envelope")

	switch cmd {
	case "list":
		fmt.Fprintln(stdout, "Agave workloads:")
		for _, n := range core.AgaveNames() {
			fmt.Fprintf(stdout, "  %s\n", n)
		}
		fmt.Fprintln(stdout, "SPEC CPU2006 baselines:")
		for _, n := range core.SPECNames() {
			fmt.Fprintf(stdout, "  %s\n", n)
		}
		return 0
	case "run", "suite", "scenario", "fleet", "fig1", "fig2", "fig3", "fig4", "table1", "scalars", "all":
		// parsed below
	default:
		usage(stderr)
		return 2
	}

	var names []string
	args = args[1:]
	if cmd == "run" {
		if len(args) == 0 {
			fmt.Fprintln(stderr, "agave run: benchmark name required")
			return 2
		}
		names = []string{args[0]}
		args = args[1:]
	}
	if cmd == "scenario" {
		// Scenario names are positional: `agave scenario commute drive`.
		for len(args) > 0 && !strings.HasPrefix(args[0], "-") {
			names = append(names, args[0])
			args = args[1:]
		}
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	// The scenario subcommand also accepts names interleaved with flags
	// (`agave scenario -parallel 8 commute -json`): flag.Parse stops at
	// the first positional, so keep alternating between collecting
	// leading names and re-parsing the remainder. Everywhere else stray
	// positionals are a usage error, not something to silently run
	// without: `agave suite countdown.main` must not sweep all 25
	// benchmarks because the user skipped -bench.
	if cmd == "scenario" {
		for rest := fs.Args(); len(rest) > 0; rest = fs.Args() {
			// A bare "-" is a positional to the flag package too;
			// re-parsing it would never make progress.
			if strings.HasPrefix(rest[0], "-") && rest[0] != "-" {
				if err := fs.Parse(rest); err != nil {
					return 2
				}
				continue
			}
			names = append(names, rest[0])
			if err := fs.Parse(rest[1:]); err != nil {
				return 2
			}
		}
	} else if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "agave %s: unexpected argument %q (benchmarks are selected with -bench)\n",
			cmd, fs.Arg(0))
		return 2
	}
	if *benchList != "" && cmd != "scenario" {
		names = strings.Split(*benchList, ",")
	}

	// An empty or negative measured interval is a configuration mistake,
	// never a measurement: fail loudly instead of emitting all-zero counters.
	if *durationMS <= 0 {
		fmt.Fprintf(stderr, "agave %s: -duration must be a positive number of milliseconds (got %d)\n", cmd, *durationMS)
		return 2
	}
	if *warmupMS < 0 {
		fmt.Fprintf(stderr, "agave %s: -warmup must not be negative (got %d)\n", cmd, *warmupMS)
		return 2
	}

	cfg := core.Config{
		Seed:                 *seed,
		Duration:             sim.Ticks(*durationMS) * sim.Millisecond,
		Warmup:               sim.Ticks(*warmupMS) * sim.Millisecond,
		Quantum:              sim.Millisecond,
		DisableJIT:           *noJIT,
		DirtyRectComposition: *dirtyRect,
		MinFreePages:         *minFree,
	}

	if cmd == "suite" || cmd == "scenario" || cmd == "fleet" {
		// -ablations sweeps base/nojit/dirtyrect as matrix cells; a base
		// config that already forces one of those flags would make the
		// cell labels lie (the "base" row would really be nojit).
		if *ablations && (*noJIT || *dirtyRect) {
			fmt.Fprintf(stderr, "agave %s: -ablations cannot be combined with -nojit or -dirtyrect (the ablation axis already sweeps them)\n", cmd)
			return 2
		}
	}
	// The subcommands share one FlagSet, so a flag belonging to the other
	// subcommand parses fine — reject it instead of silently ignoring a
	// requested scenario source. Visit sees every explicitly-set flag, so
	// even a knob set to its default value is caught.
	setFlags := make(map[string]bool)
	fs.Visit(func(f *flag.Flag) { setFlags[f.Name] = true })
	if cmd != "scenario" {
		for _, f := range []string{"file", "export"} {
			if setFlags[f] {
				fmt.Fprintf(stderr, "agave %s: -%s applies to the scenario subcommand\n", cmd, f)
				return 2
			}
		}
	}
	if cmd != "suite" && cmd != "fleet" {
		for _, f := range []string{"scenario-dir", "gen-scenarios", "gen-seed", "gen-apps", "gen-events", "gen-pressure", "gen-inputs", "gen-faults"} {
			if setFlags[f] {
				fmt.Fprintf(stderr, "agave %s: -%s applies to the suite and fleet subcommands\n", cmd, f)
				return 2
			}
		}
	}
	if cmd != "fleet" {
		for _, f := range []string{"workers", "shard-size", "checkpoint", "worker"} {
			if setFlags[f] {
				fmt.Fprintf(stderr, "agave %s: -%s applies to the fleet subcommand\n", cmd, f)
				return 2
			}
		}
	}
	// A generator knob without -gen-scenarios would configure zero
	// generated sessions: reject the forgotten count, don't ignore the
	// knobs.
	if (cmd == "suite" || cmd == "fleet") && *genScenarios == 0 {
		for _, f := range []string{"gen-seed", "gen-apps", "gen-events", "gen-pressure", "gen-inputs", "gen-faults"} {
			if setFlags[f] {
				fmt.Fprintf(stderr, "agave %s: -%s requires -gen-scenarios N\n", cmd, f)
				return 2
			}
		}
	}
	if cmd == "scenario" {
		// -export and -list print a document or listing and exit;
		// combining either with names or -file would silently skip the
		// requested runs.
		if *exportName != "" && (len(names) > 0 || *scenarioFile != "") {
			fmt.Fprintln(stderr, "agave scenario: -export cannot be combined with scenario names or -file")
			return 2
		}
		if *listScenarios && (len(names) > 0 || setFlags["file"] || setFlags["export"]) {
			fmt.Fprintln(stderr, "agave scenario: -list cannot be combined with scenario names, -file, or -export")
			return 2
		}
	}
	if cmd == "scenario" {
		return scenarioCmd(stdout, stderr, cfg, names, *parallel, *seedList, *ablations, *asJSON,
			*listScenarios, *scenarioFile, *exportName)
	}
	if cmd == "suite" || cmd == "fleet" {
		gen := genFlags{n: *genScenarios, seed: *genSeed, apps: *genApps,
			events: *genEvents, pressure: *genPressure, inputs: *genInputs, faults: *genFaults}
		pf := planFlags{names: names, seedList: *seedList, ablations: *ablations,
			scenarioList: *scenarioList, scenarioDir: *scenarioDir, gen: gen}
		if cmd == "fleet" {
			return fleetCmd(stdout, stderr, cfg, fleetFlags{
				workers:    *workers,
				shardSize:  *shardSize,
				checkpoint: *checkpoint,
				worker:     *workerMode,
				asJSON:     *asJSON,
			}, pf)
		}
		return suiteCmd(stdout, stderr, cfg, pf, *parallel, *asJSON)
	}

	results, err := core.RunSuite(cfg, names...)
	if err != nil {
		fmt.Fprintln(stderr, "agave:", err)
		return 1
	}

	emit := func(fig report.Figure) {
		switch *format {
		case "csv":
			report.WriteCSV(stdout, fig)
		case "bars":
			report.WriteBars(stdout, fig)
		default:
			report.WriteTable(stdout, fig)
		}
		fmt.Fprintln(stdout)
	}

	switch cmd {
	case "run":
		r := results[0]
		fmt.Fprintf(stdout, "%s: %d total refs, %d processes, %d threads, %d code regions, %d data regions\n",
			r.Benchmark, r.Stats.Total(), r.Processes, r.Threads, r.CodeRegions, r.DataRegions)
		fmt.Fprintln(stdout, "\nTop instruction regions:")
		for _, row := range stats.NewBreakdown(r.Stats.ByRegion(stats.IFetch)).TopN(10) {
			fmt.Fprintf(stdout, "  %-36s %6.2f%%\n", row.Name, row.Share*100)
		}
		fmt.Fprintln(stdout, "\nTop data regions:")
		for _, row := range stats.NewBreakdown(r.Stats.ByRegion(stats.DataKinds...)).TopN(10) {
			fmt.Fprintf(stdout, "  %-36s %6.2f%%\n", row.Name, row.Share*100)
		}
		fmt.Fprintln(stdout, "\nTop processes (all references):")
		for _, row := range stats.NewBreakdown(r.Stats.ByProcess()).TopN(10) {
			fmt.Fprintf(stdout, "  %-36s %6.2f%%\n", row.Name, row.Share*100)
		}
		fmt.Fprintln(stdout, "\nTop threads (all references):")
		for _, row := range stats.NewBreakdown(r.Stats.ByThread()).TopN(10) {
			fmt.Fprintf(stdout, "  %-36s %6.2f%%\n", row.Name, row.Share*100)
		}
	case "fig1":
		emit(report.Fig1(results))
	case "fig2":
		emit(report.Fig2(results))
	case "fig3":
		emit(report.Fig3(results))
	case "fig4":
		emit(report.Fig4(results))
	case "table1":
		report.WriteTable1(stdout, report.Table1(results), 6)
	case "scalars":
		report.WriteScalars(stdout, report.Scalars(results))
		code, data := report.SuiteRegionCounts(results)
		fmt.Fprintf(stdout, "\nAgave suite-wide: %d instruction regions, %d data regions\n", code, data)
	case "all":
		emit(report.Fig1(results))
		emit(report.Fig2(results))
		emit(report.Fig3(results))
		emit(report.Fig4(results))
		report.WriteTable1(stdout, report.Table1(results), 6)
		fmt.Fprintln(stdout)
		report.WriteScalars(stdout, report.Scalars(results))
		code, data := report.SuiteRegionCounts(results)
		fmt.Fprintf(stdout, "\nAgave suite-wide: %d instruction regions, %d data regions\n", code, data)
	}
	return 0
}

// parseSeeds resolves the -seeds axis, falling back to the single -seed.
func parseSeeds(stderr io.Writer, cmd string, base uint64, seedList string) ([]uint64, bool) {
	seeds := []uint64{base}
	if seedList == "" {
		return seeds, true
	}
	seeds = nil
	for _, f := range strings.Split(seedList, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(f), 10, 64)
		if err != nil {
			fmt.Fprintf(stderr, "agave %s: bad -seeds entry %q: %v\n", cmd, f, err)
			return nil, false
		}
		seeds = append(seeds, v)
	}
	return seeds, true
}

// uniqueScenarioAxis verifies scenario names are unique across a plan's
// whole scenario axis — named bundled scenarios plus the ad-hoc set. Two
// cells sharing a name would render indistinguishable rows (the text matrix
// carries no provenance column) and alias in summaries.
func uniqueScenarioAxis(stderr io.Writer, cmd string, names []string, set []*scenario.Scenario) bool {
	seen := make(map[string]bool, len(names)+len(set))
	check := func(n string) bool {
		if seen[n] {
			fmt.Fprintf(stderr, "agave %s: duplicate scenario name %q on the scenario axis\n", cmd, n)
			return false
		}
		seen[n] = true
		return true
	}
	for _, n := range names {
		if !check(n) {
			return false
		}
	}
	for _, sc := range set {
		if !check(sc.Name) {
			return false
		}
	}
	return true
}

// genFlags bundles the generated-scenario knobs of the suite subcommand.
type genFlags struct {
	n        int
	seed     uint64
	apps     int
	events   int
	pressure int
	inputs   int
	faults   int
}

// planFlags bundles the matrix-building flags shared by the suite and fleet
// subcommands: both subcommands resolve an identical plan from identical
// flags, so a fleet sweep always has an exact serial counterpart.
type planFlags struct {
	names        []string
	seedList     string
	ablations    bool
	scenarioList string
	scenarioDir  string
	gen          genFlags
}

// buildPlan resolves the shared matrix flags into a run plan. On failure it
// reports (zero plan, exit code, false) with the diagnostic already printed.
func buildPlan(stderr io.Writer, cmd string, cfg core.Config, pf planFlags) (suite.Plan, int, bool) {
	names := pf.names
	if len(names) == 0 {
		names = core.SuiteNames()
	}
	known := make(map[string]bool)
	for _, n := range core.SuiteNames() {
		known[n] = true
	}
	for _, n := range names {
		if !known[n] {
			fmt.Fprintf(stderr, "agave %s: unknown benchmark %q\n", cmd, n)
			return suite.Plan{}, 1, false
		}
	}
	var scenarios []string
	if pf.scenarioList != "" {
		knownSc := make(map[string]bool)
		for _, n := range core.ScenarioNames() {
			knownSc[n] = true
		}
		for _, n := range strings.Split(pf.scenarioList, ",") {
			n = strings.TrimSpace(n)
			if !knownSc[n] {
				fmt.Fprintf(stderr, "agave %s: unknown scenario %q\n", cmd, n)
				return suite.Plan{}, 1, false
			}
			scenarios = append(scenarios, n)
		}
	}
	// Ad-hoc scenario axes: every *.json document of -scenario-dir, then
	// -gen-scenarios generated sessions at consecutive generation seeds.
	// Names must stay unique across the whole scenario axis — two cells
	// with one name would alias in reports and summaries.
	gen := pf.gen
	var set []*scenario.Scenario
	if pf.scenarioDir != "" {
		loaded, err := scenario.LoadDir(pf.scenarioDir)
		if err != nil {
			fmt.Fprintf(stderr, "agave %s: %v\n", cmd, err)
			return suite.Plan{}, 1, false
		}
		set = append(set, loaded...)
	}
	if gen.n < 0 {
		fmt.Fprintf(stderr, "agave %s: -gen-scenarios must not be negative (got %d)\n", cmd, gen.n)
		return suite.Plan{}, 2, false
	}
	// The sibling knobs validate the same way: zero means "use the
	// default", but a negative value is a typo, not a request.
	if gen.apps < 0 || gen.events < 0 || gen.pressure < 0 || gen.inputs < 0 || gen.faults < 0 {
		fmt.Fprintf(stderr, "agave %s: -gen-apps, -gen-events, -gen-pressure, -gen-inputs, and -gen-faults must not be negative (got %d/%d/%d/%d/%d)\n",
			cmd, gen.apps, gen.events, gen.pressure, gen.inputs, gen.faults)
		return suite.Plan{}, 2, false
	}
	for i := 0; i < gen.n; i++ {
		set = append(set, scenario.Generate(scenario.GenConfig{
			Seed:     gen.seed + uint64(i),
			Apps:     gen.apps,
			Events:   gen.events,
			Pressure: gen.pressure,
			Inputs:   gen.inputs,
			Faults:   gen.faults,
		}))
	}
	if !uniqueScenarioAxis(stderr, cmd, scenarios, set) {
		return suite.Plan{}, 1, false
	}
	seeds, ok := parseSeeds(stderr, cmd, cfg.Seed, pf.seedList)
	if !ok {
		return suite.Plan{}, 2, false
	}
	plan := suite.Plan{Benchmarks: names, Scenarios: scenarios, ScenarioSet: set,
		Seeds: seeds, Ablations: []suite.Ablation{suite.Baseline}}
	if pf.ablations {
		plan.Ablations = suite.DefaultAblations
	}
	return plan, 0, true
}

// suiteCmd executes the suite subcommand: build the run matrix — benchmarks,
// named scenarios, directory-loaded scenario files, and generated scenarios
// are all plan axes — execute it on the worker pool, and render per-run rows
// plus cross-seed summaries.
func suiteCmd(stdout, stderr io.Writer, cfg core.Config, pf planFlags, parallel int, asJSON bool) int {
	plan, code, ok := buildPlan(stderr, "suite", cfg, pf)
	if !ok {
		return code
	}
	outputs, err := core.RunPlan(cfg, plan, parallel)
	if err != nil {
		fmt.Fprintln(stderr, "agave suite:", err)
		return 1
	}
	if asJSON {
		if err := report.WriteSuiteJSON(stdout, plan, parallel, outputs); err != nil {
			fmt.Fprintln(stderr, "agave suite:", err)
			return 1
		}
		return 0
	}
	units := fmt.Sprintf("%d benchmarks", len(plan.Benchmarks))
	if n := len(plan.Scenarios) + len(plan.ScenarioSet); n > 0 {
		units += fmt.Sprintf(" + %d scenarios", n)
	}
	fmt.Fprintf(stdout, "suite: %d runs (%s × %d seeds × %d ablations)\n\n",
		plan.Size(), units, len(plan.Seeds), len(plan.Ablations))
	report.WriteMatrix(stdout, outputs)
	if len(plan.Seeds) > 1 || len(plan.Ablations) > 1 {
		fmt.Fprintln(stdout)
		report.WriteSummaries(stdout, outputs)
	}
	return 0
}

// scenarioCmd executes the scenario subcommand: list the bundled library,
// export a bundled scenario as its canonical JSON document, or run the named
// (and/or file-loaded) scripted sessions through the suite engine and render
// the wall-clock-free scenario matrix (or JSON document). Output bytes
// depend only on the plan and seeds — never on -parallel — and a file-loaded
// copy of a bundled scenario renders a byte-identical default report at the
// same seed (provenance appears only in the JSON document's source field).
func scenarioCmd(stdout, stderr io.Writer, cfg core.Config, names []string,
	parallel int, seedList string, ablations, asJSON, list bool, filePath, exportName string) int {
	if list {
		report.WriteScenarioList(stdout, scenario.Library())
		return 0
	}
	if exportName != "" {
		sc, err := scenario.ByName(exportName)
		if err != nil {
			fmt.Fprintf(stderr, "agave scenario: %v\n", err)
			return 1
		}
		doc, err := scenario.Encode(sc)
		if err != nil {
			fmt.Fprintf(stderr, "agave scenario: %v\n", err)
			return 1
		}
		stdout.Write(doc)
		return 0
	}
	var set []*scenario.Scenario
	if filePath != "" {
		sc, err := scenario.FromFile(filePath)
		if err != nil {
			fmt.Fprintf(stderr, "agave scenario: %v\n", err)
			return 1
		}
		set = append(set, sc)
	}
	if len(names) == 0 && len(set) == 0 {
		fmt.Fprintln(stderr, "agave scenario: scenario name required (or -list, -file, -export)")
		return 2
	}
	for _, n := range names {
		if _, err := scenario.ByName(n); err != nil {
			fmt.Fprintf(stderr, "agave scenario: %v\n", err)
			return 1
		}
	}
	if !uniqueScenarioAxis(stderr, "scenario", names, set) {
		return 1
	}
	seeds, ok := parseSeeds(stderr, "scenario", cfg.Seed, seedList)
	if !ok {
		return 2
	}
	plan := suite.Plan{Scenarios: names, ScenarioSet: set, Seeds: seeds,
		Ablations: []suite.Ablation{suite.Baseline}}
	if ablations {
		plan.Ablations = suite.DefaultAblations
	}
	outputs, err := core.RunPlan(cfg, plan, parallel)
	if err != nil {
		fmt.Fprintln(stderr, "agave scenario:", err)
		return 1
	}
	if asJSON {
		if err := report.WriteScenarioJSON(stdout, plan, outputs); err != nil {
			fmt.Fprintln(stderr, "agave scenario:", err)
			return 1
		}
		return 0
	}
	fmt.Fprintf(stdout, "scenario: %d runs (%d scenarios × %d seeds × %d ablations)\n\n",
		plan.Size(), len(plan.Scenarios)+len(plan.ScenarioSet), len(plan.Seeds), len(plan.Ablations))
	report.WriteScenarioMatrix(stdout, outputs)
	return 0
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `usage: agave <command> [flags]

commands:
  list      benchmark inventory
  run       run one benchmark and print its breakdowns
  suite     run a benchmark × seed × ablation matrix on a worker pool
  scenario  run scripted multi-app sessions (-list for the library)
  fleet     run the matrix sharded across worker subprocesses (docs/FLEET.md)
  fig1      instruction references by VMA region   (paper Fig. 1)
  fig2      data references by VMA region          (paper Fig. 2)
  fig3      instruction references by process      (paper Fig. 3)
  fig4      data references by process             (paper Fig. 4)
  table1    thread ranking                         (paper Table I)
  scalars   region/process/thread census           (paper Sec. III)
  all       everything

run 'agave <command> -h' for flags.`)
}
