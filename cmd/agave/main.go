// Command agave runs the Agave reproduction: it executes the 19 Agave
// workloads and the 6 SPEC CPU2006 baselines on the simulated Android stack
// and regenerates the paper's figures and tables.
//
// Usage:
//
//	agave list                         # benchmark inventory
//	agave run <benchmark> [flags]      # one benchmark, summary breakdowns
//	agave fig1|fig2|fig3|fig4 [flags]  # regenerate a figure (table/csv/bars)
//	agave table1 [flags]               # regenerate Table I
//	agave scalars [flags]              # Section-III census metrics
//	agave all [flags]                  # everything above in one pass
//
// Flags:
//
//	-duration 1000   measured milliseconds of simulated time
//	-warmup 300      warmup milliseconds before measurement (Android runs)
//	-seed 1          simulation seed
//	-format table    output format for figures: table, csv, bars
//	-bench a,b,c     restrict the benchmark set (default: full suite)
//	-nojit           disable the trace JIT in the app under test
//	-dirtyrect       SurfaceFlinger composes only posted surfaces
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"agave/internal/core"
	"agave/internal/report"
	"agave/internal/sim"
	"agave/internal/stats"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	durationMS := fs.Uint64("duration", 1000, "measured simulated milliseconds")
	warmupMS := fs.Uint64("warmup", 300, "warmup simulated milliseconds")
	seed := fs.Uint64("seed", 1, "simulation seed")
	format := fs.String("format", "table", "figure output: table, csv, bars")
	benchList := fs.String("bench", "", "comma-separated benchmark subset")
	noJIT := fs.Bool("nojit", false, "disable the trace JIT")
	dirtyRect := fs.Bool("dirtyrect", false, "dirty-rect composition")

	switch cmd {
	case "list":
		fmt.Println("Agave workloads:")
		for _, n := range core.AgaveNames() {
			fmt.Printf("  %s\n", n)
		}
		fmt.Println("SPEC CPU2006 baselines:")
		for _, n := range core.SPECNames() {
			fmt.Printf("  %s\n", n)
		}
		return
	case "run", "fig1", "fig2", "fig3", "fig4", "table1", "scalars", "all":
		// parsed below
	default:
		usage()
		os.Exit(2)
	}

	var names []string
	args := os.Args[2:]
	if cmd == "run" {
		if len(args) == 0 {
			fmt.Fprintln(os.Stderr, "agave run: benchmark name required")
			os.Exit(2)
		}
		names = []string{args[0]}
		args = args[1:]
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if *benchList != "" {
		names = strings.Split(*benchList, ",")
	}

	cfg := core.Config{
		Seed:                 *seed,
		Duration:             sim.Ticks(*durationMS) * sim.Millisecond,
		Warmup:               sim.Ticks(*warmupMS) * sim.Millisecond,
		Quantum:              sim.Millisecond,
		DisableJIT:           *noJIT,
		DirtyRectComposition: *dirtyRect,
	}

	results, err := core.RunSuite(cfg, names...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "agave:", err)
		os.Exit(1)
	}

	emit := func(fig report.Figure) {
		switch *format {
		case "csv":
			report.WriteCSV(os.Stdout, fig)
		case "bars":
			report.WriteBars(os.Stdout, fig)
		default:
			report.WriteTable(os.Stdout, fig)
		}
		fmt.Println()
	}

	switch cmd {
	case "run":
		r := results[0]
		fmt.Printf("%s: %d total refs, %d processes, %d threads, %d code regions, %d data regions\n",
			r.Benchmark, r.Stats.Total(), r.Processes, r.Threads, r.CodeRegions, r.DataRegions)
		fmt.Println("\nTop instruction regions:")
		for _, row := range stats.NewBreakdown(r.Stats.ByRegion(stats.IFetch)).TopN(10) {
			fmt.Printf("  %-36s %6.2f%%\n", row.Name, row.Share*100)
		}
		fmt.Println("\nTop data regions:")
		for _, row := range stats.NewBreakdown(r.Stats.ByRegion(stats.DataKinds...)).TopN(10) {
			fmt.Printf("  %-36s %6.2f%%\n", row.Name, row.Share*100)
		}
		fmt.Println("\nTop processes (all references):")
		for _, row := range stats.NewBreakdown(r.Stats.ByProcess()).TopN(10) {
			fmt.Printf("  %-36s %6.2f%%\n", row.Name, row.Share*100)
		}
		fmt.Println("\nTop threads (all references):")
		for _, row := range stats.NewBreakdown(r.Stats.ByThread()).TopN(10) {
			fmt.Printf("  %-36s %6.2f%%\n", row.Name, row.Share*100)
		}
	case "fig1":
		emit(report.Fig1(results))
	case "fig2":
		emit(report.Fig2(results))
	case "fig3":
		emit(report.Fig3(results))
	case "fig4":
		emit(report.Fig4(results))
	case "table1":
		report.WriteTable1(os.Stdout, report.Table1(results), 6)
	case "scalars":
		report.WriteScalars(os.Stdout, report.Scalars(results))
		code, data := report.SuiteRegionCounts(results)
		fmt.Printf("\nAgave suite-wide: %d instruction regions, %d data regions\n", code, data)
	case "all":
		emit(report.Fig1(results))
		emit(report.Fig2(results))
		emit(report.Fig3(results))
		emit(report.Fig4(results))
		report.WriteTable1(os.Stdout, report.Table1(results), 6)
		fmt.Println()
		report.WriteScalars(os.Stdout, report.Scalars(results))
		code, data := report.SuiteRegionCounts(results)
		fmt.Printf("\nAgave suite-wide: %d instruction regions, %d data regions\n", code, data)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: agave <command> [flags]

commands:
  list      benchmark inventory
  run       run one benchmark and print its breakdowns
  fig1      instruction references by VMA region   (paper Fig. 1)
  fig2      data references by VMA region          (paper Fig. 2)
  fig3      instruction references by process      (paper Fig. 3)
  fig4      data references by process             (paper Fig. 4)
  table1    thread ranking                         (paper Table I)
  scalars   region/process/thread census           (paper Sec. III)
  all       everything

run 'agave <command> -h' for flags.`)
}
