package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"

	"agave/internal/core"
	"agave/internal/fleet"
	"agave/internal/report"
	"agave/internal/suite"
)

// fleetFlags bundles the fleet-only flags.
type fleetFlags struct {
	workers    int
	shardSize  int
	checkpoint string
	worker     bool
	asJSON     bool
}

// fleetWorkerCommand builds the worker subprocess invocation: this binary
// re-exec'd in worker mode. It is a seam so tests can substitute crashing or
// misbehaving workers. AGAVE_CLI_EXEC marks the child as a CLI invocation —
// the test binary's TestMain honors it, so the same re-exec works whether
// the coordinator is the installed binary or a test process.
var fleetWorkerCommand = func() (*exec.Cmd, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	cmd := exec.Command(exe, "fleet", "-worker")
	cmd.Env = append(os.Environ(), "AGAVE_CLI_EXEC=1")
	return cmd, nil
}

// fleetRunLine executes one plan spec for the fleet: decode the engine
// config from the spec envelope, run the simulator, and render the result
// as its canonical wire line.
func fleetRunLine(cfgRaw json.RawMessage, spec suite.RunSpec) (fleet.Line, error) {
	var cfg core.Config
	if err := json.Unmarshal(cfgRaw, &cfg); err != nil {
		return fleet.Line{}, fmt.Errorf("decode config: %w", err)
	}
	r, _, err := core.RunOne(cfg, spec)
	if err != nil {
		return fleet.Line{}, err
	}
	return report.FleetLine(spec, r), nil
}

// fleetCmd executes the fleet subcommand. Worker mode reads a shard
// envelope from stdin and streams result lines to stdout; coordinator mode
// builds the plan (identically to the suite subcommand), shards it, and
// either runs it serially in-process (-workers 0) or dispatches worker
// subprocesses. The rendered report is byte-identical across all of these.
func fleetCmd(stdout, stderr io.Writer, cfg core.Config, ff fleetFlags, pf planFlags) int {
	if ff.worker {
		if err := fleet.RunWorker(os.Stdin, stdout, fleetRunLine); err != nil {
			fmt.Fprintln(stderr, "agave fleet:", err)
			return 1
		}
		return 0
	}
	if ff.shardSize <= 0 {
		fmt.Fprintf(stderr, "agave fleet: -shard-size must be positive (got %d)\n", ff.shardSize)
		return 2
	}
	if ff.workers < 0 {
		fmt.Fprintf(stderr, "agave fleet: -workers must not be negative (got %d)\n", ff.workers)
		return 2
	}
	plan, code, ok := buildPlan(stderr, "fleet", cfg, pf)
	if !ok {
		return code
	}
	wirePlan, err := fleet.NewWirePlan(plan)
	if err != nil {
		fmt.Fprintln(stderr, "agave fleet:", err)
		return 1
	}
	cfgRaw, err := json.Marshal(cfg)
	if err != nil {
		fmt.Fprintln(stderr, "agave fleet:", err)
		return 1
	}
	spec := &fleet.Spec{Config: cfgRaw, Plan: wirePlan, ShardSize: ff.shardSize}

	var rep *fleet.Report
	if ff.workers == 0 {
		rep, err = fleet.RunSerial(spec, fleet.SerialOptions{
			Checkpoint: ff.checkpoint,
			Progress:   stderr,
			Run:        fleetRunLine,
		})
	} else {
		rep, err = fleet.Run(spec, fleet.Options{
			Workers:    ff.workers,
			Command:    fleetWorkerCommand,
			Checkpoint: ff.checkpoint,
			Progress:   stderr,
		})
	}
	if err != nil {
		fmt.Fprintln(stderr, "agave fleet:", err)
		return 1
	}
	if ff.asJSON {
		if err := report.WriteFleetJSON(stdout, rep); err != nil {
			fmt.Fprintln(stderr, "agave fleet:", err)
			return 1
		}
		return 0
	}
	report.WriteFleetText(stdout, rep)
	return 0
}
