// Command agavelint runs the repository's determinism-and-attribution
// analyzer suite (internal/lint/analyzers) over Go packages. It answers two
// callers with one binary:
//
//   - Standalone: "agavelint [moduledir]" walks the module, type-checks every
//     non-test package against $GOROOT/src, and prints surviving findings.
//     This is the mode CI runs; it needs no build cache and no network.
//
//   - Vet tool: "go vet -vettool=$(which agavelint) ./..." drives the binary
//     through the unit-checker protocol — go vet probes -V=full and -flags,
//     then invokes the tool once per package with a JSON .cfg describing the
//     files and the export data of every dependency. Cross-package analysis
//     (mutexorder's lock-order graph) only sees one package per unit in this
//     mode; the standalone run is the authoritative gate.
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure.
// docs/LINT.md documents each analyzer and the //agave:allow directive.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"agave/internal/lint"
	"agave/internal/lint/analyzers"
	"agave/internal/lint/load"
)

func main() {
	os.Exit(Main(os.Args[1:], os.Stdout, os.Stderr))
}

// Main is the testable entry point.
func Main(args []string, stdout, stderr io.Writer) int {
	for _, a := range args {
		if a == "-V=full" || a == "--V=full" {
			return printVersion(stdout, stderr)
		}
	}
	if len(args) == 1 {
		switch {
		case args[0] == "-flags" || args[0] == "--flags":
			// We register no analyzer flags with go vet.
			fmt.Fprintln(stdout, "[]")
			return 0
		case strings.HasSuffix(args[0], ".cfg"):
			return runUnit(args[0], stderr)
		}
	}
	dir := "."
	switch len(args) {
	case 0:
	case 1:
		dir = args[0]
	default:
		fmt.Fprintln(stderr, "usage: agavelint [moduledir]")
		return 2
	}
	return runStandalone(dir, stdout, stderr)
}

// printVersion answers go vet's -V=full probe. Vet caches analysis results
// keyed by the tool's identity, so the line must carry a content hash of the
// executable: rebuild the linter and the cache key changes with it.
func printVersion(stdout, stderr io.Writer) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(stderr, "agavelint:", err)
		return 2
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintln(stderr, "agavelint:", err)
		return 2
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintln(stderr, "agavelint:", err)
		return 2
	}
	fmt.Fprintf(stdout, "agavelint version devel buildID=%x\n", h.Sum(nil))
	return 0
}

// runStandalone loads every package of the module rooted at or above dir and
// prints findings with paths relative to the working directory.
func runStandalone(dir string, stdout, stderr io.Writer) int {
	modDir, modPath, err := findModule(dir)
	if err != nil {
		fmt.Fprintln(stderr, "agavelint:", err)
		return 2
	}
	fset := token.NewFileSet()
	loader := load.New(load.Config{Fset: fset, ModulePath: modPath, ModuleDir: modDir})
	pkgs, err := loader.LoadModule()
	if err != nil {
		fmt.Fprintln(stderr, "agavelint:", err)
		return 2
	}
	findings, err := lint.Run(fset, pkgs, analyzers.All(), analyzers.Names())
	if err != nil {
		fmt.Fprintln(stderr, "agavelint:", err)
		return 2
	}
	cwd, _ := os.Getwd()
	for _, f := range findings {
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, f.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				f.Pos.Filename = rel
			}
		}
		fmt.Fprintln(stdout, f.String())
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// findModule walks up from dir to the nearest go.mod and returns the module
// directory and module path.
func findModule(dir string) (modDir, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod has no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("no go.mod at or above %s", abs)
		}
		d = parent
	}
}

// vetConfig is the subset of go vet's unit-checker .cfg file the tool needs.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnit analyzes one package the way go vet describes it: source files
// parsed from disk, dependencies imported from the compiler export data the
// build cache already holds.
func runUnit(cfgPath string, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(stderr, "agavelint:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "agavelint: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	// Vet wants the output file to exist even when there is nothing to say;
	// it is how facts would flow between units, and we export none.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(stderr, "agavelint:", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		// The invariants guard simulation code; test files legitimately
		// use wall clocks and ad-hoc ordering, so the test variants vet
		// also describes are trimmed back to the production sources.
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			fmt.Fprintln(stderr, "agavelint:", err)
			return 2
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return 0
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer:    importer.ForCompiler(fset, cfg.Compiler, lookup),
		FakeImportC: true,
	}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(stderr, "agavelint: type-checking %s: %v\n", cfg.ImportPath, err)
		return 2
	}

	pkg := &load.Package{Path: cfg.ImportPath, Dir: cfg.Dir, Files: files, Pkg: tpkg, Info: info}
	findings, err := lint.Run(fset, []*load.Package{pkg}, analyzers.All(), analyzers.Names())
	if err != nil {
		fmt.Fprintln(stderr, "agavelint:", err)
		return 2
	}
	for _, f := range findings {
		fmt.Fprintln(stderr, f.String())
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}
