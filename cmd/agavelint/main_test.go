package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestRepositoryIsClean is the gate the CI lint job mirrors: the linter must
// come up empty on its own repository. Every deliberate exception carries an
// //agave:allow directive at the site, so any output here is a regression.
func TestRepositoryIsClean(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := Main([]string{"../.."}, &stdout, &stderr); code != 0 {
		t.Fatalf("agavelint ../.. = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean run printed findings:\n%s", stdout.String())
	}
}

// TestVetProbes covers the two probes go vet sends before trusting a vettool:
// -flags must answer an empty JSON flag list, and -V=full must answer a
// version line carrying a content hash so vet's result cache keys on the
// binary's identity.
func TestVetProbes(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := Main([]string{"-flags"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-flags exit %d, stderr %q", code, stderr.String())
	}
	if got := strings.TrimSpace(stdout.String()); got != "[]" {
		t.Errorf("-flags printed %q, want []", got)
	}

	stdout.Reset()
	if code := Main([]string{"-V=full"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-V=full exit %d, stderr %q", code, stderr.String())
	}
	if got := stdout.String(); !strings.Contains(got, "buildID=") {
		t.Errorf("-V=full printed %q, want a buildID= token", got)
	}
}

// writeModule lays out a throwaway module and returns its root.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	files["go.mod"] = "module synthetic\n\ngo 1.23\n"
	for name, src := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// TestSeededWalltimeViolationFails plants the acceptance scenario: a synthetic
// time.Now inside internal/android must fail the build.
func TestSeededWalltimeViolationFails(t *testing.T) {
	root := writeModule(t, map[string]string{
		"internal/android/clock.go": "package android\n\nimport \"time\"\n\nfunc Stamp() time.Time { return time.Now() }\n",
	})
	var stdout, stderr bytes.Buffer
	if code := Main([]string{root}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "time.Now reads the wall clock") || !strings.Contains(out, "(walltime)") {
		t.Errorf("missing walltime finding in:\n%s", out)
	}
}

// TestSeededMaporderViolationFails plants the other acceptance scenario: an
// unsorted map range accumulating into a slice inside internal/report.
func TestSeededMaporderViolationFails(t *testing.T) {
	root := writeModule(t, map[string]string{
		"internal/report/rows.go": `package report

func Rows(counts map[string]int) []string {
	var rows []string
	for name := range counts {
		rows = append(rows, name)
	}
	return rows
}
`,
	})
	var stdout, stderr bytes.Buffer
	if code := Main([]string{root}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "accumulates in map order") || !strings.Contains(out, "(maporder)") {
		t.Errorf("missing maporder finding in:\n%s", out)
	}
}

// TestUnitCheckerMode drives the .cfg path the way go vet does: export data
// for the dependencies comes from the build cache via go list, and the tool
// must report the violation on stderr, exit 1, and leave the vetx output
// file behind.
func TestUnitCheckerMode(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool unavailable")
	}
	root := writeModule(t, map[string]string{
		"p/p.go": "package p\n\nimport \"time\"\n\nfunc Stamp() time.Time { return time.Now() }\n",
	})

	// Resolve export data for time and everything beneath it.
	out, err := exec.Command("go", "list", "-export", "-deps", "-f", "{{.ImportPath}}\t{{.Export}}", "time").Output()
	if err != nil {
		t.Fatalf("go list -export: %v", err)
	}
	packageFile := make(map[string]string)
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		path, export, ok := strings.Cut(line, "\t")
		if ok && export != "" {
			packageFile[path] = export
		}
	}
	if packageFile["time"] == "" {
		t.Fatal("go list produced no export data for time")
	}

	vetx := filepath.Join(root, "p.vetx")
	cfg := vetConfig{
		ID:          "synthetic/p",
		Compiler:    "gc",
		Dir:         filepath.Join(root, "p"),
		ImportPath:  "synthetic/p",
		GoFiles:     []string{filepath.Join(root, "p", "p.go")},
		ImportMap:   map[string]string{"time": "time"},
		PackageFile: packageFile,
		VetxOutput:  vetx,
	}
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgPath := filepath.Join(root, "p.cfg")
	if err := os.WriteFile(cfgPath, data, 0o666); err != nil {
		t.Fatal(err)
	}

	var stdout, stderr bytes.Buffer
	if code := Main([]string{cfgPath}, &stdout, &stderr); code != 1 {
		t.Fatalf("unit mode exit %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if msg := stderr.String(); !strings.Contains(msg, "(walltime)") {
		t.Errorf("unit mode stderr missing walltime finding:\n%s", msg)
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Errorf("vetx output not written: %v", err)
	}
}
