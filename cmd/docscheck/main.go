// Command docscheck is the documentation gate CI's docs job runs. It
// enforces five invariants that rot silently otherwise:
//
//  1. Every package under internal/ carries exactly one package-level godoc
//     comment, and it begins "Package <name> ", so `go doc ./internal/<pkg>`
//     explains the layer without reading source. More than one doc comment
//     is also an error — Go picks one arbitrarily, which is how a package's
//     real overview ends up shadowed by a file-local preamble.
//  2. Every relative link in the repository's markdown files resolves to an
//     existing file or directory, so the architecture map and README never
//     point at paths a refactor moved.
//  3. Every event kind the scenario codec accepts appears as a heading in
//     docs/SCENARIOS.md, so a new timeline kind cannot ship without its
//     schema reference — the document is held to scenario.KindNames, not
//     the other way around.
//  4. Every analyzer registered in internal/lint/analyzers appears as a
//     heading in docs/LINT.md, so a new lint invariant cannot ship without
//     its reference entry — same contract as the scenario kinds.
//  5. Every wire-format field name internal/fleet declares (json struct
//     tags: result lines, envelopes, trailers, checkpoint records) appears
//     as a backticked token in docs/FLEET.md, so the shard-protocol and
//     checkpoint references can never drift from the structs that define
//     the formats.
//
// A third Go-side invariant used to live here: every markdown file a Go
// comment references must exist. That check is now the docref analyzer in
// cmd/agavelint, where it is suppressible and fixture-tested; docscheck
// keeps the markdown-side gates.
//
// Usage: docscheck [repo-root] (default ".", exits non-zero on any finding).
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"agave/internal/lint/analyzers"
	"agave/internal/scenario"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	os.Exit(run(root, os.Stdout, os.Stderr))
}

// run performs all checks and reports every finding (not just the first),
// returning 0 only when the tree is clean.
func run(root string, stdout, stderr io.Writer) int {
	var findings []string
	pkgFindings, err := checkPackageComments(root)
	if err != nil {
		fmt.Fprintln(stderr, "docscheck:", err)
		return 2
	}
	findings = append(findings, pkgFindings...)
	linkFindings, err := checkMarkdownLinks(root)
	if err != nil {
		fmt.Fprintln(stderr, "docscheck:", err)
		return 2
	}
	findings = append(findings, linkFindings...)
	findings = append(findings, checkScenarioKindDocs(root)...)
	findings = append(findings, checkLintAnalyzerDocs(root)...)
	fleetFindings, err := checkFleetWireDocs(root)
	if err != nil {
		fmt.Fprintln(stderr, "docscheck:", err)
		return 2
	}
	findings = append(findings, fleetFindings...)
	if len(findings) > 0 {
		for _, f := range findings {
			fmt.Fprintln(stderr, f)
		}
		fmt.Fprintf(stderr, "docscheck: %d finding(s)\n", len(findings))
		return 1
	}
	fmt.Fprintln(stdout, "docscheck: ok")
	return 0
}

// checkPackageComments verifies each internal/ package has exactly one
// package doc comment of the canonical "Package <name> ..." form.
func checkPackageComments(root string) ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(root, "internal"))
	if err != nil {
		return nil, err
	}
	var findings []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(root, "internal", e.Name())
		fset := token.NewFileSet()
		files, err := filepath.Glob(filepath.Join(dir, "*.go"))
		if err != nil {
			return nil, err
		}
		var docs []string // files carrying a package doc comment
		var docText string
		for _, path := range files {
			if strings.HasSuffix(path, "_test.go") {
				continue
			}
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.PackageClauseOnly)
			if err != nil {
				return nil, err
			}
			if f.Doc != nil {
				docs = append(docs, filepath.Base(path))
				docText = f.Doc.Text()
			}
		}
		rel := "internal/" + e.Name()
		switch {
		case len(docs) == 0:
			findings = append(findings, fmt.Sprintf(
				"%s: no package comment (add a \"Package %s ...\" doc comment)", rel, e.Name()))
		case len(docs) > 1:
			findings = append(findings, fmt.Sprintf(
				"%s: %d package doc comments (%s) — keep one, detach the rest with a blank line",
				rel, len(docs), strings.Join(docs, ", ")))
		case !strings.HasPrefix(docText, "Package "+e.Name()+" "):
			findings = append(findings, fmt.Sprintf(
				"%s: package comment in %s does not begin \"Package %s \"", rel, docs[0], e.Name()))
		}
	}
	return findings, nil
}

// mdLink matches inline markdown links/images; the destination is group 1.
// Reference-style links are rare enough here that inline coverage is the
// useful gate.
var mdLink = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)[^)]*\)`)

// scenarioKindDoc is the scenario-schema reference checkScenarioKindDocs
// holds to the codec, relative to the repo root.
const scenarioKindDoc = "docs/SCENARIOS.md"

// checkScenarioKindDocs verifies that every event kind the scenario codec
// accepts (scenario.KindNames — the exact ParseKind spellings) appears as a
// markdown heading in docs/SCENARIOS.md. The comparison strips heading
// markers and backticks, so "### `faultBinder`" documents the kind
// "faultBinder". A missing reference document is itself a finding, not an
// infrastructure error: deleting the doc must fail the gate the same way
// deleting one heading does.
func checkScenarioKindDocs(root string) []string {
	path := filepath.Join(root, scenarioKindDoc)
	data, err := os.ReadFile(path)
	if err != nil {
		return []string{fmt.Sprintf(
			"%s: missing scenario schema reference (every scenario.ParseKind kind must be documented there)",
			scenarioKindDoc)}
	}
	headings := make(map[string]bool)
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "#") {
			continue
		}
		h := strings.TrimSpace(strings.TrimLeft(line, "#"))
		h = strings.Trim(h, "`")
		headings[h] = true
	}
	var findings []string
	for _, kind := range scenario.KindNames() {
		if !headings[kind] {
			findings = append(findings, fmt.Sprintf(
				"%s: event kind %q has no heading (the codec accepts it; document it)",
				scenarioKindDoc, kind))
		}
	}
	return findings
}

// lintAnalyzerDoc is the linter reference checkLintAnalyzerDocs holds to the
// analyzer registry, relative to the repo root.
const lintAnalyzerDoc = "docs/LINT.md"

// checkLintAnalyzerDocs verifies that every analyzer registered in
// internal/lint/analyzers appears as a markdown heading in docs/LINT.md,
// exactly the contract checkScenarioKindDocs enforces for event kinds: the
// document is held to analyzers.Names(), heading markers and backticks
// stripped, and a missing document is itself a finding.
func checkLintAnalyzerDocs(root string) []string {
	path := filepath.Join(root, lintAnalyzerDoc)
	data, err := os.ReadFile(path)
	if err != nil {
		return []string{fmt.Sprintf(
			"%s: missing linter reference (every registered agavelint analyzer must be documented there)",
			lintAnalyzerDoc)}
	}
	headings := make(map[string]bool)
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "#") {
			continue
		}
		h := strings.TrimSpace(strings.TrimLeft(line, "#"))
		h = strings.Trim(h, "`")
		headings[h] = true
	}
	var findings []string
	for _, name := range analyzers.Names() {
		if !headings[name] {
			findings = append(findings, fmt.Sprintf(
				"%s: analyzer %q has no heading (it is registered; document it)",
				lintAnalyzerDoc, name))
		}
	}
	return findings
}

// fleetWireDoc is the fleet wire-format reference checkFleetWireDocs holds
// to the internal/fleet struct tags, relative to the repo root.
const fleetWireDoc = "docs/FLEET.md"

// checkFleetWireDocs verifies that every JSON wire-format field name
// internal/fleet declares appears as a backticked token in docs/FLEET.md:
// the shard protocol and checkpoint format are defined by those struct
// tags, so renaming or adding a field without updating the reference fails
// the gate. The document is held to the parsed tags (never the reverse),
// _test.go files are out of scope, and a tree without internal/fleet is
// clean — the gate follows the package, not the other way around.
func checkFleetWireDocs(root string) ([]string, error) {
	dir := filepath.Join(root, "internal", "fleet")
	files, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(files) == 0 {
		return nil, err
	}
	names := make(map[string]bool)
	fset := token.NewFileSet()
	for _, path := range files {
		if strings.HasSuffix(path, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return nil, err
		}
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if field.Tag == nil {
					continue
				}
				tag, err := strconv.Unquote(field.Tag.Value)
				if err != nil {
					continue
				}
				name, _, _ := strings.Cut(reflect.StructTag(tag).Get("json"), ",")
				if name != "" && name != "-" {
					names[name] = true
				}
			}
			return true
		})
	}
	if len(names) == 0 {
		return nil, nil
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n) //agave:allow maporder collect-then-sort: sorted below before any output
	}
	sort.Strings(sorted)
	data, err := os.ReadFile(filepath.Join(root, fleetWireDoc))
	if err != nil {
		return []string{fmt.Sprintf(
			"%s: missing fleet wire-format reference (every internal/fleet json tag must be documented there)",
			fleetWireDoc)}, nil
	}
	doc := string(data)
	var findings []string
	for _, name := range sorted {
		if !strings.Contains(doc, "`"+name+"`") {
			findings = append(findings, fmt.Sprintf(
				"%s: wire-format field %q (internal/fleet) is undocumented (add it as a backticked token)",
				fleetWireDoc, name))
		}
	}
	return findings, nil
}

// checkMarkdownLinks resolves every relative link destination in the repo's
// markdown files against the filesystem.
func checkMarkdownLinks(root string) ([]string, error) {
	var findings []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if name == ".git" || name == "testdata" || name == ".claude" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".md") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(root, path)
		for lineNo, line := range strings.Split(string(data), "\n") {
			for _, m := range mdLink.FindAllStringSubmatch(line, -1) {
				dest := m[1]
				if strings.Contains(dest, "://") || strings.HasPrefix(dest, "mailto:") ||
					strings.HasPrefix(dest, "#") {
					continue // external or intra-document
				}
				dest = strings.SplitN(dest, "#", 2)[0] // drop the fragment
				if dest == "" {
					continue
				}
				target := filepath.Join(filepath.Dir(path), dest)
				if _, err := os.Stat(target); err != nil {
					findings = append(findings, fmt.Sprintf(
						"%s:%d: broken link %q", rel, lineNo+1, m[1]))
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return findings, nil
}
