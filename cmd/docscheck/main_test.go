package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"agave/internal/lint/analyzers"
	"agave/internal/scenario"
)

// TestRepositoryIsClean runs every gate against this repository: each
// internal package must carry its canonical package comment, every relative
// markdown link must resolve, and the scenario-kind and lint-analyzer
// references must each cover their registries. This is the same check CI's
// docs job runs, enforced locally by `go test`.
func TestRepositoryIsClean(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(filepath.Join("..", ".."), &out, &errOut); code != 0 {
		t.Fatalf("docscheck found problems (exit %d):\n%s", code, errOut.String())
	}
}

// TestDetectsMissingAndMalformedPackageComments builds a synthetic tree with
// a comment-less package, a package with two doc comments, and a package
// whose comment does not follow the "Package <name>" form — all three must
// be findings.
func TestDetectsMissingAndMalformedPackageComments(t *testing.T) {
	root := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("internal/bare/bare.go", "package bare\n")
	write("internal/twice/a.go", "// Package twice does things.\npackage twice\n")
	write("internal/twice/b.go", "// Another preamble.\npackage twice\n")
	write("internal/odd/odd.go", "// odd helpers live here.\npackage odd\n")
	write("internal/good/good.go", "// Package good is documented.\npackage good\n")

	var out, errOut strings.Builder
	if code := run(root, &out, &errOut); code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr: %s", code, errOut.String())
	}
	got := errOut.String()
	for _, want := range []string{
		"internal/bare: no package comment",
		"internal/twice: 2 package doc comments",
		`internal/odd: package comment in odd.go does not begin "Package odd "`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("findings missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "internal/good") {
		t.Errorf("clean package flagged:\n%s", got)
	}
}

// TestDetectsBrokenMarkdownLinks: a relative link at a missing file is a
// finding; external, anchor, and fragment-carrying links that resolve are
// not.
func TestDetectsBrokenMarkdownLinks(t *testing.T) {
	root := t.TempDir()
	if err := os.MkdirAll(filepath.Join(root, "internal"), 0o755); err != nil {
		t.Fatal(err)
	}
	md := strings.Join([]string{
		"[ok](real.md)",
		"[ok-anchor](real.md#section)",
		"[self](#here)",
		"[web](https://example.com/x)",
		"[broken](missing.md)",
	}, "\n")
	if err := os.WriteFile(filepath.Join(root, "doc.md"), []byte(md), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "real.md"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	if code := run(root, &out, &errOut); code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr: %s", code, errOut.String())
	}
	got := errOut.String()
	if !strings.Contains(got, `doc.md:5: broken link "missing.md"`) {
		t.Errorf("broken link not reported:\n%s", got)
	}
	if strings.Contains(got, "real.md#section") || strings.Contains(got, "example.com") {
		t.Errorf("false positives:\n%s", got)
	}
}

// TestDetectsUndocumentedScenarioKinds: docs/SCENARIOS.md must carry one
// heading per codec-accepted event kind — a missing heading and a missing
// document are both findings, and a fully-documented file is clean.
func TestDetectsUndocumentedScenarioKinds(t *testing.T) {
	root := t.TempDir()
	if err := os.MkdirAll(filepath.Join(root, "internal"), 0o755); err != nil {
		t.Fatal(err)
	}

	// No document at all: one finding naming the reference doc.
	got := strings.Join(checkScenarioKindDocs(root), "\n")
	if !strings.Contains(got, "docs/SCENARIOS.md: missing scenario schema reference") {
		t.Errorf("missing document not reported:\n%s", got)
	}

	// All kinds but one documented: exactly the gap is reported.
	kinds := scenario.KindNames()
	var doc strings.Builder
	doc.WriteString("# Scenario file reference\n")
	for _, k := range kinds[1:] {
		doc.WriteString("### `" + k + "`\n")
	}
	if err := os.MkdirAll(filepath.Join(root, "docs"), 0o755); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(root, "docs", "SCENARIOS.md")
	if err := os.WriteFile(path, []byte(doc.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	findings := checkScenarioKindDocs(root)
	if len(findings) != 1 || !strings.Contains(findings[0], `event kind "`+kinds[0]+`" has no heading`) {
		t.Errorf("want exactly the %q gap, got:\n%s", kinds[0], strings.Join(findings, "\n"))
	}

	// The gap closed (heading marker depth and backticks must not matter).
	full := doc.String() + "## " + kinds[0] + "\n"
	if err := os.WriteFile(path, []byte(full), 0o644); err != nil {
		t.Fatal(err)
	}
	if findings := checkScenarioKindDocs(root); len(findings) != 0 {
		t.Errorf("documented kinds flagged:\n%s", strings.Join(findings, "\n"))
	}
}

// TestDetectsUndocumentedLintAnalyzers: docs/LINT.md must carry one heading
// per registered agavelint analyzer — a missing heading and a missing
// document are both findings, and a fully-documented file is clean.
func TestDetectsUndocumentedLintAnalyzers(t *testing.T) {
	root := t.TempDir()

	// No document at all: one finding naming the reference doc.
	got := strings.Join(checkLintAnalyzerDocs(root), "\n")
	if !strings.Contains(got, "docs/LINT.md: missing linter reference") {
		t.Errorf("missing document not reported:\n%s", got)
	}

	// All analyzers but one documented: exactly the gap is reported.
	names := analyzers.Names()
	var doc strings.Builder
	doc.WriteString("# agavelint reference\n")
	for _, n := range names[1:] {
		doc.WriteString("### `" + n + "`\n")
	}
	if err := os.MkdirAll(filepath.Join(root, "docs"), 0o755); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(root, "docs", "LINT.md")
	if err := os.WriteFile(path, []byte(doc.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	findings := checkLintAnalyzerDocs(root)
	if len(findings) != 1 || !strings.Contains(findings[0], `analyzer "`+names[0]+`" has no heading`) {
		t.Errorf("want exactly the %q gap, got:\n%s", names[0], strings.Join(findings, "\n"))
	}

	// The gap closed (heading marker depth and backticks must not matter).
	full := doc.String() + "## " + names[0] + "\n"
	if err := os.WriteFile(path, []byte(full), 0o644); err != nil {
		t.Fatal(err)
	}
	if findings := checkLintAnalyzerDocs(root); len(findings) != 0 {
		t.Errorf("documented analyzers flagged:\n%s", strings.Join(findings, "\n"))
	}
}

// TestDetectsUndocumentedFleetWireFields: every json struct tag in
// internal/fleet must appear backticked in docs/FLEET.md — a missing token
// and a missing document are both findings, a documented tree is clean, and
// a tree without internal/fleet is clean (the gate follows the package).
func TestDetectsUndocumentedFleetWireFields(t *testing.T) {
	root := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// No internal/fleet: clean, not a finding or an error.
	findings, err := checkFleetWireDocs(root)
	if err != nil || len(findings) != 0 {
		t.Fatalf("fleet-less tree: findings=%v err=%v", findings, err)
	}

	src := `package fleet

type Line struct {
	Index   int     ` + "`json:\"index\"`" + `
	Digest  string  ` + "`json:\"digest,omitempty\"`" + `
	Skipped string  ` + "`json:\"-\"`" + `
	NoTag   string
}
`
	write("internal/fleet/fleet.go", src)
	// Tags in _test.go files are out of scope.
	write("internal/fleet/fleet_test.go", `package fleet

type testOnly struct {
	X int `+"`json:\"test_only_field\"`"+`
}
`)

	// No document at all: one finding naming the reference doc.
	findings, err = checkFleetWireDocs(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || !strings.Contains(findings[0], "docs/FLEET.md: missing fleet wire-format reference") {
		t.Fatalf("missing document not reported:\n%s", strings.Join(findings, "\n"))
	}

	// One field documented, one not: exactly the gap is reported, and the
	// json:"-" field and the test-file tag are never demanded.
	write("docs/FLEET.md", "# Fleet\n\nLines carry `index`.\n")
	findings, err = checkFleetWireDocs(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || !strings.Contains(findings[0], `wire-format field "digest" (internal/fleet) is undocumented`) {
		t.Fatalf("want exactly the digest gap, got:\n%s", strings.Join(findings, "\n"))
	}

	// The gap closed: the ",omitempty" option must not leak into the token.
	write("docs/FLEET.md", "# Fleet\n\nLines carry `index` and `digest`.\n")
	findings, err = checkFleetWireDocs(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("documented fields flagged:\n%s", strings.Join(findings, "\n"))
	}
}
