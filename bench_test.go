package agave

// One benchmark per paper artifact: Figures 1-4, Table I, and the Section
// III scalar census, plus the ablation benches called out in
// docs/ARCHITECTURE.md.
// Benchmarks run shortened simulations (the shapes stabilize well before one
// simulated second) and publish the headline quantity of each figure as a
// custom metric, so `go test -bench=.` regenerates the paper's numbers in
// one pass.

import (
	"runtime"
	"testing"

	"agave/internal/core"
	"agave/internal/dalvik"
	"agave/internal/fleet"
	"agave/internal/kernel"
	"agave/internal/loader"
	"agave/internal/report"
	"agave/internal/scenario"
	"agave/internal/sim"
	"agave/internal/stats"
	"agave/internal/suite"
)

// benchConfig is the shortened configuration used by the figure benches.
func benchConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Duration = 300 * sim.Millisecond
	cfg.Warmup = 200 * sim.Millisecond
	return cfg
}

// benchSubset is a representative cross-section used by the per-figure
// benches (UI-heavy, Java game, media, background, install, plus two SPEC
// baselines); the full 25-benchmark sweep runs in BenchmarkFullSuite.
var benchSubset = []string{
	"frozenbubble.main", "aard.main", "gallery.mp4.view",
	"music.mp3.view.bkg", "pm.apk.view", "401.bzip2", "429.mcf",
}

func runSubset(b *testing.B, names []string) []*core.Result {
	b.Helper()
	results, err := core.RunSuite(benchConfig(), names...)
	if err != nil {
		b.Fatal(err)
	}
	return results
}

// BenchmarkFig1InstructionRegions regenerates Figure 1: % instruction reads
// by VMA region. Reported metrics: mspace and libdvm.so shares for the
// Java-game series (the paper's headline observation).
func BenchmarkFig1InstructionRegions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := runSubset(b, benchSubset)
		fig := report.Fig1(results)
		b.ReportMetric(fig.Series[0].Breakdown.Share("mspace")*100, "mspace_pct")
		b.ReportMetric(fig.Series[0].Breakdown.Share("libdvm.so")*100, "libdvm_pct")
		b.ReportMetric(fig.Series[5].Breakdown.Share("app binary")*100, "spec_appbin_pct")
	}
}

// BenchmarkFig2DataRegions regenerates Figure 2: % data references by
// region. Reported: gralloc-buffer share (Android) vs anonymous share
// (SPEC 429.mcf).
func BenchmarkFig2DataRegions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := runSubset(b, benchSubset)
		fig := report.Fig2(results)
		b.ReportMetric(fig.Series[0].Breakdown.Share("gralloc-buffer")*100, "gralloc_pct")
		b.ReportMetric(fig.Series[6].Breakdown.Share("anonymous")*100, "mcf_anon_pct")
	}
}

// BenchmarkFig3InstructionProcesses regenerates Figure 3: % instruction
// reads by process. Reported: mediaserver share of gallery.mp4.view (the
// paper: 81 %).
func BenchmarkFig3InstructionProcesses(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := runSubset(b, benchSubset)
		fig := report.Fig3(results)
		b.ReportMetric(fig.Series[2].Breakdown.Share("mediaserver")*100, "gallery_mediaserver_pct")
		b.ReportMetric(fig.Series[5].Breakdown.Share("benchmark")*100, "spec_benchmark_pct")
	}
}

// BenchmarkFig4DataProcesses regenerates Figure 4: % data references by
// process. Reported: mediaserver data share of gallery.mp4.view (paper:
// 77 %) and the dexopt share of pm.apk.view.
func BenchmarkFig4DataProcesses(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := runSubset(b, benchSubset)
		fig := report.Fig4(results)
		b.ReportMetric(fig.Series[2].Breakdown.Share("mediaserver")*100, "gallery_mediaserver_pct")
		b.ReportMetric(fig.Series[4].Breakdown.Share("dexopt")*100, "pm_dexopt_pct")
	}
}

// BenchmarkTable1ThreadRanking regenerates Table I: thread groups ranked by
// share of total Agave memory references. Reported: the SurfaceFlinger share
// (paper: 43.4 %).
func BenchmarkTable1ThreadRanking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := runSubset(b, benchSubset)
		t1 := report.Table1(results)
		b.ReportMetric(t1.Share("SurfaceFlinger")*100, "surfaceflinger_pct")
		b.ReportMetric(t1.Share("Compiler")*100, "compiler_pct")
		b.ReportMetric(t1.Share("GC")*100, "gc_pct")
	}
}

// BenchmarkScalarCounts regenerates the Section III census. Reported:
// process/thread/region counts of the UI-heavy series (paper bands: 20–34
// processes, 32–147 threads, 42–55 code regions, 32–104 data regions).
func BenchmarkScalarCounts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := runSubset(b, benchSubset)
		rows := report.Scalars(results)
		b.ReportMetric(float64(rows[0].Processes), "processes")
		b.ReportMetric(float64(rows[0].Threads), "threads")
		b.ReportMetric(float64(rows[0].CodeRegions), "code_regions")
		b.ReportMetric(float64(rows[0].DataRegions), "data_regions")
	}
}

// BenchmarkFullSuite runs all 19 Agave + 6 SPEC benchmarks end to end (the
// complete paper sweep) and reports the suite-wide region census.
func BenchmarkFullSuite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := core.RunSuite(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		code, data := report.SuiteRegionCounts(results)
		b.ReportMetric(float64(code), "suite_code_regions")
		b.ReportMetric(float64(data), "suite_data_regions")
		t1 := report.Table1(results)
		b.ReportMetric(t1.Share("SurfaceFlinger")*100, "surfaceflinger_pct")
	}
}

// --- suite-engine benches: serial vs sharded execution of one plan ---

// suitePlan is the fixed 14-run matrix (7 benchmarks × 2 seeds) both
// suite benches execute, so ns/op is directly comparable and the parallel
// speedup is tracked in the bench trajectory.
func suitePlan() suite.Plan {
	return suite.Plan{Benchmarks: benchSubset, Seeds: []uint64{1, 2}}
}

func runPlanBench(b *testing.B, parallel int) {
	b.Helper()
	plan := suitePlan()
	workers := parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	b.ReportMetric(float64(workers), "workers")
	for i := 0; i < b.N; i++ {
		outs, err := core.RunPlan(benchConfig(), plan, parallel)
		if err != nil {
			b.Fatal(err)
		}
		var ticks float64
		for _, o := range outs {
			ticks += float64(o.Ticks)
		}
		b.ReportMetric(ticks/b.Elapsed().Seconds()/1e6*float64(b.N), "Mticks/s")
	}
}

// BenchmarkSuiteSerial executes the plan on one worker — the historical
// core.RunSuite behavior.
func BenchmarkSuiteSerial(b *testing.B) { runPlanBench(b, 1) }

// BenchmarkSuiteParallel executes the identical plan sharded one worker per
// core (the engine default); results are bit-identical to the serial run
// (see internal/suite's determinism test), only the wall clock changes. The
// simulation is CPU-bound, so the speedup on an N-core runner approaches N;
// on a single-core runner the two benches coincide.
func BenchmarkSuiteParallel(b *testing.B) { runPlanBench(b, 0) }

// BenchmarkScenario runs the scripted multi-app sessions end to end: the
// lifecycle-heavy pair (4 concurrently-live apps; kill/relaunch churn) plus
// the media handoff scenario. Reported metrics: total attributed references
// and the peak process census, so the bench trajectory tracks both engine
// speed and session shape.
func BenchmarkScenario(b *testing.B) {
	for _, name := range []string{"social-burst", "app-churn", "media-marathon"} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := core.RunScenario(name, benchConfig())
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(r.Stats.Total()), "total_refs")
				b.ReportMetric(float64(r.Processes), "processes")
			}
		})
	}
}

// BenchmarkScenarioPressure runs the memory-pressure sessions end to end:
// emergent lowmemorykiller kills under escalating pressure (memory-storm)
// and the trim-then-evict ladder (cached-app-eviction). Reported metrics pin
// the pressure outcome — kills, trims, and total references — so the bench
// trajectory tracks both the engine's speed and the subsystem's behavior.
func BenchmarkScenarioPressure(b *testing.B) {
	for _, name := range []string{"memory-storm", "cached-app-eviction"} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := core.RunScenario(name, benchConfig())
				if err != nil {
					b.Fatal(err)
				}
				s := r.Session
				b.ReportMetric(float64(s.LMKKills), "lmk_kills")
				b.ReportMetric(float64(s.Trims), "trims")
				b.ReportMetric(float64(r.Stats.Total()), "total_refs")
			}
		})
	}
}

// BenchmarkScenarioFromFile runs the declarative-scenario path end to end:
// read and decode the committed commute scenario document, then execute the
// session — the cost a `agave scenario -file` user pays per run. Decode is
// deliberately inside the measured loop so codec regressions move ns/op.
func BenchmarkScenarioFromFile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sc, err := scenario.FromFile("testdata/scenarios/commute.json")
		if err != nil {
			b.Fatal(err)
		}
		r, err := core.RunScenarioDef(sc, benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Stats.Total()), "total_refs")
		b.ReportMetric(float64(r.Session.Events), "events")
	}
}

// BenchmarkScenarioGenerated runs a 10-app generated session (the ROADMAP's
// session-scale bar) end to end at the default event density. Reported
// metrics pin the generated shape — peak live census and the process count —
// so the bench trajectory tracks both engine speed at scale and generator
// drift.
func BenchmarkScenarioGenerated(b *testing.B) {
	sc := scenario.Generate(scenario.GenConfig{Seed: 1, Apps: 10})
	var ticks float64
	for i := 0; i < b.N; i++ {
		r, err := core.RunScenarioDef(sc, benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		ticks += float64(r.Duration)
		b.ReportMetric(float64(r.Session.MaxLive), "max_live")
		b.ReportMetric(float64(r.Processes), "processes")
		b.ReportMetric(float64(r.Stats.Total()), "total_refs")
	}
	b.ReportMetric(ticks/b.Elapsed().Seconds()/1e6, "Mticks/s")
}

// BenchmarkScenarioDense is the hot-path stress gate: a 50-app generated
// session at 10x the default event density with memory pressure and input
// gestures on — every pooled structure (looper messages, input events,
// binder transactions, batched stats flushes) cycling at full rate. It
// exists so per-tick costs that hide in the 10-app session surface in CI,
// and it runs once under -race in the test job to shake out pool-reuse
// races.
func BenchmarkScenarioDense(b *testing.B) {
	sc := scenario.Generate(scenario.GenConfig{
		Seed:     1,
		Apps:     50,
		Events:   2000, // 10x the 4-per-app default
		Pressure: 2,
		Inputs:   200,
	})
	var ticks float64
	for i := 0; i < b.N; i++ {
		r, err := core.RunScenarioDef(sc, benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		ticks += float64(r.Duration)
		b.ReportMetric(float64(r.Session.MaxLive), "max_live")
		b.ReportMetric(float64(r.Session.InputEvents), "input_events")
		b.ReportMetric(float64(r.Processes), "processes")
		b.ReportMetric(float64(r.Stats.Total()), "total_refs")
	}
	b.ReportMetric(ticks/b.Elapsed().Seconds()/1e6, "Mticks/s")
}

// BenchmarkInterpDispatch isolates the Dalvik interpreter's per-bytecode
// dispatch loop from the rest of the stack: one thread executes sumLoop on a
// bare kernel, in pure interpretation (JIT disabled) and in fully compiled
// form (sumLoop force-promoted to the code cache). Mbytecodes/s is the
// headline: it moves only when interpreter dispatch itself gets faster.
func BenchmarkInterpDispatch(b *testing.B) {
	for _, mode := range []string{"interp", "jit"} {
		b.Run(mode, func(b *testing.B) {
			const n = 20_000
			const bytecodes = 4*n + 4 // sumLoop's dynamic instruction count
			k := kernel.New(kernel.Config{Quantum: 50 * sim.Microsecond, Seed: 7})
			defer k.Shutdown()
			p := k.NewProcess("benchmark", 1<<20, 1<<20)
			lm := loader.Load(p.AS, p.Layout, loader.BaseSet())
			vm := dalvik.Attach(p, lm, false)
			k.SpawnThread(p, "main", "main", func(ex *kernel.Exec) {
				ex.PushCode(p.Layout.Text)
				d := vm.LoadDex(ex, dalvik.StockDex("benchmark"))
				if mode == "jit" {
					vm.ForceCompile(d, "sumLoop")
				} else {
					vm.JITEnabled = false
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if got := vm.Exec(ex, d, "sumLoop", n); got != int64(n)*(n-1)/2 {
						b.Fatalf("sumLoop(%d) = %d", n, got)
					}
				}
				b.StopTimer()
			})
			k.Run(1 << 62) // deadline far beyond any b.N's simulated time
			b.ReportMetric(float64(b.N)*bytecodes/b.Elapsed().Seconds()/1e6, "Mbytecodes/s")
		})
	}
}

// --- ablation benches (design choices called out in docs/ARCHITECTURE.md) ---

// BenchmarkAblationJIT contrasts trace-JIT on/off: the share of instruction
// fetches served from dalvik-jit-code-cache vs libdvm.so.
func BenchmarkAblationJIT(b *testing.B) {
	for _, jit := range []bool{true, false} {
		name := "on"
		if !jit {
			name = "off"
		}
		b.Run(name, func(b *testing.B) {
			cfg := benchConfig()
			cfg.DisableJIT = !jit
			for i := 0; i < b.N; i++ {
				r, err := core.Run("frozenbubble.main", cfg)
				if err != nil {
					b.Fatal(err)
				}
				bi := stats.NewBreakdown(r.Stats.ByRegion(stats.IFetch))
				b.ReportMetric(bi.Share("dalvik-jit-code-cache")*100, "jitcache_pct")
				b.ReportMetric(bi.Share("libdvm.so")*100, "libdvm_pct")
			}
		})
	}
}

// BenchmarkAblationBackground contrasts music.mp3.view against its .bkg
// variant: backgrounding shifts references from composition (gralloc/fb0)
// toward mediaserver.
func BenchmarkAblationBackground(b *testing.B) {
	for _, name := range []string{"music.mp3.view", "music.mp3.view.bkg"} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := core.Run(name, benchConfig())
				if err != nil {
					b.Fatal(err)
				}
				bp := stats.NewBreakdown(r.Stats.ByProcess())
				b.ReportMetric(bp.Share("mediaserver")*100, "mediaserver_pct")
				b.ReportMetric(bp.Share("system_server")*100, "system_server_pct")
			}
		})
	}
}

// BenchmarkAblationDirtyRect contrasts full-stack composition against
// dirty-rect-only composition (A3).
func BenchmarkAblationDirtyRect(b *testing.B) {
	for _, dirty := range []bool{false, true} {
		name := "full"
		if dirty {
			name = "dirtyrect"
		}
		b.Run(name, func(b *testing.B) {
			cfg := benchConfig()
			cfg.DirtyRectComposition = dirty
			for i := 0; i < b.N; i++ {
				r, err := core.Run("countdown.main", cfg)
				if err != nil {
					b.Fatal(err)
				}
				bt := stats.NewBreakdown(r.Stats.ByThread())
				b.ReportMetric(bt.Share("SurfaceFlinger")*100, "surfaceflinger_pct")
			}
		})
	}
}

// BenchmarkAblationGCPressure sweeps allocation pressure via the
// object-churn workload (A4): the GC thread share grows with churn.
func BenchmarkAblationGCPressure(b *testing.B) {
	for _, name := range []string{"countdown.main", "frozenbubble.main"} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := core.Run(name, benchConfig())
				if err != nil {
					b.Fatal(err)
				}
				bt := stats.NewBreakdown(r.Stats.ByThread())
				b.ReportMetric(bt.Share("GC")*100, "gc_pct")
			}
		})
	}
}

// BenchmarkAblationQuantum checks that reference mixes are scheduler-quantum
// invariant (A5): the headline share must not move materially between 0.5 ms
// and 4 ms quanta.
func BenchmarkAblationQuantum(b *testing.B) {
	for _, q := range []sim.Ticks{500 * sim.Microsecond, 4 * sim.Millisecond} {
		name := "0.5ms"
		if q > sim.Millisecond {
			name = "4ms"
		}
		b.Run(name, func(b *testing.B) {
			cfg := benchConfig()
			cfg.Quantum = q
			for i := 0; i < b.N; i++ {
				r, err := core.Run("frozenbubble.main", cfg)
				if err != nil {
					b.Fatal(err)
				}
				bt := stats.NewBreakdown(r.Stats.ByThread())
				b.ReportMetric(bt.Share("SurfaceFlinger")*100, "surfaceflinger_pct")
			}
		})
	}
}

// BenchmarkFleetAggregate streams 100k synthetic result lines through the
// fleet coordinator's aggregator — decode, fold, seal shards, report. The
// asserted allocs/op bound is what makes this a constant-memory gate:
// steady-state allocations are per-cell and per-shard, never per-line, so
// the bound holds whether 100k or 10^6 lines stream through.
func BenchmarkFleetAggregate(b *testing.B) {
	const lines = 100_000
	const shardSize = 1024
	units := []string{"alpha", "beta", "gamma", "delta"}
	raws := make([][]byte, lines)
	for i := range raws {
		l := fleet.Line{
			Index:       i,
			Unit:        units[i%len(units)],
			Seed:        uint64(i%5 + 1),
			Ablation:    "base",
			Fingerprint: uint64(i) * 0x9e3779b97f4a7c15,
			Metrics: []fleet.Metric{
				{Name: "total_refs", Value: float64((i + 1) * 100)},
				{Name: "value", Value: 0.1 * float64(i+1)},
			},
		}
		raw, err := l.Encode()
		if err != nil {
			b.Fatal(err)
		}
		raws[i] = raw
	}
	shards := suite.NumShards(lines, shardSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg := fleet.NewAggregator(lines, shardSize, "bench")
		var line fleet.Line
		for s := 0; s < shards; s++ {
			lo, hi := suite.ShardRange(lines, shardSize, s)
			for j := lo; j < hi; j++ {
				if err := fleet.DecodeLine(raws[j], &line); err != nil {
					b.Fatal(err)
				}
				if err := agg.Observe(s, raws[j], &line); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := agg.FinishShard(s, -1, ""); err != nil {
				b.Fatal(err)
			}
		}
		rep, err := agg.Report()
		if err != nil {
			b.Fatal(err)
		}
		if rep.Runs != lines {
			b.Fatalf("report folded %d runs, want %d", rep.Runs, lines)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(lines*b.N)/b.Elapsed().Seconds()/1e6, "Mlines/s")
	// The aggregator's own fold is zero-alloc once warm (pinned exactly by
	// TestAggregatorFoldIsAllocationFree in internal/fleet); the per-line
	// allocations measured here are the JSON decoder's transient string
	// and token ones, roughly one per field. The ceiling leaves decode
	// headroom but sits far below what any O(line)-sized aggregator state
	// regression (say a retained []Line) would cost.
	if b.N > 0 {
		allocsPerLine := float64(testing.AllocsPerRun(1, func() {
			agg := fleet.NewAggregator(lines, shardSize, "bench")
			var line fleet.Line
			for s := 0; s < shards; s++ {
				lo, hi := suite.ShardRange(lines, shardSize, s)
				for j := lo; j < hi; j++ {
					if err := fleet.DecodeLine(raws[j], &line); err != nil {
						b.Fatal(err)
					}
					if err := agg.Observe(s, raws[j], &line); err != nil {
						b.Fatal(err)
					}
				}
				if _, err := agg.FinishShard(s, -1, ""); err != nil {
					b.Fatal(err)
				}
			}
		})) / lines
		if allocsPerLine > 20 {
			b.Fatalf("aggregation allocates %.1f per line — the fold is no longer constant-memory", allocsPerLine)
		}
		b.ReportMetric(allocsPerLine, "allocs/line")
	}
}
